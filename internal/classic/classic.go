// Package classic implements the baseline cache manager the paper compares
// Tinca against (Section 5.1, "Classic"): a Flashcache-style set-
// associative write-back cache that treats the NVM as a block device.
//
// Its two defining properties — both sources of write amplification the
// paper measures — are:
//
//  1. Cache metadata is organized in a *block format*: 16B records packed
//     into 4KB metadata blocks, one region up front.
//  2. Metadata is updated *synchronously*: every cached write persists the
//     entire 4KB metadata block covering the touched slot (64 line
//     flushes), and re-mapping a slot to a new disk block persists it
//     twice (invalidate, then validate) so a crash can never alias one
//     block's data to another's mapping.
//
// Like Flashcache, Classic has no transactional interface: crash
// consistency of file-system data must come from a journaling layer above
// (internal/jbd).
package classic

import (
	"errors"
	"fmt"
	"sync"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
)

// BlockSize is the caching unit (4KB).
const BlockSize = blockdev.BlockSize

// recordSize is the on-NVM size of one slot's metadata record.
const recordSize = 16

// recordsPerBlock is how many slot records one metadata block holds.
const recordsPerBlock = BlockSize / recordSize

// DefaultAssoc is the set associativity (Flashcache's default is 512).
const DefaultAssoc = 512

const (
	classicMagic   uint64 = 0x63697373616c63 // "classic"
	classicVersion uint64 = 1
)

// ErrClosed is returned by operations on a closed cache.
var ErrClosed = errors.New("classic: cache closed")

// Options configure a Classic cache.
type Options struct {
	// Assoc is the set associativity; DefaultAssoc when 0 (clamped to the
	// capacity for small caches).
	Assoc int
	// NoMetaUpdates suppresses synchronous metadata-block writes (the
	// Figure 4 ablation: "if updating metadata is fully waived").
	// Mapping changes then live only in DRAM; unsafe across crashes.
	NoMetaUpdates bool
	// NoPersistBarriers suppresses clflush/sfence after data writes (the
	// Figure 3(b) leftmost bar: writes reach NVM without ordering
	// instructions). Unsafe across crashes.
	NoPersistBarriers bool
	// WriteThrough writes every cached block to disk synchronously and
	// keeps slots clean (write-back is the paper's default mode).
	WriteThrough bool
	// JournalBoundary, when non-zero, classifies writes to device blocks
	// >= the boundary (the journal area above the file system span) under
	// separate hit/miss counters, so data-block hit rates are comparable
	// with Tinca's. Purely instrumentation; caching behaviour is
	// unchanged.
	JournalBoundary uint64
}

// slotMeta is the decoded metadata record of one cache slot. The record
// occupies a 16-byte, block-format cell (the amplification the paper
// measures comes from rewriting whole 4KB metadata blocks), but all live
// fields are packed into the cell's *first 8-byte word*:
//
//	byte 0      : flags — bit0 valid, bit1 dirty
//	byte 1      : checksum (corruption guard)
//	bytes 2..7  : on-disk block number (48 bits — up to 1EB of 4KB blocks)
//	bytes 8..15 : unused
//
// Packing into one aligned word matters for crash integrity: on the
// memory bus, the two words of a 16-byte cell persist independently, so a
// record spanning both could tear into a new flag paired with a stale
// block number, silently aliasing one block's data to another's mapping.
// A single word persists atomically by the hardware contract.
type slotMeta struct {
	valid bool
	dirty bool
	disk  uint64
}

// maxClassicDisk is the largest representable block number (48 bits).
const maxClassicDisk = 1<<48 - 1

// slotChecksum mixes the flag byte and block-number bytes.
func slotChecksum(b *[16]byte) byte {
	sum := uint32(0x5A) + uint32(b[0])
	for i := 2; i < 8; i++ {
		sum = sum*31 + uint32(b[i])
	}
	return byte(sum)
}

const (
	cFlagValid = 1 << 0
	cFlagDirty = 1 << 1
)

func encodeSlot(m slotMeta) (b [16]byte) {
	if !m.valid {
		return b
	}
	if m.disk > maxClassicDisk {
		panic("classic: disk block number exceeds 48 bits")
	}
	b[0] = cFlagValid
	if m.dirty {
		b[0] |= cFlagDirty
	}
	b[2] = byte(m.disk)
	b[3] = byte(m.disk >> 8)
	b[4] = byte(m.disk >> 16)
	b[5] = byte(m.disk >> 24)
	b[6] = byte(m.disk >> 32)
	b[7] = byte(m.disk >> 40)
	b[1] = slotChecksum(&b)
	return b
}

func decodeSlot(b [16]byte) slotMeta {
	var m slotMeta
	if b[0]&cFlagValid == 0 {
		return m
	}
	if b[1] != slotChecksum(&b) {
		return m // corrupt record: treat as invalid
	}
	m.valid = true
	m.dirty = b[0]&cFlagDirty != 0
	m.disk = uint64(b[2]) | uint64(b[3])<<8 | uint64(b[4])<<16 | uint64(b[5])<<24 |
		uint64(b[6])<<32 | uint64(b[7])<<40
	return m
}

// Layout describes the Classic NVM partitioning.
type Layout struct {
	HeaderOff  int
	MetaOff    int // metadata blocks
	MetaBlocks int
	DataOff    int
	Capacity   int // cache slots
	Assoc      int
	Sets       int
}

// computeLayout fits header + metadata blocks + data blocks into devSize.
func computeLayout(devSize, assoc int) (Layout, error) {
	var l Layout
	l.HeaderOff = 0
	l.MetaOff = BlockSize // header gets the first block for simplicity
	// Each slot costs 4KB data + 16B metadata; metadata rounds to blocks.
	cap := (devSize - l.MetaOff) / (BlockSize + recordSize)
	for cap > 0 {
		metaBlocks := (cap + recordsPerBlock - 1) / recordsPerBlock
		dataOff := l.MetaOff + metaBlocks*BlockSize
		if dataOff+cap*BlockSize <= devSize {
			l.MetaBlocks = metaBlocks
			l.DataOff = dataOff
			break
		}
		cap--
	}
	if cap < 8 {
		return Layout{}, fmt.Errorf("classic: NVM device too small (%d bytes)", devSize)
	}
	if assoc <= 0 {
		assoc = DefaultAssoc
	}
	if assoc > cap {
		assoc = cap
	}
	// Round capacity down to whole sets.
	sets := cap / assoc
	l.Capacity = sets * assoc
	l.Assoc = assoc
	l.Sets = sets
	return l, nil
}

func (l Layout) slotMetaOff(slot int) int { return l.MetaOff + slot*recordSize }
func (l Layout) metaBlockOff(slot int) int {
	return l.MetaOff + slot/recordsPerBlock*BlockSize
}
func (l Layout) slotDataOff(slot int) int { return l.DataOff + slot*BlockSize }

// Cache is the Classic cache manager. All methods are safe for concurrent
// use.
type Cache struct {
	mu   sync.Mutex
	mem  *pmem.Device
	disk *blockdev.Device
	lay  Layout
	rec  *metrics.Recorder
	opts Options

	// DRAM mirrors (rebuilt on startup).
	hash  map[uint64]int // disk block -> slot
	meta  []slotMeta     // mirror of slot metadata
	stamp []uint64       // per-slot LRU stamp
	tick  uint64

	closed bool
}

// Open formats or recovers a Classic cache on the NVM device.
func Open(mem *pmem.Device, disk *blockdev.Device, opts Options) (*Cache, error) {
	lay, err := computeLayout(mem.Size(), opts.Assoc)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		mem:   mem,
		disk:  disk,
		lay:   lay,
		rec:   mem.Recorder(),
		opts:  opts,
		hash:  make(map[uint64]int),
		meta:  make([]slotMeta, lay.Capacity),
		stamp: make([]uint64, lay.Capacity),
	}
	if c.mem.Load8(0) == classicMagic && c.mem.Load8(8) == classicVersion {
		c.recover()
	} else {
		c.format()
	}
	return c, nil
}

func (c *Cache) format() {
	// Fresh pmem is zeroed (all slots invalid); persist only the header.
	c.mem.Store8(8, classicVersion)
	c.mem.Store8(16, uint64(c.lay.Capacity))
	c.mem.CLFlush(0, pmem.LineSize)
	c.mem.SFence()
	c.mem.Persist8(0, classicMagic)
}

// recover rebuilds the DRAM mirrors from the persistent metadata region.
// The invalidate-before-revalidate protocol guarantees every valid record
// describes the data actually in its slot.
func (c *Cache) recover() {
	for s := 0; s < c.lay.Capacity; s++ {
		m := decodeSlot(c.mem.Load16(c.lay.slotMetaOff(s)))
		c.meta[s] = m
		if m.valid {
			c.hash[m.disk] = s
		}
	}
}

// Layout exposes the computed layout for tests.
func (c *Cache) Layout() Layout { return c.lay }

// Capacity returns the number of cache slots.
func (c *Cache) Capacity() int { return c.lay.Capacity }

func (c *Cache) setOf(no uint64) int { return int(no % uint64(c.lay.Sets)) }

// persistSlotMeta writes the *whole 4KB metadata block* containing slot s,
// Flashcache style, and counts it as a metadata block write.
func (c *Cache) persistSlotMeta(s int) {
	if c.opts.NoMetaUpdates {
		return
	}
	blockOff := c.lay.metaBlockOff(s)
	first := (blockOff - c.lay.MetaOff) / recordSize
	buf := make([]byte, BlockSize)
	for i := 0; i < recordsPerBlock; i++ {
		rec := encodeSlot(c.metaAt(first + i))
		copy(buf[i*recordSize:], rec[:])
	}
	c.mem.Store(blockOff, buf)
	if !c.opts.NoPersistBarriers {
		c.mem.CLFlush(blockOff, BlockSize)
		c.mem.SFence()
	}
	c.rec.Inc(metrics.CacheMetaWrite)
}

// metaAt returns the DRAM metadata for slot i, tolerating the tail of the
// last metadata block (slots beyond capacity are invalid).
func (c *Cache) metaAt(i int) slotMeta {
	if i >= len(c.meta) {
		return slotMeta{}
	}
	return c.meta[i]
}

// writeData persists p into slot s's data block.
func (c *Cache) writeData(s int, p []byte) {
	off := c.lay.slotDataOff(s)
	c.mem.Store(off, p)
	if !c.opts.NoPersistBarriers {
		c.mem.CLFlush(off, BlockSize)
		c.mem.SFence()
	}
}

// pickSlot returns the slot to use for disk block no within its set:
// an invalid slot if one exists, otherwise the LRU slot (evicting it).
// Caller holds c.mu.
func (c *Cache) pickSlot(no uint64) int {
	set := c.setOf(no)
	base := set * c.lay.Assoc
	victim, oldest := -1, ^uint64(0)
	for i := 0; i < c.lay.Assoc; i++ {
		s := base + i
		if !c.meta[s].valid {
			return s
		}
		if c.stamp[s] < oldest {
			oldest, victim = c.stamp[s], s
		}
	}
	c.evict(victim)
	return victim
}

// evict writes back slot s if dirty and invalidates it (metadata write #1
// of the re-mapping protocol). Caller holds c.mu.
func (c *Cache) evict(s int) {
	m := c.meta[s]
	if m.dirty {
		buf := make([]byte, BlockSize)
		c.mem.Load(c.lay.slotDataOff(s), buf)
		c.disk.WriteBlock(m.disk, buf)
		c.rec.Inc(metrics.CacheEvictDirty)
	}
	c.rec.Inc(metrics.CacheEvict)
	delete(c.hash, m.disk)
	c.meta[s] = slotMeta{}
	c.persistSlotMeta(s) // invalidate before the slot is reused
}

// WriteBlock caches the new contents of disk block no (write-back): data
// is persisted into the slot, then the covering metadata block is
// persisted synchronously.
func (c *Cache) WriteBlock(no uint64, p []byte) error {
	if len(p) != BlockSize {
		return fmt.Errorf("classic: block must be %d bytes", BlockSize)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	dirty := !c.opts.WriteThrough
	if c.opts.WriteThrough {
		c.disk.WriteBlock(no, p)
	}
	if s, ok := c.hash[no]; ok {
		// Write hit: in-place overwrite, then one metadata block write.
		c.rec.Inc(c.writeHitCounter(no, true))
		c.writeData(s, p)
		c.meta[s] = slotMeta{valid: true, dirty: dirty, disk: no}
		c.persistSlotMeta(s)
		c.touch(s)
		return nil
	}
	c.rec.Inc(c.writeHitCounter(no, false))
	s := c.pickSlot(no)
	c.writeData(s, p)
	c.meta[s] = slotMeta{valid: true, dirty: dirty, disk: no}
	c.persistSlotMeta(s) // validate with the new mapping
	c.hash[no] = s
	c.touch(s)
	return nil
}

// ReadBlock returns the cached or on-disk contents of block no, filling
// the cache on a miss.
func (c *Cache) ReadBlock(no uint64, p []byte) error {
	if len(p) != BlockSize {
		return fmt.Errorf("classic: block must be %d bytes", BlockSize)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if s, ok := c.hash[no]; ok {
		c.rec.Inc(metrics.CacheReadHit)
		c.mem.Load(c.lay.slotDataOff(s), p)
		c.touch(s)
		return nil
	}
	c.rec.Inc(metrics.CacheReadMiss)
	c.disk.ReadBlock(no, p)
	s := c.pickSlot(no)
	c.writeData(s, p)
	c.meta[s] = slotMeta{valid: true, dirty: false, disk: no}
	c.persistSlotMeta(s)
	c.hash[no] = s
	c.touch(s)
	return nil
}

// writeHitCounter picks the counter for a write to block no.
func (c *Cache) writeHitCounter(no uint64, hit bool) string {
	journal := c.opts.JournalBoundary != 0 && no >= c.opts.JournalBoundary
	switch {
	case journal && hit:
		return metrics.CacheJournalWriteHit
	case journal:
		return metrics.CacheJournalWriteMiss
	case hit:
		return metrics.CacheWriteHit
	default:
		return metrics.CacheWriteMiss
	}
}

func (c *Cache) touch(s int) {
	c.tick++
	c.stamp[s] = c.tick
}

// Contains reports whether block no is resident (for tests).
func (c *Cache) Contains(no uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.hash[no]
	return ok
}

// FlushAll writes every dirty slot back to disk and marks it clean.
func (c *Cache) FlushAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	buf := make([]byte, BlockSize)
	for s, m := range c.meta {
		if !m.valid || !m.dirty {
			continue
		}
		c.mem.Load(c.lay.slotDataOff(s), buf)
		c.disk.WriteBlock(m.disk, buf)
		c.meta[s].dirty = false
		c.persistSlotMeta(s)
	}
	return nil
}

// Close flushes and rejects further use.
func (c *Cache) Close() error {
	if err := c.FlushAll(); err != nil {
		return err
	}
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

// WriteHitRate returns the lifetime write hit ratio (Figure 12(c)).
func (c *Cache) WriteHitRate() float64 {
	h := c.rec.Get(metrics.CacheWriteHit)
	m := c.rec.Get(metrics.CacheWriteMiss)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
