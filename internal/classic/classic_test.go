package classic

import (
	"bytes"
	"testing"
	"testing/quick"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

type rig struct {
	clock *sim.Clock
	rec   *metrics.Recorder
	mem   *pmem.Device
	disk  *blockdev.Device
	cache *Cache
}

func newRig(t *testing.T, nvmBytes int, opts Options) *rig {
	t.Helper()
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(nvmBytes, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<20, blockdev.Null, clock, rec)
	c, err := Open(mem, disk, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return &rig{clock: clock, rec: rec, mem: mem, disk: disk, cache: c}
}

func blockOf(b byte) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestSlotMetaRoundTrip(t *testing.T) {
	f := func(disk uint64, dirty bool) bool {
		m := slotMeta{valid: true, dirty: dirty, disk: disk % (maxClassicDisk + 1)}
		return decodeSlot(encodeSlot(m)) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if decodeSlot([16]byte{}).valid {
		t.Fatal("zero record decoded valid")
	}
}

func TestWriteReadBack(t *testing.T) {
	r := newRig(t, 1<<20, Options{Assoc: 8})
	if err := r.cache.WriteBlock(5, blockOf('x')); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	if err := r.cache.ReadBlock(5, p); err != nil {
		t.Fatal(err)
	}
	if p[0] != 'x' {
		t.Fatalf("read %q", p[0])
	}
}

func TestMetadataWrittenPerWrite(t *testing.T) {
	r := newRig(t, 1<<20, Options{Assoc: 8})
	for i := 0; i < 10; i++ {
		if err := r.cache.WriteBlock(uint64(i), blockOf(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Every write miss persists one metadata block (no re-mapping of a
	// valid slot happened yet).
	if got := r.rec.Get(metrics.CacheMetaWrite); got != 10 {
		t.Fatalf("metadata writes = %d, want 10", got)
	}
	// The block-format amplification: each metadata write flushes a whole
	// 4KB block = 64 lines, plus 64 for data.
	perWrite := float64(r.rec.Get(metrics.NVMCLFlush)) / 10
	if perWrite < 127 || perWrite > 130 {
		t.Fatalf("clflush per write = %v, want ~128", perWrite)
	}
}

func TestNoMetaUpdatesOption(t *testing.T) {
	r := newRig(t, 1<<20, Options{Assoc: 8, NoMetaUpdates: true})
	for i := 0; i < 10; i++ {
		if err := r.cache.WriteBlock(uint64(i), blockOf(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.rec.Get(metrics.CacheMetaWrite); got != 0 {
		t.Fatalf("metadata writes = %d, want 0", got)
	}
}

func TestNoPersistBarriersOption(t *testing.T) {
	r := newRig(t, 1<<20, Options{Assoc: 8, NoPersistBarriers: true})
	base := r.rec.Get(metrics.NVMCLFlush) // formatting flushes the header
	if err := r.cache.WriteBlock(1, blockOf(1)); err != nil {
		t.Fatal(err)
	}
	if got := r.rec.Get(metrics.NVMCLFlush) - base; got != 0 {
		t.Fatalf("clflush per write = %d, want 0", got)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	r := newRig(t, 256<<10, Options{Assoc: 4})
	capacity := r.cache.Capacity()
	total := capacity + 16
	for i := 0; i < total; i++ {
		if err := r.cache.WriteBlock(uint64(i), blockOf(byte(i%251))); err != nil {
			t.Fatal(err)
		}
	}
	if r.rec.Get(metrics.CacheEvictDirty) == 0 {
		t.Fatal("no dirty eviction")
	}
	p := make([]byte, BlockSize)
	for i := 0; i < total; i++ {
		if err := r.cache.ReadBlock(uint64(i), p); err != nil {
			t.Fatal(err)
		}
		if p[0] != byte(i%251) {
			t.Fatalf("block %d = %d", i, p[0])
		}
	}
}

func TestReadMissFills(t *testing.T) {
	r := newRig(t, 1<<20, Options{Assoc: 8})
	r.disk.WriteBlock(33, blockOf('d'))
	p := make([]byte, BlockSize)
	if err := r.cache.ReadBlock(33, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, blockOf('d')) {
		t.Fatal("read-miss mismatch")
	}
	if !r.cache.Contains(33) {
		t.Fatal("miss did not fill")
	}
}

func TestFlushAllAndClose(t *testing.T) {
	r := newRig(t, 1<<20, Options{Assoc: 8})
	if err := r.cache.WriteBlock(2, blockOf('f')); err != nil {
		t.Fatal(err)
	}
	if err := r.cache.Close(); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	r.disk.ReadBlock(2, p)
	if p[0] != 'f' {
		t.Fatal("Close did not flush")
	}
	if err := r.cache.WriteBlock(3, blockOf(1)); err != ErrClosed {
		t.Fatalf("after close: %v", err)
	}
}

func TestRecoverRebuildsMapping(t *testing.T) {
	r := newRig(t, 1<<20, Options{Assoc: 8})
	for i := 0; i < 20; i++ {
		if err := r.cache.WriteBlock(uint64(i), blockOf(byte('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	r.mem.Crash(nil, 0) // power loss: only flushed state survives
	c2, err := Open(r.mem, r.disk, Options{Assoc: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	for i := 0; i < 20; i++ {
		if err := c2.ReadBlock(uint64(i), p); err != nil {
			t.Fatal(err)
		}
		if p[0] != byte('a'+i) {
			t.Fatalf("block %d = %q after recovery", i, p[0])
		}
	}
}

func TestCrashNeverAliasesBlocks(t *testing.T) {
	// The invalidate-before-revalidate protocol: crash a slot re-mapping
	// at every operation boundary and require that a read of the evicted
	// block never returns the newcomer's data.
	rng := sim.NewRand(3)
	for k := int64(0); ; k++ {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(256<<10, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		c, err := Open(mem, disk, Options{Assoc: 2})
		if err != nil {
			t.Fatal(err)
		}
		capacity := c.Capacity()
		// Fill, then overflow each set so every further write re-maps.
		for i := 0; i < capacity*2; i++ {
			if err := c.WriteBlock(uint64(i), blockOf(byte(i%250)+1)); err != nil {
				t.Fatal(err)
			}
		}
		written := capacity * 2
		mem.ArmCrash(k)
		crashed, _ := pmem.CatchCrash(func() {
			for i := written; i < written+64; i++ {
				if err := c.WriteBlock(uint64(i), blockOf(byte(i%250)+1)); err != nil {
					panic(err)
				}
			}
		})
		if !crashed {
			mem.DisarmCrash()
			t.Logf("re-mapping covered in %d operations", k)
			return
		}
		mem.Crash(rng, 0.5)
		c2, err := Open(mem, disk, Options{Assoc: 2})
		if err != nil {
			t.Fatal(err)
		}
		p := make([]byte, BlockSize)
		for i := 0; i < written+64; i++ {
			if err := c2.ReadBlock(uint64(i), p); err != nil {
				t.Fatal(err)
			}
			// A block must read its own value, or zero if it was written
			// after the crash point and its write-back never happened.
			if p[0] != byte(i%250)+1 && p[0] != 0 {
				t.Fatalf("k=%d block %d aliased to value %d", k, i, p[0])
			}
		}
		if k > 600 {
			k += 37
		}
	}
}

func TestWriteHitRateClassic(t *testing.T) {
	r := newRig(t, 1<<20, Options{Assoc: 8})
	r.cache.WriteBlock(1, blockOf(1))
	r.cache.WriteBlock(1, blockOf(2))
	if got := r.cache.WriteHitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v", got)
	}
}

func TestWriteThroughModeClassic(t *testing.T) {
	r := newRig(t, 1<<20, Options{Assoc: 8, WriteThrough: true})
	if err := r.cache.WriteBlock(9, blockOf('t')); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	r.disk.ReadBlock(9, p)
	if p[0] != 't' {
		t.Fatal("write-through did not reach disk")
	}
	// Eviction of the clean slot must not re-write disk.
	before := r.rec.Get(metrics.DiskBlocksWrite)
	if err := r.cache.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := r.rec.Get(metrics.DiskBlocksWrite); got != before {
		t.Fatalf("clean slots re-flushed: %d -> %d", before, got)
	}
}
