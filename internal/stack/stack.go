// Package stack assembles the two storage stacks the paper evaluates
// (Section 5.1) plus the no-journal baseline used by the motivation
// figures:
//
//	Tinca:            FS ──txn──▶ Tinca cache (NVM) ──▶ disk
//	Classic:          FS ──▶ JBD2-style journal ──▶ Flashcache-style cache (NVM) ──▶ disk
//	ClassicNoJournal: FS ──▶ in-place writes ──▶ Flashcache-style cache (NVM) ──▶ disk
//
// A Stack owns the simulated clock and metrics recorder shared by every
// layer, and provides crash + remount entry points for the recoverability
// harness.
package stack

import (
	"fmt"
	"math/rand"
	"net/http"

	"tinca/internal/blockdev"
	"tinca/internal/classic"
	"tinca/internal/core"
	"tinca/internal/fs"
	"tinca/internal/jbd"
	"tinca/internal/metrics"
	"tinca/internal/objstore"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// JournalMode selects how the Classic stack's journal treats file data,
// mirroring ext4's mount options.
type JournalMode int

const (
	// DataJournal logs both metadata and data (ext4 data=journal, the
	// paper's configuration: full data consistency, maximal double
	// writes).
	DataJournal JournalMode = iota
	// Ordered logs only metadata; file data is written in place *before*
	// the transaction commits (ext4 data=ordered, the default in the
	// field: metadata consistency, no stale-data exposure, but file
	// contents are not atomic across a crash).
	Ordered
)

func (m JournalMode) String() string {
	if m == Ordered {
		return "ordered"
	}
	return "data-journal"
}

// Kind selects the stack flavour.
type Kind int

const (
	// Tinca is the paper's system: the file system uses the cache's
	// transactional primitives; no journal exists.
	Tinca Kind = iota
	// Classic is the competitor: Ext4-style data journalling over a
	// Flashcache-style NVM cache.
	Classic
	// ClassicNoJournal is Classic with journalling disabled (in-place
	// writes), the crash-unsafe baseline of Figures 3 and 4.
	ClassicNoJournal
)

func (k Kind) String() string {
	switch k {
	case Tinca:
		return "Tinca"
	case Classic:
		return "Classic"
	case ClassicNoJournal:
		return "Classic-nojournal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config sizes and parameterizes a stack. Zero values pick defaults
// suitable for fast laptop-scale experiments.
//
// The Tinca cache's knobs are the embedded core.Options, declared once
// and promoted: cfg.RingBytes, cfg.GroupCommit, cfg.IndexBuckets,
// cfg.DisableZeroCopy and the rest read and write the embedded struct
// directly, so existing field-access code keeps working. (Composite
// literals name the embedded struct: Config{Options: core.Options{...}}.)
// Two of the embedded knobs apply beyond the Tinca kind: WriteThrough
// selects the write policy of either cache flavour, and Observe enables
// latency histograms in every layer.
type Config struct {
	Kind        Kind
	NVMBytes    int              // NVM cache size (default 32MB)
	NVMProfile  pmem.Profile     // default PCM (the paper's default)
	DiskProfile blockdev.Profile // default SSD
	FSBlocks    uint64           // file-system span in 4KB blocks (default 32768 = 128MB)
	InodeCount  uint64           // default FSBlocks/16

	// Tinca cache knobs (plus WriteThrough/Observe/Tracer, which apply to
	// every kind), embedded from the core so they are declared exactly
	// once. See core.Options for each field's documentation.
	core.Options

	// Tiering knobs (Tinca kind only; DESIGN.md §16). L3 mounts a
	// simulated object store as a capacity tier behind a small L2 block
	// device: destaged-dirty blocks land in L2 and are asynchronously
	// batched into multi-block objects by the upload pipeline, while a
	// read-ahead prefetcher overlaps object fetches on sequential and
	// strided miss streams. With L3 set, DiskProfile describes the L2
	// device (sized by L3L2Blocks) rather than a full-span disk.
	L3              bool
	L3Profile       objstore.Profile // object store service model (default objstore.S3)
	L3L2Blocks      uint64           // L2 data capacity in blocks (default 4096 = 16MB)
	L3ObjectBlocks  int              // blocks per object (default 16 = 64KB)
	L3Prefetch      int              // prefetch workers; 0 = default 4, negative disables
	L3MaxDirty      int              // dirty-slot backpressure bound (default 3/4 of L2)
	L3UploadWorkers int              // concurrent object PUT lanes (default 8)

	// Classic knobs.
	JournalMode       JournalMode // DataJournal (paper default) or Ordered
	JournalBlocks     uint64      // journal area length (default 4096 = 16MB)
	ClassicAssoc      int
	NoMetaUpdates     bool // Figure 4 ablation
	NoPersistBarriers bool // Figure 3(b) ablation
	CheckpointFrac    float64

	// File-system knobs.
	GroupCommitBlocks     int
	GroupCommitIntervalNS int64
	PageCacheBlocks       int
	// FSOpCostNS is the per-operation CPU cost (syscall + VFS) charged to
	// the simulated clock; default 2µs. Set negative to disable.
	FSOpCostNS int64

	// Observability knobs (DESIGN.md Section 9). Observe and Tracer live
	// in the embedded core.Options (they configure every layer, not just
	// the cache); TraceEvents is stack-only sugar:
	//
	// TraceEvents, when positive, allocates a span tracer ring of that
	// many events (rounded up to a power of two) and implies Observe.
	// Export the ring with Stack.Tracer.WriteChromeTrace.
	TraceEvents int
}

// Validate reports a descriptive error for a nonsensical configuration
// instead of silently clamping it. New runs it (after applying defaults)
// so mistakes surface at construction, not as misbehavior later. The zero
// Config is always valid.
func (c Config) Validate() error {
	if c.Kind < Tinca || c.Kind > ClassicNoJournal {
		return fmt.Errorf("stack: unknown kind %v", c.Kind)
	}
	if c.NVMBytes < 0 {
		return fmt.Errorf("stack: NVMBytes %d is negative", c.NVMBytes)
	}
	if c.NVMBytes > 0 && c.NVMBytes < 1<<20 {
		return fmt.Errorf("stack: NVMBytes %d is too small for a cache layout (need at least 1MB)", c.NVMBytes)
	}
	if c.Kind == Tinca {
		if err := c.Options.Validate(); err != nil {
			return err
		}
	}
	if c.Kind != Tinca && c.DestageDepth != 0 {
		return fmt.Errorf("stack: DestageDepth applies only to the Tinca kind, not %v", c.Kind)
	}
	if c.Kind != Tinca && (c.DestageWorkers != 0 || c.EvictLowWater != 0 || c.EvictBatch != 0) {
		return fmt.Errorf("stack: DestageWorkers/EvictLowWater/EvictBatch apply only to the Tinca kind, not %v", c.Kind)
	}
	if c.Kind != Tinca && c.Fault != core.FaultNone {
		return fmt.Errorf("stack: Fault applies only to the Tinca kind, not %v", c.Kind)
	}
	if c.Kind != Tinca && c.SealHook != nil {
		return fmt.Errorf("stack: SealHook applies only to the Tinca kind, not %v", c.Kind)
	}
	if c.Kind != Tinca && (c.IndexBuckets != 0 || c.SyncMapIndex || c.DisableZeroCopy) {
		return fmt.Errorf("stack: IndexBuckets/SyncMapIndex/DisableZeroCopy apply only to the Tinca kind, not %v", c.Kind)
	}
	if c.Kind != Tinca && c.FlightRecorder {
		return fmt.Errorf("stack: FlightRecorder applies only to the Tinca kind, not %v", c.Kind)
	}
	if c.Kind != Tinca && (c.Checkpoint || c.CheckpointIntervalNS != 0 || c.SerialRecovery) {
		return fmt.Errorf("stack: Checkpoint/CheckpointIntervalNS/SerialRecovery apply only to the Tinca kind, not %v", c.Kind)
	}
	if c.Kind != Tinca && c.CommitRings != 0 {
		return fmt.Errorf("stack: CommitRings applies only to the Tinca kind, not %v", c.Kind)
	}
	if c.Kind != Tinca && c.L3 {
		return fmt.Errorf("stack: L3 tiering applies only to the Tinca kind, not %v", c.Kind)
	}
	if !c.L3 && (c.L3Profile.Name != "" || c.L3L2Blocks != 0 || c.L3ObjectBlocks != 0 ||
		c.L3Prefetch != 0 || c.L3MaxDirty != 0 || c.L3UploadWorkers != 0) {
		return fmt.Errorf("stack: L3Profile/L3L2Blocks/L3ObjectBlocks/L3Prefetch/L3MaxDirty/L3UploadWorkers require L3")
	}
	if c.L3 && c.L3ObjectBlocks < 0 {
		return fmt.Errorf("stack: L3ObjectBlocks %d is negative", c.L3ObjectBlocks)
	}
	if c.JournalMode < DataJournal || c.JournalMode > Ordered {
		return fmt.Errorf("stack: unknown journal mode %d", int(c.JournalMode))
	}
	if c.CheckpointFrac < 0 || c.CheckpointFrac > 1 {
		return fmt.Errorf("stack: CheckpointFrac %v outside [0,1]", c.CheckpointFrac)
	}
	if c.GroupCommitBlocks < 0 {
		return fmt.Errorf("stack: GroupCommitBlocks %d is negative", c.GroupCommitBlocks)
	}
	if c.GroupCommitIntervalNS < 0 {
		return fmt.Errorf("stack: GroupCommitIntervalNS %d is negative", c.GroupCommitIntervalNS)
	}
	if c.PageCacheBlocks < 0 {
		return fmt.Errorf("stack: PageCacheBlocks %d is negative", c.PageCacheBlocks)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.NVMBytes == 0 {
		c.NVMBytes = 32 << 20
	}
	if c.NVMProfile.Name == "" {
		c.NVMProfile = pmem.PCM
	}
	if c.DiskProfile.Name == "" {
		c.DiskProfile = blockdev.SSD
	}
	if c.FSBlocks == 0 {
		c.FSBlocks = 32768
	}
	if c.JournalBlocks == 0 {
		c.JournalBlocks = 4096
	}
	if c.CheckpointFrac == 0 {
		c.CheckpointFrac = 0.5
	}
	if c.FSOpCostNS == 0 {
		c.FSOpCostNS = 2000
	} else if c.FSOpCostNS < 0 {
		c.FSOpCostNS = 0
	}
	if c.L3 {
		if c.L3Profile.Name == "" {
			c.L3Profile = objstore.S3
		}
		if c.L3L2Blocks == 0 {
			c.L3L2Blocks = 4096
		}
		if c.L3ObjectBlocks == 0 {
			c.L3ObjectBlocks = 16
		}
		if c.L3Prefetch == 0 {
			c.L3Prefetch = 4
		} else if c.L3Prefetch < 0 {
			c.L3Prefetch = 0
		}
	}
	return c
}

// Stack is a fully assembled storage stack.
type Stack struct {
	Cfg   Config
	Clock *sim.Clock
	Rec   *metrics.Recorder
	Mem   *pmem.Device
	Disk  *blockdev.Device

	TCache  *core.Cache    // non-nil for Tinca
	CCache  *classic.Cache // non-nil for Classic*
	Journal *jbd.Journal   // non-nil for Classic
	FS      *fs.FS

	// L3 tiering (Cfg.L3 only). Store is the simulated object store; it
	// survives Crash (object durability is the point). Tier is the live
	// tier over Disk (the L2 device) and Store; Remount re-attaches it
	// from the persistent slot map.
	Store *objstore.Store
	Tier  *objstore.Tier

	// Tracer is the span ring when Cfg.TraceEvents/Cfg.Tracer asked for
	// one; nil otherwise. It survives Crash/Remount (spans are DRAM-side
	// diagnostics, not simulated state).
	Tracer *metrics.Tracer

	metricsSrv *http.Server // non-nil while ServeMetrics is live
}

// New builds a stack with a freshly formatted file system. The config is
// validated eagerly: a nonsensical combination returns a descriptive
// error before any device is created.
func New(cfg Config) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Tracer == nil && cfg.TraceEvents > 0 {
		cfg.Tracer = metrics.NewTracer(cfg.TraceEvents)
	}
	if cfg.Tracer != nil {
		cfg.Observe = true
	}
	s := &Stack{
		Cfg:    cfg,
		Clock:  sim.NewClock(),
		Rec:    metrics.NewRecorder(),
		Tracer: cfg.Tracer,
	}
	s.Mem = pmem.New(cfg.NVMBytes, cfg.NVMProfile, s.Clock, s.Rec)
	if cfg.L3 {
		// Tiered geometry: the block device is the small L2 (data slots
		// plus the persistent slot map); the object store provides the
		// full span's capacity behind it.
		s.Disk = blockdev.New(objstore.DevBlocksFor(cfg.L3L2Blocks), cfg.DiskProfile, s.Clock, s.Rec)
		s.Store = objstore.NewStore(cfg.L3Profile, s.Clock, s.Rec)
	} else {
		diskBlocks := cfg.FSBlocks + cfg.JournalBlocks
		s.Disk = blockdev.New(diskBlocks, cfg.DiskProfile, s.Clock, s.Rec)
	}
	return s, s.bringUp(true)
}

// bringUp opens (or re-opens, running recovery) every layer. format
// chooses Format vs Mount for the file system.
func (s *Stack) bringUp(format bool) error {
	cfg := s.Cfg
	s.Mem.Observe(cfg.Observe)
	fsOpts := fs.Options{
		GroupCommitBlocks:     cfg.GroupCommitBlocks,
		GroupCommitIntervalNS: cfg.GroupCommitIntervalNS,
		PageCacheBlocks:       cfg.PageCacheBlocks,
		Clock:                 s.Clock,
		OpCostNS:              cfg.FSOpCostNS,
		Rec:                   s.Rec,
		Observe:               cfg.Observe,
	}
	var backend fs.Backend
	switch cfg.Kind {
	case Tinca:
		copts := cfg.Options
		copts.Tracer = s.Tracer
		var disk blockdev.Store = s.Disk
		if cfg.L3 {
			tier, err := objstore.NewTier(cfg.FSBlocks+cfg.JournalBlocks, s.Disk, s.Store, s.Rec,
				objstore.TierOptions{
					ObjectBlocks:    cfg.L3ObjectBlocks,
					UploadWorkers:   cfg.L3UploadWorkers,
					MaxDirty:        cfg.L3MaxDirty,
					PrefetchWorkers: cfg.L3Prefetch,
				})
			if err != nil {
				return err
			}
			s.Tier = tier
			disk = tier
		}
		c, err := core.Open(s.Mem, disk, copts)
		if err != nil {
			return err
		}
		s.TCache = c
		backend = &tincaBackend{c: c}

	case Classic, ClassicNoJournal:
		copts := classic.Options{
			Assoc:             cfg.ClassicAssoc,
			NoMetaUpdates:     cfg.NoMetaUpdates,
			NoPersistBarriers: cfg.NoPersistBarriers,
			WriteThrough:      cfg.WriteThrough,
		}
		if cfg.Kind == Classic {
			copts.JournalBoundary = cfg.FSBlocks
		}
		cc, err := classic.Open(s.Mem, s.Disk, copts)
		if err != nil {
			return err
		}
		s.CCache = cc
		if cfg.Kind == Classic {
			j, err := jbd.Open(cc, s.Rec, jbd.Options{
				Start:   cfg.FSBlocks,
				Blocks:  cfg.JournalBlocks,
				Observe: cfg.Observe,
				Clock:   s.Clock,
			})
			if err != nil {
				return err
			}
			s.Journal = j
			backend = &journalBackend{j: j, cc: cc, frac: cfg.CheckpointFrac, ordered: cfg.JournalMode == Ordered}
		} else {
			backend = &directBackend{store: cc}
		}

	default:
		return fmt.Errorf("stack: unknown kind %v", cfg.Kind)
	}

	var err error
	if format {
		s.FS, err = fs.Format(backend, cfg.FSBlocks, cfg.InodeCount, fsOpts)
	} else {
		s.FS, err = fs.Mount(backend, fsOpts)
	}
	if err != nil {
		return err
	}
	if jb, ok := backend.(*journalBackend); ok && jb.ordered {
		_, _, dataStart := s.FS.Geometry()
		jb.SetMetadataBoundary(dataStart)
	}
	return nil
}

// Close flushes every layer down to the disk and stops the metrics
// endpoint if one is serving. With L3 tiering the upload pipeline is
// drained (every dirty L2 block durably uploaded) before it stops, so a
// cleanly closed stack leaves the object store current.
func (s *Stack) Close() error {
	s.CloseMetrics()
	err := s.FS.Close()
	if s.Tier != nil {
		s.Tier.Drain()
		s.Tier.Close()
		s.Tier = nil
	}
	return err
}

// Stats is a typed snapshot across the stack's layers. Cache is populated
// for the Tinca kind only (the Classic cache keeps its own counters in
// the shared Recorder, still reachable via Stack.Rec); Device is
// populated for every kind.
type Stats struct {
	Kind   Kind
	Cache  core.CacheStats // zero value for Classic kinds
	FS     fs.FSStats
	Device DeviceStats
	// Tier and Obj are the L3 tiering counters (zero value unless
	// Cfg.L3): the tier's pipelines and the object store's traffic and
	// accumulated price.
	Tier objstore.TierStats
	Obj  objstore.StoreStats
	// SimulatedNS is the simulated clock reading, the denominator for
	// throughput computations.
	SimulatedNS int64
}

// DeviceStats are the simulated-hardware counters the paper's evaluation
// reports: NVM persistence traffic and disk block I/O. They are cumulative
// since Stack creation; subtract two snapshots to meter an interval.
type DeviceStats struct {
	CLFlushes       int64 // NVM cache lines flushed
	SFences         int64 // NVM store fences
	NVMBytesWritten int64
	NVMBytesRead    int64
	DiskBlocksWrite int64
	DiskBlocksRead  int64
	DiskBytesWrite  int64
	DiskBytesRead   int64
}

// Sub returns the counter deltas d-prev, for metering an interval between
// two Stats snapshots.
func (d DeviceStats) Sub(prev DeviceStats) DeviceStats {
	return DeviceStats{
		CLFlushes:       d.CLFlushes - prev.CLFlushes,
		SFences:         d.SFences - prev.SFences,
		NVMBytesWritten: d.NVMBytesWritten - prev.NVMBytesWritten,
		NVMBytesRead:    d.NVMBytesRead - prev.NVMBytesRead,
		DiskBlocksWrite: d.DiskBlocksWrite - prev.DiskBlocksWrite,
		DiskBlocksRead:  d.DiskBlocksRead - prev.DiskBlocksRead,
		DiskBytesWrite:  d.DiskBytesWrite - prev.DiskBytesWrite,
		DiskBytesRead:   d.DiskBytesRead - prev.DiskBytesRead,
	}
}

// Add returns the counter sums d+o, for aggregating across stacks (e.g. a
// cluster of nodes).
func (d DeviceStats) Add(o DeviceStats) DeviceStats {
	return DeviceStats{
		CLFlushes:       d.CLFlushes + o.CLFlushes,
		SFences:         d.SFences + o.SFences,
		NVMBytesWritten: d.NVMBytesWritten + o.NVMBytesWritten,
		NVMBytesRead:    d.NVMBytesRead + o.NVMBytesRead,
		DiskBlocksWrite: d.DiskBlocksWrite + o.DiskBlocksWrite,
		DiskBlocksRead:  d.DiskBlocksRead + o.DiskBlocksRead,
		DiskBytesWrite:  d.DiskBytesWrite + o.DiskBytesWrite,
		DiskBytesRead:   d.DiskBytesRead + o.DiskBytesRead,
	}
}

// Stats returns a typed snapshot of the stack's counters. It replaces
// string-keyed Recorder lookups for the common cases; Rec remains
// available for everything else.
func (s *Stack) Stats() Stats {
	st := Stats{Kind: s.Cfg.Kind, SimulatedNS: int64(s.Clock.Now())}
	if s.TCache != nil {
		st.Cache = s.TCache.Stats()
	}
	if s.FS != nil {
		st.FS = s.FS.Stats()
	}
	st.Device = DeviceStats{
		CLFlushes:       s.Rec.Get(metrics.NVMCLFlush),
		SFences:         s.Rec.Get(metrics.NVMSFence),
		NVMBytesWritten: s.Rec.Get(metrics.NVMBytesWrite),
		NVMBytesRead:    s.Rec.Get(metrics.NVMBytesRead),
		DiskBlocksWrite: s.Rec.Get(metrics.DiskBlocksWrite),
		DiskBlocksRead:  s.Rec.Get(metrics.DiskBlocksRead),
		DiskBytesWrite:  s.Rec.Get(metrics.DiskBytesWrite),
		DiskBytesRead:   s.Rec.Get(metrics.DiskBytesRead),
	}
	if s.Tier != nil {
		st.Tier = s.Tier.Stats()
	}
	if s.Store != nil {
		st.Obj = s.Store.Stats()
	}
	return st
}

// Crash simulates a power failure: everything un-flushed in NVM is lost
// (modulo random cache-line evictions drawn from r) and all DRAM state
// disappears. The tier's pipelines stop un-drained — an upload that had
// finished is durable in the object store, one that had not leaves its
// blocks dirty in L2 under the persistent slot map; Remount re-attaches
// the tier from that map and queues the survivors for upload again.
func (s *Stack) Crash(r *rand.Rand, evictP float64) {
	if s.Tier != nil {
		s.Tier.Crash()
		s.Tier = nil
	}
	s.Mem.Crash(r, evictP)
	s.TCache, s.CCache, s.Journal, s.FS = nil, nil, nil, nil
}

// Remount brings the stack back up after Crash, running each layer's
// recovery (Tinca's Section 4.5 algorithm, or Classic's journal replay).
func (s *Stack) Remount() error { return s.bringUp(false) }

// ---- backends -----------------------------------------------------------

// tincaBackend maps file-system transactions 1:1 onto Tinca commits.
type tincaBackend struct{ c *core.Cache }

func (b *tincaBackend) ReadBlock(no uint64, p []byte) error { return b.c.Read(no, p) }
func (b *tincaBackend) Begin() fs.BackendTxn                { return &tincaTxn{t: b.c.Begin()} }
func (b *tincaBackend) Sync() error                         { return nil } // commits are already durable
func (b *tincaBackend) Close() error                        { return b.c.Close() }

// ConcurrentReads advertises fs.ConcurrentReader: the Tinca cache's read
// path is lock-striped and safe to call concurrently with commits, so the
// file system may serve data reads under its shared lock. The journal and
// direct backends do not implement the interface — their caches serialize
// internally, and the paper's Classic stack is measured fully serialized.
func (b *tincaBackend) ConcurrentReads() bool { return true }

// ReadBlockView implements fs.ViewReader over the cache's zero-copy
// ReadView: the returned view aliases the pinned NVM block (*core.View
// satisfies fs.BlockView directly).
func (b *tincaBackend) ReadBlockView(no uint64) (fs.BlockView, error) {
	v, err := b.c.ReadView(no)
	if err != nil {
		return nil, err
	}
	return &v, nil
}

type tincaTxn struct{ t *core.Txn }

func (t *tincaTxn) Write(no uint64, data []byte) { t.t.Write(no, data) }

// Revoke is a no-op for Tinca: a freed block's stale cached contents are
// harmless (the block is only read again after being re-allocated and
// re-written, and Tinca's commit makes the rewrite durable first).
func (t *tincaTxn) Revoke(uint64) {}
func (t *tincaTxn) Commit() error { return t.t.Commit() }
func (t *tincaTxn) Abort()        { t.t.Abort() }

// journalBackend routes transactions through the redo journal (Classic).
// In ordered mode only metadata blocks are journalled; data blocks are
// written to their home locations before the commit record, as ext4
// data=ordered does.
type journalBackend struct {
	j        *jbd.Journal
	cc       *classic.Cache
	frac     float64
	ordered  bool
	metaNext uint64 // first data-area block (set by SetMetadataBoundary)
}

// SetMetadataBoundary tells the backend where the file system's data area
// starts, so ordered mode can tell metadata from data blocks.
func (b *journalBackend) SetMetadataBoundary(dataStart uint64) { b.metaNext = dataStart }

func (b *journalBackend) ReadBlock(no uint64, p []byte) error { return b.j.ReadBlock(no, p) }
func (b *journalBackend) Begin() fs.BackendTxn                { return &journalTxn{b: b} }
func (b *journalBackend) Sync() error                         { return b.j.MaybeCheckpoint(b.frac) }
func (b *journalBackend) Close() error {
	if err := b.j.Close(); err != nil {
		return err
	}
	return b.cc.Close()
}

type journalTxn struct {
	b       *journalBackend
	updates []jbd.Update
	revoked []uint64
}

func (t *journalTxn) Write(no uint64, data []byte) {
	d := make([]byte, len(data))
	copy(d, data)
	t.updates = append(t.updates, jbd.Update{No: no, Data: d})
}

func (t *journalTxn) Revoke(no uint64) { t.revoked = append(t.revoked, no) }

func (t *journalTxn) Commit() error {
	updates := t.updates
	if t.b.ordered && t.b.metaNext > 0 {
		// Ordered mode: write data blocks home first, then journal only
		// the metadata blocks. The data-before-commit ordering is what
		// keeps metadata from referencing unwritten (stale) blocks.
		meta := updates[:0:0]
		for _, u := range updates {
			if u.No >= t.b.metaNext {
				if err := t.b.cc.WriteBlock(u.No, u.Data); err != nil {
					return err
				}
				continue
			}
			meta = append(meta, u)
		}
		updates = meta
	}
	if err := t.b.j.CommitTxn(jbd.Txn{Updates: updates, Revoked: t.revoked}); err != nil {
		return err
	}
	return t.b.j.MaybeCheckpoint(t.b.frac)
}

func (t *journalTxn) Abort() { t.updates = nil }

// directBackend writes in place with no journal (crash-unsafe baseline).
type directBackend struct{ store jbd.BlockStore }

func (b *directBackend) ReadBlock(no uint64, p []byte) error { return b.store.ReadBlock(no, p) }
func (b *directBackend) Begin() fs.BackendTxn                { return &directTxn{b: b} }
func (b *directBackend) Sync() error                         { return nil }
func (b *directBackend) Close() error {
	if c, ok := b.store.(*classic.Cache); ok {
		return c.Close()
	}
	return nil
}

type directTxn struct {
	b       *directBackend
	updates []jbd.Update
}

func (t *directTxn) Write(no uint64, data []byte) {
	d := make([]byte, len(data))
	copy(d, data)
	t.updates = append(t.updates, jbd.Update{No: no, Data: d})
}

// Revoke is a no-op without a journal.
func (t *directTxn) Revoke(uint64) {}

func (t *directTxn) Commit() error {
	for _, u := range t.updates {
		if err := t.b.store.WriteBlock(u.No, u.Data); err != nil {
			return err
		}
	}
	return nil
}

func (t *directTxn) Abort() { t.updates = nil }
