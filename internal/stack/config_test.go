package stack

import (
	"strings"
	"testing"

	"tinca/internal/core"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the error, "" for valid
	}{
		{"zero value", Config{}, ""},
		{"classic", Config{Kind: Classic}, ""},
		{"unknown kind", Config{Kind: Kind(42)}, "unknown kind"},
		{"negative NVM", Config{NVMBytes: -1}, "negative"},
		{"tiny NVM", Config{NVMBytes: 4096}, "too small"},
		{"tinca knobs delegate", Config{Kind: Tinca, Options: core.Options{RingBytes: 65}}, "cache line"},
		{"tinca group commit", Config{Kind: Tinca, Options: core.Options{GroupCommit: core.GroupCommit{MaxBatch: 4}}}, ""},
		{"tinca bad group commit", Config{Kind: Tinca, Options: core.Options{GroupCommit: core.GroupCommit{MaxBatch: -2}}}, "MaxBatch"},
		{"tinca destage", Config{Kind: Tinca, Options: core.Options{DestageDepth: 8}}, ""},
		{"classic destage", Config{Kind: Classic, Options: core.Options{DestageDepth: 8}}, "only to the Tinca kind"},
		{"unknown journal mode", Config{JournalMode: JournalMode(9)}, "journal mode"},
		{"checkpoint frac high", Config{CheckpointFrac: 1.5}, "CheckpointFrac"},
		{"checkpoint frac negative", Config{CheckpointFrac: -0.1}, "CheckpointFrac"},
		{"negative fs group commit", Config{GroupCommitBlocks: -1}, "GroupCommitBlocks"},
		{"negative fs interval", Config{GroupCommitIntervalNS: -1}, "GroupCommitIntervalNS"},
		{"negative page cache", Config{PageCacheBlocks: -1}, "PageCacheBlocks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// New must reject an invalid configuration instead of clamping it.
func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Kind: Kind(42)}); err == nil {
		t.Fatal("New accepted an unknown kind")
	}
	if _, err := New(Config{Kind: Tinca, Options: core.Options{DestageDepth: -1}}); err == nil {
		t.Fatal("New accepted a negative destage depth")
	}
}
