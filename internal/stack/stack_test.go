package stack

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

func smallConfig(kind Kind) Config {
	return Config{
		Kind:          kind,
		NVMBytes:      4 << 20,
		NVMProfile:    pmem.NVDIMM,
		DiskProfile:   blockdev.Null,
		FSBlocks:      4096,
		JournalBlocks: 256,
	}
}

func TestStackRoundTrip(t *testing.T) {
	for _, kind := range []Kind{Tinca, Classic, ClassicNoJournal} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s, err := New(smallConfig(kind))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.FS.Mkdir("/d"); err != nil {
				t.Fatal(err)
			}
			if err := s.FS.Create("/d/f"); err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("tinca"), 3000)
			if err := s.FS.WriteAt("/d/f", 0, payload); err != nil {
				t.Fatal(err)
			}
			got, err := s.FS.ReadFile("/d/f")
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("round trip failed: %v", err)
			}
			if err := s.FS.Check(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStackSurvivesCleanCrashRemount(t *testing.T) {
	// A "clean crash": everything committed, then power loss. Both
	// consistent stacks must come back with all committed data.
	for _, kind := range []Kind{Tinca, Classic} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s, err := New(smallConfig(kind))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				p := fmt.Sprintf("/f%d", i)
				if err := s.FS.WriteFile(p, bytes.Repeat([]byte{byte(i + 1)}, 5000)); err != nil {
					t.Fatal(err)
				}
			}
			s.Crash(nil, 0) // strictest image: nothing un-flushed survives
			if err := s.Remount(); err != nil {
				t.Fatalf("remount: %v", err)
			}
			if err := s.FS.Check(); err != nil {
				t.Fatalf("fsck: %v", err)
			}
			for i := 0; i < 20; i++ {
				p := fmt.Sprintf("/f%d", i)
				got, err := s.FS.ReadFile(p)
				if err != nil {
					t.Fatalf("%s: %v", p, err)
				}
				if len(got) != 5000 || got[0] != byte(i+1) {
					t.Fatalf("%s corrupted", p)
				}
			}
		})
	}
}

// TestTincaStackCrashConsistency crashes the full Tinca stack at many
// operation boundaries during a file workload and requires (a) fsck-clean
// recovery, (b) durability of all completed operations.
func TestTincaStackCrashConsistency(t *testing.T) {
	testStackCrashConsistency(t, Tinca)
}

// TestClassicStackCrashConsistency does the same for the journalled
// Classic stack: the paper's claim is that both provide identical data
// consistency, so both must pass the same harness.
func TestClassicStackCrashConsistency(t *testing.T) {
	testStackCrashConsistency(t, Classic)
}

func testStackCrashConsistency(t *testing.T, kind Kind) {
	rng := sim.NewRand(11)
	const stride = 47 // crash points sampled at this stride to keep runtime sane
	for k := int64(0); ; k += stride {
		s, err := New(smallConfig(kind))
		if err != nil {
			t.Fatal(err)
		}
		// Completed-op oracle: path -> payload for every op that returned.
		completed := make(map[uint64]byte)
		s.Mem.ArmCrash(k)
		crashed, _ := pmem.CatchCrash(func() {
			for i := uint64(0); i < 40; i++ {
				p := fmt.Sprintf("/file%d", i)
				if err := s.FS.WriteFile(p, bytes.Repeat([]byte{byte(i + 1)}, 6000)); err != nil {
					panic(err)
				}
				completed[i] = byte(i + 1)
			}
			// Overwrite a few (exercises COW / journal supersede).
			for i := uint64(0); i < 10; i++ {
				p := fmt.Sprintf("/file%d", i)
				if err := s.FS.WriteAt(p, 0, bytes.Repeat([]byte{byte(i + 101)}, 6000)); err != nil {
					panic(err)
				}
				completed[i] = byte(i + 101)
			}
		})
		if !crashed {
			s.Mem.DisarmCrash()
			t.Logf("%v workload covered by %d sampled crash points", kind, k/stride)
			return
		}
		s.Crash(rng, 0.5)
		if err := s.Remount(); err != nil {
			t.Fatalf("k=%d remount: %v", k, err)
		}
		if err := s.FS.Check(); err != nil {
			t.Fatalf("k=%d fsck: %v", k, err)
		}
		if kind == Tinca {
			if err := s.TCache.CheckInvariants(); err != nil {
				t.Fatalf("k=%d cache invariants: %v", k, err)
			}
		}
		// Durability + atomicity. An operation that returned must be fully
		// visible. The single operation in flight at the crash may be
		// either fully applied (committed but not acknowledged) or fully
		// absent — never partial.
		for i := uint64(0); i < 40; i++ {
			base, over := byte(i+1), byte(i+101)
			acked, wasAcked := completed[i]
			p := fmt.Sprintf("/file%d", i)
			got, err := s.FS.ReadFile(p)
			if err != nil {
				if wasAcked {
					t.Fatalf("k=%d acked %s lost: %v", k, p, err)
				}
				continue // never completed and not applied: fine
			}
			switch {
			case len(got) == 0 && !wasAcked:
				// Create committed, write didn't: fine.
			case len(got) == 6000 && allEqual(got, base):
				if wasAcked && acked != base {
					t.Fatalf("k=%d %s rolled back past acked overwrite", k, p)
				}
			case len(got) == 6000 && i < 10 && allEqual(got, over):
				// Overwrite applied; acceptable acked or in-flight.
			default:
				t.Fatalf("k=%d %s torn: len=%d first=%d", k, p, len(got), got[0])
			}
		}
		// The recovered stack stays usable.
		if err := s.FS.WriteFile("/post", []byte("alive")); err != nil {
			t.Fatalf("k=%d post-recovery write: %v", k, err)
		}
	}
}

func allEqual(p []byte, v byte) bool {
	for _, b := range p {
		if b != v {
			return false
		}
	}
	return true
}

func TestMetricsFlowThroughStack(t *testing.T) {
	s, err := New(smallConfig(Tinca))
	if err != nil {
		t.Fatal(err)
	}
	before := s.Rec.Snapshot()
	if err := s.FS.WriteFile("/m", bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	d := s.Rec.Snapshot().Sub(before)
	if d.Get(metrics.NVMCLFlush) == 0 {
		t.Fatal("no clflush recorded")
	}
	if d.Get(metrics.TxnCommit) == 0 {
		t.Fatal("no Tinca commits recorded")
	}
	if s.Clock.Now() == 0 {
		t.Fatal("no simulated time charged")
	}
}

func TestClassicDoubleWritesVisible(t *testing.T) {
	// Sanity check of the core phenomenon: for the same workload, Classic
	// flushes far more NVM lines than Tinca.
	run := func(kind Kind) int64 {
		s, err := New(smallConfig(kind))
		if err != nil {
			t.Fatal(err)
		}
		base := s.Rec.Get(metrics.NVMCLFlush)
		for i := 0; i < 50; i++ {
			p := fmt.Sprintf("/f%d", i%8)
			if err := s.FS.WriteFile(p, bytes.Repeat([]byte{byte(i)}, 8192)); err != nil {
				t.Fatal(err)
			}
		}
		return s.Rec.Get(metrics.NVMCLFlush) - base
	}
	tinca := run(Tinca)
	classic := run(Classic)
	if classic < tinca*2 {
		t.Fatalf("expected Classic to flush ≥2x Tinca's lines, got tinca=%d classic=%d", tinca, classic)
	}
}

func TestConcurrentFSOperations(t *testing.T) {
	// The stack must be safe under concurrent use: goroutines hammer
	// disjoint files while others read. Run under -race for full value.
	s, err := New(smallConfig(Tinca))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := fmt.Sprintf("/g%d", g)
			if err := s.FS.Create(p); err != nil {
				errs <- err
				return
			}
			buf := bytes.Repeat([]byte{byte(g + 1)}, 3000)
			for i := 0; i < 30; i++ {
				if err := s.FS.WriteAt(p, uint64(i*100), buf); err != nil {
					errs <- err
					return
				}
				got := make([]byte, 100)
				if _, err := s.FS.ReadAt(p, 0, got); err != nil {
					errs <- err
					return
				}
				if got[0] != byte(g+1) {
					errs <- fmt.Errorf("goroutine %d read %d", g, got[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.FS.Check(); err != nil {
		t.Fatal(err)
	}
	if s.TCache != nil {
		if err := s.TCache.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentCacheTxns(t *testing.T) {
	// Raw cache level: concurrent transactions on disjoint block ranges.
	s, err := New(smallConfig(Tinca))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 100)
			for i := 0; i < 20; i++ {
				txn := s.TCache.Begin()
				blk := make([]byte, 4096)
				blk[0] = byte(g + 1)
				txn.Write(base+uint64(i%10), blk)
				txn.Write(base+uint64((i+1)%10), blk)
				if err := txn.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.TCache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 4096)
	for g := 0; g < 6; g++ {
		if err := s.TCache.Read(uint64(g*100), p); err != nil || p[0] != byte(g+1) {
			t.Fatalf("goroutine %d data: %v %d", g, err, p[0])
		}
	}
}

func TestOrderedModeMetadataConsistency(t *testing.T) {
	// data=ordered journals only metadata: after any crash the file
	// system *structure* must be intact (fsck clean), though file
	// contents are not atomic — exactly ext4's contract.
	rng := sim.NewRand(23)
	crashes := 0
	for k := int64(200); k < 12000; k += 631 {
		cfg := smallConfig(Classic)
		cfg.JournalMode = Ordered
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Mem.ArmCrash(k)
		crashed, _ := pmem.CatchCrash(func() {
			for i := 0; i < 30; i++ {
				p := fmt.Sprintf("/o%d", i)
				if err := s.FS.WriteFile(p, bytes.Repeat([]byte{byte(i + 1)}, 6000)); err != nil {
					panic(err)
				}
			}
		})
		if !crashed {
			s.Mem.DisarmCrash()
			continue
		}
		crashes++
		s.Crash(rng, 0.5)
		if err := s.Remount(); err != nil {
			t.Fatalf("k=%d remount: %v", k, err)
		}
		if err := s.FS.Check(); err != nil {
			t.Fatalf("k=%d fsck (metadata must survive in ordered mode): %v", k, err)
		}
		// Still fully usable.
		if err := s.FS.WriteFile("/post", []byte("ok")); err != nil {
			t.Fatalf("k=%d post write: %v", k, err)
		}
	}
	if crashes == 0 {
		t.Fatal("no crash points hit the workload")
	}
}

func TestOrderedModeWritesLessToJournal(t *testing.T) {
	traffic := func(mode JournalMode) int64 {
		cfg := smallConfig(Classic)
		cfg.JournalMode = mode
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base := s.Rec.Get(metrics.JournalBlocks)
		for i := 0; i < 20; i++ {
			if err := s.FS.WriteFile(fmt.Sprintf("/j%d", i), bytes.Repeat([]byte{1}, 16<<10)); err != nil {
				t.Fatal(err)
			}
		}
		return s.Rec.Get(metrics.JournalBlocks) - base
	}
	dj, ord := traffic(DataJournal), traffic(Ordered)
	if ord*2 > dj {
		t.Fatalf("ordered mode should journal far fewer blocks: data=%d ordered=%d", dj, ord)
	}
}
