package stack

import (
	"bytes"
	"fmt"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/objstore"
	"tinca/internal/pmem"
)

func l3Config() Config {
	cfg := Config{
		Kind:        Tinca,
		NVMBytes:    2 << 20, // small NVM so evictions/destages reach the tier
		NVMProfile:  pmem.NVDIMM,
		DiskProfile: blockdev.Null,
		FSBlocks:    4096,
		L3:          true,
		L3Profile:   objstore.NullStore,
		L3L2Blocks:  512, // far below the span: real tiering pressure
	}
	cfg.DestageDepth = 4
	cfg.JournalBlocks = 256
	return cfg
}

func TestStackL3RoundTrip(t *testing.T) {
	s, err := New(l3Config())
	if err != nil {
		t.Fatal(err)
	}
	if s.Tier == nil || s.Store == nil {
		t.Fatal("L3 stack missing Tier/Store")
	}
	var want [][]byte
	for i := 0; i < 30; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 20000)
		want = append(want, p)
		if err := s.FS.WriteFile(fmt.Sprintf("/f%d", i), p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		got, err := s.FS.ReadFile(fmt.Sprintf("/f%d", i))
		if err != nil || !bytes.Equal(got, want[i]) {
			t.Fatalf("file %d corrupted: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Tier.DataSlots == 0 {
		t.Fatal("tier stats not populated")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close drains: everything dirty must have reached the store.
	if s.Tier != nil {
		t.Fatal("Close left Tier live")
	}
}

func TestStackL3CrashRemount(t *testing.T) {
	s, err := New(l3Config())
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 40; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 12000)
		want = append(want, p)
		if err := s.FS.WriteFile(fmt.Sprintf("/f%d", i), p); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash(nil, 0)
	if err := s.Remount(); err != nil {
		t.Fatalf("remount: %v", err)
	}
	if s.Tier == nil {
		t.Fatal("remount did not re-attach the tier")
	}
	if err := s.FS.Check(); err != nil {
		t.Fatalf("fsck: %v", err)
	}
	for i := 0; i < 40; i++ {
		got, err := s.FS.ReadFile(fmt.Sprintf("/f%d", i))
		if err != nil || !bytes.Equal(got, want[i]) {
			t.Fatalf("file %d lost across crash: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Two crashes back to back (the second mid-upload-backlog) must still
// recover everything: dirty L2 blocks ride the persistent slot map.
func TestStackL3DoubleCrash(t *testing.T) {
	s, err := New(l3Config())
	if err != nil {
		t.Fatal(err)
	}
	p1 := bytes.Repeat([]byte{0xa1}, 30000)
	if err := s.FS.WriteFile("/a", p1); err != nil {
		t.Fatal(err)
	}
	s.Crash(nil, 0)
	if err := s.Remount(); err != nil {
		t.Fatal(err)
	}
	p2 := bytes.Repeat([]byte{0xb2}, 30000)
	if err := s.FS.WriteFile("/b", p2); err != nil {
		t.Fatal(err)
	}
	s.Crash(nil, 0)
	if err := s.Remount(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct {
		path string
		want []byte
	}{{"/a", p1}, {"/b", p2}} {
		got, err := s.FS.ReadFile(f.path)
		if err != nil || !bytes.Equal(got, f.want) {
			t.Fatalf("%s lost: %v", f.path, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStackL3ConfigGating(t *testing.T) {
	cfg := smallConfig(Classic)
	cfg.L3 = true
	if _, err := New(cfg); err == nil {
		t.Fatal("Classic + L3 accepted")
	}
	cfg = smallConfig(Tinca)
	cfg.L3L2Blocks = 512 // without L3
	if _, err := New(cfg); err == nil {
		t.Fatal("L3L2Blocks without L3 accepted")
	}
}
