package stack

import (
	"bytes"
	"errors"
	"testing"

	"tinca/internal/errs"
	"tinca/internal/fs"
)

// TestReadAtViewThroughStack is the end-to-end zero-copy check: on the
// Tinca kind, FS.ReadAtView of committed data must alias a pinned NVM
// cache block (the fs → tincaBackend → core.ReadView chain), stay a
// stable snapshot while the same range is overwritten and the cache
// churns, and account the pin in the cache's view counters. The Classic
// kinds lack the ViewReader capability, so their views must be private
// copies with identical contents.
func TestReadAtViewThroughStack(t *testing.T) {
	for _, kind := range []Kind{Tinca, Classic, ClassicNoJournal} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s, err := New(smallConfig(kind))
			if err != nil {
				t.Fatal(err)
			}
			content := bytes.Repeat([]byte("stacked view "), 1200) // ~3.8 blocks
			if err := s.FS.WriteFile("/v", content); err != nil {
				t.Fatal(err)
			}
			if err := s.FS.Sync(); err != nil {
				t.Fatal(err)
			}

			var got []byte
			var zero int
			var held fs.FileView
			for off := uint64(0); off < uint64(len(content)); {
				v, err := s.FS.ReadAtView("/v", off, len(content))
				if err != nil {
					t.Fatalf("off %d: %v", off, err)
				}
				if v.ZeroCopy() {
					zero++
				}
				got = append(got, v.Bytes()...)
				off += uint64(v.Len())
				if off >= uint64(len(content)) {
					held = v // keep the last view open across the overwrite below
					break
				}
				if err := v.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(got, content) {
				t.Fatal("views reassembled different bytes than written")
			}
			if kind == Tinca {
				if zero == 0 {
					t.Fatal("Tinca stack produced no zero-copy views")
				}
				if s.TCache.Stats().ZeroCopyViews == 0 {
					t.Fatal("cache counters saw no zero-copy views")
				}
				if s.TCache.OpenViews() == 0 {
					t.Fatal("held view not accounted as open in the cache")
				}
			} else if zero != 0 {
				t.Fatalf("%v stack claimed %d zero-copy views without a ViewReader backend", kind, zero)
			}

			// Overwrite the viewed range; the open view must not drift.
			tail := held.Len()
			want := append([]byte(nil), held.Bytes()...)
			if err := s.FS.WriteAt("/v", uint64(len(content)-tail), bytes.Repeat([]byte{'X'}, tail)); err != nil {
				t.Fatal(err)
			}
			if err := s.FS.Sync(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(held.Bytes(), want) {
				t.Fatal("open view drifted after overwrite + sync")
			}
			if err := held.Close(); err != nil {
				t.Fatal(err)
			}
			if kind == Tinca {
				if n := s.TCache.OpenViews(); n != 0 {
					t.Fatalf("%d cache views still open after Close", n)
				}
				if err := s.TCache.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.FS.Check(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestErrorSentinelsAcrossLayers checks that the shared sentinels are
// matchable with errors.Is no matter which layer produced the error.
func TestErrorSentinelsAcrossLayers(t *testing.T) {
	s, err := New(smallConfig(Tinca))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FS.WriteFile("/e", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// fs layer: read past EOF.
	if _, err := s.FS.ReadAtView("/e", 100, 1); !errors.Is(err, errs.ErrOutOfRange) {
		t.Fatalf("fs EOF error %v does not match errs.ErrOutOfRange", err)
	}
	var buf [4]byte
	if _, err := s.FS.ReadAt("/e", 100, buf[:]); !errors.Is(err, errs.ErrOutOfRange) {
		t.Fatalf("fs ReadAt EOF error %v does not match errs.ErrOutOfRange", err)
	}

	// core layer: block beyond the disk, and use-after-close.
	if _, err := s.TCache.ReadView(1 << 60); !errors.Is(err, errs.ErrOutOfRange) {
		t.Fatalf("core out-of-range error %v does not match errs.ErrOutOfRange", err)
	}
	v, err := s.TCache.ReadView(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); !errors.Is(err, errs.ErrViewExpired) {
		t.Fatalf("core double-close error %v does not match errs.ErrViewExpired", err)
	}

	c := s.TCache
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadView(0); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("closed-cache error %v does not match errs.ErrClosed", err)
	}
}
