package stack

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"tinca/internal/core"
	"tinca/internal/metrics"
	"tinca/internal/sim"
)

func buildObservedStack(t *testing.T) *Stack {
	t.Helper()
	s, err := New(Config{Kind: Tinca, Options: core.Options{Observe: true}, TraceEvents: 1 << 12})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := s.FS.WriteFile(fmt.Sprintf("/f%d", i), []byte(strings.Repeat("x", 5000))); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if _, err := s.FS.ReadFile("/f0"); err != nil {
		t.Fatalf("read: %v", err)
	}
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsEndpoint(t *testing.T) {
	s := buildObservedStack(t)
	defer s.Close()

	addr, err := s.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	if _, err := s.ServeMetrics("127.0.0.1:0"); err == nil {
		t.Fatal("second ServeMetrics did not fail")
	}

	code, body := get(t, "http://"+addr+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"tinca_txn_commit",
		"# TYPE tinca_commit_total_ns histogram",
		"tinca_commit_total_ns_count",
		"tinca_fs_write_ns_count",
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%.2000s", want, body)
		}
	}

	code, body = get(t, "http://"+addr+"/trace")
	if code != 200 {
		t.Fatalf("/trace status %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/trace has no spans")
	}

	code, _ = get(t, "http://"+addr+"/debug/pprof/")
	if code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}

	s.CloseMetrics()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("endpoint still serving after CloseMetrics")
	}
	// And it can be reopened.
	if _, err := s.ServeMetrics("127.0.0.1:0"); err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
}

func TestServeMetricsWithoutTracer(t *testing.T) {
	s, err := New(Config{Kind: Tinca, Options: core.Options{Observe: true}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	addr, err := s.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	if code, _ := get(t, "http://"+addr+"/trace"); code != 404 {
		t.Fatalf("/trace without tracer: status %d", code)
	}
}

func TestObserveWiresEveryLayer(t *testing.T) {
	s := buildObservedStack(t)
	defer s.Close()

	st := s.Stats()
	if st.FS.WriteLatency.Count == 0 || st.FS.ReadLatency.Count == 0 {
		t.Fatalf("fs latencies empty: %+v", st.FS)
	}
	if st.Cache.CommitLatency.Count == 0 || len(st.Cache.CommitPhases) == 0 {
		t.Fatalf("cache latencies empty: %+v", st.Cache.CommitLatency)
	}
	// pmem flush/fence cadence histograms are armed by the stack.
	if n := s.Rec.HistSnapshot(metrics.HistNVMFlushLines).Count; n == 0 {
		t.Fatal("nvm flush-burst histogram empty")
	}
	if n := s.Rec.HistSnapshot(metrics.HistNVMFenceGap).Count; n == 0 {
		t.Fatal("nvm fence-gap histogram empty")
	}
	if s.Tracer == nil || s.Tracer.Len() == 0 {
		t.Fatal("tracer empty")
	}

	// Classic kind: journal phases are observed instead.
	cs, err := New(Config{Kind: Classic, Options: core.Options{Observe: true}})
	if err != nil {
		t.Fatalf("New classic: %v", err)
	}
	defer cs.Close()
	for i := 0; i < 10; i++ {
		if err := cs.FS.WriteFile(fmt.Sprintf("/f%d", i), []byte("classic")); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := cs.FS.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if n := cs.Rec.HistSnapshot(metrics.HistJBDCommit).Count; n == 0 {
		t.Fatal("jbd commit histogram empty")
	}
	if n := cs.Rec.HistSnapshot(metrics.HistJBDLog).Count; n == 0 {
		t.Fatal("jbd log histogram empty")
	}
}

func TestObserveSurvivesRemount(t *testing.T) {
	s := buildObservedStack(t)
	defer s.Close()
	tr := s.Tracer
	s.Crash(sim.NewRand(1), 0.5)
	if err := s.Remount(); err != nil {
		t.Fatalf("remount: %v", err)
	}
	if s.Tracer != tr {
		t.Fatal("tracer replaced across remount")
	}
	// The remount's recovery pass was timed.
	if n := s.Rec.HistSnapshot(metrics.HistRecovery).Count; n == 0 {
		t.Fatal("recovery histogram empty after remount")
	}
	if err := s.FS.WriteFile("/after", []byte("ok")); err != nil {
		t.Fatalf("write after remount: %v", err)
	}
}
