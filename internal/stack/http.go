package stack

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"tinca/internal/metrics"
)

// ServeMetrics starts an HTTP server on addr (host:port; use ":0" for an
// ephemeral port) exposing the stack's live observability surface:
//
//	/metrics       Prometheus 0.0.4 text exposition of the stack's
//	               Recorder: every counter/gauge as tinca_<name>, every
//	               latency histogram with cumulative buckets, _sum and
//	               _count. Scrape it, or `curl` it and eyeball.
//	/trace         Chrome trace_event JSON of the tracer ring (load in
//	               chrome://tracing or https://ui.perfetto.dev). 404
//	               when the stack was built without TraceEvents/Tracer.
//	/blackbox      Plain-text forensic report decoded live from the NVM
//	               flight ring: last sealed generation, txns in flight,
//	               last-N event timeline. 404 when the stack was built
//	               without Options.FlightRecorder (or is not Tinca).
//	/debug/pprof/  net/http/pprof (heap, goroutine, profile, ...), for
//	               profiling the simulator process itself.
//
// It returns the bound address ("127.0.0.1:43210") so callers using ":0"
// can report where to point the browser. The server runs until
// CloseMetrics or Close; serving is independent of the simulated clock.
func (s *Stack) ServeMetrics(addr string) (string, error) {
	if s.metricsSrv != nil {
		return "", fmt.Errorf("stack: metrics endpoint already serving")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("stack: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		// A few cache-level values live outside the Recorder (the sharded
		// index and the views-open atomic); publish them as gauges at
		// scrape time so Prometheus sees the full counter surface.
		if c := s.TCache; c != nil {
			st := c.Stats()
			s.Rec.Set(metrics.CacheIndexGrows, st.IndexGrows)
			s.Rec.Set(metrics.CacheViewsOpen, st.OpenViews)
		}
		if t := s.Tier; t != nil {
			// The upload-queue depth is the tier's live dirty-slot count;
			// publish it (and the L2 disk's queue depth, already a live
			// gauge in the Recorder) at scrape time.
			s.Rec.Set(metrics.TierUploadQueueDepth, int64(t.Stats().DirtySlots))
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.WritePrometheus(w, s.Rec, "")
	})
	mux.HandleFunc("/blackbox", func(w http.ResponseWriter, r *http.Request) {
		c := s.TCache
		if c == nil {
			http.Error(w, "no Tinca cache in this stack", http.StatusNotFound)
			return
		}
		bb := c.Blackbox()
		if bb == nil {
			http.Error(w, "stack built without Options.FlightRecorder", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		bb.Report(w, 32)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if s.Tracer == nil {
			http.Error(w, "stack built without a tracer (set TraceEvents)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		s.Tracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.metricsSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func(srv *http.Server) {
		// ErrServerClosed is the normal shutdown path. Anything else on a
		// just-bound local listener is a programming error, so it panics
		// rather than being swallowed in a goroutine.
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			panic(fmt.Sprintf("stack: metrics server: %v", err))
		}
	}(s.metricsSrv)
	return ln.Addr().String(), nil
}

// CloseMetrics stops the HTTP endpoint started by ServeMetrics. Safe to
// call when none is serving.
func (s *Stack) CloseMetrics() {
	if s.metricsSrv == nil {
		return
	}
	s.metricsSrv.Close()
	s.metricsSrv = nil
}
