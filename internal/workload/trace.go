package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tinca/internal/fs"
	"tinca/internal/sim"
)

// TraceRecord is one I/O from a block trace: a read or write of Bytes
// bytes at Offset. The text format (ParseTrace) is the common CSV shape
// of public block traces (MSR Cambridge et al.), reduced to the fields
// the storage stack cares about:
//
//	W,40960,8192      # write 8KB at offset 40960
//	R,0,4096          # read 4KB at offset 0
//
// Lines starting with '#' and blank lines are ignored.
type TraceRecord struct {
	Write  bool
	Offset uint64
	Bytes  int
}

// ParseTrace reads records from r until EOF.
func ParseTrace(r io.Reader) ([]TraceRecord, error) {
	var recs []TraceRecord
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 3 {
			return nil, fmt.Errorf("workload: trace line %d: need op,offset,bytes", line)
		}
		var rec TraceRecord
		switch strings.TrimSpace(strings.ToUpper(parts[0])) {
		case "W", "WRITE":
			rec.Write = true
		case "R", "READ":
			rec.Write = false
		default:
			return nil, fmt.Errorf("workload: trace line %d: bad op %q", line, parts[0])
		}
		off, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: offset: %v", line, err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad length %q", line, parts[2])
		}
		rec.Offset = off
		rec.Bytes = n
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// FormatTrace writes records in the ParseTrace text format.
func FormatTrace(w io.Writer, recs []TraceRecord) error {
	for _, r := range recs {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%d\n", op, r.Offset, r.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// SynthesizeTrace generates a random but reproducible trace over a span
// of spanBytes with the given write fraction, for tests and demos.
func SynthesizeTrace(seed int64, n int, spanBytes uint64, writePct int, maxIO int) []TraceRecord {
	r := sim.NewRand(seed)
	if maxIO <= 0 {
		maxIO = 16 << 10
	}
	recs := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		nb := 512 * (1 + r.Intn(maxIO/512))
		off := uint64(r.Int63n(int64(spanBytes)))
		recs = append(recs, TraceRecord{
			Write:  r.Intn(100) < writePct,
			Offset: off,
			Bytes:  nb,
		})
	}
	return recs
}

// ReplayTrace replays records against one file (created and sized on
// demand), returning the executed counts. Reads beyond the current EOF
// are served as zeroes (the trace may reference not-yet-written space).
func ReplayTrace(f FileAPI, path string, recs []TraceRecord) (Counts, error) {
	if err := f.Create(path); err != nil && err != fs.ErrExist {
		return Counts{}, err
	}
	var cnt Counts
	buf := make([]byte, 0)
	for i, rec := range recs {
		if rec.Bytes > len(buf) {
			buf = make([]byte, rec.Bytes)
		}
		if rec.Write {
			for j := 0; j < rec.Bytes; j += 512 {
				buf[j] = byte(i)
			}
			if err := f.WriteAt(path, rec.Offset, buf[:rec.Bytes]); err != nil {
				return cnt, fmt.Errorf("workload: trace record %d: %w", i, err)
			}
			cnt.WriteOps++
		} else {
			info, err := f.Stat(path)
			if err != nil {
				return cnt, err
			}
			if rec.Offset < info.Size {
				if _, err := f.ReadAt(path, rec.Offset, buf[:rec.Bytes]); err != nil && err != fs.ErrReadRange {
					return cnt, fmt.Errorf("workload: trace record %d: %w", i, err)
				}
			}
			cnt.ReadOps++
		}
		cnt.Bytes += int64(rec.Bytes)
	}
	return cnt, nil
}
