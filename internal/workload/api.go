// Package workload implements the benchmark generators of Table 2:
//
//   - Fio: mixed random 4KB reads/writes at configurable read/write ratios
//     (the paper's 3/7, 5/5, 7/3 micro-benchmark);
//   - Filebench personalities: fileserver (R/W 1/2, 16KB), webproxy (5/1),
//     varmail (1/1 with fsync), matching the paper's macro-benchmarks;
//   - TeraGen: the sequential row generator used for the HDFS cluster test.
//
// Generators drive any FileAPI — the local file system or a distributed
// volume — so the same workload code runs in the local and cluster
// experiments.
package workload

import "tinca/internal/fs"

// FileAPI is the file interface workloads drive. *fs.FS implements it
// directly; cluster volumes provide replicated implementations.
type FileAPI interface {
	Create(path string) error
	Mkdir(path string) error
	Remove(path string) error
	WriteAt(path string, off uint64, data []byte) error
	Append(path string, data []byte) error
	ReadAt(path string, off uint64, p []byte) (int, error)
	Stat(path string) (fs.FileInfo, error)
	Fsync(path string) error
}

// Counts aggregates what a generator executed, for normalizing metrics.
type Counts struct {
	ReadOps  int64 // read primitives issued
	WriteOps int64 // write primitives issued (create/write/append/delete)
	FileOps  int64 // whole-file operations (Filebench OPs accounting)
	Bytes    int64 // payload bytes moved
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.ReadOps += other.ReadOps
	c.WriteOps += other.WriteOps
	c.FileOps += other.FileOps
	c.Bytes += other.Bytes
}
