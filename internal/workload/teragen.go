package workload

import (
	"encoding/binary"
	"fmt"

	"tinca/internal/fs"
	"tinca/internal/sim"
)

// TeraGenConfig parameterizes the TeraGen row generator (Table 2: all
// writes, 100 bytes per row). Rows are streamed into part files with
// buffered appends, the way an HDFS writer streams a block.
type TeraGenConfig struct {
	Dir       string // output directory (default "/teragen")
	Rows      int64  // rows to generate
	RowBytes  int    // default 100 (10-byte key + 90-byte value)
	PartRows  int64  // rows per part file (default 4096)
	AppendBuf int    // append buffer (default 32KB)
	Seed      int64
}

func (c TeraGenConfig) withDefaults() TeraGenConfig {
	if c.Dir == "" {
		c.Dir = "/teragen"
	}
	if c.RowBytes == 0 {
		c.RowBytes = 100
	}
	if c.PartRows == 0 {
		c.PartRows = 4096
	}
	if c.AppendBuf == 0 {
		c.AppendBuf = 32 << 10
	}
	return c
}

// RunTeraGen generates cfg.Rows rows and returns the counts (Bytes is the
// payload volume, the "per MB generated" denominator of Figure 10).
func RunTeraGen(f FileAPI, cfg TeraGenConfig) (Counts, error) {
	cfg = cfg.withDefaults()
	if err := f.Mkdir(cfg.Dir); err != nil && err != fs.ErrExist {
		return Counts{}, err
	}
	r := sim.NewRand(cfg.Seed)
	row := make([]byte, cfg.RowBytes)
	buf := make([]byte, 0, cfg.AppendBuf)
	var cnt Counts

	part := -1
	var partPath string
	var rowsInPart int64

	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := f.Append(partPath, buf); err != nil {
			return err
		}
		cnt.WriteOps++
		cnt.Bytes += int64(len(buf))
		buf = buf[:0]
		return nil
	}

	for i := int64(0); i < cfg.Rows; i++ {
		if part < 0 || rowsInPart >= cfg.PartRows {
			if err := flush(); err != nil {
				return cnt, err
			}
			part++
			rowsInPart = 0
			partPath = fmt.Sprintf("%s/part-%05d", cfg.Dir, part)
			if err := f.Create(partPath); err != nil {
				return cnt, err
			}
		}
		// TeraGen row: 10-byte big-endian-ish key, then filler.
		binary.BigEndian.PutUint64(row[0:8], r.Uint64())
		row[8] = byte(i)
		row[9] = byte(i >> 8)
		for j := cfg.RowBytes - 1; j >= 10; j -= 16 {
			row[j] = byte(i + int64(j))
		}
		buf = append(buf, row...)
		rowsInPart++
		if len(buf)+cfg.RowBytes > cfg.AppendBuf {
			if err := flush(); err != nil {
				return cnt, err
			}
		}
	}
	if err := flush(); err != nil {
		return cnt, err
	}
	return cnt, nil
}
