package workload_test

import (
	"bytes"
	"strings"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

func testStack(t *testing.T) *stack.Stack {
	t.Helper()
	s, err := stack.New(stack.Config{
		Kind:        stack.Tinca,
		NVMBytes:    8 << 20,
		NVMProfile:  pmem.NVDIMM,
		DiskProfile: blockdev.Null,
		FSBlocks:    8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFioMixRespectsRatio(t *testing.T) {
	s := testStack(t)
	cnt, err := workload.RunFio(s.FS, workload.FioConfig{
		FileBytes: 2 << 20, Ops: 2000, ReadPct: 30, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := cnt.ReadOps + cnt.WriteOps
	if total != 2000 {
		t.Fatalf("ops = %d", total)
	}
	readFrac := float64(cnt.ReadOps) / float64(total)
	if readFrac < 0.25 || readFrac > 0.35 {
		t.Fatalf("read fraction = %v, want ~0.30", readFrac)
	}
	if err := s.FS.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFioDeterministic(t *testing.T) {
	run := func() metrics.Snapshot {
		s := testStack(t)
		if _, err := workload.RunFio(s.FS, workload.FioConfig{
			FileBytes: 1 << 20, Ops: 500, ReadPct: 50, Seed: 7,
		}); err != nil {
			t.Fatal(err)
		}
		return s.Rec.Snapshot()
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("non-deterministic counter %s: %d vs %d", k, v, b[k])
		}
	}
}

func TestFilebenchProfilesRun(t *testing.T) {
	for _, prof := range []workload.Profile{workload.Fileserver, workload.Webproxy, workload.Varmail} {
		prof := prof
		t.Run(prof.String(), func(t *testing.T) {
			s := testStack(t)
			cnt, err := workload.RunFilebench(s.FS, workload.FilebenchConfig{
				Profile: prof, Files: 32, FileBytes: 16 << 10, Ops: 300, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if cnt.FileOps != 300 {
				t.Fatalf("file ops = %d", cnt.FileOps)
			}
			if cnt.ReadOps == 0 || cnt.WriteOps == 0 {
				t.Fatalf("degenerate mix: r=%d w=%d", cnt.ReadOps, cnt.WriteOps)
			}
			if err := s.FS.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFilebenchMixDirection(t *testing.T) {
	// Webproxy must be read-heavier than fileserver; varmail in between.
	frac := func(prof workload.Profile) float64 {
		s := testStack(t)
		cnt, err := workload.RunFilebench(s.FS, workload.FilebenchConfig{
			Profile: prof, Files: 32, FileBytes: 16 << 10, Ops: 600, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(cnt.ReadOps) / float64(cnt.ReadOps+cnt.WriteOps)
	}
	fsrv, wp := frac(workload.Fileserver), frac(workload.Webproxy)
	if wp <= fsrv {
		t.Fatalf("webproxy read frac %v <= fileserver %v", wp, fsrv)
	}
	if wp < 0.7 {
		t.Fatalf("webproxy read frac %v, want read-dominated", wp)
	}
	if fsrv > 0.5 {
		t.Fatalf("fileserver read frac %v, want write-dominated", fsrv)
	}
}

func TestTeraGenVolume(t *testing.T) {
	s := testStack(t)
	cnt, err := workload.RunTeraGen(s.FS, workload.TeraGenConfig{Rows: 10000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Bytes != 10000*100 {
		t.Fatalf("bytes = %d, want %d", cnt.Bytes, 10000*100)
	}
	// Part files must exist with the full payload.
	names, err := s.FS.ReadDir("/teragen")
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range names {
		info, err := s.FS.Stat("/teragen/" + n)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size
	}
	if total != 10000*100 {
		t.Fatalf("on-fs bytes = %d", total)
	}
	if err := s.FS.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceParseFormatRoundTrip(t *testing.T) {
	recs := workload.SynthesizeTrace(4, 100, 8<<20, 40, 16<<10)
	var buf bytes.Buffer
	if err := workload.FormatTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	parsed, err := workload.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(recs) {
		t.Fatalf("len %d != %d", len(parsed), len(recs))
	}
	for i := range recs {
		if parsed[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, parsed[i], recs[i])
		}
	}
}

func TestTraceParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"X,1,2", "W,notanum,2", "W,1", "R,1,-5"} {
		if _, err := workload.ParseTrace(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	// Comments and blanks are fine.
	recs, err := workload.ParseTrace(strings.NewReader("# header\n\nW,0,4096\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("comment handling: %v %d", err, len(recs))
	}
}

func TestReplayTraceOnStack(t *testing.T) {
	s := testStack(t)
	recs := workload.SynthesizeTrace(9, 300, 4<<20, 50, 8<<10)
	cnt, err := workload.ReplayTrace(s.FS, "/trace.dat", recs)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.WriteOps+cnt.ReadOps != 300 {
		t.Fatalf("ops = %d", cnt.WriteOps+cnt.ReadOps)
	}
	if err := s.FS.Check(); err != nil {
		t.Fatal(err)
	}
}
