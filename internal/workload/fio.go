package workload

import (
	"fmt"
	"math/rand"

	"tinca/internal/fs"
	"tinca/internal/sim"
)

// FioConfig parameterizes the Fio-style micro-benchmark: random aligned
// requests against one pre-allocated file, with a configurable read
// percentage (Table 2 uses request size 4KB and read/write ratios 3/7,
// 5/5, 7/3).
type FioConfig struct {
	Path         string // file path (default "/fio.dat")
	FileBytes    uint64 // dataset size (must be a multiple of RequestBytes)
	RequestBytes int    // request size (default 4096)
	ReadPct      int    // 0..100
	Ops          int    // number of requests to issue
	Seed         int64
	// SkipLayout reuses an existing file (for multi-phase runs).
	SkipLayout bool
}

func (c FioConfig) withDefaults() FioConfig {
	if c.Path == "" {
		c.Path = "/fio.dat"
	}
	if c.RequestBytes == 0 {
		c.RequestBytes = 4096
	}
	if c.FileBytes == 0 {
		c.FileBytes = 8 << 20
	}
	return c
}

// LayoutFio pre-allocates the benchmark file sequentially (Fio's layout
// phase, excluded from measurement by the harness snapshotting after it).
func LayoutFio(f FileAPI, cfg FioConfig) error {
	cfg = cfg.withDefaults()
	if err := f.Create(cfg.Path); err != nil && err != fs.ErrExist {
		return err
	}
	r := sim.NewRand(cfg.Seed + 1)
	const chunk = 64 << 10
	buf := make([]byte, chunk)
	for off := uint64(0); off < cfg.FileBytes; off += chunk {
		r.Read(buf)
		n := uint64(chunk)
		if off+n > cfg.FileBytes {
			n = cfg.FileBytes - off
		}
		if err := f.WriteAt(cfg.Path, off, buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// RunFio issues cfg.Ops random requests and returns what it executed.
func RunFio(f FileAPI, cfg FioConfig) (Counts, error) {
	cfg = cfg.withDefaults()
	if !cfg.SkipLayout {
		if err := LayoutFio(f, cfg); err != nil {
			return Counts{}, err
		}
	}
	if cfg.FileBytes < uint64(cfg.RequestBytes) {
		return Counts{}, fmt.Errorf("workload: file smaller than request")
	}
	r := sim.NewRand(cfg.Seed)
	blocks := cfg.FileBytes / uint64(cfg.RequestBytes)
	wbuf := make([]byte, cfg.RequestBytes)
	rbuf := make([]byte, cfg.RequestBytes)
	var cnt Counts
	for i := 0; i < cfg.Ops; i++ {
		off := uint64(r.Int63n(int64(blocks))) * uint64(cfg.RequestBytes)
		if r.Intn(100) < cfg.ReadPct {
			if _, err := f.ReadAt(cfg.Path, off, rbuf); err != nil {
				return cnt, err
			}
			cnt.ReadOps++
		} else {
			fillRandom(r, wbuf)
			if err := f.WriteAt(cfg.Path, off, wbuf); err != nil {
				return cnt, err
			}
			cnt.WriteOps++
		}
		cnt.Bytes += int64(cfg.RequestBytes)
	}
	return cnt, nil
}

func fillRandom(r *rand.Rand, p []byte) {
	// Fill sparsely: patterned payload with a random stamp is much cheaper
	// than fully random bytes and irrelevant to the storage stack.
	stamp := r.Uint64()
	for i := 0; i+8 <= len(p); i += 512 {
		p[i] = byte(stamp)
		p[i+1] = byte(stamp >> 8)
		p[i+2] = byte(stamp >> 16)
		p[i+3] = byte(stamp >> 24)
	}
}
