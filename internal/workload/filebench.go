package workload

import (
	"fmt"

	"tinca/internal/fs"
	"tinca/internal/sim"
)

// Profile selects a Filebench personality (Table 2).
type Profile int

const (
	// Fileserver emulates a file server on many files: R/W ratio 1/2,
	// 16KB requests.
	Fileserver Profile = iota
	// Webproxy emulates a web proxy: read-heavy, R/W 5/1.
	Webproxy
	// Varmail emulates a mail server: R/W 1/1 with fsync after writes.
	Varmail
)

func (p Profile) String() string {
	switch p {
	case Fileserver:
		return "fileserver"
	case Webproxy:
		return "webproxy"
	case Varmail:
		return "varmail"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// FilebenchConfig parameterizes a personality run.
type FilebenchConfig struct {
	Profile   Profile
	Dir       string // working directory (default "/filebench")
	Files     int    // working-set size in files (default 128)
	FileBytes int    // mean file size (default 64KB)
	IOBytes   int    // request size (Table 2: 16KB)
	Ops       int    // primitive operations to execute
	Seed      int64
}

func (c FilebenchConfig) withDefaults() FilebenchConfig {
	if c.Dir == "" {
		c.Dir = "/filebench"
	}
	if c.Files == 0 {
		c.Files = 128
	}
	if c.FileBytes == 0 {
		c.FileBytes = 64 << 10
	}
	if c.IOBytes == 0 {
		c.IOBytes = 16 << 10
	}
	return c
}

// filebench op kinds.
const (
	fbCreateWrite = iota // create a file and write it whole
	fbAppend             // append one I/O unit
	fbReadWhole          // read a file start to finish
	fbReadRand           // one random I/O-sized read
	fbDelete             // delete a file
	fbStat               // stat a file
	fbNumOps
)

// mix returns the op weights for a personality. Write-ish ops are
// fbCreateWrite, fbAppend, fbDelete; the ratios approximate Table 2
// (fileserver 1/2 R/W, webproxy 5/1, varmail 1/1).
func (p Profile) mix() [fbNumOps]int {
	switch p {
	case Fileserver:
		return [fbNumOps]int{fbCreateWrite: 3, fbAppend: 3, fbReadWhole: 2, fbReadRand: 1, fbDelete: 2, fbStat: 1}
	case Webproxy:
		return [fbNumOps]int{fbCreateWrite: 1, fbAppend: 0, fbReadWhole: 4, fbReadRand: 1, fbDelete: 0, fbStat: 1}
	case Varmail:
		return [fbNumOps]int{fbCreateWrite: 2, fbAppend: 1, fbReadWhole: 2, fbReadRand: 1, fbDelete: 1, fbStat: 0}
	default:
		panic("workload: unknown profile")
	}
}

// fsyncAfterWrites reports whether the personality syncs after every write
// (varmail's defining behaviour).
func (p Profile) fsyncAfterWrites() bool { return p == Varmail }

// RunFilebench pre-populates the working set and executes cfg.Ops
// operations of the personality's mix.
func RunFilebench(f FileAPI, cfg FilebenchConfig) (Counts, error) {
	cfg = cfg.withDefaults()
	r := sim.NewRand(cfg.Seed)
	if err := f.Mkdir(cfg.Dir); err != nil && err != fs.ErrExist {
		return Counts{}, err
	}

	// Working set: names cycle; a DRAM list tracks which exist.
	var cnt Counts
	nextID := 0
	var live []string
	path := func(id int) string { return fmt.Sprintf("%s/f%06d", cfg.Dir, id) }
	buf := make([]byte, cfg.IOBytes)

	createWrite := func() error {
		p := path(nextID)
		nextID++
		if err := f.Create(p); err != nil {
			return err
		}
		size := cfg.FileBytes/2 + r.Intn(cfg.FileBytes) // mean ≈ FileBytes
		for off := 0; off < size; off += cfg.IOBytes {
			n := cfg.IOBytes
			if off+n > size {
				n = size - off
			}
			fillRandom(r, buf[:n])
			if err := f.WriteAt(p, uint64(off), buf[:n]); err != nil {
				return err
			}
			cnt.Bytes += int64(n)
		}
		if cfg.Profile.fsyncAfterWrites() {
			if err := f.Fsync(p); err != nil {
				return err
			}
		}
		live = append(live, p)
		return nil
	}

	// Populate half the working set up front.
	for i := 0; i < cfg.Files/2; i++ {
		if err := createWrite(); err != nil {
			return cnt, err
		}
	}

	weights := cfg.Profile.mix()
	for op := 0; op < cfg.Ops; op++ {
		kind := sim.Pick(r, weights[:])
		// Ops needing an existing file fall back to create when empty.
		if len(live) == 0 && kind != fbCreateWrite {
			kind = fbCreateWrite
		}
		// Bound the working set so deletes keep up with creates.
		if kind == fbCreateWrite && len(live) >= cfg.Files {
			kind = fbDelete
		}
		switch kind {
		case fbCreateWrite:
			if err := createWrite(); err != nil {
				return cnt, err
			}
			cnt.WriteOps++

		case fbAppend:
			p := live[r.Intn(len(live))]
			fillRandom(r, buf)
			if err := f.Append(p, buf); err != nil {
				return cnt, err
			}
			if cfg.Profile.fsyncAfterWrites() {
				if err := f.Fsync(p); err != nil {
					return cnt, err
				}
			}
			cnt.WriteOps++
			cnt.Bytes += int64(len(buf))

		case fbReadWhole:
			p := live[r.Intn(len(live))]
			info, err := f.Stat(p)
			if err != nil {
				return cnt, err
			}
			for off := uint64(0); off < info.Size; off += uint64(cfg.IOBytes) {
				n, err := f.ReadAt(p, off, buf)
				if err != nil && err != fs.ErrReadRange {
					return cnt, err
				}
				cnt.Bytes += int64(n)
			}
			cnt.ReadOps++

		case fbReadRand:
			p := live[r.Intn(len(live))]
			info, err := f.Stat(p)
			if err != nil {
				return cnt, err
			}
			if info.Size > 0 {
				off := uint64(r.Int63n(int64(info.Size)))
				n, err := f.ReadAt(p, off, buf)
				if err != nil && err != fs.ErrReadRange {
					return cnt, err
				}
				cnt.Bytes += int64(n)
			}
			cnt.ReadOps++

		case fbDelete:
			i := r.Intn(len(live))
			p := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := f.Remove(p); err != nil {
				return cnt, err
			}
			cnt.WriteOps++

		case fbStat:
			p := live[r.Intn(len(live))]
			if _, err := f.Stat(p); err != nil {
				return cnt, err
			}
			cnt.ReadOps++
		}
		cnt.FileOps++
	}
	return cnt, nil
}
