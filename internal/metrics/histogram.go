package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// Histogram is a lock-free latency histogram with log-linear buckets:
// values are grouped by power of two (octave) and each octave is split
// into histSubBuckets linear sub-buckets, bounding the relative error of
// any reported quantile to 1/histSubBuckets (12.5%). Record is a handful
// of atomic adds — no locks, no allocation — so it is safe on data paths;
// hot paths that must pay nothing when observability is off should hold a
// nil *Histogram and branch on it (see internal/core's obs).
//
// Values are conventionally nanoseconds, but the histogram is unit-blind
// (flush-burst sizes use the same type).
type Histogram struct {
	name  string
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
	bkt   [histBuckets]atomic.Int64
}

const (
	// histOctaves covers values up to 2^histOctaves-1; 2^42 ns ≈ 73
	// simulated minutes, far beyond any phase this repo times.
	histOctaves    = 42
	histSubShift   = 3 // 8 sub-buckets per octave
	histSubBuckets = 1 << histSubShift
	histBuckets    = histOctaves * histSubBuckets
)

// NewHistogram returns an empty histogram. Most callers obtain histograms
// from a Recorder (Hist/Observe) so snapshots travel with the counters.
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// bucketIndex maps a value to its log-linear bucket.
func bucketIndex(v int64) int {
	if v < histSubBuckets {
		// Values below one full sub-bucket row index linearly into the
		// first octave rows.
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	oct := bits.Len64(uint64(v)) - 1 // position of the high bit
	sub := (v >> (uint(oct) - histSubShift)) & (histSubBuckets - 1)
	i := (oct-histSubShift+1)*histSubBuckets + int(sub)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper is the inclusive upper bound of bucket i (the largest value
// that maps to it).
func bucketUpper(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	oct := i/histSubBuckets + histSubShift - 1
	sub := int64(i%histSubBuckets) + 1
	return (1 << uint(oct)) + (sub << (uint(oct) - histSubShift)) - 1
}

// Record adds one observation. Safe for concurrent use; never blocks.
func (h *Histogram) Record(v int64) {
	h.bkt[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.bkt {
		h.bkt[i].Store(0)
	}
}

// Snapshot copies the histogram's state. The copy is not atomic across
// buckets (concurrent Records may straddle it), which shifts a quantile by
// at most the in-flight observations — the same contract Snapshot has for
// counters.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Name:  h.name,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.bkt {
		if n := h.bkt[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64, 8)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram at one instant.
// Buckets maps bucket index to occupancy (absent = zero); snapshots from
// histograms with different names may still be merged when aggregating
// across recorders.
type HistSnapshot struct {
	Name    string
	Count   int64
	Sum     int64
	Max     int64
	Buckets map[int]int64
}

// Merge returns the bucket-wise sum of s and o (for aggregating shards or
// repeated runs). Max is the larger of the two.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Name: s.Name, Count: s.Count + o.Count, Sum: s.Sum + o.Sum, Max: s.Max}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	if len(s.Buckets)+len(o.Buckets) > 0 {
		out.Buckets = make(map[int]int64, len(s.Buckets)+len(o.Buckets))
		for i, n := range s.Buckets {
			out.Buckets[i] += n
		}
		for i, n := range o.Buckets {
			out.Buckets[i] += n
		}
	}
	return out
}

// Sub returns s - old bucket-wise, for interval measurements over a live
// histogram. Max cannot be subtracted and is carried from s (it is an
// upper bound for the interval).
func (s HistSnapshot) Sub(old HistSnapshot) HistSnapshot {
	out := HistSnapshot{Name: s.Name, Count: s.Count - old.Count, Sum: s.Sum - old.Sum, Max: s.Max}
	if len(s.Buckets) > 0 {
		out.Buckets = make(map[int]int64, len(s.Buckets))
		for i, n := range s.Buckets {
			if d := n - old.Buckets[i]; d != 0 {
				out.Buckets[i] = d
			}
		}
	}
	return out
}

// Quantile returns the value at quantile q in [0,1]: the upper bound of
// the bucket holding the q-th observation, so the true value is at most
// one sub-bucket width (12.5% relative) below the report. Returns 0 for
// an empty snapshot; q outside [0,1] is clamped.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count-1)) + 1
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n, ok := s.Buckets[i]
		if !ok {
			continue
		}
		seen += n
		if seen >= rank {
			u := bucketUpper(i)
			if u > s.Max && s.Max > 0 {
				return s.Max
			}
			return u
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Summary condenses the snapshot to the quantiles the evaluation tables
// report.
func (s HistSnapshot) Summary() LatencySummary {
	return LatencySummary{
		Count:  s.Count,
		MeanNS: int64(s.Mean()),
		P50NS:  s.Quantile(0.50),
		P95NS:  s.Quantile(0.95),
		P99NS:  s.Quantile(0.99),
		MaxNS:  s.Max,
	}
}

// LatencySummary is the typed quantile digest surfaced through the
// Stats() structs. All values are nanoseconds except Count.
type LatencySummary struct {
	Count  int64
	MeanNS int64
	P50NS  int64
	P95NS  int64
	P99NS  int64
	MaxNS  int64
}

// String renders the summary compactly for tables and the tincafs shell.
func (l LatencySummary) String() string {
	if l.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		l.Count, fmtNS(l.MeanNS), fmtNS(l.P50NS), fmtNS(l.P95NS), fmtNS(l.P99NS), fmtNS(l.MaxNS))
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// String renders the snapshot's summary.
func (s HistSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", s.Name, s.Summary())
	return b.String()
}
