package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
)

// Span is one structured trace event: a named phase of some transaction
// (or seal, or recovery pass) with its start time and duration on the
// simulated clock, and the goroutine that executed it.
type Span struct {
	ID      uint64 // grouping id: seal number, txn id, 0 for singletons
	Name    string // phase name, e.g. "seal.data"
	StartNS int64  // simulated ns at phase start
	DurNS   int64  // simulated ns spent in the phase
	G       int64  // goroutine id of the executor
}

// Tracer is a fixed-size ring buffer of Spans. Emit claims a slot with
// one atomic add and writes the span in place: no locks, no allocation,
// and old spans are overwritten once the ring wraps, so a tracer can stay
// attached to a long-running stack with bounded memory. A nil *Tracer is
// valid and disabled, so hot paths pay exactly one branch:
//
//	if tr.Enabled() { tr.Emit(...) }
//
// Spans() and the exporters are snapshot operations intended for
// quiescent moments (end of run, a scrape of a paused system); a span
// being written concurrently with a snapshot may be read torn, which can
// misreport that single span but never corrupts the tracer.
type Tracer struct {
	enabled atomic.Bool
	pos     atomic.Uint64
	ring    []Span
	mask    uint64
}

// DefaultTraceEvents is the ring capacity NewTracer picks for n <= 0.
const DefaultTraceEvents = 1 << 16

// NewTracer returns an enabled tracer holding the last n spans (rounded
// up to a power of two; n <= 0 picks DefaultTraceEvents).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceEvents
	}
	size := 1
	for size < n {
		size <<= 1
	}
	t := &Tracer{ring: make([]Span, size), mask: uint64(size - 1)}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether Emit records anything. Nil-safe: a nil tracer
// is disabled.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips recording on or off (no-op on a nil tracer).
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Emit records one span. Safe for concurrent use; no-op when disabled.
func (t *Tracer) Emit(id uint64, name string, startNS, durNS int64, g int64) {
	if !t.Enabled() {
		return
	}
	i := (t.pos.Add(1) - 1) & t.mask
	t.ring[i] = Span{ID: id, Name: name, StartNS: startNS, DurNS: durNS, G: g}
}

// Spans returns the recorded spans, oldest first. Call at a quiescent
// moment (see the type comment).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	n := t.pos.Load()
	out := make([]Span, 0, len(t.ring))
	start := uint64(0)
	if n > uint64(len(t.ring)) {
		start = n - uint64(len(t.ring))
	}
	for p := start; p < n; p++ {
		s := t.ring[p&t.mask]
		if s.Name != "" {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// Len reports how many spans have ever been emitted (including ones the
// ring has since overwritten).
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.pos.Load()
}

// Instant is one point-in-time marker merged into the Chrome export as a
// thread-scoped instant event (ph "i") on its own track — used for the
// NVM flight-recorder timeline, whose events are moments, not phases.
type Instant struct {
	Name string
	TS   int64 // simulated ns
	TID  int64 // track ("thread") the marker renders on
	Args map[string]uint64
}

// WriteChromeTrace exports the recorded spans as Chrome trace_event JSON
// (the "X" complete-event form), loadable in chrome://tracing and
// Perfetto. Timestamps are simulated microseconds; each goroutine becomes
// a trace thread so concurrent seals render as parallel tracks.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return t.WriteChromeTraceWith(w, nil)
}

// WriteChromeTraceWith is WriteChromeTrace with extra instant events
// merged into the same timeline (same pid, their own tids).
func (t *Tracer) WriteChromeTraceWith(w io.Writer, instants []Instant) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans)+len(instants))
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.StartNS) / 1000,
			Dur:  float64(s.DurNS) / 1000,
			PID:  1,
			TID:  s.G,
			Args: map[string]uint64{"id": s.ID},
		})
	}
	for _, in := range instants {
		events = append(events, chromeEvent{
			Name: in.Name,
			Ph:   "i",
			S:    "t",
			TS:   float64(in.TS) / 1000,
			PID:  1,
			TID:  in.TID,
			Args: in.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"})
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	S    string            `json:"s,omitempty"` // instant-event scope
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]uint64 `json:"args,omitempty"`
}

// GoroutineID parses the running goroutine's id from its stack header.
// It costs a runtime.Stack call (~µs), so instrumentation captures it
// once per batch/span group, never per fine-grained event, and only when
// tracing is enabled.
func GoroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Header shape: "goroutine 123 [".
	f := bytes.Fields(buf[:n])
	if len(f) < 2 {
		return 0
	}
	id, err := strconv.ParseInt(string(f[1]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// String summarizes the tracer state.
func (t *Tracer) String() string {
	if t == nil {
		return "tracer(nil)"
	}
	return fmt.Sprintf("tracer(cap=%d emitted=%d enabled=%v)", len(t.ring), t.pos.Load(), t.enabled.Load())
}
