// Package metrics implements the counter registry used by every layer of
// the storage stack. The evaluation in the paper compares systems on
// normalized counter values (clflush per operation, disk blocks written per
// transaction, ...), so counters are first-class here: cheap atomic
// increments, snapshot/delta arithmetic, and stable names shared by the
// experiment harness.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical counter names. Components must use these constants so the
// experiment drivers can compute the paper's normalized quantities.
const (
	// NVM-level counters (charged by internal/pmem).
	NVMCLFlush    = "nvm.clflush"     // cache lines flushed
	NVMSFence     = "nvm.sfence"      // store fences executed
	NVMBytesWrite = "nvm.bytes_write" // bytes stored (volatile stores)
	NVMBytesRead  = "nvm.bytes_read"  // bytes loaded
	NVMAtomic8    = "nvm.atomic8"     // 8-byte atomic stores
	NVMAtomic16   = "nvm.atomic16"    // 16-byte atomic stores (cmpxchg16b)

	// Disk-level counters (charged by internal/blockdev).
	DiskBlocksWrite = "disk.blocks_write"
	DiskBlocksRead  = "disk.blocks_read"

	// Cache-manager counters (charged by internal/core and internal/classic).
	CacheWriteHit   = "cache.write_hit"
	CacheWriteMiss  = "cache.write_miss"
	CacheReadHit    = "cache.read_hit"
	CacheReadMiss   = "cache.read_miss"
	CacheEvict      = "cache.evict"
	CacheEvictDirty = "cache.evict_dirty"
	CacheMetaWrite  = "cache.meta_block_write" // block-format metadata writes (Classic)
	// Journal-area traffic through the Classic cache, counted separately
	// so data-block hit rates are comparable across systems.
	CacheJournalWriteHit  = "cache.journal_write_hit"
	CacheJournalWriteMiss = "cache.journal_write_miss"

	// Transaction counters.
	TxnCommit       = "txn.commit"
	TxnAbort        = "txn.abort"
	TxnBlocks       = "txn.blocks"          // data blocks committed
	TxnCOWBlocks    = "txn.cow_blocks"      // blocks that needed a COW copy
	TxnGroupSeals   = "txn.group_seals"     // coalesced ring-buffer seals
	TxnGroupSize    = "txn.group_size"      // transactions absorbed into seals (sum)
	TxnAbsorbed     = "txn.absorbed_blocks" // duplicate blocks absorbed within a seal
	JournalCommit   = "jbd.commit"          // journal transactions committed
	JournalBlocks   = "jbd.log_blocks"      // log (data) blocks written to journal
	JournalMeta     = "jbd.meta_blocks"     // descriptor/commit/revoke blocks
	JournalCkptBlks = "jbd.checkpoint_blks" // blocks checkpointed to home location

	// Destage counters (charged by internal/core's background destager).
	// DestageQueueDepth is used as a gauge: +1 on enqueue, -1 on dequeue.
	DestageQueueDepth = "destage.queue_depth"
	DestageDone       = "destage.done"    // blocks written back by the destager
	DestageDrop       = "destage.dropped" // write-back cleanings skipped (queue full)

	// Workload-level counters (charged by drivers).
	OpsWrite = "ops.write"
	OpsRead  = "ops.read"
	OpsFile  = "ops.file" // whole file operations (Filebench accounting)
	OpsTxn   = "ops.txn"  // OLTP transactions completed

	// Network counters (charged by internal/cluster).
	NetBytes    = "net.bytes"
	NetMessages = "net.messages"
)

// Recorder is a registry of named monotonic counters. The zero value is not
// usable; construct with NewRecorder. All methods are safe for concurrent
// use.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]*atomic.Int64
}

// NewRecorder returns an empty counter registry.
func NewRecorder() *Recorder {
	return &Recorder{counters: make(map[string]*atomic.Int64)}
}

func (r *Recorder) counter(name string) *atomic.Int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(atomic.Int64)
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter by delta.
func (r *Recorder) Add(name string, delta int64) { r.counter(name).Add(delta) }

// Inc increments the named counter by one.
func (r *Recorder) Inc(name string) { r.counter(name).Add(1) }

// Get returns the current value of the named counter (zero if never used).
func (r *Recorder) Get(name string) int64 {
	r.mu.Lock()
	c, ok := r.counters[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Load()
}

// Reset zeroes all counters.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Store(0)
	}
}

// Snapshot is an immutable copy of all counter values at one instant.
type Snapshot map[string]int64

// Snapshot copies the current counter values.
func (r *Recorder) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.counters))
	for name, c := range r.counters {
		s[name] = c.Load()
	}
	return s
}

// Get returns the value of name in the snapshot, zero if absent.
func (s Snapshot) Get(name string) int64 { return s[name] }

// Sub returns s - old, counter-wise. Counters absent from old are treated
// as zero.
func (s Snapshot) Sub(old Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for name, v := range s {
		d[name] = v - old[name]
	}
	return d
}

// PerOp divides counter name by the given operation count, returning 0 when
// ops is zero.
func (s Snapshot) PerOp(name string, ops int64) float64 {
	if ops == 0 {
		return 0
	}
	return float64(s[name]) / float64(ops)
}

// String renders the snapshot sorted by counter name, one per line.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-24s %12d\n", name, s[name])
	}
	return b.String()
}
