// Package metrics implements the observability registry used by every
// layer of the storage stack. The evaluation in the paper compares
// systems on normalized counter values (clflush per operation, disk
// blocks written per transaction, ...), so counters are first-class here:
// cheap atomic increments, snapshot/delta arithmetic, and stable names
// shared by the experiment harness. On top of counters the package
// provides lock-free log-bucketed latency histograms (Histogram), a
// fixed-ring structured span tracer with a Chrome trace_event exporter
// (Tracer), and a Prometheus text exposition of everything a Recorder
// holds (WritePrometheus / Handler) for live scraping.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical counter names. Components must use these constants so the
// experiment drivers can compute the paper's normalized quantities.
const (
	// NVM-level counters (charged by internal/pmem).
	NVMCLFlush    = "nvm.clflush"     // cache lines flushed
	NVMSFence     = "nvm.sfence"      // store fences executed
	NVMBytesWrite = "nvm.bytes_write" // bytes stored (volatile stores)
	NVMBytesRead  = "nvm.bytes_read"  // bytes loaded
	NVMAtomic8    = "nvm.atomic8"     // 8-byte atomic stores
	NVMAtomic16   = "nvm.atomic16"    // 16-byte atomic stores (cmpxchg16b)

	// Disk-level counters (charged by internal/blockdev). DiskQueueDepth is
	// a ±gauge: +1 when a request enters a device, -1 when it leaves, so a
	// Prometheus scrape sees how deep the in-flight window currently is.
	DiskBlocksWrite = "disk.blocks_write"
	DiskBlocksRead  = "disk.blocks_read"
	DiskBytesWrite  = "disk.bytes_write"
	DiskBytesRead   = "disk.bytes_read"
	DiskQueueDepth  = "disk.queue_depth"

	// Object-store counters (charged by internal/objstore). Requests and
	// transferred bytes feed the tiering figures; CostNanoDollars is the
	// accumulated request + transfer cost of the store's price model, in
	// nano-dollars (1e-9 $), so integer counters stay exact.
	ObjPuts            = "objstore.puts"
	ObjGets            = "objstore.gets"
	ObjGetMisses       = "objstore.get_misses" // GETs of objects never uploaded
	ObjBytesUp         = "objstore.bytes_up"
	ObjBytesDown       = "objstore.bytes_down"
	ObjCostNanoDollars = "objstore.cost_nanodollars"

	// Tier counters (charged by internal/objstore's L2-over-L3 tier).
	// TierUploadQueueDepth is a ±gauge of dirty L2 blocks awaiting upload.
	TierL2Hits           = "tier.l2_hits"           // reads served from the block device
	TierStagingHits      = "tier.staging_hits"      // reads served from the DRAM staging ring
	TierL3Fetches        = "tier.l3_fetches"        // demand object fetches from the store
	TierPrefetches       = "tier.prefetches"        // read-ahead object fetches issued
	TierPrefetchHits     = "tier.prefetch_hits"     // demand misses absorbed by a prefetched object
	TierUploads          = "tier.uploads"           // objects made durable in the store
	TierUploadBlocks     = "tier.upload_blocks"     // dirty blocks cleaned by uploads
	TierL2Evicts         = "tier.l2_evicts"         // clean L2 slots recycled
	TierAdmits           = "tier.admits"            // clean NVM victims installed into L2
	TierAdmitDrops       = "tier.admit_drops"       // clean-victim offers dropped (no free slot / queue full)
	TierBackpressure     = "tier.backpressure"      // writes stalled on the dirty high-water mark
	TierUploadQueueDepth = "tier.upload_queue_depth"

	// Cache-manager counters (charged by internal/core and internal/classic).
	CacheWriteHit   = "cache.write_hit"
	CacheWriteMiss  = "cache.write_miss"
	CacheReadHit    = "cache.read_hit"
	CacheReadMiss   = "cache.read_miss"
	CacheEvict      = "cache.evict"
	CacheEvictDirty = "cache.evict_dirty"
	// Concurrent miss-pipeline counters (internal/core).
	CacheEvictBg     = "cache.evict_bg"         // victims reclaimed by the background evictor
	CacheEvictDirect = "cache.evict_direct"     // foreground direct-evict fallbacks (pool was empty)
	CacheFillRace    = "cache.fill_race"        // miss fills that lost the install race or retried
	CacheAllocRefill = "cache.alloc_refill"     // per-shard free-cache refills from the global pool
	CacheMetaWrite   = "cache.meta_block_write" // block-format metadata writes (Classic)
	// Lock-free read-hit fast path (internal/core/readfast.go).
	CacheReadHitFast  = "cache.read_hit_fast"   // hits served with zero locks
	CacheReadHitSlow  = "cache.read_hit_slow"   // hits that fell back to the locked path
	CacheSeqlockRetry = "cache.seqlock_retry"   // fast-path version-change retries
	CacheTouchDrop    = "cache.touch_ring_drop" // LRU promotions dropped (ring full)
	CacheTouchDrained = "cache.touch_drained"   // queued promotions applied to the exact list
	// Zero-copy read views (internal/core/view.go).
	CacheViewZeroCopy  = "cache.view_zero_copy"  // views served by aliasing pinned NVM bytes
	CacheViewCopied    = "cache.view_copied"     // views served as private copies (serial/ablation/opt-out)
	CacheViewDeferFree = "cache.view_defer_free" // block frees deferred to a view's last unpin
	// Scrape-time gauges published by the stack's /metrics handler: the
	// backing values live outside the Recorder (the sharded index and the
	// views-open atomic), so the handler Sets them at each scrape.
	CacheIndexGrows = "cache.index_grows" // incremental index resizes since Open (gauge)
	CacheViewsOpen  = "cache.views_open"  // live unclosed zero-copy views (gauge)
	// Journal-area traffic through the Classic cache, counted separately
	// so data-block hit rates are comparable across systems.
	CacheJournalWriteHit  = "cache.journal_write_hit"
	CacheJournalWriteMiss = "cache.journal_write_miss"

	// Transaction counters.
	TxnCommit       = "txn.commit"
	TxnAbort        = "txn.abort"
	TxnBlocks       = "txn.blocks"          // data blocks committed
	TxnCOWBlocks    = "txn.cow_blocks"      // blocks that needed a COW copy
	TxnGroupSeals   = "txn.group_seals"     // coalesced ring-buffer seals
	TxnGroupSize    = "txn.group_size"      // transactions absorbed into seals (sum)
	TxnAbsorbed     = "txn.absorbed_blocks" // duplicate blocks absorbed within a seal
	// Multi-ring commit counters (internal/core/multiring.go). Per-ring
	// counters use RingSealName/RingQueueDepthName; RingQueueDepth* is a
	// ±gauge (enqueue/dequeue deltas), like DestageQueueDepth.
	TxnCrossShard        = "txn.cross_shard"         // commits spanning more than one ring
	TxnRingSealConflicts = "txn.ring_seal_conflicts" // ring locks a cross-ring seal found contended
	JournalCommit   = "jbd.commit"          // journal transactions committed
	JournalBlocks   = "jbd.log_blocks"      // log (data) blocks written to journal
	JournalMeta     = "jbd.meta_blocks"     // descriptor/commit/revoke blocks
	JournalCkptBlks = "jbd.checkpoint_blks" // blocks checkpointed to home location

	// Destage counters (charged by internal/core's background destager).
	// DestageQueueDepth is used as a gauge: +1 on enqueue, -1 on dequeue.
	DestageQueueDepth = "destage.queue_depth"
	DestageDone       = "destage.done"    // blocks written back by the destager
	DestageDropped    = "destage.dropped" // write-back cleanings skipped (queue full)

	// Checkpoint counters (charged by internal/core's checkpoint writer).
	CkptWrites      = "ckpt.writes"       // checkpoint frames persisted
	CkptEntries     = "ckpt.entries"      // valid entries snapshotted, cumulative
	CkptJournalRecs = "ckpt.journal_recs" // delta-journal records persisted

	// Workload-level counters (charged by drivers).
	OpsWrite = "ops.write"
	OpsRead  = "ops.read"
	OpsFile  = "ops.file" // whole file operations (Filebench accounting)
	OpsTxn   = "ops.txn"  // OLTP transactions completed

	// Network counters (charged by internal/cluster).
	NetBytes    = "net.bytes"
	NetMessages = "net.messages"
)

// RingSealName returns the per-ring seal counter name for ring r
// ("txn.ring_seal.<r>"): one increment per seal that stamped ring r.
func RingSealName(r int) string { return fmt.Sprintf("txn.ring_seal.%d", r) }

// RingQueueDepthName returns the per-ring commit-queue depth gauge name for
// ring r ("ring.queue_depth.<r>"): +1 on enqueue, -1 when the seal claims
// the request.
func RingQueueDepthName(r int) string { return fmt.Sprintf("ring.queue_depth.%d", r) }

// Canonical histogram names. Values are simulated nanoseconds unless the
// name says otherwise. Commit-phase histograms are charged by
// internal/core's group-commit pipeline (one sample per seal per phase);
// jbd.* by the Classic journal; fs.* by the file-system operation layer.
const (
	// Group-commit seal phases (internal/core/group.go).
	HistCommitWait    = "commit.wait_ns"    // leader batch-formation wait
	HistCommitAbsorb  = "commit.absorb_ns"  // plan/merge/allocate (phase 0)
	HistCommitData    = "commit.data_ns"    // NVM data writes (phase A)
	HistCommitEntries = "commit.entries_ns" // log-role entry persists (phase B)
	HistCommitRing    = "commit.ring_ns"    // ring records + Head persist (phase C)
	HistCommitSwitch  = "commit.switch_ns"  // role switches (phase D)
	HistCommitTail    = "commit.tail_ns"    // Tail flip + fence (phase E)
	HistCommitSeal    = "commit.seal_ns"    // whole seal (phases 0–E)
	HistCommitTotal   = "commit.total_ns"   // per-txn Commit latency (enqueue→ack)
	// Multi-ring seals (internal/core/multiring.go): one sample per seal,
	// whole per-ring (or cross-ring) seal duration.
	HistCommitRingSeal = "commit.ring_seal_ns"

	// Destager, evictor and recovery (internal/core).
	HistDestageWrite = "destage.write_ns" // one queued block written back
	HistEvictBatch   = "evict.batch_ns"   // one background eviction batch
	HistRecovery     = "recovery.ns"      // one full recovery pass
	// Per-phase recovery breakdown (internal/core/recovery.go). Scan, undo
	// and rebuild record one sample per recovery pass, zeros included;
	// redo records only when the redo branch actually ran (a zero-length
	// span for a branch that never executed pollutes trace timelines).
	HistRecoveryScan    = "recovery.scan_ns"    // pointer load + entry-table scan
	HistRecoveryRedo    = "recovery.redo_ns"    // completing interrupted role switches
	HistRecoveryUndo    = "recovery.undo_ns"    // revocation + stray-log sweep
	HistRecoveryRebuild = "recovery.rebuild_ns" // DRAM index/LRU/allocator rebuild
	// Checkpoint writer (internal/core/checkpoint.go): one sample per
	// checkpoint frame persisted.
	HistCheckpoint = "ckpt.write_ns"

	// Lock-free read path (internal/core/readfast.go): seqlock retries per
	// successful fast hit that needed at least one retry (a count, not ns).
	HistReadHitRetry = "read.hit_retry"

	// NVM primitives (internal/pmem).
	HistNVMFlushLines = "nvm.flush_lines"  // cache lines per CLFlush burst
	HistNVMFenceGap   = "nvm.fence_gap_ns" // sim time between successive fences

	// Object store and tier (internal/objstore): per-request GET/PUT
	// service time and whole upload batches (RMW read + PUT + meta clean).
	HistObjGet         = "objstore.get_ns"
	HistObjPut         = "objstore.put_ns"
	HistTierUploadObj  = "tier.upload_obj_ns"

	// Classic journal commit phases (internal/jbd).
	HistJBDLog        = "jbd.log_ns"        // descriptor + log + revoke writes
	HistJBDCommitBlk  = "jbd.commit_blk_ns" // commit-record write
	HistJBDCheckpoint = "jbd.checkpoint_ns" // checkpoint passes
	HistJBDCommit     = "jbd.commit_ns"     // whole CommitTxn

	// File-system operations (internal/fs).
	HistFSRead  = "fs.read_ns"  // read-only operations
	HistFSWrite = "fs.write_ns" // mutating operations
)

// Recorder is a registry of named counters and latency histograms. Most
// counters are monotonic; a few are used as ±gauges (see Set and the
// DestageQueueDepth convention above). The zero value is not usable;
// construct with NewRecorder. All methods are safe for concurrent use.
//
// The data path calls Add/Inc/Observe concurrently from every layer of
// the stack, so the name→cell lookup is a sync.Map read (lock-free after
// the first touch of a name); allocation happens only the first time a
// name appears.
type Recorder struct {
	counters sync.Map // string -> *atomic.Int64
	hists    sync.Map // string -> *Histogram
}

// NewRecorder returns an empty counter registry.
func NewRecorder() *Recorder {
	return &Recorder{}
}

func (r *Recorder) counter(name string) *atomic.Int64 {
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := r.counters.LoadOrStore(name, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Add increments the named counter by delta.
func (r *Recorder) Add(name string, delta int64) { r.counter(name).Add(delta) }

// Counter returns the named counter's cell, creating it on first use. Hot
// paths (per-ring seal counters) call this once and hold the pointer, like
// Hist; Add/Load on the result never touch the registry map.
func (r *Recorder) Counter(name string) *atomic.Int64 { return r.counter(name) }

// Inc increments the named counter by one.
func (r *Recorder) Inc(name string) { r.counter(name).Add(1) }

// Set overwrites the named counter, making it an explicit gauge. Counters
// written with Set (or with mixed-sign Add deltas, as DestageQueueDepth
// is) report a level, not a total; Snapshot.Sub deltas of gauges are
// level changes and PerOp normalization of them is rarely meaningful.
func (r *Recorder) Set(name string, v int64) { r.counter(name).Store(v) }

// Get returns the current value of the named counter (zero if never used).
func (r *Recorder) Get(name string) int64 {
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

// Hist returns the named histogram, creating it on first use. Hot paths
// should call this once and hold the pointer; Record on the result is
// lock-free.
func (r *Recorder) Hist(name string) *Histogram {
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.hists.LoadOrStore(name, NewHistogram(name))
	return h.(*Histogram)
}

// Observe records one value (conventionally nanoseconds) into the named
// histogram.
func (r *Recorder) Observe(name string, v int64) { r.Hist(name).Record(v) }

// HistSnapshot copies the named histogram's current state (empty snapshot
// if never used).
func (r *Recorder) HistSnapshot(name string) HistSnapshot {
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram).Snapshot()
	}
	return HistSnapshot{Name: name}
}

// HistSnapshots copies every registered histogram, keyed by name.
func (r *Recorder) HistSnapshots() map[string]HistSnapshot {
	out := make(map[string]HistSnapshot)
	r.hists.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return out
}

// Reset zeroes all counters and histograms.
func (r *Recorder) Reset() {
	r.counters.Range(func(_, v any) bool {
		v.(*atomic.Int64).Store(0)
		return true
	})
	r.hists.Range(func(_, v any) bool {
		v.(*Histogram).Reset()
		return true
	})
}

// Snapshot is an immutable copy of all counter values at one instant.
type Snapshot map[string]int64

// Snapshot copies the current counter values.
func (r *Recorder) Snapshot() Snapshot {
	s := make(Snapshot)
	r.counters.Range(func(k, v any) bool {
		s[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return s
}

// Get returns the value of name in the snapshot, zero if absent.
func (s Snapshot) Get(name string) int64 { return s[name] }

// Sub returns s - old, counter-wise. Counters absent from old are treated
// as zero.
func (s Snapshot) Sub(old Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for name, v := range s {
		d[name] = v - old[name]
	}
	return d
}

// PerOp divides counter name by the given operation count, returning 0 when
// ops is zero.
func (s Snapshot) PerOp(name string, ops int64) float64 {
	if ops == 0 {
		return 0
	}
	return float64(s[name]) / float64(ops)
}

// String renders the snapshot sorted by counter name, one per line.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-24s %12d\n", name, s[name])
	}
	return b.String()
}
