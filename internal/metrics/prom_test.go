package metrics

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	if got := promName("nvm.clflush"); got != "tinca_nvm_clflush" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("commit.total_ns"); got != "tinca_commit_total_ns" {
		t.Fatalf("promName = %q", got)
	}
}

func TestWritePrometheusCounters(t *testing.T) {
	r := NewRecorder()
	r.Add("nvm.clflush", 42)
	r.Set("destage.queue_depth", 3)
	var b strings.Builder
	WritePrometheus(&b, r, "")
	out := b.String()
	for _, want := range []string{
		"# TYPE tinca_nvm_clflush gauge",
		"tinca_nvm_clflush 42",
		"tinca_destage_queue_depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWritePrometheusLabels(t *testing.T) {
	r := NewRecorder()
	r.Inc("a")
	r.Observe("h", 10)
	var b strings.Builder
	WritePrometheus(&b, r, `registry="x"`)
	out := b.String()
	if !strings.Contains(out, `tinca_a{registry="x"} 1`) {
		t.Fatalf("counter label missing:\n%s", out)
	}
	if !strings.Contains(out, `tinca_h_bucket{registry="x",le="10"} 1`) {
		t.Fatalf("histogram label missing:\n%s", out)
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	r := NewRecorder()
	for _, v := range []int64{1, 2, 3, 1000, 100000} {
		r.Observe("lat", v)
	}
	var b strings.Builder
	WritePrometheus(&b, r, "")
	out := b.String()
	if !strings.Contains(out, "# TYPE tinca_lat histogram") {
		t.Fatalf("no histogram TYPE line:\n%s", out)
	}
	// Bucket lines must be cumulative (non-decreasing) and end at +Inf
	// with the total count.
	re := regexp.MustCompile(`tinca_lat_bucket\{le="([^"]+)"\} (\d+)`)
	ms := re.FindAllStringSubmatch(out, -1)
	if len(ms) < 4 {
		t.Fatalf("too few bucket lines:\n%s", out)
	}
	last := int64(-1)
	for _, m := range ms {
		n, _ := strconv.ParseInt(m[2], 10, 64)
		if n < last {
			t.Fatalf("buckets not cumulative at le=%s:\n%s", m[1], out)
		}
		last = n
	}
	if ms[len(ms)-1][1] != "+Inf" || ms[len(ms)-1][2] != "5" {
		t.Fatalf("+Inf bucket wrong: %v", ms[len(ms)-1])
	}
	if !strings.Contains(out, "tinca_lat_count 5") {
		t.Fatalf("count sample missing:\n%s", out)
	}
	if !strings.Contains(out, "tinca_lat_sum 101006") {
		t.Fatalf("sum sample missing:\n%s", out)
	}
}

func TestPublishAndHandler(t *testing.T) {
	r := NewRecorder()
	r.Inc("pub.counter")
	Publish("test-reg", r)
	defer Unpublish("test-reg")

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	out := string(buf[:n])
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(out, `tinca_pub_counter{registry="test-reg"} 1`) {
		t.Fatalf("published counter missing:\n%s", out)
	}

	// Unpublish removes it from subsequent scrapes.
	Unpublish("test-reg")
	var b strings.Builder
	WriteAllPrometheus(&b)
	if strings.Contains(b.String(), "test-reg") {
		t.Fatal("unpublished recorder still served")
	}
}

func TestRecorderSetGauge(t *testing.T) {
	r := NewRecorder()
	r.Set("g", 10)
	r.Set("g", 7)
	if got := r.Get("g"); got != 7 {
		t.Fatalf("gauge = %d", got)
	}
	// Mixed-sign Add keeps working as the ± gauge convention.
	r.Add("g", -3)
	if got := r.Get("g"); got != 4 {
		t.Fatalf("gauge after -3 = %d", got)
	}
	// Sub deltas of gauges are level changes (possibly negative).
	s0 := r.Snapshot()
	r.Set("g", 1)
	if d := r.Snapshot().Sub(s0); d.Get("g") != -3 {
		t.Fatalf("gauge delta = %d", d.Get("g"))
	}
}
