package metrics

import (
	"math/rand"
	"sync"
	"testing"
)

// sweepValues covers the linear range, every octave boundary ±1, and a
// spread of random values across the full 42-octave span.
func sweepValues() []int64 {
	vs := make([]int64, 0, 4096)
	for v := int64(0); v < 1024; v++ {
		vs = append(vs, v)
	}
	for oct := 3; oct < histOctaves; oct++ {
		b := int64(1) << uint(oct)
		vs = append(vs, b-1, b, b+1)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		vs = append(vs, r.Int63n(int64(1)<<40))
	}
	return vs
}

func TestBucketBoundsInvariant(t *testing.T) {
	for _, v := range sweepValues() {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if u := bucketUpper(i); u < v {
			t.Fatalf("bucketUpper(%d)=%d below its own value %d", i, u, v)
		}
		if i > 0 {
			if l := bucketUpper(i - 1); l >= v {
				t.Fatalf("value %d: previous bucket upper %d not below it (bucket %d)", v, l, i)
			}
		}
		// The report (bucket upper) overstates v by at most one sub-bucket
		// width: 1/8 relative for values past the linear range.
		if v >= histSubBuckets {
			if err := bucketUpper(i) - v; err > v>>histSubShift {
				t.Fatalf("value %d reported as %d: error %d beyond 12.5%%", v, bucketUpper(i), err)
			}
		}
	}
	// bucketUpper is strictly monotonic, so cumulative Prometheus buckets
	// are well ordered.
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not monotonic at %d: %d <= %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
}

func TestHistogramCountSumMax(t *testing.T) {
	h := NewHistogram("t")
	var sum int64
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
		sum += v
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != sum || s.Max != 1000 {
		t.Fatalf("count=%d sum=%d max=%d", s.Count, s.Sum, s.Max)
	}
	if m := s.Mean(); m != float64(sum)/1000 {
		t.Fatalf("mean = %v", m)
	}
	// Negative values clamp into bucket 0 but still count.
	h.Record(-5)
	if s = h.Snapshot(); s.Count != 1001 {
		t.Fatalf("negative value dropped: count=%d", s.Count)
	}
}

func TestQuantileSmallExact(t *testing.T) {
	h := NewHistogram("t")
	for v := int64(0); v < histSubBuckets; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	// Values below histSubBuckets index linearly, so quantiles are exact.
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d", got)
	}
	if got := s.Quantile(1); got != 7 {
		t.Fatalf("q1 = %d", got)
	}
	// rank = int64(0.5*(8-1))+1 = 4, the 4th smallest of 0..7.
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("q0.5 = %d", got)
	}
	// Out-of-range q clamps instead of panicking.
	if s.Quantile(-1) != 0 || s.Quantile(2) != 7 {
		t.Fatal("q outside [0,1] not clamped")
	}
}

func TestQuantileRelativeError(t *testing.T) {
	h := NewHistogram("t")
	for v := int64(1); v <= 10000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		true_ := int64(q * 10000)
		got := s.Quantile(q)
		if got < true_ {
			t.Fatalf("q%.2f = %d below true value %d", q, got, true_)
		}
		if got > true_+true_/8+1 {
			t.Fatalf("q%.2f = %d overstates true value %d by more than 12.5%%", q, got, true_)
		}
	}
	// A quantile never exceeds the recorded max even when the bucket's
	// nominal upper bound does.
	if got := s.Quantile(1); got != s.Max {
		t.Fatalf("q1 = %d, max = %d", got, s.Max)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot not zero")
	}
	if sum := s.Summary(); sum.Count != 0 || sum.String() != "n=0" {
		t.Fatalf("empty summary = %+v %q", sum, sum.String())
	}
}

func TestMergeAndSub(t *testing.T) {
	a, b := NewHistogram("t"), NewHistogram("t")
	for v := int64(1); v <= 100; v++ {
		a.Record(v)
		b.Record(v * 1000)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 200 || m.Max != 100000 {
		t.Fatalf("merge count=%d max=%d", m.Count, m.Max)
	}
	var total int64
	for _, n := range m.Buckets {
		total += n
	}
	if total != 200 {
		t.Fatalf("merged bucket occupancy %d", total)
	}

	// Interval measurement: snapshot, record more, Sub isolates the delta.
	pre := a.Snapshot()
	for v := int64(1); v <= 50; v++ {
		a.Record(v)
	}
	d := a.Snapshot().Sub(pre)
	if d.Count != 50 || d.Sum != 50*51/2 {
		t.Fatalf("sub count=%d sum=%d", d.Count, d.Sum)
	}
	if q := d.Quantile(1.0); q < 50 || q > 56 {
		t.Fatalf("interval q1 = %d", q)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram("t")
	h.Record(42)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("reset left %+v", s)
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := NewHistogram("t")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*per + i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d", s.Count)
	}
	const n = workers * per
	if s.Sum != n*(n-1)/2 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Max != n-1 {
		t.Fatalf("max = %d", s.Max)
	}
}

func TestRecorderHistRegistry(t *testing.T) {
	r := NewRecorder()
	r.Observe("lat", 100)
	r.Observe("lat", 200)
	if s := r.HistSnapshot("lat"); s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if s := r.HistSnapshot("never"); s.Count != 0 || s.Name != "never" {
		t.Fatalf("unknown histogram = %+v", s)
	}
	if hs := r.HistSnapshots(); len(hs) != 1 || hs["lat"].Count != 2 {
		t.Fatalf("HistSnapshots = %v", hs)
	}
	r.Reset()
	if s := r.HistSnapshot("lat"); s.Count != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

// The Recorder's name→cell lookup is a sync.Map read; these benchmarks are
// the scaling proof for moving off the single mutex (run with -bench and
// -cpu to compare contention).
func BenchmarkRecorderIncParallel(b *testing.B) {
	r := NewRecorder()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Inc("bench.counter")
		}
	})
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram("bench")
	b.RunParallel(func(pb *testing.PB) {
		var v int64
		for pb.Next() {
			v++
			h.Record(v)
		}
	})
}
