package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestAddIncGet(t *testing.T) {
	r := NewRecorder()
	r.Inc("a")
	r.Add("a", 4)
	if got := r.Get("a"); got != 5 {
		t.Fatalf("a = %d", got)
	}
	if got := r.Get("never"); got != 0 {
		t.Fatalf("unknown = %d", got)
	}
}

func TestSnapshotSubAndPerOp(t *testing.T) {
	r := NewRecorder()
	r.Add("x", 10)
	s0 := r.Snapshot()
	r.Add("x", 5)
	r.Add("y", 2)
	d := r.Snapshot().Sub(s0)
	if d.Get("x") != 5 || d.Get("y") != 2 {
		t.Fatalf("delta = %v", d)
	}
	if d.PerOp("x", 5) != 1 {
		t.Fatalf("perop = %v", d.PerOp("x", 5))
	}
	if d.PerOp("x", 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
	// Snapshot immutability: later increments don't affect old snapshots.
	r.Add("x", 100)
	if s0.Get("x") != 10 {
		t.Fatal("snapshot mutated")
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Add("a", 3)
	r.Reset()
	if r.Get("a") != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestStringSorted(t *testing.T) {
	r := NewRecorder()
	r.Inc("zeta")
	r.Inc("alpha")
	s := r.Snapshot().String()
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Fatal("snapshot string not sorted")
	}
}

func TestConcurrentCounting(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("c")
			}
		}()
	}
	wg.Wait()
	if got := r.Get("c"); got != 8000 {
		t.Fatalf("c = %d", got)
	}
}
