package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// This file renders a Recorder in the Prometheus text exposition format
// (version 0.0.4), so a long-running tincafs/tincabench can be scraped by
// any Prometheus-compatible collector without importing client libraries.
// Counter names keep their dotted registry form with dots mapped to
// underscores and a "tinca_" prefix: "nvm.clflush" → "tinca_nvm_clflush".
// Histograms are exposed in the native histogram text form: cumulative
// "_bucket{le=...}" lines over the log-linear bucket upper bounds, plus
// "_sum" and "_count".

// promName sanitizes a registry name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("tinca_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every counter and histogram of r. labels, if
// non-empty, is rendered verbatim inside the label braces of every sample
// (e.g. `registry="exp"`).
func WritePrometheus(w io.Writer, r *Recorder, labels string) {
	lb := ""
	if labels != "" {
		lb = "{" + labels + "}"
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", pn, pn, lb, snap[n])
	}

	hists := r.HistSnapshots()
	hnames := make([]string, 0, len(hists))
	for n := range hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		writePromHistogram(w, hists[n], labels)
	}
}

func writePromHistogram(w io.Writer, s HistSnapshot, labels string) {
	pn := promName(s.Name)
	sep := ""
	if labels != "" {
		sep = ","
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	idx := make([]int, 0, len(s.Buckets))
	for i := range s.Buckets {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var cum int64
	for _, i := range idx {
		cum += s.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", pn, labels, sep, bucketUpper(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", pn, labels, sep, s.Count)
	lb := ""
	if labels != "" {
		lb = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", pn, lb, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", pn, lb, s.Count)
}

// published is the process-wide registry of live Recorders a metrics
// endpoint exposes. Experiment drivers publish each stack's recorder as
// they bring it up, so `tincabench -metrics-addr` serves whatever run is
// currently in flight.
var (
	publishedMu sync.Mutex
	published   = map[string]*Recorder{}
)

// Publish registers r under name for HTTP exposition, replacing any
// previous recorder of that name. Publishing is cheap; nothing is read
// until a scrape arrives.
func Publish(name string, r *Recorder) {
	publishedMu.Lock()
	defer publishedMu.Unlock()
	if r == nil {
		delete(published, name)
		return
	}
	published[name] = r
}

// Unpublish removes a published recorder.
func Unpublish(name string) { Publish(name, nil) }

// WriteAllPrometheus renders every published recorder, each labelled with
// registry="<name>".
func WriteAllPrometheus(w io.Writer) {
	publishedMu.Lock()
	type entry struct {
		name string
		r    *Recorder
	}
	entries := make([]entry, 0, len(published))
	for n, r := range published {
		entries = append(entries, entry{n, r})
	}
	publishedMu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		WritePrometheus(w, e.r, fmt.Sprintf("registry=%q", e.name))
	}
}

// Handler serves the published recorders in Prometheus text format.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteAllPrometheus(w)
	})
}
