package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.SetEnabled(true) // must not panic
	tr.Emit(1, "x", 0, 1, 0)
	if tr.Spans() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	if tr.String() != "tracer(nil)" {
		t.Fatalf("nil String = %q", tr.String())
	}
}

func TestEmitAndSpans(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(7, "seal.data", 100, 50, 3)
	tr.Emit(7, "seal.tail", 150, 10, 3)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("len = %d", len(spans))
	}
	if spans[0].Name != "seal.data" || spans[0].StartNS != 100 || spans[0].DurNS != 50 || spans[0].ID != 7 || spans[0].G != 3 {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if spans[1].Name != "seal.tail" {
		t.Fatalf("span[1] = %+v", spans[1])
	}
}

func TestSpansSortedByStart(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(1, "b", 200, 1, 0)
	tr.Emit(1, "a", 100, 1, 0)
	spans := tr.Spans()
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("spans not time-ordered: %+v", spans)
	}
}

func TestRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(uint64(i), "s", int64(i), 1, 0)
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans", len(spans))
	}
	for i, s := range spans {
		if s.ID != uint64(6+i) {
			t.Fatalf("expected the last 4 spans, got ids %v", spans)
		}
	}
}

func TestCapacityRoundsUp(t *testing.T) {
	tr := NewTracer(5)
	for i := 0; i < 8; i++ {
		tr.Emit(uint64(i), "s", int64(i), 1, 0)
	}
	if got := len(tr.Spans()); got != 8 {
		t.Fatalf("capacity 5 should round to 8, kept %d", got)
	}
}

func TestSetEnabled(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(false)
	tr.Emit(1, "x", 0, 1, 0)
	if len(tr.Spans()) != 0 {
		t.Fatal("disabled tracer recorded")
	}
	tr.SetEnabled(true)
	tr.Emit(1, "x", 0, 1, 0)
	if len(tr.Spans()) != 1 {
		t.Fatal("re-enabled tracer did not record")
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(1, "s", int64(i), 1, GoroutineID())
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("emitted %d", tr.Len())
	}
	if len(tr.Spans()) != 800 {
		t.Fatalf("kept %d", len(tr.Spans()))
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(9, "seal.data", 2000, 500, 4)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int64             `json:"tid"`
			Args map[string]uint64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	e := doc.TraceEvents[0]
	// ts/dur are microseconds in the trace_event format.
	if e.Name != "seal.data" || e.Ph != "X" || e.TS != 2.0 || e.Dur != 0.5 || e.TID != 4 || e.Args["id"] != 9 {
		t.Fatalf("event = %+v", e)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
}

func TestGoroutineID(t *testing.T) {
	main := GoroutineID()
	if main <= 0 {
		t.Fatalf("GoroutineID = %d", main)
	}
	ch := make(chan int64)
	go func() { ch <- GoroutineID() }()
	if other := <-ch; other == main || other <= 0 {
		t.Fatalf("other goroutine id %d vs %d", other, main)
	}
}
