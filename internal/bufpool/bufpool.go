// Package bufpool recycles the 4KB block-sized scratch buffers the cache
// layers burn through on every miss fill, eviction write-back, destage and
// checkpoint. The simulated devices copy into or out of the buffer
// synchronously, so a buffer's lifetime never outlives the call that
// borrowed it — exactly the shape sync.Pool wants. Callers must not keep a
// reference after Put, and must not Put a buffer they did not Get (the
// pool assumes every buffer is exactly BlockSize long).
package bufpool

import "sync"

// BlockSize matches the cache/FS/disk transfer unit (4KB).
const BlockSize = 4096

var pool = sync.Pool{
	New: func() any {
		b := make([]byte, BlockSize)
		return &b
	},
}

// Get borrows a BlockSize scratch buffer. Contents are arbitrary (the
// previous user's data); overwrite before reading.
func Get() []byte {
	return *pool.Get().(*[]byte)
}

// Put returns a buffer obtained from Get. Putting a slice of the wrong
// length would poison later Gets, so it is rejected loudly.
func Put(b []byte) {
	if len(b) != BlockSize {
		panic("bufpool: Put of non-BlockSize buffer")
	}
	pool.Put(&b)
}
