package fs

import (
	"bytes"
	"io"
	"testing"
)

func TestFileHandleReadWriteSeek(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	h, err := f.OpenFile("/h", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(h)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadAll: %q %v", got, err)
	}
	// Seek from end.
	if pos, err := h.Seek(-5, io.SeekEnd); err != nil || pos != 6 {
		t.Fatalf("SeekEnd: %d %v", pos, err)
	}
	got, _ = io.ReadAll(h)
	if string(got) != "world" {
		t.Fatalf("tail read: %q", got)
	}
	if size, _ := h.Size(); size != 11 {
		t.Fatalf("size = %d", size)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileHandleIOInterfaces(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	h, err := f.OpenFile("/io", true)
	if err != nil {
		t.Fatal(err)
	}
	// io.Copy into the handle, then out of it.
	src := bytes.Repeat([]byte("copy-stream."), 2000)
	n, err := io.Copy(h, bytes.NewReader(src))
	if err != nil || n != int64(len(src)) {
		t.Fatalf("copy in: %d %v", n, err)
	}
	h.Seek(0, io.SeekStart)
	var out bytes.Buffer
	if _, err := io.Copy(&out, h); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), src) {
		t.Fatal("copy round trip mismatch")
	}
	// ReaderAt/WriterAt.
	if _, err := h.WriteAt([]byte("XYZ"), 5); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 3)
	if _, err := h.ReadAt(p, 5); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(p) != "XYZ" {
		t.Fatalf("ReadAt: %q", p)
	}
}

func TestFileHandleErrors(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	if _, err := f.Open("/missing"); err != ErrNotExist {
		t.Fatalf("open missing: %v", err)
	}
	f.Mkdir("/d")
	if _, err := f.Open("/d"); err != ErrIsDir {
		t.Fatalf("open dir: %v", err)
	}
	h, _ := f.OpenFile("/e", true)
	if _, err := h.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := h.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
	// Read at EOF returns io.EOF.
	if _, err := h.Read(make([]byte, 4)); err != io.EOF {
		t.Fatalf("EOF read: %v", err)
	}
}
