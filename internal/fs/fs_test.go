package fs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// memBackend is a trivial in-memory backend with atomic transactions, for
// testing the file system logic in isolation from the cache stacks.
type memBackend struct {
	mu     sync.Mutex
	blocks map[uint64][]byte
}

func newMemBackend() *memBackend { return &memBackend{blocks: make(map[uint64][]byte)} }

func (m *memBackend) ReadBlock(no uint64, p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.blocks[no]; ok {
		copy(p, b)
		return nil
	}
	for i := range p {
		p[i] = 0
	}
	return nil
}

func (m *memBackend) Begin() BackendTxn { return &memTxn{m: m, w: make(map[uint64][]byte)} }
func (m *memBackend) Sync() error       { return nil }
func (m *memBackend) Close() error      { return nil }

type memTxn struct {
	m *memBackend
	w map[uint64][]byte
}

func (t *memTxn) Write(no uint64, data []byte) {
	d := make([]byte, len(data))
	copy(d, data)
	t.w[no] = d
}

func (t *memTxn) Revoke(uint64) {}

func (t *memTxn) Commit() error {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	for no, d := range t.w {
		t.m.blocks[no] = d
	}
	return nil
}

func (t *memTxn) Abort() {}

func newFSForTest(t *testing.T, blocks uint64, opts Options) *FS {
	t.Helper()
	f, err := Format(newMemBackend(), blocks, 0, opts)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return f
}

func TestCreateStatRemove(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	if err := f.Create("/a.txt"); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir || info.Size != 0 {
		t.Fatalf("info = %+v", info)
	}
	if err := f.Create("/a.txt"); err != ErrExist {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := f.Remove("/a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/a.txt"); err != ErrNotExist {
		t.Fatalf("stat after remove: %v", err)
	}
	if err := f.Remove("/a.txt"); err != ErrNotExist {
		t.Fatalf("double remove: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	if err := f.Create("/data"); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 3*BlockSize+123)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := f.WriteAt("/data", 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile("/data")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnalignedWrites(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	f.Create("/u")
	// Overlapping unaligned writes; compare against an in-memory model.
	model := make([]byte, 0)
	write := func(off uint64, data []byte) {
		if err := f.WriteAt("/u", off, data); err != nil {
			t.Fatal(err)
		}
		if int(off)+len(data) > len(model) {
			model = append(model, make([]byte, int(off)+len(data)-len(model))...)
		}
		copy(model[off:], data)
	}
	write(100, bytes.Repeat([]byte{1}, 5000))
	write(4000, bytes.Repeat([]byte{2}, 300))
	write(0, bytes.Repeat([]byte{3}, 50))
	write(8180, bytes.Repeat([]byte{4}, 20))
	got, err := f.ReadFile("/u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("unaligned write mismatch")
	}
}

func TestSparseFileHolesReadZero(t *testing.T) {
	f := newFSForTest(t, 8192, Options{})
	f.Create("/sparse")
	// Write one block far into the file: everything before is a hole.
	off := uint64(50 * BlockSize)
	if err := f.WriteAt("/sparse", off, []byte("end")); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	n, err := f.ReadAt("/sparse", 10*BlockSize, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if p[i] != 0 {
			t.Fatalf("hole byte %d = %d", i, p[i])
		}
	}
}

func TestLargeFileIndirect(t *testing.T) {
	// Cross the direct (10 blocks) and into the single-indirect range,
	// then into the double-indirect range.
	f := newFSForTest(t, 1<<16, Options{PageCacheBlocks: 8})
	f.Create("/big")
	blockIdxs := []uint64{0, 9, 10, 100, 521, 522, 1500} // direct/indirect/double
	for _, l := range blockIdxs {
		data := bytes.Repeat([]byte{byte(l%250 + 1)}, BlockSize)
		if err := f.WriteAt("/big", l*BlockSize, data); err != nil {
			t.Fatalf("write block %d: %v", l, err)
		}
	}
	p := make([]byte, BlockSize)
	for _, l := range blockIdxs {
		if _, err := f.ReadAt("/big", l*BlockSize, p); err != nil {
			t.Fatalf("read block %d: %v", l, err)
		}
		if p[0] != byte(l%250+1) {
			t.Fatalf("block %d = %d", l, p[0])
		}
	}
}

func TestAppendGrows(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	f.Create("/log")
	for i := 0; i < 10; i++ {
		if err := f.Append("/log", bytes.Repeat([]byte{byte(i)}, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	info, _ := f.Stat("/log")
	if info.Size != 10000 {
		t.Fatalf("size = %d", info.Size)
	}
	got, _ := f.ReadFile("/log")
	if got[999] != 0 || got[1000] != 1 || got[9999] != 9 {
		t.Fatal("append contents wrong")
	}
}

func TestDirectoriesNested(t *testing.T) {
	f := newFSForTest(t, 8192, Options{})
	if err := f.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := f.Create("/a/b/c/file"); err != nil {
		t.Fatal(err)
	}
	names, err := f.ReadDir("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "file" {
		t.Fatalf("names = %v", names)
	}
	if err := f.Remove("/a/b"); err != ErrNotEmpty {
		t.Fatalf("remove non-empty: %v", err)
	}
	if err := f.Create("/missing/f"); err != ErrNotExist {
		t.Fatalf("create in missing dir: %v", err)
	}
	// A file is not a directory.
	if _, err := f.ReadDir("/a/b/c/file"); err != ErrNotDir {
		t.Fatalf("readdir on file: %v", err)
	}
}

func TestManyFilesInDirectory(t *testing.T) {
	f := newFSForTest(t, 1<<15, Options{})
	f.Mkdir("/d")
	const n = 300 // several directory blocks
	for i := 0; i < n; i++ {
		if err := f.Create(pathN(i)); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	names, err := f.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != n {
		t.Fatalf("len = %d", len(names))
	}
	// Remove half, re-list.
	for i := 0; i < n; i += 2 {
		if err := f.Remove(pathN(i)); err != nil {
			t.Fatal(err)
		}
	}
	names, _ = f.ReadDir("/d")
	if len(names) != n/2 {
		t.Fatalf("after removal len = %d", len(names))
	}
}

func pathN(i int) string {
	return "/d/file-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

func TestRename(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	f.Mkdir("/x")
	f.Create("/x/old")
	f.WriteAt("/x/old", 0, []byte("hello"))
	if err := f.Rename("/x/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if f.Exists("/x/old") {
		t.Fatal("old path still exists")
	}
	got, err := f.ReadFile("/new")
	if err != nil || string(got) != "hello" {
		t.Fatalf("renamed contents: %q %v", got, err)
	}
}

func TestRenameOverExistingReplacesTarget(t *testing.T) {
	// POSIX rename(2): an existing target is replaced atomically and its
	// storage released when the replaced name was the last link.
	f := newFSForTest(t, 1<<15, Options{})
	f.Create("/src")
	f.WriteAt("/src", 0, []byte("source"))
	f.Create("/dst")
	f.WriteAt("/dst", 0, make([]byte, 8*BlockSize))
	free0 := f.FreeBlockCount()
	freeIno0 := f.Stats().FreeInodes
	if err := f.Rename("/src", "/dst"); err != nil {
		t.Fatalf("rename over existing: %v", err)
	}
	if f.Exists("/src") {
		t.Fatal("source name survived rename")
	}
	got, err := f.ReadFile("/dst")
	if err != nil || string(got) != "source" {
		t.Fatalf("target contents: %q %v", got, err)
	}
	if f.FreeBlockCount() <= free0 {
		t.Fatal("replaced target's blocks were not freed")
	}
	if f.Stats().FreeInodes != freeIno0+1 {
		t.Fatal("replaced target's inode was not freed")
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRenameOverHardLinkDecrementsNlink(t *testing.T) {
	// Replacing one name of a multiply linked target only drops a link;
	// the other name keeps the contents.
	f := newFSForTest(t, 4096, Options{})
	f.Create("/src")
	f.WriteAt("/src", 0, []byte("new"))
	f.Create("/a")
	f.WriteAt("/a", 0, []byte("shared"))
	if err := f.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename("/src", "/b"); err != nil {
		t.Fatalf("rename over hard link: %v", err)
	}
	got, _ := f.ReadFile("/a")
	if string(got) != "shared" {
		t.Fatalf("surviving link contents: %q", got)
	}
	info, err := f.Stat("/a")
	if err != nil || info.Nlink != 1 {
		t.Fatalf("surviving link nlink = %d (%v), want 1", info.Nlink, err)
	}
	got, _ = f.ReadFile("/b")
	if string(got) != "new" {
		t.Fatalf("replaced name contents: %q", got)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRenameSameInodeIsNoop(t *testing.T) {
	// POSIX: when old and new are hard links to the same inode, rename
	// does nothing and both names remain. Same for renaming onto itself.
	f := newFSForTest(t, 4096, Options{})
	f.Create("/a")
	f.WriteAt("/a", 0, []byte("alias"))
	if err := f.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename("/a", "/b"); err != nil {
		t.Fatalf("same-inode rename: %v", err)
	}
	for _, p := range []string{"/a", "/b"} {
		got, err := f.ReadFile(p)
		if err != nil || string(got) != "alias" {
			t.Fatalf("%s after same-inode rename: %q %v", p, got, err)
		}
	}
	if err := f.Rename("/a", "/a"); err != nil {
		t.Fatalf("self rename: %v", err)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRenameDirectoryConflicts(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	f.Mkdir("/d")
	f.Create("/f")
	if err := f.Rename("/f", "/d"); err != ErrIsDir {
		t.Fatalf("file over directory: %v, want ErrIsDir", err)
	}
	if err := f.Rename("/d", "/f"); err != ErrNotDir {
		t.Fatalf("directory over file: %v, want ErrNotDir", err)
	}
	if err := f.Rename("/missing", "/x"); err != ErrNotExist {
		t.Fatalf("missing source: %v, want ErrNotExist", err)
	}
}

func TestTruncateFreesBlocks(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	f.Create("/t")
	free0 := f.FreeBlockCount()
	f.WriteAt("/t", 0, make([]byte, 20*BlockSize))
	if f.FreeBlockCount() >= free0 {
		t.Fatal("write did not consume blocks")
	}
	if err := f.Truncate("/t", 0); err != nil {
		t.Fatal(err)
	}
	if f.FreeBlockCount() != free0 {
		t.Fatalf("truncate leaked: %d != %d", f.FreeBlockCount(), free0)
	}
}

func TestRemoveFreesEverything(t *testing.T) {
	f := newFSForTest(t, 1<<15, Options{})
	// Warm up the root directory so its dirent block (which legitimately
	// stays allocated after Remove) is not counted as a leak.
	f.Create("/warm")
	f.Remove("/warm")
	free0 := f.FreeBlockCount()
	f.Create("/f")
	// Large enough to need indirect blocks.
	f.WriteAt("/f", 0, make([]byte, 600*BlockSize))
	if err := f.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if f.FreeBlockCount() != free0 {
		t.Fatalf("remove leaked blocks: %d != %d", f.FreeBlockCount(), free0)
	}
}

func TestFailedOpLeavesNoTrace(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	free0 := f.FreeBlockCount()
	staged0 := f.StagedBlocks()
	// Create in a missing directory fails after path resolution.
	if err := f.Create("/nodir/f"); err != ErrNotExist {
		t.Fatal(err)
	}
	// Write to a missing file fails.
	if err := f.WriteAt("/missing", 0, []byte("x")); !errors.Is(err, ErrNotExist) {
		t.Fatal(err)
	}
	if f.FreeBlockCount() != free0 {
		t.Fatal("failed op consumed blocks")
	}
	if f.StagedBlocks() != staged0 {
		t.Fatal("failed op staged blocks")
	}
}

func TestOutOfSpace(t *testing.T) {
	f := newFSForTest(t, 128, Options{})
	f.Create("/fill")
	err := f.WriteAt("/fill", 0, make([]byte, 1<<20))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
	// After failure the file system still works and the op rolled back.
	if err := f.WriteFile("/small", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	got, _ := f.ReadFile("/small")
	if string(got) != "ok" {
		t.Fatal("fs broken after ENOSPC")
	}
}

func TestGroupCommitBatches(t *testing.T) {
	b := newMemBackend()
	f, err := Format(b, 4096, 0, Options{GroupCommitBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	f.Create("/g")
	f.WriteAt("/g", 0, []byte("batched"))
	if f.StagedBlocks() == 0 {
		t.Fatal("expected staged blocks before threshold")
	}
	// Read-your-writes before commit.
	got, err := f.ReadFile("/g")
	if err != nil || string(got) != "batched" {
		t.Fatalf("RYW: %q %v", got, err)
	}
	if err := f.Fsync("/g"); err != nil {
		t.Fatal(err)
	}
	if f.StagedBlocks() != 0 {
		t.Fatal("fsync did not commit")
	}
}

func TestMountPreservesState(t *testing.T) {
	b := newMemBackend()
	f, err := Format(b, 4096, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Mkdir("/dir")
	f.Create("/dir/file")
	f.WriteAt("/dir/file", 0, []byte("persist"))
	f.Sync()

	f2, err := Mount(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f2.ReadFile("/dir/file")
	if err != nil || string(got) != "persist" {
		t.Fatalf("after mount: %q %v", got, err)
	}
	// Allocation state must be consistent: new writes don't clobber.
	f2.Create("/dir/file2")
	f2.WriteAt("/dir/file2", 0, bytes.Repeat([]byte{9}, 2*BlockSize))
	got, _ = f2.ReadFile("/dir/file")
	if string(got) != "persist" {
		t.Fatal("new allocation clobbered old file")
	}
}

func TestPathValidation(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	if err := f.Create("/" + string(bytes.Repeat([]byte{'n'}, 100))); err != ErrNameLen {
		t.Fatalf("long name: %v", err)
	}
	if err := f.Create("/../etc"); err != ErrBadPath {
		t.Fatalf("dotdot: %v", err)
	}
	if err := f.Create("/"); err != ErrBadPath {
		t.Fatalf("root create: %v", err)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	f.Create("/s")
	f.WriteAt("/s", 0, []byte("abc"))
	if _, err := f.ReadAt("/s", 3, make([]byte, 1)); err != ErrReadRange {
		t.Fatalf("read at EOF: %v", err)
	}
	p := make([]byte, 10)
	n, err := f.ReadAt("/s", 1, p)
	if err != nil || n != 2 {
		t.Fatalf("crossing read: n=%d err=%v", n, err)
	}
}

func TestSplitPathProperties(t *testing.T) {
	fn := func(a, b string) bool {
		// splitPath never returns empty components and is slash-insensitive.
		p1, err1 := splitPath(a + "/" + b)
		p2, err2 := splitPath("/" + a + "//" + b + "/")
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if len(p1) != len(p2) {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] || p1[i] == "" {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInodeEncodeDecodeRoundTrip(t *testing.T) {
	fn := func(mode uint16, nlink uint16, size, mtime, single, double uint64, d0, d5 uint64) bool {
		in := inode{mode: mode, nlink: nlink, size: size, mtime: mtime, single: single, double: double}
		in.direct[0], in.direct[5] = d0, d5
		buf := make([]byte, inodeSize)
		encodeInode(in, buf)
		return decodeInode(buf) == in
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

// revokeTrackingBackend records revocations for inspection.
type revokeTrackingBackend struct {
	*memBackend
	revoked map[uint64]int
}

func (b *revokeTrackingBackend) Begin() BackendTxn {
	return &revokeTrackingTxn{memTxn: b.memBackend.Begin().(*memTxn), b: b}
}

type revokeTrackingTxn struct {
	*memTxn
	b *revokeTrackingBackend
}

func (t *revokeTrackingTxn) Revoke(no uint64) { t.b.revoked[no]++ }

func TestFreedBlocksRevoked(t *testing.T) {
	b := &revokeTrackingBackend{memBackend: newMemBackend(), revoked: map[uint64]int{}}
	f, err := Format(b, 4096, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Create("/v")
	f.WriteAt("/v", 0, make([]byte, 8*BlockSize))
	if len(b.revoked) != 0 {
		t.Fatal("writes revoked blocks")
	}
	if err := f.Remove("/v"); err != nil {
		t.Fatal(err)
	}
	if len(b.revoked) != 8 {
		t.Fatalf("remove revoked %d blocks, want 8", len(b.revoked))
	}
}

func TestReallocatedBlockNotRevoked(t *testing.T) {
	// Free a block and re-allocate it within one group transaction: the
	// rewrite must win over the revocation.
	b := &revokeTrackingBackend{memBackend: newMemBackend(), revoked: map[uint64]int{}}
	f, err := Format(b, 4096, 0, Options{GroupCommitBlocks: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	f.Create("/a")
	f.WriteAt("/a", 0, make([]byte, 4*BlockSize))
	f.Remove("/a") // frees 4 blocks (staged revokes)
	f.Create("/b")
	f.WriteAt("/b", 0, make([]byte, 4*BlockSize)) // re-allocates them
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	for no, n := range b.revoked {
		t.Fatalf("block %d revoked %d times despite re-allocation", no, n)
	}
}

func TestHardLinks(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	f.Create("/orig")
	f.WriteAt("/orig", 0, []byte("shared"))
	if err := f.Link("/orig", "/alias"); err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat("/alias")
	if info.Nlink != 2 {
		t.Fatalf("nlink = %d", info.Nlink)
	}
	// Both names see writes through either.
	f.WriteAt("/alias", 0, []byte("SHARED"))
	got, _ := f.ReadFile("/orig")
	if string(got) != "SHARED" {
		t.Fatalf("through link: %q", got)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	// Removing one name keeps the data; removing the last frees it.
	free0 := f.FreeBlockCount()
	if err := f.Remove("/orig"); err != nil {
		t.Fatal(err)
	}
	if f.FreeBlockCount() != free0 {
		t.Fatal("first unlink freed blocks")
	}
	got, err := f.ReadFile("/alias")
	if err != nil || string(got) != "SHARED" {
		t.Fatalf("after first unlink: %q %v", got, err)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("/alias"); err != nil {
		t.Fatal(err)
	}
	if f.FreeBlockCount() <= free0 {
		t.Fatal("last unlink did not free blocks")
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkRejectsDirAndDuplicates(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	f.Mkdir("/d")
	f.Create("/f")
	if err := f.Link("/d", "/d2"); err != ErrIsDir {
		t.Fatalf("dir link: %v", err)
	}
	if err := f.Link("/f", "/f"); err != ErrExist {
		t.Fatalf("self link: %v", err)
	}
	if err := f.Link("/missing", "/x"); err != ErrNotExist {
		t.Fatalf("missing source: %v", err)
	}
}

func TestTruncateShrinkZeroesTail(t *testing.T) {
	// POSIX: shrinking then extending must expose zeroes, not stale bytes.
	f := newFSForTest(t, 8192, Options{})
	f.Create("/z")
	f.WriteAt("/z", 0, bytes.Repeat([]byte{0xAB}, 3*BlockSize))
	if err := f.Truncate("/z", 1000); err != nil { // mid-block shrink
		t.Fatal(err)
	}
	if err := f.Truncate("/z", 2*BlockSize); err != nil { // extend again
		t.Fatal(err)
	}
	got, err := f.ReadFile("/z")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if got[i] != 0xAB {
			t.Fatalf("kept byte %d = %#x", i, got[i])
		}
	}
	for i := 1000; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("stale byte at %d = %#x after shrink+extend", i, got[i])
		}
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateShrinkFreesIndirectChains(t *testing.T) {
	// A file spanning direct, single- and double-indirect ranges, shrunk
	// in stages: each stage must free exactly the punched blocks and keep
	// the file system fsck-clean.
	f := newFSForTest(t, 1<<15, Options{PageCacheBlocks: 16})
	f.Create("/big")
	// 600 blocks: 10 direct + 512 single + 78 double-indirect.
	if err := f.WriteAt("/big", 0, make([]byte, 600*BlockSize)); err != nil {
		t.Fatal(err)
	}
	freeAfterFull := f.FreeBlockCount()
	steps := []uint64{550 * BlockSize, 300 * BlockSize, 11 * BlockSize, 5 * BlockSize}
	prevFree := freeAfterFull
	for _, size := range steps {
		if err := f.Truncate("/big", size); err != nil {
			t.Fatalf("truncate to %d: %v", size, err)
		}
		if err := f.Check(); err != nil {
			t.Fatalf("after truncate to %d: %v", size, err)
		}
		free := f.FreeBlockCount()
		if free <= prevFree {
			t.Fatalf("truncate to %d freed nothing (%d -> %d)", size, prevFree, free)
		}
		prevFree = free
		// Kept prefix must still read (as data or holes, no error).
		if size > 0 {
			p := make([]byte, 100)
			if _, err := f.ReadAt("/big", size-100, p); err != nil {
				t.Fatalf("read tail after truncate to %d: %v", size, err)
			}
		}
	}
	// Grow within the double-indirect range again: must allocate cleanly.
	if err := f.WriteAt("/big", 580*BlockSize, []byte("regrown")); err != nil {
		t.Fatal(err)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateBoundaryExact(t *testing.T) {
	// Shrinks landing exactly on block boundaries take the no-tail-zero
	// path; shrinking to the current size is a no-op.
	f := newFSForTest(t, 8192, Options{})
	f.Create("/b")
	f.WriteAt("/b", 0, bytes.Repeat([]byte{7}, 4*BlockSize))
	if err := f.Truncate("/b", 2*BlockSize); err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat("/b")
	if info.Size != 2*BlockSize {
		t.Fatalf("size = %d", info.Size)
	}
	if err := f.Truncate("/b", 2*BlockSize); err != nil {
		t.Fatal(err)
	}
	got, _ := f.ReadFile("/b")
	for i, b := range got {
		if b != 7 {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryAndAccessors(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	total, inodes, dataStart := f.Geometry()
	if total != 4096 || inodes == 0 || dataStart == 0 || dataStart >= total {
		t.Fatalf("geometry = %d %d %d", total, inodes, dataStart)
	}
	h, _ := f.OpenFile("/n", true)
	if h.Name() != "/n" {
		t.Fatalf("name = %q", h.Name())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileOverwriteTruncates(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	if err := f.WriteFile("/w", bytes.Repeat([]byte{1}, 9000)); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/w", []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, _ := f.ReadFile("/w")
	if string(got) != "short" {
		t.Fatalf("overwrite: %q (len %d)", got[:5], len(got))
	}
}

func TestSymlinks(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	f.Mkdir("/real")
	f.Create("/real/file")
	f.WriteAt("/real/file", 0, []byte("through the link"))
	if err := f.Symlink("/real/file", "/ln"); err != nil {
		t.Fatal(err)
	}
	// Operations through the link reach the target.
	got, err := f.ReadFile("/ln")
	if err != nil || string(got) != "through the link" {
		t.Fatalf("read via link: %q %v", got, err)
	}
	if err := f.WriteAt("/ln", 0, []byte("THROUGH")); err != nil {
		t.Fatal(err)
	}
	got, _ = f.ReadFile("/real/file")
	if string(got[:7]) != "THROUGH" {
		t.Fatalf("write via link: %q", got)
	}
	// Readlink inspects, not follows.
	target, err := f.Readlink("/ln")
	if err != nil || target != "/real/file" {
		t.Fatalf("readlink: %q %v", target, err)
	}
	if _, err := f.Readlink("/real/file"); err != ErrNotLink {
		t.Fatalf("readlink on file: %v", err)
	}
	// Directory symlinks work mid-path.
	if err := f.Symlink("/real", "/dirln"); err != nil {
		t.Fatal(err)
	}
	got, err = f.ReadFile("/dirln/file")
	if err != nil || string(got[:7]) != "THROUGH" {
		t.Fatalf("mid-path link: %q %v", got, err)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	// Removing the link leaves the target; blocks are reclaimed.
	free0 := f.FreeBlockCount()
	if err := f.Remove("/ln"); err != nil {
		t.Fatal(err)
	}
	if f.FreeBlockCount() != free0+1 {
		t.Fatalf("symlink block not reclaimed: %d -> %d", free0, f.FreeBlockCount())
	}
	if !f.Exists("/real/file") {
		t.Fatal("target removed with link")
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSymlinkDanglingAndLoops(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	if err := f.Symlink("/nowhere", "/dangle"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile("/dangle"); err != ErrNotExist {
		t.Fatalf("dangling link read: %v", err)
	}
	// A cycle must be detected, not hang.
	f.Symlink("/b", "/a")
	f.Symlink("/a", "/b")
	if _, err := f.ReadFile("/a"); err != ErrLinkLoop {
		t.Fatalf("loop: %v", err)
	}
	// Bad targets rejected up front.
	if err := f.Symlink("", "/empty"); err != ErrBadPath {
		t.Fatalf("empty target: %v", err)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}
