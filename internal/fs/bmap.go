package fs

import "encoding/binary"

// bmap resolves the logical block index l of an inode to a physical block
// number, returning 0 when the extent is a hole. When alloc is true,
// missing data and indirect blocks are allocated (and zeroed) on the way;
// the possibly-updated inode is returned for the caller to persist.
func (c *opCtx) bmap(in inode, l uint64, alloc bool) (inode, uint64, error) {
	if l >= MaxFileBlocks {
		return in, 0, ErrTooLarge
	}
	switch {
	case l < numDirect:
		if in.direct[l] == 0 && alloc {
			blk, err := c.allocZeroedBlock()
			if err != nil {
				return in, 0, err
			}
			in.direct[l] = blk
		}
		return in, in.direct[l], nil

	case l < numDirect+ptrsPerBlock:
		idx := l - numDirect
		if in.single == 0 {
			if !alloc {
				return in, 0, nil
			}
			blk, err := c.allocZeroedBlock()
			if err != nil {
				return in, 0, err
			}
			in.single = blk
		}
		phys, err := c.indirectSlot(in.single, idx, alloc)
		return in, phys, err

	default:
		idx := l - numDirect - ptrsPerBlock
		if in.double == 0 {
			if !alloc {
				return in, 0, nil
			}
			blk, err := c.allocZeroedBlock()
			if err != nil {
				return in, 0, err
			}
			in.double = blk
		}
		l1, err := c.indirectSlot(in.double, idx/ptrsPerBlock, alloc)
		if err != nil || l1 == 0 {
			return in, 0, err
		}
		phys, err := c.indirectSlot(l1, idx%ptrsPerBlock, alloc)
		return in, phys, err
	}
}

// indirectSlot reads pointer slot idx of indirect block ind, allocating a
// data (or next-level indirect) block into the slot when alloc is set.
func (c *opCtx) indirectSlot(ind, idx uint64, alloc bool) (uint64, error) {
	buf := make([]byte, BlockSize)
	if err := c.readBlock(ind, buf); err != nil {
		return 0, err
	}
	phys := binary.LittleEndian.Uint64(buf[idx*8:])
	if phys == 0 && alloc {
		blk, err := c.allocZeroedBlock()
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(buf[idx*8:], blk)
		c.writeBlock(ind, buf)
		phys = blk
	}
	return phys, nil
}

// allocZeroedBlock allocates a data block and stages zeroed contents, so
// holes read back as zeroes even through the cache layers.
func (c *opCtx) allocZeroedBlock() (uint64, error) {
	blk, err := c.allocBlock()
	if err != nil {
		return 0, err
	}
	c.writeBlock(blk, make([]byte, BlockSize))
	return blk, nil
}

// freeFileBlocks releases every data and indirect block of the inode
// (truncate to zero / unlink).
func (c *opCtx) freeFileBlocks(in inode) error {
	for i := 0; i < numDirect; i++ {
		if in.direct[i] != 0 {
			if err := c.freeBlock(in.direct[i]); err != nil {
				return err
			}
		}
	}
	if in.single != 0 {
		if err := c.freeIndirect(in.single, 1); err != nil {
			return err
		}
	}
	if in.double != 0 {
		if err := c.freeIndirect(in.double, 2); err != nil {
			return err
		}
	}
	return nil
}

// freeIndirect frees an indirect block of the given depth and everything
// it references.
func (c *opCtx) freeIndirect(blk uint64, depth int) error {
	buf := make([]byte, BlockSize)
	if err := c.readBlock(blk, buf); err != nil {
		return err
	}
	for i := 0; i < ptrsPerBlock; i++ {
		p := binary.LittleEndian.Uint64(buf[i*8:])
		if p == 0 {
			continue
		}
		if depth > 1 {
			if err := c.freeIndirect(p, depth-1); err != nil {
				return err
			}
		} else {
			if err := c.freeBlock(p); err != nil {
				return err
			}
		}
	}
	return c.freeBlock(blk)
}
