package fs

import (
	"encoding/binary"
	"fmt"

	"tinca/internal/blockdev"
)

// BlockSize is the file system block size (4KB).
const BlockSize = blockdev.BlockSize

const (
	fsMagic   uint64 = 0x534641434e4954 // "TINCAFS"
	fsVersion uint64 = 1
)

// superblock geometry, all uint64 little endian at fixed offsets of
// block 0.
const (
	sbMagic             = 0
	sbVersion           = 8
	sbTotalBlocks       = 16
	sbInodeCount        = 24
	sbInodeBitmapStart  = 32
	sbInodeBitmapBlocks = 40
	sbBlockBitmapStart  = 48
	sbBlockBitmapBlocks = 56
	sbInodeTableStart   = 64
	sbInodeTableBlocks  = 72
	sbDataStart         = 80
)

// geometry is the decoded superblock.
type geometry struct {
	totalBlocks       uint64
	inodeCount        uint64
	inodeBitmapStart  uint64
	inodeBitmapBlocks uint64
	blockBitmapStart  uint64
	blockBitmapBlocks uint64
	inodeTableStart   uint64
	inodeTableBlocks  uint64
	dataStart         uint64
}

func computeGeometry(totalBlocks, inodeCount uint64) (geometry, error) {
	if inodeCount == 0 {
		inodeCount = totalBlocks / 16
	}
	if inodeCount < 64 {
		inodeCount = 64
	}
	var g geometry
	g.totalBlocks = totalBlocks
	g.inodeCount = inodeCount
	bitsPerBlock := uint64(BlockSize * 8)
	g.inodeBitmapStart = 1
	g.inodeBitmapBlocks = (inodeCount + bitsPerBlock - 1) / bitsPerBlock
	g.blockBitmapStart = g.inodeBitmapStart + g.inodeBitmapBlocks
	g.blockBitmapBlocks = (totalBlocks + bitsPerBlock - 1) / bitsPerBlock
	g.inodeTableStart = g.blockBitmapStart + g.blockBitmapBlocks
	g.inodeTableBlocks = (inodeCount + inodesPerBlock - 1) / inodesPerBlock
	g.dataStart = g.inodeTableStart + g.inodeTableBlocks
	if g.dataStart+16 > totalBlocks {
		return geometry{}, fmt.Errorf("fs: %d blocks is too small for %d inodes", totalBlocks, inodeCount)
	}
	return g, nil
}

func (g geometry) encode() []byte {
	b := make([]byte, BlockSize)
	put := func(off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
	put(sbMagic, fsMagic)
	put(sbVersion, fsVersion)
	put(sbTotalBlocks, g.totalBlocks)
	put(sbInodeCount, g.inodeCount)
	put(sbInodeBitmapStart, g.inodeBitmapStart)
	put(sbInodeBitmapBlocks, g.inodeBitmapBlocks)
	put(sbBlockBitmapStart, g.blockBitmapStart)
	put(sbBlockBitmapBlocks, g.blockBitmapBlocks)
	put(sbInodeTableStart, g.inodeTableStart)
	put(sbInodeTableBlocks, g.inodeTableBlocks)
	put(sbDataStart, g.dataStart)
	return b
}

func decodeGeometry(b []byte) (geometry, error) {
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
	if get(sbMagic) != fsMagic {
		return geometry{}, fmt.Errorf("fs: bad magic %#x", get(sbMagic))
	}
	if get(sbVersion) != fsVersion {
		return geometry{}, fmt.Errorf("fs: unsupported version %d", get(sbVersion))
	}
	return geometry{
		totalBlocks:       get(sbTotalBlocks),
		inodeCount:        get(sbInodeCount),
		inodeBitmapStart:  get(sbInodeBitmapStart),
		inodeBitmapBlocks: get(sbInodeBitmapBlocks),
		blockBitmapStart:  get(sbBlockBitmapStart),
		blockBitmapBlocks: get(sbBlockBitmapBlocks),
		inodeTableStart:   get(sbInodeTableStart),
		inodeTableBlocks:  get(sbInodeTableBlocks),
		dataStart:         get(sbDataStart),
	}, nil
}
