package fs

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"tinca/internal/errs"
)

// viewMemBackend extends memBackend with the ViewReader + ConcurrentReader
// capabilities: views alias a snapshot slice the backend never mutates
// (memTxn.Commit installs fresh slices), mirroring the stability contract
// the Tinca backend provides via NVM block pins.
type viewMemBackend struct {
	*memBackend
	viewsOpen int
	mu        sync.Mutex
}

func (b *viewMemBackend) ConcurrentReads() bool { return true }

func (b *viewMemBackend) ReadBlockView(no uint64) (BlockView, error) {
	b.memBackend.mu.Lock()
	d, ok := b.blocks[no]
	b.memBackend.mu.Unlock()
	if !ok {
		d = make([]byte, BlockSize)
	}
	b.mu.Lock()
	b.viewsOpen++
	b.mu.Unlock()
	return &memBlockView{b: b, data: d}, nil
}

type memBlockView struct {
	b    *viewMemBackend
	data []byte
}

func (v *memBlockView) Bytes() []byte { return v.data }
func (v *memBlockView) Close() error {
	v.b.mu.Lock()
	v.b.viewsOpen--
	v.b.mu.Unlock()
	v.data = nil
	return nil
}

// TestReadAtView covers the four sources a view can come from — a
// backend (zero-copy) block, a staged-but-uncommitted block, a hole, and
// the copying fallback on a backend without ViewReader — plus the
// boundary/EOF/Close semantics shared by all of them.
func TestReadAtView(t *testing.T) {
	vb := &viewMemBackend{memBackend: newMemBackend()}
	f, err := Format(vb, 4096, 0, Options{GroupCommitBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Committed file content: 2.5 blocks of patterned data.
	content := make([]byte, BlockSize*5/2)
	for i := range content {
		content[i] = byte('a' + i%23)
	}
	if err := f.WriteFile("/data", content); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // commit the group so blocks reach the backend
		t.Fatal(err)
	}

	// Zero-copy views over the whole file, iterating by Len like a short
	// read loop; each view must stop at its block boundary.
	var got []byte
	for off := uint64(0); off < uint64(len(content)); {
		v, err := f.ReadAtView("/data", off, len(content))
		if err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		if !v.ZeroCopy() {
			t.Fatalf("off %d: committed data should be zero-copy", off)
		}
		if end := int(off%BlockSize) + v.Len(); end > BlockSize {
			t.Fatalf("off %d: view crosses a block boundary (end %d)", off, end)
		}
		got = append(got, v.Bytes()...)
		off += uint64(v.Len())
		if err := v.Close(); err != nil {
			t.Fatal(err)
		}
		if v.Bytes() != nil || v.Len() != 0 {
			t.Fatal("view not neutered by Close")
		}
		if err := v.Close(); !errors.Is(err, errs.ErrViewExpired) {
			t.Fatalf("double Close = %v, want ErrViewExpired", err)
		}
	}
	if !bytes.Equal(got, content) {
		t.Fatal("view loop reassembled different bytes than written")
	}
	if vb.viewsOpen != 0 {
		t.Fatalf("%d backend views leaked", vb.viewsOpen)
	}

	// EOF and error surface.
	if _, err := f.ReadAtView("/data", uint64(len(content)), 1); !errors.Is(err, errs.ErrOutOfRange) {
		t.Fatalf("read at EOF = %v, want ErrOutOfRange sentinel", err)
	}
	if _, err := f.ReadAtView("/", 0, 1); err != ErrIsDir {
		t.Fatalf("view of a directory = %v, want ErrIsDir", err)
	}

	// A hole reads as zeroes from the shared zero block, no backend view.
	if err := f.Truncate("/data", BlockSize*8); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	hv, err := f.ReadAtView("/data", BlockSize*5, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if hv.ZeroCopy() {
		t.Fatal("hole view should not claim zero-copy backend backing")
	}
	for _, b := range hv.Bytes() {
		if b != 0 {
			t.Fatal("hole view has non-zero bytes")
		}
	}
	if err := hv.Close(); err != nil {
		t.Fatal(err)
	}

	// Staged data (written but not group-committed) is served as a
	// private copy of the staged bytes, not the stale backend contents.
	patch := bytes.Repeat([]byte{'Z'}, 64)
	if err := f.WriteAt("/data", 0, patch); err != nil {
		t.Fatal(err)
	}
	sv, err := f.ReadAtView("/data", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sv.ZeroCopy() {
		t.Fatal("staged data must come as a private copy")
	}
	if !bytes.Equal(sv.Bytes(), patch) {
		t.Fatalf("staged view = %q, want the staged bytes", sv.Bytes()[:8])
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}

	// A view stays a stable snapshot across later writes to the same
	// range (the backend's old block slice is unshared).
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	stable, err := f.ReadAtView("/data", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt("/data", 0, bytes.Repeat([]byte{'Q'}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stable.Bytes(), patch) {
		t.Fatal("open view drifted after an overwrite")
	}
	if err := stable.Close(); err != nil {
		t.Fatal(err)
	}

	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadAtViewCopyBackend runs the same loop on a backend without
// ViewReader: every view must be a private copy with identical contents.
func TestReadAtViewCopyBackend(t *testing.T) {
	f := newFSForTest(t, 4096, Options{})
	content := make([]byte, BlockSize+123)
	for i := range content {
		content[i] = byte(i)
	}
	if err := f.WriteFile("/c", content); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for off := uint64(0); off < uint64(len(content)); {
		v, err := f.ReadAtView("/c", off, 1<<20)
		if err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		if v.ZeroCopy() {
			t.Fatal("copy backend cannot produce zero-copy views")
		}
		got = append(got, v.Bytes()...)
		off += uint64(v.Len())
		if err := v.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, content) {
		t.Fatal("copied views reassembled different bytes")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileHandleReadAtView checks the File-handle entry point.
func TestFileHandleReadAtView(t *testing.T) {
	f := newFSForTest(t, 1024, Options{})
	if err := f.WriteFile("/h", []byte("handle view")); err != nil {
		t.Fatal(err)
	}
	h, err := f.Open("/h")
	if err != nil {
		t.Fatal(err)
	}
	v, err := h.ReadAtView(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Bytes()) != "view" {
		t.Fatalf("handle view = %q", v.Bytes())
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
