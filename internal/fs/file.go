package fs

import (
	"fmt"
	"io"
)

// File is a handle-based view of a regular file, satisfying io.Reader,
// io.Writer, io.Seeker, io.ReaderAt and io.WriterAt. Handles are a thin
// convenience over the path-based API: they hold a path and an offset,
// resolve on every operation (like the path API), and require no Close
// bookkeeping beyond flushing batched writes.
type File struct {
	fs   *FS
	path string
	off  uint64
}

// Open returns a handle to an existing regular file.
func (f *FS) Open(path string) (*File, error) {
	info, err := f.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir {
		return nil, ErrIsDir
	}
	return &File{fs: f, path: path}, nil
}

// OpenFile opens path, creating it when create is set.
func (f *FS) OpenFile(path string, create bool) (*File, error) {
	if create && !f.Exists(path) {
		if err := f.Create(path); err != nil {
			return nil, err
		}
	}
	return f.Open(path)
}

// Name returns the path the handle was opened with.
func (h *File) Name() string { return h.path }

// Read implements io.Reader.
func (h *File) Read(p []byte) (int, error) {
	n, err := h.fs.ReadAt(h.path, h.off, p)
	if err == ErrReadRange {
		return 0, io.EOF
	}
	h.off += uint64(n)
	if err == nil && n < len(p) {
		// Short read means EOF was reached inside the range.
		return n, nil
	}
	return n, err
}

// Write implements io.Writer: data is written at the current offset.
func (h *File) Write(p []byte) (int, error) {
	if err := h.fs.WriteAt(h.path, h.off, p); err != nil {
		return 0, err
	}
	h.off += uint64(len(p))
	return len(p), nil
}

// ReadAt implements io.ReaderAt.
func (h *File) ReadAt(p []byte, off int64) (int, error) {
	n, err := h.fs.ReadAt(h.path, uint64(off), p)
	if err == ErrReadRange {
		return 0, io.EOF
	}
	if err == nil && n < len(p) {
		return n, io.EOF
	}
	return n, err
}

// WriteAt implements io.WriterAt.
func (h *File) WriteAt(p []byte, off int64) (int, error) {
	if err := h.fs.WriteAt(h.path, uint64(off), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Seek implements io.Seeker.
func (h *File) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = int64(h.off)
	case io.SeekEnd:
		info, err := h.fs.Stat(h.path)
		if err != nil {
			return 0, err
		}
		base = int64(info.Size)
	default:
		return 0, fmt.Errorf("fs: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("fs: negative seek position %d", pos)
	}
	h.off = uint64(pos)
	return pos, nil
}

// Sync forces the file's pending updates durable (fsync).
func (h *File) Sync() error { return h.fs.Fsync(h.path) }

// Close syncs the handle. The handle stays usable afterwards; Close
// exists for io.Closer compatibility.
func (h *File) Close() error { return h.Sync() }

// Size returns the current file size.
func (h *File) Size() (uint64, error) {
	info, err := h.fs.Stat(h.path)
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}
