package fs

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tinca/internal/errs"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// Common errors.
var (
	ErrNotExist  = errors.New("fs: file does not exist")
	ErrExist     = errors.New("fs: file already exists")
	ErrIsDir     = errors.New("fs: is a directory")
	ErrNotDir    = errors.New("fs: not a directory")
	ErrNotEmpty  = errors.New("fs: directory not empty")
	ErrNoSpace   = errors.New("fs: no space left")
	ErrNoInodes  = errors.New("fs: no inodes left")
	ErrTooLarge  = errors.New("fs: file too large")
	ErrNameLen   = errors.New("fs: name too long")
	ErrBadPath   = errors.New("fs: bad path")
	ErrReadRange = fmt.Errorf("fs: read beyond end of file: %w", errs.ErrOutOfRange)
	ErrLinkLoop  = errors.New("fs: too many levels of symbolic links")
	ErrNotLink   = errors.New("fs: not a symbolic link")
	// ErrViewExpired is returned by FileView.Close on a double close (it
	// wraps the cross-layer errs.ErrViewExpired sentinel, like the cache's
	// own view error, so errors.Is matches either layer's variant).
	ErrViewExpired = fmt.Errorf("fs: view used after Close: %w", errs.ErrViewExpired)
)

// Options configure a mounted file system.
type Options struct {
	// GroupCommitBlocks batches multiple operations into one backend
	// transaction, committing when at least this many distinct blocks are
	// staged (JBD2-style group commit). Zero commits every operation
	// individually. Fsync/Sync always force a commit.
	GroupCommitBlocks int
	// GroupCommitIntervalNS additionally commits the open group
	// transaction when this much simulated time has passed since the last
	// commit (JBD2's 5-second commit window). Zero disables the timer.
	GroupCommitIntervalNS int64
	// PageCacheBlocks bounds the DRAM page cache that absorbs repeated
	// reads (the OS page cache both evaluated stacks enjoy). Zero uses a
	// default of 1024 blocks (4MB).
	PageCacheBlocks int
	// Clock supplies mtimes and is charged OpCostNS per operation;
	// optional.
	Clock *sim.Clock
	// OpCostNS is the CPU cost (syscall + VFS path) charged to the clock
	// at the start of every file-system operation. Zero charges nothing.
	OpCostNS int64
	// Rec receives per-operation latency histograms (fs.read_ns /
	// fs.write_ns, simulated time) when Observe is set. Both Rec and
	// Clock must be non-nil for latency recording to happen; otherwise
	// the hot path pays a single nil check.
	Rec     *metrics.Recorder
	Observe bool
}

// FS is a mounted file system. All methods are safe for concurrent use.
// Mutating operations are serialized by one big write lock (the
// journal-handle path is the bottleneck the paper measures in both
// stacks, and it is serialized there too), but data-path reads (ReadAt,
// Stat, ReadDir, Readlink, Exists) take only a read lock when the backend
// advertises concurrent reads (see ConcurrentReader), so they scale with
// the Tinca cache's sharded read path instead of queueing behind the FS
// lock.
type FS struct {
	mu      sync.RWMutex
	b       Backend
	g       geometry
	opts    Options
	rlockOK bool       // backend supports concurrent ReadBlock
	vr      ViewReader // non-nil when the backend serves zero-copy views

	// DRAM mirrors of the allocation bitmaps for O(1) scanning. The
	// persistent bitmaps are still updated transactionally; mirrors are
	// rebuilt on mount.
	blockBitmap []uint64
	inodeBitmap []uint64
	freeBlocks  uint64
	freeInodes  uint64
	allocHint   uint64

	// Group transaction: staged block updates of *successful* operations,
	// not yet committed to the backend, plus the data blocks those
	// operations freed (for journal revocation).
	staged        map[uint64][]byte
	stagedSeq     []uint64
	stagedRevokes map[uint64]bool
	groupLimit    int

	// Page cache: committed block contents (DRAM, free to read).
	pageCache *pageCache

	lastCommit int64 // simulated ns of the last group commit

	// crashed carries the injected-crash panic after a simulated power
	// failure unwound an operation: the failure may have left the DRAM
	// mirrors and the open group transaction mid-update, so every later
	// operation re-raises the crash instead of running on that state
	// (exactly as core.Cache poisons itself). Only Crash+Remount — which
	// build a fresh FS — clear it.
	crashed atomic.Value

	// Operation counters for Stats (atomic: read ops bump them under the
	// shared lock).
	nReadOps      atomic.Int64
	nWriteOps     atomic.Int64
	nGroupCommits atomic.Int64

	// Per-operation latency histograms (simulated ns); nil unless
	// Options.Observe with a Recorder and Clock.
	hRead  *metrics.Histogram
	hWrite *metrics.Histogram
}

// FSStats is a typed snapshot of file-system-level state and activity.
type FSStats struct {
	FreeBlocks       uint64 // unallocated data blocks
	FreeInodes       uint64 // unallocated inodes
	StagedBlocks     int    // blocks in the open group transaction
	PageCachedBlocks int    // blocks resident in the DRAM page cache
	ReadOps          int64  // read-only operations served
	WriteOps         int64  // mutating operations executed
	GroupCommits     int64  // backend transactions committed
	ConcurrentReads  bool   // reads bypass the exclusive FS lock

	// Per-operation latency digests (simulated ns); zero unless the FS
	// was mounted with Options.Observe, a Recorder, and a Clock.
	ReadLatency  metrics.LatencySummary
	WriteLatency metrics.LatencySummary
}

// Stats returns a typed snapshot of file-system counters. Safe for
// concurrent use; the snapshot is not atomic across fields.
func (f *FS) Stats() FSStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	st := FSStats{
		FreeBlocks:       f.freeBlocks,
		FreeInodes:       f.freeInodes,
		StagedBlocks:     len(f.staged),
		PageCachedBlocks: f.pageCache.len(),
		ReadOps:          f.nReadOps.Load(),
		WriteOps:         f.nWriteOps.Load(),
		GroupCommits:     f.nGroupCommits.Load(),
		ConcurrentReads:  f.rlockOK,
	}
	if f.hRead != nil {
		st.ReadLatency = f.hRead.Snapshot().Summary()
		st.WriteLatency = f.hWrite.Snapshot().Summary()
	}
	return st
}

// Format writes a fresh file system over the backend and mounts it.
// totalBlocks is the device span the file system manages; inodeCount of
// zero picks a default.
func Format(b Backend, totalBlocks, inodeCount uint64, opts Options) (*FS, error) {
	g, err := computeGeometry(totalBlocks, inodeCount)
	if err != nil {
		return nil, err
	}
	f := newFS(b, g, opts)
	err = f.runOp(true, func(ctx *opCtx) error {
		ctx.writeBlock(0, g.encode())
		// Reserve the metadata area and the root in the mirrors directly
		// (format owns the whole device; no undo needed).
		for blk := uint64(0); blk < g.dataStart; blk++ {
			bitmapSet(f.blockBitmap, blk)
		}
		f.freeBlocks = g.totalBlocks - g.dataStart
		f.freeInodes = g.inodeCount - 2 // inode 0 invalid, inode 1 root
		bitmapSet(f.inodeBitmap, 0)
		bitmapSet(f.inodeBitmap, rootIno)
		f.stageBitmapMirror(ctx)
		root := inode{mode: ModeDir, nlink: 2, mtime: f.now()}
		return ctx.writeInode(rootIno, root)
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Mount opens an existing file system on the backend.
func Mount(b Backend, opts Options) (*FS, error) {
	buf := make([]byte, BlockSize)
	if err := b.ReadBlock(0, buf); err != nil {
		return nil, err
	}
	g, err := decodeGeometry(buf)
	if err != nil {
		return nil, err
	}
	f := newFS(b, g, opts)
	if err := f.loadBitmaps(); err != nil {
		return nil, err
	}
	return f, nil
}

const rootIno = 1

func newFS(b Backend, g geometry, opts Options) *FS {
	pcBlocks := opts.PageCacheBlocks
	if pcBlocks == 0 {
		pcBlocks = 1024
	}
	words := func(n uint64) int { return int((n + 63) / 64) }
	rlockOK := false
	if cr, ok := b.(ConcurrentReader); ok && cr.ConcurrentReads() {
		rlockOK = true
	}
	f := &FS{
		b:             b,
		g:             g,
		opts:          opts,
		rlockOK:       rlockOK,
		blockBitmap:   make([]uint64, words(g.totalBlocks)),
		inodeBitmap:   make([]uint64, words(g.inodeCount)),
		staged:        make(map[uint64][]byte),
		stagedRevokes: make(map[uint64]bool),
		groupLimit:    opts.GroupCommitBlocks,
		pageCache:     newPageCache(pcBlocks),
		allocHint:     g.dataStart,
	}
	if opts.Observe && opts.Rec != nil && opts.Clock != nil {
		f.hRead = opts.Rec.Hist(metrics.HistFSRead)
		f.hWrite = opts.Rec.Hist(metrics.HistFSWrite)
	}
	// Zero-copy views require the backend to tolerate reads outside the
	// FS locks, so the capability is only honored alongside
	// ConcurrentReader (backend.go).
	if vr, ok := b.(ViewReader); ok && rlockOK {
		f.vr = vr
	}
	return f
}

func (f *FS) now() uint64 {
	if f.opts.Clock == nil {
		return 0
	}
	return uint64(f.opts.Clock.Now())
}

// Geometry exposes the superblock geometry (for tests and tools).
func (f *FS) Geometry() (totalBlocks, inodeCount, dataStart uint64) {
	return f.g.totalBlocks, f.g.inodeCount, f.g.dataStart
}

// FreeBlockCount reports the number of unallocated blocks.
func (f *FS) FreeBlockCount() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.freeBlocks
}

// loadBitmaps rebuilds the DRAM bitmap mirrors from the persistent
// bitmaps on mount.
func (f *FS) loadBitmaps() error {
	buf := make([]byte, BlockSize)
	load := func(start, nblocks uint64, mirror []uint64, bits uint64) (free uint64, err error) {
		idx := 0
		for blk := uint64(0); blk < nblocks; blk++ {
			if err := f.b.ReadBlock(start+blk, buf); err != nil {
				return 0, err
			}
			for i := 0; i+8 <= BlockSize && idx < len(mirror); i += 8 {
				mirror[idx] = uint64(buf[i]) | uint64(buf[i+1])<<8 | uint64(buf[i+2])<<16 |
					uint64(buf[i+3])<<24 | uint64(buf[i+4])<<32 | uint64(buf[i+5])<<40 |
					uint64(buf[i+6])<<48 | uint64(buf[i+7])<<56
				idx++
			}
		}
		for i := uint64(0); i < bits; i++ {
			if mirror[i/64]&(1<<(i%64)) == 0 {
				free++
			}
		}
		return free, nil
	}
	var err error
	if f.freeBlocks, err = load(f.g.blockBitmapStart, f.g.blockBitmapBlocks, f.blockBitmap, f.g.totalBlocks); err != nil {
		return err
	}
	if f.freeInodes, err = load(f.g.inodeBitmapStart, f.g.inodeBitmapBlocks, f.inodeBitmap, f.g.inodeCount); err != nil {
		return err
	}
	return nil
}

func bitmapSet(m []uint64, i uint64)      { m[i/64] |= 1 << (i % 64) }
func bitmapClear(m []uint64, i uint64)    { m[i/64] &^= 1 << (i % 64) }
func bitmapGet(m []uint64, i uint64) bool { return m[i/64]&(1<<(i%64)) != 0 }

// stageBitmapMirror writes both full bitmaps from the mirrors into the
// transaction. Used only by Format.
func (f *FS) stageBitmapMirror(ctx *opCtx) {
	write := func(start, nblocks uint64, mirror []uint64) {
		buf := make([]byte, BlockSize)
		idx := 0
		for blk := uint64(0); blk < nblocks; blk++ {
			for i := 0; i+8 <= BlockSize; i += 8 {
				var w uint64
				if idx < len(mirror) {
					w = mirror[idx]
				}
				buf[i] = byte(w)
				buf[i+1] = byte(w >> 8)
				buf[i+2] = byte(w >> 16)
				buf[i+3] = byte(w >> 24)
				buf[i+4] = byte(w >> 32)
				buf[i+5] = byte(w >> 40)
				buf[i+6] = byte(w >> 48)
				buf[i+7] = byte(w >> 56)
				idx++
			}
			ctx.writeBlock(start+blk, buf)
		}
	}
	write(f.g.blockBitmapStart, f.g.blockBitmapBlocks, f.blockBitmap)
	write(f.g.inodeBitmapStart, f.g.inodeBitmapBlocks, f.inodeBitmap)
}

// ---- operation context -------------------------------------------------

// opCtx is the per-operation view. Reads see this operation's overlay
// first, then the group transaction's staged blocks, then the page cache,
// then the backend. Writes go to the overlay, so an operation that fails
// mid-way is discarded wholesale: overlay dropped, bitmap-mirror changes
// undone. A successful operation merges its overlay into the group
// transaction.
type opCtx struct {
	f       *FS
	overlay map[uint64][]byte
	seq     []uint64
	undo    []bitmapUndo
	freed   []uint64 // data blocks this operation freed
}

type bitmapUndo struct {
	inodeMap bool
	idx      uint64
	wasSet   bool
}

func (f *FS) beginOp() *opCtx {
	return &opCtx{f: f, overlay: make(map[uint64][]byte)}
}

// runOp executes one operation body atomically with respect to the group
// transaction. force commits the group transaction immediately on
// success. Caller must NOT hold f.mu.
func (f *FS) runOp(force bool, body func(*opCtx) error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.checkCrashed()
	defer f.poisonOnCrash()
	return f.runOpLocked(force, body)
}

// checkCrashed re-raises a previously observed injected-crash panic: after
// a (simulated) power failure nothing may keep mutating this mount.
func (f *FS) checkCrashed() {
	if pv := f.crashed.Load(); pv != nil {
		panic(pv)
	}
}

// poisonOnCrash (deferred) records an injected-crash panic unwinding
// through this operation, then lets it continue to the harness.
func (f *FS) poisonOnCrash() {
	pv := recover()
	if pv == nil {
		return
	}
	if _, ok := pv.(pmem.ErrCrash); ok {
		f.crashed.CompareAndSwap(nil, pv)
	}
	panic(pv)
}

// runRead executes a read-only operation body. When the backend supports
// concurrent reads, only the read lock is taken: the body sees the group
// transaction's staged blocks and the page cache exactly as a serialized
// read would (writers are excluded by the RWMutex; the page cache has its
// own lock), but any number of readers proceed in parallel. A read never
// commits the group transaction — except that, to preserve the historical
// timer semantics, a read arriving after the commit window expired
// upgrades to the write lock and flushes it. The body must not write
// through the opCtx.
func (f *FS) runRead(body func(*opCtx) error) error {
	if !f.rlockOK {
		return f.runOp(false, body)
	}
	f.mu.RLock()
	if f.commitTimerDue() {
		f.mu.RUnlock()
		return f.runOp(false, body)
	}
	defer f.mu.RUnlock()
	f.checkCrashed()
	defer f.poisonOnCrash()
	f.nReadOps.Add(1)
	if f.opts.Clock != nil && f.opts.OpCostNS > 0 {
		f.opts.Clock.AdvanceNS(f.opts.OpCostNS)
	}
	if f.hRead != nil {
		t0 := int64(f.opts.Clock.Now())
		defer func() { f.hRead.Record(int64(f.opts.Clock.Now()) - t0) }()
	}
	return body(f.beginOp())
}

func (f *FS) runOpLocked(force bool, body func(*opCtx) error) error {
	f.nWriteOps.Add(1)
	if f.opts.Clock != nil && f.opts.OpCostNS > 0 {
		f.opts.Clock.AdvanceNS(f.opts.OpCostNS)
	}
	if f.hWrite != nil {
		t0 := int64(f.opts.Clock.Now())
		defer func() { f.hWrite.Record(int64(f.opts.Clock.Now()) - t0) }()
	}
	ctx := f.beginOp()
	if err := body(ctx); err != nil {
		// Roll back mirror mutations in reverse order; drop the overlay.
		for i := len(ctx.undo) - 1; i >= 0; i-- {
			u := ctx.undo[i]
			m := f.blockBitmap
			if u.inodeMap {
				m = f.inodeBitmap
			}
			cur := bitmapGet(m, u.idx)
			if cur == u.wasSet {
				continue
			}
			if u.wasSet {
				bitmapSet(m, u.idx)
			} else {
				bitmapClear(m, u.idx)
			}
			if u.inodeMap {
				if u.wasSet {
					f.freeInodes--
				} else {
					f.freeInodes++
				}
			} else {
				if u.wasSet {
					f.freeBlocks--
				} else {
					f.freeBlocks++
				}
			}
		}
		return err
	}
	// Merge the overlay into the group transaction in write order. A
	// freed block is revoked; re-allocating it later un-revokes it.
	for _, no := range ctx.seq {
		d := ctx.overlay[no]
		delete(f.stagedRevokes, no)
		if cur, ok := f.staged[no]; ok {
			copy(cur, d)
		} else {
			f.staged[no] = d
			f.stagedSeq = append(f.stagedSeq, no)
		}
	}
	for _, no := range ctx.freed {
		f.stagedRevokes[no] = true
	}
	if !force && f.groupLimit > 0 && len(f.staged) < f.groupLimit && !f.commitTimerDue() {
		return nil
	}
	return f.commitGroup()
}

// commitTimerDue reports whether the group-commit window elapsed.
func (f *FS) commitTimerDue() bool {
	if f.opts.GroupCommitIntervalNS <= 0 || f.opts.Clock == nil || len(f.staged) == 0 {
		return false
	}
	return int64(f.opts.Clock.Now())-f.lastCommit >= f.opts.GroupCommitIntervalNS
}

// commitGroup pushes all staged blocks into one backend transaction.
// Caller holds f.mu.
func (f *FS) commitGroup() error {
	if f.opts.Clock != nil {
		f.lastCommit = int64(f.opts.Clock.Now())
	}
	if len(f.staged) == 0 {
		return nil
	}
	txn := f.b.Begin()
	for _, no := range f.stagedSeq {
		txn.Write(no, f.staged[no])
	}
	for no := range f.stagedRevokes {
		if _, rewritten := f.staged[no]; !rewritten {
			txn.Revoke(no)
		}
	}
	if err := txn.Commit(); err != nil {
		txn.Abort()
		return err
	}
	f.nGroupCommits.Add(1)
	for _, no := range f.stagedSeq {
		f.pageCache.put(no, f.staged[no])
	}
	f.staged = make(map[uint64][]byte)
	f.stagedSeq = f.stagedSeq[:0]
	f.stagedRevokes = make(map[uint64]bool)
	return nil
}

// StagedBlocks reports the group transaction's current size (tests and
// the Figure 13 probe).
func (f *FS) StagedBlocks() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.staged)
}

func (c *opCtx) readBlock(no uint64, p []byte) error {
	f := c.f
	if d, ok := c.overlay[no]; ok {
		copy(p, d)
		return nil
	}
	if d, ok := f.staged[no]; ok {
		copy(p, d)
		return nil
	}
	if f.pageCache.get(no, p) {
		return nil
	}
	if err := f.b.ReadBlock(no, p); err != nil {
		return err
	}
	f.pageCache.put(no, p)
	return nil
}

func (c *opCtx) writeBlock(no uint64, data []byte) {
	if len(data) != BlockSize {
		panic("fs: writeBlock needs a full block")
	}
	if d, ok := c.overlay[no]; ok {
		copy(d, data)
		return
	}
	d := make([]byte, BlockSize)
	copy(d, data)
	c.overlay[no] = d
	c.seq = append(c.seq, no)
}

// mutateBlock reads block no, lets fn edit it in place, and stages it.
func (c *opCtx) mutateBlock(no uint64, fn func(b []byte)) error {
	buf := make([]byte, BlockSize)
	if err := c.readBlock(no, buf); err != nil {
		return err
	}
	fn(buf)
	c.writeBlock(no, buf)
	return nil
}

// ---- inode and bitmap transactional helpers ----------------------------

func (c *opCtx) readInode(ino uint64) (inode, error) {
	blk, off := c.f.g.inodeBlock(ino)
	buf := make([]byte, BlockSize)
	if err := c.readBlock(blk, buf); err != nil {
		return inode{}, err
	}
	return decodeInode(buf[off : off+inodeSize]), nil
}

func (c *opCtx) writeInode(ino uint64, in inode) error {
	blk, off := c.f.g.inodeBlock(ino)
	return c.mutateBlock(blk, func(b []byte) {
		encodeInode(in, b[off:off+inodeSize])
	})
}

// stageBit flips bit i of the persistent bitmap rooted at start.
func (c *opCtx) stageBit(start, i uint64, set bool) error {
	blk := start + i/(BlockSize*8)
	bit := i % (BlockSize * 8)
	return c.mutateBlock(blk, func(b []byte) {
		if set {
			b[bit/8] |= 1 << (bit % 8)
		} else {
			b[bit/8] &^= 1 << (bit % 8)
		}
	})
}

// allocBlock allocates one data block transactionally.
func (c *opCtx) allocBlock() (uint64, error) {
	f := c.f
	if f.freeBlocks == 0 {
		return 0, ErrNoSpace
	}
	n := f.g.totalBlocks
	for scanned := uint64(0); scanned < n; scanned++ {
		blk := f.allocHint + scanned
		if blk >= n {
			blk = f.g.dataStart + (blk-n)%(n-f.g.dataStart)
		}
		if blk < f.g.dataStart {
			continue
		}
		if !bitmapGet(f.blockBitmap, blk) {
			c.undo = append(c.undo, bitmapUndo{inodeMap: false, idx: blk, wasSet: false})
			bitmapSet(f.blockBitmap, blk)
			f.freeBlocks--
			f.allocHint = blk + 1
			if err := c.stageBit(f.g.blockBitmapStart, blk, true); err != nil {
				return 0, err
			}
			return blk, nil
		}
	}
	return 0, ErrNoSpace
}

func (c *opCtx) freeBlock(blk uint64) error {
	f := c.f
	if blk < f.g.dataStart || blk >= f.g.totalBlocks {
		return fmt.Errorf("fs: freeing out-of-range block %d", blk)
	}
	if !bitmapGet(f.blockBitmap, blk) {
		return fmt.Errorf("fs: double free of block %d", blk)
	}
	c.undo = append(c.undo, bitmapUndo{inodeMap: false, idx: blk, wasSet: true})
	bitmapClear(f.blockBitmap, blk)
	f.freeBlocks++
	c.freed = append(c.freed, blk)
	return c.stageBit(f.g.blockBitmapStart, blk, false)
}

func (c *opCtx) allocInode() (uint64, error) {
	f := c.f
	if f.freeInodes == 0 {
		return 0, ErrNoInodes
	}
	for ino := uint64(2); ino < f.g.inodeCount; ino++ {
		if !bitmapGet(f.inodeBitmap, ino) {
			c.undo = append(c.undo, bitmapUndo{inodeMap: true, idx: ino, wasSet: false})
			bitmapSet(f.inodeBitmap, ino)
			f.freeInodes--
			if err := c.stageBit(f.g.inodeBitmapStart, ino, true); err != nil {
				return 0, err
			}
			return ino, nil
		}
	}
	return 0, ErrNoInodes
}

func (c *opCtx) freeInode(ino uint64) error {
	f := c.f
	if !bitmapGet(f.inodeBitmap, ino) {
		return fmt.Errorf("fs: double free of inode %d", ino)
	}
	c.undo = append(c.undo, bitmapUndo{inodeMap: true, idx: ino, wasSet: true})
	bitmapClear(f.inodeBitmap, ino)
	f.freeInodes++
	return c.stageBit(f.g.inodeBitmapStart, ino, false)
}

// ---- page cache ---------------------------------------------------------

// pageCache is a bounded LRU of committed block contents, standing in for
// the OS page cache. It has its own lock (get reorders the LRU list, so
// even lookups mutate) because readers holding only the FS read lock use
// it concurrently.
type pageCache struct {
	mu    sync.Mutex
	max   int
	items map[uint64]*list.Element
	order *list.List // front = MRU
}

type pcEntry struct {
	no   uint64
	data []byte
}

func newPageCache(max int) *pageCache {
	return &pageCache{max: max, items: make(map[uint64]*list.Element), order: list.New()}
}

func (p *pageCache) get(no uint64, out []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.items[no]
	if !ok {
		return false
	}
	p.order.MoveToFront(el)
	copy(out, el.Value.(*pcEntry).data)
	return true
}

func (p *pageCache) put(no uint64, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[no]; ok {
		copy(el.Value.(*pcEntry).data, data)
		p.order.MoveToFront(el)
		return
	}
	d := make([]byte, BlockSize)
	copy(d, data)
	p.items[no] = p.order.PushFront(&pcEntry{no: no, data: d})
	for len(p.items) > p.max {
		back := p.order.Back()
		e := back.Value.(*pcEntry)
		p.order.Remove(back)
		delete(p.items, e.no)
	}
}

func (p *pageCache) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.items)
}
