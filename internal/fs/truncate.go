package fs

import "encoding/binary"

// punchFrom frees every data block of the inode with logical index >=
// keep and zeroes their pointers, implementing POSIX truncate-shrink
// semantics (a later extension must read zeroes, not stale bytes).
// Indirect blocks that become completely empty are freed too.
func (c *opCtx) punchFrom(in *inode, keep uint64) error {
	for l := keep; l < numDirect; l++ {
		if in.direct[l] != 0 {
			if err := c.freeBlock(in.direct[l]); err != nil {
				return err
			}
			in.direct[l] = 0
		}
	}
	if in.single != 0 {
		start := int64(keep) - numDirect
		if start < 0 {
			start = 0
		}
		empty, err := c.punchIndirect(in.single, uint64(start), 1)
		if err != nil {
			return err
		}
		if empty {
			if err := c.freeBlock(in.single); err != nil {
				return err
			}
			in.single = 0
		}
	}
	if in.double != 0 {
		start := int64(keep) - numDirect - ptrsPerBlock
		if start < 0 {
			start = 0
		}
		empty, err := c.punchIndirect(in.double, uint64(start), 2)
		if err != nil {
			return err
		}
		if empty {
			if err := c.freeBlock(in.double); err != nil {
				return err
			}
			in.double = 0
		}
	}
	return nil
}

// punchIndirect frees everything an indirect block references at logical
// indices >= startIdx (relative to this block's coverage) and reports
// whether the block is empty afterwards. depth 1 slots hold data
// pointers; depth 2 slots hold depth-1 indirect blocks, each covering
// ptrsPerBlock indices.
func (c *opCtx) punchIndirect(blk, startIdx uint64, depth int) (bool, error) {
	buf := make([]byte, BlockSize)
	if err := c.readBlock(blk, buf); err != nil {
		return false, err
	}
	dirty := false
	empty := true
	span := uint64(1)
	if depth > 1 {
		span = ptrsPerBlock
	}
	for i := uint64(0); i < ptrsPerBlock; i++ {
		p := binary.LittleEndian.Uint64(buf[i*8:])
		if p == 0 {
			continue
		}
		lo := i * span
		hi := lo + span
		switch {
		case hi <= startIdx:
			// Entirely kept.
			empty = false
		case lo >= startIdx:
			// Entirely punched.
			if depth > 1 {
				if _, err := c.punchIndirect(p, 0, depth-1); err != nil {
					return false, err
				}
			}
			if err := c.freeBlock(p); err != nil {
				return false, err
			}
			binary.LittleEndian.PutUint64(buf[i*8:], 0)
			dirty = true
		default:
			// Straddles the boundary (depth > 1 only).
			childEmpty, err := c.punchIndirect(p, startIdx-lo, depth-1)
			if err != nil {
				return false, err
			}
			if childEmpty {
				if err := c.freeBlock(p); err != nil {
					return false, err
				}
				binary.LittleEndian.PutUint64(buf[i*8:], 0)
				dirty = true
			} else {
				empty = false
			}
		}
	}
	if dirty {
		c.writeBlock(blk, buf)
	}
	return empty, nil
}

// zeroTail zeroes the bytes of the block containing byte offset `from`
// starting at that offset, so data beyond the new EOF reads as zero.
func (c *opCtx) zeroTail(in inode, from uint64) error {
	bo := int(from % BlockSize)
	if bo == 0 {
		return nil
	}
	_, phys, err := c.bmap(in, from/BlockSize, false)
	if err != nil || phys == 0 {
		return err
	}
	return c.mutateBlock(phys, func(b []byte) {
		for i := bo; i < BlockSize; i++ {
			b[i] = 0
		}
	})
}
