// Package fs implements a 4KB-block journal-agnostic file system — the
// Ext4 stand-in of the evaluation. Every mutating operation is expressed
// as a block-level transaction against a pluggable Backend, so the same
// file system runs in three consistency modes:
//
//   - Tinca mode: transactions map 1:1 onto Tinca commits (the paper's
//     prototype replaces JBD2's start_this_handle /
//     jbd2_journal_commit_transaction with tinca_init_txn / tinca_commit);
//   - journal mode: transactions are committed to a JBD2-style redo
//     journal and checkpointed later (Ext4 data journalling — the Classic
//     stack);
//   - direct mode: transactions write home locations in place with no
//     journal (the "Ext4 without journaling" baseline of Figures 3/4).
//
// The file system provides data consistency (both metadata and file data
// are in every transaction), the level the paper targets (Section 2.3).
package fs

// Backend is the block-transaction interface the file system runs on.
// Implementations live in internal/stack, one per consistency mode.
type Backend interface {
	// ReadBlock copies the committed contents of block no into p
	// (BlockSize bytes).
	ReadBlock(no uint64, p []byte) error
	// Begin starts a transaction.
	Begin() BackendTxn
	// Sync makes all committed transactions durable and, in journal mode,
	// gives the journal a chance to checkpoint.
	Sync() error
	// Close flushes everything and shuts the backend down.
	Close() error
}

// ConcurrentReader is an optional capability interface: a Backend that
// also implements it — and reports true — promises that ReadBlock is safe
// to call from multiple goroutines concurrently, including concurrently
// with Begin/Commit on other goroutines. The file system then serves
// data-path reads under a shared lock instead of the exclusive operation
// lock. Backends that serialize internally (the journal and direct modes)
// simply don't implement it and keep the fully serialized behavior.
type ConcurrentReader interface {
	ConcurrentReads() bool
}

// BlockView is a zero-copy window onto the committed contents of one
// block, returned by a ViewReader backend. Bytes stays valid (a stable
// snapshot) until Close; the caller must not write through it and must
// Close exactly once.
type BlockView interface {
	// Bytes returns the BlockSize block contents (nil after Close).
	Bytes() []byte
	// Close releases the view.
	Close() error
}

// ViewReader is an optional capability interface: a Backend that also
// implements it can serve committed block contents without copying them
// (the Tinca backend pins the NVM block and aliases its bytes). The file
// system's ReadAtView uses it when present and degrades to private
// copies otherwise. A ViewReader backend must also support concurrent
// reads (see ConcurrentReader): views outlive the FS locks.
type ViewReader interface {
	// ReadBlockView returns a stable zero-copy view of block no.
	ReadBlockView(no uint64) (BlockView, error)
}

// BackendTxn is one atomic batch of block updates.
type BackendTxn interface {
	// Write stages the new contents of block no (BlockSize bytes, copied).
	Write(no uint64, data []byte)
	// Revoke declares that block no was freed by this transaction
	// (truncate/unlink): a journal must not resurrect its old contents
	// during replay (JBD2's revoke blocks, paper Figure 2(b)). Backends
	// without a journal may ignore it.
	Revoke(no uint64)
	// Commit atomically applies the staged updates.
	Commit() error
	// Abort discards the transaction.
	Abort()
}
