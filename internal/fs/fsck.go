package fs

import (
	"encoding/binary"
	"fmt"
)

// Check is an fsck-style structural consistency verifier, used by the
// crash-consistency harness after every recovery. It walks the inode
// table, directory tree and allocation bitmaps from their persistent state
// and reports the first violation found:
//
//   - every block referenced by an inode (data or indirect) is marked
//     allocated and referenced exactly once;
//   - every allocated inode is reachable from the root directory exactly
//     once, and every dirent points to an allocated inode;
//   - bitmap mirrors agree with the persistent bitmaps;
//   - file sizes are consistent with the mapped block range.
func (f *FS) Check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ctx := f.beginOp()

	// 1. Bitmap mirrors match persistent bitmaps.
	if err := f.checkBitmap(ctx, f.g.blockBitmapStart, f.blockBitmap, f.g.totalBlocks, "block"); err != nil {
		return err
	}
	if err := f.checkBitmap(ctx, f.g.inodeBitmapStart, f.inodeBitmap, f.g.inodeCount, "inode"); err != nil {
		return err
	}

	// 2. Walk every allocated inode; collect block references.
	refs := make(map[uint64]uint64) // block -> referencing inode
	addRef := func(blk, ino uint64) error {
		if blk < f.g.dataStart || blk >= f.g.totalBlocks {
			return fmt.Errorf("fsck: inode %d references out-of-range block %d", ino, blk)
		}
		if !bitmapGet(f.blockBitmap, blk) {
			return fmt.Errorf("fsck: inode %d references unallocated block %d", ino, blk)
		}
		if prev, dup := refs[blk]; dup {
			return fmt.Errorf("fsck: block %d referenced by inodes %d and %d", blk, prev, ino)
		}
		refs[blk] = ino
		return nil
	}

	allocatedInodes := make(map[uint64]inode)
	for ino := uint64(1); ino < f.g.inodeCount; ino++ {
		if !bitmapGet(f.inodeBitmap, ino) {
			continue
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode != ModeFile && in.mode != ModeDir && in.mode != ModeSymlink {
			return fmt.Errorf("fsck: allocated inode %d has invalid mode %d", ino, in.mode)
		}
		if in.mode == ModeSymlink && (in.size == 0 || in.size >= BlockSize || in.direct[0] == 0) {
			return fmt.Errorf("fsck: symlink inode %d malformed (size %d)", ino, in.size)
		}
		allocatedInodes[ino] = in
		if err := f.walkInodeBlocks(ctx, in, ino, addRef); err != nil {
			return err
		}
		maxBlocks := (in.size + BlockSize - 1) / BlockSize
		if maxBlocks > MaxFileBlocks {
			return fmt.Errorf("fsck: inode %d size %d exceeds maximum", ino, in.size)
		}
	}

	// 3. Directory tree: every allocated inode reachable; files exactly
	// nlink times (hard links), directories exactly once.
	seen := map[uint64]int{rootIno: 1}
	var walk func(dir uint64) error
	walk = func(dir uint64) error {
		din := allocatedInodes[dir]
		nblocks := (din.size + BlockSize - 1) / BlockSize
		buf := make([]byte, BlockSize)
		for l := uint64(0); l < nblocks; l++ {
			_, phys, err := ctx.bmap(din, l, false)
			if err != nil {
				return err
			}
			if phys == 0 {
				continue
			}
			if err := ctx.readBlock(phys, buf); err != nil {
				return err
			}
			for i := 0; i < direntsPerBlk; i++ {
				rec := buf[i*direntSize : (i+1)*direntSize]
				child := binary.LittleEndian.Uint64(rec[direntInoOff:])
				if child == 0 {
					continue
				}
				cin, ok := allocatedInodes[child]
				if !ok {
					return fmt.Errorf("fsck: dirent %q in dir inode %d points to unallocated inode %d",
						direntName(rec), dir, child)
				}
				seen[child]++
				if cin.mode == ModeDir {
					if seen[child] > 1 {
						return fmt.Errorf("fsck: directory inode %d linked more than once", child)
					}
					if err := walk(child); err != nil {
						return err
					}
				} else if seen[child] > int(cin.nlink) {
					return fmt.Errorf("fsck: inode %d linked %d times, nlink is %d",
						child, seen[child], cin.nlink)
				}
			}
		}
		return nil
	}
	if _, ok := allocatedInodes[rootIno]; !ok {
		return fmt.Errorf("fsck: root inode not allocated")
	}
	if err := walk(rootIno); err != nil {
		return err
	}
	for ino, in := range allocatedInodes {
		if seen[ino] == 0 {
			return fmt.Errorf("fsck: allocated inode %d unreachable from root", ino)
		}
		if in.mode == ModeFile && seen[ino] != int(in.nlink) {
			return fmt.Errorf("fsck: inode %d has nlink %d but %d links found", ino, in.nlink, seen[ino])
		}
	}
	return nil
}

// walkInodeBlocks visits every block (data and indirect) an inode maps.
func (f *FS) walkInodeBlocks(ctx *opCtx, in inode, ino uint64, visit func(blk, ino uint64) error) error {
	for i := 0; i < numDirect; i++ {
		if in.direct[i] != 0 {
			if err := visit(in.direct[i], ino); err != nil {
				return err
			}
		}
	}
	var walkInd func(blk uint64, depth int) error
	walkInd = func(blk uint64, depth int) error {
		if err := visit(blk, ino); err != nil {
			return err
		}
		buf := make([]byte, BlockSize)
		if err := ctx.readBlock(blk, buf); err != nil {
			return err
		}
		for i := 0; i < ptrsPerBlock; i++ {
			p := binary.LittleEndian.Uint64(buf[i*8:])
			if p == 0 {
				continue
			}
			if depth > 1 {
				if err := walkInd(p, depth-1); err != nil {
					return err
				}
			} else if err := visit(p, ino); err != nil {
				return err
			}
		}
		return nil
	}
	if in.single != 0 {
		if err := walkInd(in.single, 1); err != nil {
			return err
		}
	}
	if in.double != 0 {
		if err := walkInd(in.double, 2); err != nil {
			return err
		}
	}
	return nil
}

// checkBitmap compares a DRAM mirror against the persistent bitmap.
func (f *FS) checkBitmap(ctx *opCtx, start uint64, mirror []uint64, bits uint64, what string) error {
	buf := make([]byte, BlockSize)
	for i := uint64(0); i < bits; i++ {
		if i%(BlockSize*8) == 0 {
			if err := ctx.readBlock(start+i/(BlockSize*8), buf); err != nil {
				return err
			}
		}
		bit := i % (BlockSize * 8)
		persisted := buf[bit/8]&(1<<(bit%8)) != 0
		if persisted != bitmapGet(mirror, i) {
			return fmt.Errorf("fsck: %s bitmap mirror diverges at bit %d (persist=%v)", what, i, persisted)
		}
	}
	return nil
}
