package fs

import "encoding/binary"

// Inode layout: 128 bytes, 32 per block.
//
//	0   mode   uint16 (0 free, 1 regular file, 2 directory)
//	2   nlink  uint16
//	4   pad    uint32
//	8   size   uint64 (bytes)
//	16  mtime  uint64 (simulated nanoseconds)
//	24  direct [10]uint64 block pointers
//	104 single-indirect block pointer
//	112 double-indirect block pointer
//	120 pad
//
// A zero block pointer means "unallocated" (block 0 is the superblock and
// can never be file data). Maximum file size is
// (10 + 512 + 512*512) * 4KB ≈ 1GB.
const (
	inodeSize      = 128
	inodesPerBlock = BlockSize / inodeSize
	numDirect      = 10
	ptrsPerBlock   = BlockSize / 8
)

// File type modes.
const (
	ModeFree    = 0
	ModeFile    = 1
	ModeDir     = 2
	ModeSymlink = 3
)

// MaxFileBlocks is the largest number of data blocks one file can map.
const MaxFileBlocks = numDirect + ptrsPerBlock + ptrsPerBlock*ptrsPerBlock

type inode struct {
	mode   uint16
	nlink  uint16
	size   uint64
	mtime  uint64
	direct [numDirect]uint64
	single uint64
	double uint64
}

func encodeInode(in inode, b []byte) {
	for i := range b[:inodeSize] {
		b[i] = 0
	}
	binary.LittleEndian.PutUint16(b[0:], in.mode)
	binary.LittleEndian.PutUint16(b[2:], in.nlink)
	binary.LittleEndian.PutUint64(b[8:], in.size)
	binary.LittleEndian.PutUint64(b[16:], in.mtime)
	for i := 0; i < numDirect; i++ {
		binary.LittleEndian.PutUint64(b[24+8*i:], in.direct[i])
	}
	binary.LittleEndian.PutUint64(b[104:], in.single)
	binary.LittleEndian.PutUint64(b[112:], in.double)
}

func decodeInode(b []byte) inode {
	var in inode
	in.mode = binary.LittleEndian.Uint16(b[0:])
	in.nlink = binary.LittleEndian.Uint16(b[2:])
	in.size = binary.LittleEndian.Uint64(b[8:])
	in.mtime = binary.LittleEndian.Uint64(b[16:])
	for i := 0; i < numDirect; i++ {
		in.direct[i] = binary.LittleEndian.Uint64(b[24+8*i:])
	}
	in.single = binary.LittleEndian.Uint64(b[104:])
	in.double = binary.LittleEndian.Uint64(b[112:])
	return in
}

// inodeBlock returns the table block and byte offset of inode ino.
func (g geometry) inodeBlock(ino uint64) (blk uint64, off int) {
	return g.inodeTableStart + ino/inodesPerBlock, int(ino%inodesPerBlock) * inodeSize
}
