package fs

import "fmt"

// FileInfo describes a file or directory.
type FileInfo struct {
	Size  uint64
	IsDir bool
	Mtime uint64
	Nlink int
}

// Create makes an empty regular file at path. The parent directory must
// exist; the file must not.
func (f *FS) Create(path string) error {
	return f.runOp(false, func(ctx *opCtx) error {
		dir, name, err := ctx.resolveParent(path)
		if err != nil {
			return err
		}
		if existing, err := ctx.lookupDir(dir, name); err != nil {
			return err
		} else if existing != 0 {
			return ErrExist
		}
		ino, err := ctx.allocInode()
		if err != nil {
			return err
		}
		if err := ctx.writeInode(ino, inode{mode: ModeFile, nlink: 1, mtime: f.now()}); err != nil {
			return err
		}
		return ctx.addDirent(dir, ino, name)
	})
}

// Mkdir makes an empty directory at path.
func (f *FS) Mkdir(path string) error {
	return f.runOp(false, func(ctx *opCtx) error {
		dir, name, err := ctx.resolveParent(path)
		if err != nil {
			return err
		}
		if existing, err := ctx.lookupDir(dir, name); err != nil {
			return err
		} else if existing != 0 {
			return ErrExist
		}
		ino, err := ctx.allocInode()
		if err != nil {
			return err
		}
		if err := ctx.writeInode(ino, inode{mode: ModeDir, nlink: 2, mtime: f.now()}); err != nil {
			return err
		}
		return ctx.addDirent(dir, ino, name)
	})
}

// MkdirAll creates path and any missing parents.
func (f *FS) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if err := f.Mkdir(cur); err != nil && err != ErrExist {
			return err
		}
	}
	return nil
}

// Remove unlinks a file or an empty directory.
func (f *FS) Remove(path string) error {
	return f.runOp(false, func(ctx *opCtx) error {
		dir, name, err := ctx.resolveParent(path)
		if err != nil {
			return err
		}
		ino, err := ctx.lookupDir(dir, name)
		if err != nil {
			return err
		}
		if ino == 0 {
			return ErrNotExist
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode == ModeDir {
			names, err := ctx.listDir(ino)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				return ErrNotEmpty
			}
		}
		if _, err := ctx.removeDirent(dir, name); err != nil {
			return err
		}
		// Hard links: only the last unlink releases the inode and blocks.
		if in.mode == ModeFile && in.nlink > 1 {
			in.nlink--
			return ctx.writeInode(ino, in)
		}
		if err := ctx.freeFileBlocks(in); err != nil {
			return err
		}
		if err := ctx.writeInode(ino, inode{}); err != nil {
			return err
		}
		return ctx.freeInode(ino)
	})
}

// Link creates a hard link: newPath names the same inode as oldPath.
// Directories cannot be hard-linked.
func (f *FS) Link(oldPath, newPath string) error {
	return f.runOp(false, func(ctx *opCtx) error {
		ino, err := ctx.resolve(oldPath)
		if err != nil {
			return err
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode != ModeFile {
			return ErrIsDir
		}
		newDir, newName, err := ctx.resolveParent(newPath)
		if err != nil {
			return err
		}
		if existing, err := ctx.lookupDir(newDir, newName); err != nil {
			return err
		} else if existing != 0 {
			return ErrExist
		}
		in.nlink++
		if err := ctx.writeInode(ino, in); err != nil {
			return err
		}
		return ctx.addDirent(newDir, ino, newName)
	})
}

// Symlink creates a symbolic link at linkPath whose target is the
// absolute path target. The target need not exist (dangling links are
// legal); resolution follows up to 8 levels.
func (f *FS) Symlink(target, linkPath string) error {
	if len(target) == 0 || len(target) >= BlockSize {
		return ErrBadPath
	}
	return f.runOp(false, func(ctx *opCtx) error {
		dir, name, err := ctx.resolveParent(linkPath)
		if err != nil {
			return err
		}
		if existing, err := ctx.lookupDir(dir, name); err != nil {
			return err
		} else if existing != 0 {
			return ErrExist
		}
		ino, err := ctx.allocInode()
		if err != nil {
			return err
		}
		blk, err := ctx.allocBlock()
		if err != nil {
			return err
		}
		buf := make([]byte, BlockSize)
		copy(buf, target)
		ctx.writeBlock(blk, buf)
		in := inode{mode: ModeSymlink, nlink: 1, size: uint64(len(target)), mtime: f.now()}
		in.direct[0] = blk
		if err := ctx.writeInode(ino, in); err != nil {
			return err
		}
		return ctx.addDirent(dir, ino, name)
	})
}

// Readlink returns the target of the symlink at path (without following
// it — the terminal component is inspected, not resolved).
func (f *FS) Readlink(path string) (string, error) {
	var target string
	err := f.runRead(func(ctx *opCtx) error {
		dir, name, err := ctx.resolveParent(path)
		if err != nil {
			return err
		}
		ino, err := ctx.lookupDir(dir, name)
		if err != nil {
			return err
		}
		if ino == 0 {
			return ErrNotExist
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode != ModeSymlink {
			return ErrNotLink
		}
		target, err = ctx.readLinkTarget(in)
		return err
	})
	return target, err
}

// Rename moves oldPath to newPath with POSIX rename(2) semantics: an
// existing newPath file is replaced atomically (its last link released);
// if both paths are hard links to the same inode (or the same path), the
// rename succeeds without doing anything. Renaming onto an existing
// directory is not supported (ErrIsDir), nor is renaming a directory onto
// a file (ErrNotDir).
func (f *FS) Rename(oldPath, newPath string) error {
	return f.runOp(false, func(ctx *opCtx) error {
		oldDir, oldName, err := ctx.resolveParent(oldPath)
		if err != nil {
			return err
		}
		srcIno, err := ctx.lookupDir(oldDir, oldName)
		if err != nil {
			return err
		}
		if srcIno == 0 {
			return ErrNotExist
		}
		newDir, newName, err := ctx.resolveParent(newPath)
		if err != nil {
			return err
		}
		existing, err := ctx.lookupDir(newDir, newName)
		if err != nil {
			return err
		}
		if existing == srcIno {
			// POSIX: oldpath and newpath name the same inode — do nothing
			// and report success; both names remain.
			return nil
		}
		if existing != 0 {
			src, err := ctx.readInode(srcIno)
			if err != nil {
				return err
			}
			tgt, err := ctx.readInode(existing)
			if err != nil {
				return err
			}
			if tgt.mode == ModeDir {
				return ErrIsDir
			}
			if src.mode == ModeDir {
				return ErrNotDir
			}
			// Replace the target: unlink it under the new name, releasing
			// the inode and blocks when this was its last link (the same
			// sequence Remove uses).
			if _, err := ctx.removeDirent(newDir, newName); err != nil {
				return err
			}
			if tgt.mode == ModeFile && tgt.nlink > 1 {
				tgt.nlink--
				if err := ctx.writeInode(existing, tgt); err != nil {
					return err
				}
			} else {
				if err := ctx.freeFileBlocks(tgt); err != nil {
					return err
				}
				if err := ctx.writeInode(existing, inode{}); err != nil {
					return err
				}
				if err := ctx.freeInode(existing); err != nil {
					return err
				}
			}
		}
		ino, err := ctx.removeDirent(oldDir, oldName)
		if err != nil {
			return err
		}
		return ctx.addDirent(newDir, ino, newName)
	})
}

// WriteAt writes data into the file at byte offset off, extending the
// file as needed.
func (f *FS) WriteAt(path string, off uint64, data []byte) error {
	return f.runOp(false, func(ctx *opCtx) error {
		ino, err := ctx.resolve(path)
		if err != nil {
			return err
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode != ModeFile {
			return ErrIsDir
		}
		if err := ctx.writeRange(&in, off, data); err != nil {
			return err
		}
		in.mtime = f.now()
		return ctx.writeInode(ino, in)
	})
}

// writeRange performs the block-level read-modify-write of a byte range.
func (c *opCtx) writeRange(in *inode, off uint64, data []byte) error {
	pos := off
	remaining := data
	buf := make([]byte, BlockSize)
	for len(remaining) > 0 {
		l := pos / BlockSize
		bo := int(pos % BlockSize)
		n := BlockSize - bo
		if n > len(remaining) {
			n = len(remaining)
		}
		in2, phys, err := c.bmap(*in, l, true)
		if err != nil {
			return err
		}
		*in = in2
		if bo == 0 && n == BlockSize {
			c.writeBlock(phys, remaining[:BlockSize])
		} else {
			if err := c.readBlock(phys, buf); err != nil {
				return err
			}
			copy(buf[bo:], remaining[:n])
			c.writeBlock(phys, buf)
		}
		pos += uint64(n)
		remaining = remaining[n:]
	}
	if pos > in.size {
		in.size = pos
	}
	return nil
}

// Append writes data at the current end of file.
func (f *FS) Append(path string, data []byte) error {
	return f.runOp(false, func(ctx *opCtx) error {
		ino, err := ctx.resolve(path)
		if err != nil {
			return err
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode != ModeFile {
			return ErrIsDir
		}
		if err := ctx.writeRange(&in, in.size, data); err != nil {
			return err
		}
		in.mtime = f.now()
		return ctx.writeInode(ino, in)
	})
}

// ReadAt reads up to len(p) bytes from byte offset off, returning the
// number of bytes read. Reading at or past EOF returns (0, ErrReadRange);
// a read crossing EOF is truncated.
func (f *FS) ReadAt(path string, off uint64, p []byte) (int, error) {
	var read uint64
	err := f.runRead(func(ctx *opCtx) error {
		ino, err := ctx.resolve(path)
		if err != nil {
			return err
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode != ModeFile {
			return ErrIsDir
		}
		if off >= in.size {
			return ErrReadRange
		}
		want := uint64(len(p))
		if off+want > in.size {
			want = in.size - off
		}
		buf := make([]byte, BlockSize)
		for read < want {
			pos := off + read
			l := pos / BlockSize
			bo := int(pos % BlockSize)
			n := uint64(BlockSize - bo)
			if n > want-read {
				n = want - read
			}
			_, phys, err := ctx.bmap(in, l, false)
			if err != nil {
				return err
			}
			if phys == 0 {
				for i := uint64(0); i < n; i++ {
					p[read+i] = 0
				}
			} else {
				if err := ctx.readBlock(phys, buf); err != nil {
					return err
				}
				copy(p[read:read+n], buf[bo:])
			}
			read += n
		}
		return nil
	})
	return int(read), err
}

// Truncate sets the file size. Shrinking to zero frees all blocks;
// shrinking partially or growing only adjusts the size (grown regions
// read as holes).
func (f *FS) Truncate(path string, size uint64) error {
	return f.runOp(false, func(ctx *opCtx) error {
		ino, err := ctx.resolve(path)
		if err != nil {
			return err
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode != ModeFile {
			return ErrIsDir
		}
		switch {
		case size == 0 && in.size > 0:
			if err := ctx.freeFileBlocks(in); err != nil {
				return err
			}
			in.direct = [numDirect]uint64{}
			in.single, in.double = 0, 0
		case size < in.size:
			// Shrink: free whole blocks beyond the new EOF and zero the
			// partial tail so a later extension reads zeroes (POSIX).
			keep := (size + BlockSize - 1) / BlockSize
			if err := ctx.punchFrom(&in, keep); err != nil {
				return err
			}
			if err := ctx.zeroTail(in, size); err != nil {
				return err
			}
		}
		in.size = size
		in.mtime = f.now()
		return ctx.writeInode(ino, in)
	})
}

// Stat returns metadata for path.
func (f *FS) Stat(path string) (FileInfo, error) {
	var info FileInfo
	err := f.runRead(func(ctx *opCtx) error {
		ino, err := ctx.resolve(path)
		if err != nil {
			return err
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		info = FileInfo{Size: in.size, IsDir: in.mode == ModeDir, Mtime: in.mtime, Nlink: int(in.nlink)}
		return nil
	})
	return info, err
}

// ReadDir lists the names in the directory at path.
func (f *FS) ReadDir(path string) ([]string, error) {
	var names []string
	err := f.runRead(func(ctx *opCtx) error {
		ino, err := ctx.resolve(path)
		if err != nil {
			return err
		}
		names, err = ctx.listDir(ino)
		return err
	})
	return names, err
}

// Exists reports whether path resolves.
func (f *FS) Exists(path string) bool {
	err := f.runRead(func(ctx *opCtx) error {
		_, err := ctx.resolve(path)
		return err
	})
	return err == nil
}

// Fsync forces the group transaction containing this file's updates (and
// anything batched with it) to commit durably.
func (f *FS) Fsync(path string) error {
	return f.runOp(true, func(ctx *opCtx) error {
		_, err := ctx.resolve(path)
		return err
	})
}

// Sync commits any open group transaction and asks the backend to make
// everything durable.
func (f *FS) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.checkCrashed()
	defer f.poisonOnCrash()
	if err := f.commitGroup(); err != nil {
		return err
	}
	return f.b.Sync()
}

// Close syncs and closes the backend.
func (f *FS) Close() error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.b.Close()
}

// WriteFile creates (if needed), truncates and writes data from offset
// zero, like os.WriteFile.
func (f *FS) WriteFile(path string, data []byte) error {
	if !f.Exists(path) {
		if err := f.Create(path); err != nil {
			return err
		}
	} else if err := f.Truncate(path, 0); err != nil {
		return err
	}
	return f.WriteAt(path, 0, data)
}

// ReadFile reads the whole file at path.
func (f *FS) ReadFile(path string) ([]byte, error) {
	info, err := f.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir {
		return nil, ErrIsDir
	}
	if info.Size == 0 {
		return nil, nil
	}
	p := make([]byte, info.Size)
	n, err := f.ReadAt(path, 0, p)
	if err != nil {
		return nil, err
	}
	if uint64(n) != info.Size {
		return nil, fmt.Errorf("fs: short read %d of %d", n, info.Size)
	}
	return p, nil
}
