package fs

import "tinca/internal/bufpool"

// This file is the file-system half of the zero-copy read API: ReadAtView
// hands out windows onto file bytes without the per-call copy ReadAt
// pays. When the backend advertises ViewReader (the Tinca stack), a view
// of committed data aliases the pinned NVM block directly; otherwise —
// and for bytes the backend cannot serve, like staged-but-uncommitted
// blocks or holes — the view degrades to a private copy (or the shared
// zero block) with identical semantics.

// zeroBlock backs hole reads: one shared, never-written block of zeroes.
var zeroBlock [BlockSize]byte

// FileView is a read-only window onto a contiguous byte range of one
// file, entirely within one 4KB block (ReadAtView never crosses a block
// boundary — callers loop for longer ranges). Bytes is a stable snapshot
// of the range at ReadAtView time, valid until Close even across
// concurrent writes and cache evictions. A FileView must not be copied
// after first use and must be Closed exactly once; it must be closed
// before a simulated Crash/Remount of the stack it came from.
type FileView struct {
	data   []byte
	bv     BlockView // non-nil when backed by a pinned backend view
	owned  []byte    // non-nil when data lives in a private bufpool copy
	closed bool
}

// Bytes returns the viewed range (nil after Close). The slice must not
// be written to and must not outlive Close.
func (v *FileView) Bytes() []byte {
	if v.closed {
		return nil
	}
	return v.data
}

// Len returns the number of viewed bytes (0 after Close).
func (v *FileView) Len() int { return len(v.Bytes()) }

// ZeroCopy reports whether the view aliases backend (NVM) bytes rather
// than a private copy.
func (v *FileView) ZeroCopy() bool { return v.bv != nil && !v.closed }

// Close releases the view (dropping the backend pin or recycling the
// copy). Returns ErrViewExpired if already closed.
func (v *FileView) Close() error {
	if v.closed {
		return ErrViewExpired
	}
	v.closed = true
	v.data = nil
	if v.bv != nil {
		bv := v.bv
		v.bv = nil
		return bv.Close()
	}
	if v.owned != nil {
		bufpool.Put(v.owned)
		v.owned = nil
	}
	return nil
}

// ReadAtView returns a view of up to n bytes of the file at path,
// starting at byte offset off. The view stops at the end of the
// containing 4KB block (and at EOF), so it may be shorter than n —
// callers iterate, advancing off by Len(), exactly as with short reads.
// Reading at or past EOF returns ErrReadRange, like ReadAt.
//
// On a Tinca-backed stack a view of committed data is zero-copy: the
// bytes alias the NVM cache block, pinned until Close. Bytes the backend
// cannot serve stably — a hole, or data still staged in the open FS
// group transaction — come as a private copy (the page cache is bypassed
// either way; it exists to absorb the copying path's backend reads).
func (f *FS) ReadAtView(path string, off uint64, n int) (FileView, error) {
	var view FileView
	err := f.runRead(func(ctx *opCtx) error {
		ino, err := ctx.resolve(path)
		if err != nil {
			return err
		}
		in, err := ctx.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode != ModeFile {
			return ErrIsDir
		}
		if off >= in.size {
			return ErrReadRange
		}
		want := uint64(n)
		if want > in.size-off {
			want = in.size - off
		}
		bo := int(off % BlockSize)
		if maxInBlock := uint64(BlockSize - bo); want > maxInBlock {
			want = maxInBlock
		}
		if want == 0 {
			view = FileView{data: zeroBlock[:0]}
			return nil
		}
		_, phys, err := ctx.bmap(in, off/BlockSize, false)
		if err != nil {
			return err
		}
		if phys == 0 {
			// A hole: every byte reads as zero, and nothing can write the
			// range without allocating a fresh block, so the shared zero
			// block is a stable snapshot.
			view = FileView{data: zeroBlock[bo : bo+int(want)]}
			return nil
		}
		if d, ok := f.staged[phys]; ok {
			// Staged in the open group transaction: not committed to the
			// backend yet, so serve a private copy of the staged bytes.
			buf := bufpool.Get()
			copy(buf, d)
			view = FileView{data: buf[bo : bo+int(want)], owned: buf}
			return nil
		}
		if f.vr != nil {
			bv, err := f.vr.ReadBlockView(phys)
			if err != nil {
				return err
			}
			view = FileView{data: bv.Bytes()[bo : bo+int(want)], bv: bv}
			return nil
		}
		buf := bufpool.Get()
		if err := ctx.readBlock(phys, buf); err != nil {
			bufpool.Put(buf)
			return err
		}
		view = FileView{data: buf[bo : bo+int(want)], owned: buf}
		return nil
	})
	return view, err
}

// ReadAtView serves the handle's file through FS.ReadAtView.
func (h *File) ReadAtView(off uint64, n int) (FileView, error) {
	return h.fs.ReadAtView(h.path, off, n)
}
