package fs

import (
	"encoding/binary"
	"strings"
)

// Directory entries are fixed 64-byte records packed into the directory
// file's data blocks:
//
//	0..7   inode number (0 = free slot)
//	8      name length
//	9..63  name bytes
const (
	direntSize    = 64
	direntsPerBlk = BlockSize / direntSize
	maxNameLen    = direntSize - 9
	direntInoOff  = 0
	direntLenOff  = 8
	direntNameOff = 9
)

func encodeDirent(b []byte, ino uint64, name string) {
	for i := range b[:direntSize] {
		b[i] = 0
	}
	binary.LittleEndian.PutUint64(b[direntInoOff:], ino)
	b[direntLenOff] = byte(len(name))
	copy(b[direntNameOff:], name)
}

func direntName(b []byte) string {
	n := int(b[direntLenOff])
	if n > maxNameLen {
		n = maxNameLen
	}
	return string(b[direntNameOff : direntNameOff+n])
}

// splitPath normalizes a slash-separated absolute or relative path into
// components. Empty components are dropped; "." and ".." are rejected (the
// file system has no per-directory dot entries).
func splitPath(path string) ([]string, error) {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		switch p {
		case "", ".":
			continue
		case "..":
			return nil, ErrBadPath
		}
		if len(p) > maxNameLen {
			return nil, ErrNameLen
		}
		out = append(out, p)
	}
	return out, nil
}

// lookupDir finds name within directory inode dirIno, returning the child
// inode number, or 0 when absent.
func (c *opCtx) lookupDir(dirIno uint64, name string) (uint64, error) {
	din, err := c.readInode(dirIno)
	if err != nil {
		return 0, err
	}
	if din.mode != ModeDir {
		return 0, ErrNotDir
	}
	nblocks := (din.size + BlockSize - 1) / BlockSize
	buf := make([]byte, BlockSize)
	for l := uint64(0); l < nblocks; l++ {
		_, phys, err := c.bmap(din, l, false)
		if err != nil {
			return 0, err
		}
		if phys == 0 {
			continue
		}
		if err := c.readBlock(phys, buf); err != nil {
			return 0, err
		}
		for i := 0; i < direntsPerBlk; i++ {
			rec := buf[i*direntSize : (i+1)*direntSize]
			ino := binary.LittleEndian.Uint64(rec[direntInoOff:])
			if ino != 0 && direntName(rec) == name {
				return ino, nil
			}
		}
	}
	return 0, nil
}

// resolve walks path components from the root, following symlinks (with a
// depth limit against cycles), returning the final inode number.
func (c *opCtx) resolve(path string) (uint64, error) {
	return c.resolveDepth(path, 0)
}

// maxSymlinkDepth bounds symlink chains (ELOOP equivalent).
const maxSymlinkDepth = 8

func (c *opCtx) resolveDepth(path string, depth int) (uint64, error) {
	if depth > maxSymlinkDepth {
		return 0, ErrLinkLoop
	}
	parts, err := splitPath(path)
	if err != nil {
		return 0, err
	}
	ino := uint64(rootIno)
	for _, name := range parts {
		child, err := c.lookupDir(ino, name)
		if err != nil {
			return 0, err
		}
		if child == 0 {
			return 0, ErrNotExist
		}
		in, err := c.readInode(child)
		if err != nil {
			return 0, err
		}
		if in.mode == ModeSymlink {
			target, err := c.readLinkTarget(in)
			if err != nil {
				return 0, err
			}
			// Targets are absolute paths in this file system.
			child, err = c.resolveDepth(target, depth+1)
			if err != nil {
				return 0, err
			}
		}
		ino = child
	}
	return ino, nil
}

// readLinkTarget reads a symlink inode's target path from its first data
// block (the size field gives the target length).
func (c *opCtx) readLinkTarget(in inode) (string, error) {
	if in.size == 0 || in.size > BlockSize {
		return "", ErrBadPath
	}
	if in.direct[0] == 0 {
		return "", ErrBadPath
	}
	buf := make([]byte, BlockSize)
	if err := c.readBlock(in.direct[0], buf); err != nil {
		return "", err
	}
	return string(buf[:in.size]), nil
}

// resolveParent returns the inode of path's parent directory and the final
// component name.
func (c *opCtx) resolveParent(path string) (uint64, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, "", err
	}
	if len(parts) == 0 {
		return 0, "", ErrBadPath
	}
	ino := uint64(rootIno)
	for _, name := range parts[:len(parts)-1] {
		child, err := c.lookupDir(ino, name)
		if err != nil {
			return 0, "", err
		}
		if child == 0 {
			return 0, "", ErrNotExist
		}
		ino = child
	}
	return ino, parts[len(parts)-1], nil
}

// addDirent inserts (name -> ino) into directory dirIno, reusing a free
// slot or extending the directory file.
func (c *opCtx) addDirent(dirIno, ino uint64, name string) error {
	din, err := c.readInode(dirIno)
	if err != nil {
		return err
	}
	if din.mode != ModeDir {
		return ErrNotDir
	}
	nblocks := (din.size + BlockSize - 1) / BlockSize
	buf := make([]byte, BlockSize)
	for l := uint64(0); l < nblocks; l++ {
		_, phys, err := c.bmap(din, l, false)
		if err != nil {
			return err
		}
		if phys == 0 {
			continue
		}
		if err := c.readBlock(phys, buf); err != nil {
			return err
		}
		for i := 0; i < direntsPerBlk; i++ {
			rec := buf[i*direntSize : (i+1)*direntSize]
			if binary.LittleEndian.Uint64(rec[direntInoOff:]) == 0 {
				encodeDirent(rec, ino, name)
				c.writeBlock(phys, buf)
				return nil
			}
		}
	}
	// No free slot: extend the directory by one block.
	din2, phys, err := c.bmap(din, nblocks, true)
	if err != nil {
		return err
	}
	din = din2
	for i := range buf {
		buf[i] = 0
	}
	encodeDirent(buf[:direntSize], ino, name)
	c.writeBlock(phys, buf)
	din.size = (nblocks + 1) * BlockSize
	din.mtime = c.f.now()
	return c.writeInode(dirIno, din)
}

// removeDirent deletes name from directory dirIno, returning the removed
// child's inode number.
func (c *opCtx) removeDirent(dirIno uint64, name string) (uint64, error) {
	din, err := c.readInode(dirIno)
	if err != nil {
		return 0, err
	}
	if din.mode != ModeDir {
		return 0, ErrNotDir
	}
	nblocks := (din.size + BlockSize - 1) / BlockSize
	buf := make([]byte, BlockSize)
	for l := uint64(0); l < nblocks; l++ {
		_, phys, err := c.bmap(din, l, false)
		if err != nil {
			return 0, err
		}
		if phys == 0 {
			continue
		}
		if err := c.readBlock(phys, buf); err != nil {
			return 0, err
		}
		for i := 0; i < direntsPerBlk; i++ {
			rec := buf[i*direntSize : (i+1)*direntSize]
			ino := binary.LittleEndian.Uint64(rec[direntInoOff:])
			if ino != 0 && direntName(rec) == name {
				for j := range rec {
					rec[j] = 0
				}
				c.writeBlock(phys, buf)
				return ino, nil
			}
		}
	}
	return 0, ErrNotExist
}

// listDir returns the names in directory dirIno.
func (c *opCtx) listDir(dirIno uint64) ([]string, error) {
	din, err := c.readInode(dirIno)
	if err != nil {
		return nil, err
	}
	if din.mode != ModeDir {
		return nil, ErrNotDir
	}
	nblocks := (din.size + BlockSize - 1) / BlockSize
	buf := make([]byte, BlockSize)
	var names []string
	for l := uint64(0); l < nblocks; l++ {
		_, phys, err := c.bmap(din, l, false)
		if err != nil {
			return nil, err
		}
		if phys == 0 {
			continue
		}
		if err := c.readBlock(phys, buf); err != nil {
			return nil, err
		}
		for i := 0; i < direntsPerBlk; i++ {
			rec := buf[i*direntSize : (i+1)*direntSize]
			if binary.LittleEndian.Uint64(rec[direntInoOff:]) != 0 {
				names = append(names, direntName(rec))
			}
		}
	}
	return names, nil
}
