package crash

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"tinca/internal/core"
	"tinca/internal/pmem"
	"tinca/internal/sim"
	"tinca/internal/stack"
)

// TestSweepSerialExhaustive crashes a trace at every persist-op boundary
// it spans, across the evictP grid, for both stack kinds. This is the
// exhaustive counterpart of the random Trial tests: no boundary is left
// unsampled, so an ordering bug cannot hide between random draws.
func TestSweepSerialExhaustive(t *testing.T) {
	for _, kind := range []stack.Kind{stack.Tinca, stack.Classic} {
		res, err := Sweep(SweepConfig{Kind: kind, Seed: 11, Ops: 15})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(res.Failures) != 0 {
			f := res.Failures[0]
			t.Fatalf("%v: %d failures; first at boundary %d evictP %v: %v",
				kind, len(res.Failures), f.Boundary, f.EvictP, f.Err)
		}
		if res.BoundarySpace == 0 || res.Boundaries != int(res.BoundarySpace) {
			t.Fatalf("%v: swept %d of %d boundaries", kind, res.Boundaries, res.BoundarySpace)
		}
		// Every in-stream boundary must actually fire: 3 evictPs per
		// boundary, all crashing.
		if res.Crashes != res.Runs {
			t.Fatalf("%v: only %d/%d trials crashed; boundary space over-counted", kind, res.Crashes, res.Runs)
		}
		t.Logf("%v: %d boundaries x 3 evictPs = %d trials, all consistent", kind, res.Boundaries, res.Runs)
	}
}

// TestSweepCheckpointed re-runs the exhaustive serial sweep with the
// checkpoint writer firing at every commit point (IntervalNS=1), so every
// boundary the sweep visits is also a boundary inside or between
// checkpoint writes. Any ordering bug in the journal-first protocol or
// the frame commit point shows up as an oracle failure here.
func TestSweepCheckpointed(t *testing.T) {
	res, err := Sweep(SweepConfig{Kind: stack.Tinca, Seed: 11, Ops: 15, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		f := res.Failures[0]
		t.Fatalf("%d failures; first at boundary %d evictP %v: %v",
			len(res.Failures), f.Boundary, f.EvictP, f.Err)
	}
	if res.Crashes != res.Runs {
		t.Fatalf("only %d/%d trials crashed; boundary space over-counted", res.Crashes, res.Runs)
	}
	// The checkpointed boundary space must be strictly wider than the plain
	// one: the writer's journal records and frame persists add persist ops,
	// and if they don't the sweep silently stopped covering the new code.
	plain, err := Sweep(SweepConfig{Kind: stack.Tinca, Seed: 11, Ops: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundarySpace <= plain.BoundarySpace {
		t.Fatalf("checkpoint writer added no persist boundaries: %d vs %d",
			res.BoundarySpace, plain.BoundarySpace)
	}
	t.Logf("checkpointed: %d boundaries (plain %d), %d trials, all consistent",
		res.Boundaries, plain.BoundarySpace, res.Runs)
}

// TestSweepMultiRing runs the exhaustive serial sweep on the CommitRings=16
// layout: every persist of the per-ring seal protocol — the 16B
// generation-stamped records, the per-ring Head persists, and the
// multi-ring Tail-flip window of cross-shard seals — becomes a crash
// boundary, and the generation-merged recovery must hold the oracle at
// each one. The multi-ring boundary space must also be strictly wider
// than the single-ring one: the split adds per-ring pointer persists, and
// if it doesn't, the sweep silently stopped covering the new protocol.
func TestSweepMultiRing(t *testing.T) {
	res, err := Sweep(SweepConfig{Kind: stack.Tinca, Seed: 11, Ops: 15, Rings: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		f := res.Failures[0]
		t.Fatalf("%d failures; first at boundary %d evictP %v: %v",
			len(res.Failures), f.Boundary, f.EvictP, f.Err)
	}
	if res.Crashes != res.Runs {
		t.Fatalf("only %d/%d trials crashed; boundary space over-counted", res.Crashes, res.Runs)
	}
	plain, err := Sweep(SweepConfig{Kind: stack.Tinca, Seed: 11, Ops: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundarySpace <= plain.BoundarySpace {
		t.Fatalf("multi-ring seals added no persist boundaries: %d vs %d",
			res.BoundarySpace, plain.BoundarySpace)
	}
	t.Logf("rings=16: %d boundaries (single-ring %d), %d trials, all consistent",
		res.Boundaries, plain.BoundarySpace, res.Runs)
}

// TestSweepL3Tiered re-runs the exhaustive serial sweep on the tiered
// stack (DESIGN.md §16): a 512-slot L2 disk plus object store behind
// the cache, with the upload and prefetch pipelines live and a low
// dirty bound forcing destage/upload/backpressure churn. The tier adds
// no NVM persists, so the boundary space matches the plain sweep; the
// point is the oracle verifying that recovery through the tier's slot
// map re-attach loses nothing at any NVM persist boundary.
func TestSweepL3Tiered(t *testing.T) {
	res, err := Sweep(SweepConfig{Kind: stack.Tinca, Seed: 11, Ops: 15, L3: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		f := res.Failures[0]
		t.Fatalf("%d failures; first at boundary %d evictP %v: %v",
			len(res.Failures), f.Boundary, f.EvictP, f.Err)
	}
	if res.Crashes != res.Runs {
		t.Fatalf("only %d/%d trials crashed; boundary space over-counted", res.Crashes, res.Runs)
	}
	t.Logf("l3: %d boundaries x evictPs = %d trials, all consistent", res.Boundaries, res.Runs)
}

// TestSweepMultiRingGroup crashes the concurrency matrix on the
// multi-ring layout: namespaced FS workers plus raw committers whose
// four-consecutive-block transactions span four rings, so every trial
// exercises the cross-ring seal (ring locks in index order, one
// generation, Tails flipped ring by ring).
func TestSweepMultiRingGroup(t *testing.T) {
	res, err := Sweep(SweepConfig{
		Kind:          stack.Tinca,
		Seed:          23,
		Ops:           10,
		MaxBoundaries: 50,
		Rings:         16,
		Group:         GroupConfig{Blocks: 4, FSWorkers: 4, RawCommitters: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		f := res.Failures[0]
		t.Fatalf("%d failures; first at boundary %d evictP %v: %v",
			len(res.Failures), f.Boundary, f.EvictP, f.Err)
	}
	if res.Crashes == 0 {
		t.Fatal("no multi-ring group trial crashed; sweep is vacuous")
	}
	t.Logf("rings=16 group: %d trials (%d crashed) over %d-op boundary space, all consistent",
		res.Runs, res.Crashes, res.BoundarySpace)
}

// TestSweepGroupCommit runs the group-commit-aware oracle: concurrent
// namespaced FS workers plus raw core.Txn committers under
// GroupCommitBlocks > 0, crashed across the boundary space. Verifies
// batch prefix-atomicity per worker and block-level txn atomicity for
// the raw streams.
func TestSweepGroupCommit(t *testing.T) {
	for _, tc := range []struct {
		kind stack.Kind
		raw  int
	}{
		{stack.Tinca, 2},
		{stack.Classic, 0},
	} {
		res, err := Sweep(SweepConfig{
			Kind:          tc.kind,
			Seed:          23,
			Ops:           10,
			MaxBoundaries: 50,
			Group:         GroupConfig{Blocks: 4, FSWorkers: 4, RawCommitters: tc.raw},
		})
		if err != nil {
			t.Fatalf("%v: %v", tc.kind, err)
		}
		if len(res.Failures) != 0 {
			f := res.Failures[0]
			t.Fatalf("%v: %d failures; first at boundary %d evictP %v: %v",
				tc.kind, len(res.Failures), f.Boundary, f.EvictP, f.Err)
		}
		if res.Crashes == 0 {
			t.Fatalf("%v: no group trial crashed; sweep is vacuous", tc.kind)
		}
		t.Logf("%v: %d trials (%d crashed) over %d-op boundary space, all consistent",
			tc.kind, res.Runs, res.Crashes, res.BoundarySpace)
	}
}

// TestSweepCatchesInjectedFault validates the harness itself: a cache
// that skips the committed-data flushes (FaultSkipDataFlush) must be
// caught by the sweep at evictP 0, then shrunk to a tiny deterministic
// reproducer whose replay line fails on its own.
func TestSweepCatchesInjectedFault(t *testing.T) {
	cfg := SweepConfig{
		Kind:    stack.Tinca,
		Seed:    5,
		Ops:     25,
		EvictPs: []float64{0},
		Fault:   core.FaultSkipDataFlush,
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("sweep missed the injected skip-data-flush fault; the oracle is vacuous")
	}
	t.Logf("fault caught at %d/%d trials; first: boundary %d: %v",
		len(res.Failures), res.Runs, res.Failures[0].Boundary, res.Failures[0].Err)

	min, err := Minimize(cfg, res.Failures[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Trace) > 10 {
		t.Fatalf("minimizer left %d ops, want <= 10: %v", len(min.Trace), min.Trace)
	}
	t.Logf("minimized to %d ops (boundary %d) in %d trials: %s",
		len(min.Trace), min.Boundary, min.Trials, min.Spec)

	// The reproducer line must round-trip and still fail.
	line := min.Spec.String()
	spec, err := ParseReplaySpec(line)
	if err != nil {
		t.Fatalf("reproducer line does not parse: %v\n%s", err, line)
	}
	if _, err := Replay(spec); err == nil {
		t.Fatalf("reproducer does not reproduce: %s", line)
	}

	// And the same sweep without the fault must be clean — the failures
	// above are the fault, not harness noise.
	cfg.Fault = core.FaultNone
	res, err = Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("fault-free control sweep failed: %v", res.Failures[0].Err)
	}
}

// TestTraceEncodeDecodeRoundTrip covers the reproducer encoding over the
// full op mix the generator produces.
func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	trace := GenTrace(99, 400)
	line, err := EncodeTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace, back) {
		t.Fatal("trace does not round-trip through its encoding")
	}
	// Arbitrary (non-patterned) data must survive via the hex fallback.
	odd := Op{Kind: opWrite, Path: "/x", Off: 7, Data: []byte{1, 1, 2, 3, 5, 8}}
	tok, err := EncodeOp(odd)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tok, "x010102030508") {
		t.Fatalf("non-patterned data not hex-encoded: %q", tok)
	}
	got, err := DecodeOp(tok)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(odd, got) {
		t.Fatalf("op %v decoded as %v", odd, got)
	}
}

// TestReplaySpecRoundTrip pins the full reproducer-line format.
func TestReplaySpecRoundTrip(t *testing.T) {
	spec := ReplaySpec{
		Kind:     stack.Classic,
		Boundary: -1,
		EvictP:   0.25,
		Fault:    core.FaultNone,
		Seed:     1234,
		Trace:    GenTrace(3, 20),
	}
	back, err := ParseReplaySpec(spec.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, spec.String())
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("spec does not round-trip:\n  %s\n  %s", spec.String(), back.String())
	}
	// Checkpointed reproducers must round-trip too — a dropped ckpt=1
	// would replay the failure against the wrong layout and "pass".
	spec.Kind, spec.Ckpt = stack.Tinca, true
	back, err = ParseReplaySpec(spec.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, spec.String())
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("ckpt spec does not round-trip:\n  %s\n  %s", spec.String(), back.String())
	}
	// Same for tiered reproducers: without l3=1 the replay would mount
	// a flat disk where the failure needed the tier.
	spec.L3 = true
	back, err = ParseReplaySpec(spec.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, spec.String())
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("l3 spec does not round-trip:\n  %s\n  %s", spec.String(), back.String())
	}
	if _, err := ParseReplaySpec("kind=tinca boundary=1"); err == nil {
		t.Fatal("traceless spec accepted")
	}
	if _, err := ParseReplaySpec("kind=nope trace=c:/f0001"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestRecoveryCrashIdempotence crashes the workload, then keeps crashing
// *recovery itself* at successive persist-op boundaries — re-crashing the
// half-recovered image each time — until a recovery pass runs to
// completion. The final state must still satisfy the before/after oracle:
// recovery must be idempotent under repeated failure.
//
// Recovery only persists when it finds repair work (an interrupted
// transaction or stray log entries), so a workload crash at a quiescent
// boundary yields a persist-free recovery that no armed crash can hit.
// The test therefore spreads workload crashes over many boundaries and
// requires that crashing recovery was exercised at least once overall.
func TestRecoveryCrashIdempotence(t *testing.T) {
	for _, kind := range []stack.Kind{stack.Tinca, stack.Classic} {
		total := 0
		for wb := int64(50); wb <= 1000; wb += 50 {
			total += recoveryCrashScenario(t, kind, wb, false)
		}
		if total == 0 {
			t.Fatalf("%v: no workload boundary produced a crashable recovery; test is vacuous", kind)
		}
		t.Logf("%v: consistent through %d crashes during recovery across workload boundaries", kind, total)
	}
}

// TestRecoveryCrashIdempotenceCheckpointed is the idempotence loop with
// the checkpoint writer at every commit point: the re-crashed images now
// carry a frame plus journal deltas, and each crashed recovery pass must
// leave a state the next checkpoint-aware pass still recovers exactly.
func TestRecoveryCrashIdempotenceCheckpointed(t *testing.T) {
	total := 0
	for wb := int64(50); wb <= 1000; wb += 50 {
		total += recoveryCrashScenario(t, stack.Tinca, wb, true)
	}
	if total == 0 {
		t.Fatal("no workload boundary produced a crashable recovery; test is vacuous")
	}
	t.Logf("consistent through %d crashes during checkpointed recovery", total)
}

// recoveryCrashScenario runs one workload crash at boundary wb followed
// by the crash-every-recovery-boundary loop, verifying the oracle at the
// end. It returns how many recovery passes were themselves crashed.
func recoveryCrashScenario(t *testing.T, kind stack.Kind, wb int64, ckpt bool) int {
	t.Helper()
	trace := GenTrace(17, 30)
	sp := trialSpec{kind: kind, trace: trace, ckpt: ckpt}
	s, err := stack.New(sp.stackConfig(nil))
	if err != nil {
		t.Fatal(err)
	}

	model := NewModel()
	var inflight *Op
	var opErr error
	s.Mem.ArmCrash(wb)
	crashed, _ := pmem.CatchCrash(func() {
		for i := range trace {
			o := trace[i]
			inflight = &o
			err := Issue(s.FS, o)
			if o.WantErr {
				if err == nil {
					opErr = fmt.Errorf("op %d %v succeeded, want error", i, o)
					return
				}
			} else if err != nil {
				opErr = fmt.Errorf("op %d %v: %v", i, o, err)
				return
			}
			model.Apply(o)
			inflight = nil
		}
	})
	if opErr != nil {
		t.Fatalf("%v wb=%d: %v", kind, wb, opErr)
	}
	if !crashed {
		s.Mem.DisarmCrash()
		inflight = nil
	}
	s.Crash(sim.NewRand(wb), 0.5)

	// Crash recovery at boundary 0, 1, 2, ... of the (progressively
	// re-crashed) image until one pass completes untouched.
	reRng := sim.NewRand(wb * 31)
	recoveryCrashes := 0
	for b := int64(0); ; b++ {
		if b > 1_000_000 {
			t.Fatalf("%v wb=%d: recovery never completed", kind, wb)
		}
		var remountErr error
		s.Mem.ArmCrash(b)
		crashed, _ := pmem.CatchCrash(func() { remountErr = s.Remount() })
		if !crashed {
			s.Mem.DisarmCrash()
			if remountErr != nil {
				t.Fatalf("%v wb=%d: remount after %d recovery crashes: %v", kind, wb, recoveryCrashes, remountErr)
			}
			break
		}
		recoveryCrashes++
		s.Crash(reRng, 0.5)
	}

	if err := checkStructure(s); err != nil {
		t.Fatalf("%v wb=%d after %d recovery crashes: %v", kind, wb, recoveryCrashes, err)
	}
	if err := Verify(s.FS, model); err != nil {
		if inflight == nil {
			t.Fatalf("%v wb=%d: acked state diverged after %d recovery crashes: %v", kind, wb, recoveryCrashes, err)
		}
		after := model.Clone()
		after.Apply(*inflight)
		if err2 := Verify(s.FS, after); err2 != nil {
			t.Fatalf("%v wb=%d: state matches neither side of in-flight %v after %d recovery crashes:\n  before: %v\n  after: %v",
				kind, wb, *inflight, recoveryCrashes, err, err2)
		}
	}
	return recoveryCrashes
}
