package crash

import (
	"fmt"
	"testing"

	"tinca/internal/sim"
	"tinca/internal/stack"
)

// TestModelApplySelfConsistent sanity-checks the shadow model against a
// live file system with no crashes: after any random op sequence they must
// agree exactly.
func TestModelApplySelfConsistent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s, err := stack.New(stack.Config{
			Kind: stack.Tinca, NVMBytes: 4 << 20, FSBlocks: 8192,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(seed)
		gen := NewGenerator(rng)
		model := NewModel()
		for i := 0; i < 150; i++ {
			o := gen.Next(model)
			if err := Issue(s.FS, o); err != nil {
				t.Fatalf("seed %d op %v: %v", seed, o, err)
			}
			model.Apply(o)
		}
		if err := Verify(s.FS, model); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRandomCrashTrialsTinca is the model-based torture test for the
// Tinca stack: many seeds, random crash points, random eviction
// probabilities.
func TestRandomCrashTrialsTinca(t *testing.T) {
	runTrials(t, stack.Tinca, 30)
}

// TestRandomCrashTrialsClassic runs the identical oracle against the
// journalled Classic stack — the paper claims both provide the same data
// consistency.
func TestRandomCrashTrialsClassic(t *testing.T) {
	runTrials(t, stack.Classic, 20)
}

func runTrials(t *testing.T, kind stack.Kind, n int) {
	t.Helper()
	crashes := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		evictP := float64(seed%5) / 4 // 0, .25, .5, .75, 1
		res, err := Trial(kind, seed*7919, 120, evictP)
		if err != nil {
			t.Fatalf("seed %d (evictP=%v, acked=%d, inflight=%s): %v",
				seed, evictP, res.OpsAcked, res.Inflight, err)
		}
		if res.Crashed {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("no trial actually crashed; widen the crash window")
	}
	t.Logf("%v: %d/%d trials crashed mid-workload, all consistent", kind, crashes, n)
}

// TestVerifyDetectsDivergence makes sure the oracle itself is not
// vacuous: a deliberately wrong model must be rejected.
func TestVerifyDetectsDivergence(t *testing.T) {
	s, err := stack.New(stack.Config{Kind: stack.Tinca, NVMBytes: 4 << 20, FSBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FS.WriteFile("/x", []byte("real")); err != nil {
		t.Fatal(err)
	}
	mk := func(pairs map[string]string) Model {
		m := NewModel()
		for p, v := range pairs {
			d := []byte(v)
			m.files[p] = &d
		}
		return m
	}
	cases := []Model{
		mk(map[string]string{"/x": "fake"}),           // wrong contents
		mk(map[string]string{"/x": "real", "/y": ""}), // missing file
		mk(nil), // unexpected file
	}
	for i, m := range cases {
		if err := Verify(s.FS, m); err == nil {
			t.Fatalf("case %d: divergent model accepted", i)
		}
	}
	if err := Verify(s.FS, mk(map[string]string{"/x": "real"})); err != nil {
		t.Fatalf("correct model rejected: %v", err)
	}
}

// TestTrialReportsUsableResult exercises the non-crashing path.
func TestTrialReportsUsableResult(t *testing.T) {
	// A tiny op budget with a huge crash window: usually completes.
	for seed := int64(0); seed < 10; seed++ {
		res, err := Trial(stack.Tinca, 1000+seed, 10, 0.5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Crashed && res.OpsAcked != 10 {
			t.Fatalf("seed %d: completed run acked %d/10", seed, res.OpsAcked)
		}
	}
	_ = fmt.Sprintf
}
