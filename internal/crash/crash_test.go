package crash

import (
	"fmt"
	"testing"

	"tinca/internal/sim"
	"tinca/internal/stack"
)

// TestModelApplySelfConsistent sanity-checks the shadow model against a
// live file system with no crashes: after any random op sequence they must
// agree exactly.
func TestModelApplySelfConsistent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s, err := stack.New(stack.Config{
			Kind: stack.Tinca, NVMBytes: 4 << 20, FSBlocks: 8192,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(seed)
		gen := NewGenerator(rng)
		model := NewModel()
		wantErrs := 0
		for i := 0; i < 150; i++ {
			o := gen.Next(model)
			err := Issue(s.FS, o)
			if o.WantErr {
				if err == nil {
					t.Fatalf("seed %d op %v succeeded, want error", seed, o)
				}
				wantErrs++
			} else if err != nil {
				t.Fatalf("seed %d op %v: %v", seed, o, err)
			}
			model.Apply(o)
		}
		t.Logf("seed %d: %d expected-failure ops", seed, wantErrs)
		if err := Verify(s.FS, model); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestModelAliasSemantics pins the POSIX corner cases the generator now
// reaches: rename onto an existing name replaces it, rename between hard
// links of the same inode is a no-op, and link onto an existing name is
// rejected without side effects. Model and FS must agree on each.
func TestModelAliasSemantics(t *testing.T) {
	s, err := stack.New(stack.Config{Kind: stack.Tinca, NVMBytes: 4 << 20, FSBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel()
	steps := []Op{
		{Kind: opCreate, Path: "/a"},
		{Kind: opAppend, Path: "/a", Data: []byte("alpha")},
		{Kind: opCreate, Path: "/b"},
		{Kind: opAppend, Path: "/b", Data: []byte("beta")},
		{Kind: opLink, Path: "/a", Path2: "/a2"},               // alias of /a
		{Kind: opLink, Path: "/b", Path2: "/a", WantErr: true}, // collision: rejected
		{Kind: opRename, Path: "/a", Path2: "/a2"},             // same inode: no-op, both stay
		{Kind: opRename, Path: "/b", Path2: "/a"},              // replaces /a; /a2 keeps "alpha"
	}
	for i, o := range steps {
		err := Issue(s.FS, o)
		if o.WantErr {
			if err == nil {
				t.Fatalf("step %d %v succeeded, want error", i, o)
			}
		} else if err != nil {
			t.Fatalf("step %d %v: %v", i, o, err)
		}
		m.Apply(o)
	}
	want := map[string]string{"/a": "beta", "/a2": "alpha"}
	if m.Len() != len(want) {
		t.Fatalf("model has %d paths, want %d", m.Len(), len(want))
	}
	for p, v := range want {
		cell, ok := m.files[p]
		if !ok || string(*cell) != v {
			t.Fatalf("model %s = %v, want %q", p, cell, v)
		}
	}
	if err := Verify(s.FS, m); err != nil {
		t.Fatalf("FS diverged from model: %v", err)
	}
}

// TestGeneratorCoversAliasOps fails if the generator stops producing the
// rename-onto-existing and link-over-existing ops this PR added: absent
// coverage, the POSIX replace/no-op paths go untested again.
func TestGeneratorCoversAliasOps(t *testing.T) {
	renameOver, linkOver := 0, 0
	for _, o := range GenTrace(42, 800) {
		switch {
		case o.Kind == opRename && o.Path2[1] != 'r':
			renameOver++
		case o.Kind == opLink && o.WantErr:
			linkOver++
		}
	}
	if renameOver == 0 || linkOver == 0 {
		t.Fatalf("800-op trace has %d rename-onto-existing and %d link-over-existing ops; generator lost coverage",
			renameOver, linkOver)
	}
}

// TestRandomCrashTrialsTinca is the model-based torture test for the
// Tinca stack: many seeds, random crash points, random eviction
// probabilities.
func TestRandomCrashTrialsTinca(t *testing.T) {
	runTrials(t, stack.Tinca, 30)
}

// TestRandomCrashTrialsClassic runs the identical oracle against the
// journalled Classic stack — the paper claims both provide the same data
// consistency.
func TestRandomCrashTrialsClassic(t *testing.T) {
	runTrials(t, stack.Classic, 20)
}

func runTrials(t *testing.T, kind stack.Kind, n int) {
	t.Helper()
	crashes := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		evictP := float64(seed%5) / 4 // 0, .25, .5, .75, 1
		res, err := Trial(kind, seed*7919, 120, evictP)
		if err != nil {
			t.Fatalf("seed %d (evictP=%v, acked=%d, inflight=%s): %v",
				seed, evictP, res.OpsAcked, res.Inflight, err)
		}
		if res.Crashed {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("no trial actually crashed; widen the crash window")
	}
	t.Logf("%v: %d/%d trials crashed mid-workload, all consistent", kind, crashes, n)
}

// TestVerifyDetectsDivergence makes sure the oracle itself is not
// vacuous: a deliberately wrong model must be rejected.
func TestVerifyDetectsDivergence(t *testing.T) {
	s, err := stack.New(stack.Config{Kind: stack.Tinca, NVMBytes: 4 << 20, FSBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FS.WriteFile("/x", []byte("real")); err != nil {
		t.Fatal(err)
	}
	mk := func(pairs map[string]string) Model {
		m := NewModel()
		for p, v := range pairs {
			d := []byte(v)
			m.files[p] = &d
		}
		return m
	}
	cases := []Model{
		mk(map[string]string{"/x": "fake"}),           // wrong contents
		mk(map[string]string{"/x": "real", "/y": ""}), // missing file
		mk(nil), // unexpected file
	}
	for i, m := range cases {
		if err := Verify(s.FS, m); err == nil {
			t.Fatalf("case %d: divergent model accepted", i)
		}
	}
	if err := Verify(s.FS, mk(map[string]string{"/x": "real"})); err != nil {
		t.Fatalf("correct model rejected: %v", err)
	}
}

// TestTrialReportsUsableResult exercises the non-crashing path.
func TestTrialReportsUsableResult(t *testing.T) {
	// A tiny op budget with a huge crash window: usually completes.
	for seed := int64(0); seed < 10; seed++ {
		res, err := Trial(stack.Tinca, 1000+seed, 10, 0.5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Crashed && res.OpsAcked != 10 {
			t.Fatalf("seed %d: completed run acked %d/10", seed, res.OpsAcked)
		}
	}
	_ = fmt.Sprintf
}
