package crash

import (
	"bytes"
	"fmt"

	"tinca/internal/core"
	"tinca/internal/flight"
	"tinca/internal/pmem"
	"tinca/internal/sim"
	"tinca/internal/stack"
)

// BlackboxResult is one forensic crash run: the flight-recorder report
// decoded straight from the crash image, and the recovery breakdown of
// the remount that followed.
type BlackboxResult struct {
	BoundarySpace int64 // persist ops the workload spans (0 when boundary was given)
	Boundary      int64 // boundary the crash was armed at
	Crashed       bool  // whether the armed crash actually fired
	Report        string
	Recovery      core.RecoveryStats
	// Err holds any post-recovery verification failure (fsck, cache
	// invariants, flight window). The report above is still valid — it was
	// decoded before recovery ran — which is exactly when it matters.
	Err error
}

// Blackbox runs one deterministic Tinca trial with the flight recorder
// on, crashes at the given persist-op boundary (negative = midway through
// the workload, sized by a counting run), decodes the surviving flight
// ring into a forensic report, then remounts and reports the §4.5
// recovery breakdown. The returned error is reserved for harness
// problems; verification failures land in BlackboxResult.Err.
func Blackbox(seed int64, ops int, boundary int64, evictP float64) (*BlackboxResult, error) {
	if ops <= 0 {
		ops = 200
	}
	sp := trialSpec{
		kind:      stack.Tinca,
		trace:     GenTrace(seed, ops),
		boundary:  -1,
		evictP:    1,
		imageSeed: imageSeed(seed, -1, 1),
	}
	res := &BlackboxResult{Boundary: boundary}
	if boundary < 0 {
		cout, err := runTrial(sp)
		if err != nil {
			return nil, fmt.Errorf("crash: blackbox counting run: %w", err)
		}
		res.BoundarySpace = cout.boundarySpace
		res.Boundary = cout.boundarySpace / 2
	}

	s, err := stack.New(sp.stackConfig(nil))
	if err != nil {
		return nil, err
	}
	s.Mem.ArmCrash(res.Boundary)
	crashed, _ := pmem.CatchCrash(func() {
		for i := range sp.trace {
			o := sp.trace[i]
			if err := Issue(s.FS, o); err != nil && !o.WantErr {
				panic(fmt.Sprintf("crash: blackbox op %d %v: %v", i, o, err))
			}
		}
	})
	res.Crashed = crashed
	if !crashed {
		s.Mem.DisarmCrash()
	}

	lay := s.TCache.Layout()
	s.Crash(sim.NewRand(imageSeed(seed, res.Boundary, evictP)), evictP)

	// Decode before Remount: the report must show the pre-crash timeline,
	// not recovery's own events.
	bb := flight.Decode(s.Mem, lay.FlightOff, lay.FlightSlots)
	var buf bytes.Buffer
	if err := bb.Report(&buf, 32); err != nil {
		return nil, err
	}
	res.Report = buf.String()
	if err := bb.CheckWindow(); err != nil {
		res.Err = fmt.Errorf("flight window: %w", err)
	}

	if err := s.Remount(); err != nil {
		if res.Err == nil {
			res.Err = fmt.Errorf("remount: %w", err)
		}
		// Recovery refused the image: re-decode the flight ring so the
		// report carries the terminal recover-fail event (and its
		// structural-failure code) instead of only the pre-crash timeline.
		fb := flight.Decode(s.Mem, lay.FlightOff, lay.FlightSlots)
		var fbuf bytes.Buffer
		if rerr := fb.Report(&fbuf, 32); rerr == nil {
			res.Report = fbuf.String()
		}
		return res, nil
	}
	res.Recovery = s.TCache.RecoveryStats()
	if err := checkStructure(s); err != nil && res.Err == nil {
		res.Err = err
	}
	if err := flightPostCheck(bb, s.TCache, 0); err != nil && res.Err == nil {
		res.Err = err
	}
	return res, nil
}
