// Exhaustive crash-point sweeps (DESIGN.md §5). Where Trial samples one
// random crash point, Sweep enumerates *every* NVM persist-op boundary a
// workload spans — pmem.Device counts Store/Store8/Store16/CLFlush/SFence
// as the boundary space — and runs one deterministic trial per
// (boundary, evictP) pair, so a persist-ordering bug cannot hide between
// random samples.
//
// Two oracles:
//
//   - Serial (GroupCommitBlocks = 0): op = transaction, so the recovered
//     state must equal the shadow model exactly before or after the one
//     in-flight op (crash.Trial's oracle, run at every boundary).
//
//   - Group (GroupCommitBlocks > 0, concurrent committers): ops from
//     several workers coalesce into batches, so exact per-op equality is
//     unsound. Instead each worker's recovered namespace must equal one
//     of its acknowledged prefixes — at least its proven-durable floor
//     (derived from backend-commit counter observations), at most its
//     full trace plus the in-flight op — and never a hybrid inside a
//     batch. Raw core.Txn committers additionally pin down batch
//     atomicity at the block layer: each transaction's block set must
//     recover from a single generation, and every seal the commit hook
//     reported before the crash must be durable.
package crash

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tinca/internal/core"
	"tinca/internal/flight"
	"tinca/internal/pmem"
	"tinca/internal/sim"
	"tinca/internal/stack"
)

// Stack geometry shared by every trial (same as the historical Trial).
const (
	sweepNVMBytes      = 4 << 20
	sweepFSBlocks      = 8192
	sweepJournalBlocks = 256
	// rawBlocksPerTxn is the block count of one raw committer
	// transaction; the blocks live in the spare disk region past the FS
	// area, so raw txns and FS txns share the cache but never a block.
	rawBlocksPerTxn = 4
)

// GroupConfig enables the group-commit oracle.
type GroupConfig struct {
	// Blocks is the FS GroupCommitBlocks threshold; 0 selects the serial
	// per-op oracle.
	Blocks int
	// FSWorkers is the number of concurrent file-system op streams, each
	// in its own "/w<i>-" namespace (default 4 when Blocks > 0).
	FSWorkers int
	// RawCommitters is the number of concurrent direct core.Txn streams
	// (Tinca only) verifying block-level batch atomicity.
	RawCommitters int
}

// SweepConfig parameterizes a sweep.
type SweepConfig struct {
	Kind    stack.Kind
	Seed    int64
	Ops     int       // trace length (per worker in group mode); default 100
	EvictPs []float64 // eviction probabilities; default {0, 0.5, 1}
	// Stride sweeps every Stride-th boundary (default 1 = exhaustive).
	Stride int64
	// MaxBoundaries, when positive, subsamples the boundary set evenly to
	// at most this many points (CI time cap).
	MaxBoundaries int
	Workers       int        // parallel trial runners; default GOMAXPROCS
	Fault         core.Fault // injected protocol violation (Tinca only)
	// Checkpoint runs every Tinca trial with the checkpoint writer firing
	// at EVERY commit point (CheckpointIntervalNS = 1), so the boundary
	// enumeration visits every persist inside the checkpoint frame/journal
	// writes and the oracle verifies recovery through the checkpoint path.
	Checkpoint bool
	// Rings > 1 runs every Tinca trial on the multi-ring commit layout
	// (core.Options.CommitRings), so the boundary enumeration visits every
	// persist of the per-ring seal protocol — including the multi-ring
	// Tail-persist window of cross-shard seals — and the flight oracle
	// goes per ring.
	Rings int
	// L3 runs every Tinca trial on the tiered stack (DESIGN.md §16): a
	// small L2 disk plus object store behind the cache, with the upload
	// and prefetch pipelines live. The tier adds no NVM persists (its
	// durability lives on the L2 slot map and in the store), so the
	// boundary space is unchanged — what the sweep adds is the oracle
	// checking that recovery through tier re-attach loses nothing at
	// any NVM persist boundary.
	L3    bool
	Group GroupConfig
	// Progress, when non-nil, is called after every trial with completed
	// and total trial counts and failures so far. Called under a lock;
	// keep it fast.
	Progress func(done, total, failures int)
}

// Failure is one inconsistent (boundary, evictP) trial.
type Failure struct {
	Boundary int64
	EvictP   float64
	Err      error
}

// SweepResult summarizes a sweep.
type SweepResult struct {
	BoundarySpace int64 // persist ops the workload spans (counting run)
	Boundaries    int   // distinct boundaries swept after stride/cap
	Runs          int   // trials executed
	Crashes       int   // trials whose armed crash actually fired
	Failures      []Failure
}

// imageSeed derives the deterministic RNG seed for a trial's crash image
// (which un-flushed lines survive) from the sweep coordinates, so a
// failure replays byte-for-byte from (Seed, Boundary, EvictP) alone.
func imageSeed(seed, boundary int64, evictP float64) int64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 ^
		uint64(boundary)*0xbf58476d1ce4e5b9 ^
		uint64(int64(evictP*1024))*0x94d049bb133111eb
	h ^= h >> 31
	return int64(h &^ (1 << 63))
}

// Sweep enumerates the workload's persist-op boundary space and runs one
// deterministic crash trial per (boundary, evictP) pair. Oracle
// violations are collected in SweepResult.Failures; the returned error is
// reserved for harness problems (the workload itself not running).
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 100
	}
	if len(cfg.EvictPs) == 0 {
		cfg.EvictPs = []float64{0, 0.5, 1}
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Fault != core.FaultNone && cfg.Kind != stack.Tinca {
		return nil, errors.New("crash: fault injection requires the Tinca stack")
	}
	if cfg.Checkpoint && cfg.Kind != stack.Tinca {
		return nil, errors.New("crash: checkpoint sweeps require the Tinca stack")
	}
	if cfg.Group.RawCommitters > 0 && cfg.Kind != stack.Tinca {
		return nil, errors.New("crash: raw committers require the Tinca stack")
	}
	if cfg.Rings > 1 && cfg.Kind != stack.Tinca {
		return nil, errors.New("crash: multi-ring sweeps require the Tinca stack")
	}
	if cfg.L3 && cfg.Kind != stack.Tinca {
		return nil, errors.New("crash: L3 tiering sweeps require the Tinca stack")
	}
	if cfg.Group.RawCommitters*rawBlocksPerTxn > sweepJournalBlocks {
		return nil, fmt.Errorf("crash: %d raw committers exceed the spare disk region", cfg.Group.RawCommitters)
	}

	base := trialSpec{kind: cfg.Kind, fault: cfg.Fault, ckpt: cfg.Checkpoint, rings: cfg.Rings, l3: cfg.L3, group: cfg.Group}
	if cfg.Group.Blocks > 0 {
		if cfg.Group.FSWorkers <= 0 {
			base.group.FSWorkers = 4
		}
		base.traces = make([][]Op, base.group.FSWorkers)
		for w := range base.traces {
			base.traces[w] = GenTraceNS(cfg.Seed+int64(w)*101, cfg.Ops, fmt.Sprintf("w%d", w))
		}
	} else {
		base.trace = GenTrace(cfg.Seed, cfg.Ops)
	}

	// Counting run: no armed crash, evictP 1 (every line persists — the
	// most forgiving image, so even a fault-injected workload completes).
	// Its persist-op total defines the boundary space. In group mode the
	// stream is scheduling-dependent, so the count is approximate:
	// boundaries past a particular trial's stream simply never fire and
	// are verified as completed runs.
	counting := base
	counting.boundary = -1
	counting.evictP = 1
	counting.imageSeed = imageSeed(cfg.Seed, -1, 1)
	cout, err := runTrial(counting)
	if err != nil {
		return nil, fmt.Errorf("crash: counting run failed: %w", err)
	}

	res := &SweepResult{BoundarySpace: cout.boundarySpace}
	var boundaries []int64
	for b := int64(0); b < cout.boundarySpace; b += cfg.Stride {
		boundaries = append(boundaries, b)
	}
	if cfg.MaxBoundaries > 0 && len(boundaries) > cfg.MaxBoundaries {
		step := (len(boundaries) + cfg.MaxBoundaries - 1) / cfg.MaxBoundaries
		var sub []int64
		for i := 0; i < len(boundaries); i += step {
			sub = append(sub, boundaries[i])
		}
		boundaries = sub
	}
	res.Boundaries = len(boundaries)
	total := len(boundaries) * len(cfg.EvictPs)

	type job struct {
		b int64
		p float64
	}
	jobs := make(chan job)
	var mu sync.Mutex
	done := 0
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				sp := base
				sp.boundary = jb.b
				sp.evictP = jb.p
				sp.imageSeed = imageSeed(cfg.Seed, jb.b, jb.p)
				out, err := runTrial(sp)
				mu.Lock()
				done++
				res.Runs++
				if out.crashed {
					res.Crashes++
				}
				if err != nil {
					res.Failures = append(res.Failures, Failure{Boundary: jb.b, EvictP: jb.p, Err: err})
				}
				if cfg.Progress != nil {
					cfg.Progress(done, total, len(res.Failures))
				}
				mu.Unlock()
			}
		}()
	}
	for _, b := range boundaries {
		for _, p := range cfg.EvictPs {
			jobs <- job{b, p}
		}
	}
	close(jobs)
	wg.Wait()
	sort.Slice(res.Failures, func(i, j int) bool {
		if res.Failures[i].Boundary != res.Failures[j].Boundary {
			return res.Failures[i].Boundary < res.Failures[j].Boundary
		}
		return res.Failures[i].EvictP < res.Failures[j].EvictP
	})
	return res, nil
}

// ReplayLine renders the reproducer line for a sweep failure (serial
// sweeps only — group trials are scheduling-dependent).
func (cfg SweepConfig) ReplayLine(f Failure) string {
	ops := cfg.Ops
	if ops <= 0 {
		ops = 100
	}
	return ReplaySpec{
		Kind:     cfg.Kind,
		Boundary: f.Boundary,
		EvictP:   f.EvictP,
		Fault:    cfg.Fault,
		Ckpt:     cfg.Checkpoint,
		L3:       cfg.L3,
		Seed:     cfg.Seed,
		Trace:    GenTrace(cfg.Seed, ops),
	}.String()
}

// ---- trial machinery ----------------------------------------------------

// trialSpec fully determines one trial (up to goroutine scheduling in
// group mode).
type trialSpec struct {
	kind      stack.Kind
	trace     []Op   // serial mode
	traces    [][]Op // group mode: one namespaced trace per FS worker
	boundary  int64  // persist-op boundary after mount; -1 = never crash
	evictP    float64
	imageSeed int64
	fault     core.Fault
	ckpt      bool // checkpoint writer on, firing at every commit point
	rings     int  // CommitRings (multi-ring layout) when > 1
	l3        bool // L3 object tier behind a small L2 disk
	group     GroupConfig
}

type trialOut struct {
	crashed  bool
	acked    int // serial mode only
	inflight *Op // serial mode only
	// boundarySpace is the persist-op count the workload spanned, valid
	// when the trial ran to completion (counting runs).
	boundarySpace int64
}

func runTrial(sp trialSpec) (trialOut, error) {
	if len(sp.traces) > 0 {
		return runGroupTrial(sp)
	}
	return runSerialTrial(sp)
}

func (sp trialSpec) stackConfig(hook func(uint64)) stack.Config {
	cfg := stack.Config{
		Kind:              sp.kind,
		NVMBytes:          sweepNVMBytes,
		FSBlocks:          sweepFSBlocks,
		JournalBlocks:     sweepJournalBlocks,
		GroupCommitBlocks: sp.group.Blocks,
	}
	if sp.kind == stack.Tinca {
		cfg.Fault = sp.fault
		cfg.SealHook = hook
		// Every Tinca trial flies with the recorder on: the sweep is the
		// standing proof that flight persists never induce a false positive
		// (they add crash boundaries but zero observable cost), and the
		// surviving ring feeds the blackbox cross-checks after the crash.
		cfg.FlightRecorder = true
		if sp.ckpt {
			cfg.Checkpoint = true
			cfg.CheckpointIntervalNS = 1
		}
		if sp.rings > 1 {
			cfg.CommitRings = sp.rings
		}
		if sp.l3 {
			// An L2 far smaller than the FS span, tiny objects and a
			// low dirty bound: every trial churns real destage, upload,
			// eviction and backpressure traffic through the tier before
			// the crash lands.
			cfg.L3 = true
			cfg.L3L2Blocks = 512
			cfg.L3ObjectBlocks = 8
			cfg.L3Prefetch = 2
			cfg.L3UploadWorkers = 2
			cfg.L3MaxDirty = 128
		}
	}
	return cfg
}

// flightPreCheck decodes the flight ring straight from the crash image —
// before Remount, so recovery's own events are not mixed into the
// pre-crash timeline — and checks the §13 window invariant: the surviving
// sequence numbers are contiguous up to MaxSeq with at most the one
// in-flight record missing. A torn interior or a duplicate means the
// recorder itself violated its persist ordering.
func flightPreCheck(mem *pmem.Device, lay core.Layout) (*flight.Blackbox, error) {
	if lay.FlightSlots == 0 {
		return nil, nil
	}
	bb := flight.Decode(mem, lay.FlightOff, lay.FlightSlots)
	if err := bb.CheckWindow(); err != nil {
		return bb, fmt.Errorf("flight window: %w", err)
	}
	return bb, nil
}

// flightPostCheck cross-checks the pre-crash flight record against the
// recovered cache. Commit-point records (EvSealPersist, EvSerialCommit)
// are emitted after the (last) Tail flip's persist completes, so any such
// record present in the crash image — flushed or evicted into it — proves
// the flip was durable first: the recovered Tail of the ring named by the
// record's Shard field must cover it. On the single-ring layout every
// commit record carries Shard 0 and the check degenerates to the global
// Tail comparison. When a SealHook observed seal sealedQ before the crash
// and the ring never wrapped (MinSeq == 1, so no record was overwritten),
// the fully-persisted record for that seal must also have survived.
func flightPostCheck(bb *flight.Blackbox, c *core.Cache, sealedQ uint64) error {
	if bb == nil {
		return nil
	}
	var maxGen uint64
	for _, r := range bb.Records {
		if r.Type == flight.EvSealPersist || r.Type == flight.EvSerialCommit {
			if r.Gen > maxGen {
				maxGen = r.Gen
			}
		}
	}
	_, tails := c.RingPointers()
	for ring, maxCommit := range bb.LastSealedHeads {
		if int(ring) >= len(tails) {
			return fmt.Errorf(
				"flight oracle: commit record names ring %d but the recovered layout has %d ring(s)",
				ring, len(tails))
		}
		if tails[ring] < maxCommit {
			return fmt.Errorf(
				"flight oracle: recorded commit point at ring %d position %d but recovered Tail is %d",
				ring, maxCommit, tails[ring])
		}
	}
	if sealedQ > 0 && bb.MinSeq == 1 && maxGen < sealedQ {
		return fmt.Errorf(
			"flight oracle: SealHook reported seal %d before the crash but the un-wrapped ring records no commit past gen %d",
			sealedQ, maxGen)
	}
	return nil
}

func checkStructure(s *stack.Stack) error {
	if err := s.FS.Check(); err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	if s.TCache != nil {
		if err := s.TCache.CheckInvariants(); err != nil {
			return fmt.Errorf("cache invariants: %w", err)
		}
	}
	return nil
}

// runSerialTrial executes one trace with per-op commits, crashes at the
// spec's boundary (if it fires), recovers, and applies the exact
// before/after oracle.
func runSerialTrial(sp trialSpec) (trialOut, error) {
	var out trialOut
	s, err := stack.New(sp.stackConfig(nil))
	if err != nil {
		return out, err
	}
	setupOps := s.Mem.PersistOps()

	model := NewModel()
	var inflight *Op
	var opErr error
	if sp.boundary >= 0 {
		s.Mem.ArmCrash(sp.boundary)
	}
	crashed, _ := pmem.CatchCrash(func() {
		for i := range sp.trace {
			o := sp.trace[i]
			inflight = &o
			err := Issue(s.FS, o)
			if o.WantErr {
				if err == nil {
					opErr = fmt.Errorf("op %d %v succeeded, want error", i, o)
					return
				}
			} else if err != nil {
				opErr = fmt.Errorf("op %d %v: %v", i, o, err)
				return
			}
			model.Apply(o)
			inflight = nil
			out.acked++
		}
	})
	if opErr != nil {
		return out, opErr
	}
	out.crashed = crashed
	if !crashed {
		s.Mem.DisarmCrash()
		inflight = nil
	}
	out.inflight = inflight
	out.boundarySpace = s.Mem.PersistOps() - setupOps

	var lay core.Layout
	if s.TCache != nil {
		lay = s.TCache.Layout()
	}
	s.Crash(sim.NewRand(sp.imageSeed), sp.evictP)
	bb, ferr := flightPreCheck(s.Mem, lay)
	if ferr != nil {
		return out, ferr
	}
	if err := s.Remount(); err != nil {
		return out, fmt.Errorf("remount: %w", err)
	}
	if err := checkStructure(s); err != nil {
		return out, err
	}
	if err := flightPostCheck(bb, s.TCache, 0); err != nil {
		return out, err
	}

	// The observed state must match the model either before or after the
	// in-flight operation.
	if err := Verify(s.FS, model); err == nil {
		return out, nil
	} else if inflight == nil {
		return out, fmt.Errorf("acked state diverged: %w", err)
	}
	after := model.Clone()
	after.Apply(*inflight)
	if err := Verify(s.FS, after); err != nil {
		errBefore := Verify(s.FS, model)
		return out, fmt.Errorf("state matches neither side of in-flight %v:\n  before: %v\n  after: %v",
			*inflight, errBefore, err)
	}
	return out, nil
}

// ---- group-commit trial -------------------------------------------------

// wstate is one FS worker's trace execution record.
type wstate struct {
	snaps    []Model // snaps[k]: shadow model after k acked ops
	commits  []int64 // commits[k-1]: backend GroupCommits seen after op k acked
	acked    int
	inflight *Op
	err      error
	crashed  bool
}

// rawState is one raw core.Txn committer's record.
type rawState struct {
	committed int       // last generation whose Commit returned
	cur       *core.Txn // in-flight transaction at the crash, if any
	curGen    int
	err       error
	crashed   bool
}

// runGroupTrial executes concurrent namespaced FS traces (plus optional
// raw core.Txn streams) under group commit, crashes at the boundary, and
// applies the batch-prefix oracle described in the package comment.
func runGroupTrial(sp trialSpec) (trialOut, error) {
	var out trialOut
	var sealedMax atomic.Uint64
	var hook func(uint64)
	if sp.kind == stack.Tinca && sp.group.RawCommitters > 0 {
		hook = func(seq uint64) {
			for {
				cur := sealedMax.Load()
				if seq <= cur || sealedMax.CompareAndSwap(cur, seq) {
					return
				}
			}
		}
	}
	s, err := stack.New(sp.stackConfig(hook))
	if err != nil {
		return out, err
	}
	setupOps := s.Mem.PersistOps()
	if sp.boundary >= 0 {
		s.Mem.ArmCrash(sp.boundary)
	}

	// stop tells every stream a crash fired somewhere; the FS itself also
	// poisons further ops, but raw committers bypass the FS.
	var stop atomic.Bool
	ws := make([]*wstate, len(sp.traces))
	var wg sync.WaitGroup
	for w := range sp.traces {
		st := &wstate{snaps: []Model{NewModel()}}
		ws[w] = st
		trace := sp.traces[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := NewModel()
			crashed, _ := pmem.CatchCrash(func() {
				for i := range trace {
					if stop.Load() {
						return
					}
					o := trace[i]
					st.inflight = &o
					err := Issue(s.FS, o)
					if o.WantErr {
						if err == nil {
							st.err = fmt.Errorf("op %d %v succeeded, want error", i, o)
							return
						}
					} else if err != nil {
						st.err = fmt.Errorf("op %d %v: %v", i, o, err)
						return
					}
					m.Apply(o)
					st.snaps = append(st.snaps, m.Clone())
					st.commits = append(st.commits, s.FS.Stats().GroupCommits)
					st.inflight = nil
					st.acked++
				}
			})
			if crashed {
				st.crashed = true
				stop.Store(true)
			}
		}()
	}

	rs := make([]*rawState, sp.group.RawCommitters)
	var fsDone atomic.Bool
	var rwg sync.WaitGroup
	for j := range rs {
		r := &rawState{}
		rs[j] = r
		j := j
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			crashed, _ := pmem.CatchCrash(func() {
				for gen := 1; !stop.Load() && !fsDone.Load(); gen++ {
					t := s.TCache.Begin()
					for b := 0; b < rawBlocksPerTxn; b++ {
						t.Write(rawBlockNo(j, b), rawBlock(j, gen, b))
					}
					r.cur, r.curGen = t, gen
					if err := t.Commit(); err != nil {
						r.err = fmt.Errorf("gen %d commit: %v", gen, err)
						return
					}
					r.committed = gen
					r.cur = nil
				}
			})
			if crashed {
				r.crashed = true
				stop.Store(true)
			}
		}()
	}
	wg.Wait()
	fsDone.Store(true)
	rwg.Wait()

	for w, st := range ws {
		if st.err != nil {
			return out, fmt.Errorf("worker %d: %w", w, st.err)
		}
		if st.crashed {
			out.crashed = true
		}
	}
	for j, r := range rs {
		if r.err != nil {
			return out, fmt.Errorf("raw committer %d: %w", j, r.err)
		}
		if r.crashed {
			out.crashed = true
		}
	}
	if sp.boundary >= 0 && !out.crashed {
		s.Mem.DisarmCrash()
	}
	out.boundarySpace = s.Mem.PersistOps() - setupOps
	sealedQ := sealedMax.Load()

	var lay core.Layout
	if s.TCache != nil {
		lay = s.TCache.Layout()
	}
	s.Crash(sim.NewRand(sp.imageSeed), sp.evictP)
	bb, ferr := flightPreCheck(s.Mem, lay)
	if ferr != nil {
		return out, ferr
	}
	if err := s.Remount(); err != nil {
		return out, fmt.Errorf("remount: %w", err)
	}
	if err := checkStructure(s); err != nil {
		return out, err
	}
	if err := flightPostCheck(bb, s.TCache, sealedQ); err != nil {
		return out, err
	}

	// Every recovered file must belong to exactly one worker's namespace.
	names, err := s.FS.ReadDir("/")
	if err != nil {
		return out, err
	}
	for _, n := range names {
		info, err := s.FS.Stat("/" + n)
		if err != nil {
			return out, fmt.Errorf("stat /%s: %w", n, err)
		}
		if info.IsDir {
			continue
		}
		owned := false
		for w := range ws {
			if strings.HasPrefix(n, fmt.Sprintf("w%d-", w)) {
				owned = true
				break
			}
		}
		if !owned {
			return out, fmt.Errorf("recovered file /%s belongs to no worker namespace", n)
		}
	}

	// Per-worker batch-prefix oracle.
	for w, st := range ws {
		prefix := fmt.Sprintf("/w%d-", w)
		floor := prefixFloor(st.commits)
		matched := -1
		var firstErr error
		for p := st.acked; p >= floor; p-- {
			if err := VerifyPrefix(s.FS, st.snaps[p], prefix); err == nil {
				matched = p
				break
			} else if firstErr == nil {
				firstErr = err
			}
		}
		if matched < 0 && st.inflight != nil {
			after := st.snaps[st.acked].Clone()
			after.Apply(*st.inflight)
			if err := VerifyPrefix(s.FS, after, prefix); err == nil {
				matched = st.acked + 1
			}
		}
		if matched < 0 {
			return out, fmt.Errorf(
				"worker %d: recovered namespace matches no acked prefix in [%d,%d] (acked %d, inflight %v): %v",
				w, floor, st.acked, st.acked, st.inflight, firstErr)
		}
	}

	// Raw committer oracle: block-level batch atomicity + seal durability.
	if len(rs) > 0 {
		buf := make([]byte, core.BlockSize)
		for j, r := range rs {
			gen := -1
			for b := 0; b < rawBlocksPerTxn; b++ {
				if err := s.TCache.Read(rawBlockNo(j, b), buf); err != nil {
					return out, fmt.Errorf("raw committer %d block %d: %w", j, b, err)
				}
				g, ok := rawGen(j, b, buf)
				if !ok {
					return out, fmt.Errorf("raw committer %d block %d: torn content (not any generation)", j, b)
				}
				if b == 0 {
					gen = g
				} else if g != gen {
					return out, fmt.Errorf(
						"raw committer %d: txn atomicity violated — block 0 at gen %d, block %d at gen %d",
						j, gen, b, g)
				}
			}
			if gen < r.committed {
				return out, fmt.Errorf(
					"raw committer %d: durability violated — gen %d acked, recovered gen %d",
					j, r.committed, gen)
			}
			inflightGen := -1
			var inflightSeal uint64
			if r.cur != nil {
				inflightGen = r.curGen
				inflightSeal = r.cur.SealSeq()
			}
			if gen > r.committed && gen != inflightGen {
				return out, fmt.Errorf(
					"raw committer %d: recovered gen %d, but acked %d and in-flight %d",
					j, gen, r.committed, inflightGen)
			}
			if r.cur != nil {
				switch {
				case sp.rings <= 1 && inflightSeal != 0 && inflightSeal <= sealedQ && gen != inflightGen:
					// The hook reported this seal's commit point before
					// the crash, so the transaction must be durable.
					return out, fmt.Errorf(
						"raw committer %d: sealed txn lost — seal %d ≤ reported max %d but recovered gen %d, want %d",
						j, inflightSeal, sealedQ, gen, inflightGen)
				case inflightSeal == 0 && gen != r.committed:
					// Never assigned a seal: no persist of it can have
					// started, so it must be wholly absent.
					return out, fmt.Errorf(
						"raw committer %d: unsealed txn visible — recovered gen %d, want %d",
						j, gen, r.committed)
				}
				// inflightSeal > sealedQ: the crash may have hit between
				// the Tail persist and the hook — either outcome is legal.
				// At rings > 1 the seal-durability case is skipped entirely:
				// generations commit out of order across rings, so a later
				// generation's hook report does not imply this seal's commit
				// point was reached. flightPostCheck still enforces per-ring
				// commit-record durability there.
			}
		}
	}
	return out, nil
}

// prefixFloor returns the largest k such that ops 1..k are provably
// durable: op k counts if some later observation saw a strictly larger
// backend-commit count, because that commit completed after op k was
// staged and a group commit always covers everything staged before it.
func prefixFloor(commits []int64) int {
	floor := 0
	var maxLater int64 = -1
	for k := len(commits); k >= 1; k-- {
		if maxLater > commits[k-1] {
			floor = k
			break
		}
		if commits[k-1] > maxLater {
			maxLater = commits[k-1]
		}
	}
	return floor
}

// rawBlockNo maps (committer, block-in-txn) into the spare disk region
// past the FS area.
func rawBlockNo(j, b int) uint64 {
	return uint64(sweepFSBlocks + j*rawBlocksPerTxn + b)
}

// rawBlock builds the deterministic content of committer j's block b at
// generation gen: the generation is readable from the header and every
// byte is checkable, so any mix of generations within a block or across a
// txn's blocks is detected.
func rawBlock(j, gen, b int) []byte {
	d := make([]byte, core.BlockSize)
	binary.LittleEndian.PutUint64(d[0:8], uint64(gen))
	d[8] = byte(j)
	d[9] = byte(b)
	fill := byte(gen) ^ byte(j)<<4 ^ byte(b)
	for i := 10; i < len(d); i++ {
		d[i] = fill
	}
	return d
}

// rawGen decodes a recovered raw block: (0, true) for never-written
// all-zero blocks, (gen, true) for an intact generation, ok=false for
// torn content.
func rawGen(j, b int, d []byte) (int, bool) {
	gen := binary.LittleEndian.Uint64(d[0:8])
	if gen == 0 {
		for _, x := range d {
			if x != 0 {
				return 0, false
			}
		}
		return 0, true
	}
	if gen > 1<<31 {
		return 0, false
	}
	if !bytes.Equal(d, rawBlock(j, int(gen), b)) {
		return 0, false
	}
	return int(gen), true
}
