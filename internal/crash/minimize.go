// Failure minimization: shrink a failing (trace, boundary, evictP)
// triple to a small deterministic reproducer. Serial trials only — group
// trials depend on goroutine scheduling, so their failures are reported
// with full sweep coordinates instead.
//
// The shrink is standard delta-debugging adapted to the crash harness:
//
//  1. confirm the failure reproduces at its sweep coordinates;
//  2. truncate the trace right after the op in flight at the crash —
//     ops the crash never reached cannot matter, and the persist-op
//     stream up to the boundary is unchanged, so the same boundary still
//     fails;
//  3. greedily drop earlier ops, skipping candidates that are invalid
//     against the shadow model (e.g. a write to a never-created file);
//     each removal changes the persist stream, so the candidate's whole
//     boundary space is re-swept for any failing boundary;
//  4. stop at a fixed trial budget or when no single removal helps.
package crash

import (
	"errors"
	"fmt"
)

// minimizeTrialBudget caps the total trials one Minimize may run.
const minimizeTrialBudget = 30000

// MinimizeResult is a shrunk reproducer.
type MinimizeResult struct {
	Trace    []Op
	Boundary int64
	EvictP   float64
	Err      error // the failure as it manifests on the minimal trace
	Trials   int   // trials spent shrinking
	Spec     ReplaySpec
}

// Minimize shrinks a sweep failure to a minimal failing trace and
// boundary. cfg must be the SweepConfig that produced the failure.
func Minimize(cfg SweepConfig, f Failure) (*MinimizeResult, error) {
	if cfg.Group.Blocks > 0 {
		return nil, errors.New("crash: minimization supports serial sweeps only")
	}
	ops := cfg.Ops
	if ops <= 0 {
		ops = 100
	}
	trials := 0
	run := func(tr []Op, b int64) (trialOut, error) {
		trials++
		return runSerialTrial(trialSpec{
			kind:      cfg.Kind,
			trace:     tr,
			boundary:  b,
			evictP:    f.EvictP,
			fault:     cfg.Fault,
			ckpt:      cfg.Checkpoint,
			imageSeed: imageSeed(cfg.Seed, b, f.EvictP),
		})
	}

	trace := GenTrace(cfg.Seed, ops)
	out, err := run(trace, f.Boundary)
	if err == nil {
		return nil, fmt.Errorf("crash: failure at boundary %d evictP %v did not reproduce", f.Boundary, f.EvictP)
	}
	cur, curB, curErr := trace, f.Boundary, err

	// Truncate to the crashed prefix: ops past the in-flight one never
	// ran, and the persist stream up to the boundary is identical.
	if n := out.acked + 1; n < len(cur) {
		cand := cur[:n]
		if _, err := run(cand, curB); err != nil {
			cur, curErr = cand, err
		}
	}

	// findFailure re-sweeps a candidate's boundary space for any failing
	// boundary (the stream shifted, so the old boundary is meaningless).
	findFailure := func(cand []Op) (int64, error, bool) {
		count, err := run(cand, -1)
		if err != nil {
			// The candidate itself misbehaves without a crash: either a
			// latent ordering bug (report boundary -1) or an invalid
			// trace findValid missed — both end this branch.
			return -1, err, true
		}
		for b := int64(0); b < count.boundarySpace && trials < minimizeTrialBudget; b++ {
			if _, err := run(cand, b); err != nil {
				return b, err, true
			}
		}
		return 0, nil, false
	}

	improved := true
	for improved && trials < minimizeTrialBudget {
		improved = false
		for i := len(cur) - 1; i >= 0 && trials < minimizeTrialBudget; i-- {
			if len(cur) == 1 {
				break
			}
			cand := make([]Op, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if !traceValid(cand) {
				continue
			}
			if b, err, ok := findFailure(cand); ok {
				cur, curB, curErr = cand, b, err
				improved = true
			}
		}
	}

	return &MinimizeResult{
		Trace:    cur,
		Boundary: curB,
		EvictP:   f.EvictP,
		Err:      curErr,
		Trials:   trials,
		Spec: ReplaySpec{
			Kind:     cfg.Kind,
			Boundary: curB,
			EvictP:   f.EvictP,
			Fault:    cfg.Fault,
			Ckpt:     cfg.Checkpoint,
			Seed:     cfg.Seed,
			Trace:    cur,
		},
	}, nil
}

// traceValid reports whether every op in the trace is valid against the
// shadow model when all earlier ops are acknowledged — the invariant the
// Generator maintains and removal candidates can break.
func traceValid(ops []Op) bool {
	m := NewModel()
	for _, o := range ops {
		switch o.Kind {
		case opCreate:
			if _, ok := m.files[o.Path]; ok {
				return false
			}
		case opWrite, opAppend, opTruncate, opRemove, opRename:
			if _, ok := m.files[o.Path]; !ok {
				return false
			}
		case opLink:
			_, okSrc := m.files[o.Path]
			_, okDst := m.files[o.Path2]
			if o.WantErr {
				// Must actually collide to be rejected.
				if !okSrc || !okDst {
					return false
				}
			} else if !okSrc || okDst {
				return false
			}
		default:
			return false
		}
		m.Apply(o)
	}
	return true
}
