// Package crash is the model-based crash-consistency harness of DESIGN.md
// §5. It drives a full storage stack with a random sequence of file-system
// operations while maintaining a shadow model of the *acknowledged* state,
// injects a power failure at a random NVM-operation boundary, recovers,
// and verifies:
//
//   - structural integrity (fsck; Tinca cache invariants);
//   - durability: every acknowledged operation is fully visible;
//   - atomicity: the single operation in flight at the crash is either
//     fully applied or fully absent — the observed state must equal the
//     shadow model either before or after that operation, never a hybrid.
//
// The harness runs the file system with per-operation commits
// (GroupCommitBlocks = 0), so operation = transaction = unit of atomicity,
// which makes the oracle exact.
package crash

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"tinca/internal/fs"
	"tinca/internal/stack"
)

// Op kinds the harness issues.
const (
	opCreate = iota
	opWrite
	opAppend
	opTruncate
	opRemove
	opRename
	opLink
	numOps
)

var opNames = [...]string{"create", "write", "append", "truncate", "remove", "rename", "link"}

// Op is one file-system operation.
type Op struct {
	Kind    int
	Path    string
	Path2   string // rename/link target
	Off     uint64
	Data    []byte
	Size    uint64 // truncate
	WantErr bool   // the FS must reject this op (e.g. link over an existing name)
}

func (o Op) String() string {
	if o.Path2 != "" {
		if o.WantErr {
			return fmt.Sprintf("%s!(%s,%s)", opNames[o.Kind], o.Path, o.Path2)
		}
		return fmt.Sprintf("%s(%s,%s)", opNames[o.Kind], o.Path, o.Path2)
	}
	return fmt.Sprintf("%s(%s)", opNames[o.Kind], o.Path)
}

// Model is the shadow of acknowledged file contents. Hard links are
// modelled faithfully: linked paths share one content cell, so a write
// through any name is visible through all of them.
type Model struct {
	files map[string]*[]byte
}

// NewModel returns an empty model.
func NewModel() Model { return Model{files: make(map[string]*[]byte)} }

// Len reports the number of paths.
func (m Model) Len() int { return len(m.files) }

// Clone deep-copies the model, preserving the alias structure of hard
// links.
func (m Model) Clone() Model {
	c := NewModel()
	remap := make(map[*[]byte]*[]byte, len(m.files))
	for p, cell := range m.files {
		nc, ok := remap[cell]
		if !ok {
			d := append([]byte(nil), *cell...)
			nc = &d
			remap[cell] = nc
		}
		c.files[p] = nc
	}
	return c
}

// Apply updates the model with op's effect. Ops carrying WantErr are
// expected to be rejected by the file system, so they leave the model
// unchanged.
func (m Model) Apply(o Op) {
	if o.WantErr {
		return
	}
	switch o.Kind {
	case opCreate:
		var d []byte
		m.files[o.Path] = &d
	case opWrite:
		cell := m.files[o.Path]
		d := *cell
		end := o.Off + uint64(len(o.Data))
		if uint64(len(d)) < end {
			nd := make([]byte, end)
			copy(nd, d)
			d = nd
		}
		copy(d[o.Off:], o.Data)
		*cell = d
	case opAppend:
		cell := m.files[o.Path]
		*cell = append(*cell, o.Data...)
	case opTruncate:
		cell := m.files[o.Path]
		d := *cell
		if o.Size <= uint64(len(d)) {
			*cell = append([]byte(nil), d[:o.Size]...)
		} else {
			nd := make([]byte, o.Size)
			copy(nd, d)
			*cell = nd
		}
	case opRemove:
		delete(m.files, o.Path)
	case opRename:
		src := m.files[o.Path]
		if dst, ok := m.files[o.Path2]; ok && dst == src {
			// POSIX rename(2): source and target are the same inode
			// (hard links, or the same path) — no-op, both names remain.
			return
		}
		// Renaming onto an existing name atomically replaces the target.
		m.files[o.Path2] = src
		delete(m.files, o.Path)
	case opLink:
		m.files[o.Path2] = m.files[o.Path]
	}
}

// Issue executes op against the file system.
func Issue(f *fs.FS, o Op) error {
	switch o.Kind {
	case opCreate:
		return f.Create(o.Path)
	case opWrite:
		return f.WriteAt(o.Path, o.Off, o.Data)
	case opAppend:
		return f.Append(o.Path, o.Data)
	case opTruncate:
		return f.Truncate(o.Path, o.Size)
	case opRemove:
		return f.Remove(o.Path)
	case opRename:
		return f.Rename(o.Path, o.Path2)
	case opLink:
		return f.Link(o.Path, o.Path2)
	default:
		panic("crash: unknown op")
	}
}

// Generator produces a random valid operation against the current model.
type Generator struct {
	rng    *rand.Rand
	ns     string // path namespace prefix; "" for the classic flat layout
	nextID int
}

// NewGenerator seeds a generator.
func NewGenerator(rng *rand.Rand) *Generator { return &Generator{rng: rng} }

// NewGeneratorNS seeds a generator whose paths all carry the namespace
// prefix "/<ns>-", so several concurrent generators can share one file
// system without colliding (the group-commit oracle verifies each
// namespace independently).
func NewGeneratorNS(rng *rand.Rand, ns string) *Generator {
	return &Generator{rng: rng, ns: ns}
}

func (g *Generator) newPath(class string) string {
	g.nextID++
	if g.ns == "" {
		return fmt.Sprintf("/%s%04d", class, g.nextID)
	}
	return fmt.Sprintf("/%s-%s%04d", g.ns, class, g.nextID)
}

// Next returns a random operation valid for the model.
func (g *Generator) Next(m Model) Op {
	paths := make([]string, 0, len(m.files))
	for p := range m.files {
		paths = append(paths, p)
	}
	// Sort for determinism of the pick across map iteration orders.
	sort.Strings(paths)

	kind := g.rng.Intn(numOps)
	if len(paths) == 0 || (len(paths) < 4 && g.rng.Intn(2) == 0) {
		kind = opCreate
	}
	switch kind {
	case opCreate:
		return Op{Kind: opCreate, Path: g.newPath("f")}
	default:
		p := paths[g.rng.Intn(len(paths))]
		switch kind {
		case opWrite:
			return Op{Kind: opWrite, Path: p,
				Off:  uint64(g.rng.Intn(20000)),
				Data: patterned(g.rng, 1+g.rng.Intn(9000))}
		case opAppend:
			return Op{Kind: opAppend, Path: p, Data: patterned(g.rng, 1+g.rng.Intn(6000))}
		case opTruncate:
			return Op{Kind: opTruncate, Path: p, Size: uint64(g.rng.Intn(10000))}
		case opRemove:
			return Op{Kind: opRemove, Path: p}
		case opLink:
			if len(paths) >= 2 && g.rng.Intn(4) == 0 {
				// Link onto an existing name (possibly an alias of the
				// source): POSIX link(2) refuses it, so this probes the
				// FS error path without changing any state.
				return Op{Kind: opLink, Path: p,
					Path2: paths[g.rng.Intn(len(paths))], WantErr: true}
			}
			return Op{Kind: opLink, Path: p, Path2: g.newPath("l")}
		default: // rename
			if len(paths) >= 2 && g.rng.Intn(3) == 0 {
				// Rename onto an existing name: POSIX rename(2)
				// atomically replaces the target, or no-ops when source
				// and target are hard links of the same inode.
				return Op{Kind: opRename, Path: p,
					Path2: paths[g.rng.Intn(len(paths))]}
			}
			return Op{Kind: opRename, Path: p, Path2: g.newPath("r")}
		}
	}
}

func patterned(r *rand.Rand, n int) []byte {
	d := make([]byte, n)
	stamp := byte(r.Intn(255) + 1)
	for i := range d {
		d[i] = stamp ^ byte(i)
	}
	return d
}

// Result summarizes one trial.
type Result struct {
	Crashed  bool
	OpsAcked int
	Inflight string
}

// Trial runs one randomized crash trial on a fresh stack of the given
// kind: ops random operations with a crash armed at a random point,
// recovery, and full verification. A nil error means the trial was
// consistent.
func Trial(kind stack.Kind, seed int64, ops int, evictP float64) (Result, error) {
	trace := GenTrace(seed, ops)
	rng := rand.New(rand.NewSource(seed))
	out, err := runSerialTrial(trialSpec{
		kind:      kind,
		trace:     trace,
		boundary:  rng.Int63n(int64(ops)*100) + 50,
		evictP:    evictP,
		imageSeed: rng.Int63(),
	})
	res := Result{Crashed: out.crashed, OpsAcked: out.acked}
	if out.inflight != nil {
		res.Inflight = out.inflight.String()
	}
	return res, err
}

// Verify compares the file system against the model exactly: every model
// file exists with identical contents, and no unexpected files exist.
func Verify(f *fs.FS, m Model) error { return VerifyPrefix(f, m, "/") }

// VerifyPrefix compares the subset of the file system whose paths start
// with prefix against the model: every model file exists with identical
// contents, and no unexpected files exist under the prefix. The
// group-commit oracle uses one namespace prefix per concurrent worker.
func VerifyPrefix(f *fs.FS, m Model, prefix string) error {
	names, err := f.ReadDir("/")
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, n := range names {
		p := "/" + n
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		info, err := f.Stat(p)
		if err != nil {
			return fmt.Errorf("stat %s: %w", p, err)
		}
		if info.IsDir {
			continue
		}
		cell, ok := m.files[p]
		if !ok {
			return fmt.Errorf("unexpected file %s (size %d)", p, info.Size)
		}
		want := *cell
		seen[p] = true
		got, err := f.ReadFile(p)
		if err != nil {
			return fmt.Errorf("read %s: %w", p, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("%s: %d bytes, want %d (first diff at %d)",
				p, len(got), len(want), firstDiff(got, want))
		}
	}
	for p := range m.files {
		if !seen[p] {
			return fmt.Errorf("model file %s missing", p)
		}
	}
	return nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
