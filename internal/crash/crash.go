// Package crash is the model-based crash-consistency harness of DESIGN.md
// §5. It drives a full storage stack with a random sequence of file-system
// operations while maintaining a shadow model of the *acknowledged* state,
// injects a power failure at a random NVM-operation boundary, recovers,
// and verifies:
//
//   - structural integrity (fsck; Tinca cache invariants);
//   - durability: every acknowledged operation is fully visible;
//   - atomicity: the single operation in flight at the crash is either
//     fully applied or fully absent — the observed state must equal the
//     shadow model either before or after that operation, never a hybrid.
//
// The harness runs the file system with per-operation commits
// (GroupCommitBlocks = 0), so operation = transaction = unit of atomicity,
// which makes the oracle exact.
package crash

import (
	"bytes"
	"fmt"
	"math/rand"

	"tinca/internal/fs"
	"tinca/internal/pmem"
	"tinca/internal/stack"
)

// Op kinds the harness issues.
const (
	opCreate = iota
	opWrite
	opAppend
	opTruncate
	opRemove
	opRename
	opLink
	numOps
)

var opNames = [...]string{"create", "write", "append", "truncate", "remove", "rename", "link"}

// Op is one file-system operation.
type Op struct {
	Kind  int
	Path  string
	Path2 string // rename target
	Off   uint64
	Data  []byte
	Size  uint64 // truncate
}

func (o Op) String() string {
	return fmt.Sprintf("%s(%s)", opNames[o.Kind], o.Path)
}

// Model is the shadow of acknowledged file contents. Hard links are
// modelled faithfully: linked paths share one content cell, so a write
// through any name is visible through all of them.
type Model struct {
	files map[string]*[]byte
}

// NewModel returns an empty model.
func NewModel() Model { return Model{files: make(map[string]*[]byte)} }

// Len reports the number of paths.
func (m Model) Len() int { return len(m.files) }

// Clone deep-copies the model, preserving the alias structure of hard
// links.
func (m Model) Clone() Model {
	c := NewModel()
	remap := make(map[*[]byte]*[]byte, len(m.files))
	for p, cell := range m.files {
		nc, ok := remap[cell]
		if !ok {
			d := append([]byte(nil), *cell...)
			nc = &d
			remap[cell] = nc
		}
		c.files[p] = nc
	}
	return c
}

// Apply updates the model with op's effect.
func (m Model) Apply(o Op) {
	switch o.Kind {
	case opCreate:
		var d []byte
		m.files[o.Path] = &d
	case opWrite:
		cell := m.files[o.Path]
		d := *cell
		end := o.Off + uint64(len(o.Data))
		if uint64(len(d)) < end {
			nd := make([]byte, end)
			copy(nd, d)
			d = nd
		}
		copy(d[o.Off:], o.Data)
		*cell = d
	case opAppend:
		cell := m.files[o.Path]
		*cell = append(*cell, o.Data...)
	case opTruncate:
		cell := m.files[o.Path]
		d := *cell
		if o.Size <= uint64(len(d)) {
			*cell = append([]byte(nil), d[:o.Size]...)
		} else {
			nd := make([]byte, o.Size)
			copy(nd, d)
			*cell = nd
		}
	case opRemove:
		delete(m.files, o.Path)
	case opRename:
		m.files[o.Path2] = m.files[o.Path]
		delete(m.files, o.Path)
	case opLink:
		m.files[o.Path2] = m.files[o.Path]
	}
}

// Issue executes op against the file system.
func Issue(f *fs.FS, o Op) error {
	switch o.Kind {
	case opCreate:
		return f.Create(o.Path)
	case opWrite:
		return f.WriteAt(o.Path, o.Off, o.Data)
	case opAppend:
		return f.Append(o.Path, o.Data)
	case opTruncate:
		return f.Truncate(o.Path, o.Size)
	case opRemove:
		return f.Remove(o.Path)
	case opRename:
		return f.Rename(o.Path, o.Path2)
	case opLink:
		return f.Link(o.Path, o.Path2)
	default:
		panic("crash: unknown op")
	}
}

// Generator produces a random valid operation against the current model.
type Generator struct {
	rng    *rand.Rand
	nextID int
}

// NewGenerator seeds a generator.
func NewGenerator(rng *rand.Rand) *Generator { return &Generator{rng: rng} }

// Next returns a random operation valid for the model.
func (g *Generator) Next(m Model) Op {
	paths := make([]string, 0, len(m.files))
	for p := range m.files {
		paths = append(paths, p)
	}
	// Sort for determinism of the pick across map iteration orders.
	sortStrings(paths)

	kind := g.rng.Intn(numOps)
	if len(paths) == 0 || (len(paths) < 4 && g.rng.Intn(2) == 0) {
		kind = opCreate
	}
	switch kind {
	case opCreate:
		g.nextID++
		return Op{Kind: opCreate, Path: fmt.Sprintf("/f%04d", g.nextID)}
	default:
		p := paths[g.rng.Intn(len(paths))]
		switch kind {
		case opWrite:
			return Op{Kind: opWrite, Path: p,
				Off:  uint64(g.rng.Intn(20000)),
				Data: patterned(g.rng, 1+g.rng.Intn(9000))}
		case opAppend:
			return Op{Kind: opAppend, Path: p, Data: patterned(g.rng, 1+g.rng.Intn(6000))}
		case opTruncate:
			return Op{Kind: opTruncate, Path: p, Size: uint64(g.rng.Intn(10000))}
		case opRemove:
			return Op{Kind: opRemove, Path: p}
		case opLink:
			g.nextID++
			return Op{Kind: opLink, Path: p, Path2: fmt.Sprintf("/l%04d", g.nextID)}
		default: // rename
			g.nextID++
			return Op{Kind: opRename, Path: p, Path2: fmt.Sprintf("/r%04d", g.nextID)}
		}
	}
}

func patterned(r *rand.Rand, n int) []byte {
	d := make([]byte, n)
	stamp := byte(r.Intn(255) + 1)
	for i := range d {
		d[i] = stamp ^ byte(i)
	}
	return d
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Result summarizes one trial.
type Result struct {
	Crashed  bool
	OpsAcked int
	Inflight string
}

// Trial runs one randomized crash trial on a fresh stack of the given
// kind: ops random operations with a crash armed at a random point,
// recovery, and full verification. A nil error means the trial was
// consistent.
func Trial(kind stack.Kind, seed int64, ops int, evictP float64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	s, err := stack.New(stack.Config{
		Kind:          kind,
		NVMBytes:      4 << 20,
		FSBlocks:      8192,
		JournalBlocks: 256,
		// Per-op commits make the atomicity oracle exact.
		GroupCommitBlocks: 0,
	})
	if err != nil {
		return Result{}, err
	}

	model := NewModel()
	gen := NewGenerator(rng)
	var res Result
	var inflight *Op

	s.Mem.ArmCrash(rng.Int63n(int64(ops)*100) + 50)
	crashed, _ := pmem.CatchCrash(func() {
		for i := 0; i < ops; i++ {
			o := gen.Next(model)
			inflight = &o
			if err := Issue(s.FS, o); err != nil {
				panic(fmt.Sprintf("op %v failed: %v", o, err))
			}
			model.Apply(o)
			inflight = nil
			res.OpsAcked++
		}
	})
	res.Crashed = crashed
	if !crashed {
		s.Mem.DisarmCrash()
		inflight = nil
	}
	if inflight != nil {
		res.Inflight = inflight.String()
	}

	s.Crash(rng, evictP)
	if err := s.Remount(); err != nil {
		return res, fmt.Errorf("remount: %w", err)
	}
	if err := s.FS.Check(); err != nil {
		return res, fmt.Errorf("fsck: %w", err)
	}
	if s.TCache != nil {
		if err := s.TCache.CheckInvariants(); err != nil {
			return res, fmt.Errorf("cache invariants: %w", err)
		}
	}

	// The observed state must match the model either before or after the
	// in-flight operation.
	if err := Verify(s.FS, model); err == nil {
		return res, nil
	} else if inflight == nil {
		return res, fmt.Errorf("acked state diverged: %w", err)
	}
	after := model.Clone()
	after.Apply(*inflight)
	if err := Verify(s.FS, after); err != nil {
		errBefore := Verify(s.FS, model)
		return res, fmt.Errorf("state matches neither side of in-flight %v:\n  before: %v\n  after: %v",
			*inflight, errBefore, err)
	}
	return res, nil
}

// Verify compares the file system against the model exactly: every model
// file exists with identical contents, and no unexpected files exist.
func Verify(f *fs.FS, m Model) error {
	names, err := f.ReadDir("/")
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, n := range names {
		p := "/" + n
		info, err := f.Stat(p)
		if err != nil {
			return fmt.Errorf("stat %s: %w", p, err)
		}
		if info.IsDir {
			continue
		}
		cell, ok := m.files[p]
		if !ok {
			return fmt.Errorf("unexpected file %s (size %d)", p, info.Size)
		}
		want := *cell
		seen[p] = true
		got, err := f.ReadFile(p)
		if err != nil {
			return fmt.Errorf("read %s: %w", p, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("%s: %d bytes, want %d (first diff at %d)",
				p, len(got), len(want), firstDiff(got, want))
		}
	}
	for p := range m.files {
		if !seen[p] {
			return fmt.Errorf("model file %s missing", p)
		}
	}
	return nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
