// Deterministic trace generation and the compact textual encoding used
// by failure reproducers. A sweep failure is fully described by a
// ReplaySpec — stack kind, persist-op boundary, eviction probability,
// injected fault, and the exact op trace — which round-trips through a
// single shell-safe line, so `tincacrash -replay '<line>'` re-executes
// the failing trial byte-for-byte.
package crash

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"tinca/internal/core"
	"tinca/internal/sim"
	"tinca/internal/stack"
)

// GenTrace deterministically generates an n-op trace from seed: the ops a
// Generator produces when every op is acknowledged in order. The same
// (seed, n) always yields the same trace, which is what lets a sweep
// replay it once per boundary.
func GenTrace(seed int64, n int) []Op { return GenTraceNS(seed, n, "") }

// GenTraceNS is GenTrace within the "/<ns>-" path namespace (see
// NewGeneratorNS).
func GenTraceNS(seed int64, n int, ns string) []Op {
	rng := sim.NewRand(seed)
	g := NewGeneratorNS(rng, ns)
	m := NewModel()
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		o := g.Next(m)
		m.Apply(o)
		ops = append(ops, o)
	}
	return ops
}

// Op encoding: one field-colon-separated token per op, ops joined by "|".
//
//	c:<path>             create
//	w:<path>:<off>:<data> write
//	a:<path>:<data>      append
//	t:<path>:<size>      truncate
//	d:<path>             remove
//	r:<path>:<path2>     rename
//	l:<path>:<path2>     link
//	L:<path>:<path2>     link expected to fail (WantErr)
//
// <data> is either "p<len>.<stamp>" for the generator's patterned fill
// (byte i = stamp^i) or "x<hex>" for arbitrary bytes.
var opCodes = [...]string{"c", "w", "a", "t", "d", "r", "l"}

func encodeData(d []byte) string {
	if len(d) > 0 {
		stamp := d[0]
		ok := true
		for i, b := range d {
			if b != stamp^byte(i) {
				ok = false
				break
			}
		}
		if ok {
			return fmt.Sprintf("p%d.%d", len(d), stamp)
		}
	}
	return "x" + hex.EncodeToString(d)
}

func decodeData(s string) ([]byte, error) {
	if strings.HasPrefix(s, "p") {
		dot := strings.IndexByte(s, '.')
		if dot < 0 {
			return nil, fmt.Errorf("crash: bad patterned data %q", s)
		}
		n, err := strconv.Atoi(s[1:dot])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("crash: bad patterned length %q", s)
		}
		stamp, err := strconv.Atoi(s[dot+1:])
		if err != nil || stamp < 0 || stamp > 255 {
			return nil, fmt.Errorf("crash: bad patterned stamp %q", s)
		}
		d := make([]byte, n)
		for i := range d {
			d[i] = byte(stamp) ^ byte(i)
		}
		return d, nil
	}
	if strings.HasPrefix(s, "x") {
		return hex.DecodeString(s[1:])
	}
	return nil, fmt.Errorf("crash: bad data encoding %q", s)
}

// EncodeOp renders one op as a compact token. Paths containing the
// separator characters are rejected (the generator never produces them).
func EncodeOp(o Op) (string, error) {
	for _, p := range []string{o.Path, o.Path2} {
		if strings.ContainsAny(p, ":|= \t\n") {
			return "", fmt.Errorf("crash: unencodable path %q", p)
		}
	}
	if o.WantErr && o.Kind != opLink {
		return "", fmt.Errorf("crash: WantErr only encodable for link, got %v", o)
	}
	switch o.Kind {
	case opCreate:
		return "c:" + o.Path, nil
	case opWrite:
		return fmt.Sprintf("w:%s:%d:%s", o.Path, o.Off, encodeData(o.Data)), nil
	case opAppend:
		return fmt.Sprintf("a:%s:%s", o.Path, encodeData(o.Data)), nil
	case opTruncate:
		return fmt.Sprintf("t:%s:%d", o.Path, o.Size), nil
	case opRemove:
		return "d:" + o.Path, nil
	case opRename:
		return fmt.Sprintf("r:%s:%s", o.Path, o.Path2), nil
	case opLink:
		code := "l"
		if o.WantErr {
			code = "L"
		}
		return fmt.Sprintf("%s:%s:%s", code, o.Path, o.Path2), nil
	default:
		return "", fmt.Errorf("crash: unknown op kind %d", o.Kind)
	}
}

// DecodeOp parses one EncodeOp token.
func DecodeOp(s string) (Op, error) {
	f := strings.Split(s, ":")
	fail := func() (Op, error) { return Op{}, fmt.Errorf("crash: bad op token %q", s) }
	if len(f) < 2 {
		return fail()
	}
	switch f[0] {
	case "c":
		if len(f) != 2 {
			return fail()
		}
		return Op{Kind: opCreate, Path: f[1]}, nil
	case "w":
		if len(f) != 4 {
			return fail()
		}
		off, err := strconv.ParseUint(f[2], 10, 64)
		if err != nil {
			return fail()
		}
		data, err := decodeData(f[3])
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: opWrite, Path: f[1], Off: off, Data: data}, nil
	case "a":
		if len(f) != 3 {
			return fail()
		}
		data, err := decodeData(f[2])
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: opAppend, Path: f[1], Data: data}, nil
	case "t":
		if len(f) != 3 {
			return fail()
		}
		size, err := strconv.ParseUint(f[2], 10, 64)
		if err != nil {
			return fail()
		}
		return Op{Kind: opTruncate, Path: f[1], Size: size}, nil
	case "d":
		if len(f) != 2 {
			return fail()
		}
		return Op{Kind: opRemove, Path: f[1]}, nil
	case "r":
		if len(f) != 3 {
			return fail()
		}
		return Op{Kind: opRename, Path: f[1], Path2: f[2]}, nil
	case "l", "L":
		if len(f) != 3 {
			return fail()
		}
		return Op{Kind: opLink, Path: f[1], Path2: f[2], WantErr: f[0] == "L"}, nil
	default:
		return fail()
	}
}

// EncodeTrace renders a trace as "|"-joined op tokens.
func EncodeTrace(ops []Op) (string, error) {
	toks := make([]string, len(ops))
	for i, o := range ops {
		t, err := EncodeOp(o)
		if err != nil {
			return "", err
		}
		toks[i] = t
	}
	return strings.Join(toks, "|"), nil
}

// DecodeTrace parses an EncodeTrace string.
func DecodeTrace(s string) ([]Op, error) {
	if s == "" {
		return nil, nil
	}
	toks := strings.Split(s, "|")
	ops := make([]Op, len(toks))
	for i, t := range toks {
		o, err := DecodeOp(t)
		if err != nil {
			return nil, err
		}
		ops[i] = o
	}
	return ops, nil
}

// ReplaySpec pins down one serial crash trial exactly.
type ReplaySpec struct {
	Kind     stack.Kind
	Boundary int64 // persist-op boundary (ArmCrash argument)
	EvictP   float64
	Fault    core.Fault
	Ckpt     bool  // checkpoint writer on at every commit point
	L3       bool  // L3 object tier behind a small L2 disk
	Seed     int64 // sweep seed; combined with Boundary/EvictP for the crash image
	Trace    []Op
}

func kindName(k stack.Kind) string {
	switch k {
	case stack.Tinca:
		return "tinca"
	case stack.Classic:
		return "classic"
	case stack.ClassicNoJournal:
		return "classic-nojournal"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// ParseKind maps a stack-kind name ("tinca", "classic",
// "classic-nojournal") to its value.
func ParseKind(s string) (stack.Kind, error) {
	switch s {
	case "tinca":
		return stack.Tinca, nil
	case "classic":
		return stack.Classic, nil
	case "classic-nojournal":
		return stack.ClassicNoJournal, nil
	default:
		return 0, fmt.Errorf("crash: unknown stack kind %q", s)
	}
}

func faultName(f core.Fault) string {
	switch f {
	case core.FaultNone:
		return "none"
	case core.FaultSkipDataFlush:
		return "skip-data-flush"
	default:
		return fmt.Sprintf("fault%d", int(f))
	}
}

// ParseFault maps a fault name ("none", "skip-data-flush") to its value.
func ParseFault(s string) (core.Fault, error) {
	switch s {
	case "none", "":
		return core.FaultNone, nil
	case "skip-data-flush":
		return core.FaultSkipDataFlush, nil
	default:
		return 0, fmt.Errorf("crash: unknown fault %q", s)
	}
}

// String renders the spec as a single shell-safe line accepted by
// ParseReplaySpec (and by `tincacrash -replay`).
func (r ReplaySpec) String() string {
	trace, err := EncodeTrace(r.Trace)
	if err != nil {
		trace = "<unencodable:" + err.Error() + ">"
	}
	ck := ""
	if r.Ckpt {
		ck = " ckpt=1"
	}
	if r.L3 {
		ck += " l3=1"
	}
	return fmt.Sprintf("kind=%s boundary=%d evictp=%s fault=%s%s seed=%d trace=%s",
		kindName(r.Kind), r.Boundary,
		strconv.FormatFloat(r.EvictP, 'g', -1, 64),
		faultName(r.Fault), ck, r.Seed, trace)
}

// ParseReplaySpec parses a ReplaySpec.String line.
func ParseReplaySpec(s string) (ReplaySpec, error) {
	var r ReplaySpec
	for _, field := range strings.Fields(s) {
		eq := strings.IndexByte(field, '=')
		if eq < 0 {
			return r, fmt.Errorf("crash: bad replay field %q", field)
		}
		key, val := field[:eq], field[eq+1:]
		var err error
		switch key {
		case "kind":
			r.Kind, err = ParseKind(val)
		case "boundary":
			r.Boundary, err = strconv.ParseInt(val, 10, 64)
		case "evictp":
			r.EvictP, err = strconv.ParseFloat(val, 64)
		case "fault":
			r.Fault, err = ParseFault(val)
		case "ckpt":
			r.Ckpt = val == "1" || val == "true"
		case "l3":
			r.L3 = val == "1" || val == "true"
		case "seed":
			r.Seed, err = strconv.ParseInt(val, 10, 64)
		case "trace":
			r.Trace, err = DecodeTrace(val)
		default:
			return r, fmt.Errorf("crash: unknown replay field %q", key)
		}
		if err != nil {
			return r, err
		}
	}
	if len(r.Trace) == 0 {
		return r, fmt.Errorf("crash: replay spec %q has no trace", s)
	}
	return r, nil
}

// Replay re-runs the serial trial a spec describes. It returns the
// verification error the trial produces (nil if the trial is consistent)
// and the trial result.
func Replay(r ReplaySpec) (Result, error) {
	out, err := runSerialTrial(trialSpec{
		kind:      r.Kind,
		trace:     r.Trace,
		boundary:  r.Boundary,
		evictP:    r.EvictP,
		fault:     r.Fault,
		ckpt:      r.Ckpt,
		l3:        r.L3,
		imageSeed: imageSeed(r.Seed, r.Boundary, r.EvictP),
	})
	res := Result{Crashed: out.crashed, OpsAcked: out.acked}
	if out.inflight != nil {
		res.Inflight = out.inflight.String()
	}
	return res, err
}
