package cluster_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"tinca/internal/cluster"
	"tinca/internal/errs"
	"tinca/internal/fs"
	"tinca/internal/stack"
)

// TestHDFSErrorsIsConformance pins the error identity contract of the
// HDFS substrate: callers dispatch on the fs sentinels with errors.Is,
// so every failure path must surface (or wrap) the right sentinel even
// after the error crosses the NameNode and replication layers.
func TestHDFSErrorsIsConformance(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	h := cluster.NewHDFS(c, cluster.HDFSOptions{ChunkBytes: 16 << 10})

	if err := h.Append("/nope", []byte("x")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("append missing: %v, want fs.ErrNotExist", err)
	}
	if _, err := h.ReadAt("/nope", 0, make([]byte, 4)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("read missing: %v, want fs.ErrNotExist", err)
	}
	if _, err := h.Stat("/nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stat missing: %v, want fs.ErrNotExist", err)
	}
	if err := h.Remove("/nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("remove missing: %v, want fs.ErrNotExist", err)
	}
	if err := h.Fsync("/nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("fsync missing: %v, want fs.ErrNotExist", err)
	}
	if err := h.WriteAt("/nope", 0, []byte("x")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("writeat missing: %v, want fs.ErrNotExist", err)
	}

	if err := h.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := h.Create("/f"); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("duplicate create: %v, want fs.ErrExist", err)
	}
	if err := h.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := h.Mkdir("/d"); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("duplicate mkdir: %v, want fs.ErrExist", err)
	}

	// Read past EOF surfaces the fs range sentinel, which in turn wraps
	// the cross-layer errs.ErrOutOfRange — both identities must hold.
	if err := h.Append("/f", []byte("ab")); err != nil {
		t.Fatal(err)
	}
	_, err := h.ReadAt("/f", 100, make([]byte, 4))
	if !errors.Is(err, fs.ErrReadRange) {
		t.Fatalf("read past EOF: %v, want fs.ErrReadRange", err)
	}
	if !errors.Is(err, errs.ErrOutOfRange) {
		t.Fatalf("read past EOF: %v, want cross-layer errs.ErrOutOfRange", err)
	}
}

// TestVolumeErrorsIsConformance does the same for the GlusterFS-like
// volume, where the error comes straight from a brick's local fs.
func TestVolumeErrorsIsConformance(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	v := cluster.NewVolume(c)

	if _, err := v.ReadAt("/nope", 0, make([]byte, 4)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("read missing: %v, want fs.ErrNotExist", err)
	}
	if _, err := v.Stat("/nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stat missing: %v, want fs.ErrNotExist", err)
	}
	if err := v.Remove("/nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("remove missing: %v, want fs.ErrNotExist", err)
	}
	if err := v.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := v.Create("/f"); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("duplicate create: %v, want fs.ErrExist", err)
	}
	if err := v.Append("/f", []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadAt("/f", 100, make([]byte, 4)); !errors.Is(err, errs.ErrOutOfRange) {
		t.Fatalf("read past EOF: %v, want errs.ErrOutOfRange", err)
	}
}

// TestNodeDownErrorsIs pins ErrNodeDown as an errors.Is-matchable
// sentinel on every path that can hit a failed replica set.
func TestNodeDownErrorsIs(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	v := cluster.NewVolume(c)
	if err := v.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteAt("/f", 0, bytes.Repeat([]byte{3}, 4096)); err != nil {
		t.Fatal(err)
	}
	for i := range c.Nodes {
		if err := c.SetNodeDown(i, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.WriteAt("/f", 0, make([]byte, 4096)); !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("write, all down: %v, want ErrNodeDown", err)
	}
	if _, err := v.ReadAt("/f", 0, make([]byte, 4096)); !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("read, all down: %v, want ErrNodeDown", err)
	}
	if _, err := v.Stat("/f"); !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("stat, all down: %v, want ErrNodeDown", err)
	}

	// HDFS reads over a fully-failed replica set report the same sentinel.
	c2 := newCluster(t, stack.Tinca, 2)
	h := cluster.NewHDFS(c2, cluster.HDFSOptions{ChunkBytes: 16 << 10})
	if err := h.Create("/r"); err != nil {
		t.Fatal(err)
	}
	if err := h.Append("/r", bytes.Repeat([]byte{4}, 8192)); err != nil {
		t.Fatal(err)
	}
	for i := range c2.Nodes {
		if err := c2.SetNodeDown(i, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.ReadAt("/r", 0, make([]byte, 8192)); !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("hdfs read, all down: %v, want ErrNodeDown", err)
	}
	if err := h.Append("/r", []byte("x")); !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("hdfs append, all down: %v, want ErrNodeDown", err)
	}
}

// TestConcurrentHDFSClients hammers the NameNode from many goroutines
// (run under -race): each client creates, appends, rewrites and reads
// its own file while sharing chunk allocation, the wall clock and the
// network recorder with everyone else.
func TestConcurrentHDFSClients(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	h := cluster.NewHDFS(c, cluster.HDFSOptions{ChunkBytes: 16 << 10})
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			path := fmt.Sprintf("/c%d", id)
			payload := bytes.Repeat([]byte{byte(id + 1)}, 40<<10) // 3 chunks
			if err := h.Create(path); err != nil {
				errCh <- err
				return
			}
			if err := h.Append(path, payload); err != nil {
				errCh <- err
				return
			}
			if err := h.WriteAt(path, 16<<10-100, bytes.Repeat([]byte{byte(id + 1)}, 200)); err != nil {
				errCh <- err
				return
			}
			got := make([]byte, len(payload))
			if _, err := h.ReadAt(path, 0, got); err != nil {
				errCh <- err
				return
			}
			if !bytes.Equal(got, payload) {
				errCh <- fmt.Errorf("client %d: read-back mismatch", id)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for i, n := range c.Nodes {
		if err := n.Stack.FS.Check(); err != nil {
			t.Fatalf("node %d after concurrent clients: %v", i, err)
		}
	}
}

// TestConcurrentVolumeClients runs concurrent writers and readers over
// disjoint files on the replicated volume (run under -race): the bricks'
// local stacks, the shared wall clock and the network counters all see
// simultaneous traffic.
func TestConcurrentVolumeClients(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	v := cluster.NewVolume(c)
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			path := fmt.Sprintf("/v%d", id)
			payload := bytes.Repeat([]byte{byte(id + 1)}, 12<<10)
			if err := v.Create(path); err != nil {
				errCh <- err
				return
			}
			if err := v.WriteAt(path, 0, payload); err != nil {
				errCh <- err
				return
			}
			got := make([]byte, len(payload))
			if _, err := v.ReadAt(path, 0, got); err != nil {
				errCh <- err
				return
			}
			if !bytes.Equal(got, payload) {
				errCh <- fmt.Errorf("client %d: volume read-back mismatch", id)
			}
			if err := v.Fsync(path); err != nil {
				errCh <- err
			}
		}(i)
	}
	// Aggregate stats concurrently with the traffic: Snapshot and Stats
	// walk every node's recorders while they are being written.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = c.Snapshot()
			_ = c.Stats()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for i, n := range c.Nodes {
		if err := n.Stack.FS.Check(); err != nil {
			t.Fatalf("brick %d after concurrent clients: %v", i, err)
		}
	}
}
