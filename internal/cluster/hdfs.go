package cluster

import (
	"fmt"
	"sync"

	"tinca/internal/fs"
)

// HDFS is an HDFS-like distributed file system: a NameNode (in-memory
// metadata: file → chunk list → replica nodes) over the cluster's data
// nodes. Files are striped into fixed-size chunks; each chunk is written
// to Replicas nodes through a replication pipeline (the client ships the
// bytes once; data nodes forward along the pipeline, so the payload
// crosses one network hop per replica while the replica disks work in
// parallel).
//
// HDFS implements workload.FileAPI so TeraGen (and any other generator)
// can drive it unchanged.
type HDFS struct {
	mu sync.Mutex
	c  *Cluster

	chunkBytes uint64
	files      map[string]*dfsFile
	dirs       map[string]bool
	nextChunk  uint64
	rrNext     int // round-robin start for chunk placement
}

type dfsFile struct {
	size   uint64
	chunks []dfsChunk
}

type dfsChunk struct {
	id    uint64
	nodes []*Node
	size  uint64 // bytes currently in this chunk
}

// HDFSOptions tune the DFS.
type HDFSOptions struct {
	ChunkBytes uint64 // default 2MB (scaled from HDFS's 128MB)
}

// NewHDFS creates the name-node state over an existing cluster.
func NewHDFS(c *Cluster, opts HDFSOptions) *HDFS {
	if opts.ChunkBytes == 0 {
		opts.ChunkBytes = 2 << 20
	}
	return &HDFS{
		c:          c,
		chunkBytes: opts.ChunkBytes,
		files:      make(map[string]*dfsFile),
		dirs:       map[string]bool{"/": true},
	}
}

func chunkPath(id uint64) string { return fmt.Sprintf("/chunks/c%08d", id) }

// Mkdir records a directory in the NameNode (pure metadata).
func (h *HDFS) Mkdir(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dirs[path] {
		return fs.ErrExist
	}
	h.dirs[path] = true
	h.c.netCost(64, 1) // RPC to the name node
	return nil
}

// Create registers an empty file.
func (h *HDFS) Create(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.files[path]; ok {
		return fs.ErrExist
	}
	h.files[path] = &dfsFile{}
	h.c.netCost(64, 1)
	return nil
}

// allocChunk places a new chunk on Replicas nodes round-robin and creates
// the backing local files.
func (h *HDFS) allocChunk() (dfsChunk, error) {
	r := h.c.Cfg.Replicas
	nodes := make([]*Node, 0, r)
	for i := 0; i < r; i++ {
		nodes = append(nodes, h.c.Nodes[(h.rrNext+i)%h.c.Cfg.Nodes])
	}
	h.rrNext = (h.rrNext + 1) % h.c.Cfg.Nodes
	ch := dfsChunk{id: h.nextChunk, nodes: nodes}
	h.nextChunk++
	p := chunkPath(ch.id)
	err := h.c.applyReplicated(nodes, func(n *Node) error {
		if !n.Stack.FS.Exists("/chunks") {
			if err := n.Stack.FS.Mkdir("/chunks"); err != nil && err != fs.ErrExist {
				return err
			}
		}
		return n.Stack.FS.Create(p)
	})
	h.c.netCost(64, r) // pipeline setup RPCs
	return ch, err
}

// Append streams data onto the end of the file, crossing chunk boundaries
// as needed. The payload crosses the network once per replica hop; the
// replica writes proceed in parallel.
func (h *HDFS) Append(path string, data []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.files[path]
	if !ok {
		return fs.ErrNotExist
	}
	remaining := data
	for len(remaining) > 0 {
		if len(f.chunks) == 0 || f.chunks[len(f.chunks)-1].size >= h.chunkBytes {
			ch, err := h.allocChunk()
			if err != nil {
				return err
			}
			f.chunks = append(f.chunks, ch)
		}
		cur := &f.chunks[len(f.chunks)-1]
		n := h.chunkBytes - cur.size
		if n > uint64(len(remaining)) {
			n = uint64(len(remaining))
		}
		part := remaining[:n]
		h.c.netCost(int64(n), h.c.Cfg.Replicas)
		err := h.c.applyReplicated(cur.nodes, func(node *Node) error {
			return node.Stack.FS.Append(chunkPath(cur.id), part)
		})
		if err != nil {
			return err
		}
		cur.size += n
		f.size += n
		remaining = remaining[n:]
	}
	return nil
}

// WriteAt writes within the already-materialized span of the file
// (HDFS itself is append-only; this supports rewrites inside existing
// chunks for generality).
func (h *HDFS) WriteAt(path string, off uint64, data []byte) error {
	h.mu.Lock()
	f, ok := h.files[path]
	h.mu.Unlock()
	if !ok {
		return fs.ErrNotExist
	}
	if off == f.size {
		return h.Append(path, data)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if off+uint64(len(data)) > f.size {
		return fmt.Errorf("cluster: HDFS WriteAt beyond EOF (append-only semantics)")
	}
	remaining := data
	pos := off
	for len(remaining) > 0 {
		ci := int(pos / h.chunkBytes)
		co := pos % h.chunkBytes
		ch := &f.chunks[ci]
		n := ch.size - co
		if n > uint64(len(remaining)) {
			n = uint64(len(remaining))
		}
		part := remaining[:n]
		h.c.netCost(int64(n), h.c.Cfg.Replicas)
		err := h.c.applyReplicated(ch.nodes, func(node *Node) error {
			return node.Stack.FS.WriteAt(chunkPath(ch.id), co, part)
		})
		if err != nil {
			return err
		}
		pos += n
		remaining = remaining[n:]
	}
	return nil
}

// ReadAt reads from the first replica of each covered chunk.
func (h *HDFS) ReadAt(path string, off uint64, p []byte) (int, error) {
	h.mu.Lock()
	f, ok := h.files[path]
	h.mu.Unlock()
	if !ok {
		return 0, fs.ErrNotExist
	}
	if off >= f.size {
		return 0, fs.ErrReadRange
	}
	want := uint64(len(p))
	if off+want > f.size {
		want = f.size - off
	}
	read := uint64(0)
	for read < want {
		pos := off + read
		ci := int(pos / h.chunkBytes)
		co := pos % h.chunkBytes
		ch := &f.chunks[ci]
		n := ch.size - co
		if n > want-read {
			n = want - read
		}
		var nread int
		err := h.c.applyFirstUp(ch.nodes, func(nd *Node) error {
			var e error
			nread, e = nd.Stack.FS.ReadAt(chunkPath(ch.id), co, p[read:read+n])
			return e
		})
		if err != nil {
			return int(read), err
		}
		h.c.netCost(int64(nread), 1)
		read += uint64(nread)
		if uint64(nread) < n {
			break
		}
	}
	return int(read), nil
}

// Stat reports file metadata from the NameNode.
func (h *HDFS) Stat(path string) (fs.FileInfo, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dirs[path] {
		return fs.FileInfo{IsDir: true}, nil
	}
	f, ok := h.files[path]
	if !ok {
		return fs.FileInfo{}, fs.ErrNotExist
	}
	return fs.FileInfo{Size: f.size, Nlink: 1}, nil
}

// Remove deletes a file and its chunks on every replica.
func (h *HDFS) Remove(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dirs[path] {
		delete(h.dirs, path)
		return nil
	}
	f, ok := h.files[path]
	if !ok {
		return fs.ErrNotExist
	}
	for i := range f.chunks {
		ch := &f.chunks[i]
		err := h.c.applyReplicated(ch.nodes, func(n *Node) error {
			return n.Stack.FS.Remove(chunkPath(ch.id))
		})
		if err != nil {
			return err
		}
	}
	h.c.netCost(64, 1)
	delete(h.files, path)
	return nil
}

// Fsync flushes the file's chunks on every replica.
func (h *HDFS) Fsync(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.files[path]
	if !ok {
		return fs.ErrNotExist
	}
	if len(f.chunks) == 0 {
		return nil
	}
	ch := &f.chunks[len(f.chunks)-1]
	return h.c.applyReplicated(ch.nodes, func(n *Node) error {
		return n.Stack.FS.Fsync(chunkPath(ch.id))
	})
}
