// Package cluster implements the distributed-storage substrates of the
// paper's Section 5.3: an HDFS-like file system (NameNode + DataNodes with
// pipeline replication, driven by TeraGen) and a GlusterFS-like replicated
// volume (client-side replication across bricks, driven by Filebench).
//
// Every data node runs a complete local storage stack — file system over
// Tinca or Classic over NVM over disk — exactly as in Figure 9 of the
// paper. Nodes are simulated in-process: each owns its own clock (a meter
// of local storage work) while the cluster maintains a wall clock that
// advances, per client operation, by the slowest replica's service time
// plus the 10GbE network cost.
package cluster

import (
	"fmt"
	"time"

	"tinca/internal/metrics"
	"tinca/internal/sim"
	"tinca/internal/stack"
)

// Config sizes a cluster.
type Config struct {
	Nodes      int           // number of data nodes (the paper uses 4)
	Node       stack.Config  // per-node storage stack configuration
	Replicas   int           // replication factor (1..Nodes)
	NetLatency time.Duration // per-message one-way latency (default 50µs)
	NetGbps    float64       // link speed (default 10, the paper's 10GbE)
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.NetLatency == 0 {
		c.NetLatency = 50 * time.Microsecond
	}
	if c.NetGbps == 0 {
		c.NetGbps = 10
	}
	return c
}

// Node is one data node: a complete local storage stack.
type Node struct {
	ID    int
	Stack *stack.Stack
	down  bool
}

// Down reports whether the node is marked failed.
func (n *Node) Down() bool { return n.down }

// Cluster is a set of data nodes plus the network/wall-clock model.
type Cluster struct {
	Cfg   Config
	Nodes []*Node
	// Wall is the cluster wall clock: per client operation it advances by
	// the slowest replica's storage time plus network cost. This is what
	// execution-time results (Figure 10(a)) are measured on.
	Wall *sim.Clock
	// NetRec counts network traffic.
	NetRec *metrics.Recorder
}

// New builds a cluster of freshly formatted nodes.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Replicas < 1 || cfg.Replicas > cfg.Nodes {
		return nil, fmt.Errorf("cluster: %d replicas on %d nodes", cfg.Replicas, cfg.Nodes)
	}
	c := &Cluster{
		Cfg:    cfg,
		Wall:   sim.NewClock(),
		NetRec: metrics.NewRecorder(),
	}
	for i := 0; i < cfg.Nodes; i++ {
		s, err := stack.New(cfg.Node)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.Nodes = append(c.Nodes, &Node{ID: i, Stack: s})
	}
	return c, nil
}

// netCost charges the wall clock for moving n payload bytes over hops
// network hops (pipeline replication traverses one hop per replica;
// client-side replication sends the payload once per replica).
func (c *Cluster) netCost(n int64, hops int) {
	if hops <= 0 {
		hops = 1
	}
	transfer := time.Duration(float64(n*8) / (c.Cfg.NetGbps * 1e9) * 1e9)
	c.Wall.Advance(transfer + time.Duration(hops)*c.Cfg.NetLatency)
	c.NetRec.Add(metrics.NetBytes, n*int64(hops))
	c.NetRec.Add(metrics.NetMessages, int64(hops))
}

// ErrNodeDown is returned when an operation requires a node that is
// marked failed. Reads fail over to another replica; writes surface the
// error (this substrate does not implement self-healing resynchronisation,
// so silently skipping a write replica would leave it stale).
var ErrNodeDown = fmt.Errorf("cluster: node is down")

// SetNodeDown marks node id failed (true) or restored (false), for
// failover experiments. Restoring a node remounts its local stack,
// running crash recovery.
func (c *Cluster) SetNodeDown(id int, down bool) error {
	n := c.Nodes[id]
	if down && !n.down {
		n.Stack.Crash(nil, 0) // power failure on that node
		n.down = true
		return nil
	}
	if !down && n.down {
		if err := n.Stack.Remount(); err != nil {
			return err
		}
		n.down = false
	}
	return nil
}

// applyReplicated runs fn against each listed node and advances the wall
// clock by the slowest node's local service time (replicas work in
// parallel).
func (c *Cluster) applyReplicated(nodes []*Node, fn func(n *Node) error) error {
	var maxDelta time.Duration
	for _, n := range nodes {
		if n.down {
			return ErrNodeDown
		}
		t0 := n.Stack.Clock.Now()
		if err := fn(n); err != nil {
			return err
		}
		if d := n.Stack.Clock.Now() - t0; d > maxDelta {
			maxDelta = d
		}
	}
	c.Wall.Advance(maxDelta)
	return nil
}

// applyFirstUp runs fn against the first healthy node in the list (read
// failover) and charges its service time.
func (c *Cluster) applyFirstUp(nodes []*Node, fn func(n *Node) error) error {
	for _, n := range nodes {
		if n.down {
			continue
		}
		t0 := n.Stack.Clock.Now()
		err := fn(n)
		c.Wall.Advance(n.Stack.Clock.Now() - t0)
		return err
	}
	return ErrNodeDown
}

// Stats sums the typed device counters across every node. It replaces
// string-keyed Snapshot lookups for the common device costs; Snapshot
// remains available for everything else (e.g. network counters).
func (c *Cluster) Stats() stack.DeviceStats {
	var d stack.DeviceStats
	for _, n := range c.Nodes {
		d = d.Add(n.Stack.Stats().Device)
	}
	return d
}

// Snapshot sums the metric counters across every node plus the network.
func (c *Cluster) Snapshot() metrics.Snapshot {
	total := make(metrics.Snapshot)
	for _, n := range c.Nodes {
		for k, v := range n.Stack.Rec.Snapshot() {
			total[k] += v
		}
	}
	for k, v := range c.NetRec.Snapshot() {
		total[k] += v
	}
	return total
}

// replicaSet deterministically picks r consecutive nodes starting at a
// position derived from key (GlusterFS-style distribute+replicate).
func (c *Cluster) replicaSet(key uint64, r int) []*Node {
	sets := c.Cfg.Nodes / r
	if sets == 0 {
		sets = 1
	}
	start := int(key%uint64(sets)) * r
	out := make([]*Node, 0, r)
	for i := 0; i < r; i++ {
		out = append(out, c.Nodes[(start+i)%c.Cfg.Nodes])
	}
	return out
}

// fnv1a hashes a path for replica-set selection.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Close flushes every node.
func (c *Cluster) Close() error {
	for _, n := range c.Nodes {
		if err := n.Stack.Close(); err != nil {
			return err
		}
	}
	return nil
}
