package cluster_test

import (
	"bytes"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/cluster"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

func newCluster(t *testing.T, kind stack.Kind, replicas int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Nodes:    4,
		Replicas: replicas,
		Node: stack.Config{
			Kind:        kind,
			NVMBytes:    8 << 20,
			NVMProfile:  pmem.NVDIMM,
			DiskProfile: blockdev.Null,
			FSBlocks:    8192,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHDFSAppendRead(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	h := cluster.NewHDFS(c, cluster.HDFSOptions{ChunkBytes: 64 << 10})
	if err := h.Create("/f"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("hdfs-chunk-data."), 10000) // 160KB, 3 chunks
	if err := h.Append("/f", payload); err != nil {
		t.Fatal(err)
	}
	info, err := h.Stat("/f")
	if err != nil || info.Size != uint64(len(payload)) {
		t.Fatalf("stat: %+v %v", info, err)
	}
	got := make([]byte, len(payload))
	n, err := h.ReadAt("/f", 0, got)
	if err != nil || n != len(payload) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch across chunks")
	}
	// Cross-chunk boundary read.
	small := make([]byte, 100)
	if _, err := h.ReadAt("/f", 64<<10-50, small); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small, payload[64<<10-50:64<<10+50]) {
		t.Fatal("boundary read mismatch")
	}
}

func TestHDFSReplicationMultipliesWrites(t *testing.T) {
	writeVolume := func(replicas int) int64 {
		c := newCluster(t, stack.Tinca, replicas)
		h := cluster.NewHDFS(c, cluster.HDFSOptions{ChunkBytes: 64 << 10})
		if _, err := workload.RunTeraGen(h, workload.TeraGenConfig{Rows: 3000, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		return c.Snapshot().Get(metrics.NVMCLFlush)
	}
	r1, r3 := writeVolume(1), writeVolume(3)
	if r3 < r1*2 {
		t.Fatalf("3 replicas should flush ≳3x of 1 replica: %d vs %d", r1, r3)
	}
}

func TestHDFSWallClockUsesMaxReplica(t *testing.T) {
	c := newCluster(t, stack.Tinca, 3)
	h := cluster.NewHDFS(c, cluster.HDFSOptions{ChunkBytes: 64 << 10})
	h.Create("/t")
	if err := h.Append("/t", bytes.Repeat([]byte{1}, 32<<10)); err != nil {
		t.Fatal(err)
	}
	var sum, max int64
	for _, n := range c.Nodes {
		d := int64(n.Stack.Clock.Now())
		sum += d
		if d > max {
			max = d
		}
	}
	wall := int64(c.Wall.Now())
	if wall >= sum {
		t.Fatalf("wall %d should be < sum of node work %d (parallel replicas)", wall, sum)
	}
	if wall < max {
		t.Fatalf("wall %d < slowest node %d", wall, max)
	}
}

func TestHDFSRemove(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	h := cluster.NewHDFS(c, cluster.HDFSOptions{ChunkBytes: 64 << 10})
	h.Create("/rm")
	h.Append("/rm", make([]byte, 100<<10))
	if err := h.Remove("/rm"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Stat("/rm"); err == nil {
		t.Fatal("stat after remove succeeded")
	}
}

func TestVolumeReplicatesAndReads(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	v := cluster.NewVolume(c)
	if err := v.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := v.Create("/data/f"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 20000)
	if err := v.WriteAt("/data/f", 0, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := v.ReadAt("/data/f", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("volume read mismatch")
	}
	// The file must exist on exactly Replicas bricks.
	n := 0
	for _, node := range c.Nodes {
		if node.Stack.FS.Exists("/data/f") {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("file on %d bricks, want 2", n)
	}
}

func TestVolumeRunsFilebench(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	v := cluster.NewVolume(c)
	cnt, err := workload.RunFilebench(v, workload.FilebenchConfig{
		Profile: workload.Varmail, Files: 16, FileBytes: 8 << 10, Ops: 120, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.FileOps != 120 {
		t.Fatalf("ops = %d", cnt.FileOps)
	}
	// Every brick's local FS must stay consistent.
	for i, n := range c.Nodes {
		if err := n.Stack.FS.Check(); err != nil {
			t.Fatalf("brick %d: %v", i, err)
		}
	}
}

func TestClusterNodeCrashRecovery(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	v := cluster.NewVolume(c)
	v.Mkdir("/d")
	v.Create("/d/f")
	v.WriteAt("/d/f", 0, bytes.Repeat([]byte{9}, 8192))
	// Power-fail one node; its local recovery must succeed and keep
	// committed data.
	n := c.Nodes[0]
	n.Stack.Crash(nil, 0)
	if err := n.Stack.Remount(); err != nil {
		t.Fatal(err)
	}
	if err := n.Stack.FS.Check(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	if _, err := v.ReadAt("/d/f", 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatal("data lost after node recovery")
	}
}

func TestReplicaSetValidation(t *testing.T) {
	_, err := cluster.New(cluster.Config{Nodes: 2, Replicas: 3})
	if err == nil {
		t.Fatal("accepted replicas > nodes")
	}
}

func TestReadFailover(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	v := cluster.NewVolume(c)
	if err := v.Create("/fo"); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteAt("/fo", 0, bytes.Repeat([]byte{5}, 4096)); err != nil {
		t.Fatal(err)
	}
	// Find the primary brick for this file and fail it.
	primary := -1
	for i, n := range c.Nodes {
		if n.Stack.FS.Exists("/fo") {
			primary = i
			break
		}
	}
	if primary < 0 {
		t.Fatal("file not found on any brick")
	}
	if err := c.SetNodeDown(primary, true); err != nil {
		t.Fatal(err)
	}
	// Reads fail over to the surviving replica.
	p := make([]byte, 4096)
	if _, err := v.ReadAt("/fo", 0, p); err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if p[0] != 5 {
		t.Fatal("failover read returned wrong data")
	}
	// Writes refuse (no self-heal in this substrate).
	if err := v.WriteAt("/fo", 0, p); err != cluster.ErrNodeDown {
		t.Fatalf("write to degraded set: %v", err)
	}
	// Restore the node: its local recovery runs and writes work again.
	if err := c.SetNodeDown(primary, false); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteAt("/fo", 0, bytes.Repeat([]byte{6}, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadAt("/fo", 0, p); err != nil || p[0] != 6 {
		t.Fatalf("after restore: %v %d", err, p[0])
	}
}

func TestHDFSReadFailover(t *testing.T) {
	c := newCluster(t, stack.Tinca, 3)
	h := cluster.NewHDFS(c, cluster.HDFSOptions{ChunkBytes: 64 << 10})
	h.Create("/r")
	payload := bytes.Repeat([]byte{9}, 32<<10)
	if err := h.Append("/r", payload); err != nil {
		t.Fatal(err)
	}
	// Fail the first replica of the chunk: reads must still succeed.
	if err := c.SetNodeDown(0, true); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := h.ReadAt("/r", 0, got); err != nil {
		t.Fatalf("read with node 0 down: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("failover read mismatch")
	}
}

func TestHDFSWriteAtWithinFile(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	h := cluster.NewHDFS(c, cluster.HDFSOptions{ChunkBytes: 64 << 10})
	h.Create("/wa")
	if err := h.Append("/wa", bytes.Repeat([]byte{1}, 100<<10)); err != nil {
		t.Fatal(err)
	}
	// Rewrite a range crossing the chunk boundary.
	patch := bytes.Repeat([]byte{2}, 4096)
	if err := h.WriteAt("/wa", 64<<10-2048, patch); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := h.ReadAt("/wa", 64<<10-2048, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, patch) {
		t.Fatal("cross-chunk rewrite mismatch")
	}
	// WriteAt at EOF appends; beyond EOF errors.
	if err := h.WriteAt("/wa", 100<<10, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt("/wa", 200<<10, []byte("x")); err == nil {
		t.Fatal("write beyond EOF accepted")
	}
}

func TestHDFSErrorsAndFsync(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	h := cluster.NewHDFS(c, cluster.HDFSOptions{})
	if err := h.Append("/missing", []byte("x")); err == nil {
		t.Fatal("append to missing file")
	}
	if _, err := h.ReadAt("/missing", 0, make([]byte, 4)); err == nil {
		t.Fatal("read missing file")
	}
	if err := h.Remove("/missing"); err == nil {
		t.Fatal("remove missing file")
	}
	if err := h.Fsync("/missing"); err == nil {
		t.Fatal("fsync missing file")
	}
	h.Create("/e")
	if err := h.Create("/e"); err == nil {
		t.Fatal("duplicate create")
	}
	if err := h.Fsync("/e"); err != nil { // no chunks yet: no-op
		t.Fatal(err)
	}
	if err := h.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := h.Mkdir("/dir"); err == nil {
		t.Fatal("duplicate mkdir")
	}
	info, err := h.Stat("/dir")
	if err != nil || !info.IsDir {
		t.Fatalf("dir stat: %+v %v", info, err)
	}
	if err := h.Remove("/dir"); err != nil {
		t.Fatal(err)
	}
	// Read past EOF.
	h.Append("/e", []byte("ab"))
	if _, err := h.ReadAt("/e", 10, make([]byte, 4)); err == nil {
		t.Fatal("read past EOF accepted")
	}
}

func TestVolumeRemoveAndFsync(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	v := cluster.NewVolume(c)
	v.Create("/rf")
	v.Append("/rf", []byte("data"))
	if err := v.Fsync("/rf"); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("/rf"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Stat("/rf"); err == nil {
		t.Fatal("stat removed file")
	}
	// Every brick that held it agrees.
	for _, n := range c.Nodes {
		if n.Stack.FS.Exists("/rf") {
			t.Fatal("brick still holds removed file")
		}
	}
}

func TestClusterSnapshotAggregates(t *testing.T) {
	c := newCluster(t, stack.Tinca, 2)
	v := cluster.NewVolume(c)
	v.Create("/agg")
	v.WriteAt("/agg", 0, make([]byte, 8192))
	snap := c.Snapshot()
	if snap.Get(metrics.NVMCLFlush) == 0 {
		t.Fatal("snapshot missing node counters")
	}
	if snap.Get(metrics.NetBytes) == 0 {
		t.Fatal("snapshot missing network counters")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
