package cluster

import (
	"tinca/internal/fs"
)

// Volume is a GlusterFS-like distribute+replicate volume: each file is
// hashed onto one replica set of Replicas bricks (a brick = one data
// node's local file system), and the *client* performs the replication —
// every write is shipped to each brick in the set, as GlusterFS AFR does.
// Reads are served by the first brick of the set.
//
// Volume implements workload.FileAPI, so the Filebench personalities of
// Section 5.3.2 drive it unchanged.
type Volume struct {
	c *Cluster
}

// NewVolume creates a replicated volume view over the cluster.
func NewVolume(c *Cluster) *Volume { return &Volume{c: c} }

func (v *Volume) bricks(path string) []*Node {
	return v.c.replicaSet(fnv1a(path), v.c.Cfg.Replicas)
}

// dirBricks: directories exist on every brick (GlusterFS creates the
// directory structure cluster-wide).
func (v *Volume) allBricks() []*Node { return v.c.Nodes }

// Mkdir creates the directory on every brick.
func (v *Volume) Mkdir(path string) error {
	v.c.netCost(64, v.c.Cfg.Nodes)
	return v.c.applyReplicated(v.allBricks(), func(n *Node) error {
		err := n.Stack.FS.Mkdir(path)
		if err == fs.ErrExist {
			return nil
		}
		return err
	})
}

// Create creates the file on its replica set.
func (v *Volume) Create(path string) error {
	v.c.netCost(64, v.c.Cfg.Replicas)
	return v.c.applyReplicated(v.bricks(path), func(n *Node) error {
		return n.Stack.FS.Create(path)
	})
}

// Remove unlinks the file from its replica set.
func (v *Volume) Remove(path string) error {
	v.c.netCost(64, v.c.Cfg.Replicas)
	return v.c.applyReplicated(v.bricks(path), func(n *Node) error {
		return n.Stack.FS.Remove(path)
	})
}

// WriteAt replicates the write to every brick in the set (client-side
// replication: the payload crosses the network once per replica).
func (v *Volume) WriteAt(path string, off uint64, data []byte) error {
	v.c.netCost(int64(len(data)), v.c.Cfg.Replicas)
	return v.c.applyReplicated(v.bricks(path), func(n *Node) error {
		return n.Stack.FS.WriteAt(path, off, data)
	})
}

// Append replicates an append.
func (v *Volume) Append(path string, data []byte) error {
	v.c.netCost(int64(len(data)), v.c.Cfg.Replicas)
	return v.c.applyReplicated(v.bricks(path), func(n *Node) error {
		return n.Stack.FS.Append(path, data)
	})
}

// ReadAt reads from the first healthy brick of the set (failover: a down
// brick is skipped, as GlusterFS AFR serves reads from any live replica).
func (v *Volume) ReadAt(path string, off uint64, p []byte) (int, error) {
	var nread int
	err := v.c.applyFirstUp(v.bricks(path), func(n *Node) error {
		var e error
		nread, e = n.Stack.FS.ReadAt(path, off, p)
		return e
	})
	v.c.netCost(int64(nread), 1)
	return nread, err
}

// Stat queries the first healthy brick.
func (v *Volume) Stat(path string) (fs.FileInfo, error) {
	var info fs.FileInfo
	err := v.c.applyFirstUp(v.bricks(path), func(n *Node) error {
		var e error
		info, e = n.Stack.FS.Stat(path)
		return e
	})
	v.c.netCost(64, 1)
	return info, err
}

// Fsync syncs every replica.
func (v *Volume) Fsync(path string) error {
	v.c.netCost(64, v.c.Cfg.Replicas)
	return v.c.applyReplicated(v.bricks(path), func(n *Node) error {
		return n.Stack.FS.Fsync(path)
	})
}
