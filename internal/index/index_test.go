package index

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBasic(t *testing.T) {
	tb := New(0)
	if _, ok := tb.Get(7); ok {
		t.Fatal("empty table reported a hit")
	}
	tb.Put(7, 42)
	if v, ok := tb.Get(7); !ok || v != 42 {
		t.Fatalf("Get(7) = %d,%v want 42,true", v, ok)
	}
	tb.Put(7, 43) // update
	if v, _ := tb.Get(7); v != 43 {
		t.Fatalf("update lost: got %d", v)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d want 1", tb.Len())
	}
	tb.Delete(7)
	if _, ok := tb.Get(7); ok {
		t.Fatal("deleted key still present")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len after delete = %d want 0", tb.Len())
	}
}

// TestGrowAgainstModel drives random ops against a map model, crossing
// several resize boundaries, and checks Get/Len/Range stay consistent.
func TestGrowAgainstModel(t *testing.T) {
	tb := New(0)
	model := map[uint64]int32{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		k := uint64(rng.Intn(5000))
		switch rng.Intn(3) {
		case 0, 1:
			v := int32(rng.Intn(1 << 20))
			tb.Put(k, v)
			model[k] = v
		case 2:
			tb.Delete(k)
			delete(model, k)
		}
		if i%20000 == 0 {
			checkAgainst(t, tb, model)
		}
	}
	checkAgainst(t, tb, model)
	tb.Reset()
	if tb.Len() != 0 || tb.Migrating() {
		t.Fatal("Reset left state behind")
	}
}

func checkAgainst(t *testing.T, tb *Table, model map[uint64]int32) {
	t.Helper()
	if tb.Len() != len(model) {
		t.Fatalf("Len = %d want %d", tb.Len(), len(model))
	}
	for k, v := range model {
		got, ok := tb.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
	seen := 0
	tb.Range(func(k uint64, v int32) bool {
		if mv, ok := model[k]; !ok || mv != v {
			t.Fatalf("Range yielded (%d,%d) not in model (want %d,%v)", k, v, mv, ok)
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("Range visited %d want %d", seen, len(model))
	}
}

// TestTombstoneChurn holds the live set constant while cycling keys, and
// asserts capacity reaches a ceiling instead of doubling forever.
func TestTombstoneChurn(t *testing.T) {
	tb := New(64)
	const live = 100
	for i := uint64(0); i < live; i++ {
		tb.Put(i, int32(i))
	}
	for i := uint64(live); i < 100000; i++ {
		tb.Put(i, int32(i))
		tb.Delete(i - live)
	}
	if tb.Len() != live {
		t.Fatalf("Len = %d want %d", tb.Len(), live)
	}
	if tb.Capacity() > 4096 {
		t.Fatalf("capacity grew unbounded under churn: %d", tb.Capacity())
	}
}

// TestConcurrentReadersDuringGrow hammers Get from many goroutines while
// one writer inserts and deletes across several resizes. Run under -race
// this exercises the lock-free probe against the incremental migration.
// Readers may see spurious misses for keys in flight (documented), but a
// value returned for a stable key must be one that was written for it.
func TestConcurrentReadersDuringGrow(t *testing.T) {
	tb := New(0)
	const stable = 512
	for i := uint64(0); i < stable; i++ {
		tb.Put(i, int32(i*2+1))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				v, ok := tb.Get(k)
				if !ok {
					t.Errorf("stable key %d vanished", k)
					return
				}
				if v != int32(k*2+1) {
					t.Errorf("key %d: got %d want %d", k, v, k*2+1)
					return
				}
			}
		}(int64(g))
	}
	// Writer: churn volatile keys above the stable range, forcing grows.
	for i := uint64(0); i < 60000; i++ {
		k := stable + i%8192
		tb.Put(k, int32(k))
		if i%3 == 0 {
			tb.Delete(k)
		}
	}
	close(stop)
	wg.Wait()
}
