// Package index implements the DRAM-side block-number → slot map as an
// open-addressed hash table with cache-line-sized buckets, replacing the
// sync.Map the cache shipped with through PR 5. The design goals mirror
// the paper's 16-byte NVM entry economy on the DRAM side:
//
//   - A mapping costs exactly one 16-byte cell (two machine words), laid
//     out flat in a power-of-two array: no per-entry heap allocation, no
//     pointer chasing, four cells per 64-byte cache line.
//   - Readers are lock-free and wait-free modulo probing: Get issues only
//     atomic loads and never blocks behind a writer or a resize.
//   - Writers are externally serialised (the cache's shard mutex), which
//     keeps the write side trivial: plain linear probing with tombstones.
//
// # Cell layout
//
// Each cell is two uint64 words in a flat []atomic.Uint64:
//
//	word 0 (key):   0 = empty · 1<<63 = tombstone · otherwise blockNo+1
//	word 1 (value): the int32 cache-slot index, zero-extended
//
// Block numbers are ≤ 2^56-1 (the NVM entry packs them into 7 bytes), so
// key+1 never collides with the empty or tombstone encodings. An insert
// publishes the value word before the key word; a torn read (new key, old
// value — possible when a tombstoned cell is recycled) therefore hands the
// reader a stale slot index, never a wild one. That is safe because every
// consumer re-validates the mapping against the authoritative NVM entry
// (entry.disk == blockNo under a seqlock, or under the shard lock) before
// trusting it — exactly the discipline readfast.go already imposes.
//
// # Incremental resize, epoch-guarded
//
// Growth must not stall lock-free readers, so resize is incremental: the
// writer installs a fresh table as cur and demotes the full one to old
// (old is published before cur, so a reader never sees the new empty
// table without the old one behind it). Every subsequent mutation migrates
// a fixed quantum of old cells into cur, and once the cursor covers the
// old table it is unlinked. Mid-migration:
//
//   - Get probes cur first, then old. Migrated keys exist in both tables;
//     cur wins, so updates (which go to cur only) are never shadowed.
//   - Delete tombstones the key in both tables, so a cur-miss cannot
//     resurrect a stale old-table mapping.
//   - Old cells are never deleted by migration itself — the table is
//     discarded wholesale — so a reader that loaded the old pointer keeps
//     a complete, immutable-keys view for as long as it holds the
//     reference. Go's GC is the epoch reclaimer: the old array is freed
//     only when the last reader drops it.
//
// A reader that captured cur just before a resize published can miss a
// key inserted into the brand-new table. That surfaces as a spurious
// cache miss on the fast path; the caller's locked fallback (which runs
// under the same mutex as writers and therefore sees settled pointers)
// re-decides correctly.
package index

import "sync/atomic"

// MaxKey is the largest storable key: block numbers are packed into seven
// bytes in the NVM entry, and key+1 must stay clear of the tombstone bit.
const MaxKey = 1<<56 - 1

const (
	emptyKey     = 0
	tombstoneKey = 1 << 63

	// migrateQuantum is how many old-table cells each mutation carries
	// over during an incremental resize. 64 cells is 1 KiB of scanning —
	// cheap against the NVM writes a mutation already pays for, and it
	// finishes a 2x grow well before the new table fills in turn.
	migrateQuantum = 64

	// minCapacity keeps degenerate tables out of the probe math.
	minCapacity = 64
)

// table is one hash array generation. Capacity is a power of two; words
// holds two uint64s per cell (key, value), flat.
type table struct {
	mask  uint64 // capacity - 1
	words []atomic.Uint64
	used  int // cells holding a live key or a tombstone
	live  int // cells holding a live key
}

func newTable(capacity int) *table {
	return &table{
		mask:  uint64(capacity - 1),
		words: make([]atomic.Uint64, 2*capacity),
	}
}

// hash is a splitmix64-style finalizer: block numbers arrive nearly
// sequential, and this spreads them across buckets without clustering.
func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// get probes one generation. Lock-free; safe concurrently with a writer.
func (t *table) get(k uint64) (int32, bool) {
	kw := k + 1
	h := hash(k)
	for i := uint64(0); ; i++ {
		c := (h + i) & t.mask
		w := t.words[2*c].Load()
		if w == emptyKey {
			return 0, false
		}
		if w == kw {
			return int32(t.words[2*c+1].Load()), true
		}
		if i == t.mask { // table scanned (all tombstones) — absent
			return 0, false
		}
	}
}

// put inserts or updates k in this generation. Writer-side only.
// Returns true when k was not previously present in this table.
func (t *table) put(k uint64, v int32) bool {
	kw := k + 1
	h := hash(k)
	reuse := -1
	for i := uint64(0); ; i++ {
		c := (h + i) & t.mask
		w := t.words[2*c].Load()
		switch w {
		case emptyKey:
			if reuse >= 0 {
				c = uint64(reuse) // recycle the first tombstone on the path
			} else {
				t.used++
			}
			t.live++
			// Publish value before key: a concurrent reader that sees
			// the key must not read an uninitialised (or, for a recycled
			// tombstone, arbitrary-stale) value word... it still can see
			// a stale value on recycle, which downstream entry
			// validation rejects; it can never see an unwritten word.
			t.words[2*c+1].Store(uint64(uint32(v)))
			t.words[2*c].Store(kw)
			return true
		case kw:
			t.words[2*c+1].Store(uint64(uint32(v)))
			return false
		case tombstoneKey:
			if reuse < 0 {
				reuse = int(c)
			}
		}
	}
}

// del tombstones k in this generation. Writer-side only.
func (t *table) del(k uint64) bool {
	kw := k + 1
	h := hash(k)
	for i := uint64(0); ; i++ {
		c := (h + i) & t.mask
		w := t.words[2*c].Load()
		if w == emptyKey {
			return false
		}
		if w == kw {
			t.words[2*c].Store(tombstoneKey)
			t.live--
			return true
		}
		if i == t.mask {
			return false
		}
	}
}

// Table maps block numbers to cache-slot indexes for one shard.
//
// Concurrency contract: any number of goroutines may call Get
// concurrently with each other and with one mutator; Put, Delete, Range,
// Len and Reset must be serialised by the caller (the cache holds the
// shard mutex).
type Table struct {
	cur atomic.Pointer[table]
	old atomic.Pointer[table]
	// cursor is the next old-table cell to migrate. Writer-side state.
	cursor uint64
	// initial is the capacity Reset returns to (and New starts from).
	initial int
	// grows counts resizes since New/Reset. Read without the writer lock
	// by Stats-style diagnostics, hence atomic.
	grows atomic.Int64
}

// New returns a table with room for about initial mappings before the
// first grow. initial is rounded up to a power of two ≥ minCapacity.
func New(initial int) *Table {
	capa := minCapacity
	for capa < initial {
		capa <<= 1
	}
	t := &Table{initial: capa}
	t.cur.Store(newTable(capa))
	return t
}

// Get returns the slot mapped to k. Lock-free.
func (t *Table) Get(k uint64) (int32, bool) {
	if cur := t.cur.Load(); cur != nil {
		if v, ok := cur.get(k); ok {
			return v, true
		}
	}
	if old := t.old.Load(); old != nil {
		return old.get(k)
	}
	return 0, false
}

// Put maps k to v, growing (or stepping an in-flight grow) as needed.
func (t *Table) Put(k uint64, v int32) {
	t.migrateSome()
	cur := t.cur.Load()
	// Grow when the current generation passes 3/4 occupancy (live keys
	// plus tombstones — tombstones cost probe length too, and a resize
	// purges them). If a grow is already in flight, force-finish it
	// first so two generations never chain.
	if uint64(cur.used+1)*4 > (cur.mask+1)*3 {
		if t.old.Load() != nil {
			t.finishMigration()
		}
		t.grow()
		cur = t.cur.Load()
	}
	// If the key still lives in the old generation it is now shadowed:
	// Get probes cur first, and migration skips keys already in cur.
	cur.put(k, v)
}

// Delete removes k. Both generations are tombstoned so a cur miss cannot
// fall through to a stale old-generation mapping.
func (t *Table) Delete(k uint64) {
	t.migrateSome()
	t.cur.Load().del(k)
	if old := t.old.Load(); old != nil {
		old.del(k)
	}
}

// Len returns the number of live mappings.
func (t *Table) Len() int {
	n := t.cur.Load().live
	if old := t.old.Load(); old != nil {
		cur := t.cur.Load()
		old.scan(func(k uint64, _ int32) bool {
			if _, shadowed := cur.get(k); !shadowed {
				n++
			}
			return true
		})
	}
	return n
}

// Range calls fn for every live mapping until fn returns false.
// Writer-side (must hold the shard lock); order is bucket order.
func (t *Table) Range(fn func(k uint64, v int32) bool) {
	cur := t.cur.Load()
	if !cur.scan(fn) {
		return
	}
	if old := t.old.Load(); old != nil {
		old.scan(func(k uint64, v int32) bool {
			if _, shadowed := cur.get(k); shadowed {
				return true
			}
			return fn(k, v)
		})
	}
}

// Reset discards all mappings and returns to the initial capacity.
// Writer-side; used by crash recovery to rebuild from the NVM entries.
func (t *Table) Reset() {
	t.cur.Store(newTable(t.initial))
	t.old.Store(nil)
	t.cursor = 0
	t.grows.Store(0)
}

// scan iterates one generation's live cells. Returns false if fn did.
func (t *table) scan(fn func(k uint64, v int32) bool) bool {
	for c := uint64(0); c <= t.mask; c++ {
		w := t.words[2*c].Load()
		if w == emptyKey || w == tombstoneKey {
			continue
		}
		if !fn(w-1, int32(t.words[2*c+1].Load())) {
			return false
		}
	}
	return true
}

// grow demotes cur to old and installs a fresh generation sized for the
// live key count (not the used count: steady-state eviction churn fills
// the table with tombstones, and sizing by used would double forever —
// a same-capacity generation that merely purges tombstones is fine).
// Publish order matters: old must be visible before the new (empty) cur,
// or a reader could probe the fresh table, miss, and find no fallback.
// The new capacity never shrinks below the outgoing one: with capa ≥
// oldCap, migration finishes within oldCap/migrateQuantum ≤ capa/64 Puts,
// so cur.used stays below the 3/4 trigger for the whole resize and the
// new generation can never overfill mid-migration. (A cache shard's live
// set is bounded by its slot partition anyway, so shrinking buys nothing;
// recovery uses Reset to return to the initial size.)
func (t *Table) grow() {
	cur := t.cur.Load()
	capa := minCapacity
	for uint64(capa) < uint64(cur.live+1)*2 {
		capa <<= 1
	}
	if capa < int(cur.mask+1) {
		capa = int(cur.mask + 1)
	}
	t.old.Store(cur)
	t.cursor = 0
	t.cur.Store(newTable(capa))
	t.grows.Add(1)
}

// migrateSome carries migrateQuantum old-generation cells into cur.
func (t *Table) migrateSome() {
	old := t.old.Load()
	if old == nil {
		return
	}
	cur := t.cur.Load()
	end := t.cursor + migrateQuantum
	if end > old.mask+1 {
		end = old.mask + 1
	}
	for ; t.cursor < end; t.cursor++ {
		w := old.words[2*t.cursor].Load()
		if w == emptyKey || w == tombstoneKey {
			continue
		}
		k := w - 1
		if _, ok := cur.get(k); ok {
			continue // updated (or re-inserted) in cur since the grow
		}
		cur.put(k, int32(old.words[2*t.cursor+1].Load()))
	}
	if t.cursor > old.mask {
		t.old.Store(nil) // readers holding old keep a complete snapshot
	}
}

// finishMigration drains the remainder of an in-flight resize.
func (t *Table) finishMigration() {
	for t.old.Load() != nil {
		t.migrateSome()
	}
}

// Migrating reports whether an incremental resize is in flight.
func (t *Table) Migrating() bool { return t.old.Load() != nil }

// Grows reports the number of resizes since New (or the last Reset).
func (t *Table) Grows() int64 { return t.grows.Load() }

// Capacity returns the current generation's cell count (diagnostics).
func (t *Table) Capacity() int { return int(t.cur.Load().mask + 1) }
