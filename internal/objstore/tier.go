package objstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tinca/internal/blockdev"
	"tinca/internal/bufpool"
	"tinca/internal/metrics"
)

// Tier mounts an object store as the capacity tier (L3) behind a small
// block device (L2), and presents the pair to the cache layer as one
// large blockdev.Store. Three pipelines overlap with the foreground:
//
//   - an async uploader absorbs destaged-dirty blocks into multi-block
//     objects and PUTs them in batches, off the foreground path;
//   - the upload dispatcher doubles as a compactor, always claiming the
//     object with the most dirty blocks so adjacent destages coalesce
//     into one large PUT instead of many small ones;
//   - a read-ahead prefetcher watches the demand miss stream for
//     sequential/strided object access and fetches ahead through the
//     store's request-overlap window into a DRAM staging area.
//
// Tiering is exclusive: blocks fetched from L3 go to the cache above
// (and the staging area), not into L2. L2 holds destaged-dirty blocks
// awaiting upload plus clean victims the cache pushes down (AdmitClean).
//
// # Durability and crash ordering
//
// The head of the L2 device is a persistent slot map: one 8-byte record
// per data slot (bit 63 valid, bit 62 dirty, low bits the cached block
// number), 512 records per map block. The DRAM state is a mirror,
// rebuilt from the map on attach. Four orderings make a crash at any
// point safe:
//
//  1. a slot's data write is durable before its map record says
//     valid — a torn install reads as a free slot after recovery;
//  2. a dirty block's object upload is durable (Put returned) before
//     its map record clears the dirty bit — a crash between the two
//     merely re-uploads identical bytes;
//  3. clean victims' records are invalidated durably before their
//     slots enter the free list — otherwise a crash after reuse could
//     resurrect an old record naming the new slot's contents;
//  4. only clean, unpinned slots are evicted from L2.
//
// Together these keep the tier-wide invariant: the latest committed
// content of every block is in the NVM cache (dirty), in L2 (dirty per
// the durable map), or in the object store; and a clean L2 slot always
// holds exactly what the store (or zero, for never-uploaded blocks)
// holds, so losing it loses nothing.
type Tier struct {
	dev   *blockdev.Device
	store *Store
	rec   *metrics.Recorder
	span  uint64 // addressable blocks (what Blocks() reports)
	opts  TierOptions

	mapBlocks uint64 // map region at the head of dev
	nslots    int    // data slots behind the map region

	mu        sync.Mutex
	slots     []slotState
	byBlock   map[uint64]int32 // block no -> slot
	freeList  []int32
	hand      int            // clock hand for clean-slot eviction
	dirtyCnt  int            // slots with the dirty bit set
	dirtyObjs map[uint64]int // object key -> dirty blocks in it
	uploading map[uint64]bool
	paused    bool
	draining  bool // Drain in progress: lanes ignore UploadTrigger
	closing   bool
	writeCond *sync.Cond // backpressure / drain: dirty count dropped
	upCond    *sync.Cond // work for the uploader / eviction progress

	// metaMu[i] serializes durable writes of map block i. Holding it
	// across {snapshot under mu -> dev.WriteBlock} makes persisted map
	// blocks monotone: an older snapshot can never land after a newer
	// one. Lock order: metaMu before mu, never the reverse.
	metaMu []sync.Mutex

	// Staging area and fetch dedup (smu; independent of mu).
	smu      sync.Mutex
	staging  map[uint64]*stagedObj
	stageSeq uint64
	fetching map[uint64]*objFetch

	// Stride detection over the object access stream (guarded by smu).
	lastObj  uint64
	stride   int64
	streak   int
	haveLast bool

	pfCh chan uint64
	wg   sync.WaitGroup

	l2Hits       atomic.Int64
	stagingHits  atomic.Int64
	l3Fetches    atomic.Int64
	prefetches   atomic.Int64
	prefetchHits atomic.Int64
	uploads      atomic.Int64
	uploadBlocks atomic.Int64
	l2Evicts     atomic.Int64
	admits       atomic.Int64
	admitDrops   atomic.Int64
	backpressure atomic.Int64
}

type slotState struct {
	block   uint64
	version uint64
	// payload retains a dirty slot's bytes in DRAM so the uploader
	// assembles objects without re-reading L2. Immutable once set (an
	// overwrite installs a fresh slice); nil for clean slots and for
	// dirty slots recovered from the map after a crash, which the
	// uploader re-reads from L2 instead.
	payload []byte
	pin     int32
	valid   bool
	dirty   bool
}

type stagedObj struct {
	data       []byte
	seq        uint64
	prefetched bool
}

type objFetch struct {
	done  chan struct{}
	data  []byte
	stale bool // content superseded while the fetch was in flight
}

// TierOptions tunes the tier's pipelines. The zero value picks the
// defaults noted on each field.
type TierOptions struct {
	// ObjectBlocks is the object size in blocks (default 16 = 64KB).
	// Larger objects amortize the per-request latency and price floors
	// over more bytes at the cost of coarser read amplification.
	ObjectBlocks int
	// UploadWorkers PUT that many objects concurrently (default 8), so
	// uploads ride the store's request-overlap window instead of
	// paying the full per-request latency serially.
	UploadWorkers int
	// MaxDirty bounds dirty (not yet uploaded) slots; WriteBlock stalls
	// at the bound until the uploader catches up (default 3/4 of the
	// data slots). The bound also caps the DRAM payload buffer.
	MaxDirty int
	// UploadTrigger is the dirty-block watermark that arms the upload
	// lanes (default MaxDirty/2, clamped to [1, MaxDirty]). Below it
	// destages accumulate in L2 — write absorption: a block rewritten
	// before the watermark trips costs one PUT, not several — and the
	// burst above it gives every PUT lane work at once, so the store's
	// request-overlap window prices the batch instead of a serial
	// request train. Drain and Close ignore the watermark.
	UploadTrigger int
	// PrefetchWorkers fetch ahead concurrently; 0 disables read-ahead.
	PrefetchWorkers int
	// PrefetchDepth is how many objects ahead of the detected stream
	// the prefetcher runs (default 2*PrefetchWorkers).
	PrefetchDepth int
	// StagingObjects caps the DRAM staging area (default 32 objects).
	StagingObjects int
}

const recsPerMapBlock = BlockSize / 8

const (
	recValid = uint64(1) << 63
	recDirty = uint64(1) << 62
	recBlock = (uint64(1) << 56) - 1
)

// MapBlocks returns the size of the persistent slot-map region at the
// head of a tier over an L2 device of devBlocks blocks.
func MapBlocks(devBlocks uint64) uint64 {
	return (devBlocks + recsPerMapBlock) / (recsPerMapBlock + 1)
}

// DevBlocksFor returns the smallest L2 device size whose map region
// leaves at least dataSlots data slots — the inverse of MapBlocks, for
// sizing a device from a desired L2 capacity.
func DevBlocksFor(dataSlots uint64) uint64 {
	dev := dataSlots + (dataSlots+recsPerMapBlock-1)/recsPerMapBlock
	for dev-MapBlocks(dev) < dataSlots {
		dev++
	}
	return dev
}

// NewTier attaches a tier over dev and store, spanning span addressable
// blocks. A fresh (all-zero) device attaches empty; a device carrying a
// slot map from a previous incarnation — including one cut short by a
// crash — is recovered from the map region, with dirty slots queued for
// upload again. NewTier starts the upload and prefetch pipelines; Close
// (or Crash) stops them.
func NewTier(span uint64, dev *blockdev.Device, store *Store, rec *metrics.Recorder, opts TierOptions) (*Tier, error) {
	if span == 0 {
		return nil, fmt.Errorf("objstore: zero tier span")
	}
	if opts.ObjectBlocks <= 0 {
		opts.ObjectBlocks = 16
	}
	if opts.UploadWorkers <= 0 {
		opts.UploadWorkers = 8
	}
	if opts.StagingObjects <= 0 {
		opts.StagingObjects = 32
	}
	if opts.PrefetchDepth <= 0 {
		opts.PrefetchDepth = 2 * opts.PrefetchWorkers
	}
	mapBlocks := MapBlocks(dev.Blocks())
	nslots := int(dev.Blocks() - mapBlocks)
	if nslots < opts.ObjectBlocks {
		return nil, fmt.Errorf("objstore: L2 of %d blocks leaves %d data slots, need at least one object (%d blocks)",
			dev.Blocks(), nslots, opts.ObjectBlocks)
	}
	if opts.MaxDirty <= 0 {
		opts.MaxDirty = nslots * 3 / 4
	}
	if opts.MaxDirty > nslots {
		opts.MaxDirty = nslots
	}
	if opts.UploadTrigger <= 0 {
		opts.UploadTrigger = opts.MaxDirty / 2
	}
	if opts.UploadTrigger < 1 {
		opts.UploadTrigger = 1
	}
	if opts.UploadTrigger > opts.MaxDirty {
		// A trigger past the backpressure bound could never trip.
		opts.UploadTrigger = opts.MaxDirty
	}
	t := &Tier{
		dev:       dev,
		store:     store,
		rec:       rec,
		span:      span,
		opts:      opts,
		mapBlocks: mapBlocks,
		nslots:    nslots,
		slots:     make([]slotState, nslots),
		byBlock:   make(map[uint64]int32),
		dirtyObjs: make(map[uint64]int),
		uploading: make(map[uint64]bool),
		metaMu:    make([]sync.Mutex, mapBlocks),
		staging:   make(map[uint64]*stagedObj),
		fetching:  make(map[uint64]*objFetch),
	}
	t.writeCond = sync.NewCond(&t.mu)
	t.upCond = sync.NewCond(&t.mu)
	if err := t.attach(); err != nil {
		return nil, err
	}
	for w := 0; w < opts.UploadWorkers; w++ {
		t.wg.Add(1)
		go t.uploadWorker()
	}
	if opts.PrefetchWorkers > 0 {
		t.pfCh = make(chan uint64, 4*opts.PrefetchDepth+opts.PrefetchWorkers)
		for w := 0; w < opts.PrefetchWorkers; w++ {
			t.wg.Add(1)
			go t.prefetchWorker()
		}
	}
	return t, nil
}

// attach rebuilds the DRAM mirror from the persistent slot map.
func (t *Tier) attach() error {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	var conflicts []uint64 // map blocks needing re-persist
	for mb := uint64(0); mb < t.mapBlocks; mb++ {
		t.dev.ReadBlock(mb, buf)
		for i := 0; i < recsPerMapBlock; i++ {
			slot := int(mb)*recsPerMapBlock + i
			if slot >= t.nslots {
				break
			}
			rec := leU64(buf[i*8:])
			if rec&recValid == 0 {
				t.freeList = append(t.freeList, int32(slot))
				continue
			}
			no := rec & recBlock
			if no >= t.span {
				return fmt.Errorf("objstore: slot %d maps block %d beyond span %d", slot, no, t.span)
			}
			st := &t.slots[slot]
			st.block, st.valid, st.dirty = no, true, rec&recDirty != 0
			if prev, dup := t.byBlock[no]; dup {
				// Two slots naming one block should be impossible
				// (in-place overwrite reuses the slot); if a damaged
				// map presents one anyway, keep the dirty record —
				// it is the one recovery must re-upload — and
				// durably retire the other.
				loser, winner := int32(slot), prev
				if st.dirty && !t.slots[prev].dirty {
					loser, winner = prev, int32(slot)
				}
				t.slots[loser].valid = false
				t.slots[loser].dirty = false
				t.freeList = append(t.freeList, loser)
				conflicts = append(conflicts, uint64(loser)/recsPerMapBlock)
				t.byBlock[no] = winner
				continue
			}
			t.byBlock[no] = int32(slot)
			if st.dirty {
				t.dirtyCnt++
				t.dirtyObjs[t.objKey(no)]++
			}
		}
	}
	for _, mb := range conflicts {
		t.persistMeta(mb)
	}
	return nil
}

// Blocks returns the tier's addressable span; the layers above size
// themselves from it exactly as from a raw device.
func (t *Tier) Blocks() uint64 { return t.span }

// DataSlots returns the L2 capacity behind the map region, in blocks.
func (t *Tier) DataSlots() int { return t.nslots }

// ObjectBlocks returns the object size in blocks.
func (t *Tier) ObjectBlocks() int { return t.opts.ObjectBlocks }

func (t *Tier) objKey(no uint64) uint64 { return no / uint64(t.opts.ObjectBlocks) }

// dataBlock maps slot index to its device block behind the map region.
func (t *Tier) dataBlock(slot int32) uint64 { return t.mapBlocks + uint64(slot) }

func (t *Tier) metaBlockOf(slot int32) uint64 { return uint64(slot) / recsPerMapBlock }

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

// persistMeta durably writes map block mb from a snapshot of the DRAM
// mirror. metaMu[mb] is held across snapshot and write, so persisted
// images of a map block are monotone in the order their snapshots were
// taken; callers must not hold t.mu.
func (t *Tier) persistMeta(mb uint64) {
	t.metaMu[mb].Lock()
	defer t.metaMu[mb].Unlock()
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	t.mu.Lock()
	for i := 0; i < recsPerMapBlock; i++ {
		slot := int(mb)*recsPerMapBlock + i
		var rec uint64
		if slot < t.nslots && t.slots[slot].valid {
			rec = recValid | t.slots[slot].block&recBlock
			if t.slots[slot].dirty {
				rec |= recDirty
			}
		}
		putLeU64(buf[i*8:], rec)
	}
	t.mu.Unlock()
	t.dev.WriteBlock(mb, buf)
}

func (t *Tier) checkSpan(no uint64) {
	if no >= t.span {
		panic(fmt.Sprintf("objstore: block %d beyond tier span %d", no, t.span))
	}
}

// WriteBlock absorbs one destaged block into L2, durably (data write,
// then map record marking the slot valid+dirty), and queues its object
// for upload. When dirty slots reach MaxDirty the call stalls until the
// uploader catches up — the bounded queue's backpressure. The retained
// DRAM payload lets the uploader assemble objects without re-reading L2.
func (t *Tier) WriteBlock(no uint64, p []byte) {
	if len(p) != BlockSize {
		panic("objstore: short write buffer")
	}
	t.checkSpan(no)
	payload := make([]byte, BlockSize)
	copy(payload, p)

	t.mu.Lock()
	for t.dirtyCnt >= t.opts.MaxDirty && !t.paused && !t.closing {
		t.backpressure.Add(1)
		t.rec.Inc(metrics.TierBackpressure)
		t.upCond.Broadcast()
		t.writeCond.Wait()
	}
	if s, ok := t.byBlock[no]; ok {
		// In-place overwrite of the existing slot. The version bump
		// under mu makes a concurrent upload's stale snapshot unable
		// to clear the dirty bit it is about to re-earn.
		st := &t.slots[s]
		st.pin++
		t.mu.Unlock()
		t.dev.WriteBlock(t.dataBlock(s), p)
		t.mu.Lock()
		st.pin--
		st.version++
		st.payload = payload
		if !st.dirty {
			st.dirty = true
			t.dirtyCnt++
			t.dirtyObjs[t.objKey(no)]++
		}
		mb := t.metaBlockOf(s)
		t.mu.Unlock()
		t.persistMeta(mb)
		t.dropStaged(t.objKey(no))
		t.upCond.Broadcast()
		return
	}
	s := t.allocSlotLocked()
	if s < 0 { // closing teardown; durability is off the table anyway
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.dev.WriteBlock(t.dataBlock(s), p)
	t.mu.Lock()
	if _, ok := t.byBlock[no]; ok {
		// The layers above order same-block write-backs (the wb flag in
		// core.writeBack); two concurrent installs of one block mean
		// that ordering broke, and silently picking one would hide it.
		panic(fmt.Sprintf("objstore: concurrent install of block %d", no))
	}
	st := &t.slots[s]
	st.block, st.valid, st.dirty = no, true, true
	st.version++
	st.payload = payload
	t.byBlock[no] = s
	t.dirtyCnt++
	t.dirtyObjs[t.objKey(no)]++
	mb := t.metaBlockOf(s)
	t.mu.Unlock()
	t.persistMeta(mb)
	t.dropStaged(t.objKey(no))
	t.upCond.Broadcast()
}

// allocSlotLocked returns a free slot in limbo: invalid, in neither the
// free list nor byBlock, so nothing else can touch it until the caller
// publishes it. Called with t.mu held; may drop and retake it to evict.
// Returns -1 only during close.
func (t *Tier) allocSlotLocked() int32 {
	for {
		if n := len(t.freeList); n > 0 {
			s := t.freeList[n-1]
			t.freeList = t.freeList[:n-1]
			return s
		}
		if t.closing {
			return -1
		}
		victims, mbs := t.selectVictimsLocked()
		if len(victims) == 0 {
			// Everything is dirty or pinned: wait for upload progress,
			// which turns dirty slots into evictable clean ones.
			t.upCond.Broadcast()
			t.writeCond.Wait()
			continue
		}
		t.mu.Unlock()
		// Ordering (3): invalidations are durable before any victim
		// slot is handed out for reuse.
		for mb := range mbs {
			t.persistMeta(mb)
		}
		t.mu.Lock()
		t.freeList = append(t.freeList, victims...)
		t.l2Evicts.Add(int64(len(victims)))
		t.rec.Add(metrics.TierL2Evicts, int64(len(victims)))
	}
}

// selectVictimsLocked unmaps a batch of clean, unpinned slots (clock
// hand), leaving them in limbo for the caller to persist and free.
func (t *Tier) selectVictimsLocked() ([]int32, map[uint64]bool) {
	const batch = 32
	var victims []int32
	mbs := make(map[uint64]bool)
	for scanned := 0; scanned < t.nslots && len(victims) < batch; scanned++ {
		s := int32(t.hand)
		t.hand = (t.hand + 1) % t.nslots
		st := &t.slots[s]
		if !st.valid || st.dirty || st.pin > 0 {
			continue
		}
		delete(t.byBlock, st.block)
		st.valid = false
		st.payload = nil
		victims = append(victims, s)
		mbs[t.metaBlockOf(s)] = true
	}
	return victims, mbs
}

// ReadBlock serves block no from L2, the staging area, or an L3 object
// fetch (deduplicated against concurrent fetches of the same object),
// feeding the access stream to the prefetcher.
func (t *Tier) ReadBlock(no uint64, p []byte) {
	if len(p) != BlockSize {
		panic("objstore: short read buffer")
	}
	t.checkSpan(no)
	t.mu.Lock()
	if s, ok := t.byBlock[no]; ok {
		st := &t.slots[s]
		if st.payload != nil { // dirty payload still buffered: DRAM hit
			copy(p, st.payload)
			t.mu.Unlock()
			t.l2Hits.Add(1)
			t.rec.Inc(metrics.TierL2Hits)
			return
		}
		st.pin++ // ordering (4): pinned across the read, not evictable
		t.mu.Unlock()
		t.dev.ReadBlock(t.dataBlock(s), p)
		t.mu.Lock()
		st.pin--
		t.mu.Unlock()
		t.l2Hits.Add(1)
		t.rec.Inc(metrics.TierL2Hits)
		return
	}
	t.mu.Unlock()

	key := t.objKey(no)
	off := int(no-key*uint64(t.opts.ObjectBlocks)) * BlockSize
	if t.stagingCopy(key, off, p) {
		t.noteAccess(key)
		return
	}
	t.l3Fetches.Add(1)
	t.rec.Inc(metrics.TierL3Fetches)
	data := t.fetchObject(key, false)
	copy(p, data[off:off+BlockSize])
	t.noteAccess(key)
}

// stagingCopy serves one block from a staged object, if present.
func (t *Tier) stagingCopy(key uint64, off int, p []byte) bool {
	t.smu.Lock()
	so, ok := t.staging[key]
	if !ok {
		t.smu.Unlock()
		return false
	}
	t.stageSeq++
	so.seq = t.stageSeq
	copy(p, so.data[off:off+BlockSize])
	pf := so.prefetched
	t.smu.Unlock()
	t.stagingHits.Add(1)
	t.rec.Inc(metrics.TierStagingHits)
	if pf {
		t.prefetchHits.Add(1)
		t.rec.Inc(metrics.TierPrefetchHits)
	}
	return true
}

// fetchObject returns object key's content (zeroes for a never-stored
// object, matching an unwritten device), deduplicating concurrent
// fetches: late arrivals wait on the in-flight request instead of
// issuing their own. The result lands in the staging area unless its
// content was superseded (a destage or upload of the object) mid-fetch.
func (t *Tier) fetchObject(key uint64, prefetched bool) []byte {
	t.smu.Lock()
	if so, ok := t.staging[key]; ok {
		t.stageSeq++
		so.seq = t.stageSeq
		d := so.data
		t.smu.Unlock()
		return d
	}
	if f, ok := t.fetching[key]; ok {
		t.smu.Unlock()
		<-f.done
		return f.data
	}
	f := &objFetch{done: make(chan struct{})}
	t.fetching[key] = f
	t.smu.Unlock()

	buf := make([]byte, t.opts.ObjectBlocks*BlockSize)
	t.store.Get(key, buf)
	f.data = buf

	t.smu.Lock()
	delete(t.fetching, key)
	if !f.stale {
		t.stageInsertLocked(key, buf, prefetched)
	}
	t.smu.Unlock()
	close(f.done)
	return buf
}

func (t *Tier) stageInsertLocked(key uint64, data []byte, prefetched bool) {
	t.stageSeq++
	t.staging[key] = &stagedObj{data: data, seq: t.stageSeq, prefetched: prefetched}
	for len(t.staging) > t.opts.StagingObjects {
		var oldKey uint64
		oldSeq := t.stageSeq + 1
		for k, so := range t.staging {
			if so.seq < oldSeq {
				oldSeq, oldKey = so.seq, k
			}
		}
		delete(t.staging, oldKey)
	}
}

// dropStaged invalidates any staged copy of object key, and poisons an
// in-flight fetch of it so its (now stale) result is not staged. Called
// whenever the object's content changes: a destage into L2, or an
// upload PUT.
func (t *Tier) dropStaged(key uint64) {
	t.smu.Lock()
	delete(t.staging, key)
	if f, ok := t.fetching[key]; ok {
		f.stale = true
	}
	t.smu.Unlock()
}

// noteAccess feeds one object access from the miss path into the stride
// detector, extending the prefetch stream when two consecutive accesses
// repeat the same object stride (+1 for sequential scans, any constant
// for strided ones).
func (t *Tier) noteAccess(key uint64) {
	if t.pfCh == nil {
		return
	}
	t.smu.Lock()
	var queue []uint64
	if t.haveLast && key != t.lastObj {
		d := int64(key) - int64(t.lastObj)
		if d == t.stride {
			t.streak++
		} else {
			t.stride, t.streak = d, 1
		}
		if t.streak >= 2 {
			maxObj := (t.span - 1) / uint64(t.opts.ObjectBlocks)
			next := int64(key)
			for i := 0; i < t.opts.PrefetchDepth; i++ {
				next += t.stride
				if next < 0 || next > int64(maxObj) {
					break
				}
				k := uint64(next)
				if _, ok := t.staging[k]; ok {
					continue
				}
				if _, ok := t.fetching[k]; ok {
					continue
				}
				queue = append(queue, k)
			}
		}
	}
	t.lastObj, t.haveLast = key, true
	t.smu.Unlock()
	for _, k := range queue {
		select {
		case t.pfCh <- k:
		default: // prefetcher saturated; the stream will re-trigger
			return
		}
	}
}

func (t *Tier) prefetchWorker() {
	defer t.wg.Done()
	for key := range t.pfCh {
		t.smu.Lock()
		_, staged := t.staging[key]
		_, inflight := t.fetching[key]
		t.smu.Unlock()
		if staged || inflight {
			continue
		}
		t.prefetches.Add(1)
		t.rec.Inc(metrics.TierPrefetches)
		t.fetchObject(key, true)
	}
}

// AdmitClean offers a clean block evicted from the cache above a home
// in L2 (the blockdev-backed half of the exclusive tier), so a re-miss
// is an L2 read instead of an object fetch. Only spare capacity is
// used: with no free slot the offer is dropped — a clean victim's
// content is by construction identical to what the store (or zero)
// already holds, so dropping loses nothing. Reports whether the block
// was admitted (or already resident).
func (t *Tier) AdmitClean(no uint64, data []byte) bool {
	if len(data) != BlockSize {
		panic("objstore: short admit buffer")
	}
	t.checkSpan(no)
	t.mu.Lock()
	if _, ok := t.byBlock[no]; ok {
		t.mu.Unlock()
		return true
	}
	n := len(t.freeList)
	if n == 0 || t.closing {
		t.mu.Unlock()
		t.admitDrops.Add(1)
		t.rec.Inc(metrics.TierAdmitDrops)
		return false
	}
	s := t.freeList[n-1]
	t.freeList = t.freeList[:n-1]
	t.mu.Unlock()
	t.dev.WriteBlock(t.dataBlock(s), data) // ordering (1): data first
	t.mu.Lock()
	if _, ok := t.byBlock[no]; ok {
		// Lost an install race for the same block; the other copy is
		// identical (clean content is unique), so just return the
		// limbo slot — its record is still durably invalid.
		t.freeList = append(t.freeList, s)
		t.mu.Unlock()
		return true
	}
	st := &t.slots[s]
	st.block, st.valid, st.dirty = no, true, false
	st.version++
	st.payload = nil
	t.byBlock[no] = s
	mb := t.metaBlockOf(s)
	t.mu.Unlock()
	t.persistMeta(mb)
	t.admits.Add(1)
	t.rec.Inc(metrics.TierAdmits)
	return true
}

type upBlock struct {
	off     int // block index within the object
	slot    int32
	version uint64
	payload []byte // nil after crash recovery: re-read from L2
}

// uploadWorker is one lane of the async upload pipeline. Each worker
// claims the object with the most dirty blocks (the compaction
// heuristic: coalesce adjacent destages into one large PUT), assembles
// it — prior object as the base for a partial rewrite, dirty payloads
// overlaid — uploads it, and clears the dirty bits whose blocks were
// not overwritten mid-flight. UploadWorkers lanes PUT concurrently, so
// the store's request-overlap window prices the pipeline like the
// batched background stream it is rather than a serial request train.
func (t *Tier) uploadWorker() {
	defer t.wg.Done()
	for {
		t.mu.Lock()
		var key uint64
		for {
			if t.closing {
				t.mu.Unlock()
				return
			}
			best := -1
			// Below the trigger watermark destages keep accumulating
			// (absorption); lanes only engage on a backlog burst, a
			// drain, or when eviction is starved for clean slots
			// (dirtyCnt == nslots >= trigger then, so the gate is open
			// whenever allocSlotLocked could be waiting on uploads).
			if !t.paused && (t.draining || t.dirtyCnt >= t.opts.UploadTrigger) {
				for k, n := range t.dirtyObjs {
					if !t.uploading[k] && n > best {
						key, best = k, n
					}
				}
			}
			if best > 0 {
				break
			}
			t.upCond.Wait()
		}
		t.uploading[key] = true
		blocks := t.snapshotObjectLocked(key)
		t.mu.Unlock()

		t.uploadObject(key, blocks)

		t.mu.Lock()
		delete(t.uploading, key)
		t.mu.Unlock()
	}
}

// snapshotObjectLocked captures object key's dirty blocks (slot,
// version, payload) under t.mu for an upload.
func (t *Tier) snapshotObjectLocked(key uint64) []upBlock {
	var blocks []upBlock
	base := key * uint64(t.opts.ObjectBlocks)
	for i := 0; i < t.opts.ObjectBlocks; i++ {
		no := base + uint64(i)
		if no >= t.span {
			break
		}
		s, ok := t.byBlock[no]
		if !ok || !t.slots[s].dirty {
			continue
		}
		blocks = append(blocks, upBlock{off: i, slot: s,
			version: t.slots[s].version, payload: t.slots[s].payload})
	}
	return blocks
}

// uploadObject performs one object PUT and the post-PUT dirty-bit
// bookkeeping (ordering (2): PUT durable before any dirty bit clears,
// in DRAM or on the map).
func (t *Tier) uploadObject(key uint64, blocks []upBlock) {
	if len(blocks) == 0 {
		return
	}
	objBytes := t.opts.ObjectBlocks * BlockSize
	buf := make([]byte, objBytes)
	if len(blocks) < t.opts.ObjectBlocks && t.store.Contains(key) {
		// Partial rewrite of an existing object: read-modify-write.
		// Clean resident blocks need no overlay — a clean slot always
		// equals the stored (or zero) content.
		t.store.Get(key, buf)
	}
	for i := range blocks {
		dst := buf[blocks[i].off*BlockSize : (blocks[i].off+1)*BlockSize]
		if blocks[i].payload != nil {
			copy(dst, blocks[i].payload)
		} else {
			// Recovered-dirty slot (payload lost in a crash): the L2
			// copy is authoritative, read it back.
			t.dev.ReadBlock(t.dataBlock(blocks[i].slot), dst)
		}
	}
	t.store.Put(key, buf)
	t.dropStaged(key)

	mbs := make(map[uint64]bool)
	cleared := 0
	t.mu.Lock()
	base := key * uint64(t.opts.ObjectBlocks)
	for i := range blocks {
		st := &t.slots[blocks[i].slot]
		no := base + uint64(blocks[i].off)
		if !st.valid || st.block != no || !st.dirty || st.version != blocks[i].version {
			continue // overwritten mid-flight; stays dirty, re-uploads
		}
		st.dirty = false
		st.payload = nil
		t.dirtyCnt--
		cleared++
		if t.dirtyObjs[key]--; t.dirtyObjs[key] == 0 {
			delete(t.dirtyObjs, key)
		}
		mbs[t.metaBlockOf(blocks[i].slot)] = true
	}
	t.writeCond.Broadcast()
	t.mu.Unlock()
	for mb := range mbs {
		t.persistMeta(mb)
	}
	t.uploads.Add(1)
	t.uploadBlocks.Add(int64(cleared))
	t.rec.Inc(metrics.TierUploads)
	t.rec.Add(metrics.TierUploadBlocks, int64(cleared))
	t.rec.Observe(metrics.HistTierUploadObj, t.store.serviceNS(objBytes))
}

// Pause stops (true) or resumes (false) the upload pipeline, for
// measuring foreground cost with the uploader idle. While paused the
// dirty bound is not enforced (backpressure against a stopped consumer
// would deadlock), so dirty state may exceed MaxDirty.
func (t *Tier) Pause(p bool) {
	t.mu.Lock()
	t.paused = p
	t.mu.Unlock()
	t.upCond.Broadcast()
	t.writeCond.Broadcast()
}

// Drain blocks until every dirty block has been durably uploaded. The
// uploader must not be paused.
func (t *Tier) Drain() {
	t.mu.Lock()
	t.draining = true
	t.upCond.Broadcast()
	for t.dirtyCnt > 0 && !t.closing {
		t.writeCond.Wait()
	}
	t.draining = false
	t.mu.Unlock()
}

// Close stops the pipelines without flushing: dirty blocks stay in L2
// under the durable slot map and are queued for upload again on the
// next attach — exactly the crash contract, which is why Crash is an
// alias. In-flight uploads complete (an upload that finished before
// the lights went out is durable; one that did not leaves the dirty
// bit set). Close does not drain; call Drain first for a clean handoff
// with an empty L2 dirty set.
func (t *Tier) Close() {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		return
	}
	t.closing = true
	t.mu.Unlock()
	t.upCond.Broadcast()
	t.writeCond.Broadcast()
	if t.pfCh != nil {
		close(t.pfCh)
	}
	t.wg.Wait()
}

// Crash simulates power loss: stop everything, flush nothing. The
// durable state (L2 device + object store) is what recovery sees.
func (t *Tier) Crash() { t.Close() }

// TierStats is a typed snapshot of the tier's counters and gauges.
type TierStats struct {
	L2Hits       int64
	StagingHits  int64
	L3Fetches    int64
	Prefetches   int64
	PrefetchHits int64
	Uploads      int64 // object PUTs issued by the uploader
	UploadBlocks int64 // dirty blocks those PUTs cleaned
	L2Evicts     int64
	Admits       int64
	AdmitDrops   int64
	Backpressure int64 // writes stalled on the dirty bound

	DataSlots     int // L2 capacity (gauges below are instantaneous)
	DirtySlots    int
	FreeSlots     int
	StagedObjects int
}

// Stats returns the tier's typed counters.
func (t *Tier) Stats() TierStats {
	st := TierStats{
		L2Hits:       t.l2Hits.Load(),
		StagingHits:  t.stagingHits.Load(),
		L3Fetches:    t.l3Fetches.Load(),
		Prefetches:   t.prefetches.Load(),
		PrefetchHits: t.prefetchHits.Load(),
		Uploads:      t.uploads.Load(),
		UploadBlocks: t.uploadBlocks.Load(),
		L2Evicts:     t.l2Evicts.Load(),
		Admits:       t.admits.Load(),
		AdmitDrops:   t.admitDrops.Load(),
		Backpressure: t.backpressure.Load(),
		DataSlots:    t.nslots,
	}
	t.mu.Lock()
	st.DirtySlots = t.dirtyCnt
	st.FreeSlots = len(t.freeList)
	t.mu.Unlock()
	t.smu.Lock()
	st.StagedObjects = len(t.staging)
	t.smu.Unlock()
	return st
}

var _ blockdev.Store = (*Tier)(nil)
