package objstore

import (
	"bytes"
	"fmt"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/sim"
)

type tierRig struct {
	clock *sim.Clock
	rec   *metrics.Recorder
	dev   *blockdev.Device
	store *Store
	tier  *Tier
}

func newTierRig(t *testing.T, span, devBlocks uint64, sprof Profile, opts TierOptions) *tierRig {
	t.Helper()
	r := &tierRig{clock: sim.NewClock(), rec: metrics.NewRecorder()}
	r.dev = blockdev.New(devBlocks, blockdev.Null, r.clock, r.rec)
	r.store = NewStore(sprof, r.clock, r.rec)
	var err error
	r.tier, err = NewTier(span, r.dev, r.store, r.rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// reattach simulates recovery: a fresh Tier over the surviving dev+store.
func (r *tierRig) reattach(t *testing.T, span uint64, opts TierOptions) {
	t.Helper()
	var err error
	r.tier, err = NewTier(span, r.dev, r.store, r.rec, opts)
	if err != nil {
		t.Fatal(err)
	}
}

func blockPattern(no uint64, gen byte) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = byte(no)*3 + byte(i) + gen
	}
	return p
}

func TestTierWriteReadL2(t *testing.T) {
	r := newTierRig(t, 1024, 128, NullStore, TierOptions{ObjectBlocks: 4})
	defer r.tier.Close()
	for no := uint64(0); no < 20; no++ {
		r.tier.WriteBlock(no, blockPattern(no, 0))
	}
	got := make([]byte, BlockSize)
	for no := uint64(0); no < 20; no++ {
		r.tier.ReadBlock(no, got)
		if !bytes.Equal(got, blockPattern(no, 0)) {
			t.Fatalf("block %d corrupted", no)
		}
	}
	if st := r.tier.Stats(); st.L2Hits != 20 {
		t.Fatalf("L2Hits = %d, want 20", st.L2Hits)
	}
}

func TestTierNeverWrittenReadsZero(t *testing.T) {
	r := newTierRig(t, 1024, 128, NullStore, TierOptions{ObjectBlocks: 4})
	defer r.tier.Close()
	got := make([]byte, BlockSize)
	r.tier.ReadBlock(999, got)
	for i := range got {
		if got[i] != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestTierUploadThenEvictReadsFromStore(t *testing.T) {
	r := newTierRig(t, 4096, 68, NullStore, TierOptions{ObjectBlocks: 4, MaxDirty: 16})
	// 68 dev blocks -> 64 data slots. Write 48 blocks, drain uploads,
	// then write 64 more to force eviction of the first set's slots.
	for no := uint64(0); no < 48; no++ {
		r.tier.WriteBlock(no, blockPattern(no, 1))
	}
	r.tier.Drain()
	if st := r.tier.Stats(); st.DirtySlots != 0 || st.Uploads == 0 {
		t.Fatalf("after drain: dirty=%d uploads=%d", st.DirtySlots, st.Uploads)
	}
	for no := uint64(1000); no < 1064; no++ {
		r.tier.WriteBlock(no, blockPattern(no, 2))
	}
	r.tier.Drain()
	st := r.tier.Stats()
	if st.L2Evicts == 0 {
		t.Fatalf("no L2 evictions despite overflow: %+v", st)
	}
	got := make([]byte, BlockSize)
	for no := uint64(0); no < 48; no++ {
		r.tier.ReadBlock(no, got)
		if !bytes.Equal(got, blockPattern(no, 1)) {
			t.Fatalf("block %d lost after eviction", no)
		}
	}
	if st := r.tier.Stats(); st.L3Fetches == 0 {
		t.Fatal("expected L3 fetches for evicted blocks")
	}
	r.tier.Close()
}

func TestTierOverwriteCoherent(t *testing.T) {
	r := newTierRig(t, 1024, 68, NullStore, TierOptions{ObjectBlocks: 4})
	defer r.tier.Close()
	for gen := byte(0); gen < 5; gen++ {
		r.tier.WriteBlock(7, blockPattern(7, gen))
		r.tier.Drain()
		got := make([]byte, BlockSize)
		r.tier.ReadBlock(7, got)
		if !bytes.Equal(got, blockPattern(7, gen)) {
			t.Fatalf("gen %d: stale read", gen)
		}
	}
	// The store must also hold the final generation for the object.
	obj := make([]byte, 4*BlockSize)
	if !r.store.Get(7/4, obj) {
		t.Fatal("object missing from store after drain")
	}
	if !bytes.Equal(obj[(7%4)*BlockSize:(7%4+1)*BlockSize], blockPattern(7, 4)) {
		t.Fatal("store holds stale generation")
	}
}

// Crash with dirty blocks not yet uploaded: the L2 slot map must bring
// them back, and the uploader must push them to the store afterwards.
func TestTierCrashRecoversDirty(t *testing.T) {
	opts := TierOptions{ObjectBlocks: 4, MaxDirty: 64}
	r := newTierRig(t, 4096, 68, NullStore, opts)
	r.tier.Pause(true) // hold uploads so dirty state survives the crash
	for no := uint64(0); no < 32; no++ {
		r.tier.WriteBlock(no, blockPattern(no, 9))
	}
	r.tier.Crash()

	r.reattach(t, 4096, opts)
	if st := r.tier.Stats(); st.DirtySlots != 32 {
		t.Fatalf("recovered %d dirty slots, want 32", st.DirtySlots)
	}
	got := make([]byte, BlockSize)
	for no := uint64(0); no < 32; no++ {
		r.tier.ReadBlock(no, got)
		if !bytes.Equal(got, blockPattern(no, 9)) {
			t.Fatalf("block %d wrong after recovery", no)
		}
	}
	// Recovered-dirty slots lost their DRAM payloads; the uploader must
	// still drain them (re-reading L2) and the store must end current.
	r.tier.Drain()
	if st := r.tier.Stats(); st.DirtySlots != 0 {
		t.Fatalf("drain after recovery left %d dirty", st.DirtySlots)
	}
	obj := make([]byte, 4*BlockSize)
	if !r.store.Get(0, obj) {
		t.Fatal("object 0 missing after recovery drain")
	}
	if !bytes.Equal(obj[:BlockSize], blockPattern(0, 9)) {
		t.Fatal("store stale after recovery drain")
	}
	r.tier.Close()
}

// Crash after uploads completed and slots were evicted/reused: recovery
// must not resurrect stale mappings (ordering 3) and every generation
// of every block must read back current.
func TestTierCrashAfterEvictionKeepsLatest(t *testing.T) {
	opts := TierOptions{ObjectBlocks: 4, MaxDirty: 16}
	r := newTierRig(t, 4096, 20, NullStore, opts) // 19 data slots: constant churn
	for gen := byte(0); gen < 3; gen++ {
		for no := uint64(0); no < 64; no++ {
			r.tier.WriteBlock(no, blockPattern(no, gen))
		}
	}
	r.tier.Crash()
	r.reattach(t, 4096, opts)
	got := make([]byte, BlockSize)
	for no := uint64(0); no < 64; no++ {
		r.tier.ReadBlock(no, got)
		if !bytes.Equal(got, blockPattern(no, 2)) {
			t.Fatalf("block %d not at latest generation after churn+crash", no)
		}
	}
	r.tier.Close()
}

func TestTierAdmitClean(t *testing.T) {
	r := newTierRig(t, 4096, 20, NullStore, TierOptions{ObjectBlocks: 4})
	defer r.tier.Close()
	data := blockPattern(50, 3)
	if !r.tier.AdmitClean(50, data) {
		t.Fatal("admit with free slots failed")
	}
	got := make([]byte, BlockSize)
	r.tier.ReadBlock(50, got)
	if !bytes.Equal(got, data) {
		t.Fatal("admitted block corrupted")
	}
	st := r.tier.Stats()
	if st.Admits != 1 || st.L2Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Re-admitting a resident block is a cheap yes.
	if !r.tier.AdmitClean(50, data) {
		t.Fatal("re-admit refused")
	}
}

func TestTierBackpressureBoundsDirty(t *testing.T) {
	// A slow store throttles uploads; MaxDirty must bound dirty slots
	// while writes keep completing (no deadlock).
	prof := Profile{Name: "slow", RequestNS: 10_000_000, Parallel: 1, MaxInflight: 4}
	r := newTierRig(t, 4096, 68, prof, TierOptions{ObjectBlocks: 4, MaxDirty: 8, UploadWorkers: 1})
	for no := uint64(0); no < 64; no++ {
		r.tier.WriteBlock(no, blockPattern(no, 4))
	}
	st := r.tier.Stats()
	if st.Backpressure == 0 {
		t.Fatalf("expected backpressure stalls: %+v", st)
	}
	r.tier.Drain()
	r.tier.Close()
}

// A sequential cold scan with prefetching must beat the same scan
// without it by overlapping object fetches — the tentpole's headline.
func TestTierPrefetchSpeedsUpColdScan(t *testing.T) {
	const objBlocks = 8
	const span = 8192
	const scan = 1024 // blocks = 128 objects
	prof := Profile{Name: "t", RequestNS: 4_000_000, NSPerMB: 10_000_000,
		Parallel: 16, MaxInflight: 32}
	run := func(pfWorkers int) (int64, TierStats) {
		r := newTierRig(t, span, 36, prof, TierOptions{
			ObjectBlocks: objBlocks, PrefetchWorkers: pfWorkers, StagingObjects: 48})
		defer r.tier.Close()
		obj := make([]byte, objBlocks*BlockSize)
		for k := uint64(0); k < scan/objBlocks; k++ {
			for b := 0; b < objBlocks; b++ {
				copy(obj[b*BlockSize:], blockPattern(k*objBlocks+uint64(b), 6))
			}
			r.store.Put(k, obj)
		}
		start := int64(r.clock.Now())
		got := make([]byte, BlockSize)
		for no := uint64(0); no < scan; no++ {
			r.tier.ReadBlock(no, got)
			if !bytes.Equal(got, blockPattern(no, 6)) {
				t.Fatalf("scan read wrong at %d", no)
			}
		}
		return int64(r.clock.Now()) - start, r.tier.Stats()
	}
	coldNS, _ := run(0)
	warmNS, st := run(6)
	if st.Prefetches == 0 || st.PrefetchHits == 0 {
		t.Fatalf("prefetcher idle: %+v", st)
	}
	speedup := float64(coldNS) / float64(warmNS)
	if speedup < 2 {
		t.Fatalf("prefetch speedup %.2fx < 2x (cold %dns, warm %dns)", speedup, coldNS, warmNS)
	}
}

// Strided (not just sequential) miss patterns must also trigger
// read-ahead.
func TestTierPrefetchStrided(t *testing.T) {
	const objBlocks = 4
	prof := Profile{Name: "t", RequestNS: 1_000_000, Parallel: 8, MaxInflight: 16}
	r := newTierRig(t, 65536, 20, prof, TierOptions{
		ObjectBlocks: objBlocks, PrefetchWorkers: 4, StagingObjects: 64})
	defer r.tier.Close()
	got := make([]byte, BlockSize)
	// Object stride 3: blocks 0, 12, 24, 36...
	for i := uint64(0); i < 64; i++ {
		r.tier.ReadBlock(i*3*objBlocks, got)
	}
	if st := r.tier.Stats(); st.Prefetches == 0 {
		t.Fatalf("strided pattern produced no prefetches: %+v", st)
	}
}

func TestTierRejectsTinyDevice(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	dev := blockdev.New(4, blockdev.Null, clock, rec)
	store := NewStore(NullStore, clock, rec)
	if _, err := NewTier(1024, dev, store, rec, TierOptions{ObjectBlocks: 16}); err == nil {
		t.Fatal("tiny device accepted")
	}
}

func TestMapBlocksGeometry(t *testing.T) {
	for _, tc := range []struct{ dev, want uint64 }{
		{1, 1}, {513, 1}, {514, 2}, {1026, 2}, {1027, 3},
	} {
		if got := MapBlocks(tc.dev); got != tc.want {
			t.Fatalf("MapBlocks(%d) = %d, want %d", tc.dev, got, tc.want)
		}
	}
	// The map must always cover every data slot.
	for dev := uint64(1); dev < 5000; dev += 37 {
		mb := MapBlocks(dev)
		if mb*recsPerMapBlock < dev-mb {
			t.Fatalf("dev %d: %d map blocks cover %d slots, need %d",
				dev, mb, mb*recsPerMapBlock, dev-mb)
		}
	}
}

func TestTierStatsString(t *testing.T) {
	r := newTierRig(t, 1024, 68, NullStore, TierOptions{ObjectBlocks: 4})
	defer r.tier.Close()
	r.tier.WriteBlock(1, blockPattern(1, 0))
	r.tier.Drain()
	_ = fmt.Sprintf("%+v %s", r.tier.Stats(), r.store.String())
}
