package objstore

import (
	"bytes"
	"sync"
	"testing"

	"tinca/internal/metrics"
	"tinca/internal/sim"
)

func testStore(prof Profile) (*Store, *sim.Clock) {
	clock := sim.NewClock()
	return NewStore(prof, clock, metrics.NewRecorder()), clock
}

func TestStoreRoundTrip(t *testing.T) {
	s, _ := testStore(NullStore)
	obj := make([]byte, 3*BlockSize)
	for i := range obj {
		obj[i] = byte(i * 7)
	}
	s.Put(42, obj)
	got := make([]byte, len(obj))
	if !s.Get(42, got) {
		t.Fatal("stored object reported missing")
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("object content corrupted")
	}
	if !s.Contains(42) || s.Contains(43) {
		t.Fatal("Contains wrong")
	}
}

func TestStoreMissZeroFills(t *testing.T) {
	s, _ := testStore(NullStore)
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = 0xff
	}
	if s.Get(7, p) {
		t.Fatal("missing object reported present")
	}
	for i := range p {
		if p[i] != 0 {
			t.Fatal("miss did not zero-fill")
		}
	}
	if st := s.Stats(); st.GetMisses != 1 {
		t.Fatalf("GetMisses = %d", st.GetMisses)
	}
}

func TestStoreShortObjectZeroFillsTail(t *testing.T) {
	s, _ := testStore(NullStore)
	s.Put(1, []byte{9, 9})
	p := make([]byte, 8)
	for i := range p {
		p[i] = 0xff
	}
	if !s.Get(1, p) {
		t.Fatal("missing")
	}
	want := []byte{9, 9, 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(p, want) {
		t.Fatalf("got %v", p)
	}
}

func TestStoreLatencyModel(t *testing.T) {
	prof := Profile{Name: "t", RequestNS: 1000, NSPerMB: 1 << 20, Parallel: 1}
	s, clock := testStore(prof)
	s.Put(1, make([]byte, 1<<20)) // 1000 + 1MiB * 1ns/B = 1000 + 1048576... NSPerMB=1<<20 -> 1<<20 ns per MiB
	want := int64(1000 + 1<<20)
	if got := int64(clock.Now()); got != want {
		t.Fatalf("Put charged %d, want %d", got, want)
	}
}

func TestStoreCostModel(t *testing.T) {
	// PerGBCostNano of 1<<30 makes the transfer price 1 nano-dollar per
	// byte, so the arithmetic is exact at test-friendly sizes.
	prof := Profile{Name: "t", Parallel: 1,
		PutCostNano: 5000, GetCostNano: 400, PerGBCostNano: 1 << 30}
	s, _ := testStore(prof)
	s.Put(1, make([]byte, 4096))
	st := s.Stats()
	want := int64(5000 + 4096)
	if st.CostNano != want {
		t.Fatalf("cost = %d nano-dollars, want %d", st.CostNano, want)
	}
	s.Get(1, make([]byte, 4096))
	st = s.Stats()
	want += 400 + 4096
	if st.CostNano != want {
		t.Fatalf("cost after get = %d, want %d", st.CostNano, want)
	}
	if st.CostDollars() <= 0 {
		t.Fatal("CostDollars not positive")
	}
}

// Concurrent GETs against an overlap-capable profile should advance the
// clock far less than the same GETs issued serially — the request-window
// discount that makes prefetching worth anything.
func TestStoreOverlapDiscount(t *testing.T) {
	const n = 8
	prof := Profile{Name: "t", RequestNS: 1_000_000, Parallel: n, MaxInflight: n}
	serial, clockS := testStore(prof)
	for i := uint64(0); i < n; i++ {
		serial.Get(i, make([]byte, BlockSize))
	}
	serialNS := int64(clockS.Now())

	conc, clockC := testStore(prof)
	var wg sync.WaitGroup
	for i := uint64(0); i < n; i++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			conc.Get(k, make([]byte, BlockSize))
		}(i)
	}
	wg.Wait()
	concNS := int64(clockC.Now())
	if concNS*2 >= serialNS {
		t.Fatalf("no overlap discount: serial %dns, concurrent %dns", serialNS, concNS)
	}
}
