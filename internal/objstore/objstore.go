// Package objstore simulates an S3-like object store and mounts it as a
// capacity tier (L3) behind the block device the NVM cache destages to.
//
// The store itself (this file) is deliberately simple: named objects of
// whole bytes, a per-request latency floor plus per-MB transfer time, a
// bounded in-flight request window with blockdev-style overlap charging,
// and a price model (per-request + per-GB, accumulated in nano-dollars)
// so experiments can report cost-vs-latency tradeoffs, not just latency.
//
// The interesting machinery is the Tier (tier.go): a small block device
// (L2) fronting the store, with a persistent slot map, an async batched
// uploader, a destage-to-object compactor and a sequential/strided
// read-ahead prefetcher. The cache layer above mounts the Tier through
// the blockdev.Store interface and never learns the difference.
package objstore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/sim"
)

// BlockSize re-exports the stack-wide 4KB block unit.
const BlockSize = blockdev.BlockSize

// Profile describes an object store service's latency and price model.
type Profile struct {
	Name string
	// RequestNS is the per-request latency floor (connection + first
	// byte), paid by every GET/PUT regardless of size.
	RequestNS int64
	// NSPerMB is the transfer time per MiB moved in either direction
	// (1e7 ≈ 100MB/s per stream).
	NSPerMB int64
	// Parallel is how many in-flight requests the service overlaps: k
	// concurrent requests each charge serviceNS/min(k, Parallel), the
	// same logical-window model blockdev uses for NCQ. 0 or 1 serializes.
	Parallel int
	// MaxInflight bounds concurrently admitted requests; callers past the
	// bound block until a slot frees. 0 defaults to 2*Parallel (min 1).
	MaxInflight int
	// Price model, in nano-dollars (1e-9 $) so integer accumulation is
	// exact: per PUT request, per GET request, and per GB transferred.
	PutCostNano   int64
	GetCostNano   int64
	PerGBCostNano int64
	Description   string
}

// S3 models a same-region S3-class service: ~4ms to first byte, ~100MB/s
// per stream, 16-way request overlap, $5/million PUTs, $0.40/million GETs,
// $0.02/GB transfer+storage equivalent.
var S3 = Profile{
	Name:          "S3",
	RequestNS:     4_000_000,
	NSPerMB:       10_000_000,
	Parallel:      16,
	MaxInflight:   32,
	PutCostNano:   5_000,
	GetCostNano:   400,
	PerGBCostNano: 20_000_000,
	Description:   "same-region S3-class object store",
}

// NullStore is an infinitely fast, free object store for unit tests.
var NullStore = Profile{Name: "null-objstore", Parallel: 1, MaxInflight: 64,
	Description: "no-cost object store"}

// Store is a simulated object store: uint64-keyed objects of whole bytes.
// All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	objects map[uint64][]byte
	prof    Profile
	clock   *sim.Clock
	rec     *metrics.Recorder

	sem      chan struct{} // MaxInflight admission bound
	inflight atomic.Int64  // overlap window (logical concurrency)

	puts      atomic.Int64
	gets      atomic.Int64
	getMisses atomic.Int64
	bytesUp   atomic.Int64
	bytesDown atomic.Int64
	costNano  atomic.Int64
}

// StoreStats is a typed counter snapshot, cumulative since NewStore.
type StoreStats struct {
	Puts        int64
	Gets        int64
	GetMisses   int64
	BytesUp     int64
	BytesDown   int64
	CostNano    int64 // accumulated price, nano-dollars
	Objects     int64 // objects currently stored
	BytesStored int64
}

// CostDollars converts the accumulated price to dollars.
func (s StoreStats) CostDollars() float64 { return float64(s.CostNano) / 1e9 }

// NewStore creates an empty object store charging the given clock and
// recorder.
func NewStore(prof Profile, clock *sim.Clock, rec *metrics.Recorder) *Store {
	if clock == nil || rec == nil {
		panic("objstore: nil clock or recorder")
	}
	maxIn := prof.MaxInflight
	if maxIn <= 0 {
		maxIn = 2 * prof.Parallel
		if maxIn < 1 {
			maxIn = 1
		}
	}
	return &Store{
		objects: make(map[uint64][]byte),
		prof:    prof,
		clock:   clock,
		rec:     rec,
		sem:     make(chan struct{}, maxIn),
	}
}

// Profile returns the service profile.
func (s *Store) Profile() Profile { return s.prof }

// admit enters the bounded in-flight window; like blockdev.Device.admit,
// it yields once so logically concurrent requests see each other in the
// overlap window even on a single host core.
func (s *Store) admit() {
	s.sem <- struct{}{}
	s.inflight.Add(1)
	if s.prof.Parallel > 1 {
		runtime.Gosched()
	}
}

func (s *Store) release() {
	s.inflight.Add(-1)
	<-s.sem
}

// charge advances the clock by one request's service time, discounted by
// the overlap min(inflight, Parallel) grants (see blockdev.Device.charge
// for why the additive clock makes division the right model).
func (s *Store) charge(ns int64) int64 {
	if q := int64(s.prof.Parallel); q > 1 {
		if k := s.inflight.Load(); k > 1 {
			if k > q {
				k = q
			}
			ns /= k
		}
	}
	s.clock.AdvanceNS(ns)
	return ns
}

func (s *Store) serviceNS(bytes int) int64 {
	return s.prof.RequestNS + int64(bytes)*s.prof.NSPerMB/(1<<20)
}

func (s *Store) bill(reqNano int64, bytes int) {
	nano := reqNano + int64(bytes)*s.prof.PerGBCostNano/(1<<30)
	s.costNano.Add(nano)
	s.rec.Add(metrics.ObjCostNanoDollars, nano)
}

// Put durably stores data as object key. The object is a full replacement
// (no partial writes, like S3); durability is immediate on return, the
// consistency problems the tier studies all live above the store.
func (s *Store) Put(key uint64, data []byte) {
	d := make([]byte, len(data))
	copy(d, data)
	s.admit()
	defer s.release()
	s.mu.Lock()
	s.objects[key] = d
	s.mu.Unlock()
	s.puts.Add(1)
	s.bytesUp.Add(int64(len(data)))
	s.rec.Inc(metrics.ObjPuts)
	s.rec.Add(metrics.ObjBytesUp, int64(len(data)))
	s.bill(s.prof.PutCostNano, len(data))
	s.charge(s.serviceNS(len(data)))
	s.rec.Observe(metrics.HistObjPut, s.serviceNS(len(data)))
}

// Get copies object key into p, reporting false (and zeroing p) when the
// object was never stored. p is sized by the caller; a stored object
// shorter than p zero-fills the remainder. A miss still pays the request
// latency floor and the per-request price — the service has no free way
// to say 404.
func (s *Store) Get(key uint64, p []byte) bool {
	s.admit()
	defer s.release()
	s.mu.Lock()
	obj, ok := s.objects[key]
	n := copy(p, obj)
	s.mu.Unlock()
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	s.gets.Add(1)
	s.rec.Inc(metrics.ObjGets)
	if !ok {
		s.getMisses.Add(1)
		s.rec.Inc(metrics.ObjGetMisses)
		s.bill(s.prof.GetCostNano, 0)
		s.charge(s.prof.RequestNS)
		s.rec.Observe(metrics.HistObjGet, s.prof.RequestNS)
		return false
	}
	s.bytesDown.Add(int64(n))
	s.rec.Add(metrics.ObjBytesDown, int64(n))
	s.bill(s.prof.GetCostNano, n)
	s.charge(s.serviceNS(n))
	s.rec.Observe(metrics.HistObjGet, s.serviceNS(n))
	return true
}

// Contains reports whether object key is stored, without a request (a
// client-side manifest check, free and instantaneous).
func (s *Store) Contains(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[key]
	return ok
}

// Stats returns the store's typed counters.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Puts:      s.puts.Load(),
		Gets:      s.gets.Load(),
		GetMisses: s.getMisses.Load(),
		BytesUp:   s.bytesUp.Load(),
		BytesDown: s.bytesDown.Load(),
		CostNano:  s.costNano.Load(),
	}
	s.mu.Lock()
	st.Objects = int64(len(s.objects))
	for _, o := range s.objects {
		st.BytesStored += int64(len(o))
	}
	s.mu.Unlock()
	return st
}

func (s *Store) String() string {
	st := s.Stats()
	return fmt.Sprintf("objstore(%s): %d objects, %d puts, %d gets, $%.6f",
		s.prof.Name, st.Objects, st.Puts, st.Gets, st.CostDollars())
}
