package exp

import (
	"fmt"

	"tinca/internal/pmem"
	"tinca/internal/sim"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// Recoverability reproduces the Section 5.1 recoverability validation:
// repeatedly run a workload, fail the system at a random point (the
// "plugging out the power cable" test — the crash image keeps a random
// subset of un-flushed cache lines), recover, and verify consistency with
// fsck, cache-invariant checks and a durability probe. The paper reports
// "crash consistency is never impaired"; any violation fails the trial.
func Recoverability(o Options) (*Table, error) {
	o = o.withDefaults()
	trials := o.scaled(40, 8)
	t := NewTable("Section 5.1: recoverability torture test (Tinca)",
		"trials", "crashes injected", "recoveries OK", "fsck clean", "invariants clean", "durability OK")

	rng := sim.NewRand(o.Seed + 99)
	crashes, recovered, fsckOK, invOK, durOK := 0, 0, 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		s, err := buildStack(stack.Tinca, func(c *stack.Config) {
			c.NVMBytes = 4 << 20
			c.FSBlocks = 4096
		})
		if err != nil {
			return nil, err
		}
		// Marker file committed before the crash window: must survive.
		if err := s.FS.WriteFile("/marker", []byte("durable")); err != nil {
			return nil, err
		}
		s.Mem.ArmCrash(int64(rng.Intn(40000)))
		crashed, _ := pmem.CatchCrash(func() {
			_, _ = workload.RunFilebench(s.FS, workload.FilebenchConfig{
				Profile: workload.Varmail, Files: 24, FileBytes: 16 << 10,
				Ops: 400, Seed: o.Seed + int64(trial),
			})
		})
		if !crashed {
			s.Mem.DisarmCrash()
		}
		crashes++
		s.Crash(rng, rng.Float64())
		if err := s.Remount(); err != nil {
			continue
		}
		recovered++
		if err := s.FS.Check(); err == nil {
			fsckOK++
		}
		if err := s.TCache.CheckInvariants(); err == nil {
			invOK++
		}
		if data, err := s.FS.ReadFile("/marker"); err == nil && string(data) == "durable" {
			durOK++
		}
	}
	t.AddRow(trials, crashes, recovered, fsckOK, invOK, durOK)
	if recovered != crashes || fsckOK != crashes || invOK != crashes || durOK != crashes {
		t.Note = "FAILURES DETECTED — crash consistency impaired"
		return t, fmt.Errorf("exp: recoverability failures: %d/%d recovered, %d fsck, %d invariants, %d durable",
			recovered, crashes, fsckOK, invOK, durOK)
	}
	t.Note = "paper: 'each time Tinca can recover and crash consistency is never impaired'"
	return t, nil
}
