package exp

import (
	"time"

	"tinca/internal/metrics"
	"tinca/internal/stack"
)

// measured is the delta of counters and simulated time over one measured
// phase (layout/load phases are excluded by snapshotting after them).
type measured struct {
	snap metrics.Snapshot
	wall time.Duration
}

// measure runs fn on the stack and captures the counter/time delta.
func measure(s *stack.Stack, fn func() error) (measured, error) {
	snap0 := s.Rec.Snapshot()
	t0 := s.Clock.Now()
	err := fn()
	return measured{snap: s.Rec.Snapshot().Sub(snap0), wall: s.Clock.Now() - t0}, err
}

// perSecond converts a count over the measured wall time to a rate.
func (m measured) perSecond(count int64) float64 {
	if m.wall <= 0 {
		return 0
	}
	return float64(count) / m.wall.Seconds()
}

// per divides counter name by ops.
func (m measured) per(name string, ops int64) float64 {
	return m.snap.PerOp(name, ops)
}

// buildStack constructs a stack of the given kind with experiment-default
// sizing, letting mod override any field.
func buildStack(kind stack.Kind, mod func(*stack.Config)) (*stack.Stack, error) {
	cfg := stack.Config{
		Kind:     kind,
		NVMBytes: 16 << 20,
		FSBlocks: 16384, // 64MB file system
		// Both stacks batch operations into transactions the way JBD2's
		// 5-second commit window does; without batching the journal's
		// descriptor/commit overhead dominates Classic unrealistically.
		GroupCommitBlocks: 32,
		// A journal small relative to the written volume, as in any
		// steady-state system (the paper writes 20GB+ against a 128MB
		// journal): checkpointing — the second write of the double-write
		// pair — runs continuously.
		JournalBlocks: 512,
	}
	if mod != nil {
		mod(&cfg)
	}
	return stack.New(cfg)
}

// ratio returns a/b guarding division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// pctFewer reports how many percent fewer a is than b.
func pctFewer(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (1 - a/b) * 100
}
