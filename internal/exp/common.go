package exp

import (
	"time"

	"tinca/internal/metrics"
	"tinca/internal/stack"
)

// measured is the delta of counters and simulated time over one measured
// phase (layout/load phases are excluded by snapshotting after them).
type measured struct {
	snap metrics.Snapshot
	wall time.Duration
}

// measure runs fn on the stack and captures the counter/time delta.
func measure(s *stack.Stack, fn func() error) (measured, error) {
	snap0 := s.Rec.Snapshot()
	t0 := s.Clock.Now()
	err := fn()
	return measured{snap: s.Rec.Snapshot().Sub(snap0), wall: s.Clock.Now() - t0}, err
}

// perSecond converts a count over the measured wall time to a rate.
func (m measured) perSecond(count int64) float64 {
	if m.wall <= 0 {
		return 0
	}
	return float64(count) / m.wall.Seconds()
}

// per divides counter name by ops.
func (m measured) per(name string, ops int64) float64 {
	return m.snap.PerOp(name, ops)
}

// Observability is applied to every stack buildStack constructs. The
// tincabench flags -observe/-trace-out/-metrics-addr set it before any
// experiment runs; experiments execute sequentially, so the package-level
// value is not raced. Drivers that assemble devices directly (the
// commit-phase breakdown) manage their own observability.
var Observability struct {
	// Observe enables latency histograms in every stack layer.
	Observe bool
	// Tracer, when non-nil, is shared by every stack (implies Observe).
	Tracer *metrics.Tracer
	// Publish registers each stack's recorder (under its kind name) in
	// the process-wide Prometheus registry, so a live -metrics-addr
	// endpoint scrapes whatever run is in flight.
	Publish bool
}

// buildStack constructs a stack of the given kind with experiment-default
// sizing, letting mod override any field.
func buildStack(kind stack.Kind, mod func(*stack.Config)) (*stack.Stack, error) {
	cfg := stack.Config{
		Kind:     kind,
		NVMBytes: 16 << 20,
		FSBlocks: 16384, // 64MB file system
		// Both stacks batch operations into transactions the way JBD2's
		// 5-second commit window does; without batching the journal's
		// descriptor/commit overhead dominates Classic unrealistically.
		GroupCommitBlocks: 32,
		// A journal small relative to the written volume, as in any
		// steady-state system (the paper writes 20GB+ against a 128MB
		// journal): checkpointing — the second write of the double-write
		// pair — runs continuously.
		JournalBlocks: 512,
	}
	cfg.Observe = Observability.Observe
	cfg.Tracer = Observability.Tracer
	if mod != nil {
		mod(&cfg)
	}
	s, err := stack.New(cfg)
	if err == nil && Observability.Publish {
		metrics.Publish(kind.String(), s.Rec)
	}
	return s, err
}

// ratio returns a/b guarding division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// pctFewer reports how many percent fewer a is than b.
func pctFewer(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (1 - a/b) * 100
}
