package exp

import (
	"fmt"
	"sync"

	"tinca/internal/blockdev"
	"tinca/internal/core"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// WriterScaling is the "fig: writer scaling" bench: commit throughput of
// disjoint-shard committers on the single-ring layout (CommitRings=1)
// versus the per-shard multi-ring layout (CommitRings=16). Worker w
// rewrites only blocks congruent to w mod 16, so at R=16 every worker
// owns a private ring and the seals proceed without any shared lock; the
// NVM device is provisioned with 16 persist banks (pmem.Banks) for both
// configurations, so the single ring is limited by the commit protocol's
// serialization — not by an artificially serial device — and the row
// ratio isolates what the multi-ring split buys.
//
// The headline metric writer_speedup_8 (R=16 over R=1 throughput at 8
// committers) is CI-gated: tincabench -fig writerscaling
// -min-writer-speedup 4.
func WriterScaling(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: writer scaling — disjoint-shard commit throughput, single ring vs CommitRings=16",
		"goroutines", "R=1 commits/s", "R=16 commits/s", "speedup")

	const blocksPerTxn = 4
	total := o.scaled(1200, 160)

	run := func(workers, rings int) (perSec float64, err error) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(16<<20, pmem.Banks(pmem.NVDIMM, 16), clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		c, err := core.Open(mem, disk, core.Options{
			GroupCommit: core.GroupCommit{MaxBatch: 8, MaxWaitNS: 200_000},
			CommitRings: rings,
		})
		if err != nil {
			return 0, err
		}
		block := make([]byte, core.BlockSize)
		t0 := clock.Now()
		var wg sync.WaitGroup
		per := total / workers
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					txn := c.Begin()
					// Disjoint per-worker blocks: w, w+16, w+32, ... — all
					// in shard (and ring, at R=16) w mod 16.
					for b := 0; b < blocksPerTxn; b++ {
						txn.Write(uint64(w%16+16*b), block)
					}
					if err := txn.Commit(); err != nil {
						panic(fmt.Sprintf("worker %d: %v", w, err))
					}
				}
			}()
		}
		wg.Wait()
		elapsed := (clock.Now() - t0).Seconds()
		if err := c.Close(); err != nil {
			return 0, err
		}
		return float64(per*workers) / elapsed, nil
	}

	for _, workers := range []int{1, 2, 4, 8, 16} {
		single, err := run(workers, 1)
		if err != nil {
			return nil, err
		}
		multi, err := run(workers, 16)
		if err != nil {
			return nil, err
		}
		speedup := ratio(multi, single)
		t.AddRow(workers, single, multi, fmt.Sprintf("%.2fx", speedup))
		t.SetMetric(fmt.Sprintf("writer_speedup_%d", workers), speedup)
		if workers == 8 {
			t.SetMetric("r1_commits_per_sec_8", single)
			t.SetMetric("r16_commits_per_sec_8", multi)
		}
	}
	t.Note = "disjoint shards: one private ring per committer at R=16, so seals overlap across the device's persist banks instead of queueing on the single ring's lock"
	return t, nil
}
