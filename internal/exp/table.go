// Package exp contains one driver per table and figure of the paper's
// evaluation (Section 5). Each driver assembles the stacks, runs the
// workload of Table 2 (scaled down so it completes in seconds), and
// returns a Table with the same rows/series the paper reports, plus the
// key ratios EXPERIMENTS.md compares against the published shape.
package exp

import (
	"fmt"
	"strings"
)

// Options tune every experiment driver.
type Options struct {
	// Scale multiplies workload sizes; 1.0 is the default documented in
	// EXPERIMENTS.md, smaller values give quick smoke runs (tests use
	// 0.1–0.25).
	Scale float64
	// Seed feeds every generator for reproducibility.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	return o
}

// scaled returns n*Scale, at least min.
func (o Options) scaled(n int, min int) int {
	v := int(float64(n) * o.Scale)
	if v < min {
		v = min
	}
	return v
}

// Table is a printable result table.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
	// Metrics holds the figure's headline quantities in machine-readable
	// form (ops/s, simulated ns/op, hit rates, ...) for the BENCH_core.json
	// export; nil when a driver sets none.
	Metrics map[string]float64
}

// SetMetric records one machine-readable headline quantity.
func (t *Table) SetMetric(name string, v float64) {
	if t.Metrics == nil {
		t.Metrics = make(map[string]float64)
	}
	t.Metrics[name] = v
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for i, c := range t.Cols {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Cols {
		fmt.Fprintf(&b, "%s  ", strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%s  ", c)
			}
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, c := range t.Cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Cell returns row r, column named col (for assertions in tests).
func (t *Table) Cell(r int, col string) string {
	for i, c := range t.Cols {
		if c == col {
			return t.Rows[r][i]
		}
	}
	panic("exp: no column " + col)
}
