package exp

import (
	"fmt"

	"tinca/internal/pmem"
	"tinca/internal/sim"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// RecoveryBreakdown produces "fig: recovery breakdown" — the §4.5 per-
// phase decomposition the tentpole's RecoveryStats instrumentation
// enables. For each cache size, fill the cache with a deterministic fio
// write stream, then crash inside a forced group seal twice: once in the
// log-append half (recovery must revoke the stray, un-switched log
// entries — undo) and once after the Head flip (recovery completes the
// interrupted role switch — redo). The crash boundary is a fixed fraction
// of the seal's persist-op count, measured on an identically built,
// identically filled throwaway stack, so both trials land in the intended
// phase at every size and the table is bit-identical run to run (the
// clock is simulated; the flight recorder is on and charges nothing).
func RecoveryBreakdown(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: recovery breakdown (Tinca §4.5, per phase)",
		"NVM size", "mode", "capacity", "resident", "ring span",
		"scan", "redo", "undo", "rebuild", "total",
		"scanned", "redone", "undone", "stray")

	build := func(nvmMB int) (*stack.Stack, error) {
		s, err := buildStack(stack.Tinca, func(c *stack.Config) {
			c.NVMBytes = nvmMB << 20
			c.FlightRecorder = true
		})
		if err != nil {
			return nil, err
		}
		// Fill with a write-heavy stream sized past the smallest cache so
		// the entry table is well populated when the crash lands.
		if _, err := workload.RunFio(s.FS, workload.FioConfig{
			FileBytes: 8 << 20, ReadPct: 0, Ops: o.scaled(1500, 200), Seed: o.Seed,
		}); err != nil {
			return nil, err
		}
		return s, nil
	}
	// victim forces a seal with fresh dirty blocks: the Sync drains the
	// group committer, so the armed crash lands inside the seal's persist
	// sequence rather than in buffered DRAM state.
	victim := func(s *stack.Stack) {
		_ = s.FS.WriteFile("/crash-victim", make([]byte, 32<<10))
		_ = s.FS.Sync()
	}

	for _, nvmMB := range []int{8, 16, 32} {
		// Measure the victim seal's persist-op count on a throwaway stack;
		// the crash trials below cut it at fixed fractions (0.70 = mid
		// log append, before the Head flip; 0.85 = mid role switch).
		probe, err := build(nvmMB)
		if err != nil {
			return nil, err
		}
		before := probe.Mem.PersistOps()
		victim(probe)
		sealOps := probe.Mem.PersistOps() - before

		for _, mode := range []struct {
			name string
			frac float64
		}{{"undo", 0.70}, {"redo", 0.85}} {
			s, err := build(nvmMB)
			if err != nil {
				return nil, err
			}
			capacity := s.TCache.Capacity()
			s.Mem.ArmCrash(int64(mode.frac * float64(sealOps)))
			if crashed, _ := pmem.CatchCrash(func() { victim(s) }); !crashed {
				return nil, fmt.Errorf("exp: %dMB %s trial did not crash inside the seal (%d ops)", nvmMB, mode.name, sealOps)
			}
			s.Crash(sim.NewRand(o.Seed), 0.5)
			if err := s.Remount(); err != nil {
				return nil, err
			}
			rs := s.TCache.RecoveryStats()
			if !rs.Ran {
				return nil, fmt.Errorf("exp: remount at %dMB did not run recovery", nvmMB)
			}
			us := func(ns int64) string { return fmt.Sprintf("%.1fµs", float64(ns)/1000) }
			t.AddRow(fmt.Sprintf("%dMB", nvmMB), mode.name, capacity, rs.Resident, rs.RingSpan,
				us(rs.ScanNS), us(rs.RedoNS), us(rs.UndoNS), us(rs.RebuildNS), us(rs.TotalNS),
				rs.EntriesScanned, rs.EntriesRedone, rs.EntriesUndone, rs.StrayRevoked)

			prefix := fmt.Sprintf("recovery_%dmb_%s_", nvmMB, mode.name)
			t.SetMetric(prefix+"total_ns", float64(rs.TotalNS))
			t.SetMetric(prefix+"scan_ns", float64(rs.ScanNS))
			t.SetMetric(prefix+"redo_ns", float64(rs.RedoNS))
			t.SetMetric(prefix+"undo_ns", float64(rs.UndoNS))
			t.SetMetric(prefix+"rebuild_ns", float64(rs.RebuildNS))
			t.SetMetric(prefix+"entries_scanned", float64(rs.EntriesScanned))
		}
	}
	t.Note = "scan bulk-loads the entry table and dominates (O(capacity) without a checkpoint; see fig: recovery scale); the stray sweep and rebuild run on the DRAM mirror and charge nothing; redo touches only the interrupted seal's blocks (flight recorder on: identical numbers with it off)"
	return t, nil
}
