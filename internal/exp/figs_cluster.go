package exp

import (
	"fmt"

	"tinca/internal/cluster"
	"tinca/internal/metrics"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// clusterNodeConfig is the per-node stack used in the cluster figures.
func clusterNodeConfig(kind stack.Kind) stack.Config {
	return stack.Config{
		Kind: kind,
		// Small per-node cache against a larger written volume keeps
		// replacement active, preserving the paper's 8GB-cache vs
		// 100GB-dataset pressure ratio.
		NVMBytes:          4 << 20,
		FSBlocks:          16384,
		GroupCommitBlocks: 32,
		JournalBlocks:     512,
	}
}

// Fig10 reproduces Figure 10: TeraGen on the HDFS-like cluster (4 data
// nodes) with 1, 2 and 3 replicas: execution time, clflush per MB
// generated, disk blocks written per MB generated.
func Fig10(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 10: TeraGen on HDFS (4 data nodes), Tinca vs Classic",
		"replicas", "system", "exec time (sim)", "time saved %", "clflush/MB", "clflush fewer %", "disk blks/MB", "disk fewer %")
	t.Note = "paper shape: Tinca 29%/54%/60% faster at 1/2/3 replicas; gap widens with replicas; ~80% fewer clflush, ~38% fewer disk blocks at R=3"

	type res struct {
		secs    float64
		clflush float64
		disk    float64
	}
	run := func(kind stack.Kind, replicas int) (res, error) {
		c, err := cluster.New(cluster.Config{
			Nodes: 4, Replicas: replicas, Node: clusterNodeConfig(kind),
		})
		if err != nil {
			return res{}, err
		}
		h := cluster.NewHDFS(c, cluster.HDFSOptions{ChunkBytes: 1 << 20})
		snap0 := c.Snapshot()
		t0 := c.Wall.Now()
		cnt, err := workload.RunTeraGen(h, workload.TeraGenConfig{
			Rows: int64(o.scaled(250000, 25000)), Seed: o.Seed,
		})
		if err != nil {
			return res{}, err
		}
		d := c.Snapshot().Sub(snap0)
		mb := float64(cnt.Bytes) / (1 << 20)
		return res{
			secs:    (c.Wall.Now() - t0).Seconds(),
			clflush: float64(d.Get(metrics.NVMCLFlush)) / mb,
			disk:    float64(d.Get(metrics.DiskBlocksWrite)) / mb,
		}, nil
	}

	for _, replicas := range []int{1, 2, 3} {
		tinca, err := run(stack.Tinca, replicas)
		if err != nil {
			return nil, err
		}
		classic, err := run(stack.Classic, replicas)
		if err != nil {
			return nil, err
		}
		t.AddRow(replicas, "Classic", fmt.Sprintf("%.2fs", classic.secs), "-",
			classic.clflush, "-", classic.disk, "-")
		t.AddRow(replicas, "Tinca", fmt.Sprintf("%.2fs", tinca.secs),
			pctFewer(tinca.secs, classic.secs),
			tinca.clflush, pctFewer(tinca.clflush, classic.clflush),
			tinca.disk, pctFewer(tinca.disk, classic.disk))
	}
	return t, nil
}

// Fig11 reproduces Figure 11: Filebench (fileserver, webproxy, varmail)
// on the GlusterFS-like replicated volume (replica 2, 4 nodes): file
// operations per second, clflush per op, disk blocks per op.
func Fig11(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 11: Filebench on GlusterFS (replica 2), Tinca vs Classic",
		"workload", "system", "OPs/s", "OPs ratio", "clflush/op", "clflush fewer %", "disk blks/op", "disk fewer %")
	t.Note = "paper shape: Tinca 1.8x (fileserver), 1.2x (webproxy), 1.5x (varmail) OPs/s"

	type res struct {
		ops     float64
		clflush float64
		disk    float64
	}
	run := func(kind stack.Kind, prof workload.Profile) (res, error) {
		c, err := cluster.New(cluster.Config{
			Nodes: 4, Replicas: 2, Node: clusterNodeConfig(kind),
		})
		if err != nil {
			return res{}, err
		}
		v := cluster.NewVolume(c)
		snap0 := c.Snapshot()
		t0 := c.Wall.Now()
		cnt, err := workload.RunFilebench(v, workload.FilebenchConfig{
			Profile: prof, Files: 160, FileBytes: 48 << 10, IOBytes: 16 << 10,
			Ops: o.scaled(2000, 200), Seed: o.Seed,
		})
		if err != nil {
			return res{}, err
		}
		d := c.Snapshot().Sub(snap0)
		wall := (c.Wall.Now() - t0).Seconds()
		return res{
			ops:     float64(cnt.FileOps) / wall,
			clflush: float64(d.Get(metrics.NVMCLFlush)) / float64(cnt.FileOps),
			disk:    float64(d.Get(metrics.DiskBlocksWrite)) / float64(cnt.FileOps),
		}, nil
	}

	for _, prof := range []workload.Profile{workload.Fileserver, workload.Webproxy, workload.Varmail} {
		tinca, err := run(stack.Tinca, prof)
		if err != nil {
			return nil, err
		}
		classic, err := run(stack.Classic, prof)
		if err != nil {
			return nil, err
		}
		t.AddRow(prof.String(), "Classic", classic.ops, "1.0", classic.clflush, "-", classic.disk, "-")
		t.AddRow(prof.String(), "Tinca", tinca.ops,
			fmt.Sprintf("%.2fx", ratio(tinca.ops, classic.ops)),
			tinca.clflush, pctFewer(tinca.clflush, classic.clflush),
			tinca.disk, pctFewer(tinca.disk, classic.disk))
	}
	return t, nil
}
