package exp

import (
	"fmt"

	"tinca/internal/metrics"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// Fig13 reproduces Figure 13: the number of data blocks per committed
// transaction over the run, for the fileserver and webproxy workloads,
// plus the worst-case COW spatial overhead of Section 5.4.3 (the paper:
// fileserver ~2x webproxy; worst-case overhead ~0.4% of the cache).
func Fig13(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 13: data blocks per committed transaction (group commit)",
		"window", "fileserver blks/txn", "webproxy blks/txn", "fs/wp ratio")

	const windows = 8
	series := func(prof workload.Profile) ([]float64, float64, error) {
		s, err := buildStack(stack.Tinca, func(c *stack.Config) {
			// JBD2-style time-window batching: blocks per transaction then
			// reflects each workload's write rate, as in the paper.
			c.GroupCommitBlocks = 1 << 20
			c.GroupCommitIntervalNS = 300_000 // JBD2-like commit window (scaled)
		})
		if err != nil {
			return nil, 0, err
		}
		opsPerWindow := o.scaled(400, 50)
		out := make([]float64, 0, windows)
		maxPerTxn := 0.0
		for w := 0; w < windows; w++ {
			m, err := measure(s, func() error {
				_, e := workload.RunFilebench(s.FS, workload.FilebenchConfig{
					Profile: prof, Dir: fmt.Sprintf("/fb-window%d", w),
					Files: 64, FileBytes: 32 << 10,
					Ops: opsPerWindow, Seed: o.Seed + int64(w),
				})
				return e
			})
			if err != nil {
				return nil, 0, err
			}
			commits := m.snap.Get(metrics.TxnCommit)
			blocks := m.snap.Get(metrics.TxnBlocks)
			v := 0.0
			if commits > 0 {
				v = float64(blocks) / float64(commits)
			}
			if v > maxPerTxn {
				maxPerTxn = v
			}
			out = append(out, v)
		}
		return out, maxPerTxn, nil
	}

	fsrv, fsMax, err := series(workload.Fileserver)
	if err != nil {
		return nil, err
	}
	wp, _, err := series(workload.Webproxy)
	if err != nil {
		return nil, err
	}
	for w := 0; w < windows; w++ {
		t.AddRow(w+1, fsrv[w], wp[w], ratio(fsrv[w], wp[w]))
	}
	// Section 5.4.3: worst case every block in a transaction is a write
	// hit, needing two NVM blocks; overhead relative to the cache size.
	cacheBlocks := float64((16 << 20) / 4096)
	t.Note = fmt.Sprintf(
		"paper shape: fileserver ≈2x webproxy. Worst-case COW overhead (5.4.3): max %d blks/txn ⇒ %.2f%% of the NVM cache",
		int(fsMax), fsMax/cacheBlocks*100)
	return t, nil
}

// Table1 prints the NVM technology characteristics the simulator encodes
// (Table 1 of the paper).
func Table1() *Table {
	t := NewTable("Table 1: NVM technology profiles (as simulated)",
		"technology", "line read ns", "line flush ns", "fence ns")
	for _, p := range []struct {
		name                 string
		read, flush, fenceNS int64
	}{
		{"DRAM/NVDIMM", 50, 100, 50},
		{"STT-RAM", 100, 150, 50},
		{"PCM", 100, 280, 50},
	} {
		t.AddRow(p.name, p.read, p.flush, p.fenceNS)
	}
	t.Note = "per 64B cache line; PCM/STT-RAM add the paper's injected delays (write +180ns/+50ns, read +50ns) to the DRAM base"
	return t
}

// Table2 prints the benchmark configurations (Table 2 of the paper) and
// the scaled-down parameters this reproduction uses.
func Table2() *Table {
	t := NewTable("Table 2: benchmarks (paper parameters -> scaled reproduction)",
		"benchmark", "R/W ratio", "request", "paper dataset", "repro dataset")
	t.AddRow("Fio", "3/7, 5/5, 7/3", "4KB", "20GB", "32MB (2x NVM cache)")
	t.AddRow("TPC-C (HammerDB)", "typical", "typical", "32GB, 350 WH", "2 WH, 120 cust/dist")
	t.AddRow("TeraGen (HDFS)", "all writes", "100B rows", "100GB", "~12MB rows x replicas")
	t.AddRow("Filebench fileserver", "1/2", "16KB", "51.2GB", "64 files x 32KB")
	t.AddRow("Filebench webproxy", "5/1", "16KB", "32GB", "64 files x 32KB")
	t.AddRow("Filebench varmail", "1/1", "16KB", "32GB", "64 files x 32KB")
	t.Note = "shapes are size-ratio driven; the cache:dataset ratio is preserved"
	return t
}
