package exp

import (
	"fmt"
	"sync"

	"tinca/internal/blockdev"
	"tinca/internal/core"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// GroupCommitScaling is the "fig: group-commit scaling" bench: commit
// throughput of the transactional cache at 1/2/4/8 concurrent committers.
// Every committer repeatedly rewrites the same hot block set, so
// concurrently arriving commits coalesce into one ring-buffer seal: the
// batch absorbs duplicate blocks into a single NVM write and amortizes
// the ordering fences and the Head persist over the whole group.
// Throughput is simulated-time work per acknowledged commit, so the row
// ratios isolate the protocol savings from host scheduling noise.
func GroupCommitScaling(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: group-commit scaling — commit throughput vs concurrent committers",
		"goroutines", "commits/s (sim)", "speedup", "avg batch", "absorbed/commit")

	const hotBlocks = 4 // every transaction rewrites these
	total := o.scaled(1200, 160)

	run := func(workers int) (perSec, avgBatch, absorbed float64, err error) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(16<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		c, err := core.Open(mem, disk, core.Options{
			GroupCommit: core.GroupCommit{MaxBatch: 8, MaxWaitNS: 200_000},
		})
		if err != nil {
			return 0, 0, 0, err
		}
		block := make([]byte, core.BlockSize)
		t0 := clock.Now()
		var wg sync.WaitGroup
		per := total / workers
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					txn := c.Begin()
					for b := uint64(0); b < hotBlocks; b++ {
						txn.Write(b, block)
					}
					if err := txn.Commit(); err != nil {
						panic(fmt.Sprintf("worker %d: %v", w, err))
					}
				}
			}()
		}
		wg.Wait()
		elapsed := (clock.Now() - t0).Seconds()
		st := c.Stats()
		if err := c.Close(); err != nil {
			return 0, 0, 0, err
		}
		commits := float64(per * workers)
		return commits / elapsed, st.AvgGroupSize(), float64(st.AbsorbedBlocks) / commits, nil
	}

	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		perSec, avgBatch, absorbed, err := run(workers)
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			base = perSec
		}
		t.AddRow(workers, perSec, fmt.Sprintf("%.2fx", perSec/base), avgBatch, absorbed)
	}
	t.Note = "one seal per batch: duplicate hot blocks are absorbed and the fences/Head persist amortize, so per-commit NVM work shrinks as committers pile up"
	return t, nil
}
