package exp

import (
	"fmt"
	"sync"

	"tinca/internal/blockdev"
	"tinca/internal/classic"
	"tinca/internal/core"
	"tinca/internal/jbd"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// CommitPhaseBreakdown is the "fig: commit-phase breakdown" bench: where
// does a commit's time actually go, per pipeline phase, for Tinca vs the
// Classic journal at 1/4/8 concurrent committers.
//
// Tinca's commit is the five-phase persist pipeline of Section 4.4 (plus
// the leader-election wait and batch absorption of group commit); Classic's
// is JBD2's descriptor+log write, commit block, and checkpoint. Both runs
// enable the observability layer (simulated-clock phase histograms), so
// the p50/p99 columns are the same simulated nanoseconds the throughput
// figures integrate — and the share column shows which phase amortizes as
// committers pile up (Tinca's fences and Head persist) and which cannot
// (Classic's serialized journal writes).
func CommitPhaseBreakdown(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: commit-phase breakdown — per-phase commit time, Tinca vs Classic",
		"system", "committers", "phase", "count", "p50", "p99", "share")

	const hotBlocks = 4
	total := o.scaled(1200, 160)

	// Phase rows per system: histogram name plus the label printed in the
	// table. The final entry is the whole-commit aggregate; its share cell
	// is left blank (it is the denominator's superset, not a slice).
	tincaPhases := []struct{ hist, label string }{
		{metrics.HistCommitWait, "wait"},
		{metrics.HistCommitAbsorb, "absorb"},
		{metrics.HistCommitData, "data"},
		{metrics.HistCommitEntries, "entries"},
		{metrics.HistCommitRing, "ring+head"},
		{metrics.HistCommitSwitch, "switch"},
		{metrics.HistCommitTail, "tail+fence"},
	}
	classicPhases := []struct{ hist, label string }{
		{metrics.HistJBDLog, "desc+log"},
		{metrics.HistJBDCommitBlk, "commit blk"},
		{metrics.HistJBDCheckpoint, "checkpoint"},
	}

	emit := func(system string, workers int, rec *metrics.Recorder,
		phases []struct{ hist, label string }, totalHist string) {
		var denom int64
		snaps := make([]metrics.HistSnapshot, len(phases))
		for i, p := range phases {
			snaps[i] = rec.HistSnapshot(p.hist)
			denom += snaps[i].Sum
		}
		for i, p := range phases {
			s := snaps[i]
			if s.Count == 0 {
				continue
			}
			t.AddRow(system, workers, p.label, s.Count,
				fmtDurNS(s.Quantile(0.50)), fmtDurNS(s.Quantile(0.99)),
				fmt.Sprintf("%.1f%%", 100*ratio(float64(s.Sum), float64(denom))))
		}
		if s := rec.HistSnapshot(totalHist); s.Count > 0 {
			t.AddRow(system, workers, "whole commit", s.Count,
				fmtDurNS(s.Quantile(0.50)), fmtDurNS(s.Quantile(0.99)), "")
		}
	}

	runTinca := func(workers int) (*metrics.Recorder, error) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(16<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		c, err := core.Open(mem, disk, core.Options{
			GroupCommit: core.GroupCommit{MaxBatch: 8, MaxWaitNS: 200_000},
			Observe:     true,
		})
		if err != nil {
			return nil, err
		}
		block := make([]byte, core.BlockSize)
		var wg sync.WaitGroup
		per := total / workers
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					txn := c.Begin()
					for b := uint64(0); b < hotBlocks; b++ {
						txn.Write(b, block)
					}
					if err := txn.Commit(); err != nil {
						panic(fmt.Sprintf("worker %d: %v", w, err))
					}
				}
			}()
		}
		wg.Wait()
		return rec, c.Close()
	}

	runClassic := func(workers int) (*metrics.Recorder, error) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(16<<20, pmem.NVDIMM, clock, rec)
		mem.Observe(true)
		const dataBlocks = 16384
		disk := blockdev.New(dataBlocks+512, blockdev.Null, clock, rec)
		cc, err := classic.Open(mem, disk, classic.Options{JournalBoundary: dataBlocks})
		if err != nil {
			return nil, err
		}
		j, err := jbd.Open(cc, rec, jbd.Options{
			Start:   dataBlocks,
			Blocks:  512,
			Observe: true,
			Clock:   clock,
		})
		if err != nil {
			return nil, err
		}
		block := make([]byte, jbd.BlockSize)
		var wg sync.WaitGroup
		per := total / workers
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				updates := make([]jbd.Update, hotBlocks)
				for b := range updates {
					updates[b] = jbd.Update{No: uint64(b), Data: block}
				}
				for i := 0; i < per; i++ {
					if err := j.CommitTxn(jbd.Txn{Updates: updates}); err != nil {
						panic(fmt.Sprintf("worker %d: %v", w, err))
					}
				}
			}()
		}
		wg.Wait()
		if err := j.Close(); err != nil {
			return nil, err
		}
		return rec, cc.Close()
	}

	for _, workers := range []int{1, 4, 8} {
		rec, err := runTinca(workers)
		if err != nil {
			return nil, err
		}
		emit("Tinca", workers, rec, tincaPhases, metrics.HistCommitTotal)
		rec, err = runClassic(workers)
		if err != nil {
			return nil, err
		}
		emit("Classic", workers, rec, classicPhases, metrics.HistJBDCommit)
	}
	t.Note = "simulated time per phase; share is the phase's part of the summed pipeline time. Tinca's fences/Head persist amortize across a batch as committers grow; Classic's journal writes serialize"
	return t, nil
}

// fmtDurNS renders a simulated nanosecond duration for table cells.
func fmtDurNS(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
