package exp

import (
	"fmt"
	"time"

	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// Endurance quantifies the NVM-lifetime argument of the paper's
// introduction ("considering the limited write endurance of some NVM
// technologies, double writes adversely affect the lifetime of NVM
// cache"): media line-writes per MB of application data, total and for
// the hottest line, on Tinca vs Classic. PCM cells endure 10^6–10^8
// writes; halving the media write volume roughly doubles device lifetime.
func Endurance(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Endurance (extension): NVM media wear, Fio random write",
		"system", "line writes/MB", "hottest ptr line", "relative lifetime")

	type res struct {
		perMB   float64
		hottest uint32
	}
	run := func(kind stack.Kind, rotate bool) (res, error) {
		s, err := buildStack(kind, func(c *stack.Config) { c.RotatePointers = rotate })
		if err != nil {
			return res{}, err
		}
		cfg := workload.FioConfig{
			FileBytes: 16 << 20, ReadPct: 0,
			Ops: o.scaled(5000, 500), Seed: o.Seed,
		}
		if err := workload.LayoutFio(s.FS, cfg); err != nil {
			return res{}, err
		}
		cfg.SkipLayout = true
		w0, _ := s.Mem.Wear()
		var cnt workload.Counts
		if cnt, err = workload.RunFio(s.FS, cfg); err != nil {
			return res{}, err
		}
		w1, hottest := s.Mem.Wear()
		if s.TCache != nil {
			// For Tinca, report the fixed metadata lines the rotation
			// extension targets: the Head/Tail pointer areas. (Group
			// commit already amortizes Head persists per seal, so the
			// device-wide hottest line is elsewhere; rotation's job is
			// leveling these specific always-rewritten lines.)
			lay := s.TCache.Layout()
			span := lay.PtrSlots * pmem.LineSize
			hottest = s.Mem.WearRange(lay.HeadOff, span)
			if w := s.Mem.WearRange(lay.TailOff, span); w > hottest {
				hottest = w
			}
		}
		mb := float64(cnt.Bytes) / (1 << 20)
		return res{perMB: float64(w1-w0) / mb, hottest: hottest}, nil
	}

	tinca, err := run(stack.Tinca, false)
	if err != nil {
		return nil, err
	}
	rotated, err := run(stack.Tinca, true)
	if err != nil {
		return nil, err
	}
	classic, err := run(stack.Classic, false)
	if err != nil {
		return nil, err
	}
	t.AddRow("Classic", classic.perMB, int64(classic.hottest), "1.0")
	t.AddRow("Tinca", tinca.perMB, int64(tinca.hottest),
		fmt.Sprintf("%.2fx", ratio(classic.perMB, tinca.perMB)))
	t.AddRow("Tinca + rotating pointers", rotated.perMB, int64(rotated.hottest),
		fmt.Sprintf("%.2fx", ratio(classic.perMB, rotated.perMB)))
	t.Note = "lifetime scales inversely with media writes; group commit amortizes Head persists per seal, and rotating the Head/Tail lines levels the remaining pointer-line wear"
	return t, nil
}

// CLWB evaluates the newer cache-line write-back instruction the paper
// mentions in Section 2.1 ("clflushopt and clwb have been proposed to
// substitute clflush but still bring in overheads"): does Tinca's
// advantage survive cheaper ordering instructions?
func CLWB(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("clwb (extension): Fio random write with clflush vs clwb",
		"flush instr", "Classic IOPS", "Tinca IOPS", "Tinca/Classic")

	run := func(kind stack.Kind, prof pmem.Profile) (float64, error) {
		s, err := buildStack(kind, func(c *stack.Config) { c.NVMProfile = prof })
		if err != nil {
			return 0, err
		}
		cfg := workload.FioConfig{
			FileBytes: 16 << 20, ReadPct: 0,
			Ops: o.scaled(4000, 400), Seed: o.Seed,
		}
		if err := workload.LayoutFio(s.FS, cfg); err != nil {
			return 0, err
		}
		cfg.SkipLayout = true
		var cnt workload.Counts
		m, err := measure(s, func() error {
			var e error
			cnt, e = workload.RunFio(s.FS, cfg)
			return e
		})
		if err != nil {
			return 0, err
		}
		return m.perSecond(cnt.WriteOps), nil
	}

	for _, prof := range []pmem.Profile{pmem.PCM, pmem.CLWBVariant(pmem.PCM)} {
		classic, err := run(stack.Classic, prof)
		if err != nil {
			return nil, err
		}
		tinca, err := run(stack.Tinca, prof)
		if err != nil {
			return nil, err
		}
		t.AddRow(prof.Name, classic, tinca, fmt.Sprintf("%.2fx", ratio(tinca, classic)))
	}
	t.Note = "cheaper write-back instructions lift both systems; the double-write and metadata savings persist"
	return t, nil
}

// RecoveryTime measures Tinca's crash-recovery latency (the Section 4.5
// algorithm: read Head/Tail, resolve the interrupted transaction, sweep
// the entry table, rebuild DRAM structures) as a function of cache size.
// Recovery is dominated by the entry-table sweep, so it scales with
// capacity, not with the amount of data written — unlike journal replay.
func RecoveryTime(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Recovery time (extension): Tinca crash recovery vs cache size",
		"NVM size", "capacity (blocks)", "recovery (sim)", "Classic replay (sim)")

	for _, nvmMB := range []int{8, 16, 32} {
		nvmMB := nvmMB
		// Tinca: crash mid-commit, measure Remount's simulated time.
		s, err := buildStack(stack.Tinca, func(c *stack.Config) { c.NVMBytes = nvmMB << 20 })
		if err != nil {
			return nil, err
		}
		if _, err := workload.RunFio(s.FS, workload.FioConfig{
			FileBytes: 8 << 20, ReadPct: 0, Ops: o.scaled(1500, 200), Seed: o.Seed,
		}); err != nil {
			return nil, err
		}
		crashMidCommit(s, o.Seed)
		tincaRec, err := timeRemount(s)
		if err != nil {
			return nil, err
		}
		capacity := s.TCache.Capacity()

		// Classic: same crash, journal replay + cache metadata scan.
		sc, err := buildStack(stack.Classic, func(c *stack.Config) { c.NVMBytes = nvmMB << 20 })
		if err != nil {
			return nil, err
		}
		if _, err := workload.RunFio(sc.FS, workload.FioConfig{
			FileBytes: 8 << 20, ReadPct: 0, Ops: o.scaled(1500, 200), Seed: o.Seed,
		}); err != nil {
			return nil, err
		}
		crashMidCommit(sc, o.Seed)
		classicRec, err := timeRemount(sc)
		if err != nil {
			return nil, err
		}

		t.AddRow(fmt.Sprintf("%dMB", nvmMB), capacity,
			fmt.Sprintf("%.2fms", tincaRec.Seconds()*1000),
			fmt.Sprintf("%.2fms", classicRec.Seconds()*1000))
	}
	t.Note = "Tinca recovery = one entry-table sweep (O(capacity)); Classic = journal replay + metadata scan"
	return t, nil
}

// crashMidCommit injects a power failure while a commit is in flight. The
// Sync forces the group committer to seal the victim write now — without
// it the write sits in DRAM, nothing persists, and the armed crash never
// fires inside the commit sequence.
func crashMidCommit(s *stack.Stack, seed int64) {
	s.Mem.ArmCrash(40) // lands inside the forced seal's persist sequence
	pmem.CatchCrash(func() {
		_ = s.FS.WriteFile("/crash-victim", make([]byte, 32<<10))
		_ = s.FS.Sync()
	})
	s.Crash(sim.NewRand(seed), 0.5)
}

func timeRemount(s *stack.Stack) (time.Duration, error) {
	t0 := s.Clock.Now()
	if err := s.Remount(); err != nil {
		return 0, err
	}
	return s.Clock.Now() - t0, nil
}

// JournalModes compares consistency modes (extension): Tinca's full data
// consistency against Classic in ext4's data=journal (the paper's
// configuration), data=ordered (the field default: metadata-only
// journalling, weaker guarantees) and no journal at all. The point the
// paper implies but never plots: Tinca outperforms even the *weaker*
// ordered mode while guaranteeing more.
func JournalModes(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Journal modes (extension): Fio random write across consistency modes",
		"configuration", "consistency", "write IOPS", "clflush/write")

	run := func(mod func(*stack.Config)) (iops, clflush float64, err error) {
		s, err := buildStack(stack.Classic, mod)
		if err != nil {
			return 0, 0, err
		}
		cfg := workload.FioConfig{
			FileBytes: 32 << 20, ReadPct: 0,
			Ops: o.scaled(4000, 400), Seed: o.Seed,
		}
		if err := workload.LayoutFio(s.FS, cfg); err != nil {
			return 0, 0, err
		}
		cfg.SkipLayout = true
		var cnt workload.Counts
		m, err := measure(s, func() error {
			var e error
			cnt, e = workload.RunFio(s.FS, cfg)
			return e
		})
		if err != nil {
			return 0, 0, err
		}
		return m.perSecond(cnt.WriteOps), m.per(metrics.NVMCLFlush, cnt.WriteOps), nil
	}

	cases := []struct {
		name        string
		consistency string
		mod         func(*stack.Config)
	}{
		{"Tinca", "data (transactional cache)", func(c *stack.Config) { c.Kind = stack.Tinca }},
		{"Classic data=journal", "data (journalled twice)", nil},
		{"Classic data=ordered", "metadata only", func(c *stack.Config) { c.JournalMode = stack.Ordered }},
		{"Classic no journal", "none (crash unsafe)", func(c *stack.Config) { c.Kind = stack.ClassicNoJournal }},
	}
	for _, cs := range cases {
		iops, clflush, err := run(cs.mod)
		if err != nil {
			return nil, fmt.Errorf("mode %q: %w", cs.name, err)
		}
		t.AddRow(cs.name, cs.consistency, iops, clflush)
	}
	t.Note = "expected: Tinca beats even data=ordered while guaranteeing full data consistency"
	return t, nil
}
