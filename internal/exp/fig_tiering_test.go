package exp

import "testing"

func TestColdStartPrefetchAndUploaderBudget(t *testing.T) {
	tb, err := ColdStartWarmup(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("expected 4 scan + 2 writer rows, got %d", len(tb.Rows))
	}
	// The CI-gated headline: 8 prefetch workers vs none on a cold
	// sequential scan (full-scale target is 4x; 2x is the floor at any
	// scale because even two overlapped fetches halve the request train).
	if s := tb.Metrics["prefetch_speedup_x"]; s < 2 {
		t.Fatalf("prefetch speedup %.2fx < 2x", s)
	}
	if s4, s8 := tb.Metrics["prefetch_speedup_4w_x"], tb.Metrics["prefetch_speedup_x"]; s8 < s4*0.9 {
		t.Fatalf("speedup not roughly monotone in workers: 4w=%.2fx 8w=%.2fx", s4, s8)
	}
	// The acceptance budget: a live upload pipeline may slow the
	// foreground writer by at most 5%.
	if pct := tb.Metrics["uploader_overhead_pct"]; pct > 5 {
		t.Fatalf("uploader foreground overhead %.1f%% > 5%%", pct)
	}
}

func TestCapacityCostShape(t *testing.T) {
	tb, err := CapacityCost(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("expected 3 object-size rows, got %d", len(tb.Rows))
	}
	// Under uniform random point reads, growing the object size must
	// show the trade the figure exists to expose: more bytes dragged
	// per useful byte, more dollars per application GB, fatter GET tail.
	for _, m := range []string{"capacity_read_amp", "capacity_dollars_per_gb", "capacity_get_p99_ms"} {
		small := tb.Metrics[m+"_32k"]
		mid := tb.Metrics[m+"_128k"]
		big := tb.Metrics[m+"_512k"]
		if !(small < mid && mid < big) {
			t.Fatalf("%s not increasing with object size: 32k=%.3f 128k=%.3f 512k=%.3f", m, small, mid, big)
		}
	}
	if tb.Metrics["capacity_reads_per_sec_32k"] <= tb.Metrics["capacity_reads_per_sec_512k"] {
		t.Fatal("small objects should serve random reads faster than 512KB objects")
	}
}
