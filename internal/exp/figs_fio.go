package exp

import (
	"fmt"

	"tinca/internal/metrics"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// Fig7 reproduces Figure 7: the Fio micro-benchmark at read/write ratios
// 3/7, 5/5 and 7/3 on the full Tinca and Classic stacks (PCM cache, SSD
// disk). Three sub-figures in one table:
//
//	(a) write IOPS          — paper: Tinca 2.5x / 2.1x / 1.7x Classic
//	(b) clflush per write   — paper: Tinca 73.4% / 75.4% / 76.3% fewer
//	(c) disk writes per op  — paper: Tinca 60.6% / 62.6% / 64.6% fewer
func Fig7(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 7: Fio micro-benchmark, Tinca vs Classic (PCM cache, SSD)",
		"R/W ratio", "system", "write IOPS", "IOPS ratio", "clflush/write", "clflush fewer %", "disk blks/write", "disk fewer %")
	t.Note = "paper shape: Tinca 1.7-2.5x IOPS, ~73-76% fewer clflush, ~60-65% fewer disk writes"

	type res struct {
		iops, clflush, disk float64
	}
	run := func(kind stack.Kind, readPct int) (res, error) {
		s, err := buildStack(kind, nil) // defaults: PCM + SSD
		if err != nil {
			return res{}, err
		}
		// Dataset 2x the NVM cache so replacement is active, as in the
		// paper (20GB file vs 8GB cache).
		cfg := workload.FioConfig{
			FileBytes: 32 << 20, ReadPct: readPct,
			Ops: o.scaled(6000, 500), Seed: o.Seed,
		}
		if err := workload.LayoutFio(s.FS, cfg); err != nil {
			return res{}, err
		}
		cfg.SkipLayout = true
		var cnt workload.Counts
		m, err := measure(s, func() error {
			var e error
			cnt, e = workload.RunFio(s.FS, cfg)
			return e
		})
		if err != nil {
			return res{}, err
		}
		return res{
			iops:    m.perSecond(cnt.WriteOps),
			clflush: m.per(metrics.NVMCLFlush, cnt.WriteOps),
			disk:    m.per(metrics.DiskBlocksWrite, cnt.WriteOps),
		}, nil
	}

	for _, readPct := range []int{30, 50, 70} {
		tinca, err := run(stack.Tinca, readPct)
		if err != nil {
			return nil, err
		}
		classic, err := run(stack.Classic, readPct)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d/%d", readPct/10, (100-readPct)/10)
		t.AddRow(label, "Classic", classic.iops, "1.0", classic.clflush, "-", classic.disk, "-")
		t.AddRow(label, "Tinca", tinca.iops,
			fmt.Sprintf("%.2fx", ratio(tinca.iops, classic.iops)),
			tinca.clflush, pctFewer(tinca.clflush, classic.clflush),
			tinca.disk, pctFewer(tinca.disk, classic.disk))
	}
	return t, nil
}
