package exp

import (
	"fmt"

	"tinca/internal/pmem"
	"tinca/internal/sim"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// RecoveryScale produces "fig: recovery scale" — restart time as a
// function of NVM size, with the checkpoint writer off and on. Off,
// recovery's scan phase bulk-loads the whole entry table, so restart
// time grows linearly with capacity. On, recovery loads the newest
// checkpoint frame (sized by the resident set the workload actually
// built, identical at every size here) plus the delta journal, so the
// curve flat-lines: the growth ratio largest/smallest is the headline
// metric CI gates on (recovery_scale_on_growth, see tincabench
// -max-recovery-growth).
//
// Each size fills the cache with the same fio stream, crashes inside a
// forced group seal at a fixed fraction of its persist-op count
// (measured on a throwaway stack, as in RecoveryBreakdown), and remounts.
// Everything is driven by the simulated clock, so the table is
// bit-identical run to run.
func RecoveryScale(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: recovery scale (restart time vs NVM size, checkpoint off/on)",
		"NVM size", "ckpt", "capacity", "resident", "scan", "rebuild", "total", "frame epoch", "deltas")

	build := func(nvmMB int, ckpt bool) (*stack.Stack, error) {
		s, err := buildStack(stack.Tinca, func(c *stack.Config) {
			c.NVMBytes = nvmMB << 20
			c.FlightRecorder = true
			if ckpt {
				c.Checkpoint = true
				// A real interval (not every-commit): the figure should show
				// the steady-state cost, a frame every ~100µs of simulated
				// time plus journal deltas in between.
				c.CheckpointIntervalNS = 100_000
			}
		})
		if err != nil {
			return nil, err
		}
		// The same bounded working set at every size: what varies across
		// the x-axis is device capacity, not residency, which is exactly
		// the regime where checkpointed restart should be flat.
		if _, err := workload.RunFio(s.FS, workload.FioConfig{
			FileBytes: 4 << 20, ReadPct: 0, Ops: o.scaled(1200, 200), Seed: o.Seed,
		}); err != nil {
			return nil, err
		}
		return s, nil
	}
	victim := func(s *stack.Stack) {
		_ = s.FS.WriteFile("/crash-victim", make([]byte, 32<<10))
		_ = s.FS.Sync()
	}

	us := func(ns int64) string { return fmt.Sprintf("%.1fµs", float64(ns)/1000) }
	minMax := map[bool][2]float64{} // ckpt -> {smallest-size total, largest-size total}
	sizes := []int{8, 16, 32, 64}
	for _, nvmMB := range sizes {
		for _, ckpt := range []bool{false, true} {
			probe, err := build(nvmMB, ckpt)
			if err != nil {
				return nil, err
			}
			before := probe.Mem.PersistOps()
			victim(probe)
			sealOps := probe.Mem.PersistOps() - before

			s, err := build(nvmMB, ckpt)
			if err != nil {
				return nil, err
			}
			capacity := s.TCache.Capacity()
			s.Mem.ArmCrash(int64(0.7 * float64(sealOps)))
			if crashed, _ := pmem.CatchCrash(func() { victim(s) }); !crashed {
				return nil, fmt.Errorf("exp: %dMB ckpt=%v trial did not crash inside the seal (%d ops)", nvmMB, ckpt, sealOps)
			}
			s.Crash(sim.NewRand(o.Seed), 0.5)
			if err := s.Remount(); err != nil {
				return nil, err
			}
			rs := s.TCache.RecoveryStats()
			if !rs.Ran {
				return nil, fmt.Errorf("exp: remount at %dMB ckpt=%v did not run recovery", nvmMB, ckpt)
			}
			if ckpt != rs.FromCheckpoint {
				return nil, fmt.Errorf("exp: %dMB ckpt=%v but recovery FromCheckpoint=%v", nvmMB, ckpt, rs.FromCheckpoint)
			}

			mode := "off"
			if ckpt {
				mode = "on"
			}
			t.AddRow(fmt.Sprintf("%dMB", nvmMB), mode, capacity, rs.Resident,
				us(rs.ScanNS), us(rs.RebuildNS), us(rs.TotalNS), rs.CkptEpoch, rs.DeltaSlots)
			prefix := fmt.Sprintf("recovery_scale_%dmb_%s_", nvmMB, mode)
			t.SetMetric(prefix+"total_ns", float64(rs.TotalNS))
			t.SetMetric(prefix+"scan_ns", float64(rs.ScanNS))
			t.SetMetric(prefix+"entries_scanned", float64(rs.EntriesScanned))

			mm := minMax[ckpt]
			if nvmMB == sizes[0] {
				mm[0] = float64(rs.TotalNS)
			}
			if nvmMB == sizes[len(sizes)-1] {
				mm[1] = float64(rs.TotalNS)
			}
			minMax[ckpt] = mm
		}
	}
	// Growth ratios: restart time at the largest size over the smallest.
	// Off grows with capacity (the linear baseline); on is the flatness
	// the checkpoint subsystem promises, gated in CI at <= 2x.
	for _, ckpt := range []bool{false, true} {
		mode := "off"
		if ckpt {
			mode = "on"
		}
		mm := minMax[ckpt]
		if mm[0] > 0 {
			t.SetMetric("recovery_scale_"+mode+"_growth", mm[1]/mm[0])
		}
	}
	t.Note = fmt.Sprintf("same working set at every size; %dMB/%dMB growth: off is the linear full-scan baseline, on must stay flat (<=2x, CI-gated)",
		sizes[len(sizes)-1], sizes[0])
	return t, nil
}
