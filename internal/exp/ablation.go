package exp

import (
	"fmt"

	"tinca/internal/core"
	"tinca/internal/metrics"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// Ablations runs the design-choice benches flagged in DESIGN.md §6:
//
//   - role switch vs. double writes inside the cache (what journalling
//     would cost Tinca);
//   - COW block write vs. UBJ-style commit-in-place with a critical-path
//     memcpy (the Section 5.4.4 comparison);
//   - ring-buffer size sensitivity (1MB default);
//   - replacement rule 2 (transaction-pinned blocks) on vs. off — the
//     disk writes the rule saves (crash consistency disabled when off).
func Ablations(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Ablations: Tinca design choices (Fio random write)",
		"variant", "write IOPS", "clflush/write", "disk blks/write")

	run := func(mod func(*stack.Config)) (iops, clflush, disk float64, err error) {
		s, err := buildStack(stack.Tinca, mod)
		if err != nil {
			return 0, 0, 0, err
		}
		cfg := workload.FioConfig{
			FileBytes: 32 << 20, ReadPct: 0,
			Ops: o.scaled(4000, 400), Seed: o.Seed,
		}
		if err := workload.LayoutFio(s.FS, cfg); err != nil {
			return 0, 0, 0, err
		}
		cfg.SkipLayout = true
		var cnt workload.Counts
		m, err := measure(s, func() error {
			var e error
			cnt, e = workload.RunFio(s.FS, cfg)
			return e
		})
		if err != nil {
			return 0, 0, 0, err
		}
		return m.perSecond(cnt.WriteOps),
			m.per(metrics.NVMCLFlush, cnt.WriteOps),
			m.per(metrics.DiskBlocksWrite, cnt.WriteOps), nil
	}

	cases := []struct {
		name string
		mod  func(*stack.Config)
	}{
		{"Tinca (role switch + COW)", nil},
		{"ablation: double writes in cache", func(c *stack.Config) { c.Ablation = core.AblationDoubleWrite }},
		{"ablation: UBJ-style commit-in-place", func(c *stack.Config) { c.Ablation = core.AblationUBJ }},
		{"ablation: txn pinning off (unsafe)", func(c *stack.Config) { c.DisableTxnPin = true }},
		{"ring 64KB", func(c *stack.Config) { c.RingBytes = 64 << 10 }},
		{"ring 4MB", func(c *stack.Config) { c.RingBytes = 4 << 20 }},
	}
	for _, cs := range cases {
		iops, clflush, disk, err := run(cs.mod)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", cs.name, err)
		}
		t.AddRow(cs.name, iops, clflush, disk)
	}
	t.Note = "expected: double-write ablation ≈ journalling cost; UBJ pays a critical-path memcpy on hits; ring size is not performance-critical"
	return t, nil
}
