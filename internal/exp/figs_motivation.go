package exp

import (
	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/stack"
	"tinca/internal/workload"
)

// Fig3a reproduces Figure 3(a): write traffic to the NVM cache for three
// Filebench workloads, Ext4 with data journalling vs without. The paper
// reports journalling causing 195%–290% of the no-journal traffic.
func Fig3a(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 3(a): NVM write traffic, Ext4-journal vs Ext4-nojournal",
		"workload", "journal MB", "nojournal MB", "journal/nojournal %")
	t.Note = "paper shape: journalling writes 195%-290% of the no-journal traffic"

	for _, prof := range []workload.Profile{workload.Fileserver, workload.Webproxy, workload.Varmail} {
		traffic := func(kind stack.Kind) (float64, error) {
			s, err := buildStack(kind, func(c *stack.Config) {
				c.GroupCommitBlocks = 32
			})
			if err != nil {
				return 0, err
			}
			m, err := measure(s, func() error {
				_, err := workload.RunFilebench(s.FS, workload.FilebenchConfig{
					Profile: prof, Files: 64, FileBytes: 32 << 10,
					Ops: o.scaled(1200, 100), Seed: o.Seed,
				})
				return err
			})
			if err != nil {
				return 0, err
			}
			return float64(m.snap.Get(metrics.NVMBytesWrite)) / (1 << 20), nil
		}
		j, err := traffic(stack.Classic)
		if err != nil {
			return nil, err
		}
		nj, err := traffic(stack.ClassicNoJournal)
		if err != nil {
			return nil, err
		}
		t.AddRow(prof.String(), j, nj, ratio(j, nj)*100)
	}
	return t, nil
}

// Fig3b reproduces Figure 3(b): random-write bandwidth as journalling and
// then clflush/sfence are imposed. The paper reports journalling costing
// 31.5% and ordering instructions a further 28.3%.
func Fig3b(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 3(b): Fio random-write bandwidth under consistency mechanisms",
		"configuration", "bandwidth MB/s", "vs previous %")
	t.Note = "paper shape: journaling drops bandwidth ~31.5%, clflush+sfence a further ~28.3%"

	bw := func(kind stack.Kind, noBarriers bool) (float64, error) {
		s, err := buildStack(kind, func(c *stack.Config) {
			c.NoPersistBarriers = noBarriers
			c.NVMProfile = pmem.NVDIMM
			// The figure isolates journalling and ordering-instruction
			// overheads in the NVM cache; a no-cost disk keeps eviction
			// I/O from dominating the comparison.
			c.DiskProfile = blockdev.Null
		})
		if err != nil {
			return 0, err
		}
		cfg := workload.FioConfig{
			FileBytes: 8 << 20, ReadPct: 0,
			Ops: o.scaled(4000, 400), Seed: o.Seed,
		}
		if err := workload.LayoutFio(s.FS, cfg); err != nil {
			return 0, err
		}
		cfg.SkipLayout = true
		var cnt workload.Counts
		m, err := measure(s, func() error {
			var e error
			cnt, e = workload.RunFio(s.FS, cfg)
			return e
		})
		if err != nil {
			return 0, err
		}
		return m.perSecond(cnt.Bytes) / (1 << 20), nil
	}

	noJNoF, err := bw(stack.ClassicNoJournal, true)
	if err != nil {
		return nil, err
	}
	jNoF, err := bw(stack.Classic, true)
	if err != nil {
		return nil, err
	}
	jF, err := bw(stack.Classic, false)
	if err != nil {
		return nil, err
	}
	t.AddRow("no journal, no clflush", noJNoF, "-")
	t.AddRow("+ journaling", jNoF, -pctFewer(jNoF, noJNoF))
	t.AddRow("+ clflush & sfence", jF, -pctFewer(jF, jNoF))
	return t, nil
}

// Fig4 reproduces Figure 4: the cost of Flashcache-style synchronous
// cache-metadata updates, on Ext4 with and without journalling. The paper
// reports waiving metadata updates improves throughput by 45.2% (journal)
// and 65.5% (no journal).
func Fig4(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 4: impact of synchronous cache-metadata updates (Fio random write)",
		"configuration", "write IOPS", "improvement %")
	t.Note = "paper shape: no-metadata improves ~45.2% on journal, ~65.5% on no-journal"

	iops := func(kind stack.Kind, noMeta bool) (float64, error) {
		s, err := buildStack(kind, func(c *stack.Config) {
			c.NoMetaUpdates = noMeta
		})
		if err != nil {
			return 0, err
		}
		cfg := workload.FioConfig{
			FileBytes: 8 << 20, ReadPct: 0,
			Ops: o.scaled(4000, 400), Seed: o.Seed,
		}
		if err := workload.LayoutFio(s.FS, cfg); err != nil {
			return 0, err
		}
		cfg.SkipLayout = true
		var cnt workload.Counts
		m, err := measure(s, func() error {
			var e error
			cnt, e = workload.RunFio(s.FS, cfg)
			return e
		})
		if err != nil {
			return 0, err
		}
		return m.perSecond(cnt.WriteOps), nil
	}

	type cfg struct {
		name   string
		kind   stack.Kind
		noMeta bool
		base   int // row index of the baseline to compare against, -1 none
	}
	cases := []cfg{
		{"journal, metadata updates", stack.Classic, false, -1},
		{"journal, no metadata updates", stack.Classic, true, 0},
		{"no journal, metadata updates", stack.ClassicNoJournal, false, -1},
		{"no journal, no metadata updates", stack.ClassicNoJournal, true, 2},
	}
	vals := make([]float64, len(cases))
	for i, c := range cases {
		v, err := iops(c.kind, c.noMeta)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	for i, c := range cases {
		if c.base < 0 {
			t.AddRow(c.name, vals[i], "-")
		} else {
			t.AddRow(c.name, vals[i], (vals[i]/vals[c.base]-1)*100)
		}
	}
	return t, nil
}
