package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tinca/internal/blockdev"
	"tinca/internal/core"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// ReadHitScaling is the "fig: read-hit scaling" bench: aggregate read-hit
// throughput at 1/4/8/16 concurrent readers hammering a small hot set
// that all lands in ONE metadata shard — the worst case for the locked
// hit path, whose shard mutex serializes every hit, and the case the
// per-slot seqlock fast path (readfast.go) exists for. The locked rows
// force Options.LockedReadHit; the seqlock rows take the default
// lock-free path. The NVM profile overlaps concurrent block loads
// (pmem.Channels, depth 8), so once the DRAM bookkeeping stops
// serializing, the hardware parallelism shows up as simulated-time
// speedup — the same methodology as the miss-path figure, with the NCQ
// disk swapped for a channeled NVM device.
//
// A final pair of rows pits 8 readers against a concurrent committer
// that keeps COWing and sealing blocks of the same hot set; the fast-hit
// ratio ReadHitFast/(ReadHitFast+ReadHitSlow) of that row is the
// "fast_hit_ratio" metric the exp test holds above 0.95 — mid-seal
// (log-role) windows and seqlock retries must stay rare even with a
// writer interleaving.
func ReadHitScaling(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: read-hit scaling — aggregate hit throughput vs concurrent readers, one hot shard",
		"hit path", "goroutines", "writer", "reads/s (sim)", "sim ns/op", "fast-hit %", "speedup")

	total := o.scaled(60000, 8000)
	workerCounts := []int{1, 4, 8, 16}
	// 64 hot blocks, all ≡ 0 mod shardCount(16): every hit contends for
	// the same shard lock in the locked baseline.
	const hotBlocks = 64
	hot := func(n int) uint64 { return uint64(n%hotBlocks) * 16 }

	type result struct {
		perSec, nsPerOp, fastPct float64
		stats                    core.CacheStats
	}
	run := func(locked bool, workers int, writer bool) (result, error) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(2<<20, pmem.Channels(pmem.NVDIMM, 8), clock, rec)
		disk := blockdev.New(1<<16, blockdev.NCQ(blockdev.SSD, 8), clock, rec)
		c, err := core.Open(mem, disk, core.Options{RingBytes: 4096, LockedReadHit: locked})
		if err != nil {
			return result{}, err
		}
		// Warm the hot set: one sequential pass fills every block, so the
		// measured region below is hit-only.
		p := make([]byte, core.BlockSize)
		for n := 0; n < hotBlocks; n++ {
			if err := c.Read(hot(n), p); err != nil {
				return result{}, err
			}
		}
		warm := c.Stats()
		t0 := clock.Now()
		var next atomic.Int64
		var stop atomic.Bool
		var wg, wwg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Readers pull from one shared counter so the total read
				// count is exact and the stream's block sequence does not
				// depend on host scheduling.
				p := make([]byte, core.BlockSize)
				for {
					i := next.Add(1) - 1
					if i >= int64(total) {
						return
					}
					if err := c.Read(hot(int(i)), p); err != nil {
						panic(fmt.Sprintf("reader %d: %v", w, err))
					}
				}
			}()
		}
		if writer {
			wwg.Add(1)
			go func() {
				defer wwg.Done()
				// One committer keeps rewriting hot blocks: each commit COWs
				// the block through a log-role window and a seal, so readers
				// keep crossing mutating slots. Paced off the shared read
				// counter (one commit per 64 reads) so the commit pipeline's
				// much larger sim cost doesn't drown the read throughput the
				// figure measures — the interference pattern, not the commit
				// rate, is what the fast-hit ratio probes.
				buf := make([]byte, core.BlockSize)
				for n := 0; !stop.Load(); n++ {
					for next.Load() < int64(n)*64 && !stop.Load() {
						runtime.Gosched()
					}
					tx := c.Begin()
					tx.Write(hot(n), buf)
					if err := tx.Commit(); err != nil {
						panic(fmt.Sprintf("writer: %v", err))
					}
				}
			}()
		}
		wg.Wait()
		stop.Store(true)
		wwg.Wait()
		elapsed := (clock.Now() - t0).Seconds()
		st := c.Stats()
		if err := c.Close(); err != nil {
			return result{}, err
		}
		reads := float64(total)
		r := result{
			perSec:  reads / elapsed,
			nsPerOp: elapsed * 1e9 / reads,
			stats:   st,
		}
		if f, s := float64(st.ReadHitFast-warm.ReadHitFast), float64(st.ReadHitSlow-warm.ReadHitSlow); f+s > 0 {
			r.fastPct = 100 * f / (f + s)
		}
		return r, nil
	}

	lockedBase := make(map[int]float64)
	for _, locked := range []bool{true, false} {
		name := "seqlock"
		if locked {
			name = "locked"
		}
		for _, workers := range workerCounts {
			r, err := run(locked, workers, false)
			if err != nil {
				return nil, err
			}
			var speedup float64 = 1
			if locked {
				lockedBase[workers] = r.perSec
			} else {
				speedup = r.perSec / lockedBase[workers]
			}
			t.AddRow(name, workers, "no", r.perSec, r.nsPerOp, r.fastPct, fmt.Sprintf("%.2fx", speedup))
			key := fmt.Sprintf("%s_%dg", name, workers)
			t.SetMetric(key+"_reads_per_sec", r.perSec)
			t.SetMetric(key+"_sim_ns_per_op", r.nsPerOp)
			if !locked {
				t.SetMetric(key+"_fast_hit_pct", r.fastPct)
				t.SetMetric(key+"_speedup_x", speedup)
				if workers == 8 {
					t.SetMetric("readhit_speedup_8g_x", speedup)
				}
			}
		}
	}
	// Mixed row: 8 readers + 1 committer on the hot set, both paths. The
	// seqlock row's fast-hit ratio is the figure's health metric.
	for _, locked := range []bool{true, false} {
		name := "seqlock"
		if locked {
			name = "locked"
		}
		r, err := run(locked, 8, true)
		if err != nil {
			return nil, err
		}
		var speedup float64 = 1
		if !locked {
			prev, _ := t.Metrics["locked_8g_writer_reads_per_sec"]
			if prev > 0 {
				speedup = r.perSec / prev
			}
		}
		t.AddRow(name, 8, "yes", r.perSec, r.nsPerOp, r.fastPct, fmt.Sprintf("%.2fx", speedup))
		key := fmt.Sprintf("%s_8g_writer", name)
		t.SetMetric(key+"_reads_per_sec", r.perSec)
		if !locked {
			t.SetMetric("fast_hit_ratio", r.fastPct/100)
			t.SetMetric(key+"_seqlock_retries", float64(r.stats.SeqlockRetries))
			t.SetMetric(key+"_touch_ring_drops", float64(r.stats.TouchRingDrops))
		}
	}
	t.Note = "64 hot blocks on one metadata shard, warmed, hit-only; locked rows serialize on the shard mutex, seqlock rows run readfast.go's zero-lock path on an NVM profile that overlaps up to 8 loads (pmem.Channels); the writer rows add a committer COWing the same hot set"
	return t, nil
}
