package exp

import (
	"fmt"
	"sort"
)

// Runner is one experiment entry point.
type Runner func(Options) (*Table, error)

// Registry maps experiment names (as used by `tincabench -fig`) to their
// drivers, in the order DESIGN.md lists them.
var Registry = map[string]Runner{
	"table1":  func(Options) (*Table, error) { return Table1(), nil },
	"table2":  func(Options) (*Table, error) { return Table2(), nil },
	"3a":      Fig3a,
	"3b":      Fig3b,
	"4":       Fig4,
	"7":       Fig7,
	"8":       Fig8,
	"10":      Fig10,
	"11":      Fig11,
	"12a":     Fig12a,
	"12b":     Fig12b,
	"12c":     Fig12c,
	"13":      Fig13,
	"recover": Recoverability,
	"ablate":  Ablations,
	// Extensions beyond the paper (DESIGN.md §6 and motivation claims).
	"endurance":         Endurance,
	"clwb":              CLWB,
	"recovertime":       RecoveryTime,
	"modes":             JournalModes,
	"groupcommit":       GroupCommitScaling,
	"phases":            CommitPhaseBreakdown,
	"misspath":          MissPathScaling,
	"readhit":           ReadHitScaling,
	"indexscale":        IndexScale,
	"recoverybreakdown": RecoveryBreakdown,
	"recoveryscale":     RecoveryScale,
	"writerscaling":     WriterScaling,
	"coldstart":         ColdStartWarmup,
	"capacitycost":      CapacityCost,
}

// Names lists the registered experiments in a stable order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return expOrder(names[i]) < expOrder(names[j]) })
	return names
}

func expOrder(n string) string {
	// tables first, then figures numerically, then extras.
	switch n {
	case "table1":
		return "00"
	case "table2":
		return "01"
	case "3a":
		return "03a"
	case "3b":
		return "03b"
	case "4":
		return "04"
	case "7":
		return "07"
	case "8":
		return "08"
	case "10":
		return "10"
	case "11":
		return "11"
	case "12a", "12b", "12c":
		return "12" + n[2:]
	case "13":
		return "13"
	case "recover":
		return "90"
	case "ablate":
		return "91"
	case "endurance":
		return "92"
	case "clwb":
		return "93"
	case "recovertime":
		return "94"
	case "modes":
		return "95"
	case "groupcommit":
		return "96"
	case "phases":
		return "97"
	case "misspath":
		return "98"
	case "readhit":
		return "985"
	case "indexscale":
		return "986"
	case "recoverybreakdown":
		return "987"
	case "recoveryscale":
		return "988"
	case "writerscaling":
		return "989"
	case "coldstart":
		return "990"
	case "capacitycost":
		return "991"
	default:
		return "99" + n
	}
}

// Run looks up and executes one experiment.
func Run(name string, o Options) (*Table, error) {
	r, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	return r(o)
}
