package exp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tinca/internal/blockdev"
	"tinca/internal/core"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// MissPathScaling is the "fig: miss-path scaling" bench: read-miss
// throughput of the transactional cache at 1/4/8 concurrent readers on a
// span four times the cache capacity, so nearly every read is a miss
// that must fill from disk and evict a victim. The serial rows force the
// legacy miss path (disk read under the global lock, foreground
// eviction); the concurrent rows run the miss pipeline (fill reads
// before any lock, per-shard free caches, background watermark
// eviction), on a disk that overlaps queued reads (NCQ depth 8, the
// hardware the pipeline exists to keep busy). Throughput is
// simulated-time work per read, so the row ratios isolate the locking
// structure from host scheduling noise.
func MissPathScaling(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: miss-path scaling — read-miss throughput vs concurrent readers",
		"miss path", "goroutines", "reads/s (sim)", "sim ns/op", "hit %", "speedup")

	total := o.scaled(8000, 1500)
	workerCounts := []int{1, 4, 8}

	type result struct {
		perSec, nsPerOp, hitPct float64
		stats                   core.CacheStats
	}
	run := func(serial bool, workers int) (result, error) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(2<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.NCQ(blockdev.SSD, 8), clock, rec)
		opts := core.Options{RingBytes: 4096, SerialMiss: serial}
		if !serial {
			opts.EvictLowWater = 48
			opts.EvictBatch = 48
		}
		c, err := core.Open(mem, disk, opts)
		if err != nil {
			return result{}, err
		}
		span := 4 * c.Capacity()
		t0 := clock.Now()
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Workers pull block numbers from one shared counter, so
				// the access stream is a single sequential scan over 4x
				// capacity no matter how the host schedules goroutines:
				// the LRU always evicts ahead of the scan, every read is a
				// miss on a distinct block, and the hit rate cannot drift
				// with scheduling the way per-worker partitions would.
				p := make([]byte, core.BlockSize)
				for {
					i := next.Add(1) - 1
					if i >= int64(total) {
						return
					}
					if err := c.Read(uint64(int(i)%span), p); err != nil {
						panic(fmt.Sprintf("reader %d: %v", w, err))
					}
				}
			}()
		}
		wg.Wait()
		elapsed := (clock.Now() - t0).Seconds()
		st := c.Stats()
		if err := c.Close(); err != nil {
			return result{}, err
		}
		reads := float64(total)
		r := result{
			perSec:  reads / elapsed,
			nsPerOp: elapsed * 1e9 / reads,
			stats:   st,
		}
		if h, m := float64(st.ReadHits), float64(st.ReadMisses); h+m > 0 {
			r.hitPct = 100 * h / (h + m)
		}
		return r, nil
	}

	serialBase := make(map[int]float64)
	for _, mode := range []bool{true, false} {
		name := "concurrent"
		if mode {
			name = "serial"
		}
		for _, workers := range workerCounts {
			r, err := run(mode, workers)
			if err != nil {
				return nil, err
			}
			var speedup float64 = 1
			if mode {
				serialBase[workers] = r.perSec
			} else {
				speedup = r.perSec / serialBase[workers]
			}
			t.AddRow(name, workers, r.perSec, r.nsPerOp, r.hitPct, fmt.Sprintf("%.2fx", speedup))
			key := fmt.Sprintf("%s_%dg", name, workers)
			t.SetMetric(key+"_reads_per_sec", r.perSec)
			t.SetMetric(key+"_sim_ns_per_op", r.nsPerOp)
			t.SetMetric(key+"_hit_pct", r.hitPct)
			if !mode {
				t.SetMetric(key+"_speedup_x", speedup)
				// The watermark evictor's health: how often a foreground
				// allocation found the pool empty and had to evict itself.
				if total := r.stats.Evictions; total > 0 {
					pct := 100 * float64(r.stats.DirectEvictions) / float64(total)
					t.SetMetric(key+"_direct_evict_pct", pct)
					if cur, ok := t.Metrics["direct_evict_pct"]; !ok || pct > cur {
						t.SetMetric("direct_evict_pct", pct)
					}
				}
				if workers == 8 {
					t.SetMetric("miss_speedup_8g_x", speedup)
				}
			}
		}
	}
	t.Note = "span = 4x capacity so ~every read fills from disk and evicts; concurrent rows read disk before any lock and reclaim via the background watermark evictor, so distinct-block misses overlap on the NCQ disk"
	return t, nil
}
