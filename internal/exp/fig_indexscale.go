package exp

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tinca/internal/blockdev"
	"tinca/internal/core"
	"tinca/internal/index"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// IndexScale is the "fig: index scale" bench behind PR 6's index redesign:
// the cost of a block-number lookup as the resident set grows from 100K
// to 10M entries, on the open-addressed bucket table (internal/index)
// versus the sync.Map it replaced (still switchable in the cache via
// Options.SyncMapIndex). Lookups are DRAM bookkeeping with no simulated
// device cost, so this figure — alone among the experiments — reports
// host wall time per operation; the claim under test is a flatness claim
// (hit cost roughly constant in table size, allocations exactly zero),
// not an absolute-latency claim.
//
// A second section opens a real cache and measures allocations per read
// on the public paths: Read into a caller buffer, and the zero-copy
// ReadView/Close pair. The "readview_allocs_per_op" metric is the one
// `tincabench -max-allocs-per-op` gates on in CI: the whole point of the
// redesigned read API is that a warm read allocates nothing.
func IndexScale(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: index scale — lookup cost vs resident entries, bucket table vs sync.Map",
		"index", "entries", "insert ns/op", "hit ns/op", "allocs/op", "grows")

	// Entry counts; -scale shrinks them for quick runs (floor 10K).
	sizes := []int{o.scaled(100_000, 10_000), o.scaled(1_000_000, 20_000), o.scaled(10_000_000, 40_000)}
	const probes = 2_000_000 // lookups per measurement, spread over the table

	type kv interface {
		put(k uint64, v int32)
		get(k uint64) (int32, bool)
		grows() int64
	}
	newBucket := func() kv { return bucketIdx{index.New(0)} }
	newSyncMap := func() kv { return &syncIdx{} }

	var hitNS = map[string]map[int]float64{"bucket": {}, "syncmap": {}}
	for _, impl := range []struct {
		name string
		mk   func() kv
	}{{"bucket", newBucket}, {"syncmap", newSyncMap}} {
		for _, n := range sizes {
			m := impl.mk()
			// Keys are block numbers scattered by a multiplicative hash so
			// probe order doesn't correlate with insertion order.
			key := func(i int) uint64 { return (uint64(i)*0x9E3779B97F4A7C15 + 1) % (1 << 56) }
			t0 := time.Now()
			for i := 0; i < n; i++ {
				m.put(key(i), int32(i))
			}
			insertNS := float64(time.Since(t0)) / float64(n)

			t0 = time.Now()
			var sink int32
			for i := 0; i < probes; i++ {
				v, ok := m.get(key(i % n))
				if !ok {
					return nil, fmt.Errorf("indexscale: %s lost key %d of %d", impl.name, i%n, n)
				}
				sink ^= v
			}
			lookupNS := float64(time.Since(t0)) / float64(probes)
			_ = sink

			allocs := testing.AllocsPerRun(1000, func() {
				m.get(key(probes % n))
			})
			t.AddRow(impl.name, n, insertNS, lookupNS, allocs, m.grows())
			hitNS[impl.name][n] = lookupNS
			key2 := fmt.Sprintf("%s_%s", impl.name, humanCount(n))
			t.SetMetric(key2+"_hit_ns", lookupNS)
			t.SetMetric(key2+"_get_allocs", allocs)
		}
	}
	small, large := sizes[0], sizes[len(sizes)-1]
	if hitNS["bucket"][small] > 0 {
		t.SetMetric("bucket_hit_flatness_x", hitNS["bucket"][large]/hitNS["bucket"][small])
	}
	if hitNS["bucket"][large] > 0 {
		t.SetMetric("syncmap_vs_bucket_hit_x", hitNS["syncmap"][large]/hitNS["bucket"][large])
	}

	// Real-cache allocations per warm read, on both index backends. The
	// cache itself caps the resident set at its capacity (a 10M-block
	// working set would need a 40GB simulated device), so this section
	// runs at a feasible size and leans on the microbenchmark above for
	// the scale axis.
	at := NewTable("allocations per warm cache read (public API)",
		"index", "Read allocs/op", "ReadView allocs/op")
	for _, syncMap := range []bool{false, true} {
		name := "bucket"
		if syncMap {
			name = "syncmap"
		}
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(8<<20, pmem.PCM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.SSD, clock, rec)
		c, err := core.Open(mem, disk, core.Options{SyncMapIndex: syncMap})
		if err != nil {
			return nil, err
		}
		const hot = 512
		p := make([]byte, core.BlockSize)
		for b := uint64(0); b < hot; b++ {
			if err := c.Read(b, p); err != nil {
				return nil, err
			}
		}
		var i int
		readAllocs := testing.AllocsPerRun(5000, func() {
			i++
			if err := c.Read(uint64(i%hot), p); err != nil {
				panic(err)
			}
		})
		viewAllocs := testing.AllocsPerRun(5000, func() {
			i++
			v, err := c.ReadView(uint64(i % hot))
			if err != nil {
				panic(err)
			}
			if err := v.Close(); err != nil {
				panic(err)
			}
		})
		if err := c.Close(); err != nil {
			return nil, err
		}
		at.AddRow(name, readAllocs, viewAllocs)
		if !syncMap {
			t.SetMetric("read_allocs_per_op", readAllocs)
			t.SetMetric("readview_allocs_per_op", viewAllocs)
		}
	}
	t.Note = "host wall ns/op (DRAM bookkeeping has no simulated cost); flatness and allocs are the claims, not absolute ns; " +
		"bucket = internal/index open-addressed table, syncmap = the pre-PR6 baseline (Options.SyncMapIndex)\n\n" + at.String()
	return t, nil
}

// humanCount renders 100000 as "100k", 10000000 as "10m" for metric keys.
func humanCount(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dm", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprint(n)
	}
}

// bucketIdx and syncIdx adapt the two index implementations to one
// interface for the microbenchmark.
type bucketIdx struct{ t *index.Table }

func (b bucketIdx) put(k uint64, v int32)      { b.t.Put(k, v) }
func (b bucketIdx) get(k uint64) (int32, bool) { return b.t.Get(k) }
func (b bucketIdx) grows() int64               { return b.t.Grows() }

type syncIdx struct{ m sync.Map }

func (s *syncIdx) put(k uint64, v int32) { s.m.Store(k, v) }
func (s *syncIdx) get(k uint64) (int32, bool) {
	v, ok := s.m.Load(k)
	if !ok {
		return 0, false
	}
	return v.(int32), true
}
func (s *syncIdx) grows() int64 { return 0 }
