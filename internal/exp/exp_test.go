package exp

import (
	"strconv"
	"strings"
	"testing"
)

// quick runs every driver at a small scale; these tests assert the key
// *shape* properties the paper claims, not absolute values.
var quick = Options{Scale: 0.12, Seed: 42}

func cellF(t *testing.T, tb *Table, row int, col string) float64 {
	t.Helper()
	v := strings.TrimSuffix(tb.Cell(row, col), "x")
	v = strings.TrimSuffix(v, "s")
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", tb.Cell(row, col), err)
	}
	return f
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "3a", "3b", "4", "7", "8", "10", "11", "12a", "12b", "12c", "13",
		"recover", "ablate", "endurance", "clwb", "recovertime", "modes", "groupcommit", "phases",
		"misspath", "readhit", "indexscale", "recoverybreakdown", "recoveryscale", "writerscaling",
		"coldstart", "capacitycost"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(names), len(want), names)
	}
	for _, w := range want {
		if _, ok := Registry[w]; !ok {
			t.Fatalf("experiment %q missing", w)
		}
	}
	if _, err := Run("nonsense", quick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTablesRender(t *testing.T) {
	for _, name := range []string{"table1", "table2"} {
		tb, err := Run(name, quick)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) == 0 || !strings.Contains(tb.String(), "==") {
			t.Fatalf("%s rendered empty", name)
		}
	}
}

func TestFig3aJournalAmplifies(t *testing.T) {
	tb, err := Fig3a(quick)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Rows {
		ratio := cellF(t, tb, r, "journal/nojournal %")
		if ratio < 120 {
			t.Fatalf("row %d: journalling amplification only %.1f%%", r, ratio)
		}
	}
}

func TestFig3bMonotoneDrops(t *testing.T) {
	tb, err := Fig3b(quick)
	if err != nil {
		t.Fatal(err)
	}
	b0 := cellF(t, tb, 0, "bandwidth MB/s")
	b1 := cellF(t, tb, 1, "bandwidth MB/s")
	b2 := cellF(t, tb, 2, "bandwidth MB/s")
	if !(b0 > b1 && b1 > b2) {
		t.Fatalf("bandwidth not monotone: %v > %v > %v expected", b0, b1, b2)
	}
}

func TestFig4MetadataCosts(t *testing.T) {
	tb, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Waiving metadata must improve both configurations.
	if cellF(t, tb, 1, "write IOPS") <= cellF(t, tb, 0, "write IOPS") {
		t.Fatal("no-metadata did not improve journal config")
	}
	if cellF(t, tb, 3, "write IOPS") <= cellF(t, tb, 2, "write IOPS") {
		t.Fatal("no-metadata did not improve no-journal config")
	}
}

func TestFig7TincaWins(t *testing.T) {
	tb, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate Classic/Tinca per ratio.
	for r := 0; r < len(tb.Rows); r += 2 {
		classic := cellF(t, tb, r, "write IOPS")
		tinca := cellF(t, tb, r+1, "write IOPS")
		if tinca <= classic {
			t.Fatalf("ratio row %d: Tinca %.0f <= Classic %.0f IOPS", r/2, tinca, classic)
		}
		cf := cellF(t, tb, r+1, "clflush fewer %")
		if cf < 50 {
			t.Fatalf("clflush reduction only %.1f%%", cf)
		}
	}
}

func TestFig8TincaWinsAndUsersDegrade(t *testing.T) {
	tb, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Tinca beats Classic at every user count; both decline with users.
	firstClassic := cellF(t, tb, 0, "TPM")
	lastClassic := cellF(t, tb, len(tb.Rows)-2, "TPM")
	if lastClassic >= firstClassic {
		t.Fatalf("Classic TPM did not decline with users: %v -> %v", firstClassic, lastClassic)
	}
	for r := 0; r < len(tb.Rows); r += 2 {
		if cellF(t, tb, r+1, "TPM") <= cellF(t, tb, r, "TPM") {
			t.Fatalf("users row %d: Tinca did not win", r/2)
		}
	}
}

func TestFig10GapAndReductions(t *testing.T) {
	tb, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < len(tb.Rows); r += 2 {
		saved := cellF(t, tb, r+1, "time saved %")
		if saved <= 0 {
			t.Fatalf("replicas row %d: Tinca not faster (%.1f%%)", r/2, saved)
		}
		cf := cellF(t, tb, r+1, "clflush fewer %")
		if cf < 40 {
			t.Fatalf("clflush reduction only %.1f%%", cf)
		}
	}
}

func TestFig11OrderingAcrossWorkloads(t *testing.T) {
	tb, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	// All three workloads: Tinca wins.
	ratios := map[string]float64{}
	for r := 1; r < len(tb.Rows); r += 2 {
		ratio := cellF(t, tb, r, "OPs ratio")
		if ratio <= 1 {
			t.Fatalf("%s: Tinca did not win (%.2fx)", tb.Rows[r][0], ratio)
		}
		ratios[tb.Rows[r][0]] = ratio
	}
	// Webproxy (read-heavy) benefits least, as in the paper.
	if ratios["webproxy"] >= ratios["fileserver"] {
		t.Fatalf("webproxy ratio %.2f >= fileserver %.2f", ratios["webproxy"], ratios["fileserver"])
	}
}

func TestFig12Family(t *testing.T) {
	a, err := Fig12a(quick)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.Rows {
		if cellF(t, a, r, "Tinca TPM") <= cellF(t, a, r, "Classic TPM") {
			t.Fatalf("12a row %d: Tinca did not win", r)
		}
	}
	b, err := Fig12b(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Faster NVM (NVDIMM, row 1) improves both over PCM (row 0).
	if cellF(t, b, 1, "Tinca TPM") <= cellF(t, b, 0, "Tinca TPM") {
		t.Fatal("12b: NVDIMM not faster than PCM for Tinca")
	}
	// The gap narrows on faster NVM, as in the paper.
	gapPCM := cellF(t, b, 0, "Tinca/Classic")
	gapNVD := cellF(t, b, 1, "Tinca/Classic")
	if gapNVD >= gapPCM {
		t.Fatalf("12b: gap did not narrow on faster NVM (%.2f -> %.2f)", gapPCM, gapNVD)
	}
	c, err := Fig12c(quick)
	if err != nil {
		t.Fatal(err)
	}
	if cellF(t, c, 1, "write hit rate %") <= cellF(t, c, 0, "write hit rate %") {
		t.Fatal("12c: Tinca hit rate not higher than Classic")
	}
}

func TestFig13FileserverHeavier(t *testing.T) {
	tb, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Mean over windows: fileserver commits more blocks per txn.
	var fsum, wsum float64
	for r := range tb.Rows {
		fsum += cellF(t, tb, r, "fileserver blks/txn")
		wsum += cellF(t, tb, r, "webproxy blks/txn")
	}
	if fsum <= wsum {
		t.Fatalf("fileserver (%.0f) not heavier than webproxy (%.0f)", fsum, wsum)
	}
}

func TestRecoverabilityClean(t *testing.T) {
	tb, err := Recoverability(quick)
	if err != nil {
		t.Fatalf("recoverability failures: %v\n%s", err, tb)
	}
}

func TestAblationsDirections(t *testing.T) {
	tb, err := Ablations(quick)
	if err != nil {
		t.Fatal(err)
	}
	base := cellF(t, tb, 0, "clflush/write")
	doubleWrite := cellF(t, tb, 1, "clflush/write")
	ubj := cellF(t, tb, 2, "clflush/write")
	if doubleWrite <= base {
		t.Fatal("double-write ablation did not increase clflush")
	}
	if ubj <= base {
		t.Fatal("UBJ ablation did not increase clflush")
	}
}

func TestExtensionsRun(t *testing.T) {
	// Endurance: Tinca's media lifetime multiplier > 1; rotation levels
	// the hottest line.
	e, err := Endurance(quick)
	if err != nil {
		t.Fatal(err)
	}
	if cellF(t, e, 1, "line writes/MB") >= cellF(t, e, 0, "line writes/MB") {
		t.Fatal("Tinca wears media faster than Classic")
	}
	if cellF(t, e, 2, "hottest ptr line") >= cellF(t, e, 1, "hottest ptr line") {
		t.Fatal("pointer rotation did not level the pointer-line wear")
	}
	// clwb: the gap persists under cheaper flush instructions.
	c, err := CLWB(quick)
	if err != nil {
		t.Fatal(err)
	}
	for r := range c.Rows {
		if cellF(t, c, r, "Tinca IOPS") <= cellF(t, c, r, "Classic IOPS") {
			t.Fatalf("clwb row %d: Tinca did not win", r)
		}
	}
	// Recovery time: Tinca's sweep scales with capacity and stays small.
	rt, err := RecoveryTime(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Rows) != 3 {
		t.Fatalf("recovery rows = %d", len(rt.Rows))
	}
	// Journal modes: Tinca (row 0) beats every Classic mode, including
	// the weaker ordered mode (row 2).
	m, err := JournalModes(quick)
	if err != nil {
		t.Fatal(err)
	}
	tincaIOPS := cellF(t, m, 0, "write IOPS")
	for r := 1; r < len(m.Rows)-1; r++ { // exclude the unsafe no-journal row
		if tincaIOPS <= cellF(t, m, r, "write IOPS") {
			t.Fatalf("modes row %d (%s) beats Tinca", r, m.Rows[r][0])
		}
	}
	// Ordered must beat full data journalling (it writes less).
	if cellF(t, m, 2, "write IOPS") <= cellF(t, m, 1, "write IOPS") {
		t.Fatal("ordered mode not faster than data journalling")
	}
}

func TestGroupCommitScaling(t *testing.T) {
	tb, err := GroupCommitScaling(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("scaling rows = %d, want 4 (1/2/4/8 goroutines)", len(tb.Rows))
	}
	// Acceptance bar: >=1.5x commit throughput at 4 goroutines vs 1.
	if s := cellF(t, tb, 2, "speedup"); s < 1.5 {
		t.Fatalf("4-goroutine speedup %.2fx < 1.5x\n%s", s, tb)
	}
	// Batching must actually have happened at 8 goroutines.
	if ab := cellF(t, tb, 3, "avg batch"); ab <= 1.1 {
		t.Fatalf("8-goroutine avg batch %.2f: no coalescing\n%s", ab, tb)
	}
}

func TestMissPathScaling(t *testing.T) {
	tb, err := MissPathScaling(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("scaling rows = %d, want 6 (serial/concurrent x 1/4/8 goroutines)", len(tb.Rows))
	}
	// Acceptance bar: the concurrent miss pipeline must deliver >=2x the
	// serial miss path's read-miss throughput at 8 goroutines.
	s, ok := tb.Metrics["miss_speedup_8g_x"]
	if !ok {
		t.Fatalf("miss_speedup_8g_x metric missing\n%s", tb)
	}
	if s < 2 {
		t.Fatalf("8-goroutine miss-path speedup %.2fx < 2x\n%s", s, tb)
	}
	// The workload must actually be miss-dominated, or the figure measures
	// the wrong path.
	for r := range tb.Rows {
		if h := cellF(t, tb, r, "hit %"); h > 10 {
			t.Fatalf("row %d hit rate %.1f%%: miss stream dried up\n%s", r, h, tb)
		}
	}
	// The background evictor, not the foreground fallback, must reclaim
	// space in the concurrent rows.
	if pct, ok := tb.Metrics["direct_evict_pct"]; ok && pct > 1 {
		t.Fatalf("direct evictions were %.2f%% of evictions (want <=1%%)\n%s", pct, tb)
	}
}

func TestReadHitScaling(t *testing.T) {
	tb, err := ReadHitScaling(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("scaling rows = %d, want 10 (locked/seqlock x 1/4/8/16 goroutines + 2 writer rows)", len(tb.Rows))
	}
	// Acceptance bar (ISSUE 5): the seqlock fast path must deliver >=3x
	// the locked hit path's aggregate throughput at 8 readers on a single
	// hot shard.
	s, ok := tb.Metrics["readhit_speedup_8g_x"]
	if !ok {
		t.Fatalf("readhit_speedup_8g_x metric missing\n%s", tb)
	}
	if s < 3 {
		t.Fatalf("8-reader hit-path speedup %.2fx < 3x\n%s", s, tb)
	}
	// The hit-dominated workload must actually run the fast path, even
	// with a committer interleaving seals of the same hot set.
	ratio, ok := tb.Metrics["fast_hit_ratio"]
	if !ok {
		t.Fatalf("fast_hit_ratio metric missing\n%s", tb)
	}
	if ratio < 0.95 {
		t.Fatalf("fast-hit ratio %.3f < 0.95 under commit interference\n%s", ratio, tb)
	}
	// The one-reader seqlock row must not beat the locked row: a fast hit
	// performs identical simulated NVM work, so any gain there would mean
	// the fast path dropped part of the cost model.
	l1 := tb.Metrics["locked_1g_sim_ns_per_op"]
	s1 := tb.Metrics["seqlock_1g_sim_ns_per_op"]
	if l1 == 0 || s1 == 0 || s1 < l1*0.999 || s1 > l1*1.001 {
		t.Fatalf("single-reader cost differs: locked %.1fns vs seqlock %.1fns (fast path perturbs the cost model)\n%s", l1, s1, tb)
	}
}

func TestCommitPhaseBreakdown(t *testing.T) {
	tb, err := Run("phases", quick)
	if err != nil {
		t.Fatal(err)
	}
	systems := map[string]bool{}
	phases := map[string]bool{}
	for r, row := range tb.Rows {
		systems[row[0]] = true
		phases[tb.Cell(r, "phase")] = true
		if n := cellF(t, tb, r, "count"); n <= 0 {
			t.Fatalf("row %d (%s/%s): zero samples\n%s", r, row[0], tb.Cell(r, "phase"), tb)
		}
	}
	if !systems["Tinca"] || !systems["Classic"] {
		t.Fatalf("missing a system: %v", systems)
	}
	// The headline rows and the paper's pipeline phases must be present.
	for _, p := range []string{"whole commit", "data", "tail+fence", "desc+log", "commit blk"} {
		if !phases[p] {
			t.Fatalf("phase %q missing: %v", p, phases)
		}
	}
	if !strings.Contains(tb.String(), "==") {
		t.Fatal("phases table rendered empty")
	}
}

func TestTableCellPanicsOnUnknownColumn(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("x")
	defer func() {
		if recover() == nil {
			t.Fatal("Cell with bad column did not panic")
		}
	}()
	tb.Cell(0, "nope")
}

func TestIndexScale(t *testing.T) {
	tb, err := IndexScale(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (bucket/syncmap x 3 sizes)", len(tb.Rows))
	}
	// Acceptance bar (ISSUE 6): a warm read on the public API — copying
	// Read and zero-copy ReadView+Close alike — allocates nothing.
	for _, m := range []string{"read_allocs_per_op", "readview_allocs_per_op"} {
		v, ok := tb.Metrics[m]
		if !ok {
			t.Fatalf("%s metric missing\n%s", m, tb)
		}
		if v != 0 {
			t.Fatalf("%s = %v, want 0\n%s", m, v, tb)
		}
	}
	// Bucket lookups must not allocate at any size, and the hit cost must
	// stay in the same ballpark as the table grows (flat modulo cache
	// effects; the quick scale spans ~12K to 1.2M entries). Host wall
	// time is noisy in CI, so the bar is loose — sync.Map blows through
	// it by an order of magnitude at full scale.
	if f, ok := tb.Metrics["bucket_hit_flatness_x"]; !ok || f > 6 {
		t.Fatalf("bucket hit cost grew %vx across table sizes (want metric present and <= 6)\n%s", f, tb)
	}
}

func TestRecoveryBreakdown(t *testing.T) {
	tb, err := RecoveryBreakdown(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (undo/redo x 3 sizes)\n%s", len(tb.Rows), tb)
	}
	for r := range tb.Rows {
		mode := tb.Cell(r, "mode")
		switch mode {
		case "undo":
			// Mid-log crash: recovery must have revoked stray log entries
			// and done no role-switch completion.
			if s := cellF(t, tb, r, "stray"); s == 0 {
				t.Fatalf("row %d: undo trial revoked no strays\n%s", r, tb)
			}
			if n := cellF(t, tb, r, "redone"); n != 0 {
				t.Fatalf("row %d: undo trial redid %v entries\n%s", r, n, tb)
			}
		case "redo":
			// Post-Head-flip crash: a nonzero ring span whose role switch
			// recovery completed.
			if sp := cellF(t, tb, r, "ring span"); sp == 0 {
				t.Fatalf("row %d: redo trial has empty ring span\n%s", r, tb)
			}
			if n := cellF(t, tb, r, "redone"); n == 0 {
				t.Fatalf("row %d: redo trial redid nothing\n%s", r, tb)
			}
		default:
			t.Fatalf("row %d: unexpected mode %q\n%s", r, mode, tb)
		}
		if n := cellF(t, tb, r, "scanned"); n == 0 {
			t.Fatalf("row %d: entry-table scan saw nothing\n%s", r, tb)
		}
	}
	// The scan phase is O(capacity): 32MB must cost measurably more than
	// 8MB (the quick scale keeps the fill small; the sweep is not).
	s8 := tb.Metrics["recovery_8mb_undo_scan_ns"]
	s32 := tb.Metrics["recovery_32mb_undo_scan_ns"]
	if s8 == 0 || s32 < s8*2 {
		t.Fatalf("scan did not scale with capacity: 8MB %.0fns vs 32MB %.0fns\n%s", s8, s32, tb)
	}
}

func TestRecoveryScaleFlat(t *testing.T) {
	tb, err := RecoveryScale(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (off/on x 4 sizes)\n%s", len(tb.Rows), tb)
	}
	on, off := tb.Metrics["recovery_scale_on_growth"], tb.Metrics["recovery_scale_off_growth"]
	// The checkpointed restart must be flat (the CI gate), and the
	// full-scan baseline must actually grow — otherwise the figure is
	// vacuous and the flatness proves nothing.
	if on > 2 {
		t.Fatalf("checkpointed restart grew %.2fx across sizes\n%s", on, tb)
	}
	if off < 2 {
		t.Fatalf("full-scan baseline grew only %.2fx; the linear comparison is vacuous\n%s", off, tb)
	}
	if off <= on {
		t.Fatalf("baseline growth %.2fx not above checkpointed growth %.2fx\n%s", off, on, tb)
	}
}
