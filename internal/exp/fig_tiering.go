package exp

import (
	"fmt"
	"math/rand"

	"tinca/internal/blockdev"
	"tinca/internal/core"
	"tinca/internal/metrics"
	"tinca/internal/objstore"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// nvmCapacityBlocks opens a throwaway cache on a free disk to read the
// block capacity of an NVM device of the given size — the tiering
// figures size their working sets as multiples of it ("10x cache").
func nvmCapacityBlocks(nvmBytes int) (int, error) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(nvmBytes, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	c, err := core.Open(mem, disk, core.Options{RingBytes: 4096})
	if err != nil {
		return 0, err
	}
	capacity := c.Capacity()
	if err := c.Close(); err != nil {
		return 0, err
	}
	return capacity, nil
}

// ColdStartWarmup is the "fig: cold-start warmup" bench for the L3
// object tier (DESIGN.md §16). Two phases share the table:
//
// Cold scan: the store already holds the working set (a previous
// incarnation's uploads), NVM and L2 are empty, and one reader scans
// 10x the NVM capacity sequentially — the restart-warmup pattern. With
// read-ahead off every object is a demand fetch paying the full
// request latency serially; with k prefetch workers the stride
// detector keeps k fetches in flight, so the store's request-overlap
// window divides the service time. The headline prefetch_speedup_x
// (8 workers vs off) is CI-gated: tincabench -fig coldstart
// -min-prefetch-speedup 2.
//
// Writer: the same tiered stack under a pure commit workload (4x NVM
// capacity, three passes, so destage traffic continuously feeds the
// upload pipeline), once with the uploader paused and once live. The
// batched lanes (UploadTrigger absorption + 16-way PUT overlap + DRAM
// payload retention) must price the pipeline into the noise:
// uploader_overhead_pct is the added foreground time, asserted <= 5%.
func ColdStartWarmup(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: cold-start warmup — sequential scan from the object tier, and uploader drag on a foreground writer",
		"phase", "config", "ops/s (sim)", "sim ns/op", "detail", "vs baseline")

	capacity, err := nvmCapacityBlocks(2 << 20)
	if err != nil {
		return nil, err
	}

	const objectBlocks = 16
	span := 10 * capacity
	span -= span % objectBlocks

	type scanResult struct {
		perSec, nsPerOp float64
		gets            int64
		prefetchedPct   float64
	}
	scan := func(workers int) (scanResult, error) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		store := objstore.NewStore(objstore.S3, clock, rec)
		obj := make([]byte, objectBlocks*core.BlockSize)
		for k := uint64(0); k < uint64(span/objectBlocks); k++ {
			store.Put(k, obj) // the previous life's uploads
		}
		dev := blockdev.New(objstore.DevBlocksFor(256), blockdev.SSD, clock, rec)
		tier, err := objstore.NewTier(uint64(span), dev, store, rec, objstore.TierOptions{
			ObjectBlocks:    objectBlocks,
			PrefetchWorkers: workers,
		})
		if err != nil {
			return scanResult{}, err
		}
		mem := pmem.New(2<<20, pmem.NVDIMM, clock, rec)
		c, err := core.Open(mem, tier, core.Options{RingBytes: 4096})
		if err != nil {
			return scanResult{}, err
		}
		base := store.Stats()
		t0 := clock.Now()
		p := make([]byte, core.BlockSize)
		for i := 0; i < span; i++ {
			if err := c.Read(uint64(i), p); err != nil {
				return scanResult{}, err
			}
		}
		elapsed := (clock.Now() - t0).Seconds()
		gets := store.Stats().Gets - base.Gets
		ts := tier.Stats()
		if err := c.Close(); err != nil {
			return scanResult{}, err
		}
		tier.Close()
		r := scanResult{
			perSec:  float64(span) / elapsed,
			nsPerOp: elapsed * 1e9 / float64(span),
			gets:    gets,
		}
		if gets > 0 {
			r.prefetchedPct = 100 * float64(ts.Prefetches) / float64(gets)
		}
		return r, nil
	}

	var base scanResult
	for _, workers := range []int{0, 2, 4, 8} {
		r, err := scan(workers)
		if err != nil {
			return nil, err
		}
		cfg := "prefetch off"
		speedup := 1.0
		if workers > 0 {
			cfg = fmt.Sprintf("prefetch %dw", workers)
			speedup = ratio(r.perSec, base.perSec)
		} else {
			base = r
		}
		t.AddRow("cold scan", cfg, r.perSec, r.nsPerOp,
			fmt.Sprintf("GETs=%d prefetched=%.0f%%", r.gets, r.prefetchedPct),
			fmt.Sprintf("%.2fx", speedup))
		t.SetMetric(fmt.Sprintf("coldscan_%dw_reads_per_sec", workers), r.perSec)
		if workers > 0 {
			t.SetMetric(fmt.Sprintf("prefetch_speedup_%dw_x", workers), speedup)
		}
		if workers == 8 {
			t.SetMetric("prefetch_speedup_x", speedup)
		}
	}

	// Writer phase: foreground commits with the uploader paused vs live.
	const wObjectBlocks = 64
	wspan := 4 * capacity
	wspan -= wspan % wObjectBlocks
	const blocksPerTxn = 4
	passes := 3
	type writeResult struct {
		perSec, nsPerOp float64
		uploads, blocks int64
	}
	write := func(paused bool) (writeResult, error) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		store := objstore.NewStore(objstore.S3, clock, rec)
		slots := uint64(wspan + 256)
		dev := blockdev.New(objstore.DevBlocksFor(slots), blockdev.SSD, clock, rec)
		tier, err := objstore.NewTier(uint64(wspan), dev, store, rec, objstore.TierOptions{
			ObjectBlocks:  wObjectBlocks,
			UploadWorkers: 16,
			// Both runs get L2 room for the whole working set, so the
			// paused baseline never deadlocks on a stopped consumer and
			// the live run never stalls on backpressure: the delta is
			// purely the upload pipeline's charge.
			MaxDirty: int(slots),
		})
		if err != nil {
			return writeResult{}, err
		}
		if paused {
			tier.Pause(true)
		}
		mem := pmem.New(2<<20, pmem.NVDIMM, clock, rec)
		c, err := core.Open(mem, tier, core.Options{RingBytes: 4096})
		if err != nil {
			return writeResult{}, err
		}
		block := make([]byte, core.BlockSize)
		commits := passes * wspan / blocksPerTxn
		t0 := clock.Now()
		for i := 0; i < commits; i++ {
			txn := c.Begin()
			for b := 0; b < blocksPerTxn; b++ {
				txn.Write(uint64((i*blocksPerTxn+b)%wspan), block)
			}
			if err := txn.Commit(); err != nil {
				return writeResult{}, err
			}
		}
		elapsed := (clock.Now() - t0).Seconds()
		ts := tier.Stats()
		if err := c.Close(); err != nil {
			return writeResult{}, err
		}
		tier.Close()
		return writeResult{
			perSec:  float64(commits) / elapsed,
			nsPerOp: elapsed * 1e9 / float64(commits),
			uploads: ts.Uploads,
			blocks:  ts.UploadBlocks,
		}, nil
	}

	off, err := write(true)
	if err != nil {
		return nil, err
	}
	on, err := write(false)
	if err != nil {
		return nil, err
	}
	overheadPct := 100 * (ratio(off.perSec, on.perSec) - 1)
	t.AddRow("writer", "uploader paused", off.perSec, off.nsPerOp,
		fmt.Sprintf("PUTs=%d blocks=%d", off.uploads, off.blocks), "baseline")
	t.AddRow("writer", "uploader live", on.perSec, on.nsPerOp,
		fmt.Sprintf("PUTs=%d blocks=%d", on.uploads, on.blocks),
		fmt.Sprintf("%+.1f%% time", overheadPct))
	t.SetMetric("writer_commits_per_sec_paused", off.perSec)
	t.SetMetric("writer_commits_per_sec_live", on.perSec)
	t.SetMetric("uploader_overhead_pct", overheadPct)
	t.SetMetric("coldstart_span_x_cache", float64(span)/float64(capacity))

	t.Note = fmt.Sprintf("scan span = %d blocks (10x NVM capacity) out of a pre-populated store; prefetch overlaps object GETs the request window prices at serviceNS/k. Writer: %d passes over 4x capacity; the live uploader's drag stays within the ±5%% budget via UploadTrigger batching, 16 PUT lanes and DRAM payload retention", span, passes)
	return t, nil
}

// CapacityCost is the "fig: capacity-miss cost-vs-latency" bench:
// uniform random reads over a working set 10x the NVM capacity — the
// capacity-miss regime where most reads fall through to the object
// store — across object sizes. Small objects keep the read path cheap
// and fast (a 4KB point read drags only 32KB over the wire at
// ObjectBlocks=8); large objects amortize the per-request floors that
// favour the sequential scan and the upload pipeline (ColdStartWarmup)
// but multiply read amplification, dollars per application GB and GET
// tail latency under random access. The rows quantify that knob.
func CapacityCost(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("fig: capacity-miss cost-vs-latency — random reads at 10x cache capacity vs object size",
		"object KB", "reads/s (sim)", "GETs/s", "read-amp x", "$/GB read", "GET p99 ms")

	capacity, err := nvmCapacityBlocks(2 << 20)
	if err != nil {
		return nil, err
	}
	reads := o.scaled(2400, 600)

	for _, objBlocks := range []int{8, 32, 128} {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		store := objstore.NewStore(objstore.S3, clock, rec)
		span := 10 * capacity
		if r := span % objBlocks; r != 0 {
			span += objBlocks - r
		}
		obj := make([]byte, objBlocks*core.BlockSize)
		for k := uint64(0); k < uint64(span/objBlocks); k++ {
			store.Put(k, obj)
		}
		dev := blockdev.New(objstore.DevBlocksFor(256), blockdev.SSD, clock, rec)
		tier, err := objstore.NewTier(uint64(span), dev, store, rec, objstore.TierOptions{
			ObjectBlocks: objBlocks,
			// Uniform random access has no stride to detect; read-ahead
			// off keeps every GET a demand fetch the row can price.
			PrefetchWorkers: 0,
			// A tiny staging area: at 128-block objects the default 32
			// staged objects would hold the whole 10x working set in
			// DRAM and price the figure's reads at zero.
			StagingObjects: 4,
		})
		if err != nil {
			return nil, err
		}
		mem := pmem.New(2<<20, pmem.NVDIMM, clock, rec)
		c, err := core.Open(mem, tier, core.Options{RingBytes: 4096})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(o.Seed*1000 + int64(objBlocks)))
		base := store.Stats()
		t0 := clock.Now()
		p := make([]byte, core.BlockSize)
		for i := 0; i < reads; i++ {
			if err := c.Read(uint64(rng.Intn(span)), p); err != nil {
				return nil, err
			}
		}
		elapsed := (clock.Now() - t0).Seconds()
		st := store.Stats()
		p99ms := float64(rec.HistSnapshot(metrics.HistObjGet).Quantile(0.99)) / 1e6
		if err := c.Close(); err != nil {
			return nil, err
		}
		tier.Close()

		gets := st.Gets - base.Gets
		usefulBytes := float64(reads) * core.BlockSize
		amp := float64(st.BytesDown-base.BytesDown) / usefulBytes
		dollarsPerGB := float64(st.CostNano-base.CostNano) / 1e9 / (usefulBytes / (1 << 30))
		objKB := objBlocks * core.BlockSize / 1024
		t.AddRow(objKB, float64(reads)/elapsed, float64(gets)/elapsed, amp, dollarsPerGB, p99ms)
		t.SetMetric(fmt.Sprintf("capacity_reads_per_sec_%dk", objKB), float64(reads)/elapsed)
		t.SetMetric(fmt.Sprintf("capacity_dollars_per_gb_%dk", objKB), dollarsPerGB)
		t.SetMetric(fmt.Sprintf("capacity_get_p99_ms_%dk", objKB), p99ms)
		t.SetMetric(fmt.Sprintf("capacity_read_amp_%dk", objKB), amp)
	}
	t.SetMetric("capacity_span_x_cache", 10)

	t.Note = "uniform random 4KB reads, working set 10x NVM capacity, prefetch off: the capacity-miss regime. Larger objects amortize request floors for sequential IO (see coldstart) but under point reads multiply bytes moved, price per useful GB and GET tail latency — pick ObjectBlocks for the read pattern, not the upload pipeline"
	return t, nil
}
