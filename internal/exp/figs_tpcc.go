package exp

import (
	"fmt"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/oltp"
	"tinca/internal/pmem"
	"tinca/internal/stack"
)

// tpccRun holds one TPC-C measurement.
type tpccRun struct {
	tpm     float64
	clflush float64 // per TPC-C transaction
	disk    float64 // disk blocks written per TPC-C transaction
	hitRate float64 // NVM cache write hit rate
}

// runTPCC builds a stack, loads the database, and runs the mix.
func runTPCC(o Options, kind stack.Kind, users int, mod func(*stack.Config)) (tpccRun, error) {
	s, err := buildStack(kind, func(c *stack.Config) {
		// The paper's 32GB database against an 8GB NVM cache keeps
		// replacement active; the same 4:1 dataset:cache ratio here.
		c.NVMBytes = 5 << 20
		c.RingBytes = 256 << 10
		c.FSBlocks = 24576 // 96MB file system span
		c.GroupCommitBlocks = 1 << 20
		if mod != nil {
			mod(c)
		}
	})
	if err != nil {
		return tpccRun{}, err
	}
	e, err := oltp.Load(s.FS, oltp.Config{
		Warehouses: 4, CustomersPerDistrict: 300, Items: 1500, MaxOrders: 128, Seed: o.Seed,
	})
	if err != nil {
		return tpccRun{}, err
	}
	// Warm the cache into replacement steady state before measuring, as a
	// long-running benchmark would be (the paper measures 20-minute runs).
	if _, err := e.Run(s.Clock, users, o.scaled(600, 150), o.Seed-1); err != nil {
		return tpccRun{}, err
	}
	txns := o.scaled(800, 100)
	var res oltp.Result
	m, err := measure(s, func() error {
		var e2 error
		res, e2 = e.Run(s.Clock, users, txns, o.Seed+int64(users))
		return e2
	})
	if err != nil {
		return tpccRun{}, err
	}
	r := tpccRun{
		tpm:     res.TPM,
		clflush: m.per(metrics.NVMCLFlush, res.Committed),
		disk:    m.per(metrics.DiskBlocksWrite, res.Committed),
	}
	// Hit rate over the measured window only (lifetime counters would be
	// dominated by the cold load phase). Journal-area writes are counted
	// separately and excluded, so both systems compare data-block caching.
	hits := m.snap.Get(metrics.CacheWriteHit)
	misses := m.snap.Get(metrics.CacheWriteMiss)
	if hits+misses > 0 {
		r.hitRate = float64(hits) / float64(hits+misses)
	}
	return r, nil
}

// Fig8 reproduces Figure 8: TPC-C throughput (TPM), clflush per
// transaction and disk blocks per transaction as the user count varies
// over {5,10,15,20,40,60}.
func Fig8(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 8: TPC-C, Tinca vs Classic (PCM cache, SSD)",
		"users", "system", "TPM", "TPM ratio", "clflush/txn", "clflush % of Classic", "disk blks/txn", "blks ratio")
	t.Note = "paper shape: Tinca ~1.7-1.8x TPM; clflush/txn ~30-36% of Classic; disk blocks 1.9 vs 4.2 (5 users), 3.0 vs 7.0 (60 users)"

	for _, users := range []int{5, 10, 15, 20, 40, 60} {
		tinca, err := runTPCC(o, stack.Tinca, users, nil)
		if err != nil {
			return nil, err
		}
		classic, err := runTPCC(o, stack.Classic, users, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(users, "Classic", classic.tpm, "1.0", classic.clflush, "100", classic.disk, "1.0")
		t.AddRow(users, "Tinca", tinca.tpm,
			fmt.Sprintf("%.2fx", ratio(tinca.tpm, classic.tpm)),
			tinca.clflush, ratio(tinca.clflush, classic.clflush)*100,
			tinca.disk, fmt.Sprintf("%.2f", ratio(tinca.disk, classic.disk)))
	}
	return t, nil
}

// Fig12a reproduces Figure 12(a): the impact of the disk medium (SSD vs
// HDD) on TPC-C with 20 users. The paper reports the Tinca/Classic gap
// widening from 1.7x on SSD to 2.8x on HDD.
func Fig12a(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 12(a): disk media impact, TPC-C 20 users",
		"disk", "Classic TPM", "Tinca TPM", "Tinca/Classic")
	t.Note = "paper shape: gap widens from ~1.7x (SSD) to ~2.8x (HDD)"
	for _, disk := range []blockdev.Profile{blockdev.SSD, blockdev.HDD} {
		disk := disk
		tinca, err := runTPCC(o, stack.Tinca, 20, func(c *stack.Config) { c.DiskProfile = disk })
		if err != nil {
			return nil, err
		}
		classic, err := runTPCC(o, stack.Classic, 20, func(c *stack.Config) { c.DiskProfile = disk })
		if err != nil {
			return nil, err
		}
		t.AddRow(disk.Name, classic.tpm, tinca.tpm,
			fmt.Sprintf("%.2fx", ratio(tinca.tpm, classic.tpm)))
	}
	return t, nil
}

// Fig12b reproduces Figure 12(b): the impact of the NVM technology (PCM,
// NVDIMM, STT-RAM) on TPC-C with 20 users. The paper reports the gap
// narrowing slightly (1.7x -> 1.6x) on faster NVM.
func Fig12b(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 12(b): NVM media impact, TPC-C 20 users (SSD)",
		"NVM", "Classic TPM", "Tinca TPM", "Tinca/Classic")
	t.Note = "paper shape: both improve on faster NVM; gap narrows slightly from ~1.7x to ~1.6x"
	for _, nvm := range []pmem.Profile{pmem.PCM, pmem.NVDIMM, pmem.STTRAM} {
		nvm := nvm
		tinca, err := runTPCC(o, stack.Tinca, 20, func(c *stack.Config) { c.NVMProfile = nvm })
		if err != nil {
			return nil, err
		}
		classic, err := runTPCC(o, stack.Classic, 20, func(c *stack.Config) { c.NVMProfile = nvm })
		if err != nil {
			return nil, err
		}
		t.AddRow(nvm.Name, classic.tpm, tinca.tpm,
			fmt.Sprintf("%.2fx", ratio(tinca.tpm, classic.tpm)))
	}
	return t, nil
}

// Fig12c reproduces Figure 12(c): the NVM cache write hit rate during
// TPC-C with 20 users. The paper reports 80% for Classic vs 93% for
// Tinca — Tinca does not spend cache space on double writes.
func Fig12c(o Options) (*Table, error) {
	o = o.withDefaults()
	t := NewTable("Figure 12(c): cache write hit rate, TPC-C 20 users",
		"system", "write hit rate %")
	t.Note = "paper shape: Classic ~80%, Tinca ~93%"
	tinca, err := runTPCC(o, stack.Tinca, 20, nil)
	if err != nil {
		return nil, err
	}
	classic, err := runTPCC(o, stack.Classic, 20, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("Classic", classic.hitRate*100)
	t.AddRow("Tinca", tinca.hitRate*100)
	return t, nil
}
