package sim

import (
	"sync"
	"testing"
	"time"
)

func TestClockAdvances(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(5 * time.Microsecond)
	c.AdvanceNS(500)
	if got := c.Now(); got != 5500*time.Nanosecond {
		t.Fatalf("now = %v", got)
	}
	c.Advance(-time.Second) // negative ignored
	c.AdvanceNS(-1)
	if got := c.Now(); got != 5500*time.Nanosecond {
		t.Fatalf("negative advance changed clock: %v", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AdvanceNS(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 8000 {
		t.Fatalf("now = %v", got)
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	c.AdvanceNS(100)
	sw := NewStopwatch(c)
	c.AdvanceNS(50)
	if sw.Elapsed() != 50 {
		t.Fatalf("elapsed = %v", sw.Elapsed())
	}
	sw.Restart()
	if sw.Elapsed() != 0 {
		t.Fatal("restart did not zero")
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPickRespectsWeights(t *testing.T) {
	r := NewRand(3)
	counts := [3]int{}
	weights := []int{0, 90, 10}
	for i := 0; i < 10000; i++ {
		counts[Pick(r, weights)]++
	}
	if counts[0] != 0 {
		t.Fatal("zero-weight option picked")
	}
	frac := float64(counts[1]) / 10000
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("weight-90 fraction = %v", frac)
	}
}

func TestZipfSkewed(t *testing.T) {
	r := NewRand(5)
	z := Zipf(r, 1.2, 999)
	low := 0
	for i := 0; i < 10000; i++ {
		if z.Uint64() < 10 {
			low++
		}
	}
	if low < 5000 {
		t.Fatalf("zipf not skewed: only %d/10000 in the hot decile", low)
	}
	// theta <= 1 is clamped rather than panicking.
	_ = Zipf(r, 0.5, 10)
}
