// Package sim provides the deterministic simulation substrate shared by all
// device models in this repository: a virtual clock measured in simulated
// nanoseconds and seeded random-number helpers.
//
// Every device (NVM, SSD, HDD, network) charges its service time to a Clock
// instead of sleeping, so experiments are deterministic, laptop-runnable and
// orders of magnitude faster than wall time while preserving the relative
// performance shape the paper reports.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at time 0, ready to use. Advancing is lock-free so device models on
// multiple goroutines can charge time concurrently; the total is the sum of
// all charged service time, which models a fully serialized storage stack
// (the conservative model used throughout the evaluation).
type Clock struct {
	now atomic.Int64 // simulated nanoseconds since start
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Advance charges d of simulated service time and returns the new now.
// Negative durations are ignored.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Duration(c.now.Load())
	}
	return time.Duration(c.now.Add(int64(d)))
}

// AdvanceNS charges ns simulated nanoseconds.
func (c *Clock) AdvanceNS(ns int64) {
	if ns > 0 {
		c.now.Add(ns)
	}
}

// Now returns the current simulated time since start.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now.Store(0) }

// String formats the current simulated time.
func (c *Clock) String() string { return fmt.Sprintf("sim(%v)", c.Now()) }

// Stopwatch measures an interval of simulated time on a Clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// NewStopwatch starts measuring from the clock's current time.
func NewStopwatch(c *Clock) *Stopwatch { return &Stopwatch{clock: c, start: c.Now()} }

// Elapsed reports simulated time charged since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// Restart resets the stopwatch origin to the clock's current time.
func (s *Stopwatch) Restart() { s.start = s.clock.Now() }
