package sim

import "math/rand"

// NewRand returns a seeded PRNG. All randomized components (workload
// generators, crash injectors) take an explicit *rand.Rand so experiments
// are reproducible from a single seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf wraps rand.Zipf with the skew used by the workload generators.
// imax is the largest value generated (inclusive).
func Zipf(r *rand.Rand, theta float64, imax uint64) *rand.Zipf {
	if theta <= 1.0 {
		theta = 1.0001 // rand.NewZipf requires s > 1
	}
	return rand.NewZipf(r, theta, 1, imax)
}

// Pick returns an index in [0,len(weights)) with probability proportional
// to weights[i]. Weights must be non-negative and not all zero.
func Pick(r *rand.Rand, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	n := r.Intn(total)
	for i, w := range weights {
		if n < w {
			return i
		}
		n -= w
	}
	return len(weights) - 1
}
