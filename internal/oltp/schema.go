// Package oltp implements a small OLTP engine running the TPC-C
// transaction mix over the repository's file system — the MySQL/HammerDB
// stand-in of the paper's Section 5.2.2 experiment.
//
// Tables are files of fixed-size records addressed by the TPC-C primary
// keys, which map onto dense indices (warehouse, district, customer,
// stock, item); orders and order lines live in per-district rings sized by
// MaxOrders; history is an append-only file. Record sizes follow the TPC-C
// schema (customer ≈ 655B, stock ≈ 306B, ...), rounded up, so each
// transaction touches a realistic number of file-system blocks. Every
// read-write transaction ends with one fsync, i.e. one storage-stack
// transaction — the unit the paper's clflush/txn and disk-blocks/txn
// metrics are normalized against.
package oltp

import (
	"encoding/binary"
	"fmt"
)

// Record sizes (bytes), rounded up from the TPC-C schema.
const (
	whSize    = 96
	distSize  = 112
	custSize  = 672
	stockSize = 320
	itemSize  = 88
	orderSize = 48
	olSize    = 64
	histSize  = 64

	districtsPerWH = 10
	maxOLPerOrder  = 15
)

// Config sizes the database. Defaults are scaled down from the paper's
// 350-warehouse/32GB setup so experiments run in seconds; access-pattern
// shape (records touched per transaction) is unchanged.
type Config struct {
	Dir                  string // table directory (default "/tpcc")
	Warehouses           int    // default 2
	CustomersPerDistrict int    // default 120 (TPC-C: 3000)
	Items                int    // default 500 (TPC-C: 100000)
	MaxOrders            int    // order ring size per district (default 128)
	Seed                 int64
}

func (c Config) withDefaults() Config {
	if c.Dir == "" {
		c.Dir = "/tpcc"
	}
	if c.Warehouses == 0 {
		c.Warehouses = 2
	}
	if c.CustomersPerDistrict == 0 {
		c.CustomersPerDistrict = 120
	}
	if c.Items == 0 {
		c.Items = 500
	}
	if c.MaxOrders == 0 {
		c.MaxOrders = 128
	}
	return c
}

// Table paths.
func (c Config) warehouseTbl() string { return c.Dir + "/warehouse.tbl" }
func (c Config) districtTbl() string  { return c.Dir + "/district.tbl" }
func (c Config) customerTbl() string  { return c.Dir + "/customer.tbl" }
func (c Config) stockTbl() string     { return c.Dir + "/stock.tbl" }
func (c Config) itemTbl() string      { return c.Dir + "/item.tbl" }
func (c Config) orderTbl() string     { return c.Dir + "/order.tbl" }
func (c Config) orderlineTbl() string { return c.Dir + "/orderline.tbl" }
func (c Config) historyTbl() string   { return c.Dir + "/history.tbl" }

// Record offsets. All indices are zero-based.
func (c Config) whOff(w int) uint64 { return uint64(w) * whSize }
func (c Config) distOff(w, d int) uint64 {
	return uint64(w*districtsPerWH+d) * distSize
}
func (c Config) custOff(w, d, cu int) uint64 {
	return uint64((w*districtsPerWH+d)*c.CustomersPerDistrict+cu) * custSize
}
func (c Config) stockOff(w, i int) uint64 {
	return uint64(w*c.Items+i) * stockSize
}
func (c Config) itemOff(i int) uint64 { return uint64(i) * itemSize }
func (c Config) orderOff(w, d, o int) uint64 {
	return uint64((w*districtsPerWH+d)*c.MaxOrders+o%c.MaxOrders) * orderSize
}
func (c Config) olOff(w, d, o, l int) uint64 {
	return uint64(((w*districtsPerWH+d)*c.MaxOrders+o%c.MaxOrders)*maxOLPerOrder+l) * olSize
}

// district record fields (within its 112 bytes).
type district struct {
	nextOID      uint64 // next order id to assign
	deliveredOID uint64 // oldest undelivered order id
	ytd          uint64 // year-to-date payment total (cents)
	tax          uint64
}

func encodeDistrict(d district, b []byte) {
	binary.LittleEndian.PutUint64(b[0:], d.nextOID)
	binary.LittleEndian.PutUint64(b[8:], d.deliveredOID)
	binary.LittleEndian.PutUint64(b[16:], d.ytd)
	binary.LittleEndian.PutUint64(b[24:], d.tax)
}

func decodeDistrict(b []byte) district {
	return district{
		nextOID:      binary.LittleEndian.Uint64(b[0:]),
		deliveredOID: binary.LittleEndian.Uint64(b[8:]),
		ytd:          binary.LittleEndian.Uint64(b[16:]),
		tax:          binary.LittleEndian.Uint64(b[24:]),
	}
}

// customer record fields.
type customer struct {
	balance  int64
	ytd      uint64
	payments uint64
	delivCnt uint64
}

func encodeCustomer(cu customer, b []byte) {
	binary.LittleEndian.PutUint64(b[0:], uint64(cu.balance))
	binary.LittleEndian.PutUint64(b[8:], cu.ytd)
	binary.LittleEndian.PutUint64(b[16:], cu.payments)
	binary.LittleEndian.PutUint64(b[24:], cu.delivCnt)
}

func decodeCustomer(b []byte) customer {
	return customer{
		balance:  int64(binary.LittleEndian.Uint64(b[0:])),
		ytd:      binary.LittleEndian.Uint64(b[8:]),
		payments: binary.LittleEndian.Uint64(b[16:]),
		delivCnt: binary.LittleEndian.Uint64(b[24:]),
	}
}

// stock record fields.
type stock struct {
	qty      uint64
	ytd      uint64
	orderCnt uint64
}

func encodeStock(s stock, b []byte) {
	binary.LittleEndian.PutUint64(b[0:], s.qty)
	binary.LittleEndian.PutUint64(b[8:], s.ytd)
	binary.LittleEndian.PutUint64(b[16:], s.orderCnt)
}

func decodeStock(b []byte) stock {
	return stock{
		qty:      binary.LittleEndian.Uint64(b[0:]),
		ytd:      binary.LittleEndian.Uint64(b[8:]),
		orderCnt: binary.LittleEndian.Uint64(b[16:]),
	}
}

// order record fields.
type order struct {
	oid       uint64
	cid       uint64
	olCount   uint64
	carrierID uint64
}

func encodeOrder(o order, b []byte) {
	binary.LittleEndian.PutUint64(b[0:], o.oid)
	binary.LittleEndian.PutUint64(b[8:], o.cid)
	binary.LittleEndian.PutUint64(b[16:], o.olCount)
	binary.LittleEndian.PutUint64(b[24:], o.carrierID)
}

func decodeOrder(b []byte) order {
	return order{
		oid:       binary.LittleEndian.Uint64(b[0:]),
		cid:       binary.LittleEndian.Uint64(b[8:]),
		olCount:   binary.LittleEndian.Uint64(b[16:]),
		carrierID: binary.LittleEndian.Uint64(b[24:]),
	}
}

// orderline record fields.
type orderLine struct {
	itemID uint64
	qty    uint64
	amount uint64
}

func encodeOrderLine(ol orderLine, b []byte) {
	binary.LittleEndian.PutUint64(b[0:], ol.itemID)
	binary.LittleEndian.PutUint64(b[8:], ol.qty)
	binary.LittleEndian.PutUint64(b[16:], ol.amount)
}

func decodeOrderLine(b []byte) orderLine {
	return orderLine{
		itemID: binary.LittleEndian.Uint64(b[0:]),
		qty:    binary.LittleEndian.Uint64(b[8:]),
		amount: binary.LittleEndian.Uint64(b[16:]),
	}
}

// String summarizes the configuration.
func (c Config) String() string {
	c = c.withDefaults()
	return fmt.Sprintf("tpcc(W=%d, C/D=%d, I=%d)", c.Warehouses, c.CustomersPerDistrict, c.Items)
}
