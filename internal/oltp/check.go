package oltp

import "fmt"

// CheckConsistency verifies the database's structural invariants, the
// OLTP-level analogue of fsck. Because every read-write TPC-C transaction
// is one storage-stack transaction (sealed by a single fsync), these
// invariants must hold even immediately after crash recovery:
//
//   - per district: deliveredOID <= nextOID, and the ring never holds more
//     than MaxOrders undelivered orders;
//   - every live order slot holds the order it should (oid matches its
//     ring position) with a plausible line count;
//   - every order line of a live order is well-formed (quantity 1..10,
//     amount = qty*100, item within range);
//   - delivered orders carry a carrier id, undelivered ones do not.
func (e *Engine) CheckConsistency() error {
	cfg := e.cfg
	for w := 0; w < cfg.Warehouses; w++ {
		for d := 0; d < districtsPerWH; d++ {
			db, err := e.readRec(cfg.districtTbl(), cfg.distOff(w, d), distSize)
			if err != nil {
				return err
			}
			dist := decodeDistrict(db)
			if dist.deliveredOID > dist.nextOID {
				return fmt.Errorf("oltp: district (%d,%d): delivered %d > next %d",
					w, d, dist.deliveredOID, dist.nextOID)
			}
			if dist.nextOID-dist.deliveredOID > uint64(cfg.MaxOrders) {
				return fmt.Errorf("oltp: district (%d,%d): %d undelivered orders exceed ring of %d",
					w, d, dist.nextOID-dist.deliveredOID, cfg.MaxOrders)
			}
			// Live window: the most recent min(nextOID, MaxOrders) orders.
			start := int64(dist.nextOID) - int64(cfg.MaxOrders)
			if start < 0 {
				start = 0
			}
			for o := start; o < int64(dist.nextOID); o++ {
				ob, err := e.readRec(cfg.orderTbl(), cfg.orderOff(w, d, int(o)), orderSize)
				if err != nil {
					return err
				}
				ord := decodeOrder(ob)
				if ord.oid != uint64(o) {
					return fmt.Errorf("oltp: district (%d,%d) slot for order %d holds oid %d",
						w, d, o, ord.oid)
				}
				if ord.olCount < 5 || ord.olCount > maxOLPerOrder {
					return fmt.Errorf("oltp: order (%d,%d,%d): bad line count %d", w, d, o, ord.olCount)
				}
				if ord.cid >= uint64(cfg.CustomersPerDistrict) {
					return fmt.Errorf("oltp: order (%d,%d,%d): bad customer %d", w, d, o, ord.cid)
				}
				// Undelivered orders must not carry a carrier id. (The
				// converse does not hold: NewOrder may force-reclaim ring
				// slots past deliveredOID without a Delivery run.)
				if uint64(o) >= dist.deliveredOID && ord.carrierID != 0 {
					return fmt.Errorf("oltp: undelivered order (%d,%d,%d) has carrier %d", w, d, o, ord.carrierID)
				}
				for l := 0; l < int(ord.olCount); l++ {
					olb, err := e.readRec(cfg.orderlineTbl(), cfg.olOff(w, d, int(o), l), olSize)
					if err != nil {
						return err
					}
					ol := decodeOrderLine(olb)
					if ol.qty < 1 || ol.qty > 10 {
						return fmt.Errorf("oltp: order line (%d,%d,%d,%d): bad qty %d", w, d, o, l, ol.qty)
					}
					if ol.amount != ol.qty*100 {
						return fmt.Errorf("oltp: order line (%d,%d,%d,%d): amount %d != qty*100", w, d, o, l, ol.amount)
					}
					if ol.itemID >= uint64(cfg.Items) {
						return fmt.Errorf("oltp: order line (%d,%d,%d,%d): bad item %d", w, d, o, l, ol.itemID)
					}
				}
			}
		}
	}
	return nil
}
