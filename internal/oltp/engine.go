package oltp

import (
	"fmt"
	"math/rand"

	"tinca/internal/fs"
	"tinca/internal/sim"
	"tinca/internal/workload"
)

// Engine is a loaded TPC-C database over a FileAPI.
type Engine struct {
	f   workload.FileAPI
	cfg Config

	// Skewed record selection (TPC-C's NURand makes some customers and
	// items hot; a Zipf draw reproduces that locality, which is what
	// gives both caches their high hit rates in the paper's Figure 12(c)).
	zr    *rand.Rand
	custZ *rand.Zipf
	itemZ *rand.Zipf
}

// Load populates the TPC-C tables and returns an Engine. The load phase
// is excluded from measurement by snapshotting metrics afterwards.
func Load(f workload.FileAPI, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{f: f, cfg: cfg}
	if err := f.Mkdir(cfg.Dir); err != nil && err != fs.ErrExist {
		return nil, err
	}

	W, C, I, M := cfg.Warehouses, cfg.CustomersPerDistrict, cfg.Items, cfg.MaxOrders
	create := func(path string, size uint64) error {
		if err := f.Create(path); err != nil && err != fs.ErrExist {
			return err
		}
		// Materialize the file in bulk (64KB strides) so records exist,
		// syncing periodically so group commits stay within any journal.
		const chunk = 64 << 10
		zero := make([]byte, chunk)
		written := uint64(0)
		for off := uint64(0); off < size; off += chunk {
			n := uint64(chunk)
			if off+n > size {
				n = size - off
			}
			if err := f.WriteAt(path, off, zero[:n]); err != nil {
				return err
			}
			written += n
			if written >= 1<<20 {
				if err := f.Fsync(path); err != nil {
					return err
				}
				written = 0
			}
		}
		return f.Fsync(path)
	}

	type tbl struct {
		path string
		size uint64
	}
	tables := []tbl{
		{cfg.warehouseTbl(), uint64(W) * whSize},
		{cfg.districtTbl(), uint64(W*districtsPerWH) * distSize},
		{cfg.customerTbl(), uint64(W*districtsPerWH*C) * custSize},
		{cfg.stockTbl(), uint64(W*I) * stockSize},
		{cfg.itemTbl(), uint64(I) * itemSize},
		{cfg.orderTbl(), uint64(W*districtsPerWH*M) * orderSize},
		{cfg.orderlineTbl(), uint64(W*districtsPerWH*M*maxOLPerOrder) * olSize},
	}
	for _, t := range tables {
		if err := create(t.path, t.size); err != nil {
			return nil, fmt.Errorf("oltp: load %s: %w", t.path, err)
		}
	}
	if err := f.Create(cfg.historyTbl()); err != nil && err != fs.ErrExist {
		return nil, err
	}

	// Initialize districts (order rings start at id 0) and stock levels.
	buf := make([]byte, distSize)
	for w := 0; w < W; w++ {
		for d := 0; d < districtsPerWH; d++ {
			encodeDistrict(district{nextOID: 0, deliveredOID: 0, ytd: 0, tax: 8}, buf)
			if err := f.WriteAt(cfg.districtTbl(), cfg.distOff(w, d), buf); err != nil {
				return nil, err
			}
		}
	}
	sbuf := make([]byte, stockSize)
	for w := 0; w < W; w++ {
		for i := 0; i < I; i++ {
			encodeStock(stock{qty: 50 + uint64(i%50)}, sbuf)
			if err := f.WriteAt(cfg.stockTbl(), cfg.stockOff(w, i), sbuf); err != nil {
				return nil, err
			}
		}
	}
	if err := f.Fsync(cfg.districtTbl()); err != nil {
		return nil, err
	}
	e.zr = sim.NewRand(cfg.Seed + 7)
	e.custZ = sim.Zipf(e.zr, 1.2, uint64(cfg.CustomersPerDistrict-1))
	e.itemZ = sim.Zipf(e.zr, 1.2, uint64(cfg.Items-1))
	return e, nil
}

// pickCustomer draws a skewed customer index: like TPC-C's NURand, most
// accesses hit a hot subset while a uniform tail touches the whole table.
func (e *Engine) pickCustomer() int {
	if e.zr.Intn(100) < 35 {
		return e.zr.Intn(e.cfg.CustomersPerDistrict)
	}
	return int(e.custZ.Uint64())
}

// pickItem draws a skewed item index with a uniform tail.
func (e *Engine) pickItem() int {
	if e.zr.Intn(100) < 35 {
		return e.zr.Intn(e.cfg.Items)
	}
	return int(e.itemZ.Uint64())
}

// Config returns the engine's (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// ---- record access helpers ----------------------------------------------

func (e *Engine) readRec(path string, off uint64, size int) ([]byte, error) {
	b := make([]byte, size)
	if _, err := e.f.ReadAt(path, off, b); err != nil {
		return nil, err
	}
	return b, nil
}

func (e *Engine) writeRec(path string, off uint64, b []byte) error {
	return e.f.WriteAt(path, off, b)
}

// ---- the five TPC-C transactions -----------------------------------------

// NewOrder places an order of 5..15 lines (45% of the mix).
func (e *Engine) NewOrder(r *rand.Rand) error {
	cfg := e.cfg
	w := r.Intn(cfg.Warehouses)
	d := r.Intn(districtsPerWH)
	cu := e.pickCustomer()

	// Read customer (credit check) and district; assign the order id.
	if _, err := e.readRec(cfg.customerTbl(), cfg.custOff(w, d, cu), custSize); err != nil {
		return err
	}
	db, err := e.readRec(cfg.districtTbl(), cfg.distOff(w, d), distSize)
	if err != nil {
		return err
	}
	dist := decodeDistrict(db)
	oid := dist.nextOID
	dist.nextOID++
	// The order ring must not wrap onto undelivered orders.
	if dist.nextOID-dist.deliveredOID > uint64(cfg.MaxOrders) {
		dist.deliveredOID = dist.nextOID - uint64(cfg.MaxOrders)
	}
	encodeDistrict(dist, db)
	if err := e.writeRec(cfg.districtTbl(), cfg.distOff(w, d), db); err != nil {
		return err
	}

	nLines := 5 + r.Intn(11)
	ob := make([]byte, orderSize)
	encodeOrder(order{oid: oid, cid: uint64(cu), olCount: uint64(nLines)}, ob)
	if err := e.writeRec(cfg.orderTbl(), cfg.orderOff(w, d, int(oid)), ob); err != nil {
		return err
	}

	olb := make([]byte, olSize)
	for l := 0; l < nLines; l++ {
		item := e.pickItem()
		// 1% of lines are remote-warehouse accesses, per TPC-C.
		sw := w
		if cfg.Warehouses > 1 && r.Intn(100) == 0 {
			sw = (w + 1 + r.Intn(cfg.Warehouses-1)) % cfg.Warehouses
		}
		if _, err := e.readRec(cfg.itemTbl(), cfg.itemOff(item), itemSize); err != nil {
			return err
		}
		sb, err := e.readRec(cfg.stockTbl(), cfg.stockOff(sw, item), stockSize)
		if err != nil {
			return err
		}
		st := decodeStock(sb)
		qty := uint64(1 + r.Intn(10))
		if st.qty >= qty+10 {
			st.qty -= qty
		} else {
			st.qty += 91 - qty
		}
		st.ytd += qty
		st.orderCnt++
		encodeStock(st, sb)
		if err := e.writeRec(cfg.stockTbl(), cfg.stockOff(sw, item), sb); err != nil {
			return err
		}
		encodeOrderLine(orderLine{itemID: uint64(item), qty: qty, amount: qty * 100}, olb)
		if err := e.writeRec(cfg.orderlineTbl(), cfg.olOff(w, d, int(oid), l), olb); err != nil {
			return err
		}
	}
	return e.f.Fsync(cfg.districtTbl())
}

// Payment records a customer payment (43% of the mix).
func (e *Engine) Payment(r *rand.Rand) error {
	cfg := e.cfg
	w := r.Intn(cfg.Warehouses)
	d := r.Intn(districtsPerWH)
	cu := e.pickCustomer()
	amount := uint64(100 + r.Intn(500000))

	wb, err := e.readRec(cfg.warehouseTbl(), cfg.whOff(w), whSize)
	if err != nil {
		return err
	}
	// Warehouse YTD lives in the first 8 bytes.
	ytd := uint64(wb[0]) | uint64(wb[1])<<8
	_ = ytd
	for i := 0; i < 8; i++ {
		wb[i] = byte(amount >> (8 * i))
	}
	if err := e.writeRec(cfg.warehouseTbl(), cfg.whOff(w), wb); err != nil {
		return err
	}

	db, err := e.readRec(cfg.districtTbl(), cfg.distOff(w, d), distSize)
	if err != nil {
		return err
	}
	dist := decodeDistrict(db)
	dist.ytd += amount
	encodeDistrict(dist, db)
	if err := e.writeRec(cfg.districtTbl(), cfg.distOff(w, d), db); err != nil {
		return err
	}

	cb, err := e.readRec(cfg.customerTbl(), cfg.custOff(w, d, cu), custSize)
	if err != nil {
		return err
	}
	cust := decodeCustomer(cb)
	cust.balance -= int64(amount)
	cust.ytd += amount
	cust.payments++
	encodeCustomer(cust, cb)
	if err := e.writeRec(cfg.customerTbl(), cfg.custOff(w, d, cu), cb); err != nil {
		return err
	}

	hb := make([]byte, histSize)
	encodeOrderLine(orderLine{itemID: uint64(cu), qty: amount, amount: amount}, hb)
	if err := e.f.Append(cfg.historyTbl(), hb); err != nil {
		return err
	}
	return e.f.Fsync(cfg.districtTbl())
}

// OrderStatus reads a customer's most recent order (4%, read-only).
func (e *Engine) OrderStatus(r *rand.Rand) error {
	cfg := e.cfg
	w := r.Intn(cfg.Warehouses)
	d := r.Intn(districtsPerWH)
	cu := e.pickCustomer()
	if _, err := e.readRec(cfg.customerTbl(), cfg.custOff(w, d, cu), custSize); err != nil {
		return err
	}
	db, err := e.readRec(cfg.districtTbl(), cfg.distOff(w, d), distSize)
	if err != nil {
		return err
	}
	dist := decodeDistrict(db)
	if dist.nextOID == 0 {
		return nil // no orders yet
	}
	oid := int(dist.nextOID - 1)
	ob, err := e.readRec(cfg.orderTbl(), cfg.orderOff(w, d, oid), orderSize)
	if err != nil {
		return err
	}
	o := decodeOrder(ob)
	for l := 0; l < int(o.olCount) && l < maxOLPerOrder; l++ {
		if _, err := e.readRec(cfg.orderlineTbl(), cfg.olOff(w, d, oid, l), olSize); err != nil {
			return err
		}
	}
	return nil
}

// Delivery delivers the oldest undelivered order in each district (4%).
func (e *Engine) Delivery(r *rand.Rand) error {
	cfg := e.cfg
	w := r.Intn(cfg.Warehouses)
	delivered := false
	for d := 0; d < districtsPerWH; d++ {
		db, err := e.readRec(cfg.districtTbl(), cfg.distOff(w, d), distSize)
		if err != nil {
			return err
		}
		dist := decodeDistrict(db)
		if dist.deliveredOID >= dist.nextOID {
			continue
		}
		oid := int(dist.deliveredOID)
		dist.deliveredOID++
		encodeDistrict(dist, db)
		if err := e.writeRec(cfg.districtTbl(), cfg.distOff(w, d), db); err != nil {
			return err
		}
		ob, err := e.readRec(cfg.orderTbl(), cfg.orderOff(w, d, oid), orderSize)
		if err != nil {
			return err
		}
		o := decodeOrder(ob)
		o.carrierID = uint64(1 + r.Intn(10))
		encodeOrder(o, ob)
		if err := e.writeRec(cfg.orderTbl(), cfg.orderOff(w, d, oid), ob); err != nil {
			return err
		}
		total := uint64(0)
		for l := 0; l < int(o.olCount) && l < maxOLPerOrder; l++ {
			olb, err := e.readRec(cfg.orderlineTbl(), cfg.olOff(w, d, oid, l), olSize)
			if err != nil {
				return err
			}
			total += decodeOrderLine(olb).amount
		}
		cb, err := e.readRec(cfg.customerTbl(), cfg.custOff(w, d, int(o.cid)), custSize)
		if err != nil {
			return err
		}
		cust := decodeCustomer(cb)
		cust.balance += int64(total)
		cust.delivCnt++
		encodeCustomer(cust, cb)
		if err := e.writeRec(cfg.customerTbl(), cfg.custOff(w, d, int(o.cid)), cb); err != nil {
			return err
		}
		delivered = true
	}
	if !delivered {
		return nil
	}
	return e.f.Fsync(cfg.districtTbl())
}

// StockLevel counts low-stock items among recent orders (4%, read-only).
func (e *Engine) StockLevel(r *rand.Rand) error {
	cfg := e.cfg
	w := r.Intn(cfg.Warehouses)
	d := r.Intn(districtsPerWH)
	db, err := e.readRec(cfg.districtTbl(), cfg.distOff(w, d), distSize)
	if err != nil {
		return err
	}
	dist := decodeDistrict(db)
	low := 0
	const threshold = 15
	start := int64(dist.nextOID) - 20
	if start < 0 {
		start = 0
	}
	for o := start; o < int64(dist.nextOID); o++ {
		ob, err := e.readRec(cfg.orderTbl(), cfg.orderOff(w, d, int(o)), orderSize)
		if err != nil {
			return err
		}
		ord := decodeOrder(ob)
		for l := 0; l < int(ord.olCount) && l < maxOLPerOrder; l++ {
			olb, err := e.readRec(cfg.orderlineTbl(), cfg.olOff(w, d, int(o), l), olSize)
			if err != nil {
				return err
			}
			ol := decodeOrderLine(olb)
			sb, err := e.readRec(cfg.stockTbl(), cfg.stockOff(w, int(ol.itemID)%cfg.Items), stockSize)
			if err != nil {
				return err
			}
			if decodeStock(sb).qty < threshold {
				low++
			}
		}
	}
	return nil
}

// Attach binds an Engine to an already-loaded database (e.g. after crash
// recovery) without re-running the load phase. cfg must match the
// configuration the database was loaded with.
func Attach(f workload.FileAPI, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if _, err := f.Stat(cfg.districtTbl()); err != nil {
		return nil, fmt.Errorf("oltp: attach: %w", err)
	}
	e := &Engine{f: f, cfg: cfg}
	e.zr = sim.NewRand(cfg.Seed + 7)
	e.custZ = sim.Zipf(e.zr, 1.2, uint64(cfg.CustomersPerDistrict-1))
	e.itemZ = sim.Zipf(e.zr, 1.2, uint64(cfg.Items-1))
	return e, nil
}
