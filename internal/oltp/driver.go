package oltp

import (
	"time"

	"tinca/internal/sim"
)

// Mix is the standard TPC-C transaction mix (percent).
var Mix = struct {
	NewOrder, Payment, OrderStatus, Delivery, StockLevel int
}{45, 43, 4, 4, 4}

// Result summarizes a TPC-C run.
type Result struct {
	Committed  int64
	Users      int
	Elapsed    time.Duration // simulated
	TPM        float64       // committed transactions per simulated minute
	PerKind    [5]int64
	Contention time.Duration // simulated time charged to lock contention
}

// contentionGamma scales the lock-contention model: each transaction is
// delayed by gamma*(users-1) times its own service time, modelling the
// convoy effect of more concurrent users on a serialized commit path.
// The value is calibrated so throughput drops ~35-40% from 5 to 60 users,
// the range HammerDB+MySQL shows in the paper's Figure 8(a).
const contentionGamma = 0.012

// Run executes txns transactions of the standard mix with the given
// simulated user count, charging contention delay to the clock.
func (e *Engine) Run(clock *sim.Clock, users, txns int, seed int64) (Result, error) {
	r := sim.NewRand(seed)
	weights := []int{Mix.NewOrder, Mix.Payment, Mix.OrderStatus, Mix.Delivery, Mix.StockLevel}
	res := Result{Users: users}
	start := clock.Now()
	for i := 0; i < txns; i++ {
		t0 := clock.Now()
		kind := sim.Pick(r, weights)
		var err error
		switch kind {
		case 0:
			err = e.NewOrder(r)
		case 1:
			err = e.Payment(r)
		case 2:
			err = e.OrderStatus(r)
		case 3:
			err = e.Delivery(r)
		case 4:
			err = e.StockLevel(r)
		}
		if err != nil {
			return res, err
		}
		res.PerKind[kind]++
		res.Committed++
		if users > 1 {
			svc := clock.Now() - t0
			delay := time.Duration(contentionGamma * float64(users-1) * float64(svc))
			clock.Advance(delay)
			res.Contention += delay
		}
	}
	res.Elapsed = clock.Now() - start
	if res.Elapsed > 0 {
		res.TPM = float64(res.Committed) / res.Elapsed.Minutes()
	}
	return res, nil
}
