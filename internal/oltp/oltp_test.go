package oltp_test

import (
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/oltp"
	"tinca/internal/pmem"
	"tinca/internal/sim"
	"tinca/internal/stack"
)

func newEngine(t *testing.T, kind stack.Kind) (*stack.Stack, *oltp.Engine) {
	t.Helper()
	s, err := stack.New(stack.Config{
		Kind:              kind,
		NVMBytes:          8 << 20,
		NVMProfile:        pmem.NVDIMM,
		DiskProfile:       blockdev.Null,
		FSBlocks:          16384,
		GroupCommitBlocks: 1 << 20, // commit only on fsync: one txn per TPC-C txn
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := oltp.Load(s.FS, oltp.Config{Warehouses: 2, CustomersPerDistrict: 60, Items: 200, MaxOrders: 64})
	if err != nil {
		t.Fatal(err)
	}
	return s, e
}

func TestTPCCMixRuns(t *testing.T) {
	s, e := newEngine(t, stack.Tinca)
	res, err := e.Run(s.Clock, 1, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 400 {
		t.Fatalf("committed = %d", res.Committed)
	}
	// All five kinds occur.
	for k, n := range res.PerKind {
		if n == 0 {
			t.Fatalf("kind %d never ran", k)
		}
	}
	// Mix roughly matches 45/43/4/4/4.
	no := float64(res.PerKind[0]) / 400
	if no < 0.35 || no > 0.55 {
		t.Fatalf("NewOrder fraction %v", no)
	}
	if err := s.FS.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTPCCFsyncPerTxn(t *testing.T) {
	s, e := newEngine(t, stack.Tinca)
	before := s.Rec.Get(metrics.TxnCommit)
	res, err := e.Run(s.Clock, 1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	commits := s.Rec.Get(metrics.TxnCommit) - before
	// Read-only transactions (OrderStatus, StockLevel ≈ 8%) don't commit;
	// everything else commits exactly once.
	writeTxns := res.PerKind[0] + res.PerKind[1] + res.PerKind[3]
	if commits > writeTxns+5 || commits < writeTxns-5 {
		t.Fatalf("commits = %d, write txns = %d", commits, writeTxns)
	}
}

func TestTPCCUsersContention(t *testing.T) {
	tpm := func(users int) float64 {
		s, e := newEngine(t, stack.Tinca)
		res, err := e.Run(s.Clock, users, 300, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res.TPM
	}
	t5, t60 := tpm(5), tpm(60)
	if t60 >= t5 {
		t.Fatalf("TPM did not drop with users: %v -> %v", t5, t60)
	}
	drop := 1 - t60/t5
	if drop < 0.2 || drop > 0.6 {
		t.Fatalf("drop = %.2f, want ~0.35-0.40", drop)
	}
}

func TestTPCCOnClassic(t *testing.T) {
	s, e := newEngine(t, stack.Classic)
	if _, err := e.Run(s.Clock, 5, 200, 12); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTPCCDeterministic(t *testing.T) {
	run := func() int64 {
		s, e := newEngine(t, stack.Tinca)
		if _, err := e.Run(s.Clock, 10, 150, 3); err != nil {
			t.Fatal(err)
		}
		return int64(s.Clock.Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic simulated time: %d vs %d", a, b)
	}
}

func TestTPCCConsistencyAfterRun(t *testing.T) {
	s, e := newEngine(t, stack.Tinca)
	if _, err := e.Run(s.Clock, 10, 500, 21); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTPCCConsistencyAfterCrash(t *testing.T) {
	// Every read-write TPC-C transaction is one fsync = one storage
	// transaction; after a power failure at any point, the database must
	// still satisfy its invariants (the in-flight transaction is either
	// fully applied or fully revoked).
	rng := sim.NewRand(17)
	crashes := 0
	for trial := int64(0); trial < 10; trial++ {
		s, err := stack.New(stack.Config{
			Kind:              stack.Tinca,
			NVMBytes:          8 << 20,
			NVMProfile:        pmem.NVDIMM,
			DiskProfile:       blockdev.Null,
			FSBlocks:          16384,
			GroupCommitBlocks: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := oltp.Load(s.FS, oltp.Config{Warehouses: 2, CustomersPerDistrict: 60, Items: 200, MaxOrders: 64})
		if err != nil {
			t.Fatal(err)
		}
		s.Mem.ArmCrash(rng.Int63n(25000) + 500)
		crashed, _ := pmem.CatchCrash(func() {
			if _, err := e.Run(s.Clock, 10, 150, trial); err != nil {
				panic(err)
			}
		})
		if !crashed {
			s.Mem.DisarmCrash()
		} else {
			crashes++
		}
		s.Crash(rng, 0.5)
		if err := s.Remount(); err != nil {
			t.Fatalf("trial %d remount: %v", trial, err)
		}
		if err := s.FS.Check(); err != nil {
			t.Fatalf("trial %d fsck: %v", trial, err)
		}
		// Rebind the engine to the recovered file system and verify the
		// database invariants.
		e2, err := oltp.Attach(s.FS, e.Config())
		if err != nil {
			t.Fatalf("trial %d attach: %v", trial, err)
		}
		if err := e2.CheckConsistency(); err != nil {
			t.Fatalf("trial %d (crashed=%v): %v", trial, crashed, err)
		}
		// The database stays usable after recovery.
		if _, err := e2.Run(s.Clock, 5, 20, trial+100); err != nil {
			t.Fatalf("trial %d post-recovery run: %v", trial, err)
		}
	}
	if crashes == 0 {
		t.Fatal("no trial crashed; tighten the window")
	}
	t.Logf("%d/10 trials crashed mid-benchmark, all consistent", crashes)
}

func TestIndividualTransactions(t *testing.T) {
	s, e := newEngine(t, stack.Tinca)
	r := sim.NewRand(3)
	// Each transaction kind runs standalone and preserves invariants.
	for i := 0; i < 25; i++ {
		if err := e.NewOrder(r); err != nil {
			t.Fatalf("NewOrder %d: %v", i, err)
		}
	}
	if err := e.Payment(r); err != nil {
		t.Fatal(err)
	}
	if err := e.OrderStatus(r); err != nil {
		t.Fatal(err)
	}
	if err := e.Delivery(r); err != nil {
		t.Fatal(err)
	}
	if err := e.StockLevel(r); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderRingWrapsWithoutDelivery(t *testing.T) {
	// Flood one warehouse with orders far past MaxOrders: NewOrder's
	// ring-reclaim must keep the invariants without any Delivery run.
	s, e := newEngine(t, stack.Tinca)
	r := sim.NewRand(8)
	for i := 0; i < 900; i++ { // 64-order rings per district, ~90/district
		if err := e.NewOrder(r); err != nil {
			t.Fatalf("order %d: %v", i, err)
		}
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	_ = s
}

func TestAttachRequiresLoadedDB(t *testing.T) {
	s, err := stack.New(stack.Config{
		Kind: stack.Tinca, NVMBytes: 4 << 20,
		NVMProfile: pmem.NVDIMM, DiskProfile: blockdev.Null, FSBlocks: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oltp.Attach(s.FS, oltp.Config{}); err == nil {
		t.Fatal("attach to empty file system succeeded")
	}
}
