// Package flight implements Tinca's crash-surviving "black box": a small
// fixed-size event ring in simulated NVM whose 64-byte records are written
// with the same store+clflush+sfence discipline as the main transaction
// log, so the telemetry that explains a crash survives the crash itself
// (DESIGN.md §13).
//
// Each record occupies exactly one cache line and is self-describing: a
// monotonic sequence number, the simulated timestamp, the event type, and
// three event-specific payload words, sealed by a mixing checksum over the
// rest of the line. There is no persisted head pointer — the decoder scans
// every slot, keeps the checksum-valid records, and reconstructs the write
// order from the sequence numbers. Because each record is flushed and
// fenced before the next record's store begins, at most one slot (the
// record in flight at the crash) can be torn, and a torn record simply
// fails its checksum: the surviving records always form a contiguous
// sequence window, so a partial write can never fabricate history.
//
// Writes go through pmem.PersistLineSilent, which persists crash-
// consistently but charges no simulated time, counters, or wear — the
// black box never perturbs the figures it is meant to explain.
package flight

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// RecordSize is the size of one flight record: exactly one cache line, so
// a single clflush persists a whole record and tearing is confined to the
// line the crash interrupted.
const RecordSize = pmem.LineSize

// DefaultSlots is the default ring capacity. 256 records x 64B = 16KiB of
// NVM — four data blocks' worth, a rounding error against the cache it
// instruments, yet deep enough to hold the full seal/destage/evict recent
// history of any crash the sweep can produce.
const DefaultSlots = 256

// EventType identifies what a flight record describes.
type EventType uint16

// Event types. The numeric values are persisted in NVM; append only.
const (
	EvNone EventType = iota

	// Group-commit seal lifecycle (core/group.go runBatch). Gen is the
	// seal sequence number.
	EvSealBegin    // Block = planned log entries, Arg = batch size (txns)
	EvSealPersist  // Block = ring Head after the seal; emitted after the Tail flip (commit point)
	EvSealComplete // volatile epilogue done (unpin, LRU, destage enqueue)

	// Serial-commit lifecycle (core/txn.go commitSerialLocked).
	EvSerialBegin  // Block = txn blocks
	EvSerialCommit // Block = ring Head; emitted after the Tail flip
	EvSealAbort    // alloc failure unwound the seal; Block = ring Head after revoke

	// Recovery phase boundaries (core/recovery.go). Arg carries the
	// phase's entry count where one applies.
	EvRecoverBegin
	EvRecoverScan    // Arg = entries scanned
	EvRecoverRedo    // Arg = entries redone
	EvRecoverUndo    // Arg = entries undone + stray entries revoked
	EvRecoverRebuild // Arg = resident blocks rebuilt
	EvRecoverDone

	// Background machinery.
	EvDestage    // Block = disk block destaged
	EvEvictBatch // Arg = victims evicted in the batch

	// Recovery failure (core/recovery.go): one of recover()'s structural
	// error returns fired. Block carries the offending value (position,
	// slot or block number) and Arg the failure code, so a failed restart
	// is distinguishable from one that crashed mid-pass.
	EvRecoverFail

	// Checkpoint writer lifecycle (core/checkpoint.go). Gen is the
	// checkpoint epoch being written.
	EvCkptBegin // Block = ring Head, Arg = ring Tail at the snapshot
	EvCkptDone  // Block = valid entries snapshotted

	evSentinel // one past the last valid type
)

func (t EventType) String() string {
	switch t {
	case EvNone:
		return "none"
	case EvSealBegin:
		return "seal-begin"
	case EvSealPersist:
		return "seal-persist"
	case EvSealComplete:
		return "seal-complete"
	case EvSerialBegin:
		return "serial-begin"
	case EvSerialCommit:
		return "serial-commit"
	case EvSealAbort:
		return "seal-abort"
	case EvRecoverBegin:
		return "recover-begin"
	case EvRecoverScan:
		return "recover-scan"
	case EvRecoverRedo:
		return "recover-redo"
	case EvRecoverUndo:
		return "recover-undo"
	case EvRecoverRebuild:
		return "recover-rebuild"
	case EvRecoverDone:
		return "recover-done"
	case EvDestage:
		return "destage"
	case EvEvictBatch:
		return "evict-batch"
	case EvRecoverFail:
		return "recover-fail"
	case EvCkptBegin:
		return "ckpt-begin"
	case EvCkptDone:
		return "ckpt-done"
	default:
		return fmt.Sprintf("event(%d)", uint16(t))
	}
}

// Record is one decoded flight event.
//
// On-line layout (little-endian, 64 bytes):
//
//	[ 0, 8)  Seq      monotonic sequence number, starts at 1 (0 = never written)
//	[ 8,16)  TimeNS   simulated timestamp
//	[16,24)  Gen      seal sequence number (0 if not applicable)
//	[24,32)  Block    event-specific (ring head, disk block, ...)
//	[32,40)  Arg      event-specific (batch size, entry count, ...)
//	[40,42)  Type     EventType
//	[42,44)  Shard    issuing shard (0 if not applicable)
//	[44,56)  reserved (zero)
//	[56,64)  Checksum mix64 chain over words [0,56)
type Record struct {
	Seq    uint64
	TimeNS int64
	Gen    uint64
	Block  uint64
	Arg    uint64
	Type   EventType
	Shard  uint16
}

func (r Record) String() string {
	return fmt.Sprintf("#%d t=%dns %s gen=%d block=%d arg=%d shard=%d",
		r.Seq, r.TimeNS, r.Type, r.Gen, r.Block, r.Arg, r.Shard)
}

// mix64 is the splitmix64 finalizer: every input bit avalanches across the
// output, so a torn record (some 8-byte words old, some new) disagrees
// with its stored checksum except with 2^-64 probability. A plain XOR
// would not do: swapping equal contributions between words preserves XOR.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func checksum(line []byte) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 56; i += 8 {
		h = mix64(h ^ binary.LittleEndian.Uint64(line[i:]))
	}
	return h
}

func encode(r Record) (line [RecordSize]byte) {
	binary.LittleEndian.PutUint64(line[0:], r.Seq)
	binary.LittleEndian.PutUint64(line[8:], uint64(r.TimeNS))
	binary.LittleEndian.PutUint64(line[16:], r.Gen)
	binary.LittleEndian.PutUint64(line[24:], r.Block)
	binary.LittleEndian.PutUint64(line[32:], r.Arg)
	binary.LittleEndian.PutUint16(line[40:], uint16(r.Type))
	binary.LittleEndian.PutUint16(line[42:], r.Shard)
	binary.LittleEndian.PutUint64(line[56:], checksum(line[:]))
	return line
}

// decode parses one slot. ok is false when the checksum does not match —
// a never-written or torn slot.
func decode(line []byte) (r Record, ok bool) {
	if binary.LittleEndian.Uint64(line[56:]) != checksum(line) {
		return Record{}, false
	}
	r.Seq = binary.LittleEndian.Uint64(line[0:])
	r.TimeNS = int64(binary.LittleEndian.Uint64(line[8:]))
	r.Gen = binary.LittleEndian.Uint64(line[16:])
	r.Block = binary.LittleEndian.Uint64(line[24:])
	r.Arg = binary.LittleEndian.Uint64(line[32:])
	r.Type = EventType(binary.LittleEndian.Uint16(line[40:]))
	r.Shard = binary.LittleEndian.Uint16(line[42:])
	if r.Seq == 0 || r.Type == EvNone || r.Type >= evSentinel {
		return Record{}, false
	}
	return r, true
}

// Ring is the writer side of the flight recorder. One Ring instance is
// owned by a core.Cache; Emit is safe for concurrent use (destager,
// evictor and committers all log). The Ring's mutex is leaf-level: it is
// taken with core's cache/shard locks held and takes only the pmem device
// lock inside.
type Ring struct {
	mu    sync.Mutex
	dev   *pmem.Device
	clock *sim.Clock
	off   int
	slots int
	seq   uint64 // last sequence number written (0 = none)
}

// New creates a writer over a freshly formatted region: [off, off+slots*64)
// of dev. The region is expected to be zero (format clears it); sequence
// numbers start at 1.
func New(dev *pmem.Device, clock *sim.Clock, off, slots int) *Ring {
	if slots <= 0 {
		panic("flight: non-positive slots")
	}
	return &Ring{dev: dev, clock: clock, off: off, slots: slots}
}

// Attach creates a writer over a region that survived a crash: it scans
// for the largest valid sequence number and continues numbering after it,
// so post-recovery events extend the same timeline the pre-crash run
// wrote.
func Attach(dev *pmem.Device, clock *sim.Clock, off, slots int) *Ring {
	r := New(dev, clock, off, slots)
	for _, rec := range DecodeRegion(dev, off, slots) {
		if rec.Seq > r.seq {
			r.seq = rec.Seq
		}
	}
	return r
}

// Off returns the region's byte offset in the device.
func (r *Ring) Off() int { return r.off }

// Slots returns the ring capacity in records.
func (r *Ring) Slots() int { return r.slots }

// Emit durably appends one event. The record is fully persisted (stored,
// flushed, fenced) before Emit returns; an injected crash mid-Emit panics
// exactly like a crash inside the main log's persist sequence and may
// leave the slot torn — which decode treats as absent.
func (r *Ring) Emit(t EventType, shard uint16, gen, block, arg uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := r.seq + 1
	rec := Record{
		Seq:    seq,
		TimeNS: int64(r.clock.Now()),
		Gen:    gen,
		Block:  block,
		Arg:    arg,
		Type:   t,
		Shard:  shard,
	}
	slot := int((seq - 1) % uint64(r.slots))
	r.dev.PersistLineSilent(r.off+slot*RecordSize, encode(rec))
	// The sequence number is consumed only after the record is fully
	// persisted: a crash panic inside the persist unwinds with r.seq
	// unchanged, so the next emitter — a concurrent seal on another ring
	// draining after the injected crash — reuses the number and the slot.
	// Otherwise the dead emitter's skipped number would read back as an
	// interior hole in the surviving window, which CheckWindow (rightly)
	// rejects as corruption.
	r.seq = seq
}

// Seq returns the last sequence number written.
func (r *Ring) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// DecodeRegion scans every slot of a flight region and returns the valid
// records sorted by sequence number. Torn and never-written slots are
// skipped. The read is silent (no simulated time), so decoding is safe
// both live and between crash and remount.
func DecodeRegion(dev *pmem.Device, off, slots int) []Record {
	var out []Record
	line := make([]byte, RecordSize)
	for s := 0; s < slots; s++ {
		dev.LoadSilent(off+s*RecordSize, line)
		if rec, ok := decode(line); ok {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Blackbox is the forensic report decoded from a (possibly crash-
// surviving) flight region.
type Blackbox struct {
	Slots   int      // ring capacity
	Records []Record // valid records, ascending Seq
	MinSeq  uint64   // smallest surviving Seq (0 if none)
	MaxSeq  uint64   // largest surviving Seq (0 if none)
	Dropped uint64   // records overwritten by ring wrap (MaxSeq - len)

	// Seal-oriented digest.
	LastSealedGen  uint64   // Gen of the newest durable seal/serial commit record
	LastSealedHead uint64   // ring Head that commit recorded
	InFlight       []uint64 // seal gens with a begin but no persist/commit/abort in the window

	// Per-ring heads on multi-ring layouts (CommitRings > 1): the largest
	// Block a durable commit record booked per ring, keyed by the
	// record's Shard field (the ring id on seal events). Nil when the
	// window holds no commit records; on single-ring layouts it has one
	// key (0) equal to LastSealedHead.
	LastSealedHeads map[uint16]uint64

	// Recovery failure digest: set when the window holds an EvRecoverFail
	// record (the restart gave up with a structural error).
	RecoverFailed   bool
	RecoverFailCode uint64
}

// Analyze builds the forensic digest over decoded records.
func Analyze(slots int, recs []Record) *Blackbox {
	b := &Blackbox{Slots: slots, Records: recs}
	if len(recs) == 0 {
		return b
	}
	b.MinSeq = recs[0].Seq
	b.MaxSeq = recs[len(recs)-1].Seq
	b.Dropped = b.MaxSeq - uint64(len(recs))
	open := map[uint64]bool{}
	for _, r := range recs {
		switch r.Type {
		case EvSealBegin, EvSerialBegin:
			open[r.Gen] = true
		case EvSealPersist, EvSerialCommit:
			delete(open, r.Gen)
			if r.Gen >= b.LastSealedGen {
				b.LastSealedGen = r.Gen
				b.LastSealedHead = r.Block
			}
			if b.LastSealedHeads == nil {
				b.LastSealedHeads = map[uint16]uint64{}
			}
			if r.Block > b.LastSealedHeads[r.Shard] {
				b.LastSealedHeads[r.Shard] = r.Block
			}
		case EvSealAbort:
			delete(open, r.Gen)
		case EvRecoverFail:
			b.RecoverFailed = true
			b.RecoverFailCode = r.Arg
		}
	}
	for g := range open {
		b.InFlight = append(b.InFlight, g)
	}
	sort.Slice(b.InFlight, func(i, j int) bool { return b.InFlight[i] < b.InFlight[j] })
	return b
}

// Decode is DecodeRegion + Analyze in one call.
func Decode(dev *pmem.Device, off, slots int) *Blackbox {
	return Analyze(slots, DecodeRegion(dev, off, slots))
}

// CheckWindow verifies the structural invariant a correctly functioning
// recorder guarantees across any crash: the surviving sequence numbers
// form one contiguous window ending at MaxSeq, missing at most one record
// at the window's lower edge.
//
// Why at most one: each Emit flushes and fences its record before the
// next Emit's store begins, so only the single in-flight record can be
// un-flushed at crash time. Its slot then holds, adversarially, either
// the fully-old previous-lap record (window gains its oldest member), the
// fully-new record (window gains its newest), or a torn mix that fails
// the checksum — removing exactly the oldest surviving sequence (the
// previous-lap record that shared the slot). Anything else — an interior
// hole, a duplicate, a record in the wrong slot — means the recorder or
// the persistence model is broken.
func (b *Blackbox) CheckWindow() error {
	if len(b.Records) == 0 {
		if b.MaxSeq != 0 {
			return fmt.Errorf("flight: empty window but MaxSeq=%d", b.MaxSeq)
		}
		return nil
	}
	// Distinct and contiguous.
	for i := 1; i < len(b.Records); i++ {
		prev, cur := b.Records[i-1].Seq, b.Records[i].Seq
		if cur == prev {
			return fmt.Errorf("flight: duplicate sequence %d", cur)
		}
		if cur != prev+1 {
			return fmt.Errorf("flight: interior hole in sequence window: %d then %d", prev, cur)
		}
	}
	// Window length: full min(MaxSeq, slots) records, short by at most one.
	full := b.MaxSeq
	if n := uint64(b.Slots); n < full {
		full = n
	}
	if got := uint64(len(b.Records)); got+1 < full {
		return fmt.Errorf("flight: window [%d,%d] has %d records, want >= %d", b.MinSeq, b.MaxSeq, got, full-1)
	}
	return nil
}

// Report writes the human-readable forensic report: the digest, then the
// last n events (all of them if n <= 0 or n exceeds the window).
func (b *Blackbox) Report(w io.Writer, n int) error {
	if _, err := fmt.Fprintf(w, "flight recorder: %d/%d slots valid, seq window [%d, %d], %d overwritten\n",
		len(b.Records), b.Slots, b.MinSeq, b.MaxSeq, b.Dropped); err != nil {
		return err
	}
	if len(b.Records) == 0 {
		_, err := fmt.Fprintln(w, "  (no surviving records)")
		return err
	}
	fmt.Fprintf(w, "last sealed generation: %d (ring head %d)\n", b.LastSealedGen, b.LastSealedHead)
	if len(b.InFlight) > 0 {
		fmt.Fprintf(w, "txns in flight at crash: gens %v\n", b.InFlight)
	} else {
		fmt.Fprintln(w, "txns in flight at crash: none")
	}
	if b.RecoverFailed {
		fmt.Fprintf(w, "RECOVERY FAILED: structural error, code %d (see core.RecoveryStats.Failed)\n", b.RecoverFailCode)
	}
	recs := b.Records
	if n > 0 && n < len(recs) {
		fmt.Fprintf(w, "timeline (last %d of %d events):\n", n, len(recs))
		recs = recs[len(recs)-n:]
	} else {
		fmt.Fprintf(w, "timeline (%d events):\n", len(recs))
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(w, "  %s\n", r); err != nil {
			return err
		}
	}
	return nil
}
