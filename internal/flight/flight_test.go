package flight

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

func newDev(t *testing.T, slots int) (*pmem.Device, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	dev := pmem.New(slots*RecordSize+4096, pmem.NVDIMM, clock, rec)
	return dev, clock
}

func TestRecordRoundtrip(t *testing.T) {
	in := Record{Seq: 42, TimeNS: 123456, Gen: 7, Block: 99, Arg: 3, Type: EvSealPersist, Shard: 11}
	line := encode(in)
	out, ok := decode(line[:])
	if !ok {
		t.Fatal("valid record failed checksum")
	}
	if out != in {
		t.Fatalf("roundtrip mismatch: got %+v want %+v", out, in)
	}
}

func TestDecodeRejectsTornAndEmpty(t *testing.T) {
	var zero [RecordSize]byte
	if _, ok := decode(zero[:]); ok {
		t.Fatal("all-zero slot decoded as valid")
	}
	line := encode(Record{Seq: 5, Type: EvDestage, Block: 17})
	// Tear: replace one 8-byte word with the same word of another record.
	other := encode(Record{Seq: 6, Type: EvDestage, Block: 18})
	torn := line
	copy(torn[24:32], other[24:32])
	if _, ok := decode(torn[:]); ok {
		t.Fatal("torn record passed checksum")
	}
}

func TestEmitDecodeWindow(t *testing.T) {
	const slots = 8
	dev, clock := newDev(t, slots)
	r := New(dev, clock, 0, slots)
	for i := 0; i < 20; i++ {
		r.Emit(EvDestage, 1, 0, uint64(i), 0)
	}
	bb := Decode(dev, 0, slots)
	if err := bb.CheckWindow(); err != nil {
		t.Fatal(err)
	}
	if bb.MaxSeq != 20 || bb.MinSeq != 13 || len(bb.Records) != slots {
		t.Fatalf("window [%d,%d] len %d, want [13,20] len %d", bb.MinSeq, bb.MaxSeq, len(bb.Records), slots)
	}
	if bb.Dropped != 12 {
		t.Fatalf("Dropped = %d, want 12", bb.Dropped)
	}
}

func TestAttachContinuesSequence(t *testing.T) {
	const slots = 8
	dev, clock := newDev(t, slots)
	r := New(dev, clock, 0, slots)
	for i := 0; i < 5; i++ {
		r.Emit(EvDestage, 0, 0, uint64(i), 0)
	}
	r2 := Attach(dev, clock, 0, slots)
	if r2.Seq() != 5 {
		t.Fatalf("Attach picked up seq %d, want 5", r2.Seq())
	}
	r2.Emit(EvRecoverBegin, 0, 0, 0, 0)
	bb := Decode(dev, 0, slots)
	if bb.MaxSeq != 6 {
		t.Fatalf("MaxSeq = %d, want 6", bb.MaxSeq)
	}
	if err := bb.CheckWindow(); err != nil {
		t.Fatal(err)
	}
}

func TestEmitIsSilent(t *testing.T) {
	dev, clock := newDev(t, 16)
	rec := dev.Recorder()
	before := rec.Snapshot()
	t0 := clock.Now()
	wear0, _ := dev.Wear()
	r := New(dev, clock, 0, 16)
	for i := 0; i < 100; i++ {
		r.Emit(EvSealBegin, 0, uint64(i), 0, 0)
	}
	if clock.Now() != t0 {
		t.Fatalf("Emit advanced the clock by %d ns", clock.Now()-t0)
	}
	wear1, _ := dev.Wear()
	if wear1 != wear0 {
		t.Fatalf("Emit charged wear: %d -> %d", wear0, wear1)
	}
	after := rec.Snapshot()
	for k, v := range after {
		if before[k] != v {
			t.Fatalf("Emit changed counter %s: %d -> %d", k, before[k], v)
		}
	}
}

// TestCrashTearsAtMostOneRecord drives random crash points through a
// stream of Emits and checks the §13 window invariant at each: the
// surviving records are contiguous and short by at most one.
func TestCrashTearsAtMostOneRecord(t *testing.T) {
	const slots = 8
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dev, clock := newDev(t, slots)
		r := New(dev, clock, 0, slots)
		// Each Emit is 3 persist boundaries; crash somewhere inside 20 emits.
		dev.ArmCrash(rng.Int63n(60))
		crashed, _ := pmem.CatchCrash(func() {
			for i := 0; i < 20; i++ {
				r.Emit(EvDestage, 0, 0, uint64(i), 0)
			}
		})
		if !crashed {
			t.Fatalf("seed %d: crash did not fire", seed)
		}
		dev.Crash(rng, rng.Float64())
		bb := Decode(dev, 0, slots)
		if err := bb.CheckWindow(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAnalyzeDigest(t *testing.T) {
	recs := []Record{
		{Seq: 1, Type: EvSealBegin, Gen: 1},
		{Seq: 2, Type: EvSealPersist, Gen: 1, Block: 10},
		{Seq: 3, Type: EvSealComplete, Gen: 1},
		{Seq: 4, Type: EvSerialBegin, Gen: 2},
		{Seq: 5, Type: EvSerialCommit, Gen: 2, Block: 14},
		{Seq: 6, Type: EvSealBegin, Gen: 3},
	}
	bb := Analyze(16, recs)
	if bb.LastSealedGen != 2 || bb.LastSealedHead != 14 {
		t.Fatalf("LastSealedGen/Head = %d/%d, want 2/14", bb.LastSealedGen, bb.LastSealedHead)
	}
	if len(bb.InFlight) != 1 || bb.InFlight[0] != 3 {
		t.Fatalf("InFlight = %v, want [3]", bb.InFlight)
	}
	var buf bytes.Buffer
	if err := bb.Report(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"last sealed generation: 2", "gens [3]", "last 3 of 6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCheckWindowRejectsInteriorHole(t *testing.T) {
	bb := Analyze(16, []Record{
		{Seq: 1, Type: EvDestage},
		{Seq: 2, Type: EvDestage},
		{Seq: 4, Type: EvDestage},
	})
	if err := bb.CheckWindow(); err == nil {
		t.Fatal("interior hole not detected")
	}
}
