package core

import (
	"fmt"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// TestCrashDuringCommitIsAtomic is the core correctness property of the
// paper (Section 4.5): crash the commit protocol at *every* operation
// boundary, materialize an adversarial crash image (a random subset of
// un-flushed lines persists), recover, and require that the transaction is
// all-or-nothing and all structural invariants hold.
func TestCrashDuringCommitIsAtomic(t *testing.T) {
	for _, evictP := range []float64{0, 0.5, 1} {
		evictP := evictP
		t.Run(fmt.Sprintf("evictP=%v", evictP), func(t *testing.T) {
			rng := sim.NewRand(42)
			for k := int64(0); ; k++ {
				clock := sim.NewClock()
				rec := metrics.NewRecorder()
				mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
				disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
				c, err := Open(mem, disk, Options{RingBytes: 4096})
				if err != nil {
					t.Fatal(err)
				}

				// Baseline state: blocks 0..5 hold 'A'; blocks 3..5 are
				// cache hits for the victim transaction (exercising COW),
				// blocks 6..8 are misses (exercising FRESH revocation).
				setup := c.Begin()
				for i := uint64(0); i < 6; i++ {
					setup.Write(i, blockOf('A'))
				}
				if err := setup.Commit(); err != nil {
					t.Fatal(err)
				}

				victimBlocks := []uint64{3, 4, 5, 6, 7, 8}
				mem.ArmCrash(k)
				victim := c.Begin()
				for _, no := range victimBlocks {
					victim.Write(no, blockOf('B'))
				}
				var commitErr error
				crashed, _ := pmem.CatchCrash(func() { commitErr = victim.Commit() })

				if !crashed {
					mem.DisarmCrash()
					if commitErr != nil {
						t.Fatalf("k=%d commit failed without crash: %v", k, commitErr)
					}
					// The commit completed before the crash point: we have
					// covered every boundary inside the protocol. Verify
					// the committed state one last time and stop.
					verifyAtomic(t, mem, disk, victimBlocks, k, true)
					t.Logf("protocol covered in %d operations", k)
					return
				}

				// Power failure: persistent image plus random evictions.
				mem.Crash(rng, evictP)
				verifyAtomic(t, mem, disk, victimBlocks, k, false)
			}
		})
	}
}

// verifyAtomic reopens the cache (running recovery), checks invariants,
// and requires blocks to be all-old or all-new. When mustNew is true the
// commit was acknowledged, so only the new state is acceptable.
func verifyAtomic(t *testing.T, mem *pmem.Device, disk *blockdev.Device, victims []uint64, k int64, mustNew bool) {
	t.Helper()
	c, err := Open(mem, disk, Options{RingBytes: 4096})
	if err != nil {
		t.Fatalf("k=%d recovery: %v", k, err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("k=%d after recovery: %v", k, err)
	}

	// Blocks 0..2 were untouched by the victim transaction.
	for i := uint64(0); i < 3; i++ {
		if got := mustRead(t, c, i)[0]; got != 'A' {
			t.Fatalf("k=%d untouched block %d = %q", k, i, got)
		}
	}

	sawNew, sawOld := false, false
	for _, no := range victims {
		got := mustRead(t, c, no)[0]
		switch {
		case got == 'B':
			sawNew = true
		case got == 'A' && no < 6: // pre-existing blocks roll back to 'A'
			sawOld = true
		case got == 0 && no >= 6: // fresh blocks roll back to absent (zero)
			sawOld = true
		default:
			t.Fatalf("k=%d block %d = %q (neither old nor new)", k, no, got)
		}
	}
	if sawNew && sawOld {
		t.Fatalf("k=%d transaction torn: mixed old and new blocks", k)
	}
	if mustNew && sawOld {
		t.Fatalf("k=%d acknowledged commit lost", k)
	}

	// The recovered cache must stay fully functional.
	post := c.Begin()
	post.Write(100, blockOf('C'))
	if err := post.Commit(); err != nil {
		t.Fatalf("k=%d post-recovery commit: %v", k, err)
	}
	if got := mustRead(t, c, 100)[0]; got != 'C' {
		t.Fatalf("k=%d post-recovery read: %q", k, got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("k=%d post-recovery invariants: %v", k, err)
	}
}

// TestCrashDuringEviction crashes at every boundary of an eviction-heavy
// workload: committed data must never be lost even when the crash hits a
// write-back.
func TestCrashDuringEviction(t *testing.T) {
	rng := sim.NewRand(7)
	// A tiny cache forces constant eviction.
	for k := int64(0); ; k++ {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(256<<10, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		c, err := Open(mem, disk, Options{RingBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		capacity := c.Capacity()
		total := capacity * 2

		// Commit blocks one at a time; acked values are the oracle.
		acked := make(map[uint64]byte)
		mem.ArmCrash(k)
		crashed, _ := pmem.CatchCrash(func() {
			for i := 0; i < total; i++ {
				txn := c.Begin()
				v := byte(i%250) + 1
				txn.Write(uint64(i), blockOf(v))
				if err := txn.Commit(); err != nil {
					panic(fmt.Sprintf("commit %d: %v", i, err))
				}
				acked[uint64(i)] = v
			}
		})
		if !crashed {
			mem.DisarmCrash()
			t.Logf("eviction workload covered in %d operations", k)
			return
		}
		mem.Crash(rng, 0.5)
		rc, err := Open(mem, disk, Options{RingBytes: 512})
		if err != nil {
			t.Fatalf("k=%d recovery: %v", k, err)
		}
		if err := rc.CheckInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for no, want := range acked {
			if got := mustRead(t, rc, no)[0]; got != want {
				t.Fatalf("k=%d acked block %d = %d, want %d", k, no, got, want)
			}
		}
		// Skip to coarser steps once past the interesting prefix to keep
		// the test fast; eviction operations repeat the same pattern.
		if k > 2000 {
			k += 97
		}
	}
}

// TestCrashAtomicWithRotatingPointers re-runs the per-boundary crash
// property with pointer wear-leveling enabled: the rotated Head/Tail
// encoding must preserve exactly the same recovery semantics.
func TestCrashAtomicWithRotatingPointers(t *testing.T) {
	rng := sim.NewRand(13)
	for k := int64(0); ; k++ {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		c, err := Open(mem, disk, Options{RingBytes: 4096, RotatePointers: true})
		if err != nil {
			t.Fatal(err)
		}
		setup := c.Begin()
		for i := uint64(0); i < 6; i++ {
			setup.Write(i, blockOf('A'))
		}
		if err := setup.Commit(); err != nil {
			t.Fatal(err)
		}
		victimBlocks := []uint64{3, 4, 5, 6, 7, 8}
		mem.ArmCrash(k)
		victim := c.Begin()
		for _, no := range victimBlocks {
			victim.Write(no, blockOf('B'))
		}
		var commitErr error
		crashed, _ := pmem.CatchCrash(func() { commitErr = victim.Commit() })
		if !crashed {
			mem.DisarmCrash()
			if commitErr != nil {
				t.Fatal(commitErr)
			}
			verifyAtomicRotated(t, mem, disk, victimBlocks, k, true)
			return
		}
		mem.Crash(rng, 0.5)
		verifyAtomicRotated(t, mem, disk, victimBlocks, k, false)
	}
}

func verifyAtomicRotated(t *testing.T, mem *pmem.Device, disk *blockdev.Device, victims []uint64, k int64, mustNew bool) {
	t.Helper()
	c, err := Open(mem, disk, Options{RingBytes: 4096, RotatePointers: true})
	if err != nil {
		t.Fatalf("k=%d recovery: %v", k, err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("k=%d: %v", k, err)
	}
	sawNew, sawOld := false, false
	for _, no := range victims {
		got := mustRead(t, c, no)[0]
		switch {
		case got == 'B':
			sawNew = true
		case got == 'A' && no < 6, got == 0 && no >= 6:
			sawOld = true
		default:
			t.Fatalf("k=%d block %d = %q", k, no, got)
		}
	}
	if sawNew && sawOld {
		t.Fatalf("k=%d torn transaction with rotating pointers", k)
	}
	if mustNew && sawOld {
		t.Fatalf("k=%d acknowledged commit lost", k)
	}
}

// TestRotatingPointersSpreadWear verifies the endurance payoff: the
// hottest pointer line's wear drops by roughly the rotation factor.
func TestRotatingPointersSpreadWear(t *testing.T) {
	hottest := func(rotate bool) uint32 {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		c, err := Open(mem, disk, Options{RingBytes: 4096, RotatePointers: rotate})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			txn := c.Begin()
			txn.Write(uint64(i%50), blockOf(byte(i)))
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		_, max := mem.Wear()
		return max
	}
	fixed, rotated := hottest(false), hottest(true)
	if rotated*4 > fixed {
		t.Fatalf("rotation did not spread wear: fixed=%d rotated=%d", fixed, rotated)
	}
}
