package core

import (
	"bytes"
	"fmt"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/flight"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// ckptOpts returns the checkpoint-at-every-commit option set the tests
// use: IntervalNS 1 means every commit point that finds the interval
// elapsed (i.e. all of them) writes a frame, so armed crash boundaries
// land before, inside, and after checkpoint writes.
func ckptOpts() Options {
	return Options{Checkpoint: true, CheckpointIntervalNS: 1}
}

// TestCheckpointCleanReopen pins the happy path: a checkpointed cache
// that closes cleanly reopens from its newest frame, not a full entry
// scan, and serves the same contents.
func TestCheckpointCleanReopen(t *testing.T) {
	r := newRig(t, 8<<20, ckptOpts())
	for i := uint64(0); i < 40; i++ {
		if err := r.cache.CommitBlocks([]uint64{i, i + 100}, [][]byte{blockOf(byte(i)), blockOf(byte(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.cache.Stats()
	if st.Checkpoints == 0 || st.CheckpointEntries == 0 {
		t.Fatalf("checkpoint writer never ran: %+v", st)
	}
	if st.CheckpointJournalRecs == 0 {
		t.Fatal("no delta-journal records despite 40 commits")
	}
	if err := r.cache.Close(); err != nil {
		t.Fatal(err)
	}

	r.reopen(t, ckptOpts())
	rs := r.cache.RecoveryStats()
	if !rs.Ran || !rs.FromCheckpoint {
		t.Fatalf("reopen did not recover from the checkpoint: %+v", rs)
	}
	if rs.CkptEpoch == 0 {
		t.Fatalf("checkpoint epoch not reported: %+v", rs)
	}
	if rs.Failed {
		t.Fatalf("clean reopen marked failed: %+v", rs)
	}
	for i := uint64(0); i < 40; i++ {
		if got := mustRead(t, r.cache, i); !bytes.Equal(got, blockOf(byte(i))) {
			t.Fatalf("block %d corrupted across checkpointed reopen", i)
		}
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointReopenCompatibility verifies the layout gate: a
// checkpoint-off image reopens with checkpoints off (unchanged layout
// version), and flipping the option across a restart reformats rather
// than misreads the device.
func TestCheckpointReopenCompatibility(t *testing.T) {
	r := newRig(t, 8<<20, Options{})
	if err := r.cache.CommitBlocks([]uint64{7}, [][]byte{blockOf('x')}); err != nil {
		t.Fatal(err)
	}
	if err := r.cache.Close(); err != nil {
		t.Fatal(err)
	}
	// Same options: contents survive.
	r.reopen(t, Options{})
	if got := mustRead(t, r.cache, 7); !bytes.Equal(got, blockOf('x')) {
		t.Fatal("checkpoint-off image lost a block across reopen")
	}
	if err := r.cache.Close(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint on over a v1 image: different layout version, so Open
	// must treat the device as unformatted (fresh cache, no stale reads).
	r.reopen(t, ckptOpts())
	rs := r.cache.RecoveryStats()
	if rs.Ran {
		t.Fatalf("layout-version flip did not reformat: %+v", rs)
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// crashRecoverOracle runs workload(c) with a crash armed at boundary k,
// materializes the crash image, reopens with the same options and checks
// invariants. It returns false once k is beyond the workload's persist
// span. acked maps disk block -> last acknowledged fill byte; recovery
// must serve exactly that value for every acked block unless the block
// was part of the single in-flight commit, whose blocks must be all-old
// or all-new.
func crashRecoverOracle(t *testing.T, nvmBytes int, opts Options, k int64,
	workload func(c *Cache, acked map[uint64]byte, inflight func(blocks []uint64, fill byte))) bool {
	t.Helper()
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(nvmBytes, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<20, blockdev.Null, clock, rec)
	c, err := Open(mem, disk, opts)
	if err != nil {
		t.Fatal(err)
	}
	acked := map[uint64]byte{}
	var inBlocks []uint64
	var inFill byte
	mem.ArmCrash(k)
	crashed, _ := pmem.CatchCrash(func() {
		workload(c, acked, func(blocks []uint64, fill byte) {
			inBlocks, inFill = blocks, fill
		})
	})
	if !crashed {
		mem.DisarmCrash()
		return false
	}
	mem.Crash(sim.NewRand(9000+k), 0.5)

	rc, err := Open(mem, disk, opts)
	if err != nil {
		t.Fatalf("k=%d: recovery: %v", k, err)
	}
	if err := rc.CheckInvariants(); err != nil {
		t.Fatalf("k=%d: %v", k, err)
	}
	rs := rc.RecoveryStats()
	if !rs.Ran || rs.Failed {
		t.Fatalf("k=%d: recovery did not run cleanly: %+v", k, rs)
	}

	// The in-flight commit must be atomic: all its blocks new, or none.
	newCount := 0
	for _, no := range inBlocks {
		if bytes.Equal(mustRead(t, rc, no), blockOf(inFill)) {
			newCount++
		}
	}
	if newCount != 0 && newCount != len(inBlocks) {
		t.Fatalf("k=%d: in-flight commit torn: %d of %d blocks new", k, newCount, len(inBlocks))
	}
	inNew := newCount == len(inBlocks) && len(inBlocks) > 0
	inSet := map[uint64]bool{}
	for _, no := range inBlocks {
		inSet[no] = true
	}
	for no, fill := range acked {
		if inSet[no] && inNew {
			continue // legitimately overwritten by the redone in-flight commit
		}
		if got := mustRead(t, rc, no); !bytes.Equal(got, blockOf(fill)) {
			t.Fatalf("k=%d: acked block %d lost (got %x, want %x)", k, no, got[0], fill)
		}
	}
	return true
}

// TestRecoveryWrappedRing sweeps crash boundaries over a workload whose
// commits wrap a tiny 8-slot ring several times, with the checkpoint
// writer both off and at every commit point — the "on" leg lands
// boundaries mid-frame and mid-journal-record. A wrapped ring means the
// interrupted seal's slots are reused positions; recovery must still
// resolve them through the monotonic Head/Tail pair alone.
func TestRecoveryWrappedRing(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{RingBytes: 64}},
		{"ckpt", Options{RingBytes: 64, Checkpoint: true, CheckpointIntervalNS: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			covered := 0
			for k := int64(0); ; k++ {
				ok := crashRecoverOracle(t, 1<<20, tc.opts, k,
					func(c *Cache, acked map[uint64]byte, inflight func([]uint64, byte)) {
						// 10 commits x 3 ring slots over an 8-slot ring: the
						// ring wraps after the third commit and keeps wrapping.
						for i := 0; i < 10; i++ {
							fill := byte('a' + i)
							blocks := []uint64{uint64(i % 4), uint64(4 + i%3), uint64(8 + i)}
							inflight(blocks, fill)
							if err := c.CommitBlocks(blocks, [][]byte{blockOf(fill), blockOf(fill), blockOf(fill)}); err != nil {
								panic(fmt.Sprintf("commit %d: %v", i, err))
							}
							for _, no := range blocks {
								acked[no] = fill
							}
							inflight(nil, 0)
						}
					})
				if !ok {
					if covered < 50 {
						t.Fatalf("sweep covered only %d boundaries; workload too small", covered)
					}
					t.Logf("covered %d boundaries", covered)
					return
				}
				covered++
				if k > 400 {
					k += 17
				}
			}
		})
	}
}

// TestRecoveryFullCapacity crashes a cache whose entry table is
// completely full (every slot valid, evictions already happening), again
// with the checkpoint writer off and at every commit point. Full
// occupancy is the worst case for the scan/rebuild fan-out and for frame
// size (count == capacity), and eviction traffic means the delta journal
// carries clear-entry records too.
func TestRecoveryFullCapacity(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{RingBytes: 4096}},
		{"ckpt", Options{RingBytes: 4096, Checkpoint: true, CheckpointIntervalNS: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Size the workload once: fill well past capacity so the steady
			// state is a full table with evictions.
			probe := newRig(t, 1<<20, tc.opts)
			capBlocks := probe.cache.Capacity()
			total := capBlocks + capBlocks/2
			covered, sawFull := 0, false
			for k := int64(0); ; k++ {
				ok := crashRecoverOracle(t, 1<<20, tc.opts, k,
					func(c *Cache, acked map[uint64]byte, inflight func([]uint64, byte)) {
						for i := 0; i < total; i += 4 {
							fill := byte(i)
							blocks := []uint64{uint64(i), uint64(i + 1), uint64(i + 2), uint64(i + 3)}
							inflight(blocks, fill)
							if err := c.CommitBlocks(blocks, [][]byte{blockOf(fill), blockOf(fill), blockOf(fill), blockOf(fill)}); err != nil {
								panic(fmt.Sprintf("commit %d: %v", i, err))
							}
							// Evicted blocks land on the Null disk, which
							// discards writes — only track blocks that stay
							// resident-recent enough to never be evicted.
							// Keep the oracle to the last capBlocks/2 blocks.
							for _, no := range blocks {
								acked[no] = fill
							}
							for no := range acked {
								if no+uint64(capBlocks/2) < uint64(i) {
									delete(acked, no)
								}
							}
							inflight(nil, 0)
						}
					})
				if !ok {
					if !sawFull {
						t.Fatal("sweep never crashed a full table; workload too small")
					}
					t.Logf("covered %d boundaries at capacity %d", covered, capBlocks)
					return
				}
				covered++
				if covered == 1 {
					sawFull = true
				}
				// The interesting boundaries are late (table already full):
				// stride fast through the fill phase, densely at the end.
				if k < int64(total)*50 {
					k += int64(total) / 2
				} else {
					k += 31
				}
			}
		})
	}
}

// TestRecoverySerialParallelParity is the determinism contract behind the
// shard-parallel fan-out: for every crash boundary of a checkpointed
// workload, recovering with SerialRecovery and with the default parallel
// fan-out must produce bit-identical persistent images, identical block
// contents, and the same final simulated clock. Any hidden ordering
// dependence between recovery workers fails this sweep.
func TestRecoverySerialParallelParity(t *testing.T) {
	runVariant := func(k int64, serial bool) (crashed bool, state, img []byte, now uint64) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		opts := Options{RingBytes: 4096, Checkpoint: true, CheckpointIntervalNS: 1, SerialRecovery: serial}
		c, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatal(err)
		}
		mem.ArmCrash(k)
		crashed, _ = pmem.CatchCrash(func() {
			for i := 0; i < 8; i++ {
				fill := byte('B' + i)
				blocks := []uint64{uint64(i), uint64(16 + i%3), uint64(32 + i)}
				if err := c.CommitBlocks(blocks, [][]byte{blockOf(fill), blockOf(fill), blockOf(fill)}); err != nil {
					panic(fmt.Sprintf("commit %d: %v", i, err))
				}
			}
		})
		if !crashed {
			mem.DisarmCrash()
			return false, nil, nil, 0
		}
		mem.Crash(sim.NewRand(5000+k), 0.5)
		rc, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatalf("k=%d serial=%v recovery: %v", k, serial, err)
		}
		if err := rc.CheckInvariants(); err != nil {
			t.Fatalf("k=%d serial=%v: %v", k, serial, err)
		}
		rs := rc.RecoveryStats()
		if serial && !rs.Ran {
			t.Fatalf("k=%d: no recovery ran", k)
		}
		for i := uint64(0); i < 48; i++ {
			state = append(state, mustRead(t, rc, i)...)
		}
		return true, state, mem.SnapshotPersist(), uint64(clock.Now())
	}

	for k := int64(0); ; k++ {
		pc, pState, pImg, pNow := runVariant(k, false)
		sc, sState, sImg, sNow := runVariant(k, true)
		if pc != sc {
			t.Fatalf("k=%d: parallel crashed=%v but serial crashed=%v", k, pc, sc)
		}
		if !pc {
			t.Logf("parity sweep covered %d boundaries", k)
			return
		}
		if pNow != sNow {
			t.Fatalf("k=%d: recovery charged different simulated time: parallel %d, serial %d", k, pNow, sNow)
		}
		if !bytes.Equal(pImg, sImg) {
			t.Fatalf("k=%d: post-recovery persistent images differ between serial and parallel recovery", k)
		}
		if !bytes.Equal(pState, sState) {
			t.Fatalf("k=%d: recovered block contents differ between serial and parallel recovery", k)
		}
		if k > 500 {
			k += 23
		}
	}
}

// TestRecoveryFailureSurfaced corrupts the persistent Tail pointer past
// Head and verifies the satellite contract for a recovery that gives up:
// Open returns the structural error AND the flight ring carries a
// terminal recover-fail event with the matching code, so a dead restart
// is diagnosable from the image alone.
func TestRecoveryFailureSurfaced(t *testing.T) {
	r := newRig(t, 8<<20, Options{FlightRecorder: true})
	commitSome(t, r.cache, 1, 5)
	lay := r.cache.Layout()
	if err := r.cache.Close(); err != nil {
		t.Fatal(err)
	}
	// Tail is read as the max over its rotation slots; one poisoned slot
	// beyond Head is enough.
	r.mem.Persist8(lay.TailOff, 1<<40)

	if _, err := Open(r.mem, r.disk, Options{FlightRecorder: true}); err == nil {
		t.Fatal("Open accepted an image with Tail beyond Head")
	}
	bb := flight.Decode(r.mem, lay.FlightOff, lay.FlightSlots)
	if !bb.RecoverFailed {
		t.Fatal("failed recovery left no recover-fail flight record")
	}
	if bb.RecoverFailCode != recFailHeadBehindTail {
		t.Fatalf("recover-fail code = %d, want %d", bb.RecoverFailCode, recFailHeadBehindTail)
	}
	var buf bytes.Buffer
	if err := bb.Report(&buf, 16); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("RECOVERY FAILED")) {
		t.Fatalf("blackbox report does not surface the failure:\n%s", buf.String())
	}
}

// TestCheckpointConcurrentCommits exercises the checkpoint writer under
// the concurrent group-commit path (the race-detector matrix runs this
// package with -race): many goroutines committing while every batch
// close fires a frame write and evictions append journal deltas from
// shard-locked contexts.
func TestCheckpointConcurrentCommits(t *testing.T) {
	r := newRig(t, 8<<20, ckptOpts())
	commitSome(t, r.cache, 4, 30)
	st := r.cache.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints under concurrent commits")
	}
	if err := r.cache.Close(); err != nil {
		t.Fatal(err)
	}
	r.reopen(t, ckptOpts())
	if rs := r.cache.RecoveryStats(); !rs.FromCheckpoint {
		t.Fatalf("reopen after concurrent commits did not use the checkpoint: %+v", rs)
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
