package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// testRig bundles a small Tinca stack for unit tests.
type testRig struct {
	clock *sim.Clock
	rec   *metrics.Recorder
	mem   *pmem.Device
	disk  *blockdev.Device
	cache *Cache
}

func newRig(t *testing.T, nvmBytes int, opts Options) *testRig {
	t.Helper()
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(nvmBytes, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<20, blockdev.Null, clock, rec)
	c, err := Open(mem, disk, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return &testRig{clock: clock, rec: rec, mem: mem, disk: disk, cache: c}
}

// reopen simulates a restart on the same devices (recovery path).
func (r *testRig) reopen(t *testing.T, opts Options) {
	t.Helper()
	c, err := Open(r.mem, r.disk, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	r.cache = c
}

func blockOf(b byte) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func mustRead(t *testing.T, c *Cache, no uint64) []byte {
	t.Helper()
	p := make([]byte, BlockSize)
	if err := c.Read(no, p); err != nil {
		t.Fatalf("Read(%d): %v", no, err)
	}
	return p
}

func TestComputeLayoutFits(t *testing.T) {
	for _, size := range []int{1 << 20, 4 << 20, 64 << 20} {
		l, err := ComputeLayout(size, 4096, 1)
		if err != nil {
			t.Fatalf("ComputeLayout(%d): %v", size, err)
		}
		if l.DataOff%BlockSize != 0 {
			t.Errorf("data area not block aligned: %d", l.DataOff)
		}
		if l.DataOff+l.Capacity*BlockSize > size {
			t.Errorf("layout overflows device: data end %d > %d", l.DataOff+l.Capacity*BlockSize, size)
		}
		if l.EntryOff+l.Capacity*EntrySize > l.DataOff {
			t.Errorf("entry table overlaps data area")
		}
		if l.Capacity < 8 {
			t.Errorf("capacity too small: %d", l.Capacity)
		}
	}
}

func TestComputeLayoutTooSmall(t *testing.T) {
	if _, err := ComputeLayout(8192, 4096, 1); err == nil {
		t.Fatal("expected error for tiny device")
	}
}

func TestComputeLayoutDefaultRing(t *testing.T) {
	l, err := ComputeLayout(64<<20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.RingSlots != DefaultRingBytes/RingSlotSize {
		t.Fatalf("default ring slots = %d, want %d", l.RingSlots, DefaultRingBytes/RingSlotSize)
	}
}

func TestEntryRoundTrip(t *testing.T) {
	f := func(disk uint64, prev, cur uint32, role, mod bool) bool {
		e := entry{valid: true, disk: disk % (maxDiskBlock + 1), prev: prev, cur: cur, modified: mod}
		if role {
			e.role = RoleLog
		}
		return decodeEntry(encodeEntry(e)) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntryZeroInvalid(t *testing.T) {
	if decodeEntry([16]byte{}).valid {
		t.Fatal("zero entry decoded as valid")
	}
	if got := encodeEntry(entry{}); got != [16]byte{} {
		t.Fatalf("invalid entry encoded non-zero: %v", got)
	}
}

func TestCommitAndRead(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	txn := r.cache.Begin()
	txn.Write(10, blockOf('a'))
	txn.Write(11, blockOf('b'))
	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := mustRead(t, r.cache, 10); got[0] != 'a' {
		t.Errorf("block 10 = %q, want 'a'", got[0])
	}
	if got := mustRead(t, r.cache, 11); got[0] != 'b' {
		t.Errorf("block 11 = %q, want 'b'", got[0])
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitEmpty(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	if err := r.cache.Begin().Commit(); err != nil {
		t.Fatalf("empty commit: %v", err)
	}
	if got := r.rec.Get(metrics.TxnCommit); got != 0 {
		t.Fatalf("empty commit counted: %d", got)
	}
}

func TestCommitCOWOverwrite(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	for round := 0; round < 5; round++ {
		txn := r.cache.Begin()
		txn.Write(7, blockOf(byte('a'+round)))
		if err := txn.Commit(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := mustRead(t, r.cache, 7)[0]; got != byte('a'+round) {
			t.Fatalf("round %d read %q", round, got)
		}
		if err := r.cache.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// COW must not leak blocks: one resident block, rest free.
	if free := r.cache.FreeBlocks(); free != r.cache.Capacity()-1 {
		t.Fatalf("free blocks = %d, want %d", free, r.cache.Capacity()-1)
	}
	if cow := r.rec.Get(metrics.TxnCOWBlocks); cow != 4 {
		t.Fatalf("COW count = %d, want 4", cow)
	}
}

func TestTxnLatestWriteWins(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	txn := r.cache.Begin()
	txn.Write(3, blockOf('x'))
	txn.Write(3, blockOf('y'))
	if txn.Len() != 1 {
		t.Fatalf("txn.Len = %d, want 1 (coalesced)", txn.Len())
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, r.cache, 3)[0]; got != 'y' {
		t.Fatalf("read %q, want 'y'", got)
	}
}

func TestAbortDiscards(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	txn := r.cache.Begin()
	txn.Write(5, blockOf('z'))
	txn.Abort()
	if r.cache.Contains(5) {
		t.Fatal("aborted block cached")
	}
	if got := r.rec.Get(metrics.TxnAbort); got != 1 {
		t.Fatalf("abort count = %d", got)
	}
}

func TestTxnTooLarge(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 64}) // 8 ring slots
	txn := r.cache.Begin()
	for i := uint64(0); i < 9; i++ {
		txn.Write(i, blockOf(byte(i)))
	}
	if err := txn.Commit(); err != ErrTxnTooLarge {
		t.Fatalf("err = %v, want ErrTxnTooLarge", err)
	}
}

func TestRingWrapAround(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 64}) // 8 slots
	for round := 0; round < 10; round++ {
		txn := r.cache.Begin()
		for i := uint64(0); i < 5; i++ {
			txn.Write(i, blockOf(byte(round)))
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, r.cache, 4)[0]; got != 9 {
		t.Fatalf("read %d, want 9", got)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	capacity := r.cache.Capacity()
	// Commit more distinct blocks than the cache holds.
	total := capacity + 20
	for i := 0; i < total; i++ {
		txn := r.cache.Begin()
		txn.Write(uint64(i), blockOf(byte(i%251)))
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if ev := r.rec.Get(metrics.CacheEvict); ev == 0 {
		t.Fatal("no evictions happened")
	}
	if dw := r.rec.Get(metrics.DiskBlocksWrite); dw == 0 {
		t.Fatal("no disk write-back happened")
	}
	// Every block, cached or evicted, must read back correctly.
	for i := 0; i < total; i++ {
		if got := mustRead(t, r.cache, uint64(i))[0]; got != byte(i%251) {
			t.Fatalf("block %d = %d, want %d", i, got, byte(i%251))
		}
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUOrderRespected(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	capacity := r.cache.Capacity()
	for i := 0; i < capacity; i++ {
		txn := r.cache.Begin()
		txn.Write(uint64(i), blockOf(1))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Touch block 0 so block 1 becomes the LRU victim.
	mustRead(t, r.cache, 0)
	txn := r.cache.Begin()
	txn.Write(uint64(capacity), blockOf(2))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if !r.cache.Contains(0) {
		t.Fatal("recently used block 0 was evicted")
	}
	if r.cache.Contains(1) {
		t.Fatal("LRU block 1 survived eviction")
	}
}

func TestReadMissFillsFromDisk(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	want := blockOf('d')
	r.disk.WriteBlock(42, want)
	got := mustRead(t, r.cache, 42)
	if !bytes.Equal(got, want) {
		t.Fatal("read-miss data mismatch")
	}
	if !r.cache.Contains(42) {
		t.Fatal("read miss did not populate cache")
	}
	if h := r.rec.Get(metrics.CacheReadMiss); h != 1 {
		t.Fatalf("read miss count = %d", h)
	}
	mustRead(t, r.cache, 42)
	if h := r.rec.Get(metrics.CacheReadHit); h != 1 {
		t.Fatalf("read hit count = %d", h)
	}
}

func TestFlushAllCleans(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	txn := r.cache.Begin()
	txn.Write(9, blockOf('f'))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := r.cache.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	r.disk.ReadBlock(9, p)
	if p[0] != 'f' {
		t.Fatal("FlushAll did not reach disk")
	}
	for no, dirty := range r.cache.ResidentBlocks() {
		if dirty {
			t.Fatalf("block %d still dirty after FlushAll", no)
		}
	}
}

func TestCleanReopenKeepsContents(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	txn := r.cache.Begin()
	txn.Write(77, blockOf('k'))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Commits persist everything they touch, so even an abrupt stop (no
	// Close) must preserve the committed block across reopen.
	r.mem.Crash(nil, 0)
	r.reopen(t, Options{RingBytes: 4096})
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, r.cache, 77)[0]; got != 'k' {
		t.Fatalf("block lost across reopen: %q", got)
	}
}

func TestClosedCacheRejects(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	if err := r.cache.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.cache.Read(1, make([]byte, BlockSize)); err != ErrClosed {
		t.Fatalf("Read after Close: %v", err)
	}
	txn := r.cache.Begin()
	txn.Write(1, blockOf(1))
	if err := txn.Commit(); err != ErrClosed {
		t.Fatalf("Commit after Close: %v", err)
	}
}

func TestWriteHitRate(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	for i := 0; i < 2; i++ {
		txn := r.cache.Begin()
		txn.Write(1, blockOf(byte(i)))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.cache.WriteHitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestShortReadBufferRejected(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	if err := r.cache.Read(0, make([]byte, 16)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestCOWHitOnLRUTailNotEvicted(t *testing.T) {
	// Regression: committing a write hit allocates the COW copy *before*
	// the entry gains the log role. If the hit target is the LRU victim
	// at that moment and the cache is full, replacement rule 2 must still
	// protect it (the paper: "neither copy is allowed for replacement").
	r := newRig(t, 1<<20, Options{RingBytes: 4096})
	capacity := r.cache.Capacity()
	// Fill the cache completely; block 0 becomes the LRU tail.
	for i := 0; i < capacity; i++ {
		txn := r.cache.Begin()
		txn.Write(uint64(i), blockOf(byte(i%250)+1))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if free := r.cache.FreeBlocks(); free != 0 {
		t.Fatalf("cache not full: %d free", free)
	}
	// Commit a hit on the LRU-tail block: the COW allocation must evict
	// some *other* block, never the hit target itself.
	txn := r.cache.Begin()
	txn.Write(0, blockOf(200))
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := mustRead(t, r.cache, 0)[0]; got != 200 {
		t.Fatalf("hit target lost its committed value: %d", got)
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUValidateAfterChurn(t *testing.T) {
	// The intrusive list stays structurally sound under heavy mixed churn.
	r := newRig(t, 512<<10, Options{RingBytes: 1024})
	rng := sim.NewRand(5)
	for op := 0; op < 3000; op++ {
		no := uint64(rng.Intn(300))
		if rng.Intn(3) == 0 {
			mustRead(t, r.cache, no)
		} else {
			txn := r.cache.Begin()
			txn.Write(no, blockOf(byte(op%251)))
			if err := txn.Commit(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	for s := range r.cache.shards {
		r.cache.shards[s].lru.validate("after-churn")
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThroughMode(t *testing.T) {
	r := newRig(t, 1<<20, Options{RingBytes: 4096, WriteThrough: true})
	txn := r.cache.Begin()
	txn.Write(5, blockOf('w'))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Disk is current immediately after commit.
	p := make([]byte, BlockSize)
	r.disk.ReadBlock(5, p)
	if p[0] != 'w' {
		t.Fatal("write-through did not reach disk")
	}
	// The cached copy is clean: eviction must not write it again.
	for no, dirty := range r.cache.ResidentBlocks() {
		if dirty {
			t.Fatalf("block %d dirty in write-through mode", no)
		}
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reads still served from NVM.
	if got := mustRead(t, r.cache, 5)[0]; got != 'w' {
		t.Fatalf("read = %q", got)
	}
}

func TestComputeLayoutProperties(t *testing.T) {
	// Property: for any sane device/ring/rotation combination, the layout
	// regions are ordered, aligned and within the device.
	fn := func(sizeMB uint8, ringKB uint16, rotate bool) bool {
		size := (int(sizeMB%63) + 1) << 20
		ring := int(ringKB%512+1) << 10
		ptr := 1
		if rotate {
			ptr = DefaultPtrSlots
		}
		l, err := ComputeLayout(size, ring, ptr)
		if err != nil {
			return size < 2<<20 // only tiny devices may fail
		}
		return l.HeadOff > l.HeaderOff &&
			l.TailOff >= l.HeadOff+ptr*64 &&
			l.RingOff >= l.TailOff+ptr*64 &&
			l.EntryOff >= l.RingOff+l.RingSlots*RingSlotSize &&
			l.DataOff >= l.EntryOff+l.Capacity*EntrySize &&
			l.DataOff%BlockSize == 0 &&
			l.DataOff+l.Capacity*BlockSize <= size &&
			l.Capacity >= 8
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUAgainstReferenceModel(t *testing.T) {
	// Property: the intrusive list behaves exactly like a slice-based
	// reference under random push/remove/touch sequences.
	const capacity = 24
	l := newLRU(capacity)
	var ref []int32 // ref[0] = MRU
	inList := make(map[int32]bool)
	rng := sim.NewRand(99)

	refRemove := func(i int32) {
		for j, v := range ref {
			if v == i {
				ref = append(ref[:j], ref[j+1:]...)
				return
			}
		}
	}
	for op := 0; op < 20000; op++ {
		i := int32(rng.Intn(capacity))
		switch rng.Intn(3) {
		case 0: // push if absent
			if !inList[i] {
				l.pushFront(i)
				ref = append([]int32{i}, ref...)
				inList[i] = true
			}
		case 1: // remove if present
			if inList[i] {
				l.remove(i)
				refRemove(i)
				inList[i] = false
			}
		case 2: // touch if present
			if inList[i] {
				l.touch(i)
				refRemove(i)
				ref = append([]int32{i}, ref...)
			}
		}
		if l.len() != len(ref) {
			t.Fatalf("op %d: len %d != ref %d", op, l.len(), len(ref))
		}
	}
	l.validate("against-model")
	// Final order check: walk MRU->LRU via next pointers.
	i := l.head
	for idx := 0; idx < len(ref); idx++ {
		if i != ref[idx] {
			t.Fatalf("order mismatch at %d: %d != %d", idx, i, ref[idx])
		}
		i = l.next[i]
	}
	if i != lruNil {
		t.Fatal("list longer than reference")
	}
}
