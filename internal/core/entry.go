package core

import "encoding/binary"

// Role of a cached block (Section 4.3). A block being committed carries
// the log role; on completion of the whole transaction it is switched to
// the buffer role. Only buffer blocks may be flushed to disk for
// replacement.
type Role byte

const (
	// RoleBuffer marks a stationary cached block, eligible for replacement.
	RoleBuffer Role = iota
	// RoleLog marks a block that belongs to the ongoing committing
	// transaction; it is pinned in the cache and revoked on crash unless
	// the transaction completed.
	RoleLog
)

func (r Role) String() string {
	if r == RoleLog {
		return "log"
	}
	return "buffer"
}

// entry is the decoded form of a 16-byte cache entry:
//
//	byte 0      : flags — bit0 valid, bit1 R (role, 1=log), bit2 M (modified)
//	bytes 1..7  : on-disk block number (7 bytes, little endian)
//	bytes 8..11 : previous NVM block number (Fresh when none)
//	bytes 12..15: current NVM block number
//
// A zeroed slot is an invalid (unused) entry, so a freshly formatted entry
// table needs no initialization pass.
type entry struct {
	valid    bool
	role     Role
	modified bool
	disk     uint64 // on-disk block number (max 2^56-1)
	prev     uint32 // previous NVM block, Fresh when none
	cur      uint32 // current NVM block
}

const (
	flagValid    = 1 << 0
	flagRoleLog  = 1 << 1
	flagModified = 1 << 2
)

// maxDiskBlock is the largest representable on-disk block number (7 bytes).
const maxDiskBlock = 1<<56 - 1

func encodeEntry(e entry) (b [16]byte) {
	if !e.valid {
		return b
	}
	var f byte = flagValid
	if e.role == RoleLog {
		f |= flagRoleLog
	}
	if e.modified {
		f |= flagModified
	}
	b[0] = f
	if e.disk > maxDiskBlock {
		panic("core: disk block number exceeds 7 bytes")
	}
	var d [8]byte
	binary.LittleEndian.PutUint64(d[:], e.disk)
	copy(b[1:8], d[:7])
	binary.LittleEndian.PutUint32(b[8:12], e.prev)
	binary.LittleEndian.PutUint32(b[12:16], e.cur)
	return b
}

func decodeEntry(b [16]byte) entry {
	var e entry
	if b[0]&flagValid == 0 {
		return e
	}
	e.valid = true
	if b[0]&flagRoleLog != 0 {
		e.role = RoleLog
	}
	e.modified = b[0]&flagModified != 0
	var d [8]byte
	copy(d[:7], b[1:8])
	e.disk = binary.LittleEndian.Uint64(d[:])
	e.prev = binary.LittleEndian.Uint32(b[8:12])
	e.cur = binary.LittleEndian.Uint32(b[12:16])
	return e
}
