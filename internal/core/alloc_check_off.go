//go:build !tincadebug

package core

// debugAlloc gates the allocator's double-free detector: a per-resource
// atomic free bit flipped on every push/pop, panicking at the site of a
// second push of the same block or slot (the far symptom — entry-table
// exhaustion — is otherwise diagnosed long after the culprit returned).
// Production builds compile it out; -tags tincadebug keeps it.
const debugAlloc = false
