// Package core implements Tinca, the transactional NVM disk cache that is
// the paper's primary contribution (Section 4).
//
// The NVM space is partitioned exactly as in Figure 5 of the paper:
//
//	+-----------+------+------+-------------+---------------+-----------------+
//	| header    | Head | Tail | ring buffer | cache entries | cached blocks   |
//	| (64B)     | (64B)| (64B)| (8B slots)  | (16B each)    | (4KB each)      |
//	+-----------+------+------+-------------+---------------+-----------------+
//
// The ring buffer regulates committing transactions (Section 4.4): each
// slot records the on-disk block number of one committed block; Head and
// Tail are persistent 8-byte pointers updated with atomic stores. Cache
// entries are 16 bytes — small enough for one LOCK cmpxchg16b — and carry
// the block's role (log/buffer), modified bit, on-disk block number, and
// the previous and current NVM block locations used by COW block writes.
package core

import (
	"fmt"

	"tinca/internal/blockdev"
	"tinca/internal/pmem"
)

// BlockSize is the caching unit (4KB, Section 4.2).
const BlockSize = blockdev.BlockSize

// EntrySize is the size of one cache entry (16B, Section 4.2).
const EntrySize = 16

// RingSlotSize is the size of one ring-buffer element (8B, Section 4.4).
const RingSlotSize = 8

// mrSlotSize is the size of one multi-ring log record (Options.CommitRings
// > 1): the 8B on-disk block number plus the 8B commit-point generation,
// persisted together with one failure-atomic Store16. The single-ring
// layout has no generation (Head order is the commit order), but with R
// independent rings only the global generation counter totally orders
// seals, so every record must carry it.
const mrSlotSize = 16

// DefaultRingBytes is the paper's default ring buffer size (1MB).
const DefaultRingBytes = 1 << 20

// Fresh is the special tag stored as the previous NVM block number of an
// entry created by a write miss (Section 4.3): there is no previous
// version to roll back to.
const Fresh uint32 = 0xFFFFFFFF

const (
	layoutMagic   uint64 = 0x61636e6974 // "tinca"
	layoutVersion uint64 = 1
	// layoutVersionCkpt is the on-NVM version written when the checkpoint
	// region exists (Options.Checkpoint). Bumping the version keeps a
	// checkpointed image from being opened by a build (or a configuration)
	// that does not know the region is there; with the option off the
	// layout and version are byte-identical to layoutVersion images.
	layoutVersionCkpt uint64 = 2
	// layoutVersionRings is the on-NVM version written when the log is
	// split into multiple per-shard rings (Options.CommitRings > 1): the
	// pointer areas replicate per ring and ring records widen to 16B
	// generation-stamped slots, so older builds must not mount the image.
	// With CommitRings <= 1 the layout and version are byte-identical to
	// the single-ring versions.
	layoutVersionRings uint64 = 3
)

// Checkpoint-region geometry (DESIGN.md §14). The region holds a delta
// journal of 8-byte records (one per entry slot first dirtied after the
// last checkpoint) followed by two alternating snapshot frames, each a
// 64B header plus Capacity worth of 24B records (slot number + raw entry).
const (
	ckptRecSize  = 24 // one frame payload record: u32 slot, u32 pad, 16B entry
	ckptFrameHdr = 64 // frame header: one cache line
)

// Layout describes where each NVM region lives. All offsets are cache-line
// aligned; the data area is additionally block aligned.
type Layout struct {
	HeaderOff int
	HeadOff   int // persistent Head pointer area (PtrSlots cache lines)
	TailOff   int // persistent Tail pointer area (PtrSlots cache lines)
	PtrSlots  int // wear-leveling rotation slots per pointer (1 = fixed)
	RingOff   int
	RingSlots int // number of 8B slots
	// Flight recorder region (DESIGN.md §13): FlightSlots 64B event
	// records between the ring and the entry table. Zero slots (the
	// default, Options.FlightRecorder off) collapses the region and keeps
	// the layout byte-identical to the paper's Figure 5.
	FlightOff   int
	FlightSlots int
	// Rings is the number of independent commit log rings (1 = the paper's
	// single ring). With Rings > 1 the Head/Tail areas hold Rings*PtrSlots
	// cache lines each (ring r's rotation slots start at r*PtrSlots), the
	// ring region is split into Rings equal sub-rings of RingSlots 16B
	// generation-stamped records each, and RingSlots is the PER-RING count.
	Rings int
	// Checkpoint region (DESIGN.md §14): a delta journal of
	// CkptJournalSlots 8B records followed by two alternating snapshot
	// frames, between the flight region and the entry table. Zero slots
	// (the default, Options.Checkpoint off) collapses the region and keeps
	// the layout byte-identical to the pre-checkpoint versions.
	CkptOff          int
	CkptJournalSlots int
	EntryOff         int
	DataOff          int
	Capacity         int // number of 4KB NVM cache blocks == number of entry slots
}

// Header fields within the header line.
const (
	hdrMagic    = 0  // +0: magic
	hdrVersion  = 8  // +8: version
	hdrCapacity = 16 // +16: capacity (blocks)
	hdrRingSlot = 24 // +24: ring slots
	hdrPtrSlots = 32 // +32: pointer rotation slots
	hdrFlight   = 40 // +40: flight-recorder slots (0 = no region)
	hdrCkpt     = 48 // +48: checkpoint journal slots (0 = no region)
	hdrRings    = 56 // +56: commit rings (0 = single ring, pre-multi-ring images)
)

// DefaultPtrSlots is the rotation factor used when pointer wear leveling
// is enabled: Head/Tail updates spread over this many cache lines,
// dividing the hottest-line wear by the same factor.
const DefaultPtrSlots = 8

func alignUp(x, a int) int { return (x + a - 1) / a * a }

// ComputeLayout fits the Tinca regions into an NVM device of devSize bytes
// with the requested ring size and pointer-rotation factor (ptrSlots <= 1
// keeps the paper's fixed Head/Tail lines). It returns an error when the
// device is too small to hold even a handful of blocks.
func ComputeLayout(devSize, ringBytes, ptrSlots int) (Layout, error) {
	return ComputeLayoutFlight(devSize, ringBytes, ptrSlots, 0)
}

// ComputeLayoutFlight is ComputeLayout plus a flight-recorder region of
// flightSlots 64B records (0 = none). The region sits between the ring and
// the entry table, so enabling it shifts the entry/data areas and shaves a
// few blocks off Capacity (256 slots = 16KiB = 4 data blocks).
func ComputeLayoutFlight(devSize, ringBytes, ptrSlots, flightSlots int) (Layout, error) {
	return ComputeLayoutExt(devSize, ringBytes, ptrSlots, flightSlots, false)
}

// ComputeLayoutExt is ComputeLayoutFlight plus an optional checkpoint
// region (DESIGN.md §14) between the flight region and the entry table:
// a delta journal of Capacity+8 8B slots and two alternating snapshot
// frames of one 64B header plus Capacity 24B records each. The region is
// sized per candidate capacity inside the solve loop, since both the
// journal and the frames scale with the entry count. With checkpoint off
// the layout is byte-identical to ComputeLayoutFlight's.
func ComputeLayoutExt(devSize, ringBytes, ptrSlots, flightSlots int, checkpoint bool) (Layout, error) {
	return ComputeLayoutRings(devSize, ringBytes, ptrSlots, flightSlots, checkpoint, 1)
}

// ComputeLayoutRings is ComputeLayoutExt plus the multi-ring split
// (Options.CommitRings, DESIGN.md §15): with rings > 1 the Head/Tail
// pointer areas replicate per ring and the ring-buffer bytes divide into
// rings equal sub-rings of 16B generation-stamped records. rings <= 1
// yields a layout byte-identical to ComputeLayoutExt's.
func ComputeLayoutRings(devSize, ringBytes, ptrSlots, flightSlots int, checkpoint bool, rings int) (Layout, error) {
	if ringBytes <= 0 {
		ringBytes = DefaultRingBytes
	}
	if ptrSlots <= 1 {
		ptrSlots = 1
	}
	if flightSlots < 0 {
		flightSlots = 0
	}
	if rings < 1 {
		rings = 1
	}
	ringBytes = alignUp(ringBytes, pmem.LineSize)
	var l Layout
	l.HeaderOff = 0
	l.PtrSlots = ptrSlots
	l.Rings = rings
	l.HeadOff = pmem.LineSize
	l.TailOff = l.HeadOff + rings*ptrSlots*pmem.LineSize
	l.RingOff = l.TailOff + rings*ptrSlots*pmem.LineSize
	if rings > 1 {
		// Per-ring slot count: the ring budget splits evenly, each record
		// is 16B, and the per-ring region stays line-aligned (4 records
		// per line) so sub-ring boundaries never share a cache line.
		per := ringBytes / (rings * mrSlotSize) / 4 * 4
		if per < 8 {
			return Layout{}, fmt.Errorf("core: %d-byte ring too small for %d commit rings", ringBytes, rings)
		}
		l.RingSlots = per
		l.FlightOff = l.RingOff + rings*per*mrSlotSize
	} else {
		l.RingSlots = ringBytes / RingSlotSize
		l.FlightOff = l.RingOff + ringBytes
	}
	l.FlightSlots = flightSlots
	ckptBase := l.FlightOff + flightSlots*pmem.LineSize

	// Capacity: each cached block needs one 16B entry, one 4KB data block
	// and — with the checkpoint region on — one 8B journal slot plus two
	// 24B frame records. Solve with the cheap per-block denominator, then
	// walk down until the exact region sizes (alignment padding included)
	// fit the device.
	perBlock := BlockSize + EntrySize
	if checkpoint {
		perBlock += RingSlotSize + 2*ckptRecSize
	}
	cap := (devSize - ckptBase) / perBlock
	for cap > 0 {
		if checkpoint {
			jSlots := cap + 8
			l.CkptOff = ckptBase
			l.CkptJournalSlots = jSlots
			l.EntryOff = ckptBase + alignUp(jSlots*RingSlotSize, pmem.LineSize) +
				2*alignUp(ckptFrameHdr+l.ckptVecBytes()+cap*ckptRecSize, pmem.LineSize)
		} else {
			l.EntryOff = ckptBase
		}
		dataOff := alignUp(l.EntryOff+cap*EntrySize, BlockSize)
		if dataOff+cap*BlockSize <= devSize {
			l.DataOff = dataOff
			break
		}
		cap--
	}
	if cap < 8 {
		return Layout{}, fmt.Errorf("core: NVM device too small (%d bytes) for a Tinca layout with a %d-byte ring", devSize, ringBytes)
	}
	l.Capacity = cap
	if checkpoint {
		l.CkptJournalSlots = cap + 8
	}
	return l, nil
}

// entryOff returns the NVM offset of entry slot i.
func (l Layout) entryOff(i int) int { return l.EntryOff + i*EntrySize }

// blockOff returns the NVM offset of data block b.
func (l Layout) blockOff(b uint32) int { return l.DataOff + int(b)*BlockSize }

// ringSlotOff returns the NVM offset of the ring slot for monotonic
// position p (slots are used round-robin).
func (l Layout) ringSlotOff(p uint64) int {
	return l.RingOff + int(p%uint64(l.RingSlots))*RingSlotSize
}

// ckptJournalOff returns the NVM offset of checkpoint-journal slot j.
func (l Layout) ckptJournalOff(j int) int { return l.CkptOff + j*RingSlotSize }

// ckptVecBytes returns the size of the per-ring head/tail vector stored at
// the start of each checkpoint frame payload (multi-ring layouts only):
// Rings pairs of 8B head + 8B tail. Zero for the single-ring layout, so
// pre-multi-ring frames are byte-identical.
func (l Layout) ckptVecBytes() int {
	if l.Rings <= 1 {
		return 0
	}
	return l.Rings * 2 * 8
}

// ckptFrameBytes returns the line-aligned size of one snapshot frame.
func (l Layout) ckptFrameBytes() int {
	return alignUp(ckptFrameHdr+l.ckptVecBytes()+l.Capacity*ckptRecSize, pmem.LineSize)
}

// ckptFrameOff returns the NVM offset of snapshot frame k (k in {0,1}).
func (l Layout) ckptFrameOff(k int) int {
	return l.CkptOff + alignUp(l.CkptJournalSlots*RingSlotSize, pmem.LineSize) + k*l.ckptFrameBytes()
}

// headSlotOff returns where to store Head value v: with wear leveling the
// store rotates across PtrSlots cache lines (the value itself selects the
// slot, so recovery can take the maximum over all slots).
func (l Layout) headSlotOff(v uint64) int {
	if l.PtrSlots <= 1 {
		return l.HeadOff
	}
	return l.HeadOff + int(v%uint64(l.PtrSlots))*pmem.LineSize
}

// tailSlotOff is headSlotOff for the Tail pointer.
func (l Layout) tailSlotOff(v uint64) int {
	if l.PtrSlots <= 1 {
		return l.TailOff
	}
	return l.TailOff + int(v%uint64(l.PtrSlots))*pmem.LineSize
}

// ringHeadOff returns the base of ring r's Head rotation-slot area
// (PtrSlots cache lines). Ring 0 coincides with the single-ring HeadOff.
func (l Layout) ringHeadOff(r int) int { return l.HeadOff + r*l.PtrSlots*pmem.LineSize }

// ringTailOff is ringHeadOff for the Tail pointer.
func (l Layout) ringTailOff(r int) int { return l.TailOff + r*l.PtrSlots*pmem.LineSize }

// ringHeadSlotOff returns where to store ring r's Head value v, rotating
// across the ring's PtrSlots lines exactly like headSlotOff.
func (l Layout) ringHeadSlotOff(r int, v uint64) int {
	if l.PtrSlots <= 1 {
		return l.ringHeadOff(r)
	}
	return l.ringHeadOff(r) + int(v%uint64(l.PtrSlots))*pmem.LineSize
}

// ringTailSlotOff is ringHeadSlotOff for the Tail pointer.
func (l Layout) ringTailSlotOff(r int, v uint64) int {
	if l.PtrSlots <= 1 {
		return l.ringTailOff(r)
	}
	return l.ringTailOff(r) + int(v%uint64(l.PtrSlots))*pmem.LineSize
}

// mrSlotOff returns the NVM offset of ring r's 16B log record for
// monotonic per-ring position p (multi-ring layouts only).
func (l Layout) mrSlotOff(r int, p uint64) int {
	return l.RingOff + r*l.RingSlots*mrSlotSize + int(p%uint64(l.RingSlots))*mrSlotSize
}
