package core

import (
	"fmt"

	"tinca/internal/bufpool"
	"tinca/internal/flight"
	"tinca/internal/metrics"
)

// Txn is a running transaction (Section 4.4): an ordered set of 4KB block
// updates staged in DRAM. Running transactions are pure DRAM state, so any
// number of them build up concurrently without touching cache locks; only
// Commit enters the (group-) commit pipeline. A Txn is not safe for
// concurrent use by multiple goroutines; use one Txn per writer.
type Txn struct {
	c      *Cache
	blocks map[uint64][]byte
	order  []uint64
	done   bool

	// sealSeq is the sequence number of the seal this transaction was
	// committed under (0 until a seal claims it). Written under c.mu.
	sealSeq uint64
}

// SealSeq returns the sequence number of the seal that committed (or was
// committing) this transaction, or 0 if no seal has claimed it yet. A
// crash harness compares it against the largest value Options.SealHook
// reported: seals at or below that value reached their commit point, so
// every transaction they claimed must be durable; transactions with a
// larger (or zero) SealSeq must be absent. Read it only after Commit
// returned or after the committing goroutines were joined.
func (t *Txn) SealSeq() uint64 { return t.sealSeq }

// Begin initiates a running transaction (tinca_init_txn).
func (c *Cache) Begin() *Txn {
	return &Txn{c: c, blocks: make(map[uint64][]byte)}
}

// Write stages the new contents of disk block no. Writing the same block
// twice in one transaction keeps the latest contents (the file system
// coalesces updates per transaction, as JBD2 does).
func (t *Txn) Write(no uint64, data []byte) {
	if t.done {
		panic("core: Write on finished transaction")
	}
	if len(data) != BlockSize {
		panic(fmt.Sprintf("core: transaction block must be %d bytes", BlockSize))
	}
	if no > maxDiskBlock {
		panic("core: disk block number exceeds 7 bytes")
	}
	buf, ok := t.blocks[no]
	if !ok {
		buf = make([]byte, BlockSize)
		t.blocks[no] = buf
		t.order = append(t.order, no)
	}
	copy(buf, data)
}

// Len reports how many distinct blocks are staged.
func (t *Txn) Len() int { return len(t.order) }

// Abort discards the running transaction (tinca_abort). Nothing has been
// written to NVM for a running transaction, so this is purely a DRAM
// operation; blocks partially committed by a crashed commit are revoked by
// recovery instead.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.blocks = nil
	t.order = nil
	t.c.rec.Inc(metrics.TxnAbort)
}

// Commit makes the running transaction durable and atomic following the
// commit protocol of Section 4.4:
//
//  1. for each block: write the data into a newly allocated NVM block
//     (COW for hits) and persist it; atomically persist the block's cache
//     entry with the log role and both NVM locations;
//  2. record the on-disk block number in the ring slot Head points at and
//     advance Head (8B atomic persists);
//  3. after all blocks: switch every block's role to buffer, releasing
//     the previous versions;
//  4. set Tail = Head; this atomic store is the commit point.
//
// In the default configuration concurrently arriving Commits coalesce
// into a single seal (see group.go): the protocol's persist order is kept
// but its fences and pointer flips are paid once per batch. Ablation
// configurations keep the paper's one-transaction-at-a-time commit.
//
// On success all staged blocks are durable and atomic: after any crash,
// either every block of this transaction is visible or none is.
func (t *Txn) Commit() error {
	if t.done {
		panic("core: Commit on finished transaction")
	}
	c := t.c
	c.checkPoison()
	if c.closed.Load() {
		return ErrClosed
	}
	if len(t.order) == 0 {
		t.done = true
		return nil
	}
	if len(c.rings) > 0 {
		// Multi-ring commit (CommitRings > 1): per-ring capacity checks and
		// routing live in commitMultiRing — RingSlots is per ring there.
		return c.commitMultiRing(t)
	}
	if len(t.order) > c.lay.RingSlots {
		return ErrTxnTooLarge
	}
	if c.serial {
		var t0 int64
		if c.obs != nil {
			t0 = c.obs.now()
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.closed.Load() {
			return ErrClosed
		}
		err := c.commitSerialLocked(t)
		t.done = true
		if c.obs != nil {
			c.obs.phase(c.obs.total, 0, spanSerial, t0, c.obs.gid())
		}
		return err
	}
	return c.groupCommit(t)
}

// commitSerialLocked is the paper's one-transaction-at-a-time commit. It
// serves the ablation configurations and the group path's fallback when a
// merged batch cannot be allocated. Caller holds c.mu.
func (c *Cache) commitSerialLocked(t *Txn) error {
	c.sealSeq++
	t.sealSeq = c.sealSeq
	c.flEmit(flight.EvSerialBegin, 0, t.sealSeq, uint64(len(t.order)), 0)
	// Every slot this commit touches stays pinned (in its block's shard)
	// until the Tail flip below is durable: after the role switch an
	// entry looks like an ordinary dirty buffer, but evicting it — with
	// its disk write-back — before the commit point would let a crash
	// observe a half-committed transaction. unpin releases them, keyed by
	// the block number the pin was registered under (the slot alone is
	// not enough once DisableTxnPin allows mid-commit reuse).
	touched := make([]int32, 0, len(t.order))
	unpin := func() {
		for k, slot := range touched {
			sh := c.shardOf(t.order[k])
			sh.mu.Lock()
			delete(sh.pinned, slot)
			sh.mu.Unlock()
		}
	}
	for _, no := range t.order {
		slot, err := c.commitBlock(no, t.blocks[no])
		if err != nil {
			// Allocation failure mid-commit: the blocks committed so far
			// carry the log role. Persist Tail over the consumed ring
			// range first — Tail is monotonic, so the advance survives a
			// crash, after which the blocks are stray log entries that
			// recovery's sweep revokes; then revoke them live. Head
			// stays where it is: a rollback could not be made durable
			// through the max-recovered pointer slots, and a stale
			// larger Head over revoked entries would fail recovery.
			unpin()
			start := c.tail
			c.setTail(c.head)
			c.revokeRange(start, c.head)
			c.flEmit(flight.EvSealAbort, 0, t.sealSeq, c.head, uint64(c.head-start))
			c.rec.Inc(metrics.TxnAbort)
			return err
		}
		touched = append(touched, slot)
	}

	// Step 4 of the protocol: role switches for all involved blocks.
	for _, slot := range touched {
		c.roleSwitch(slot)
	}

	// Write-through mode: propagate the committed blocks to disk now and
	// mark them clean; the NVM copy remains authoritative for reads.
	// writeBack coordinates with any write-back the background evictor or
	// destager may have in flight for the same slot.
	if c.opts.WriteThrough {
		buf := bufpool.Get()
		for _, slot := range touched {
			e := c.readEntry(slot)
			if !e.valid {
				continue
			}
			c.writeBack(c.shardOf(e.disk), e.disk, slot, buf)
		}
		bufpool.Put(buf)
	}

	// Step 5: Tail catches up with Head; this ends the transaction.
	c.setTail(c.head)
	// After the flip, so this record durable implies the commit durable
	// (the invariant the crash oracle checks against the recovered Tail).
	c.flEmit(flight.EvSerialCommit, 0, t.sealSeq, c.head, uint64(len(t.order)))
	if c.opts.SealHook != nil {
		c.opts.SealHook(t.sealSeq)
	}

	// Committed blocks become the most recently used (Section 4.6 rule 2b).
	// With pinning disabled (ablation) a touched slot may have been
	// evicted and even reused mid-commit, so the touch is skipped.
	if !c.opts.DisableTxnPin {
		for _, slot := range touched {
			e := c.readEntry(slot)
			sh := c.shardOf(e.disk)
			sh.mu.Lock()
			c.touchLocked(sh, slot)
			sh.mu.Unlock()
		}
	}
	unpin()

	c.rec.Inc(metrics.TxnCommit)
	c.rec.Add(metrics.TxnBlocks, int64(len(t.order)))
	c.maybeCheckpoint()
	return nil
}

// commitBlock writes one block of the committing transaction (steps 1-3 of
// the protocol) and returns the entry slot used. Serial path only; caller
// holds c.mu.
func (c *Cache) commitBlock(no uint64, data []byte) (int32, error) {
	var slot int32
	h := shardIdx(no)
	sh := c.shardOf(no)
	sh.mu.Lock()
	i, hit := sh.slot(no)
	var old entry
	if hit {
		old = c.readEntry(i)
		if old.role == RoleLog {
			sh.mu.Unlock()
			panic("core: block committed twice in one transaction")
		}
		// Rule 2 (Section 4.6): pin the hit target inside the same
		// critical section as the lookup — the background evictor only
		// honours pins it can observe under the shard lock, and the
		// allocation below may need to evict. The pin stays until
		// commitSerialLocked's epilogue (or is removed here on failure).
		sh.pinned[i] = true
	}
	sh.mu.Unlock()
	if hit {
		// Write hit: COW block write (Section 4.3). The updated version
		// goes to a newly allocated NVM block; the entry records both
		// locations in one atomic 16B store.
		c.rec.Inc(metrics.CacheWriteHit)
		if c.opts.Ablation == AblationUBJ {
			// UBJ-style commit-in-place: before overwriting the frozen
			// block, copy it aside inside NVM (the memcpy on the critical
			// path the paper criticizes), then update in place.
			nb, err := c.allocBlock(h)
			if err != nil {
				sh.mu.Lock()
				delete(sh.pinned, i)
				sh.mu.Unlock()
				return 0, err
			}
			tmp := bufpool.Get()
			func() {
				sh.mu.Lock()
				defer sh.mu.Unlock()
				// In-place overwrite of the slot's data block: readers must
				// see the whole mutation as one version step.
				c.beginSlotMutate(i)
				c.mem.Load(c.lay.blockOff(old.cur), tmp)
				c.mem.PersistRange(c.lay.blockOff(nb), tmp) // preserve old version
				c.mem.PersistRange(c.lay.blockOff(old.cur), data)
				c.writeEntry(i, entry{valid: true, role: RoleLog, modified: true, disk: no, prev: nb, cur: old.cur})
				c.dirtied[i] = true
				c.endSlotMutate(i)
			}()
			bufpool.Put(tmp)
			slot = i
		} else {
			nb, err := c.allocBlock(h)
			if err != nil {
				sh.mu.Lock()
				delete(sh.pinned, i)
				sh.mu.Unlock()
				return 0, err
			}
			c.persistBlockData(c.lay.blockOff(nb), data)
			func() {
				sh.mu.Lock()
				defer sh.mu.Unlock()
				// COW redirect: the data at old.cur is untouched, but the
				// entry flips to RoleLog — bump so an in-flight fast read
				// re-decides (and lands on the locked path).
				c.beginSlotMutate(i)
				c.writeEntry(i, entry{valid: true, role: RoleLog, modified: true, disk: no, prev: old.cur, cur: nb})
				c.dirtied[i] = true
				c.endSlotMutate(i)
			}()
			slot = i
		}
		c.rec.Inc(metrics.TxnCOWBlocks)
	} else {
		// Write miss: no previous version; the entry is created with the
		// FRESH tag so recovery knows to delete rather than roll back.
		c.rec.Inc(metrics.CacheWriteMiss)
		nb, err := c.allocBlock(h)
		if err != nil {
			return 0, err
		}
		c.persistBlockData(c.lay.blockOff(nb), data)
		i := c.allocSlot(h)
		func() {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			if j, ok := sh.slot(no); ok {
				// A concurrent read fill installed this block between the
				// lookup above and now. The commit's version supersedes
				// the clean filled copy.
				c.dropFilledLocked(sh, no, j)
			}
			c.beginSlotMutate(i)
			c.writeEntry(i, entry{valid: true, role: RoleLog, modified: true, disk: no, prev: Fresh, cur: nb})
			c.endSlotMutate(i)
			sh.mapStore(no, i)
			c.pushFrontLocked(sh, i)
			sh.pinned[i] = true
			c.dirtied[i] = true
		}()
		slot = i
	}

	if c.opts.Ablation == AblationDoubleWrite {
		// Journaling-style double write inside the NVM cache: persist a
		// second, redundant copy of the block (the log copy a journal
		// would keep). The copy is immediately freed; only the cost is
		// modeled, matching what the role switch saves.
		if nb, err := c.allocBlock(h); err == nil {
			c.mem.PersistRange(c.lay.blockOff(nb), data)
			c.alloc.pushBlock(nb)
		}
	}

	// Record the block number in the ring and move Head (8B atomic writes
	// each followed by clflush+sfence).
	c.mem.Persist8(c.lay.ringSlotOff(c.head), no)
	c.head++
	c.mem.Persist8(c.lay.headSlotOff(c.head), c.head)
	return slot, nil
}

// roleSwitch converts the committed block in slot from log to buffer role
// and reclaims the previous version (Section 4.3). Serial path only;
// caller holds c.mu.
func (c *Cache) roleSwitch(slot int32) {
	e := c.readEntry(slot)
	if !e.valid || e.role != RoleLog {
		if c.opts.DisableTxnPin {
			// Replacement rule 2 is disabled (ablation mode): the block
			// was legally evicted mid-commit and its slot may be reused.
			return
		}
		panic("core: role switch on non-log entry")
	}
	prev := e.prev
	e.role = RoleBuffer
	e.prev = Fresh
	func() {
		sh := c.shardOf(e.disk)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		// Role switch log→buffer: after the bump pair a fast reader can
		// serve the slot again.
		c.beginSlotMutate(slot)
		c.writeEntry(slot, e)
		c.endSlotMutate(slot)
	}()
	if prev != Fresh {
		c.freeDataBlock(prev)
	}
}

// persistBlockData makes committed block data durable at off — unless the
// harness-validation fault asked for the flush to be (incorrectly)
// skipped, leaving the store volatile while the rest of the protocol
// proceeds as if it were durable.
func (c *Cache) persistBlockData(off int, data []byte) {
	if c.opts.Fault == FaultSkipDataFlush {
		c.mem.Store(off, data)
		return
	}
	c.mem.PersistRange(off, data)
}

// setTail persists Tail = p. Caller holds c.mu.
func (c *Cache) setTail(p uint64) {
	c.tail = p
	c.mem.Persist8(c.lay.tailSlotOff(p), p)
}

// CommitBlocks is a convenience wrapper committing the given blocks as one
// transaction. The bufs slice parallels nos.
func (c *Cache) CommitBlocks(nos []uint64, bufs [][]byte) error {
	t := c.Begin()
	for i, no := range nos {
		t.Write(no, bufs[i])
	}
	return t.Commit()
}
