package core

import "fmt"

// lruList is an intrusive doubly-linked LRU list over entry-slot indices.
// It backs the DRAM-resident replacement structure of Section 4.6; it is
// rebuilt from the persistent entry table on startup, so it is never
// stored in NVM.
type lruList struct {
	prev, next []int32
	head, tail int32 // head = MRU, tail = LRU
	size       int
}

const lruNil = int32(-1)

func newLRU(capacity int) *lruList {
	l := &lruList{
		prev: make([]int32, capacity),
		next: make([]int32, capacity),
		head: lruNil,
		tail: lruNil,
	}
	for i := range l.prev {
		l.prev[i] = lruNil
		l.next[i] = lruNil
	}
	return l
}

// pushFront inserts slot i at the MRU end. i must not be in the list.
func (l *lruList) pushFront(i int32) {
	if debugLRU && (l.prev[i] != lruNil || l.next[i] != lruNil || l.head == i) {
		panic(fmt.Sprintf("lru: pushFront of in-list slot %d", i))
	}
	l.prev[i] = lruNil
	l.next[i] = l.head
	if l.head != lruNil {
		l.prev[l.head] = i
	}
	l.head = i
	if l.tail == lruNil {
		l.tail = i
	}
	l.size++
}

// remove unlinks slot i. i must be in the list.
func (l *lruList) remove(i int32) {
	if debugLRU && l.prev[i] == lruNil && l.next[i] == lruNil && l.head != i {
		panic(fmt.Sprintf("lru: remove of non-list slot %d", i))
	}
	p, n := l.prev[i], l.next[i]
	if p != lruNil {
		l.next[p] = n
	} else {
		l.head = n
	}
	if n != lruNil {
		l.prev[n] = p
	} else {
		l.tail = p
	}
	l.prev[i] = lruNil
	l.next[i] = lruNil
	l.size--
}

// touch moves slot i to the MRU end.
func (l *lruList) touch(i int32) {
	if l.head == i {
		return
	}
	l.remove(i)
	l.pushFront(i)
}

// len reports how many slots are linked.
func (l *lruList) len() int { return l.size }

// contains reports whether slot i is currently linked. Used by the touch-
// ring drain to skip promotions for slots that left the list since they
// were queued.
func (l *lruList) contains(i int32) bool {
	return l.prev[i] != lruNil || l.next[i] != lruNil || l.head == i
}

// olderToNewer steps from slot i toward the MRU end — the direction the
// eviction scan walks, starting at the LRU tail.
func (l *lruList) olderToNewer(i int32) int32 { return l.prev[i] }

// validate walks the list and panics on any inconsistency (test helper).
func (l *lruList) validate(tag string) {
	n := 0
	last := lruNil
	for i := l.tail; i != lruNil; i = l.prev[i] {
		n++
		last = i
		if n > l.size+1 {
			panic("lru cycle at " + tag)
		}
	}
	if n != l.size {
		panic(fmt.Sprintf("lru broken at %s: walked %d, size %d (stopped at %d, head %d)", tag, n, l.size, last, l.head))
	}
	if last != l.head && l.size > 0 {
		panic("lru walk did not reach head at " + tag)
	}
}
