package core

import (
	"sync"
	"testing"

	"tinca/internal/metrics"
)

func commitSome(t *testing.T, c *Cache, workers, perWorker int) {
	t.Helper()
	var wg sync.WaitGroup
	block := blockOf(0xAB)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				txn := c.Begin()
				txn.Write(uint64(w*perWorker+i)%64, block)
				txn.Write(uint64(w), block)
				if err := txn.Commit(); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
}

func TestObservePhaseHistograms(t *testing.T) {
	r := newRig(t, 8<<20, Options{Observe: true})
	commitSome(t, r.cache, 4, 30)

	st := r.cache.Stats()
	if st.CommitLatency.Count != 120 {
		t.Fatalf("commit latency count = %d", st.CommitLatency.Count)
	}
	if st.CommitLatency.P50NS <= 0 || st.CommitLatency.MaxNS < st.CommitLatency.P50NS {
		t.Fatalf("implausible commit latency %+v", st.CommitLatency)
	}
	if len(st.CommitPhases) == 0 {
		t.Fatal("no commit phases reported")
	}
	seen := map[string]LatencySummaryCheck{}
	for _, p := range st.CommitPhases {
		seen[p.Phase] = LatencySummaryCheck{p.Count, p.MaxNS}
	}
	// Every pipeline phase must have one sample per seal.
	seals := seen[metrics.HistCommitSeal].Count
	if seals == 0 {
		t.Fatalf("no seals observed: %v", seen)
	}
	for _, name := range []string{
		metrics.HistCommitWait, metrics.HistCommitData, metrics.HistCommitEntries,
		metrics.HistCommitRing, metrics.HistCommitSwitch, metrics.HistCommitTail,
	} {
		if seen[name].Count != seals {
			t.Fatalf("phase %s has %d samples, want %d (one per seal); phases=%v", name, seen[name].Count, seals, seen)
		}
	}
	// The data phase writes blocks to NVM, so it must be the dominant one.
	if seen[metrics.HistCommitData].MaxNS <= seen[metrics.HistCommitTail].MaxNS {
		t.Fatalf("data phase (%d) not dominating tail flip (%d)",
			seen[metrics.HistCommitData].MaxNS, seen[metrics.HistCommitTail].MaxNS)
	}

	// A fresh device formats; reopening the same device runs (and times)
	// the Section 4.5 recovery pass.
	if err := r.cache.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r.reopen(t, Options{Observe: true})
	if n := r.rec.HistSnapshot(metrics.HistRecovery).Count; n != 1 {
		t.Fatalf("recovery samples = %d", n)
	}
	// A clean reopen never runs the redo branch, so the redo histogram
	// must stay empty: a zero-length sample here would also mean a
	// zero-length span polluting Chrome traces (the gated-redo fix).
	if n := r.rec.HistSnapshot(metrics.HistRecoveryRedo).Count; n != 0 {
		t.Fatalf("redo phase recorded %d samples on a clean reopen, want 0", n)
	}
	// NVM flush/fence cadence histograms are only armed via pmem
	// Observe(), which the stack layer wires; the rig leaves them off.
}

type LatencySummaryCheck struct {
	Count int64
	MaxNS int64
}

func TestObserveOffIsFree(t *testing.T) {
	r := newRig(t, 8<<20, Options{})
	commitSome(t, r.cache, 2, 10)
	st := r.cache.Stats()
	if st.CommitLatency.Count != 0 || len(st.CommitPhases) != 0 {
		t.Fatalf("observability off but stats populated: %+v", st.CommitLatency)
	}
	if hs := r.rec.HistSnapshots(); len(hs) != 0 {
		t.Fatalf("histograms registered without Observe: %v", hs)
	}
}

func TestObserveDoesNotPerturbSimulation(t *testing.T) {
	// Same workload with and without observability must charge the exact
	// same simulated time and counters: instrumentation is deltas only.
	run := func(opts Options) (int64, int64) {
		r := newRig(t, 8<<20, opts)
		commitSome(t, r.cache, 1, 50)
		if err := r.cache.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		return int64(r.clock.Now()), r.rec.Get(metrics.NVMCLFlush)
	}
	t0, f0 := run(Options{})
	t1, f1 := run(Options{Observe: true})
	if t0 != t1 || f0 != f1 {
		t.Fatalf("observe changed the simulation: time %d vs %d, clflush %d vs %d", t0, t1, f0, f1)
	}
	// The flight recorder's persists are silent (no clock, no counters), so
	// flying with the black box on must also be bit-identical — that is the
	// contract that lets every figure and every crash-sweep trial keep the
	// recorder enabled.
	t2, f2 := run(Options{FlightRecorder: true})
	if t0 != t2 || f0 != f2 {
		t.Fatalf("flight recorder changed the simulation: time %d vs %d, clflush %d vs %d", t0, t2, f0, f2)
	}
	t3, f3 := run(Options{FlightRecorder: true, Observe: true})
	if t0 != t3 || f0 != f3 {
		t.Fatalf("flight recorder + observe changed the simulation: time %d vs %d, clflush %d vs %d", t0, t3, f0, f3)
	}
}

// TestFlightRecorderDeterministic proves the stronger property the figure
// pipeline relies on: the full counter snapshot — not just time and
// flushes — is identical with the recorder on and off, and two flights of
// the same workload decode to the same event sequence.
func TestFlightRecorderDeterministic(t *testing.T) {
	run := func(opts Options) (metrics.Snapshot, *Cache) {
		r := newRig(t, 8<<20, opts)
		commitSome(t, r.cache, 1, 50)
		if err := r.cache.FlushAll(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		return r.rec.Snapshot(), r.cache
	}
	off, _ := run(Options{})
	on, c1 := run(Options{FlightRecorder: true})
	for k, v := range on {
		if off[k] != v {
			t.Errorf("counter %s: %d with recorder on, %d off", k, v, off[k])
		}
	}
	for k, v := range off {
		if _, ok := on[k]; !ok && v != 0 {
			t.Errorf("counter %s: %d off, absent on", k, v)
		}
	}
	on2, c2 := run(Options{FlightRecorder: true})
	for k, v := range on2 {
		if on[k] != v {
			t.Errorf("counter %s: %d vs %d across identical flights", k, on[k], v)
		}
	}
	bb1, bb2 := c1.Blackbox(), c2.Blackbox()
	if bb1 == nil || bb2 == nil {
		t.Fatal("no blackbox from a flight-recorded cache")
	}
	if len(bb1.Records) == 0 {
		t.Fatal("flight ring empty after 50 commits")
	}
	if len(bb1.Records) != len(bb2.Records) {
		t.Fatalf("flights diverged: %d vs %d records", len(bb1.Records), len(bb2.Records))
	}
	for i := range bb1.Records {
		if bb1.Records[i] != bb2.Records[i] {
			t.Fatalf("flight record %d diverged: %v vs %v", i, bb1.Records[i], bb2.Records[i])
		}
	}
}

func TestTracerSpansFromCommits(t *testing.T) {
	tr := metrics.NewTracer(1 << 12)
	r := newRig(t, 8<<20, Options{Tracer: tr}) // Tracer implies Observe
	commitSome(t, r.cache, 2, 20)

	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
		if s.DurNS < 0 || s.StartNS < 0 {
			t.Fatalf("negative span %+v", s)
		}
	}
	for _, want := range []string{spanData, spanTail, spanSeal, spanCommit} {
		if byName[want] == 0 {
			t.Fatalf("no %q spans; have %v", want, byName)
		}
	}
	// One whole-commit span per transaction.
	if byName[spanCommit] != 40 {
		t.Fatalf("commit spans = %d, want 40 (%v)", byName[spanCommit], byName)
	}
	// Spans carry the committing goroutine id.
	for _, s := range spans {
		if s.Name == spanSeal && s.G == 0 {
			t.Fatalf("seal span without goroutine id: %+v", s)
		}
	}
}

func TestObserveSerialCommitPath(t *testing.T) {
	// DisableTxnPin forces the legacy serial commit path; commit totals
	// must still be recorded (as commit.serial spans / commit.total
	// samples).
	tr := metrics.NewTracer(1 << 10)
	r := newRig(t, 8<<20, Options{Tracer: tr, DisableTxnPin: true})
	commitSome(t, r.cache, 1, 10)
	st := r.cache.Stats()
	if st.CommitLatency.Count != 10 {
		t.Fatalf("serial commit latency count = %d", st.CommitLatency.Count)
	}
	var serial int
	for _, s := range tr.Spans() {
		if s.Name == spanSerial {
			serial++
		}
	}
	if serial != 10 {
		t.Fatalf("serial spans = %d", serial)
	}
}

func TestObserveDestage(t *testing.T) {
	r := newRig(t, 8<<20, Options{Observe: true, DestageDepth: 8})
	commitSome(t, r.cache, 1, 20)
	r.cache.DrainDestage()
	if n := r.rec.HistSnapshot(metrics.HistDestageWrite).Count; n == 0 {
		t.Fatal("no destage writes observed")
	}
	if n := r.rec.Get(metrics.DestageDone); n == 0 {
		t.Fatal("destager did no work; test premise broken")
	}
}
