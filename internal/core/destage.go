package core

import (
	"tinca/internal/bufpool"
	"tinca/internal/flight"
	"tinca/internal/metrics"
)

// The destager moves disk write-back off the commit critical path. The
// cache is write-back by design (Section 4.6): committed blocks sit dirty
// in NVM and historically reached the disk only when evicted — a
// synchronous disk write on the eviction (and thus allocation) path. With
// DestageDepth > 0 a background goroutine drains a bounded queue of
// freshly committed blocks and writes them back early, so evictions find
// clean victims; in write-through mode the same queue carries the
// mandatory propagation, with the committer blocking when the queue is
// full (backpressure) instead of dropping.
//
// Crash consistency never depends on the destager: a destage is exactly
// an early eviction write-back, and the NVM copy remains authoritative
// until the entry's modified bit is cleared — which happens only after
// the disk write returns.

// destageItem names one committed block to write back. slot guards
// against ABA: if the block was evicted and re-fetched, the slot check
// under the shard lock makes the stale item a no-op (a fresh commit
// enqueues its own item).
type destageItem struct {
	no   uint64
	slot int32
}

// destageEnqueue hands a committed block to the destager. In
// write-through mode the send blocks when the queue is full — commit
// throughput degrades to disk throughput, which is the backpressure
// write-through semantics require. In write-back mode cleaning is merely
// opportunistic, so a full queue drops the request instead of stalling
// the committer.
func (c *Cache) destageEnqueue(no uint64, slot int32) {
	c.destagePending.Add(1)
	c.rec.Inc(metrics.DestageQueueDepth)
	item := destageItem{no: no, slot: slot}
	if c.opts.WriteThrough {
		c.destageCh <- item
		return
	}
	select {
	case c.destageCh <- item:
	default:
		c.rec.Add(metrics.DestageQueueDepth, -1)
		c.rec.Inc(metrics.DestageDropped)
		c.destageWakeMu.Lock()
		c.destagePending.Add(-1)
		c.destageWake.Broadcast()
		c.destageWakeMu.Unlock()
	}
}

// destager is one background drain worker; Options.DestageWorkers of them
// share the queue. Each item is processed under the block's shard lock
// only — a destager never takes c.mu, so commits and destages overlap
// freely, and with several workers the disk write-backs of independent
// blocks overlap each other (the wb flag in writeBack keeps same-block
// write-backs ordered). An injected crash during the entry update poisons
// the cache and the loop degrades to draining (so a blocked write-through
// committer is released) until the channel closes.
func (c *Cache) destager() {
	defer c.destageWG.Done()
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	for item := range c.destageCh {
		if c.poisoned.Load() == nil {
			c.destageOne(item, buf)
		}
		c.rec.Add(metrics.DestageQueueDepth, -1)
		// Decrement and broadcast under the drain mutex so a drainer
		// cannot check pending and sleep between the two (lost wakeup).
		c.destageWakeMu.Lock()
		c.destagePending.Add(-1)
		c.destageWake.Broadcast()
		c.destageWakeMu.Unlock()
	}
}

// destageOne writes one queued block back to disk and marks it clean,
// skipping items invalidated since they were queued (evicted, re-sealed,
// or already cleaned) — writeBack performs all of that validation and the
// disk write happens outside the shard lock. Panics from the simulated
// NVM (injected crashes) poison the cache instead of killing the process.
func (c *Cache) destageOne(item destageItem, buf []byte) {
	defer func() {
		if r := recover(); r != nil {
			c.poison(r)
		}
	}()
	var t0 int64
	if c.obs != nil {
		t0 = c.obs.now()
	}
	// The disk write completes before the modified bit clears; a crash
	// between the two leaves a dirty entry over an already-current disk
	// block, which is merely a redundant future write-back.
	if c.writeBack(c.shardOf(item.no), item.no, item.slot, buf) {
		c.rec.Inc(metrics.DestageDone)
		c.flEmit(flight.EvDestage, 0, 0, item.no, 0)
		if c.obs != nil {
			c.obs.phase(c.obs.destage, item.no, spanDestage, t0, c.obs.gid())
		}
	}
}

// DrainDestage blocks until every queued destage has been processed (or
// the cache has been poisoned by a simulated crash). It is a no-op when
// the destager is disabled. FlushAll drains first so the subsequent sweep
// sees final modified bits.
func (c *Cache) DrainDestage() {
	if c.destageCh == nil {
		return
	}
	c.destageWakeMu.Lock()
	defer c.destageWakeMu.Unlock()
	for c.destagePending.Load() > 0 {
		c.destageWake.Wait()
	}
}
