package core

import (
	"sync/atomic"

	"tinca/internal/metrics"
)

// This file implements the lock-free read-hit fast path: per-slot seqlocks
// plus a per-shard MPSC touch ring that decouples LRU promotion from the
// hit itself. A warm cache spends most of its time here, so the common
// case takes zero locks: a lock-free hash lookup, one 16B entry load, the
// block copy, and a version re-check.
//
// Seqlock protocol (DESIGN.md §11). Every entry slot i carries a volatile
// version counter slotSeq[i]: even = stable, odd = mutation in progress.
// Every mutator of a slot's (entry, data) pair already holds the block's
// shard lock; it additionally brackets the mutation with beginSlotMutate /
// endSlotMutate (+1 each), so the counter is odd exactly while the pair
// may be inconsistent. A lock-free reader:
//
//  1. looks the block up in the shard's lock-free hash index,
//  2. loads s1 := slotSeq[i]; retries unless s1 is even,
//  3. loads the 16B entry (atomic: the simulated cmpxchg16b granularity
//     of Section 4.2 — an entry load can never tear),
//  4. rejects entries it cannot serve lock-free (invalid, remapped, or
//     carrying the log role — a block mid-seal is served by the locked
//     path from its previous sealed version, per the role-switch ordering
//     of Section 4.4),
//  5. copies the NVM block bytes,
//  6. re-loads slotSeq[i]; the copy is used only if it still equals s1.
//
// Torn-read impossibility: if the version was even before the copy and
// unchanged after it, no mutator entered (or exited) a mutation of that
// slot during the read — so the entry the reader decoded and the bytes it
// copied belong to the same stable state. The one subtle hazard is block
// reuse: an eviction frees the slot's data block, and an allocator hands
// it to a concurrent fill or seal that overwrites the bytes mid-copy. The
// eviction's beginSlotMutate happens (under the shard lock) before the
// block is pushed onto the free pool, so any reader whose copy could
// observe the reused bytes necessarily loaded s1 before the begin and
// re-loads the counter after it — the re-check fails and the copy is
// discarded. Readers never block mutators; after maxFastReadRetries
// version changes the reader falls back to the shard-locked path.
//
// LRU decoupling: a fast hit must not take the shard lock just to splice
// the LRU list, so it stamps the slot's atomic access tick (atime) and
// pushes the slot into the shard's fixed-size touch ring. The background
// evictor and every locked-path entrant that is about to observe or
// mutate LRU order first drain the ring FIFO into the exact list, so in
// a single-threaded execution the list is always exactly what immediate
// splicing would have produced (stamp order == drain order) and the
// simulated results of the existing figures are bit-identical. Under
// concurrency a full ring drops the splice (the stamp always lands):
// recency becomes approximate, which is all eviction needs — victim
// selection orders by the exact per-slot atime ticks, and evictSlot
// re-validates the tick under the shard lock before evicting.

// maxFastReadRetries bounds how many version changes a fast read tolerates
// before falling back to the shard-locked path.
const maxFastReadRetries = 4

// touchRingSize is the per-shard touch ring capacity. Must be a power of
// two. 512 slots absorb long runs of pure fast hits between locked-path
// drains; overflow degrades to approximate recency, never to blocking.
const touchRingSize = 512

// touchRing is a fixed-size MPSC ring of entry-slot indices awaiting LRU
// promotion. Producers are lock-free fast-path readers; the consumer holds
// the shard lock. Cells store slot+1 so zero means "empty or claimed but
// not yet published".
type touchRing struct {
	head  atomic.Uint64 // next cell to claim (producers, CAS)
	tail  atomic.Uint64 // next cell to consume (consumer, under sh.mu)
	cells [touchRingSize]atomic.Int64
}

// push queues slot i for promotion, reporting false when the ring is full
// (the touch is then dropped — approximate recency).
func (r *touchRing) push(i int32) bool {
	for {
		h := r.head.Load()
		if h-r.tail.Load() >= touchRingSize {
			return false
		}
		if r.head.CompareAndSwap(h, h+1) {
			r.cells[h&(touchRingSize-1)].Store(int64(i) + 1)
			return true
		}
	}
}

// drainTouchesLocked applies every published pending touch to the shard's
// exact LRU list, FIFO. It stops early at a claimed-but-unpublished cell
// (a producer between its CAS and its store); that producer's touch and
// everything after it drain on the next call. Slots that left the list
// since their touch was queued (evicted, dropped, revoked) are skipped; if
// the slot was re-used and re-inserted the promotion applies to the new
// tenant, which is harmless — it is already near the MRU end. Caller holds
// sh.mu.
func (c *Cache) drainTouchesLocked(sh *shard) {
	r := &sh.touches
	t := r.tail.Load()
	drained := int64(0)
	for t != r.head.Load() {
		v := r.cells[t&(touchRingSize-1)].Swap(0)
		if v == 0 {
			break // claimed but not yet published; stop at the gap
		}
		t++
		r.tail.Store(t)
		i := int32(v - 1)
		if sh.lru.contains(i) {
			sh.lru.touch(i)
		}
		drained++
	}
	if drained > 0 {
		c.rec.Add(metrics.CacheTouchDrained, drained)
	}
}

// beginSlotMutate marks slot i's (entry, data) pair as mutating: readers
// that observe the odd counter (or a change across their copy) discard and
// retry. Caller holds the slot's shard lock.
func (c *Cache) beginSlotMutate(i int32) {
	c.slotSeq[i].Add(1)
}

// endSlotMutate marks the mutation of slot i complete.
func (c *Cache) endSlotMutate(i int32) {
	c.slotSeq[i].Add(1)
}

// readFast serves a read hit of block no without any lock, reporting
// whether it did. False means "not servable lock-free": a miss, a mid-seal
// (log-role) entry, or persistent version churn — the caller falls back to
// the locked path, which re-decides from scratch. The fast path performs
// exactly the NVM operations of a locked hit (one 16B entry load + one
// block copy), so on a quiescent cache the simulated cost is identical.
func (c *Cache) readFast(no uint64, p []byte) bool {
	sh := c.shardOf(no)
	retries := 0
	for {
		i, ok := sh.slot(no)
		if !ok {
			return false // miss (or just evicted): locked path decides
		}
		s1 := c.slotSeq[i].Load()
		if s1&1 != 0 {
			// A mutator is inside this slot right now.
			c.rec.Inc(metrics.CacheSeqlockRetry)
			if retries++; retries > maxFastReadRetries {
				return false
			}
			continue
		}
		e := c.readEntry(i)
		if !e.valid || e.disk != no {
			// Stale index entry: the slot was evicted (and possibly
			// reused) between the lookup and the entry load. Retry from
			// the lookup; the index catches up momentarily.
			if retries++; retries > maxFastReadRetries {
				return false
			}
			continue
		}
		if e.role == RoleLog {
			// Mid-seal: the locked path serves the previous sealed
			// version (or reads around the cache for a fresh write), per
			// the role-switch ordering of Section 4.4.
			return false
		}
		c.mem.Load(c.lay.blockOff(e.cur), p)
		if c.slotSeq[i].Load() != s1 {
			// The slot mutated while we copied; the bytes may mix two
			// versions (or a reused block). Discard and retry.
			c.rec.Inc(metrics.CacheSeqlockRetry)
			if retries++; retries > maxFastReadRetries {
				return false
			}
			continue
		}
		// Consistent snapshot. Promote without the lock: stamp the exact
		// access tick and queue the LRU splice.
		c.atime[i].Store(c.tick.Add(1))
		if !sh.touches.push(i) {
			// Ring full. Opportunistically drain it if the shard lock is
			// free (in a single-threaded execution it always is, keeping
			// the exact-LRU equivalence); under contention drop the
			// splice — the stamp above already landed.
			if sh.mu.TryLock() {
				c.drainTouchesLocked(sh)
				if sh.lru.contains(i) {
					sh.lru.touch(i)
				}
				sh.mu.Unlock()
			} else {
				c.rec.Inc(metrics.CacheTouchDrop)
			}
		}
		c.rec.Inc(metrics.CacheReadHit)
		c.rec.Inc(metrics.CacheReadHitFast)
		if retries > 0 && c.obs != nil {
			c.obs.readRetry.Record(int64(retries))
		}
		return true
	}
}
