package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"tinca/internal/flight"
)

// Recovery failure codes carried in the EvRecoverFail flight record's Arg
// (the Block field holds the offending value). A failed recovery returns
// its error from Open, so these plus RecoveryStats.Failed are the only
// forensic trail a dead restart leaves.
const (
	recFailHeadBehindTail = 1 // Head pointer behind Tail
	recFailRingSpan       = 2 // Head-Tail span beyond the ring capacity
	recFailDuplicateEntry = 3 // two valid entries name the same disk block
	recFailUnmappedBlock  = 4 // ring names a disk block with no entry
	recFailNoCheckpoint   = 5 // checkpointed image with no valid frame
	recFailBadCheckpoint  = 6 // frame payload or journal record corrupt
)

// recoverFail marks the stats, books the terminal flight event and
// returns err, so every structural bail-out in recover() leaves the same
// forensic trail (satellite: a failed recovery used to be
// indistinguishable from one that crashed mid-pass).
func (c *Cache) recoverFail(code int, detail uint64, err error) error {
	c.recStats.Failed = true
	c.flEmit(flight.EvRecoverFail, 0, 0, detail, uint64(code))
	return err
}

// recoveryWorkers is the shard-parallel recovery fan-out width. It equals
// shardCount so the rebuild phase can dedicate one worker per shard.
const recoveryWorkers = shardCount

// recoveryFanout runs fn(0..recoveryWorkers-1), concurrently unless
// Options.SerialRecovery. Both modes execute the EXACT same work items
// with the same stripe boundaries; concurrent NVM loads charge the shared
// simulated clock additively (stock profiles have no channel
// parallelism), so the final clock — and with it every later flight
// timestamp — is identical however the goroutines interleave. That is
// what makes the parallel recovered image bit-identical to the serial
// one, and the parity sweep holds the implementation to it. Workers must
// not emit flight records or stamp phases (ordering would race); panics
// are captured and re-raised by lowest worker index after all workers
// finish.
func (c *Cache) recoveryFanout(fn func(worker int)) {
	if c.opts.SerialRecovery {
		for w := 0; w < recoveryWorkers; w++ {
			fn(w)
		}
		return
	}
	var wg sync.WaitGroup
	panics := make([]any, recoveryWorkers)
	for w := 0; w < recoveryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if pv := recover(); pv != nil {
					panics[w] = pv
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
	for _, pv := range panics {
		if pv != nil {
			panic(pv)
		}
	}
}

// mirrorEntry decodes entry slot i from the DRAM mirror of the entry
// table that recovery works against (NVM is loaded once, in bulk).
func mirrorEntry(mirror []byte, i int32) entry {
	var b [16]byte
	copy(b[:], mirror[int(i)*EntrySize:])
	return decodeEntry(b)
}

// mirrorSet writes entry slot i's new value into the DRAM mirror; callers
// persist the matching NVM update themselves.
func mirrorSet(mirror []byte, i int32, e entry) {
	b := encodeEntry(e)
	copy(mirror[int(i)*EntrySize:], b[:])
}

// recover implements Tinca's crash recovery (Section 4.5). On entry the
// device holds whatever the crash left in the persistence domain; on
// return the cache is consistent:
//
//   - Head == Tail (no committing transaction in flight),
//   - no entry carries the log role,
//   - every acknowledged transaction is fully visible and every
//     unacknowledged one fully revoked.
//
// The paper's algorithm compares Head with Tail. If they differ, the ring
// slots between them name the blocks of the interrupted transaction. One
// case the paper's prose glosses over is a crash *during the role-switch
// phase*: some entries are already buffer blocks (their previous version
// is gone) while others are still log blocks. Revoking only the log blocks
// would tear the transaction. The resolution follows from the protocol's
// ordering: role switches begin only after every block is written and
// recorded, so if any entry in the ring range has already switched, the
// transaction's data is complete and recovery finishes the remaining
// switches (redo); if none has switched, recovery revokes them all (undo).
// Both directions restore all-or-nothing semantics.
//
// Group commit (group.go) needs no changes here: a coalesced seal keeps
// the same persist order, so recovery sees it as one larger interrupted
// transaction and replays it exactly as it would N sequential seals —
// either the whole batch redone or the whole batch revoked, which is
// correct because no transaction in the batch was acknowledged before the
// batch's single Tail flip.
//
// Restart-time shape (DESIGN.md §14): the entry table reaches DRAM either
// via a striped bulk load (checkpoint off — O(capacity) NVM reads) or via
// the newest checkpoint frame plus its delta journal (checkpoint on —
// O(resident + deltas) NVM reads); every later pass runs against that
// DRAM mirror, and the scan/rebuild work fans out across recoveryWorkers
// stripes. The repairs themselves (ring replay, redo/undo, stray
// revocation) stay serial: they are O(interrupted seal), not O(capacity).
func (c *Cache) recover() error {
	// Instrumentation (the §4.5 recovery breakdown): every phase boundary
	// stamps the simulated clock into RecoveryStats — reads never advance
	// it, so the breakdown is free and always on — records a histogram
	// when Observe is, and books a flight event when the recorder is on.
	clock := c.mem.Clock()
	rs := &c.recStats
	*rs = RecoveryStats{Ran: true}
	t0 := int64(clock.Now())
	var g int64
	if c.obs != nil {
		g = c.obs.gid()
		defer func() { c.obs.phase(c.obs.recovery, 0, spanRecover, t0, g) }()
	}
	c.flEmit(flight.EvRecoverBegin, 0, 0, 0, 0)

	if len(c.rings) > 0 {
		// Multi-ring layout: each ring's pointer pair recovers independently
		// (max over its own rotation slots); RingSpan sums the pending
		// windows. The global head/tail stay zero — nothing reads them.
		span := uint64(0)
		for r := range c.rings {
			rst := &c.rings[r]
			rst.head = c.loadPointer(c.lay.ringHeadOff(r))
			rst.tail = c.loadPointer(c.lay.ringTailOff(r))
			if rst.head < rst.tail {
				return c.recoverFail(recFailHeadBehindTail, rst.tail,
					fmt.Errorf("core: recovery found ring %d Head %d behind Tail %d", r, rst.head, rst.tail))
			}
			if rst.head-rst.tail > uint64(c.lay.RingSlots) {
				return c.recoverFail(recFailRingSpan, rst.head-rst.tail,
					fmt.Errorf("core: recovery found ring %d span %d beyond capacity %d", r, rst.head-rst.tail, c.lay.RingSlots))
			}
			span += rst.head - rst.tail
		}
		rs.RingSpan = int64(span)
	} else {
		c.head = c.loadPointer(c.lay.HeadOff)
		c.tail = c.loadPointer(c.lay.TailOff)
		if c.head < c.tail {
			return c.recoverFail(recFailHeadBehindTail, c.tail,
				fmt.Errorf("core: recovery found Head %d behind Tail %d", c.head, c.tail))
		}
		if c.head-c.tail > uint64(c.lay.RingSlots) {
			return c.recoverFail(recFailRingSpan, c.head-c.tail,
				fmt.Errorf("core: recovery found ring span %d beyond capacity %d", c.head-c.tail, c.lay.RingSlots))
		}
		rs.RingSpan = int64(c.head - c.tail)
	}

	// Bring the entry table into DRAM: bulk-striped from NVM, or from the
	// newest checkpoint frame plus the delta journal.
	mirror := make([]byte, c.lay.Capacity*EntrySize)
	if c.ckpt != nil {
		if err := c.loadMirrorCheckpoint(mirror, rs, int64(clock.Now())); err != nil {
			return err
		}
	} else {
		c.recoveryFanout(func(w int) {
			lo := c.lay.Capacity * w / recoveryWorkers
			hi := c.lay.Capacity * (w + 1) / recoveryWorkers
			if lo < hi {
				c.mem.Load(c.lay.EntryOff+lo*EntrySize, mirror[lo*EntrySize:hi*EntrySize])
			}
		})
	}

	// Index the mirrored entry table: one worker per shard builds that
	// shard's byDisk map (each worker filters the full mirror, so maps
	// never share writers). Duplicate detection reports the smallest
	// shard's error for determinism.
	var byDisk [shardCount]map[uint64]int32
	var dupErr [shardCount]error
	c.recoveryFanout(func(w int) {
		m := make(map[uint64]int32)
		for i := 0; i < c.lay.Capacity; i++ {
			e := mirrorEntry(mirror, int32(i))
			if !e.valid || shardIdx(e.disk) != w {
				continue
			}
			if prev, dup := m[e.disk]; dup {
				if dupErr[w] == nil {
					dupErr[w] = fmt.Errorf("core: recovery found duplicate entries %d and %d for disk block %d", prev, i, e.disk)
				}
				continue
			}
			m[e.disk] = int32(i)
		}
		byDisk[w] = m
	})
	for w := 0; w < shardCount; w++ {
		if dupErr[w] != nil {
			return c.recoverFail(recFailDuplicateEntry, 0, dupErr[w])
		}
		rs.EntriesScanned += int64(len(byDisk[w]))
	}
	tScan := int64(clock.Now())
	rs.ScanNS = tScan - t0
	if c.obs != nil {
		c.obs.phase(c.obs.recScan, 0, spanRecoverScan, t0, g)
	}
	c.flEmit(flight.EvRecoverScan, 0, 0, 0, uint64(rs.EntriesScanned))

	if len(c.rings) > 0 {
		if err := c.recoverMultiRing(mirror, &byDisk, rs); err != nil {
			return err
		}
	} else if c.head != c.tail {
		// Collect the interrupted transaction's entries.
		slots := make([]int32, 0, c.head-c.tail)
		redo := false
		for p := c.tail; p < c.head; p++ {
			no := c.mem.Load8(c.lay.ringSlotOff(p))
			i, ok := byDisk[shardIdx(no)][no]
			if !ok {
				// The entry is persisted and flushed before the ring slot,
				// so a recorded block always has an entry.
				return c.recoverFail(recFailUnmappedBlock, no,
					fmt.Errorf("core: ring names disk block %d with no cache entry", no))
			}
			if mirrorEntry(mirror, i).role == RoleBuffer {
				redo = true
			}
			slots = append(slots, i)
		}
		if redo {
			rs.Redo = true
			for _, i := range slots {
				if e := mirrorEntry(mirror, i); e.role == RoleLog {
					c.recoverSwitch(mirror, i, e)
					rs.EntriesRedone++
				}
			}
			c.setTail(c.head)
		} else {
			// Undo. Persist Tail over the range *before* revoking: Tail
			// only moves forward, so the wear-leveled pointer slots make
			// it durable, and if recovery itself crashes mid-revocation
			// the next pass sees Head == Tail and the stray-log sweep
			// below finishes the undo. Revoking first would be misread
			// by that re-run: a half-revoked range contains buffer-role
			// entries, indistinguishable from a half-switched commit,
			// and the remaining log entries would be wrongly redone —
			// resurrecting half of a transaction that was being revoked.
			c.setTail(c.head)
			for _, i := range slots {
				if e := mirrorEntry(mirror, i); e.role == RoleLog {
					c.recoverRevoke(mirror, i, e, &byDisk)
					rs.EntriesUndone++
				}
			}
		}
	}
	tBranch := int64(clock.Now())
	// Satellite fix: the redo span and flight record are emitted only when
	// the redo branch actually ran — a zero-length span stamped here for
	// every undo-or-clean restart polluted Chrome traces and the blackbox
	// timeline.
	if rs.Redo {
		rs.RedoNS = tBranch - tScan
		if c.obs != nil {
			c.obs.phase(c.obs.recRedo, 0, spanRecoverRedo, tScan, g)
		}
		c.flEmit(flight.EvRecoverRedo, 0, 0, 0, uint64(rs.EntriesRedone))
	}

	// Sweep for stray log entries: a crash after persisting block entries
	// but before their ring records leaves log-role entries that no ring
	// slot names — one for the serial path, up to a whole batch for a
	// coalesced seal (which defers the single Head persist until every
	// entry of the batch is durable). Each is revoked independently; none
	// was part of an acknowledged transaction. (In the redo case the
	// write phase had finished, so no stray can exist and the sweep is a
	// no-op.) The sweep walks the DRAM mirror, so it costs no NVM reads.
	for i := 0; i < c.lay.Capacity; i++ {
		e := mirrorEntry(mirror, int32(i))
		if e.valid && e.role == RoleLog {
			c.recoverRevoke(mirror, int32(i), e, &byDisk)
			rs.StrayRevoked++
		}
	}
	tUndo := int64(clock.Now())
	rs.UndoNS = tUndo - tBranch
	if !rs.Redo {
		rs.UndoNS += tBranch - tScan
	}
	if c.obs != nil {
		c.obs.phase(c.obs.recUndo, 0, spanRecoverUndo, tUndo-rs.UndoNS, g)
	}
	c.flEmit(flight.EvRecoverUndo, 0, 0, 0, uint64(rs.EntriesUndone+rs.StrayRevoked))

	rs.Resident = int64(c.rebuildVolatileFromMirror(mirror))
	tReb := int64(clock.Now())
	rs.RebuildNS = tReb - tUndo
	rs.TotalNS = tReb - t0
	if c.obs != nil {
		c.obs.phase(c.obs.recRebuild, 0, spanRecoverRebuild, tUndo, g)
	}
	c.flEmit(flight.EvRecoverRebuild, 0, 0, 0, uint64(rs.Resident))
	c.flEmit(flight.EvRecoverDone, 0, 0, 0, 0)
	return nil
}

// recoverMultiRing replays the per-ring pending windows of a multi-ring
// layout (CommitRings > 1) — the k-way generation merge of DESIGN.md §15.
//
// Structure of the pending state: a ring's Head advances only in seal
// phase C and its Tail only in phase E, both under the ring's seal lock,
// so the pending window [Tail, Head) of any single ring covers AT MOST
// ONE interrupted seal. A cross-ring seal stamps the same generation in
// every participating ring, so pending records group by generation into
// the interrupted seals, and because a block's ring is a pure function of
// its number, two different pending generations always name disjoint
// blocks — their redos and undos commute. Processing generations in
// ascending order is therefore not needed for correctness, but it IS the
// global commit order (generations are drawn under all participating
// ring locks), which makes the replay deterministic and equal to the
// serial history the oracle checks.
//
// Per generation the single-ring redo/undo rule applies unchanged: any
// named entry already in the buffer role means every block's data and
// record are durable (role switches start only after all rings' records
// and Head persists are fenced), so recovery completes the remaining
// switches and Tail flips — this is also how a seal torn BETWEEN two
// rings' Tail flips resolves: roll forward, never revoke, because the
// switch phase freed the previous versions and the commit event is only
// emitted after the last flip, so the transaction was never acknowledged
// and either outcome is legal. If no entry switched, the whole
// transaction is revoked: the participating Tails are persisted over the
// pending records FIRST (same re-crash argument as the single-ring undo
// — a half-revoked range must not be misread as a half-switched commit
// by a recovery re-run), then each entry rolls back. Records that never
// made it into any pending window (a crash before that ring's Head
// persist) leave stray log-role entries for the sweep that follows.
func (c *Cache) recoverMultiRing(mirror []byte, byDisk *[shardCount]map[uint64]int32, rs *RecoveryStats) error {
	type pendingSeal struct {
		gen   uint64
		slots []int32
		rings []int // participating rings, ascending by construction
	}
	var seals []*pendingSeal
	byGen := make(map[uint64]*pendingSeal)
	maxGen := uint64(0)
	for r := range c.rings {
		rst := &c.rings[r]
		for p := rst.tail; p < rst.head; p++ {
			v := c.mem.Load16(c.lay.mrSlotOff(r, p))
			no := binary.LittleEndian.Uint64(v[0:8])
			gen := binary.LittleEndian.Uint64(v[8:16])
			i, ok := byDisk[shardIdx(no)][no]
			if !ok {
				// Entries persist (phase B, fenced) before ring records
				// (phase C), so a recorded block always has an entry.
				return c.recoverFail(recFailUnmappedBlock, no,
					fmt.Errorf("core: ring %d names disk block %d with no cache entry", r, no))
			}
			ps := byGen[gen]
			if ps == nil {
				ps = &pendingSeal{gen: gen}
				byGen[gen] = ps
				seals = append(seals, ps)
			}
			ps.slots = append(ps.slots, i)
			if n := len(ps.rings); n == 0 || ps.rings[n-1] != r {
				ps.rings = append(ps.rings, r)
			}
			if gen > maxGen {
				maxGen = gen
			}
		}
	}
	sort.Slice(seals, func(a, b int) bool { return seals[a].gen < seals[b].gen })

	for _, ps := range seals {
		redo := false
		for _, i := range ps.slots {
			if mirrorEntry(mirror, i).role == RoleBuffer {
				redo = true
				break
			}
		}
		if redo {
			rs.Redo = true
			for _, i := range ps.slots {
				if e := mirrorEntry(mirror, i); e.role == RoleLog {
					c.recoverSwitch(mirror, i, e)
					rs.EntriesRedone++
				}
			}
			for _, r := range ps.rings {
				rst := &c.rings[r]
				rst.tail = rst.head
				c.mem.Persist8(c.lay.ringTailSlotOff(r, rst.tail), rst.tail)
			}
		} else {
			// Undo: every participating Tail first, then the revocations.
			for _, r := range ps.rings {
				rst := &c.rings[r]
				rst.tail = rst.head
				c.mem.Persist8(c.lay.ringTailSlotOff(r, rst.tail), rst.tail)
			}
			for _, i := range ps.slots {
				if e := mirrorEntry(mirror, i); e.role == RoleLog {
					c.recoverRevoke(mirror, i, e, byDisk)
					rs.EntriesUndone++
				}
			}
		}
	}

	// Resume the generation counter past everything the crash left behind.
	// A checkpointed restart restored the counter from the frame header
	// (every generation sealed before the checkpoint is ≤ that value);
	// pending generations postdate it and are folded in here. Without a
	// checkpoint the counter restarts above the pending window only — the
	// same "reset unless checkpointed" semantics the single-ring seal
	// sequence has always had, and safe because recovery and the oracles
	// only ever compare generations within one crash epoch.
	if maxGen > c.gen.Load() {
		c.gen.Store(maxGen)
	}
	return nil
}

// loadMirrorCheckpoint reconstructs the entry table image from the newest
// valid checkpoint frame plus the delta journal (DESIGN.md §14): frame
// records give every entry as of the checkpoint, journaled slots are
// re-read from the live table. NVM reads are O(resident + deltas) instead
// of O(capacity). It also restores the checkpoint writer's DRAM state —
// before any repair runs, so the journal hook no-ops on repaired slots
// (every repairable, i.e. log-role, entry postdates the frame and is
// already journaled).
//
// Correctness under re-crash: the function only reads NVM. Repairs and
// later checkpoints journal/write through the ordinary hooks, so a crash
// at any point during or after recovery leaves a journal+frame pair this
// same function replays correctly.
func (c *Cache) loadMirrorCheckpoint(mirror []byte, rs *RecoveryStats, now int64) error {
	lay := c.lay
	k := c.ckpt

	// Pick the newest valid frame: magic, header checksum, max epoch.
	best := -1
	var bestH [ckptFrameHdr]byte
	var bestEpoch uint64
	for f := 0; f < 2; f++ {
		var h [ckptFrameHdr]byte
		c.mem.Load(lay.ckptFrameOff(f), h[:])
		if binary.LittleEndian.Uint64(h[0:]) != ckptMagic {
			continue
		}
		if binary.LittleEndian.Uint64(h[56:]) != ckptSum(h[:56]) {
			continue
		}
		if ep := binary.LittleEndian.Uint64(h[8:]); best < 0 || ep > bestEpoch {
			best, bestH, bestEpoch = f, h, ep
		}
	}
	if best < 0 {
		// Unreachable within the crash model — format persists an epoch-1
		// frame and the writer never touches the active frame — but a
		// corrupted device must fail loudly, not recover garbage.
		return c.recoverFail(recFailNoCheckpoint, 0,
			fmt.Errorf("core: checkpointed image has no valid checkpoint frame"))
	}
	count := int(binary.LittleEndian.Uint64(bestH[40:]))
	if count > lay.Capacity {
		return c.recoverFail(recFailBadCheckpoint, uint64(count),
			fmt.Errorf("core: checkpoint frame %d claims %d entries beyond capacity %d", best, count, lay.Capacity))
	}

	// Striped bulk load of the frame payload, checksum-verified in DRAM.
	// On the multi-ring layout the payload opens with the per-ring
	// {head, tail} vector (diagnostic — the pointers themselves recover
	// from their rotation slots); it is loaded serially, then the records
	// stripe exactly as on the single-ring layout.
	vecBytes := 0
	if len(c.rings) > 0 {
		vecBytes = lay.ckptVecBytes()
	}
	payload := make([]byte, vecBytes+count*ckptRecSize)
	base := lay.ckptFrameOff(best) + ckptFrameHdr
	if vecBytes > 0 {
		c.mem.Load(base, payload[:vecBytes])
	}
	c.recoveryFanout(func(w int) {
		lo := count * w / recoveryWorkers
		hi := count * (w + 1) / recoveryWorkers
		if lo < hi {
			c.mem.Load(base+vecBytes+lo*ckptRecSize, payload[vecBytes+lo*ckptRecSize:vecBytes+hi*ckptRecSize])
		}
	})
	if ckptSum(payload) != binary.LittleEndian.Uint64(bestH[48:]) {
		return c.recoverFail(recFailBadCheckpoint, bestEpoch,
			fmt.Errorf("core: checkpoint frame %d payload checksum mismatch", best))
	}
	for r := 0; r < count; r++ {
		rec := payload[vecBytes+r*ckptRecSize : vecBytes+(r+1)*ckptRecSize]
		slot := int(binary.LittleEndian.Uint32(rec))
		if slot >= lay.Capacity {
			return c.recoverFail(recFailBadCheckpoint, uint64(slot),
				fmt.Errorf("core: checkpoint record names slot %d beyond capacity %d", slot, lay.Capacity))
		}
		copy(mirror[slot*EntrySize:(slot+1)*EntrySize], rec[8:8+EntrySize])
	}

	// Scan the delta journal: records tagged with the active epoch name
	// the slots mutated since the frame. The scan stops at the first
	// epoch mismatch (a stale or zeroed slot). A record whose entry write
	// never landed is spurious but harmless — the re-read below fetches
	// whatever the table currently holds.
	deltas := make([]int32, 0, 64)
	for j := 0; j < lay.CkptJournalSlots; j++ {
		rec := c.mem.Load8(lay.ckptJournalOff(j))
		if uint32(rec>>32) != uint32(bestEpoch) {
			break
		}
		slot := uint32(rec)
		if int(slot) >= lay.Capacity {
			return c.recoverFail(recFailBadCheckpoint, uint64(slot),
				fmt.Errorf("core: checkpoint journal names slot %d beyond capacity %d", slot, lay.Capacity))
		}
		deltas = append(deltas, int32(slot))
	}

	// Re-read the journaled slots' live entries over the frame image, in
	// parallel chunks.
	c.recoveryFanout(func(w int) {
		lo := len(deltas) * w / recoveryWorkers
		hi := len(deltas) * (w + 1) / recoveryWorkers
		for x := lo; x < hi; x++ {
			i := int(deltas[x])
			v := c.mem.Load16(lay.entryOff(i))
			copy(mirror[i*EntrySize:], v[:])
		}
	})

	// Restore the writer's DRAM state so the next epoch continues where
	// the crash left off: same active epoch, same journal append
	// position, inactive frame opposite the one just loaded.
	k.epoch = bestEpoch
	k.frame = best ^ 1
	k.lastNS = now
	k.marks = k.marks[:0]
	for _, s := range deltas {
		if !k.journaled[s] {
			k.journaled[s] = true
			k.marks = append(k.marks, s)
		}
	}
	// Seal numbering resumes from the checkpoint so SealHook sequences
	// stay monotonic across a checkpointed restart. On the multi-ring
	// layout the header's seq field carries the generation counter
	// instead (writeCheckpointLocked stores whichever the layout uses).
	if len(c.rings) > 0 {
		c.gen.Store(binary.LittleEndian.Uint64(bestH[32:]))
	} else {
		c.sealSeq = binary.LittleEndian.Uint64(bestH[32:])
	}

	rs.FromCheckpoint = true
	rs.CkptEpoch = bestEpoch
	rs.DeltaSlots = int64(len(deltas))
	return nil
}

// recoverSwitch completes a role switch during redo recovery. DRAM
// structures are rebuilt afterwards, so only the persistent entry and the
// recovery mirror are touched here.
func (c *Cache) recoverSwitch(mirror []byte, i int32, e entry) {
	e.role = RoleBuffer
	e.prev = Fresh
	c.writeEntry(i, e)
	mirrorSet(mirror, i, e)
}

// recoverRevoke undoes one block of an uncommitted transaction: roll the
// entry back to the previous NVM block, or delete it entirely when the
// block was fresh (Section 4.5). The modified bit is set conservatively:
// the previous version may have been dirtier than disk, and an extra
// write-back is always safe.
func (c *Cache) recoverRevoke(mirror []byte, i int32, e entry, byDisk *[shardCount]map[uint64]int32) {
	if e.prev == Fresh {
		c.clearEntry(i)
		mirrorSet(mirror, i, entry{})
		delete(byDisk[shardIdx(e.disk)], e.disk)
		return
	}
	ne := entry{valid: true, role: RoleBuffer, modified: true, disk: e.disk, prev: Fresh, cur: e.prev}
	c.writeEntry(i, ne)
	mirrorSet(mirror, i, ne)
}

// revokeRange is the live (mid-commit) revocation used when an allocation
// fails partway through a serial commit: exactly recovery's undo, but
// keeping the DRAM structures in sync. The caller must have persisted
// Tail past the range first (see the abort path in commit): Head is never
// rolled back, because the wear-leveled pointer slots recover via max, so
// a smaller Head could not be made durable — the consumed ring slots are
// simply wasted and reused on the ring's next lap. Caller holds c.mu.
func (c *Cache) revokeRange(from, to uint64) {
	for p := from; p < to; p++ {
		no := c.mem.Load8(c.lay.ringSlotOff(p))
		sh := c.shardOf(no)
		sh.mu.Lock()
		i, ok := sh.slot(no)
		if !ok {
			sh.mu.Unlock()
			panic(fmt.Sprintf("core: revoke of unmapped disk block %d", no))
		}
		e := c.readEntry(i)
		if e.role != RoleLog {
			sh.mu.Unlock()
			panic("core: revoke of non-log entry")
		}
		if e.prev == Fresh {
			c.beginSlotMutate(i)
			c.clearEntry(i)
			sh.lru.remove(i)
			sh.mapDelete(no)
			c.dirtied[i] = false
			c.alloc.pushSlot(i)
			c.freeDataBlock(e.cur)
			c.endSlotMutate(i)
			sh.mu.Unlock()
			continue
		}
		c.beginSlotMutate(i)
		c.writeEntry(i, entry{valid: true, role: RoleBuffer, modified: true, disk: no, prev: Fresh, cur: e.prev})
		c.endSlotMutate(i)
		c.dirtied[i] = true
		c.freeDataBlock(e.cur)
		sh.mu.Unlock()
	}
}

// rebuildVolatileFromMirror reconstructs the DRAM hash shards, LRU lists,
// free block monitor and free slot list from the recovered entry-table
// mirror, returning how many entries are resident. The per-shard work
// (index inserts, LRU pushes, access-tick stamps) fans out one worker per
// shard; access ticks are precomputed so the result is bit-identical to
// the historical single-threaded ascending-slot rebuild. LRU order after
// a crash is arbitrary, which only affects future replacement choices,
// never correctness. The rebuild touches no NVM, so it cannot perturb the
// recovered image.
func (c *Cache) rebuildVolatileFromMirror(mirror []byte) int {
	for s := range c.shards {
		sh := &c.shards[s]
		// The reset is single-threaded and race-free (the bucket index
		// swaps in a fresh table; the sync.Map baseline is cleared key by
		// key — it embeds a mutex and can't be reassigned).
		sh.mapReset()
		sh.lru = newLRU(c.lay.Capacity)
	}
	c.alloc.reset()

	// Precompute, in one ascending pass, each valid slot's access tick
	// (the k-th valid slot gets tick k — exactly the serial insert order)
	// and the set of used data blocks.
	used := make([]bool, c.lay.Capacity)
	rank := make([]int64, c.lay.Capacity)
	resident := 0
	for i := 0; i < c.lay.Capacity; i++ {
		e := mirrorEntry(mirror, int32(i))
		if !e.valid {
			continue
		}
		resident++
		rank[i] = int64(resident)
		used[e.cur] = true
	}

	// One worker per shard: every slot lands in exactly one worker's
	// shard (by disk-block affinity), so index, LRU, atime and dirtied
	// writes never overlap.
	c.recoveryFanout(func(w int) {
		sh := &c.shards[w]
		for i := 0; i < c.lay.Capacity; i++ {
			e := mirrorEntry(mirror, int32(i))
			if !e.valid || shardIdx(e.disk) != w {
				continue
			}
			sh.mapStore(e.disk, int32(i))
			sh.lru.pushFront(int32(i))
			c.atime[i].Store(rank[i])
			// Dirty entries may be written back later; their eviction must
			// then invalidate optimistic fills in flight (see shard.evictGen).
			c.dirtied[i] = e.modified
		}
	})
	c.tick.Store(int64(resident))

	for i := 0; i < c.lay.Capacity; i++ {
		if !mirrorEntry(mirror, int32(i)).valid {
			c.dirtied[i] = false
			c.alloc.pushSlot(int32(i))
		}
	}
	for b := c.lay.Capacity - 1; b >= 0; b-- {
		if !used[b] {
			c.alloc.pushBlock(uint32(b))
		}
	}
	return resident
}
