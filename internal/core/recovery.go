package core

import (
	"fmt"

	"tinca/internal/flight"
)

// recover implements Tinca's crash recovery (Section 4.5). On entry the
// device holds whatever the crash left in the persistence domain; on
// return the cache is consistent:
//
//   - Head == Tail (no committing transaction in flight),
//   - no entry carries the log role,
//   - every acknowledged transaction is fully visible and every
//     unacknowledged one fully revoked.
//
// The paper's algorithm compares Head with Tail. If they differ, the ring
// slots between them name the blocks of the interrupted transaction. One
// case the paper's prose glosses over is a crash *during the role-switch
// phase*: some entries are already buffer blocks (their previous version
// is gone) while others are still log blocks. Revoking only the log blocks
// would tear the transaction. The resolution follows from the protocol's
// ordering: role switches begin only after every block is written and
// recorded, so if any entry in the ring range has already switched, the
// transaction's data is complete and recovery finishes the remaining
// switches (redo); if none has switched, recovery revokes them all (undo).
// Both directions restore all-or-nothing semantics.
//
// Group commit (group.go) needs no changes here: a coalesced seal keeps
// the same persist order, so recovery sees it as one larger interrupted
// transaction and replays it exactly as it would N sequential seals —
// either the whole batch redone or the whole batch revoked, which is
// correct because no transaction in the batch was acknowledged before the
// batch's single Tail flip.
func (c *Cache) recover() error {
	// Instrumentation (the §4.5 recovery breakdown): every phase boundary
	// stamps the simulated clock into RecoveryStats — reads never advance
	// it, so the breakdown is free and always on — records a histogram
	// when Observe is, and books a flight event when the recorder is on.
	clock := c.mem.Clock()
	rs := &c.recStats
	*rs = RecoveryStats{Ran: true}
	t0 := int64(clock.Now())
	var g int64
	if c.obs != nil {
		g = c.obs.gid()
		defer func() { c.obs.phase(c.obs.recovery, 0, spanRecover, t0, g) }()
	}
	c.flEmit(flight.EvRecoverBegin, 0, 0, 0, 0)

	c.head = c.loadPointer(c.lay.HeadOff)
	c.tail = c.loadPointer(c.lay.TailOff)
	if c.head < c.tail {
		return fmt.Errorf("core: recovery found Head %d behind Tail %d", c.head, c.tail)
	}
	if c.head-c.tail > uint64(c.lay.RingSlots) {
		return fmt.Errorf("core: recovery found ring span %d beyond capacity %d", c.head-c.tail, c.lay.RingSlots)
	}
	rs.RingSpan = int64(c.head - c.tail)

	// Index the persistent entry table.
	byDisk := make(map[uint64]int32)
	for i := 0; i < c.lay.Capacity; i++ {
		e := c.readEntry(int32(i))
		if !e.valid {
			continue
		}
		if prev, dup := byDisk[e.disk]; dup {
			return fmt.Errorf("core: recovery found duplicate entries %d and %d for disk block %d", prev, i, e.disk)
		}
		byDisk[e.disk] = int32(i)
	}
	rs.EntriesScanned = int64(len(byDisk))
	tScan := int64(clock.Now())
	rs.ScanNS = tScan - t0
	if c.obs != nil {
		c.obs.phase(c.obs.recScan, 0, spanRecoverScan, t0, g)
	}
	c.flEmit(flight.EvRecoverScan, 0, 0, 0, uint64(rs.EntriesScanned))

	if c.head != c.tail {
		// Collect the interrupted transaction's entries.
		slots := make([]int32, 0, c.head-c.tail)
		redo := false
		for p := c.tail; p < c.head; p++ {
			no := c.mem.Load8(c.lay.ringSlotOff(p))
			i, ok := byDisk[no]
			if !ok {
				// The entry is persisted and flushed before the ring slot,
				// so a recorded block always has an entry.
				return fmt.Errorf("core: ring names disk block %d with no cache entry", no)
			}
			if c.readEntry(i).role == RoleBuffer {
				redo = true
			}
			slots = append(slots, i)
		}
		if redo {
			rs.Redo = true
			for _, i := range slots {
				if e := c.readEntry(i); e.role == RoleLog {
					c.recoverSwitch(i, e)
					rs.EntriesRedone++
				}
			}
			c.setTail(c.head)
		} else {
			// Undo. Persist Tail over the range *before* revoking: Tail
			// only moves forward, so the wear-leveled pointer slots make
			// it durable, and if recovery itself crashes mid-revocation
			// the next pass sees Head == Tail and the stray-log sweep
			// below finishes the undo. Revoking first would be misread
			// by that re-run: a half-revoked range contains buffer-role
			// entries, indistinguishable from a half-switched commit,
			// and the remaining log entries would be wrongly redone —
			// resurrecting half of a transaction that was being revoked.
			c.setTail(c.head)
			for _, i := range slots {
				if e := c.readEntry(i); e.role == RoleLog {
					c.recoverRevoke(i, e, byDisk)
					rs.EntriesUndone++
				}
			}
		}
	}
	tBranch := int64(clock.Now())
	if rs.Redo {
		rs.RedoNS = tBranch - tScan
	}
	if c.obs != nil {
		c.obs.phase(c.obs.recRedo, 0, spanRecoverRedo, tBranch-rs.RedoNS, g)
	}
	c.flEmit(flight.EvRecoverRedo, 0, 0, 0, uint64(rs.EntriesRedone))

	// Sweep for stray log entries: a crash after persisting block entries
	// but before their ring records leaves log-role entries that no ring
	// slot names — one for the serial path, up to a whole batch for a
	// coalesced seal (which defers the single Head persist until every
	// entry of the batch is durable). Each is revoked independently; none
	// was part of an acknowledged transaction. (In the redo case the
	// write phase had finished, so no stray can exist and the sweep is a
	// no-op.)
	for i := 0; i < c.lay.Capacity; i++ {
		e := c.readEntry(int32(i))
		if e.valid && e.role == RoleLog {
			c.recoverRevoke(int32(i), e, byDisk)
			rs.StrayRevoked++
		}
	}
	tUndo := int64(clock.Now())
	rs.UndoNS = tUndo - tBranch
	if !rs.Redo {
		rs.UndoNS += tBranch - tScan
	}
	if c.obs != nil {
		c.obs.phase(c.obs.recUndo, 0, spanRecoverUndo, tUndo-rs.UndoNS, g)
	}
	c.flEmit(flight.EvRecoverUndo, 0, 0, 0, uint64(rs.EntriesUndone+rs.StrayRevoked))

	rs.Resident = int64(c.rebuildVolatile())
	tReb := int64(clock.Now())
	rs.RebuildNS = tReb - tUndo
	rs.TotalNS = tReb - t0
	if c.obs != nil {
		c.obs.phase(c.obs.recRebuild, 0, spanRecoverRebuild, tUndo, g)
	}
	c.flEmit(flight.EvRecoverRebuild, 0, 0, 0, uint64(rs.Resident))
	c.flEmit(flight.EvRecoverDone, 0, 0, 0, 0)
	return nil
}

// recoverSwitch completes a role switch during redo recovery. DRAM
// structures are rebuilt afterwards, so only the persistent entry is
// touched here.
func (c *Cache) recoverSwitch(i int32, e entry) {
	e.role = RoleBuffer
	e.prev = Fresh
	c.writeEntry(i, e)
}

// recoverRevoke undoes one block of an uncommitted transaction: roll the
// entry back to the previous NVM block, or delete it entirely when the
// block was fresh (Section 4.5). The modified bit is set conservatively:
// the previous version may have been dirtier than disk, and an extra
// write-back is always safe.
func (c *Cache) recoverRevoke(i int32, e entry, byDisk map[uint64]int32) {
	if e.prev == Fresh {
		c.clearEntry(i)
		delete(byDisk, e.disk)
		return
	}
	c.writeEntry(i, entry{valid: true, role: RoleBuffer, modified: true, disk: e.disk, prev: Fresh, cur: e.prev})
}

// revokeRange is the live (mid-commit) revocation used when an allocation
// fails partway through a serial commit: exactly recovery's undo, but
// keeping the DRAM structures in sync. The caller must have persisted
// Tail past the range first (see the abort path in commit): Head is never
// rolled back, because the wear-leveled pointer slots recover via max, so
// a smaller Head could not be made durable — the consumed ring slots are
// simply wasted and reused on the ring's next lap. Caller holds c.mu.
func (c *Cache) revokeRange(from, to uint64) {
	for p := from; p < to; p++ {
		no := c.mem.Load8(c.lay.ringSlotOff(p))
		sh := c.shardOf(no)
		sh.mu.Lock()
		i, ok := sh.slot(no)
		if !ok {
			sh.mu.Unlock()
			panic(fmt.Sprintf("core: revoke of unmapped disk block %d", no))
		}
		e := c.readEntry(i)
		if e.role != RoleLog {
			sh.mu.Unlock()
			panic("core: revoke of non-log entry")
		}
		if e.prev == Fresh {
			c.beginSlotMutate(i)
			c.clearEntry(i)
			sh.lru.remove(i)
			sh.mapDelete(no)
			c.dirtied[i] = false
			c.alloc.pushSlot(i)
			c.freeDataBlock(e.cur)
			c.endSlotMutate(i)
			sh.mu.Unlock()
			continue
		}
		c.beginSlotMutate(i)
		c.writeEntry(i, entry{valid: true, role: RoleBuffer, modified: true, disk: no, prev: Fresh, cur: e.prev})
		c.endSlotMutate(i)
		c.dirtied[i] = true
		c.freeDataBlock(e.cur)
		sh.mu.Unlock()
	}
}

// rebuildVolatile reconstructs the DRAM hash shards, LRU lists, free block
// monitor and free slot list from the (now consistent) persistent entry
// table, returning how many entries are resident. LRU order after a crash
// is arbitrary, which only affects future replacement choices, never
// correctness.
func (c *Cache) rebuildVolatile() int {
	for s := range c.shards {
		sh := &c.shards[s]
		// Recovery is single-threaded, so the reset is race-free (the
		// bucket index swaps in a fresh table; the sync.Map baseline is
		// cleared key by key — it embeds a mutex and can't be reassigned).
		sh.mapReset()
		sh.lru = newLRU(c.lay.Capacity)
	}
	c.alloc.reset()
	used := make([]bool, c.lay.Capacity)
	resident := 0
	for i := 0; i < c.lay.Capacity; i++ {
		e := c.readEntry(int32(i))
		if !e.valid {
			c.dirtied[i] = false
			c.alloc.pushSlot(int32(i))
			continue
		}
		sh := c.shardOf(e.disk)
		sh.mapStore(e.disk, int32(i))
		c.pushFrontLocked(sh, int32(i))
		used[e.cur] = true
		resident++
		// Dirty entries may be written back later; their eviction must
		// then invalidate optimistic fills in flight (see shard.evictGen).
		c.dirtied[i] = e.modified
	}
	for b := c.lay.Capacity - 1; b >= 0; b-- {
		if !used[b] {
			c.alloc.pushBlock(uint32(b))
		}
	}
	return resident
}
