package core

import (
	"time"

	"tinca/internal/bufpool"
	"tinca/internal/flight"
	"tinca/internal/metrics"
)

// This file implements the group-commit pipeline: concurrently arriving
// Txn.Commit calls coalesce into one ring-buffer seal.
//
// The paper's protocol (Section 4.4) pays, per transaction, one fence per
// block data write, one per entry persist, two per ring record (slot +
// Head), one per role-switch batch and one for the Tail flip. A coalesced
// seal runs the same five phases once for the whole batch:
//
//	A. data    — every block of every txn stored + flushed, ONE fence
//	B. entries — every entry 16B-stored + flushed (log role), ONE fence
//	C. ring    — every slot stored + flushed, ONE fence, ONE Head persist
//	D. switch  — every entry switched to buffer role, ONE fence
//	E. tail    — ONE Tail persist: the commit point for the whole batch
//
// so the fence/pointer cost is amortized over the batch, and duplicate
// blocks across the batch are absorbed into a single NVM write (the
// NVLog-style sync absorption that gives group commit its throughput).
//
// Ordering argument (why recovery replays a coalesced seal identically to
// N sequential seals): recovery classifies the crash solely by the ring
// range (Tail, Head) and the roles of the entries it names. The batch
// keeps exactly the paper's persist order — data before entry, entry
// before ring record, ring record before Head, Head before any role
// switch, every switch fenced before Tail. A crash therefore lands in one
// of the same three states recovery already distinguishes: stray log
// entries with no ring record (revoked by the sweep), a populated ring
// range with no switched entry (undo), or a partially switched range
// (redo). The batch is one transaction to recovery; its all-or-nothing
// outcome applies to every absorbed transaction at once, which is a legal
// serial schedule because none of them was acknowledged before Tail
// flipped. See DESIGN.md "Group commit" for the long-form argument.
//
// Concurrency shape: there is no dedicated committer goroutine. The first
// committer to find the pipeline idle becomes the leader and seals the
// batch on its own stack (leader/follower, as in classic group commit).
// This keeps the simulated-crash machinery honest: an injected crash
// panics out of a committing caller, exactly as the single-threaded
// harness expects, and the cache poisons itself so every follower and
// later caller observes the crash too.

// commitReq is one transaction waiting in the group-commit queue. err and
// pv are written by the leader before done is set (under gcMu), so the
// owning goroutine may read them once it observes done.
type commitReq struct {
	t    *Txn
	err  error
	pv   any // injected-crash panic to re-raise on the owner's goroutine
	done bool
}

// groupCommit enqueues t and waits until some leader (possibly this
// goroutine) seals it. Returns the transaction's outcome; re-raises a
// crash panic captured by the leader.
func (c *Cache) groupCommit(t *Txn) error {
	req := &commitReq{t: t}
	var tEnq int64
	if c.obs != nil {
		tEnq = c.obs.now()
	}
	c.gcMu.Lock()
	c.gcQueue = append(c.gcQueue, req)
	for !req.done {
		if c.gcBusy {
			c.gcCond.Wait()
			continue
		}
		// Become the leader for the next batch.
		c.gcBusy = true
		var tWait int64
		if c.obs != nil {
			tWait = c.obs.now()
		}
		if w := c.opts.GroupCommit.MaxWaitNS; w > 0 && len(c.gcQueue) < c.opts.groupBatch() {
			// Optional batch-formation window (real time; the simulated
			// clock never advances while sleeping).
			c.gcMu.Unlock()
			time.Sleep(time.Duration(w) * time.Nanosecond)
			c.gcMu.Lock()
		}
		batch := c.takeBatchLocked()
		c.gcMu.Unlock()

		// Observability: the leader stamps the batch-formation wait (sim
		// time other goroutines charged while this leader held the window
		// open), then times each seal phase inside runBatch.
		var sealID uint64
		var g int64
		if c.obs != nil {
			sealID = c.obs.seals.Add(1)
			g = c.obs.gid()
			c.obs.phase(c.obs.wait, sealID, spanWait, tWait, g)
		}

		pv := c.runBatch(batch, sealID, g)

		c.gcMu.Lock()
		for _, r := range batch {
			if pv != nil {
				r.pv = pv
			}
			r.done = true
		}
		c.gcBusy = false
		c.gcCond.Broadcast()
	}
	c.gcMu.Unlock()
	if req.pv != nil {
		panic(req.pv)
	}
	t.done = true
	if c.obs != nil {
		c.obs.phase(c.obs.total, 0, spanCommit, tEnq, c.obs.gid())
	}
	return req.err
}

// takeBatchLocked pops the next batch off the queue: FIFO, capped by
// GroupCommit.MaxBatch, and capped so the merged write set cannot exceed
// the ring (sum of per-txn block counts is a conservative bound; every
// queued txn individually fits, so at least one is always taken). Caller
// holds gcMu.
func (c *Cache) takeBatchLocked() []*commitReq {
	maxBatch := c.opts.groupBatch()
	blocks := 0
	n := 0
	for n < len(c.gcQueue) && n < maxBatch {
		blocks += len(c.gcQueue[n].t.order)
		if n > 0 && blocks > c.lay.RingSlots {
			break
		}
		n++
	}
	batch := c.gcQueue[:n:n]
	c.gcQueue = c.gcQueue[n:]
	return batch
}

// planBlock is one distinct disk block of the merged batch write set.
type planBlock struct {
	no        uint64
	data      []byte // winning (last-writer) contents
	slot      int32  // entry slot (existing for hits, fresh for misses)
	nb        uint32 // newly allocated NVM data block
	prev      uint32 // previous NVM block for hits, Fresh for misses
	hit       bool
	allocated bool // phase 0 reached this block (nb/slot are live)
}

// runBatch seals one batch. It returns a recovered injected-crash panic
// value (nil normally); per-request errors are stored in the requests.
// Runs on the leader's goroutine and takes c.mu for the duration — reads
// keep flowing through the shard locks; only other structural work
// (misses, evictions, other seals) waits. sealID and g identify the seal
// and leader goroutine for observability (both zero when Observe is off).
func (c *Cache) runBatch(batch []*commitReq, sealID uint64, g int64) (pv any) {
	defer func() {
		if r := recover(); r != nil {
			// A simulated power failure fired mid-seal. Poison the cache
			// so every subsequent operation observes the crash, and hand
			// the panic value to every transaction in the batch.
			c.poison(r)
			pv = r
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()

	// Phase stamps: ts advances phase by phase; tSeal spans the whole
	// batch. One nil check per phase when observability is off.
	var ts, tSeal int64
	if c.obs != nil {
		ts = c.obs.now()
		tSeal = ts
	}

	if c.closed.Load() {
		for _, r := range batch {
			r.err = ErrClosed
		}
		return nil
	}
	c.checkPoison()

	// Phase 0 — plan (volatile only). Merge the batch write set in
	// arrival order (last writer wins, a legal serial schedule because
	// the whole batch commits atomically), allocate every NVM block and
	// entry slot, and pin the hit targets against eviction (replacement
	// rule 2, Section 4.6). Nothing has been persisted yet, so an
	// allocation failure here unwinds in DRAM and falls back to the
	// serial path, which commits (or fails) each transaction on its own.
	plan := make([]*planBlock, 0, 16)
	byNo := make(map[uint64]*planBlock, 16)
	absorbed := 0
	for _, r := range batch {
		for _, no := range r.t.order {
			if pb, ok := byNo[no]; ok {
				pb.data = r.t.blocks[no]
				absorbed++
				continue
			}
			pb := &planBlock{no: no, data: r.t.blocks[no]}
			byNo[no] = pb
			plan = append(plan, pb)
		}
	}
	ok := true
planLoop:
	for _, pb := range plan {
		sh := c.shardOf(pb.no)
		sh.mu.Lock()
		i, hit := sh.slot(pb.no)
		if hit {
			e := c.readEntry(i)
			if e.role == RoleLog {
				sh.mu.Unlock()
				panic("core: live log-role entry outside a seal")
			}
			pb.hit, pb.slot, pb.prev = true, i, e.cur
			// Pin inside the same critical section as the lookup: the
			// background evictor only honours pins it can observe under
			// the shard lock.
			sh.pinned[i] = true
		} else {
			pb.prev = Fresh
		}
		sh.mu.Unlock()
		nb, err := c.allocBlock(shardIdx(pb.no))
		if err != nil {
			ok = false
			break planLoop
		}
		pb.nb = nb
		if !hit {
			pb.slot = c.allocSlot(shardIdx(pb.no))
		}
		pb.allocated = true
	}
	if !ok {
		// Unwind the volatile plan and degrade to one-at-a-time commits;
		// small transactions still succeed where the merged batch could
		// not fit.
		c.unwindPlan(plan)
		for _, r := range batch {
			r.err = c.commitSerialLocked(r.t)
		}
		return nil
	}
	if c.obs != nil {
		ts = c.obs.phase(c.obs.absorb, sealID, spanAbsorb, ts, g)
	}

	// The batch is one seal: claim its sequence number before any persist
	// so a harness can match the claimed transactions against the largest
	// sequence whose commit point was reached (Options.SealHook).
	c.sealSeq++
	seq := c.sealSeq
	for _, r := range batch {
		r.t.sealSeq = seq
	}
	c.flEmit(flight.EvSealBegin, 0, seq, uint64(len(plan)), uint64(len(batch)))

	// Phase A — data. Every target block is freshly allocated, so no
	// reader can observe it yet; store + flush each, one fence for all.
	// (FaultSkipDataFlush, harness validation only, leaves the stores
	// volatile while the protocol proceeds.)
	for _, pb := range plan {
		off := c.lay.blockOff(pb.nb)
		c.mem.Store(off, pb.data)
		if c.opts.Fault != FaultSkipDataFlush {
			c.mem.CLFlush(off, BlockSize)
		}
	}
	c.mem.SFence()
	if c.obs != nil {
		ts = c.obs.phase(c.obs.data, sealID, spanData, ts, g)
	}

	// Phase B — entries, log role (16B atomic store + flush each, under
	// the block's shard lock so concurrent readers never tear), one fence
	// for all. Readers that catch a log-role entry serve the previous
	// sealed version (or read around for fresh blocks).
	for _, pb := range plan {
		func() {
			sh := c.shardOf(pb.no)
			sh.mu.Lock()
			defer sh.mu.Unlock()
			if !pb.hit {
				if j, ok := sh.slot(pb.no); ok {
					// A concurrent read fill installed this block between
					// the plan phase (which decided "miss") and now. The
					// commit's version supersedes the clean filled copy.
					c.dropFilledLocked(sh, pb.no, j)
				}
				c.pushFrontLocked(sh, pb.slot)
				// Misses are pinned from insertion: after the phase-D role
				// switch the entry looks like an ordinary dirty buffer, but
				// it must not be evicted (with its disk write-back!) before
				// the Tail flip makes the whole batch durable.
				sh.pinned[pb.slot] = true
			}
			c.beginSlotMutate(pb.slot)
			c.storeEntry(pb.slot, entry{valid: true, role: RoleLog, modified: true, disk: pb.no, prev: pb.prev, cur: pb.nb})
			c.endSlotMutate(pb.slot)
			if !pb.hit {
				// Publish to the lock-free index only after the entry is in
				// place, so a fast reader can never look up a slot whose
				// entry is still the allocator's garbage.
				sh.mapStore(pb.no, pb.slot)
			}
			c.dirtied[pb.slot] = true
		}()
	}
	c.mem.SFence()
	if c.obs != nil {
		ts = c.obs.phase(c.obs.entries, sealID, spanEntries, ts, g)
	}

	// Phase C — ring records: every block number into consecutive ring
	// slots, one fence, then ONE Head persist for the whole batch. (The
	// per-block Head persist of the serial path is unnecessary: recovery
	// sweeps *all* stray log entries, however many a crash leaves.)
	for k, pb := range plan {
		off := c.lay.ringSlotOff(c.head + uint64(k))
		c.mem.Store8(off, pb.no)
		c.mem.CLFlush(off, RingSlotSize)
	}
	c.mem.SFence()
	c.head += uint64(len(plan))
	c.mem.Persist8(c.lay.headSlotOff(c.head), c.head)
	if c.obs != nil {
		ts = c.obs.phase(c.obs.ring, sealID, spanRing, ts, g)
	}

	// Phase D — role switches: flip every entry to buffer role, freeing
	// the previous versions; one fence for all.
	for _, pb := range plan {
		func() {
			sh := c.shardOf(pb.no)
			sh.mu.Lock()
			defer sh.mu.Unlock()
			e := c.readEntry(pb.slot)
			e.role = RoleBuffer
			e.prev = Fresh
			c.beginSlotMutate(pb.slot)
			c.storeEntry(pb.slot, e)
			c.endSlotMutate(pb.slot)
		}()
		if pb.prev != Fresh {
			c.freeDataBlock(pb.prev)
		}
	}
	c.mem.SFence()

	// Write-through without a destager propagates synchronously, before
	// the commit point, exactly as the serial path does.
	if c.opts.WriteThrough && c.destageCh == nil {
		buf := bufpool.Get()
		for _, pb := range plan {
			// writeBack performs the disk write outside the shard lock
			// under the slot's wb flag, so it coordinates with any
			// write-back the background evictor may have in flight.
			c.writeBack(c.shardOf(pb.no), pb.no, pb.slot, buf)
		}
		bufpool.Put(buf)
		c.mem.SFence()
	}
	if c.obs != nil {
		// The synchronous write-through propagation (when configured)
		// bills to the switch phase: it sits between the role switches
		// and the commit point.
		ts = c.obs.phase(c.obs.roleSw, sealID, spanSwitch, ts, g)
	}

	// Phase E — the commit point: ONE Tail persist seals every
	// transaction in the batch at once.
	c.setTail(c.head)
	// Book the commit point after the Tail flip: the flight record durable
	// implies the flip durable, which is the invariant the crash oracle
	// checks against the recovered Tail.
	c.flEmit(flight.EvSealPersist, 0, seq, c.head, uint64(len(plan)))
	if c.opts.SealHook != nil {
		c.opts.SealHook(seq)
	}
	if c.obs != nil {
		c.obs.phase(c.obs.tail, sealID, spanTail, ts, g)
	}

	// Volatile epilogue: unpin, touch LRU (rule 2b: committed blocks are
	// most recently used), hand off to the destager, book the counters.
	for _, pb := range plan {
		sh := c.shardOf(pb.no)
		sh.mu.Lock()
		delete(sh.pinned, pb.slot)
		c.touchLocked(sh, pb.slot)
		sh.mu.Unlock()
	}
	if c.destageCh != nil {
		for _, pb := range plan {
			c.destageEnqueue(pb.no, pb.slot)
		}
	}
	for _, pb := range plan {
		if pb.hit {
			c.rec.Inc(metrics.CacheWriteHit)
			c.rec.Inc(metrics.TxnCOWBlocks)
		} else {
			c.rec.Inc(metrics.CacheWriteMiss)
		}
	}
	for _, r := range batch {
		r.err = nil
		c.rec.Inc(metrics.TxnCommit)
		c.rec.Add(metrics.TxnBlocks, int64(len(r.t.order)))
	}
	c.rec.Inc(metrics.TxnGroupSeals)
	c.rec.Add(metrics.TxnGroupSize, int64(len(batch)))
	c.rec.Add(metrics.TxnAbsorbed, int64(absorbed))
	c.flEmit(flight.EvSealComplete, 0, seq, c.head, uint64(len(batch)))
	if c.obs != nil {
		c.obs.phase(c.obs.seal, sealID, spanSeal, tSeal, g)
	}
	c.maybeCheckpoint()
	return nil
}

// unwindPlan releases everything phase 0 allocated or pinned. Nothing has
// been persisted, so this is pure DRAM bookkeeping. The caller holds the
// seal exclusion for every planned block — c.mu on the single-ring path,
// the participating ring locks on the multi-ring path; the body itself
// only takes shard locks and the (thread-safe) allocator.
func (c *Cache) unwindPlan(plan []*planBlock) {
	for _, pb := range plan {
		if pb.hit {
			sh := c.shardOf(pb.no)
			sh.mu.Lock()
			delete(sh.pinned, pb.slot)
			sh.mu.Unlock()
		}
		if pb.allocated {
			// Slot before block: once the block is poppable, a concurrent
			// allocPair may demand a slot on the spot (popSlot's invariant).
			if !pb.hit {
				c.alloc.pushSlot(pb.slot)
			}
			c.alloc.pushBlock(pb.nb)
		}
	}
}

// dropFilledLocked removes a clean read-fill entry that raced in between
// a commit's plan phase (which decided its block was a write miss) and
// the entry install. Only a concurrent fill can have installed it — every
// other writer of this block serializes on the seal exclusion the caller
// holds (c.mu on the single-ring path, the block's ring seal lock on the
// multi-ring path) — so it is always a clean RoleBuffer entry whose loss
// loses nothing; dropping a committed version here would be a protocol
// break, hence the panic. Caller holds sh.mu.
func (c *Cache) dropFilledLocked(sh *shard, no uint64, i int32) {
	e := c.readEntry(i)
	if !e.valid || e.modified || e.role == RoleLog || e.prev != Fresh {
		panic("core: raced-in entry is not a clean read fill")
	}
	// Bump before the data block re-enters the free pool (same ordering
	// argument as eviction — see readfast.go).
	c.beginSlotMutate(i)
	c.clearEntry(i)
	sh.lru.remove(i)
	sh.mapDelete(no)
	c.dirtied[i] = false
	c.alloc.pushSlot(i)
	c.freeDataBlock(e.cur)
	c.endSlotMutate(i)
}
