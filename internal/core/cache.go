package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tinca/internal/blockdev"
	"tinca/internal/bufpool"
	"tinca/internal/errs"
	"tinca/internal/flight"
	"tinca/internal/index"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
)

// Ablation selects the commit mechanism, for the design-choice benches in
// DESIGN.md §6. The paper's Tinca is AblationNone.
type Ablation int

const (
	// AblationNone is the paper's design: role switch + COW, no double
	// writes.
	AblationNone Ablation = iota
	// AblationDoubleWrite disables role switch: every committed block is
	// written twice into NVM (once as a log copy, once to its cache
	// location), mimicking journaling inside the cache.
	AblationDoubleWrite
	// AblationUBJ mimics UBJ's commit-in-place (Section 5.4.4): a write
	// hit on a frozen block pays an extra in-NVM memcpy on the critical
	// path instead of Tinca's pointer-flip COW.
	AblationUBJ
)

// GroupCommit tunes the group-commit pipeline: concurrently arriving
// Txn.Commit calls are coalesced by a leader into a single ring-buffer
// seal (one Tail flip and a handful of fences amortized over the batch).
type GroupCommit struct {
	// MaxBatch bounds how many transactions one seal may coalesce.
	// Zero picks DefaultGroupBatch.
	MaxBatch int
	// MaxWaitNS is a real-time window the seal leader waits for the
	// batch to fill before sealing what it has. Zero (the default) seals
	// opportunistically: whatever is queued when the leader takes over.
	// Non-zero values trade commit latency for larger batches; simulated
	// time is unaffected by the wait itself.
	MaxWaitNS int64
}

// DefaultGroupBatch is the default cap on transactions per seal.
const DefaultGroupBatch = 8

// Fault selects a deliberate violation of the commit protocol's persist
// ordering, used exclusively to validate the crash harness: a sweep that
// cannot catch a cache that skips a required flush is not testing
// anything. Never set a fault in a real configuration.
type Fault int

const (
	// FaultNone is the correct protocol.
	FaultNone Fault = iota
	// FaultSkipDataFlush omits the cache-line flushes of committed block
	// data (phase A of the seal; step 1 of the serial protocol). The
	// entries and ring records still persist in order, so after a crash
	// with no lucky evictions the metadata points at garbage data — the
	// classic "logged before flushed" bug the sweep must detect.
	FaultSkipDataFlush
)

// Options configure a Cache.
type Options struct {
	// RingBytes is the ring buffer size; the paper's default (1MB) when 0.
	// Must be a multiple of the 64B cache line.
	RingBytes int
	// Ablation selects the commit mechanism (default: the paper's design).
	// Any ablation other than AblationNone serializes commits one at a
	// time under the global lock, exactly as the ablated designs would.
	Ablation Ablation
	// DisableTxnPin turns off replacement rule 2 (Section 4.6): blocks of
	// the committing transaction become evictable. Only meaningful for the
	// ablation bench; unsafe for crash consistency.
	DisableTxnPin bool
	// WriteThrough propagates every committed block to disk at commit
	// time and keeps cached copies clean (the paper's default is
	// write-back; write-through trades throughput for a disk that is
	// always current). With DestageDepth > 0 the propagation is
	// asynchronous: the disk is current after FlushAll/Close or a
	// destage drain rather than at Commit return.
	WriteThrough bool
	// RotatePointers spreads Head/Tail pointer updates across
	// DefaultPtrSlots cache lines instead of one fixed line each,
	// dividing the hottest-line wear accordingly (an endurance extension
	// motivated by the wear profile the endurance experiment exposes; see
	// EXPERIMENTS.md).
	RotatePointers bool
	// GroupCommit tunes batch formation for the group-commit seal.
	GroupCommit GroupCommit
	// Observe enables the commit-pipeline observability harness:
	// per-phase latency histograms (recorded into the device's shared
	// metrics.Recorder under the metrics.HistCommit* names) for the
	// group-commit seal phases, the serial path, the destager and
	// recovery. Off by default: the hot path then pays one nil check per
	// site and the histograms do not exist.
	Observe bool
	// Tracer, when non-nil, additionally records structured span events
	// (seal id, phase, simulated start/duration, goroutine) into the
	// given fixed-size ring for Chrome trace_event export. Setting a
	// Tracer implies Observe.
	Tracer *metrics.Tracer
	// Fault injects a deliberate persist-ordering violation (see Fault).
	// Harness self-validation only.
	Fault Fault
	// SealHook, when non-nil, is called immediately after every commit
	// point (the Tail persist that seals a batch or serial transaction)
	// with that seal's sequence number, while the commit lock is still
	// held. Sequence numbers are assigned when a seal starts and are
	// strictly increasing, so the largest value a hook observed before a
	// crash is exactly the prefix of seals that reached their commit
	// point. The hook must be fast and must not call back into the cache.
	SealHook func(seq uint64)
	// DestageDepth, when positive, enables the background destage path:
	// a bounded queue of that many blocks drained by a destager
	// goroutine that writes committed blocks back to disk off the commit
	// critical path. In write-back mode the destager opportunistically
	// cleans dirty blocks (so evictions rarely pay a synchronous disk
	// write); when the queue is full the cleaning is skipped. In
	// write-through mode enqueueing applies backpressure instead (the
	// committer blocks until the queue drains). Zero keeps all disk
	// write-back synchronous, as the paper's prototype does.
	DestageDepth int
	// DestageWorkers is how many destager goroutines drain the destage
	// queue (DestageDepth must be positive). Zero means one, the
	// historical behaviour; more workers let independent blocks' disk
	// write-backs overlap on media that overlap them (Profile.Parallel).
	DestageWorkers int
	// EvictLowWater, when positive, enables the background watermark
	// evictor: whenever the free block pool drops below this many blocks,
	// a background goroutine batch-evicts the globally coldest victims
	// (writing dirty ones back outside any lock) until the pool is back
	// above EvictLowWater + EvictBatch. Foreground allocations then almost
	// never pay an eviction scan or a synchronous disk write; they fall
	// back to a direct one-victim evict only when the pool is completely
	// empty. Zero (the default) keeps all eviction synchronous on the
	// allocating goroutine, as the paper's prototype does — and keeps
	// single-threaded workloads deterministic for the crash sweeps.
	EvictLowWater int
	// EvictBatch is how many victims one background eviction pass
	// reclaims (the hysteresis above the low watermark). Zero picks a
	// default; meaningless without EvictLowWater.
	EvictBatch int
	// SerialMiss forces read-miss fills through the legacy globally-locked
	// path even in concurrent mode (misses on distinct blocks then
	// serialize, and the fill's disk read happens under the global lock).
	// This is the pre-concurrent-pipeline behaviour, kept as the baseline
	// the miss-path scaling figure compares against.
	SerialMiss bool
	// LockedReadHit forces read hits through the shard-locked path even in
	// concurrent mode, disabling the per-slot seqlock fast path (see
	// readfast.go). This is the pre-seqlock behaviour, kept as the
	// baseline the read-hit scaling figure compares against and as the
	// reference image for the fast-path crash-parity sweep.
	LockedReadHit bool
	// IndexBuckets sets the initial per-shard capacity (in 16B cells) of
	// the open-addressed block index. Zero pre-sizes each shard for the
	// cache capacity so the steady state never resizes; small values force
	// the incremental grow path (used by the resize stress tests). Rounded
	// up to a power of two.
	IndexBuckets int
	// SyncMapIndex retains the legacy sync.Map block index instead of the
	// open-addressed bucket table — the baseline the index-scale figure
	// compares against. Functionally identical, slower and allocation-
	// heavy at large entry counts.
	SyncMapIndex bool
	// DisableZeroCopy forces ReadView to return copying views even in
	// concurrent mode — the baseline for the zero-copy read figure. The
	// zero value (zero-copy views on) is the redesigned read API's
	// default. (Serial/ablation modes always copy: they mutate cached
	// bytes in place, so no stable window exists to alias.)
	DisableZeroCopy bool
	// FlightRecorder enables the crash-surviving black box (DESIGN.md
	// §13): a flight.DefaultSlots-record event ring carved out of the NVM
	// layout, written crash-consistently at seal, recovery, destage and
	// eviction boundaries via silent persists that charge no simulated
	// time, counters or wear — figures are bit-identical with the
	// recorder on or off. The region costs a few cache blocks of
	// capacity; layouts with the recorder off are byte-identical to
	// before the feature existed.
	FlightRecorder bool
	// Checkpoint enables the checkpoint region (DESIGN.md §14): a delta
	// journal plus two alternating entry-table snapshot frames carved out
	// of the NVM layout. A checkpoint writer runs at commit points on the
	// simulated clock; recovery then loads the newest valid frame and
	// replays only the journaled deltas instead of scanning the whole
	// entry table, making restart time proportional to the resident set
	// rather than the capacity. Bumps the layout version; images with the
	// option off are byte-identical to before the feature existed.
	Checkpoint bool
	// CheckpointIntervalNS is the minimum simulated time between
	// checkpoint writes (DefaultCheckpointIntervalNS when 0). Requires
	// Checkpoint. The crash sweeps set it to 1 so every commit point
	// writes a checkpoint and the sweep visits every checkpoint boundary.
	CheckpointIntervalNS int64
	// SerialRecovery forces the shard-parallel recovery phases to run
	// their striped work items on one goroutine. The recovered image is
	// bit-identical either way (the parity sweep proves it); the knob
	// exists for that proof and for debugging.
	SerialRecovery bool
	// CommitRings splits the single commit log ring into this many
	// independent per-shard rings (DESIGN.md §15): ring r serializes the
	// blocks of shards congruent to r mod CommitRings, each ring has its
	// own Head/Tail pointer pair and group-commit leader, records are
	// stamped with a global commit-point generation, and recovery merges
	// the rings by generation. Transactions touching disjoint rings seal
	// fully in parallel; cross-ring transactions take a deterministic
	// multi-ring seal with the rings locked in index order. Must be a
	// power of two between 1 and 16 (shardCount) and requires the
	// concurrent commit path. 0 or 1 keeps the paper's single ring and a
	// byte-identical layout.
	CommitRings int
}

// Validate reports a descriptive error for a nonsensical configuration
// instead of silently clamping it. The zero Options value is always valid.
func (o Options) Validate() error {
	if o.RingBytes < 0 {
		return fmt.Errorf("core: RingBytes %d is negative", o.RingBytes)
	}
	if o.RingBytes%pmem.LineSize != 0 {
		return fmt.Errorf("core: RingBytes %d is not a multiple of the %dB cache line", o.RingBytes, pmem.LineSize)
	}
	if o.Ablation < AblationNone || o.Ablation > AblationUBJ {
		return fmt.Errorf("core: unknown ablation %d", int(o.Ablation))
	}
	if o.WriteThrough && o.Ablation == AblationUBJ {
		return errors.New("core: WriteThrough cannot be combined with AblationUBJ (commit-in-place leaves no stable copy to propagate)")
	}
	if o.GroupCommit.MaxBatch < 0 {
		return fmt.Errorf("core: GroupCommit.MaxBatch %d is negative", o.GroupCommit.MaxBatch)
	}
	if o.GroupCommit.MaxWaitNS < 0 {
		return fmt.Errorf("core: GroupCommit.MaxWaitNS %d is negative", o.GroupCommit.MaxWaitNS)
	}
	if o.DestageDepth < 0 {
		return fmt.Errorf("core: DestageDepth %d is negative", o.DestageDepth)
	}
	if o.Fault < FaultNone || o.Fault > FaultSkipDataFlush {
		return fmt.Errorf("core: unknown fault %d", int(o.Fault))
	}
	if o.DestageDepth > 0 && o.Ablation != AblationNone {
		return errors.New("core: DestageDepth requires the paper's commit path (AblationNone)")
	}
	if o.DestageWorkers < 0 {
		return fmt.Errorf("core: DestageWorkers %d is negative", o.DestageWorkers)
	}
	if o.DestageWorkers > 1 && o.DestageDepth == 0 {
		return errors.New("core: DestageWorkers > 1 requires DestageDepth > 0 (there is no queue to drain)")
	}
	if o.EvictLowWater < 0 {
		return fmt.Errorf("core: EvictLowWater %d is negative", o.EvictLowWater)
	}
	if o.EvictBatch < 0 {
		return fmt.Errorf("core: EvictBatch %d is negative", o.EvictBatch)
	}
	if o.EvictBatch > 0 && o.EvictLowWater == 0 {
		return errors.New("core: EvictBatch without EvictLowWater (no watermark to maintain)")
	}
	if o.EvictLowWater > 0 && o.serialOnly() {
		return errors.New("core: EvictLowWater requires the concurrent commit path (no ablations, txn pinning on)")
	}
	if o.IndexBuckets < 0 {
		return fmt.Errorf("core: IndexBuckets %d is negative", o.IndexBuckets)
	}
	if o.IndexBuckets > 0 && o.SyncMapIndex {
		return errors.New("core: IndexBuckets is meaningless with the SyncMapIndex baseline")
	}
	if o.CheckpointIntervalNS < 0 {
		return fmt.Errorf("core: CheckpointIntervalNS %d is negative", o.CheckpointIntervalNS)
	}
	if o.CheckpointIntervalNS > 0 && !o.Checkpoint {
		return errors.New("core: CheckpointIntervalNS without Checkpoint (no writer to pace)")
	}
	if o.Checkpoint && o.Ablation != AblationNone {
		return errors.New("core: Checkpoint requires the paper's commit path (AblationNone)")
	}
	if o.CommitRings < 0 {
		return fmt.Errorf("core: CommitRings %d is negative", o.CommitRings)
	}
	if o.CommitRings > 1 {
		if o.CommitRings > shardCount || o.CommitRings&(o.CommitRings-1) != 0 {
			return fmt.Errorf("core: CommitRings %d must be a power of two between 1 and %d", o.CommitRings, shardCount)
		}
		if o.serialOnly() {
			return errors.New("core: CommitRings > 1 requires the concurrent commit path (no ablations, txn pinning on)")
		}
	}
	return nil
}

// serialOnly reports whether the options force the legacy one-transaction-
// at-a-time commit path (the ablated designs model systems without a
// group-commit pipeline, so they keep the paper's serialization).
func (o Options) serialOnly() bool {
	return o.Ablation != AblationNone || o.DisableTxnPin
}

func (o Options) groupBatch() int {
	if o.GroupCommit.MaxBatch == 0 {
		return DefaultGroupBatch
	}
	return o.GroupCommit.MaxBatch
}

// Common errors. The cross-layer conditions (closed, out of range,
// expired view) wrap the shared sentinels in internal/errs, so one
// errors.Is target matches them whether they surface from core, fs or
// stack — see the exported aliases in the tinca package.
var (
	// ErrTxnTooLarge is returned when a transaction has more blocks than
	// the ring buffer has slots.
	ErrTxnTooLarge = errors.New("core: transaction exceeds ring buffer capacity")
	// ErrNoSpace is returned when no block can be evicted to make room
	// (every resident block is pinned by the committing transaction).
	ErrNoSpace = errors.New("core: cache full of pinned blocks")
	// ErrClosed is returned by operations on a closed cache.
	// errors.Is(err, errs.ErrClosed) matches it.
	ErrClosed = fmt.Errorf("core: cache closed: %w", errs.ErrClosed)
	// ErrOutOfRange is returned for a block number beyond the backing
	// disk or a mis-sized buffer. errors.Is(err, errs.ErrOutOfRange)
	// matches it.
	ErrOutOfRange = fmt.Errorf("core: block out of range: %w", errs.ErrOutOfRange)
	// ErrViewExpired is returned when a View is used after Close.
	// errors.Is(err, errs.ErrViewExpired) matches it.
	ErrViewExpired = fmt.Errorf("core: view used after Close: %w", errs.ErrViewExpired)
)

// shardCount is the lock-striping factor for the DRAM metadata (hash table
// and LRU lists). Must be a power of two.
const shardCount = 16

// shard holds the DRAM lookup structures for the disk blocks it is keyed
// to (block number mod shardCount). The shard lock guards the persistent
// entries and NVM data blocks of those disk blocks: any *mutator* of an
// (entry, data) pair holds the block's shard lock across the whole
// mutation and brackets it with the slot's seqlock (readfast.go), so the
// lock-free read-hit path can detect and discard torn snapshots while
// locked readers are excluded outright.
type shard struct {
	mu sync.Mutex
	// idx maps disk block -> entry slot: an open-addressed table of
	// 16-byte cells (internal/index) mirroring the paper's entry economy
	// on the DRAM side. Reads are lock-free (the read-hit fast path and
	// any optimistic lookup); every Put/Delete happens under mu, which
	// also drives the table's incremental resize. A lock-free reader may
	// observe a stale mapping or (mid-resize) a spurious miss; it
	// re-validates against the entry's disk field and the slot seqlock
	// (or simply re-checks under mu on the locked path).
	idx *index.Table
	// hash is the legacy sync.Map index, kept as a switchable baseline
	// (Options.SyncMapIndex) for the index-scale figure. Exactly one of
	// idx/hash is live, chosen at Open.
	hash   sync.Map
	useMap bool
	lru    *lruList // per-shard LRU over entry slots

	// touches is the MPSC ring of entry slots awaiting LRU promotion:
	// fast-path hits push lock-free, locked-path entrants and the evictor
	// drain under mu (see readfast.go).
	touches touchRing

	// pinned holds the entry slots of a committing transaction mapped to
	// this shard (replacement rule 2, Section 4.6): neither copy of a
	// committing block may be evicted until the whole commit — role
	// switch *and* Tail flip — is durable. Guarded by mu.
	pinned map[int32]bool

	// wb marks entry slots whose contents are currently in flight to disk
	// (eviction write-back, destage, flush or write-through propagation).
	// The flag serializes write-backers of one slot without holding mu
	// across the disk write: whoever sets it owns the slot's disk traffic
	// until it clears it, so an older version can never land over a newer
	// one. Guarded by mu; wbCond is signalled on every clear.
	wb     map[int32]bool
	wbCond *sync.Cond

	// evictGen counts evictions of ever-dirty slots in this shard. An
	// optimistic miss fill snapshots it before its disk read and aborts
	// the install if it moved: the eviction's write-back may have changed
	// the disk after the fill's read started. Evictions of never-dirty
	// blocks leave it alone (their disk copy cannot have changed), so
	// read-mostly workloads see no spurious retries. Written under mu.
	evictGen atomic.Uint64
}

// Cache is a transactional NVM disk cache (Tinca). It caches 4KB blocks of
// the underlying disk in NVM with a write-back policy and exports the
// transactional primitives Begin/Commit/Abort to the layer above.
//
// All public methods are safe for concurrent use. Running transactions
// build up concurrently in DRAM; concurrently arriving commits are
// coalesced into group seals (one ring-buffer Tail flip per batch), while
// the per-block metadata (hash table, LRU) is lock-striped across
// shardCount shards so data-path reads never serialize on a global lock.
type Cache struct {
	// mu is the structural lock: free lists, ring buffer, Head/Tail,
	// eviction, miss fills, and commit batches all run under it. The
	// read-hit fast path does not take it.
	mu   sync.Mutex
	mem  *pmem.Device
	disk blockdev.Store
	lay  Layout
	rec  *metrics.Recorder
	opts Options

	// vcache is non-nil when the disk is also a CleanVictimCache; the
	// evictor offers clean victims' bytes down the tier on eviction.
	vcache CleanVictimCache

	// DRAM auxiliary structures (Section 4.6); rebuilt on startup.
	// hash and lru live in the shards; the free block/slot monitors live
	// in the sharded allocator and never require mu.
	shards [shardCount]shard
	alloc  allocator

	// dirtied records, per entry slot, whether the slot's block has ever
	// been committed (and hence whether its disk copy may have been
	// rewritten by a write-back) since it was cached. Feeds the shards'
	// evictGen: only evicting an ever-dirty slot invalidates optimistic
	// miss fills. Guarded by the slot's shard lock.
	dirtied []bool

	// atime records a monotonic access tick per entry slot. Stamped
	// atomically by every hit (the lock-free fast path included) and by
	// locked installs; eviction selects victims by tick — the exact
	// recency signal — and re-validates the tick under the shard lock, so
	// the approximate order of the LRU lists (see shard.touches) never
	// decides an eviction by itself.
	atime []atomic.Int64
	tick  atomic.Int64

	// slotSeq is the per-slot seqlock: even = stable, odd = a mutator
	// (which also holds the slot's shard lock) is inside the slot's
	// (entry, data) pair. See readfast.go for the protocol.
	slotSeq []atomic.Uint32

	// viewPins holds, per NVM data block, (view refcount << 1) | orphan
	// bit. Nonzero pins defer the block's free to the last unpin; see
	// view.go for the protocol. viewsOpen counts open Views (all kinds)
	// for diagnostics and the quiescence invariant.
	viewPins  []atomic.Int64
	viewsOpen atomic.Int64

	head, tail uint64 // cached copies of the persistent pointers

	// sealSeq numbers commit-point seals for Options.SealHook; assigned
	// when a seal starts, reported after its Tail persist. Guarded by mu.
	sealSeq uint64

	// Multi-ring commit state (nil when CommitRings <= 1; DESIGN.md §15).
	// rings[r] owns ring r's persistent Head/Tail pair and its group-commit
	// queue; gen is the global commit-point generation counter every seal
	// draws from (assigned while holding all participating ring seal locks,
	// so per-ring generations are strictly increasing).
	rings []ringState
	gen   atomic.Uint64

	// Watermark-evictor state (evictWake nil when EvictLowWater == 0).
	evictLow    int
	evictHigh   int
	evictBatchN int
	evictWake   chan struct{}
	evictStop   chan struct{}
	evictWG     sync.WaitGroup

	closed atomic.Bool
	// poisoned carries the injected-crash panic value after a crash
	// fired mid-operation, so every later caller observes the crash
	// instead of running on the half-written image.
	poisoned atomic.Value

	// Group-commit leader/follower state.
	gcMu    sync.Mutex
	gcCond  *sync.Cond
	gcQueue []*commitReq
	gcBusy  bool

	// Destage queue (nil when DestageDepth == 0).
	destageCh      chan destageItem
	destageWG      sync.WaitGroup
	destagePending atomic.Int64
	destageWakeMu  sync.Mutex
	destageWake    *sync.Cond

	// obs is the observability harness (nil when Observe is off; every
	// instrumentation site branches on that nil).
	obs *obs

	// fl is the crash-surviving flight recorder (nil when
	// Options.FlightRecorder is off; every hook branches on that nil).
	fl *flight.Ring

	// recStats is populated by recover() when Open found a formatted
	// image; zero (Ran == false) after a fresh format.
	recStats RecoveryStats

	// ckpt is the checkpoint writer state (nil when Options.Checkpoint is
	// off; every hook branches on that nil). See checkpoint.go.
	ckpt *ckptState

	serial bool // legacy one-at-a-time commit path (ablation modes)
}

// CleanVictimCache is the optional downward path of an exclusive tier:
// a disk (blockdev.Store) that can also absorb clean blocks the cache
// evicts, so a re-miss is served from the near tier instead of the far
// one. AdmitClean reports whether the block found a home; a false is
// always safe to ignore — by definition a clean victim's content is
// reproducible from the tier below. Open detects the capability with a
// type assertion on the disk; objstore.Tier implements it.
type CleanVictimCache interface {
	AdmitClean(no uint64, data []byte) bool
}

// Open formats or recovers a Tinca cache on the given NVM device, backed
// by the given disk — a raw block device, or any blockdev.Store such as
// a tiered objstore.Tier. If the device already holds a Tinca layout
// (matching magic and geometry), crash recovery runs (Section 4.5);
// otherwise the device is formatted fresh. The options are validated
// eagerly: a nonsensical configuration returns a descriptive error.
func Open(mem *pmem.Device, disk blockdev.Store, opts Options) (*Cache, error) {
	if mem == nil || disk == nil {
		return nil, errors.New("core: Open requires a non-nil NVM device and disk")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ptrSlots := 1
	if opts.RotatePointers {
		ptrSlots = DefaultPtrSlots
	}
	flightSlots := 0
	if opts.FlightRecorder {
		flightSlots = flight.DefaultSlots
	}
	rings := 1
	if opts.CommitRings > 1 {
		rings = opts.CommitRings
	}
	lay, err := ComputeLayoutRings(mem.Size(), opts.RingBytes, ptrSlots, flightSlots, opts.Checkpoint, rings)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		mem:      mem,
		disk:     disk,
		lay:      lay,
		rec:      mem.Recorder(),
		opts:     opts,
		atime:    make([]atomic.Int64, lay.Capacity),
		slotSeq:  make([]atomic.Uint32, lay.Capacity),
		viewPins: make([]atomic.Int64, lay.Capacity),
		dirtied:  make([]bool, lay.Capacity),
		serial:   opts.serialOnly(),
	}
	if vc, ok := disk.(CleanVictimCache); ok {
		c.vcache = vc
	}
	c.alloc.init(mem.Recorder(), lay.Capacity)
	c.gcCond = sync.NewCond(&c.gcMu)
	if rings > 1 {
		c.rings = make([]ringState, rings)
		for r := range c.rings {
			c.rings[r].init(c.rec, r)
		}
	}
	c.destageWake = sync.NewCond(&c.destageWakeMu)
	if opts.Observe || opts.Tracer != nil {
		c.obs = newObs(mem.Clock(), mem.Recorder(), opts.Tracer)
	}
	buckets := opts.IndexBuckets
	if buckets == 0 {
		// Pre-size each shard for the whole capacity landing in it (the
		// worst skew) staying under the 3/4 grow trigger is overkill;
		// sizing for an even spread with 2x headroom means the steady
		// state almost never resizes and resize stays correct when it
		// does.
		buckets = 2 * (lay.Capacity/shardCount + 1)
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.useMap = opts.SyncMapIndex
		if !sh.useMap {
			sh.idx = index.New(buckets)
		}
		sh.lru = newLRU(lay.Capacity)
		sh.pinned = make(map[int32]bool)
		sh.wb = make(map[int32]bool)
		sh.wbCond = sync.NewCond(&sh.mu)
	}
	if opts.Checkpoint {
		iv := opts.CheckpointIntervalNS
		if iv == 0 {
			iv = DefaultCheckpointIntervalNS
		}
		c.ckpt = &ckptState{interval: iv, journaled: make([]bool, lay.Capacity)}
	}
	if c.isFormatted() {
		if opts.FlightRecorder {
			// Attach before recovery runs: recovery extends the surviving
			// pre-crash timeline with its own phase events.
			c.fl = flight.Attach(mem, mem.Clock(), lay.FlightOff, lay.FlightSlots)
		}
		if err := c.recover(); err != nil {
			return nil, err
		}
	} else {
		c.format()
		if opts.FlightRecorder {
			c.fl = flight.New(mem, mem.Clock(), lay.FlightOff, lay.FlightSlots)
		}
	}
	if opts.DestageDepth > 0 {
		workers := opts.DestageWorkers
		if workers == 0 {
			workers = 1
		}
		c.destageCh = make(chan destageItem, opts.DestageDepth)
		for i := 0; i < workers; i++ {
			c.destageWG.Add(1)
			go c.destager()
		}
	}
	if opts.EvictLowWater > 0 {
		c.evictLow = opts.EvictLowWater
		if c.evictLow > lay.Capacity/2 {
			// A watermark above half the cache would thrash; clamp it.
			c.evictLow = lay.Capacity / 2
		}
		c.evictBatchN = opts.EvictBatch
		if c.evictBatchN == 0 {
			c.evictBatchN = defaultEvictBatch
		}
		c.evictHigh = c.evictLow + c.evictBatchN
		c.evictWake = make(chan struct{}, 1)
		c.evictStop = make(chan struct{})
		c.evictWG.Add(1)
		go c.evictor()
	}
	return c, nil
}

// shardIdx returns the shard index (allocator affinity hint) for block no.
func shardIdx(no uint64) int {
	return int(no & (shardCount - 1))
}

// shardOf returns the shard responsible for disk block no.
func (c *Cache) shardOf(no uint64) *shard {
	return &c.shards[no&(shardCount-1)]
}

// slot returns the entry slot the shard's index maps for disk block no.
// Safe to call without sh.mu, but then the answer may be stale: lock-free
// callers re-validate against the entry and the slot seqlock.
func (sh *shard) slot(no uint64) (int32, bool) {
	if sh.useMap {
		v, ok := sh.hash.Load(no)
		if !ok {
			return 0, false
		}
		return v.(int32), true
	}
	return sh.idx.Get(no)
}

// mapStore publishes the no → slot mapping. Caller holds sh.mu; on the
// bucket index this also carries a quantum of any in-flight resize.
func (sh *shard) mapStore(no uint64, i int32) {
	if sh.useMap {
		sh.hash.Store(no, i)
		return
	}
	sh.idx.Put(no, i)
}

// mapDelete removes the mapping for no. Caller holds sh.mu.
func (sh *shard) mapDelete(no uint64) {
	if sh.useMap {
		sh.hash.Delete(no)
		return
	}
	sh.idx.Delete(no)
}

// mapRange iterates the shard's live mappings. Caller holds sh.mu (or is
// otherwise the sole mutator, e.g. recovery).
func (sh *shard) mapRange(fn func(no uint64, i int32) bool) {
	if sh.useMap {
		sh.hash.Range(func(k, v any) bool { return fn(k.(uint64), v.(int32)) })
		return
	}
	sh.idx.Range(fn)
}

// mapReset discards every mapping (recovery rebuild; single-threaded).
func (sh *shard) mapReset() {
	if sh.useMap {
		// sync.Map cannot be reassigned (the cond/locks alias the shard),
		// so clear it key by key.
		sh.hash.Range(func(k, _ any) bool { sh.hash.Delete(k); return true })
		return
	}
	sh.idx.Reset()
}

// mapLen counts live mappings. Caller holds sh.mu.
func (sh *shard) mapLen() int {
	if sh.useMap {
		n := 0
		sh.hash.Range(func(_, _ any) bool { n++; return true })
		return n
	}
	return sh.idx.Len()
}

// touchLocked stamps slot i with a fresh access tick and moves it to its
// shard's MRU end, after applying any promotions fast-path hits queued
// before this tick (FIFO, so list order tracks stamp order exactly in a
// serial execution). Caller holds the shard lock.
func (c *Cache) touchLocked(sh *shard, i int32) {
	c.drainTouchesLocked(sh)
	c.atime[i].Store(c.tick.Add(1))
	sh.lru.touch(i)
}

// pushFrontLocked inserts slot i as its shard's MRU, draining queued
// fast-path promotions first (they carry older ticks). Caller holds the
// shard lock.
func (c *Cache) pushFrontLocked(sh *shard, i int32) {
	c.drainTouchesLocked(sh)
	c.atime[i].Store(c.tick.Add(1))
	sh.lru.pushFront(i)
}

// checkPoison re-raises an injected-crash panic observed by an earlier
// operation: after a (simulated) power failure nothing may keep running on
// the half-written image.
func (c *Cache) checkPoison() {
	if pv := c.poisoned.Load(); pv != nil {
		panic(pv)
	}
}

// poison records pv as the crash that stops all future operations.
func (c *Cache) poison(pv any) {
	c.poisoned.CompareAndSwap(nil, pv)
}

func (c *Cache) isFormatted() bool {
	wantVer := layoutVersion
	if c.lay.CkptJournalSlots > 0 {
		wantVer = layoutVersionCkpt
	}
	wantRings := uint64(0) // single-ring images predate the field and hold 0
	if c.lay.Rings > 1 {
		wantVer = layoutVersionRings
		wantRings = uint64(c.lay.Rings)
	}
	return c.mem.Load8(c.lay.HeaderOff+hdrMagic) == layoutMagic &&
		c.mem.Load8(c.lay.HeaderOff+hdrVersion) == wantVer &&
		c.mem.Load8(c.lay.HeaderOff+hdrCapacity) == uint64(c.lay.Capacity) &&
		c.mem.Load8(c.lay.HeaderOff+hdrRingSlot) == uint64(c.lay.RingSlots) &&
		c.mem.Load8(c.lay.HeaderOff+hdrPtrSlots) == uint64(c.lay.PtrSlots) &&
		c.mem.Load8(c.lay.HeaderOff+hdrFlight) == uint64(c.lay.FlightSlots) &&
		c.mem.Load8(c.lay.HeaderOff+hdrCkpt) == uint64(c.lay.CkptJournalSlots) &&
		c.mem.Load8(c.lay.HeaderOff+hdrRings) == wantRings
}

// loadPointer reads a possibly-rotated pointer: the latest persisted
// value is the maximum across the rotation slots (values are monotonic
// and each store is atomic).
func (c *Cache) loadPointer(base int) uint64 {
	if c.lay.PtrSlots <= 1 {
		return c.mem.Load8(base)
	}
	var max uint64
	for i := 0; i < c.lay.PtrSlots; i++ {
		if v := c.mem.Load8(base + i*pmem.LineSize); v > max {
			max = v
		}
	}
	return max
}

func (c *Cache) format() {
	// A fresh pmem device is zeroed, so the entry table (all-invalid) and
	// the Head/Tail pointers (both zero) need no explicit pass. Persist
	// the header last so a crash mid-format is just an unformatted device.
	c.mem.Persist8(c.lay.HeadOff, 0)
	c.mem.Persist8(c.lay.TailOff, 0)
	if c.lay.Rings > 1 {
		// A reformat over a previous multi-ring image must not leave stale
		// rotation slots whose max would resurrect old pointers; clear
		// every slot of every ring (ring 0 slot 0 was cleared above).
		for r := 0; r < c.lay.Rings; r++ {
			for s := 0; s < c.lay.PtrSlots; s++ {
				if r == 0 && s == 0 {
					continue
				}
				c.mem.Persist8(c.lay.ringHeadOff(r)+s*pmem.LineSize, 0)
				c.mem.Persist8(c.lay.ringTailOff(r)+s*pmem.LineSize, 0)
			}
		}
	}
	// Clear any stale flight records a previous (differently laid out)
	// image may have left where the new region sits, so Attach after the
	// next crash can never resurrect another lifetime's timeline. Silent:
	// formatting the black box charges nothing observable.
	for s := 0; s < c.lay.FlightSlots; s++ {
		c.mem.PersistLineSilent(c.lay.FlightOff+s*flight.RecordSize, [pmem.LineSize]byte{})
	}
	ver := layoutVersion
	if c.ckpt != nil {
		c.formatCheckpoint()
		ver = layoutVersionCkpt
	}
	if c.lay.Rings > 1 {
		ver = layoutVersionRings
		c.mem.Store8(c.lay.HeaderOff+hdrRings, uint64(c.lay.Rings))
	}
	c.mem.Store8(c.lay.HeaderOff+hdrVersion, ver)
	c.mem.Store8(c.lay.HeaderOff+hdrCapacity, uint64(c.lay.Capacity))
	c.mem.Store8(c.lay.HeaderOff+hdrRingSlot, uint64(c.lay.RingSlots))
	c.mem.Store8(c.lay.HeaderOff+hdrPtrSlots, uint64(c.lay.PtrSlots))
	c.mem.Store8(c.lay.HeaderOff+hdrFlight, uint64(c.lay.FlightSlots))
	c.mem.Store8(c.lay.HeaderOff+hdrCkpt, uint64(c.lay.CkptJournalSlots))
	c.mem.CLFlush(c.lay.HeaderOff, pmem.LineSize)
	c.mem.SFence()
	c.mem.Persist8(c.lay.HeaderOff+hdrMagic, layoutMagic)
	c.head, c.tail = 0, 0
	for b := c.lay.Capacity - 1; b >= 0; b-- {
		c.alloc.pushBlock(uint32(b))
		c.alloc.pushSlot(int32(b))
	}
}

// Layout exposes the computed NVM layout (for tests and tooling).
func (c *Cache) Layout() Layout { return c.lay }

// Pointers returns the cache's view of the persistent Head and Tail ring
// pointers — after Open they equal the recovered (durable) values, which
// is what the crash sweep's blackbox oracle compares flight records
// against.
func (c *Cache) Pointers() (head, tail uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.head, c.tail
}

// RingPointers returns the cache's view of every ring's persistent Head
// and Tail pointers (CommitRings > 1). For the single-ring layout it
// returns one-element slices equal to Pointers(). The crash sweep's
// per-ring blackbox oracle compares flight records against these.
func (c *Cache) RingPointers() (heads, tails []uint64) {
	if len(c.rings) == 0 {
		h, t := c.Pointers()
		return []uint64{h}, []uint64{t}
	}
	heads = make([]uint64, len(c.rings))
	tails = make([]uint64, len(c.rings))
	for r := range c.rings {
		rs := &c.rings[r]
		rs.mu.Lock()
		heads[r], tails[r] = rs.head, rs.tail
		rs.mu.Unlock()
	}
	return heads, tails
}

// flEmit books one flight-recorder event: one nil check when the recorder
// is off, one silent (zero-perturbation) persisted record when on.
func (c *Cache) flEmit(t flight.EventType, shard uint16, gen, block, arg uint64) {
	if c.fl != nil {
		c.fl.Emit(t, shard, gen, block, arg)
	}
}

// Blackbox decodes the flight-recorder region into a forensic report, or
// nil when the recorder is off. Decoding is silent (no simulated time), so
// it is safe to call live — /blackbox scrapes it while the cache serves
// traffic.
func (c *Cache) Blackbox() *flight.Blackbox {
	if c.fl == nil {
		return nil
	}
	return flight.Decode(c.mem, c.lay.FlightOff, c.lay.FlightSlots)
}

// RecoveryStats returns the per-phase breakdown of the recovery pass Open
// ran, or a zero struct (Ran == false) when the device was freshly
// formatted. Populated unconditionally — the struct is plain bookkeeping
// off the simulated clock — so the recovery-breakdown figure does not
// require Observe.
func (c *Cache) RecoveryStats() RecoveryStats { return c.recStats }

// Capacity returns the number of cacheable 4KB blocks.
func (c *Cache) Capacity() int { return c.lay.Capacity }

// FreeBlocks reports how many NVM data blocks are currently unused.
func (c *Cache) FreeBlocks() int {
	return int(c.alloc.freeBlocks())
}

// readEntry loads and decodes entry slot i from NVM.
func (c *Cache) readEntry(i int32) entry {
	return decodeEntry(c.mem.Load16(c.lay.entryOff(int(i))))
}

// writeEntry persists entry slot i with one atomic 16B store + flush +
// fence (the cmpxchg16b path of Section 4.2). The checkpoint delta
// journal, when on, records the slot first (journal-before-entry; see
// checkpoint.go).
func (c *Cache) writeEntry(i int32, e entry) {
	c.ckptJournal(int(i))
	c.mem.Persist16(c.lay.entryOff(int(i)), encodeEntry(e))
}

// storeEntry writes and flushes entry slot i without the trailing fence,
// for batch phases that amortize one fence over many entries.
func (c *Cache) storeEntry(i int32, e entry) {
	c.ckptJournal(int(i))
	off := c.lay.entryOff(int(i))
	c.mem.Store16(off, encodeEntry(e))
	c.mem.CLFlush(off, EntrySize)
}

// clearEntry atomically invalidates entry slot i.
func (c *Cache) clearEntry(i int32) {
	c.ckptJournal(int(i))
	c.mem.Persist16(c.lay.entryOff(int(i)), [16]byte{})
}

// allocBlock returns a free NVM data block, preferring shard h's local
// free cache. When the pool is empty it falls back to a direct one-victim
// eviction (the paper's synchronous behaviour); with the watermark
// evictor enabled that fallback is the rare slow path. Performs no disk
// I/O unless the pool is empty. May be called with or without c.mu, but
// never with a shard lock held (the direct fallback takes shard locks).
func (c *Cache) allocBlock(h int) (uint32, error) {
	if b, ok := c.alloc.popBlock(h); ok {
		c.maybeWakeEvictor()
		return b, nil
	}
	if c.evictLow > 0 {
		// Empty pool with the watermark evictor configured: it has been
		// woken but may simply not have been scheduled yet (a tight miss
		// loop on few cores never yields). Give it one turn before
		// falling back to a foreground eviction — a scheduler yield is
		// far cheaper than a cross-shard victim scan, and it keeps
		// reclaim on the batched background path.
		c.maybeWakeEvictor()
		runtime.Gosched()
		if b, ok := c.alloc.popBlock(h); ok {
			return b, nil
		}
	}
	var scratch []victim
	for spin := 0; ; spin++ {
		evicted, saw := c.evictBatch(directEvictBatch, true, &scratch)
		if b, ok := c.alloc.popBlock(h); ok {
			c.maybeWakeEvictor()
			return b, nil
		}
		if evicted == 0 && !saw {
			// A full scan found nothing evictable: every resident block
			// is pinned or mid-seal. That is a genuine out-of-space
			// condition, not a race.
			return 0, ErrNoSpace
		}
		if spin >= 1<<12 {
			// Livelock backstop: concurrent allocators keep stealing
			// whatever we free. Unreachable in practice.
			return 0, ErrNoSpace
		}
	}
}

// allocSlot returns a free entry-table slot. The entry table has exactly
// one slot per data block and every cached block consumes at least one
// data block, so a successful allocBlock guarantees a slot exists.
func (c *Cache) allocSlot(h int) int32 {
	return c.alloc.popSlot(h)
}

// allocPair allocates the (data block, entry slot) pair a fill or write
// miss of disk block no needs. Never called with a shard lock held.
func (c *Cache) allocPair(no uint64) (uint32, int32, error) {
	h := shardIdx(no)
	b, err := c.allocBlock(h)
	if err != nil {
		return 0, 0, err
	}
	return b, c.allocSlot(h), nil
}

// Read copies the current committed contents of disk block no into p
// (BlockSize bytes). A miss populates the cache from disk (the cache
// serves reads as well as writes, Section 4.6). In concurrent mode a read
// hit usually takes no lock at all — a per-slot seqlock validates the
// lock-free entry load and block copy (readfast.go) — and falls back to
// the block's shard lock on churn or a mid-seal block; misses on distinct
// blocks proceed in parallel too — the fill's disk read happens before
// any lock is taken and the install is an optimistic first-installer-wins
// race.
func (c *Cache) Read(no uint64, p []byte) error {
	if len(p) != BlockSize {
		return fmt.Errorf("core: Read buffer must be %d bytes", BlockSize)
	}
	c.checkPoison()
	if c.closed.Load() {
		return ErrClosed
	}
	if no >= c.disk.Blocks() {
		return fmt.Errorf("core: Read of block %d beyond disk (%d blocks): %w",
			no, c.disk.Blocks(), ErrOutOfRange)
	}
	if c.serial {
		// Ablation modes update cached blocks in place mid-commit, so
		// reads keep the paper's full serialization.
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.readResident(no, p) {
			c.rec.Inc(metrics.CacheReadHit)
			return nil
		}
		c.rec.Inc(metrics.CacheReadMiss)
		return c.fillSerialLocked(no, p)
	}
	if !c.opts.LockedReadHit && c.readFast(no, p) {
		return nil // counted inside readFast (hit + fast)
	}
	if c.readResident(no, p) {
		c.rec.Inc(metrics.CacheReadHit)
		c.rec.Inc(metrics.CacheReadHitSlow)
		return nil
	}
	if c.opts.SerialMiss {
		// Legacy baseline: the miss path serializes on the global lock
		// and its disk read happens under it.
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.closed.Load() {
			return ErrClosed
		}
		// Double-check under the structural lock: a racing miss may have
		// filled the block already.
		if c.readResident(no, p) {
			c.rec.Inc(metrics.CacheReadHit)
			c.rec.Inc(metrics.CacheReadHitSlow)
			return nil
		}
		c.rec.Inc(metrics.CacheReadMiss)
		return c.fillSerialLocked(no, p)
	}
	c.rec.Inc(metrics.CacheReadMiss)
	return c.fillConcurrent(no, p)
}

// readResident serves no from the cache if resident, without touching any
// counter: the shard-locked hit path (and the sole hit path in serial
// mode or under Options.LockedReadHit). A block mid-seal (log role) is
// served from its last sealed version: the previous COW copy, or — for a
// fresh write not yet sealed — the disk, read around the cache. A nil p
// checks residency only (the ReadView miss path needs the install, not
// the bytes) — no copy, no charge.
func (c *Cache) readResident(no uint64, p []byte) bool {
	sh := c.shardOf(no)
	sh.mu.Lock()
	i, ok := sh.slot(no)
	if !ok {
		sh.mu.Unlock()
		return false
	}
	e := c.readEntry(i)
	if e.role == RoleLog {
		if e.prev == Fresh {
			// Freshly written, seal pending: the sealed contents are
			// still whatever the disk holds.
			sh.mu.Unlock()
			if p != nil {
				c.disk.ReadBlock(no, p)
			}
			return true
		}
		// Serve the pre-seal version; no LRU touch while committing.
		if p != nil {
			c.mem.Load(c.lay.blockOff(e.prev), p)
		}
		sh.mu.Unlock()
		return true
	}
	if p != nil {
		c.mem.Load(c.lay.blockOff(e.cur), p)
	}
	c.touchLocked(sh, i)
	sh.mu.Unlock()
	return true
}

// fillSerialLocked reads block no from disk, installs it clean in the
// cache and copies it to p if non-nil. Caller holds c.mu (serial mode or
// the SerialMiss baseline), which excludes every concurrent installer.
func (c *Cache) fillSerialLocked(no uint64, p []byte) error {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	c.disk.ReadBlock(no, buf)
	if p != nil {
		copy(p, buf)
	}
	b, err := c.allocBlock(shardIdx(no))
	if err != nil {
		return err
	}
	// Persist the data before the entry that points at it; otherwise a
	// crash could leave a clean-looking entry over garbage.
	c.mem.PersistRange(c.lay.blockOff(b), buf)
	i := c.allocSlot(shardIdx(no))
	sh := c.shardOf(no)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.beginSlotMutate(i)
	c.writeEntry(i, entry{valid: true, role: RoleBuffer, modified: false, disk: no, prev: Fresh, cur: b})
	c.endSlotMutate(i)
	sh.mapStore(no, i)
	c.pushFrontLocked(sh, i)
	return nil
}

// maxOptimisticFills bounds how often a concurrent fill retries after
// losing to an eviction-generation bump before switching to the
// pessimistic shard-locked fill.
const maxOptimisticFills = 3

// fillConcurrent is the concurrent miss path: read the disk block before
// taking any lock, then install it with a lost-race check — the first
// installer wins and the loser frees its block. An eviction-generation
// check closes the one window optimism leaves open: if an ever-dirty
// block was evicted from this shard while our disk read was in flight,
// the read may predate that eviction's write-back, so the copy is thrown
// away and the fill retries. After repeated losses it degrades to a
// pessimistic fill that holds the shard lock across the disk read.
func (c *Cache) fillConcurrent(no uint64, p []byte) error {
	sh := c.shardOf(no)
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	for attempt := 0; ; attempt++ {
		if attempt >= maxOptimisticFills {
			b, s, err := c.allocPair(no)
			if err != nil {
				return err
			}
			sh.mu.Lock()
			if _, ok := sh.slot(no); ok {
				sh.mu.Unlock()
				// Slot before block, always: a thread that pops the block
				// may immediately demand a slot, and the free-slot pool must
				// already hold one at that instant (popSlot's invariant).
				c.alloc.pushSlot(s)
				c.alloc.pushBlock(b)
				c.rec.Inc(metrics.CacheFillRace)
				if c.readResident(no, p) {
					return nil
				}
				continue // evicted again before we could serve it
			}
			// Holding sh.mu across the disk read excludes every eviction
			// and install in this shard: slow, but guaranteed to finish.
			c.disk.ReadBlock(no, buf)
			c.mem.PersistRange(c.lay.blockOff(b), buf)
			c.beginSlotMutate(s)
			c.writeEntry(s, entry{valid: true, role: RoleBuffer, modified: false, disk: no, prev: Fresh, cur: b})
			c.endSlotMutate(s)
			sh.mapStore(no, s)
			c.pushFrontLocked(sh, s)
			sh.mu.Unlock()
			if p != nil {
				copy(p, buf)
			}
			return nil
		}

		gen := sh.evictGen.Load()
		c.disk.ReadBlock(no, buf)
		b, s, err := c.allocPair(no)
		if err != nil {
			return err
		}
		// Persist the data before the entry that points at it; otherwise
		// a crash could leave a clean-looking entry over garbage.
		c.mem.PersistRange(c.lay.blockOff(b), buf)
		sh.mu.Lock()
		if _, ok := sh.slot(no); ok {
			// Lost the install race: a concurrent fill (or a committing
			// transaction) beat us to it. First installer wins; free our
			// copy and serve theirs.
			sh.mu.Unlock()
			c.alloc.pushSlot(s) // slot before block (popSlot's invariant)
			c.alloc.pushBlock(b)
			c.rec.Inc(metrics.CacheFillRace)
			if c.readResident(no, p) {
				return nil
			}
			continue // it was evicted again already; start over
		}
		if sh.evictGen.Load() != gen {
			// An ever-dirty block left this shard while our disk read was
			// in flight; the read may be stale. Retry with a fresh read.
			sh.mu.Unlock()
			c.alloc.pushSlot(s) // slot before block (popSlot's invariant)
			c.alloc.pushBlock(b)
			c.rec.Inc(metrics.CacheFillRace)
			continue
		}
		c.beginSlotMutate(s)
		c.writeEntry(s, entry{valid: true, role: RoleBuffer, modified: false, disk: no, prev: Fresh, cur: b})
		c.endSlotMutate(s)
		sh.mapStore(no, s)
		c.pushFrontLocked(sh, s)
		sh.mu.Unlock()
		if p != nil {
			copy(p, buf)
		}
		return nil
	}
}

// Contains reports whether disk block no is resident (for tests).
func (c *Cache) Contains(no uint64) bool {
	sh := c.shardOf(no)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.slot(no)
	return ok
}

// writeBack writes slot's current contents to disk and clears its
// modified bit: the shared engine of the destager, FlushAll and the
// write-through propagation. The caller names the (no, slot) pair it
// believes dirty; everything is re-validated under the shard lock, the
// disk write happens outside it under the slot's wb flag (so concurrent
// write-backers of one slot serialize and an older version can never
// land over a newer one), and the modified bit is cleared only if the
// written version is still the current one. Reports whether a disk write
// was performed. buf is BlockSize scratch; never takes c.mu.
func (c *Cache) writeBack(sh *shard, no uint64, slot int32, buf []byte) bool {
	sh.mu.Lock()
	locked := true
	defer func() {
		if locked {
			sh.mu.Unlock()
		}
	}()
	for sh.wb[slot] {
		sh.wbCond.Wait()
	}
	if i, ok := sh.slot(no); !ok || i != slot {
		return false // evicted (and possibly reused) since enqueue
	}
	e := c.readEntry(slot)
	if !e.valid || e.role == RoleLog || !e.modified {
		return false
	}
	c.mem.Load(c.lay.blockOff(e.cur), buf)
	sh.wb[slot] = true
	locked = false
	sh.mu.Unlock()
	c.disk.WriteBlock(no, buf)
	sh.mu.Lock()
	locked = true
	delete(sh.wb, slot)
	sh.wbCond.Broadcast()
	if i, ok := sh.slot(no); !ok || i != slot {
		return true // evicted while in flight; the write was harmless
	}
	// A commit may have COWed a newer version while ours was in flight:
	// then the entry stays dirty and the NVM remains authoritative.
	if e2 := c.readEntry(slot); e2.valid && e2.role != RoleLog && e2.modified && e2.cur == e.cur {
		e2.modified = false
		c.beginSlotMutate(slot)
		c.writeEntry(slot, e2)
		c.endSlotMutate(slot)
	}
	return true
}

// FlushAll writes every dirty cached block back to disk and marks it
// clean. It is the orderly-shutdown / drain path; crash consistency never
// depends on it. The dirty set is snapshotted per shard under the shard
// lock and written back outside it, so reads and commits keep flowing
// while the flush's disk writes are in flight; writeBack re-validates
// every item before clearing its modified bit.
func (c *Cache) FlushAll() error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.DrainDestage()
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	var dirty []destageItem
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		dirty = dirty[:0]
		sh.mapRange(func(no uint64, i int32) bool {
			if e := c.readEntry(i); e.modified && e.role != RoleLog {
				dirty = append(dirty, destageItem{no: no, slot: i})
			}
			return true
		})
		sh.mu.Unlock()
		for _, it := range dirty {
			c.writeBack(sh, it.no, it.slot, buf)
		}
	}
	return nil
}

// Close flushes dirty data and rejects further use.
func (c *Cache) Close() error {
	if err := c.FlushAll(); err != nil {
		return err
	}
	c.closed.Store(true)
	// Barrier: wait for any in-flight commit batch to finish before the
	// background workers go away (batches enqueue destage work under c.mu).
	c.mu.Lock()
	c.mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	for r := range c.rings {
		// Multi-ring seals run under their ring locks, not c.mu: barrier
		// over each ring so no seal is mid-flight when the workers stop.
		c.rings[r].mu.Lock()
		c.rings[r].mu.Unlock() //nolint:staticcheck // barrier
	}
	if c.evictStop != nil {
		close(c.evictStop)
		c.evictWG.Wait()
		c.evictStop = nil
	}
	if c.destageCh != nil {
		close(c.destageCh)
		c.destageWG.Wait()
	}
	return nil
}

// WriteHitRate returns cache write hits / (hits+misses) over the lifetime
// of the shared recorder (Figure 12(c) metric).
func (c *Cache) WriteHitRate() float64 {
	h := c.rec.Get(metrics.CacheWriteHit)
	m := c.rec.Get(metrics.CacheWriteMiss)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
