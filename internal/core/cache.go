package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
)

// Ablation selects the commit mechanism, for the design-choice benches in
// DESIGN.md §6. The paper's Tinca is AblationNone.
type Ablation int

const (
	// AblationNone is the paper's design: role switch + COW, no double
	// writes.
	AblationNone Ablation = iota
	// AblationDoubleWrite disables role switch: every committed block is
	// written twice into NVM (once as a log copy, once to its cache
	// location), mimicking journaling inside the cache.
	AblationDoubleWrite
	// AblationUBJ mimics UBJ's commit-in-place (Section 5.4.4): a write
	// hit on a frozen block pays an extra in-NVM memcpy on the critical
	// path instead of Tinca's pointer-flip COW.
	AblationUBJ
)

// GroupCommit tunes the group-commit pipeline: concurrently arriving
// Txn.Commit calls are coalesced by a leader into a single ring-buffer
// seal (one Tail flip and a handful of fences amortized over the batch).
type GroupCommit struct {
	// MaxBatch bounds how many transactions one seal may coalesce.
	// Zero picks DefaultGroupBatch.
	MaxBatch int
	// MaxWaitNS is a real-time window the seal leader waits for the
	// batch to fill before sealing what it has. Zero (the default) seals
	// opportunistically: whatever is queued when the leader takes over.
	// Non-zero values trade commit latency for larger batches; simulated
	// time is unaffected by the wait itself.
	MaxWaitNS int64
}

// DefaultGroupBatch is the default cap on transactions per seal.
const DefaultGroupBatch = 8

// Fault selects a deliberate violation of the commit protocol's persist
// ordering, used exclusively to validate the crash harness: a sweep that
// cannot catch a cache that skips a required flush is not testing
// anything. Never set a fault in a real configuration.
type Fault int

const (
	// FaultNone is the correct protocol.
	FaultNone Fault = iota
	// FaultSkipDataFlush omits the cache-line flushes of committed block
	// data (phase A of the seal; step 1 of the serial protocol). The
	// entries and ring records still persist in order, so after a crash
	// with no lucky evictions the metadata points at garbage data — the
	// classic "logged before flushed" bug the sweep must detect.
	FaultSkipDataFlush
)

// Options configure a Cache.
type Options struct {
	// RingBytes is the ring buffer size; the paper's default (1MB) when 0.
	// Must be a multiple of the 64B cache line.
	RingBytes int
	// Ablation selects the commit mechanism (default: the paper's design).
	// Any ablation other than AblationNone serializes commits one at a
	// time under the global lock, exactly as the ablated designs would.
	Ablation Ablation
	// DisableTxnPin turns off replacement rule 2 (Section 4.6): blocks of
	// the committing transaction become evictable. Only meaningful for the
	// ablation bench; unsafe for crash consistency.
	DisableTxnPin bool
	// WriteThrough propagates every committed block to disk at commit
	// time and keeps cached copies clean (the paper's default is
	// write-back; write-through trades throughput for a disk that is
	// always current). With DestageDepth > 0 the propagation is
	// asynchronous: the disk is current after FlushAll/Close or a
	// destage drain rather than at Commit return.
	WriteThrough bool
	// RotatePointers spreads Head/Tail pointer updates across
	// DefaultPtrSlots cache lines instead of one fixed line each,
	// dividing the hottest-line wear accordingly (an endurance extension
	// motivated by the wear profile the endurance experiment exposes; see
	// EXPERIMENTS.md).
	RotatePointers bool
	// GroupCommit tunes batch formation for the group-commit seal.
	GroupCommit GroupCommit
	// Observe enables the commit-pipeline observability harness:
	// per-phase latency histograms (recorded into the device's shared
	// metrics.Recorder under the metrics.HistCommit* names) for the
	// group-commit seal phases, the serial path, the destager and
	// recovery. Off by default: the hot path then pays one nil check per
	// site and the histograms do not exist.
	Observe bool
	// Tracer, when non-nil, additionally records structured span events
	// (seal id, phase, simulated start/duration, goroutine) into the
	// given fixed-size ring for Chrome trace_event export. Setting a
	// Tracer implies Observe.
	Tracer *metrics.Tracer
	// Fault injects a deliberate persist-ordering violation (see Fault).
	// Harness self-validation only.
	Fault Fault
	// SealHook, when non-nil, is called immediately after every commit
	// point (the Tail persist that seals a batch or serial transaction)
	// with that seal's sequence number, while the commit lock is still
	// held. Sequence numbers are assigned when a seal starts and are
	// strictly increasing, so the largest value a hook observed before a
	// crash is exactly the prefix of seals that reached their commit
	// point. The hook must be fast and must not call back into the cache.
	SealHook func(seq uint64)
	// DestageDepth, when positive, enables the background destage path:
	// a bounded queue of that many blocks drained by a destager
	// goroutine that writes committed blocks back to disk off the commit
	// critical path. In write-back mode the destager opportunistically
	// cleans dirty blocks (so evictions rarely pay a synchronous disk
	// write); when the queue is full the cleaning is skipped. In
	// write-through mode enqueueing applies backpressure instead (the
	// committer blocks until the queue drains). Zero keeps all disk
	// write-back synchronous, as the paper's prototype does.
	DestageDepth int
}

// Validate reports a descriptive error for a nonsensical configuration
// instead of silently clamping it. The zero Options value is always valid.
func (o Options) Validate() error {
	if o.RingBytes < 0 {
		return fmt.Errorf("core: RingBytes %d is negative", o.RingBytes)
	}
	if o.RingBytes%pmem.LineSize != 0 {
		return fmt.Errorf("core: RingBytes %d is not a multiple of the %dB cache line", o.RingBytes, pmem.LineSize)
	}
	if o.Ablation < AblationNone || o.Ablation > AblationUBJ {
		return fmt.Errorf("core: unknown ablation %d", int(o.Ablation))
	}
	if o.WriteThrough && o.Ablation == AblationUBJ {
		return errors.New("core: WriteThrough cannot be combined with AblationUBJ (commit-in-place leaves no stable copy to propagate)")
	}
	if o.GroupCommit.MaxBatch < 0 {
		return fmt.Errorf("core: GroupCommit.MaxBatch %d is negative", o.GroupCommit.MaxBatch)
	}
	if o.GroupCommit.MaxWaitNS < 0 {
		return fmt.Errorf("core: GroupCommit.MaxWaitNS %d is negative", o.GroupCommit.MaxWaitNS)
	}
	if o.DestageDepth < 0 {
		return fmt.Errorf("core: DestageDepth %d is negative", o.DestageDepth)
	}
	if o.Fault < FaultNone || o.Fault > FaultSkipDataFlush {
		return fmt.Errorf("core: unknown fault %d", int(o.Fault))
	}
	if o.DestageDepth > 0 && o.Ablation != AblationNone {
		return errors.New("core: DestageDepth requires the paper's commit path (AblationNone)")
	}
	return nil
}

// serialOnly reports whether the options force the legacy one-transaction-
// at-a-time commit path (the ablated designs model systems without a
// group-commit pipeline, so they keep the paper's serialization).
func (o Options) serialOnly() bool {
	return o.Ablation != AblationNone || o.DisableTxnPin
}

func (o Options) groupBatch() int {
	if o.GroupCommit.MaxBatch == 0 {
		return DefaultGroupBatch
	}
	return o.GroupCommit.MaxBatch
}

// Common errors.
var (
	// ErrTxnTooLarge is returned when a transaction has more blocks than
	// the ring buffer has slots.
	ErrTxnTooLarge = errors.New("core: transaction exceeds ring buffer capacity")
	// ErrNoSpace is returned when no block can be evicted to make room
	// (every resident block is pinned by the committing transaction).
	ErrNoSpace = errors.New("core: cache full of pinned blocks")
	// ErrClosed is returned by operations on a closed cache.
	ErrClosed = errors.New("core: cache closed")
)

// shardCount is the lock-striping factor for the DRAM metadata (hash table
// and LRU lists). Must be a power of two.
const shardCount = 16

// shard holds the DRAM lookup structures for the disk blocks it is keyed
// to (block number mod shardCount). The shard lock also guards the
// persistent entries and NVM data blocks of those disk blocks: any reader
// or writer of an (entry, data) pair holds the block's shard lock across
// the whole access, so entry updates and block reclamation cannot tear a
// concurrent read.
type shard struct {
	mu   sync.Mutex
	hash map[uint64]int32 // disk block -> entry slot
	lru  *lruList         // per-shard LRU over entry slots
}

// Cache is a transactional NVM disk cache (Tinca). It caches 4KB blocks of
// the underlying disk in NVM with a write-back policy and exports the
// transactional primitives Begin/Commit/Abort to the layer above.
//
// All public methods are safe for concurrent use. Running transactions
// build up concurrently in DRAM; concurrently arriving commits are
// coalesced into group seals (one ring-buffer Tail flip per batch), while
// the per-block metadata (hash table, LRU) is lock-striped across
// shardCount shards so data-path reads never serialize on a global lock.
type Cache struct {
	// mu is the structural lock: free lists, ring buffer, Head/Tail,
	// eviction, miss fills, and commit batches all run under it. The
	// read-hit fast path does not take it.
	mu   sync.Mutex
	mem  *pmem.Device
	disk *blockdev.Device
	lay  Layout
	rec  *metrics.Recorder
	opts Options

	// DRAM auxiliary structures (Section 4.6); rebuilt on startup.
	// hash and lru live in the shards; the free monitors are global
	// under mu.
	shards     [shardCount]shard
	freeBlocks []uint32 // free NVM data blocks (free block monitor)
	freeSlots  []int32  // free entry-table slots

	// atime records a monotonic access tick per entry slot (guarded by
	// the slot's shard lock); eviction compares shard LRU tails by tick
	// to approximate the paper's global LRU order.
	atime []int64
	tick  atomic.Int64

	head, tail uint64 // cached copies of the persistent pointers

	// sealSeq numbers commit-point seals for Options.SealHook; assigned
	// when a seal starts, reported after its Tail persist. Guarded by mu.
	sealSeq uint64

	// pinned holds the entry slots of the committing batch (replacement
	// rule 2, Section 4.6): neither copy of a committing block may be
	// evicted until its role switch is durable. Guarded by mu.
	pinned map[int32]bool

	closed atomic.Bool
	// poisoned carries the injected-crash panic value after a crash
	// fired mid-operation, so every later caller observes the crash
	// instead of running on the half-written image.
	poisoned atomic.Value

	// Group-commit leader/follower state.
	gcMu    sync.Mutex
	gcCond  *sync.Cond
	gcQueue []*commitReq
	gcBusy  bool

	// Destage queue (nil when DestageDepth == 0).
	destageCh      chan destageItem
	destageWG      sync.WaitGroup
	destagePending atomic.Int64
	destageWakeMu  sync.Mutex
	destageWake    *sync.Cond

	// obs is the observability harness (nil when Observe is off; every
	// instrumentation site branches on that nil).
	obs *obs

	serial bool // legacy one-at-a-time commit path (ablation modes)
}

// Open formats or recovers a Tinca cache on the given NVM device, backed
// by the given disk. If the device already holds a Tinca layout (matching
// magic and geometry), crash recovery runs (Section 4.5); otherwise the
// device is formatted fresh. The options are validated eagerly: a
// nonsensical configuration returns a descriptive error.
func Open(mem *pmem.Device, disk *blockdev.Device, opts Options) (*Cache, error) {
	if mem == nil || disk == nil {
		return nil, errors.New("core: Open requires a non-nil NVM device and disk")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ptrSlots := 1
	if opts.RotatePointers {
		ptrSlots = DefaultPtrSlots
	}
	lay, err := ComputeLayout(mem.Size(), opts.RingBytes, ptrSlots)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		mem:    mem,
		disk:   disk,
		lay:    lay,
		rec:    mem.Recorder(),
		opts:   opts,
		atime:  make([]int64, lay.Capacity),
		pinned: make(map[int32]bool),
		serial: opts.serialOnly(),
	}
	c.gcCond = sync.NewCond(&c.gcMu)
	c.destageWake = sync.NewCond(&c.destageWakeMu)
	if opts.Observe || opts.Tracer != nil {
		c.obs = newObs(mem.Clock(), mem.Recorder(), opts.Tracer)
	}
	for i := range c.shards {
		c.shards[i].hash = make(map[uint64]int32)
		c.shards[i].lru = newLRU(lay.Capacity)
	}
	if c.isFormatted() {
		if err := c.recover(); err != nil {
			return nil, err
		}
	} else {
		c.format()
	}
	if opts.DestageDepth > 0 {
		c.destageCh = make(chan destageItem, opts.DestageDepth)
		c.destageWG.Add(1)
		go c.destager()
	}
	return c, nil
}

// shardOf returns the shard responsible for disk block no.
func (c *Cache) shardOf(no uint64) *shard {
	return &c.shards[no&(shardCount-1)]
}

// touchLocked stamps slot i with a fresh access tick and moves it to its
// shard's MRU end. Caller holds the shard lock.
func (c *Cache) touchLocked(sh *shard, i int32) {
	c.atime[i] = c.tick.Add(1)
	sh.lru.touch(i)
}

// pushFrontLocked inserts slot i as its shard's MRU. Caller holds the
// shard lock.
func (c *Cache) pushFrontLocked(sh *shard, i int32) {
	c.atime[i] = c.tick.Add(1)
	sh.lru.pushFront(i)
}

// checkPoison re-raises an injected-crash panic observed by an earlier
// operation: after a (simulated) power failure nothing may keep running on
// the half-written image.
func (c *Cache) checkPoison() {
	if pv := c.poisoned.Load(); pv != nil {
		panic(pv)
	}
}

// poison records pv as the crash that stops all future operations.
func (c *Cache) poison(pv any) {
	c.poisoned.CompareAndSwap(nil, pv)
}

func (c *Cache) isFormatted() bool {
	return c.mem.Load8(c.lay.HeaderOff+hdrMagic) == layoutMagic &&
		c.mem.Load8(c.lay.HeaderOff+hdrVersion) == layoutVersion &&
		c.mem.Load8(c.lay.HeaderOff+hdrCapacity) == uint64(c.lay.Capacity) &&
		c.mem.Load8(c.lay.HeaderOff+hdrRingSlot) == uint64(c.lay.RingSlots) &&
		c.mem.Load8(c.lay.HeaderOff+hdrPtrSlots) == uint64(c.lay.PtrSlots)
}

// loadPointer reads a possibly-rotated pointer: the latest persisted
// value is the maximum across the rotation slots (values are monotonic
// and each store is atomic).
func (c *Cache) loadPointer(base int) uint64 {
	if c.lay.PtrSlots <= 1 {
		return c.mem.Load8(base)
	}
	var max uint64
	for i := 0; i < c.lay.PtrSlots; i++ {
		if v := c.mem.Load8(base + i*pmem.LineSize); v > max {
			max = v
		}
	}
	return max
}

func (c *Cache) format() {
	// A fresh pmem device is zeroed, so the entry table (all-invalid) and
	// the Head/Tail pointers (both zero) need no explicit pass. Persist
	// the header last so a crash mid-format is just an unformatted device.
	c.mem.Persist8(c.lay.HeadOff, 0)
	c.mem.Persist8(c.lay.TailOff, 0)
	c.mem.Store8(c.lay.HeaderOff+hdrVersion, layoutVersion)
	c.mem.Store8(c.lay.HeaderOff+hdrCapacity, uint64(c.lay.Capacity))
	c.mem.Store8(c.lay.HeaderOff+hdrRingSlot, uint64(c.lay.RingSlots))
	c.mem.Store8(c.lay.HeaderOff+hdrPtrSlots, uint64(c.lay.PtrSlots))
	c.mem.CLFlush(c.lay.HeaderOff, pmem.LineSize)
	c.mem.SFence()
	c.mem.Persist8(c.lay.HeaderOff+hdrMagic, layoutMagic)
	c.head, c.tail = 0, 0
	for b := c.lay.Capacity - 1; b >= 0; b-- {
		c.freeBlocks = append(c.freeBlocks, uint32(b))
		c.freeSlots = append(c.freeSlots, int32(b))
	}
}

// Layout exposes the computed NVM layout (for tests and tooling).
func (c *Cache) Layout() Layout { return c.lay }

// Capacity returns the number of cacheable 4KB blocks.
func (c *Cache) Capacity() int { return c.lay.Capacity }

// FreeBlocks reports how many NVM data blocks are currently unused.
func (c *Cache) FreeBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.freeBlocks)
}

// readEntry loads and decodes entry slot i from NVM.
func (c *Cache) readEntry(i int32) entry {
	return decodeEntry(c.mem.Load16(c.lay.entryOff(int(i))))
}

// writeEntry persists entry slot i with one atomic 16B store + flush +
// fence (the cmpxchg16b path of Section 4.2).
func (c *Cache) writeEntry(i int32, e entry) {
	c.mem.Persist16(c.lay.entryOff(int(i)), encodeEntry(e))
}

// storeEntry writes and flushes entry slot i without the trailing fence,
// for batch phases that amortize one fence over many entries.
func (c *Cache) storeEntry(i int32, e entry) {
	off := c.lay.entryOff(int(i))
	c.mem.Store16(off, encodeEntry(e))
	c.mem.CLFlush(off, EntrySize)
}

// clearEntry atomically invalidates entry slot i.
func (c *Cache) clearEntry(i int32) {
	c.mem.Persist16(c.lay.entryOff(int(i)), [16]byte{})
}

// allocBlock returns a free NVM data block, evicting if necessary.
// Caller holds c.mu.
func (c *Cache) allocBlock() (uint32, error) {
	if n := len(c.freeBlocks); n > 0 {
		b := c.freeBlocks[n-1]
		c.freeBlocks = c.freeBlocks[:n-1]
		return b, nil
	}
	if err := c.evictOne(); err != nil {
		return 0, err
	}
	n := len(c.freeBlocks)
	b := c.freeBlocks[n-1]
	c.freeBlocks = c.freeBlocks[:n-1]
	return b, nil
}

// allocSlot returns a free entry-table slot. The entry table has exactly
// one slot per data block and every cached block consumes at least one
// data block, so a successful allocBlock guarantees a slot exists.
func (c *Cache) allocSlot() int32 {
	n := len(c.freeSlots)
	if n == 0 {
		panic("core: entry table exhausted before data area")
	}
	s := c.freeSlots[n-1]
	c.freeSlots = c.freeSlots[:n-1]
	return s
}

// evictCandidate describes the best victim a shard offers.
type evictCandidate struct {
	sh    *shard
	slot  int32
	atime int64
}

// evictOne selects a victim approximating global LRU order — the oldest
// access tick among the shard LRU tails — skipping blocks pinned by the
// committing transaction (replacement rules of Section 4.6), and evicts
// it, writing it back to disk first when dirty. Caller holds c.mu.
func (c *Cache) evictOne() error {
	best := evictCandidate{slot: lruNil}
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		for i := sh.lru.tail; i != lruNil; i = sh.lru.prev[i] {
			e := c.readEntry(i)
			if !e.valid {
				panic(fmt.Sprintf("core: invalid entry %d on LRU list", i))
			}
			if !c.opts.DisableTxnPin && (e.role == RoleLog || c.pinned[i]) {
				// Rule 2: blocks of the committing transaction (and
				// their previous versions, which these entries still
				// reference) stay.
				continue
			}
			if best.slot == lruNil || c.atime[i] < best.atime {
				best = evictCandidate{sh: sh, slot: i, atime: c.atime[i]}
			}
			break // older slots in this shard are all pinned or absent
		}
		sh.mu.Unlock()
	}
	if best.slot == lruNil {
		return ErrNoSpace
	}
	best.sh.mu.Lock()
	defer best.sh.mu.Unlock()
	e := c.readEntry(best.slot)
	c.evictEntry(best.sh, best.slot, e)
	return nil
}

// evictEntry removes entry i from the cache. Caller holds c.mu and sh.mu;
// sh must be the shard of e.disk.
func (c *Cache) evictEntry(sh *shard, i int32, e entry) {
	if e.modified {
		buf := make([]byte, BlockSize)
		c.mem.Load(c.lay.blockOff(e.cur), buf)
		c.disk.WriteBlock(e.disk, buf)
		c.rec.Inc(metrics.CacheEvictDirty)
	}
	c.rec.Inc(metrics.CacheEvict)
	// Crash ordering: the disk write above is durable before the entry is
	// invalidated, so a crash in between only leaves a redundant dirty
	// entry, never a lost block.
	c.clearEntry(i)
	sh.lru.remove(i)
	delete(sh.hash, e.disk)
	c.freeSlots = append(c.freeSlots, i)
	c.freeBlocks = append(c.freeBlocks, e.cur)
	if e.prev != Fresh {
		// Only possible when txn pinning is disabled (ablation mode).
		c.freeBlocks = append(c.freeBlocks, e.prev)
	}
}

// Read copies the current committed contents of disk block no into p
// (BlockSize bytes). A miss populates the cache from disk (the cache
// serves reads as well as writes, Section 4.6). Read hits touch only the
// block's shard lock, so concurrent readers scale across shards.
func (c *Cache) Read(no uint64, p []byte) error {
	if len(p) != BlockSize {
		return fmt.Errorf("core: Read buffer must be %d bytes", BlockSize)
	}
	c.checkPoison()
	if c.closed.Load() {
		return ErrClosed
	}
	if c.serial {
		// Ablation modes update cached blocks in place mid-commit, so
		// reads keep the paper's full serialization.
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.readInner(no, p, false)
	}
	return c.readInner(no, p, true)
}

// readInner is the shared read path. takeGlobal selects whether the miss
// path acquires c.mu itself (concurrent mode) or the caller already holds
// it (serial mode).
func (c *Cache) readInner(no uint64, p []byte, takeGlobal bool) error {
	if hit, err := c.tryReadHit(no, p); hit {
		return err
	}
	if takeGlobal {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	if c.closed.Load() {
		return ErrClosed
	}
	// Double-check under the structural lock: a racing miss may have
	// filled the block already.
	if hit, err := c.tryReadHit(no, p); hit {
		return err
	}
	c.rec.Inc(metrics.CacheReadMiss)
	return c.fillFromDisk(no, p)
}

// tryReadHit serves no from the cache if resident, reporting whether it
// did. A block mid-seal (log role) is served from its last sealed
// version: the previous COW copy, or — for a fresh write not yet sealed —
// the disk, read around the cache.
func (c *Cache) tryReadHit(no uint64, p []byte) (bool, error) {
	sh := c.shardOf(no)
	sh.mu.Lock()
	i, ok := sh.hash[no]
	if !ok {
		sh.mu.Unlock()
		return false, nil
	}
	e := c.readEntry(i)
	if e.role == RoleLog {
		if e.prev == Fresh {
			// Freshly written, seal pending: the sealed contents are
			// still whatever the disk holds.
			sh.mu.Unlock()
			c.disk.ReadBlock(no, p)
			c.rec.Inc(metrics.CacheReadHit)
			return true, nil
		}
		// Serve the pre-seal version; no LRU touch while committing.
		c.mem.Load(c.lay.blockOff(e.prev), p)
		sh.mu.Unlock()
		c.rec.Inc(metrics.CacheReadHit)
		return true, nil
	}
	c.mem.Load(c.lay.blockOff(e.cur), p)
	c.touchLocked(sh, i)
	sh.mu.Unlock()
	c.rec.Inc(metrics.CacheReadHit)
	return true, nil
}

// fillFromDisk reads block no from disk, installs it clean in the cache
// and copies it to p if non-nil. Caller holds c.mu.
func (c *Cache) fillFromDisk(no uint64, p []byte) error {
	buf := make([]byte, BlockSize)
	c.disk.ReadBlock(no, buf)
	if p != nil {
		copy(p, buf)
	}
	b, err := c.allocBlock()
	if err != nil {
		return err
	}
	// Persist the data before the entry that points at it; otherwise a
	// crash could leave a clean-looking entry over garbage.
	c.mem.PersistRange(c.lay.blockOff(b), buf)
	i := c.allocSlot()
	sh := c.shardOf(no)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.writeEntry(i, entry{valid: true, role: RoleBuffer, modified: false, disk: no, prev: Fresh, cur: b})
	sh.hash[no] = i
	c.pushFrontLocked(sh, i)
	return nil
}

// Contains reports whether disk block no is resident (for tests).
func (c *Cache) Contains(no uint64) bool {
	sh := c.shardOf(no)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.hash[no]
	return ok
}

// FlushAll writes every dirty cached block back to disk and marks it
// clean. It is the orderly-shutdown / drain path; crash consistency never
// depends on it.
func (c *Cache) FlushAll() error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.DrainDestage()
	buf := make([]byte, BlockSize)
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		for no, i := range sh.hash {
			e := c.readEntry(i)
			if !e.modified || e.role == RoleLog {
				continue
			}
			c.mem.Load(c.lay.blockOff(e.cur), buf)
			c.disk.WriteBlock(no, buf)
			e.modified = false
			c.writeEntry(i, e)
		}
		sh.mu.Unlock()
	}
	return nil
}

// Close flushes dirty data and rejects further use.
func (c *Cache) Close() error {
	if err := c.FlushAll(); err != nil {
		return err
	}
	c.closed.Store(true)
	// Barrier: wait for any in-flight commit batch to finish before the
	// destager goes away (batches enqueue destage work under c.mu).
	c.mu.Lock()
	c.mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	if c.destageCh != nil {
		close(c.destageCh)
		c.destageWG.Wait()
	}
	return nil
}

// WriteHitRate returns cache write hits / (hits+misses) over the lifetime
// of the shared recorder (Figure 12(c) metric).
func (c *Cache) WriteHitRate() float64 {
	h := c.rec.Get(metrics.CacheWriteHit)
	m := c.rec.Get(metrics.CacheWriteMiss)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
