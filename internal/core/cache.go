package core

import (
	"errors"
	"fmt"
	"sync"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
)

// Ablation selects the commit mechanism, for the design-choice benches in
// DESIGN.md §6. The paper's Tinca is AblationNone.
type Ablation int

const (
	// AblationNone is the paper's design: role switch + COW, no double
	// writes.
	AblationNone Ablation = iota
	// AblationDoubleWrite disables role switch: every committed block is
	// written twice into NVM (once as a log copy, once to its cache
	// location), mimicking journaling inside the cache.
	AblationDoubleWrite
	// AblationUBJ mimics UBJ's commit-in-place (Section 5.4.4): a write
	// hit on a frozen block pays an extra in-NVM memcpy on the critical
	// path instead of Tinca's pointer-flip COW.
	AblationUBJ
)

// Options configure a Cache.
type Options struct {
	// RingBytes is the ring buffer size; the paper's default (1MB) when 0.
	RingBytes int
	// Ablation selects the commit mechanism (default: the paper's design).
	Ablation Ablation
	// DisableTxnPin turns off replacement rule 2 (Section 4.6): blocks of
	// the committing transaction become evictable. Only meaningful for the
	// ablation bench; unsafe for crash consistency.
	DisableTxnPin bool
	// WriteThrough propagates every committed block to disk at commit
	// time and keeps cached copies clean (the paper's default is
	// write-back; write-through trades throughput for a disk that is
	// always current).
	WriteThrough bool
	// RotatePointers spreads Head/Tail pointer updates across
	// DefaultPtrSlots cache lines instead of one fixed line each,
	// dividing the hottest-line wear accordingly (an endurance extension
	// motivated by the wear profile the endurance experiment exposes; see
	// EXPERIMENTS.md).
	RotatePointers bool
}

// Common errors.
var (
	// ErrTxnTooLarge is returned when a transaction has more blocks than
	// the ring buffer has slots.
	ErrTxnTooLarge = errors.New("core: transaction exceeds ring buffer capacity")
	// ErrNoSpace is returned when no block can be evicted to make room
	// (every resident block is pinned by the committing transaction).
	ErrNoSpace = errors.New("core: cache full of pinned blocks")
	// ErrClosed is returned by operations on a closed cache.
	ErrClosed = errors.New("core: cache closed")
)

// Cache is a transactional NVM disk cache (Tinca). It caches 4KB blocks of
// the underlying disk in NVM with a write-back policy and exports the
// transactional primitives Begin/Commit/Abort to the layer above.
//
// All public methods are safe for concurrent use; commits are serialized
// internally (one committing transaction at a time, Section 4.4), while
// running transactions build up concurrently in DRAM.
type Cache struct {
	mu   sync.Mutex
	mem  *pmem.Device
	disk *blockdev.Device
	lay  Layout
	rec  *metrics.Recorder
	opts Options

	// DRAM auxiliary structures (Section 4.6); rebuilt on startup.
	hash       map[uint64]int32 // disk block -> entry slot
	lru        *lruList
	freeBlocks []uint32 // free NVM data blocks (free block monitor)
	freeSlots  []int32  // free entry-table slots

	head, tail uint64 // cached copies of the persistent pointers

	// pinnedSlot protects the previous version of the block currently
	// being COW-committed: its entry still carries the buffer role while
	// the new copy is allocated, but replacement rule 2 (Section 4.6)
	// forbids evicting either copy of a block in the committing
	// transaction. lruNil when nothing is pinned.
	pinnedSlot int32
	closed     bool
}

// Open formats or recovers a Tinca cache on the given NVM device, backed
// by the given disk. If the device already holds a Tinca layout (matching
// magic and geometry), crash recovery runs (Section 4.5); otherwise the
// device is formatted fresh.
func Open(mem *pmem.Device, disk *blockdev.Device, opts Options) (*Cache, error) {
	ptrSlots := 1
	if opts.RotatePointers {
		ptrSlots = DefaultPtrSlots
	}
	lay, err := ComputeLayout(mem.Size(), opts.RingBytes, ptrSlots)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		mem:        mem,
		disk:       disk,
		lay:        lay,
		rec:        mem.Recorder(),
		opts:       opts,
		hash:       make(map[uint64]int32),
		lru:        newLRU(lay.Capacity),
		pinnedSlot: lruNil,
	}
	if c.isFormatted() {
		if err := c.recover(); err != nil {
			return nil, err
		}
	} else {
		c.format()
	}
	return c, nil
}

func (c *Cache) isFormatted() bool {
	return c.mem.Load8(c.lay.HeaderOff+hdrMagic) == layoutMagic &&
		c.mem.Load8(c.lay.HeaderOff+hdrVersion) == layoutVersion &&
		c.mem.Load8(c.lay.HeaderOff+hdrCapacity) == uint64(c.lay.Capacity) &&
		c.mem.Load8(c.lay.HeaderOff+hdrRingSlot) == uint64(c.lay.RingSlots) &&
		c.mem.Load8(c.lay.HeaderOff+hdrPtrSlots) == uint64(c.lay.PtrSlots)
}

// loadPointer reads a possibly-rotated pointer: the latest persisted
// value is the maximum across the rotation slots (values are monotonic
// and each store is atomic).
func (c *Cache) loadPointer(base int) uint64 {
	if c.lay.PtrSlots <= 1 {
		return c.mem.Load8(base)
	}
	var max uint64
	for i := 0; i < c.lay.PtrSlots; i++ {
		if v := c.mem.Load8(base + i*pmem.LineSize); v > max {
			max = v
		}
	}
	return max
}

func (c *Cache) format() {
	// A fresh pmem device is zeroed, so the entry table (all-invalid) and
	// the Head/Tail pointers (both zero) need no explicit pass. Persist
	// the header last so a crash mid-format is just an unformatted device.
	c.mem.Persist8(c.lay.HeadOff, 0)
	c.mem.Persist8(c.lay.TailOff, 0)
	c.mem.Store8(c.lay.HeaderOff+hdrVersion, layoutVersion)
	c.mem.Store8(c.lay.HeaderOff+hdrCapacity, uint64(c.lay.Capacity))
	c.mem.Store8(c.lay.HeaderOff+hdrRingSlot, uint64(c.lay.RingSlots))
	c.mem.Store8(c.lay.HeaderOff+hdrPtrSlots, uint64(c.lay.PtrSlots))
	c.mem.CLFlush(c.lay.HeaderOff, pmem.LineSize)
	c.mem.SFence()
	c.mem.Persist8(c.lay.HeaderOff+hdrMagic, layoutMagic)
	c.head, c.tail = 0, 0
	for b := c.lay.Capacity - 1; b >= 0; b-- {
		c.freeBlocks = append(c.freeBlocks, uint32(b))
		c.freeSlots = append(c.freeSlots, int32(b))
	}
}

// Layout exposes the computed NVM layout (for tests and tooling).
func (c *Cache) Layout() Layout { return c.lay }

// Capacity returns the number of cacheable 4KB blocks.
func (c *Cache) Capacity() int { return c.lay.Capacity }

// FreeBlocks reports how many NVM data blocks are currently unused.
func (c *Cache) FreeBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.freeBlocks)
}

// readEntry loads and decodes entry slot i from NVM.
func (c *Cache) readEntry(i int32) entry {
	return decodeEntry(c.mem.Load16(c.lay.entryOff(int(i))))
}

// writeEntry persists entry slot i with one atomic 16B store + flush +
// fence (the cmpxchg16b path of Section 4.2).
func (c *Cache) writeEntry(i int32, e entry) {
	c.mem.Persist16(c.lay.entryOff(int(i)), encodeEntry(e))
}

// clearEntry atomically invalidates entry slot i.
func (c *Cache) clearEntry(i int32) {
	c.mem.Persist16(c.lay.entryOff(int(i)), [16]byte{})
}

// allocBlock returns a free NVM data block, evicting if necessary.
// Caller holds c.mu.
func (c *Cache) allocBlock() (uint32, error) {
	if n := len(c.freeBlocks); n > 0 {
		b := c.freeBlocks[n-1]
		c.freeBlocks = c.freeBlocks[:n-1]
		return b, nil
	}
	if err := c.evictOne(); err != nil {
		return 0, err
	}
	n := len(c.freeBlocks)
	b := c.freeBlocks[n-1]
	c.freeBlocks = c.freeBlocks[:n-1]
	return b, nil
}

// allocSlot returns a free entry-table slot. The entry table has exactly
// one slot per data block and every cached block consumes at least one
// data block, so a successful allocBlock guarantees a slot exists.
func (c *Cache) allocSlot() int32 {
	n := len(c.freeSlots)
	if n == 0 {
		panic("core: entry table exhausted before data area")
	}
	s := c.freeSlots[n-1]
	c.freeSlots = c.freeSlots[:n-1]
	return s
}

// evictOne selects the LRU victim that is not pinned by the committing
// transaction (replacement rules of Section 4.6) and evicts it, writing it
// back to disk first when dirty. Caller holds c.mu.
func (c *Cache) evictOne() error {
	for i := c.lru.tail; i != lruNil; i = c.lru.prev[i] {
		e := c.readEntry(i)
		if !e.valid {
			panic(fmt.Sprintf("core: invalid entry %d on LRU list", i))
		}
		if e.role == RoleLog && !c.opts.DisableTxnPin {
			// Rule 2: blocks of the committing transaction (and their
			// previous versions, which this entry still references) stay.
			continue
		}
		if i == c.pinnedSlot && !c.opts.DisableTxnPin {
			// The entry still reads as a buffer block, but it is the hit
			// target of the in-flight COW commit: rule 2 protects both of
			// its copies until the log-role entry is persisted.
			continue
		}
		c.evictEntry(i, e)
		return nil
	}
	return ErrNoSpace
}

// evictEntry removes entry i from the cache. Caller holds c.mu.
func (c *Cache) evictEntry(i int32, e entry) {
	if e.modified {
		buf := make([]byte, BlockSize)
		c.mem.Load(c.lay.blockOff(e.cur), buf)
		c.disk.WriteBlock(e.disk, buf)
		c.rec.Inc(metrics.CacheEvictDirty)
	}
	c.rec.Inc(metrics.CacheEvict)
	// Crash ordering: the disk write above is durable before the entry is
	// invalidated, so a crash in between only leaves a redundant dirty
	// entry, never a lost block.
	c.clearEntry(i)
	c.lru.remove(i)
	delete(c.hash, e.disk)
	c.freeSlots = append(c.freeSlots, i)
	c.freeBlocks = append(c.freeBlocks, e.cur)
	if e.prev != Fresh {
		// Only possible when txn pinning is disabled (ablation mode).
		c.freeBlocks = append(c.freeBlocks, e.prev)
	}
}

// Read copies the current committed contents of disk block no into p
// (BlockSize bytes). A miss populates the cache from disk (the cache
// serves reads as well as writes, Section 4.6).
func (c *Cache) Read(no uint64, p []byte) error {
	if len(p) != BlockSize {
		return fmt.Errorf("core: Read buffer must be %d bytes", BlockSize)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if i, ok := c.hash[no]; ok {
		e := c.readEntry(i)
		c.mem.Load(c.lay.blockOff(e.cur), p)
		c.lru.touch(i)
		c.rec.Inc(metrics.CacheReadHit)
		return nil
	}
	c.rec.Inc(metrics.CacheReadMiss)
	return c.fillFromDisk(no, p)
}

// fillFromDisk reads block no from disk, installs it clean in the cache
// and copies it to p if non-nil. Caller holds c.mu.
func (c *Cache) fillFromDisk(no uint64, p []byte) error {
	buf := make([]byte, BlockSize)
	c.disk.ReadBlock(no, buf)
	if p != nil {
		copy(p, buf)
	}
	b, err := c.allocBlock()
	if err != nil {
		return err
	}
	// Persist the data before the entry that points at it; otherwise a
	// crash could leave a clean-looking entry over garbage.
	c.mem.PersistRange(c.lay.blockOff(b), buf)
	i := c.allocSlot()
	c.writeEntry(i, entry{valid: true, role: RoleBuffer, modified: false, disk: no, prev: Fresh, cur: b})
	c.hash[no] = i
	c.lru.pushFront(i)
	return nil
}

// Contains reports whether disk block no is resident (for tests).
func (c *Cache) Contains(no uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.hash[no]
	return ok
}

// FlushAll writes every dirty cached block back to disk and marks it
// clean. It is the orderly-shutdown / drain path; crash consistency never
// depends on it.
func (c *Cache) FlushAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	buf := make([]byte, BlockSize)
	for no, i := range c.hash {
		e := c.readEntry(i)
		if !e.modified {
			continue
		}
		c.mem.Load(c.lay.blockOff(e.cur), buf)
		c.disk.WriteBlock(no, buf)
		e.modified = false
		c.writeEntry(i, e)
	}
	return nil
}

// Close flushes dirty data and rejects further use.
func (c *Cache) Close() error {
	if err := c.FlushAll(); err != nil {
		return err
	}
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

// WriteHitRate returns cache write hits / (hits+misses) over the lifetime
// of the shared recorder (Figure 12(c) metric).
func (c *Cache) WriteHitRate() float64 {
	h := c.rec.Get(metrics.CacheWriteHit)
	m := c.rec.Get(metrics.CacheWriteMiss)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
