package core

import (
	"fmt"
	"sync"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// TestConcurrentCommitStress drives 8 goroutines through mixed
// Begin/Write/Commit/Abort/Read traffic. Run under -race this is the
// primary data-race check for the sharded hot path and the group-commit
// pipeline; functionally it checks that private blocks end with their
// writer's last value, contended blocks end with *some* writer's value,
// and the structural invariants hold afterwards.
func TestConcurrentCommitStress(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"write-back", Options{RingBytes: 8192}},
		{"timed-batch", Options{RingBytes: 8192, GroupCommit: GroupCommit{MaxBatch: 8, MaxWaitNS: 20_000}}},
		{"write-through-destage", Options{RingBytes: 8192, WriteThrough: true, DestageDepth: 4}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			clock := sim.NewClock()
			rec := metrics.NewRecorder()
			mem := pmem.New(8<<20, pmem.NVDIMM, clock, rec)
			disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
			c, err := Open(mem, disk, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}

			const (
				workers  = 8
				rounds   = 60
				hotSpan  = 16  // blocks every worker fights over
				privSpan = 32  // blocks private to one worker
				privBase = 100 // private ranges start here
			)
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := sim.NewRand(int64(1000 + g))
					for i := 0; i < rounds; i++ {
						txn := c.Begin()
						// One contended write, one or two private writes.
						txn.Write(uint64(rng.Intn(hotSpan)), blockOf(byte(g+1)))
						no := uint64(privBase + g*privSpan + rng.Intn(privSpan))
						txn.Write(no, blockOf(byte(g+1)))
						if i%7 == 3 {
							txn.Abort()
							continue
						}
						if err := txn.Commit(); err != nil {
							panic(fmt.Sprintf("worker %d commit %d: %v", g, i, err))
						}
						// Interleave reads on the sharded read path.
						p := make([]byte, BlockSize)
						if err := c.Read(uint64(rng.Intn(hotSpan)), p); err != nil {
							panic(fmt.Sprintf("worker %d read: %v", g, err))
						}
					}
					// Final marker commit: private block 0 gets the last word.
					txn := c.Begin()
					txn.Write(uint64(privBase+g*privSpan), blockOf(byte(g+1)))
					if err := txn.Commit(); err != nil {
						panic(fmt.Sprintf("worker %d final commit: %v", g, err))
					}
				}()
			}
			wg.Wait()

			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for g := 0; g < workers; g++ {
				got := mustRead(t, c, uint64(privBase+g*privSpan))[0]
				if got != byte(g+1) {
					t.Fatalf("worker %d private block = %d, want %d", g, got, g+1)
				}
			}
			for no := uint64(0); no < hotSpan; no++ {
				got := mustRead(t, c, no)[0]
				if got < 1 || got > workers {
					t.Fatalf("hot block %d = %d, not a worker value", no, got)
				}
			}

			st := c.Stats()
			if st.Commits == 0 || st.GroupSeals == 0 {
				t.Fatalf("no group seals recorded: %+v", st)
			}
			if st.GroupedTxns != st.Commits {
				t.Fatalf("grouped %d != commits %d", st.GroupedTxns, st.Commits)
			}
			if st.GroupSeals > st.GroupedTxns {
				t.Fatalf("more seals (%d) than transactions (%d)", st.GroupSeals, st.GroupedTxns)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			// Write-through (sync or destaged): after Close the disk holds
			// every final value.
			if cfg.opts.WriteThrough {
				p := make([]byte, BlockSize)
				for g := 0; g < workers; g++ {
					disk.ReadBlock(uint64(privBase+g*privSpan), p)
					if p[0] != byte(g+1) {
						t.Fatalf("disk: worker %d private block = %d", g, p[0])
					}
				}
			}
		})
	}
}

// TestConcurrentCrashRecovers injects a crash at every simulated-NVM
// operation boundary while four goroutines commit concurrently (so the
// crash lands mid-batch in the group-commit seal with high probability),
// then materializes an adversarial crash image and recovers. Every
// acknowledged commit must survive; the recovered value may only be the
// acked one or a newer value the same worker wrote afterwards (a later
// batch that sealed before the crash).
func TestConcurrentCrashRecovers(t *testing.T) {
	const (
		workers = 4
		span    = 8  // blocks per worker
		rounds  = 20 // txns per worker
	)
	rng := sim.NewRand(99)
	for k := int64(0); ; k++ {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(2<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		c, err := Open(mem, disk, Options{RingBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}

		// acked[w][b] is the last value worker w saw Commit acknowledge
		// for its block b; written[w][b] the last value it ever staged.
		acked := make([][]byte, workers)
		written := make([][]byte, workers)
		for w := range acked {
			acked[w] = make([]byte, span)
			written[w] = make([]byte, span)
		}

		mem.ArmCrash(k)
		var wg sync.WaitGroup
		anyCrashed := false
		var crashMu sync.Mutex
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each worker absorbs its own re-broadcast crash panic.
				crashed, _ := pmem.CatchCrash(func() {
					for i := 0; i < rounds; i++ {
						txn := c.Begin()
						b := i % span
						v := byte(i + 1)
						written[w][b] = v
						txn.Write(uint64(w*span+b), blockOf(v))
						if err := txn.Commit(); err != nil {
							panic(fmt.Sprintf("worker %d commit: %v", w, err))
						}
						acked[w][b] = v
					}
				})
				if crashed {
					crashMu.Lock()
					anyCrashed = true
					crashMu.Unlock()
				}
			}()
		}
		wg.Wait()

		if !anyCrashed {
			mem.DisarmCrash()
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			t.Logf("concurrent protocol covered in %d operations", k)
			return
		}

		// Power failure: persistent image plus random line evictions.
		mem.Crash(rng, 0.5)
		rc, err := Open(mem, disk, Options{RingBytes: 4096})
		if err != nil {
			t.Fatalf("k=%d recovery: %v", k, err)
		}
		if err := rc.CheckInvariants(); err != nil {
			t.Fatalf("k=%d after recovery: %v", k, err)
		}
		for w := 0; w < workers; w++ {
			for b := 0; b < span; b++ {
				if acked[w][b] == 0 {
					continue
				}
				got := mustRead(t, rc, uint64(w*span+b))[0]
				if got < acked[w][b] || got > written[w][b] {
					t.Fatalf("k=%d worker %d block %d = %d, want in [%d,%d]",
						k, w, b, got, acked[w][b], written[w][b])
				}
			}
		}
		// Recovered cache stays functional.
		post := rc.Begin()
		post.Write(500, blockOf('Z'))
		if err := post.Commit(); err != nil {
			t.Fatalf("k=%d post-recovery commit: %v", k, err)
		}
		// Cover the early boundaries densely, then accelerate: the batch
		// protocol repeats the same per-block pattern.
		k += k / 16
	}
}
