//go:build tincadebug

package core

// debugAlloc enables the allocator's double-free detector (see
// alloc_check_off.go for the production default).
const debugAlloc = true
