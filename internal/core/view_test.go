package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/errs"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

func openViewTestCache(t *testing.T, opts Options) *Cache {
	t.Helper()
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	c, err := Open(mem, disk, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReadViewBasics covers the View contract on a warm cache: zero-copy
// hits alias NVM and match Read byte for byte, Close is exactly-once,
// errors carry the shared sentinels, and the open-view gauge plus the
// pinned-view invariants stay balanced.
func TestReadViewBasics(t *testing.T) {
	c := openViewTestCache(t, Options{RingBytes: 4096})

	tx := c.Begin()
	tx.Write(7, blockOf('v'))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	v, err := c.ReadView(7)
	if err != nil {
		t.Fatal(err)
	}
	if !v.ZeroCopy() {
		t.Fatal("hit view should be zero-copy")
	}
	if v.BlockNo() != 7 {
		t.Fatalf("BlockNo = %d", v.BlockNo())
	}
	if !bytes.Equal(v.Bytes(), mustRead(t, c, 7)) {
		t.Fatal("view bytes differ from Read")
	}
	if got := c.OpenViews(); got != 1 {
		t.Fatalf("OpenViews = %d, want 1", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants with an open view: %v", err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if v.Bytes() != nil {
		t.Fatal("Bytes after Close should be nil")
	}
	if err := v.Close(); !errors.Is(err, errs.ErrViewExpired) {
		t.Fatalf("double Close = %v, want ErrViewExpired", err)
	}
	if got := c.OpenViews(); got != 0 {
		t.Fatalf("OpenViews after Close = %d", got)
	}

	// Miss path: a cold block fills and serves a view.
	mv, err := c.ReadView(9999)
	if err != nil {
		t.Fatal(err)
	}
	if err := mv.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := c.ReadView(c.disk.Blocks()); !errors.Is(err, errs.ErrOutOfRange) {
		t.Fatalf("out-of-range ReadView = %v, want ErrOutOfRange", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.ZeroCopyViews == 0 {
		t.Fatalf("no zero-copy views counted: %+v", st)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadView(7); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("ReadView on closed cache = %v, want ErrClosed", err)
	}
}

// TestReadViewCopyModes checks the configurations that must degrade to
// private-copy views: DisableZeroCopy, and the serial ablations (which
// mutate cached bytes in place, so aliasing would expose torn state).
func TestReadViewCopyModes(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"disable-zero-copy", Options{RingBytes: 4096, DisableZeroCopy: true}},
		{"serial-double-write", Options{RingBytes: 4096, Ablation: AblationDoubleWrite}},
		{"serial-ubj", Options{RingBytes: 4096, Ablation: AblationUBJ}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			c := openViewTestCache(t, cfg.opts)
			tx := c.Begin()
			tx.Write(3, blockOf('c'))
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			v, err := c.ReadView(3)
			if err != nil {
				t.Fatal(err)
			}
			if v.ZeroCopy() {
				t.Fatal("view should be a private copy in this mode")
			}
			if !bytes.Equal(v.Bytes(), mustRead(t, c, 3)) {
				t.Fatal("copied view bytes differ from Read")
			}
			if err := v.Close(); err != nil {
				t.Fatal(err)
			}
			st := c.Stats()
			if st.CopiedViews == 0 || st.ZeroCopyViews != 0 {
				t.Fatalf("want copied views only, got %+v", st)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReadViewPinStability is the core safety property: the bytes behind
// an open view must not change — not when the block is COW-overwritten,
// not when it is evicted, not when its NVM block is recycled by later
// fills. The view of value v must still read v (every word) at Close
// time, long after the cache has moved on.
func TestReadViewPinStability(t *testing.T) {
	c := openViewTestCache(t, Options{RingBytes: 4096})

	tx := c.Begin()
	tx.Write(1, wordBlock(1))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := c.ReadView(1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.ZeroCopy() {
		t.Fatal("expected a zero-copy view")
	}

	// Overwrite the viewed block (COW: the old NVM block becomes free
	// only when the view drops its pin)...
	tx = c.Begin()
	tx.Write(1, wordBlock(2))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// ...then churn the whole cache several times over so the freed block
	// would be recycled if the pin were ignored.
	p := make([]byte, BlockSize)
	for n := 0; n < 4*c.Capacity(); n++ {
		if err := c.Read(uint64(100+n), p); err != nil {
			t.Fatal(err)
		}
	}

	for off := 0; off < BlockSize; off += 8 {
		if w := binary.LittleEndian.Uint64(v.Bytes()[off:]); w != 1 {
			t.Fatalf("pinned view changed under churn: word[%d] = %d, want 1", off/8, w)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants with pinned orphan: %v", err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ViewDeferredFrees == 0 {
		t.Fatalf("overwriting a viewed block should defer its free: %+v", st)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after orphan release: %v", err)
	}
	if got := mustRead(t, c, 1); binary.LittleEndian.Uint64(got) != 2 {
		t.Fatal("committed value lost")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadViewStress races zero-copy views against a committer COWing the
// hot set and a cold scanner forcing eviction. Each reader holds its view
// open across unrelated traffic and verifies at close time that the
// pinned bytes are an unchanged, untorn snapshot of a single committed
// version. Run under -race this is the data-race check for the pin
// protocol (view.go's Dekker handshake with the evictor and committer).
func TestReadViewStress(t *testing.T) {
	c := openViewTestCache(t, Options{RingBytes: 4096})

	const (
		readers   = 8
		hotSpan   = 16
		readsEach = 2000
		coldBase  = 1000
	)
	coldSpan := c.Capacity()
	var started atomic.Int64
	var stop atomic.Bool
	var readerWG, auxWG sync.WaitGroup

	for g := 0; g < readers; g++ {
		g := g
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			rng := sim.NewRand(int64(700 + g))
			p := make([]byte, BlockSize)
			var held View
			var heldVal uint64
			check := func(v *View, when string) {
				b := v.Bytes()
				val := binary.LittleEndian.Uint64(b)
				for off := 8; off < BlockSize; off += 8 {
					if w := binary.LittleEndian.Uint64(b[off:]); w != val {
						panic(fmt.Sprintf("reader %d: torn view (%s) of block %d: word[0]=%d word[%d]=%d",
							g, when, v.BlockNo(), val, off/8, w))
					}
				}
				if s := started.Load(); val > uint64(s) {
					panic(fmt.Sprintf("reader %d: view (%s) = %d but only %d commits started", g, when, val, s))
				}
			}
			for i := 0; i < readsEach; i++ {
				v, err := c.ReadView(uint64(rng.Intn(hotSpan)))
				if err != nil {
					panic(fmt.Sprintf("reader %d: %v", g, err))
				}
				check(&v, "open")
				switch i % 3 {
				case 0:
					// Close immediately.
					check(&v, "close")
					if err := v.Close(); err != nil {
						panic(err)
					}
				case 1:
					// Hold the view across later traffic; the previous held
					// view must still read its original value.
					if held.Bytes() != nil {
						b := held.Bytes()
						if got := binary.LittleEndian.Uint64(b); got != heldVal {
							panic(fmt.Sprintf("reader %d: held view of block %d drifted: %d -> %d",
								g, held.BlockNo(), heldVal, got))
						}
						check(&held, "held")
						if err := held.Close(); err != nil {
							panic(err)
						}
					}
					held = v
					heldVal = binary.LittleEndian.Uint64(v.Bytes())
				case 2:
					// Interleave a cold read to force churn, then re-check.
					if err := c.Read(uint64(coldBase+rng.Intn(coldSpan)), p); err != nil {
						panic(err)
					}
					check(&v, "after-churn")
					if err := v.Close(); err != nil {
						panic(err)
					}
				}
			}
			if held.Bytes() != nil {
				if err := held.Close(); err != nil {
					panic(err)
				}
			}
		}()
	}

	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for n := 1; !stop.Load(); n++ {
			v := started.Add(1)
			tx := c.Begin()
			tx.Write(uint64(n%hotSpan), wordBlock(uint64(v)))
			if err := tx.Commit(); err != nil {
				panic(fmt.Sprintf("writer: %v", err))
			}
		}
	}()
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		p := make([]byte, BlockSize)
		for n := 0; !stop.Load(); n++ {
			if err := c.Read(uint64(coldBase+n%coldSpan), p); err != nil {
				panic(fmt.Sprintf("scanner: %v", err))
			}
		}
	}()

	readerWG.Wait()
	stop.Store(true)
	auxWG.Wait()

	if got := c.OpenViews(); got != 0 {
		t.Fatalf("OpenViews = %d after all readers closed", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ZeroCopyViews == 0 {
		t.Fatalf("stress never took the zero-copy path: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIndexResizeUnderLoad starts the bucket index at its 64-cell floor
// (IndexBuckets 8 rounds up to it) on a cache big enough that each shard
// holds more live mappings than the 3/4 grow trigger, and drives a
// capacity-overflowing working set through concurrent readers, view
// holders and a committer, so lock-free lookups keep overlapping
// incremental resizes and eviction churn keeps recycling tombstones. Run
// under -race this is the epoch-reclamation check for internal/index;
// functionally it requires the index to have actually grown and every
// mapping to have survived.
func TestIndexResizeUnderLoad(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(4<<20, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	c, err := Open(mem, disk, Options{RingBytes: 4096, IndexBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers   = 6
		readsEach = 3000
	)
	span := 2 * c.Capacity() // enough distinct blocks to force many grows
	var stop atomic.Bool
	var readerWG, auxWG sync.WaitGroup

	for g := 0; g < readers; g++ {
		g := g
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			rng := sim.NewRand(int64(40 + g))
			p := make([]byte, BlockSize)
			for i := 0; i < readsEach; i++ {
				no := uint64(rng.Intn(span))
				if i%4 == 0 {
					v, err := c.ReadView(no)
					if err != nil {
						panic(fmt.Sprintf("reader %d: %v", g, err))
					}
					if err := v.Close(); err != nil {
						panic(err)
					}
				} else if err := c.Read(no, p); err != nil {
					panic(fmt.Sprintf("reader %d: %v", g, err))
				}
			}
		}()
	}
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		rng := sim.NewRand(99)
		for !stop.Load() {
			tx := c.Begin()
			tx.Write(uint64(rng.Intn(span)), blockOf('w'))
			if err := tx.Commit(); err != nil {
				panic(fmt.Sprintf("writer: %v", err))
			}
		}
	}()

	readerWG.Wait()
	stop.Store(true)
	auxWG.Wait()

	st := c.Stats()
	if st.IndexGrows == 0 {
		t.Fatalf("index never grew from IndexBuckets=8: %+v", st)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashSweepIndexParity re-runs a per-boundary crash sweep with the
// bucket index and with the sync.Map baseline and requires the crash
// boundary, the adversarial crash image and the recovered contents to be
// identical: the index is pure DRAM bookkeeping and must not influence
// the persistence-op sequence at all.
func TestCrashSweepIndexParity(t *testing.T) {
	const span = 6

	runVariant := func(k int64, syncMap bool) (crashed bool, state []byte, img []byte) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		opts := Options{RingBytes: 4096, SyncMapIndex: syncMap}
		if !syncMap {
			opts.IndexBuckets = 8 // force resizes during the workload
		}
		c, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatal(err)
		}
		setup := c.Begin()
		for i := uint64(0); i < span; i++ {
			setup.Write(i, blockOf('A'))
		}
		if err := setup.Commit(); err != nil {
			t.Fatal(err)
		}

		mem.ArmCrash(k)
		crashed, _ = pmem.CatchCrash(func() {
			p := make([]byte, BlockSize)
			for i := 0; i < span; i++ {
				tx := c.Begin()
				tx.Write(uint64(i), blockOf(byte('B'+i)))
				if err := tx.Commit(); err != nil {
					panic(fmt.Sprintf("commit %d: %v", i, err))
				}
				// Misses widen the index so the bucket variant resizes
				// mid-sweep; hits exercise both lookup paths.
				for j := 0; j <= i; j++ {
					if err := c.Read(uint64(span+10*i+j), p); err != nil {
						panic(fmt.Sprintf("miss read: %v", err))
					}
					if err := c.Read(uint64(j), p); err != nil {
						panic(fmt.Sprintf("hit read: %v", err))
					}
				}
			}
		})
		if !crashed {
			mem.DisarmCrash()
			return false, nil, nil
		}
		mem.Crash(sim.NewRand(7000+k), 0.5)
		rc, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatalf("k=%d syncMap=%v recovery: %v", k, syncMap, err)
		}
		if err := rc.CheckInvariants(); err != nil {
			t.Fatalf("k=%d syncMap=%v after recovery: %v", k, syncMap, err)
		}
		for i := uint64(0); i < span; i++ {
			state = append(state, mustRead(t, rc, i)...)
		}
		return true, state, mem.SnapshotPersist()
	}

	for k := int64(0); ; k++ {
		bCrashed, bState, bImg := runVariant(k, false)
		mCrashed, mState, mImg := runVariant(k, true)
		if bCrashed != mCrashed {
			t.Fatalf("k=%d: bucket crashed=%v but sync.Map crashed=%v — persist-op sequences diverged",
				k, bCrashed, mCrashed)
		}
		if !bCrashed {
			t.Logf("index parity sweep covered %d boundaries", k)
			return
		}
		if !bytes.Equal(bImg, mImg) {
			t.Fatalf("k=%d: post-recovery persistent images differ between indexes", k)
		}
		if !bytes.Equal(bState, mState) {
			t.Fatalf("k=%d: recovered block contents differ between indexes", k)
		}
		if k > 600 {
			k += 23
		}
	}
}
