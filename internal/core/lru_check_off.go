//go:build !tincadebug

package core

// debugLRU gates cheap O(1) structural assertions on LRU list operations.
// Production builds compile them out; build with -tags tincadebug to keep
// the hot-path panic checks (CI runs the race tests that way). The O(n)
// validate walk in lru.go is independent of this flag and stays available
// to tests unconditionally.
const debugLRU = false
