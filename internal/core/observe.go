package core

import (
	"sync/atomic"

	"tinca/internal/metrics"
	"tinca/internal/sim"
)

// obs is the cache's observability harness: per-phase latency histograms
// for the commit pipeline, the destager and recovery, plus an optional
// span tracer. It exists only when Options.Observe (or a Tracer) was
// given, so the hot path pays exactly one nil check per instrumentation
// site when observability is off — the acceptance bar of the ROADMAP's
// "as fast as the hardware allows" is judged against the uninstrumented
// number.
//
// Durations are simulated nanoseconds: deltas of the shared sim.Clock
// around each phase. On a single committer that is exactly the phase's
// charged service time; with concurrent committers the delta also counts
// time charged by other goroutines while the phase ran, which is the
// simulated analogue of wall-clock contention and is precisely what the
// commit-phase breakdown experiment wants to expose. Histograms and spans
// never advance the clock themselves, so enabling observability does not
// perturb the simulated results it reports.
type obs struct {
	clock *sim.Clock
	tr    *metrics.Tracer
	seals atomic.Uint64 // seal ids for span grouping

	wait, absorb, data, entries, ring, roleSw, tail, seal *metrics.Histogram
	total, destage, evict, recovery                       *metrics.Histogram
	recScan, recRedo, recUndo, recRebuild                 *metrics.Histogram
	ckpt, ringSeal                                        *metrics.Histogram

	// readRetry counts seqlock retries per successful fast-path hit that
	// needed at least one (a count histogram, not nanoseconds).
	readRetry *metrics.Histogram
}

// newObs resolves every histogram once so the hot path never touches the
// registry map.
func newObs(clock *sim.Clock, rec *metrics.Recorder, tr *metrics.Tracer) *obs {
	return &obs{
		clock:      clock,
		tr:         tr,
		wait:       rec.Hist(metrics.HistCommitWait),
		absorb:     rec.Hist(metrics.HistCommitAbsorb),
		data:       rec.Hist(metrics.HistCommitData),
		entries:    rec.Hist(metrics.HistCommitEntries),
		ring:       rec.Hist(metrics.HistCommitRing),
		roleSw:     rec.Hist(metrics.HistCommitSwitch),
		tail:       rec.Hist(metrics.HistCommitTail),
		seal:       rec.Hist(metrics.HistCommitSeal),
		total:      rec.Hist(metrics.HistCommitTotal),
		destage:    rec.Hist(metrics.HistDestageWrite),
		evict:      rec.Hist(metrics.HistEvictBatch),
		recovery:   rec.Hist(metrics.HistRecovery),
		recScan:    rec.Hist(metrics.HistRecoveryScan),
		recRedo:    rec.Hist(metrics.HistRecoveryRedo),
		recUndo:    rec.Hist(metrics.HistRecoveryUndo),
		recRebuild: rec.Hist(metrics.HistRecoveryRebuild),
		ckpt:       rec.Hist(metrics.HistCheckpoint),
		ringSeal:   rec.Hist(metrics.HistCommitRingSeal),
		readRetry:  rec.Hist(metrics.HistReadHitRetry),
	}
}

// now reads the simulated clock in ns.
func (o *obs) now() int64 { return int64(o.clock.Now()) }

// gid returns the calling goroutine's id when tracing is on (spans carry
// it as the trace thread), and 0 otherwise — histograms alone never pay
// the runtime.Stack parse.
func (o *obs) gid() int64 {
	if o.tr.Enabled() {
		return metrics.GoroutineID()
	}
	return 0
}

// phase records one phase duration and, when tracing, emits a span.
func (o *obs) phase(h *metrics.Histogram, id uint64, name string, startNS int64, g int64) int64 {
	end := o.now()
	h.Record(end - startNS)
	if o.tr.Enabled() {
		o.tr.Emit(id, name, startNS, end-startNS, g)
	}
	return end
}

// Span/phase names used by the tracer (histograms use the metrics.Hist*
// constants; spans use short names so trace viewers stay readable).
const (
	spanWait       = "seal.wait"
	spanAbsorb     = "seal.absorb"
	spanData       = "seal.data"
	spanEntries    = "seal.entries"
	spanRing       = "seal.ring"
	spanSwitch     = "seal.switch"
	spanTail       = "seal.tail"
	spanSeal       = "seal"
	spanCommit     = "commit"
	spanSerial     = "commit.serial"
	spanDestage    = "destage.write"
	spanEvictBatch = "evict.batch"
	spanRecover    = "recovery"
	spanCkpt       = "ckpt.write"
	spanRingSeal   = "seal.ring_seal"

	spanRecoverScan    = "recovery.scan"
	spanRecoverRedo    = "recovery.redo"
	spanRecoverUndo    = "recovery.undo"
	spanRecoverRebuild = "recovery.rebuild"
)

// PhaseLatency is one named histogram digest surfaced through CacheStats.
type PhaseLatency struct {
	Phase string
	metrics.LatencySummary
}

// phaseLatencies builds the typed per-phase digest for Stats. Ordering
// follows the pipeline: wait, absorb, data, entries, ring, switch, tail,
// then the aggregates. Phases with no samples are skipped.
func (o *obs) phaseLatencies() []PhaseLatency {
	if o == nil {
		return nil
	}
	hs := []*metrics.Histogram{o.wait, o.absorb, o.data, o.entries, o.ring, o.roleSw, o.tail, o.seal, o.ringSeal, o.total, o.destage, o.evict, o.recovery, o.recScan, o.recRedo, o.recUndo, o.recRebuild, o.ckpt}
	out := make([]PhaseLatency, 0, len(hs))
	for _, h := range hs {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		out = append(out, PhaseLatency{Phase: s.Name, LatencySummary: s.Summary()})
	}
	return out
}
