//go:build tincadebug

package core

// debugLRU enables the O(1) structural assertions on LRU list operations
// (see lru_check_off.go for the production default).
const debugLRU = true
