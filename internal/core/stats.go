package core

import "tinca/internal/metrics"

// CacheStats is a typed snapshot of the cache-level counters. It replaces
// string-keyed metrics.Snapshot lookups on the public surface; the
// Recorder remains available for experiment drivers that need raw
// counters.
type CacheStats struct {
	// Hit/miss accounting (write side counts distinct blocks per seal).
	ReadHits    int64
	ReadMisses  int64
	WriteHits   int64
	WriteMisses int64

	// Lock-free read-hit fast path. ReadHitFast + ReadHitSlow == ReadHits;
	// SeqlockRetries counts version-change retries, TouchRingDrops the LRU
	// promotions dropped on a full ring, TouchBatchDrained the queued
	// promotions applied to the exact list.
	ReadHitFast       int64
	ReadHitSlow       int64
	SeqlockRetries    int64
	TouchRingDrops    int64
	TouchBatchDrained int64

	// Zero-copy read views (view.go). ZeroCopyViews alias pinned NVM
	// bytes; CopiedViews fell back to a private copy (serial/ablation
	// modes, DisableZeroCopy, mid-seal fresh blocks). ViewDeferredFrees
	// counts block frees handed off to a view's last unpin; OpenViews is
	// the live gauge of unclosed views.
	ZeroCopyViews     int64
	CopiedViews       int64
	ViewDeferredFrees int64
	OpenViews         int64

	// IndexGrows counts incremental resizes of the sharded bucket index
	// since Open (0 when running on the sync.Map baseline).
	IndexGrows int64

	// Eviction and residency.
	Evictions      int64
	DirtyEvictions int64
	// Concurrent miss pipeline: who reclaimed (background watermark
	// evictor vs. foreground direct fallback), how often optimistic miss
	// fills lost a race or retried, and allocator refill traffic.
	BgEvictions     int64
	DirectEvictions int64
	FillRaces       int64
	AllocRefills    int64

	// Transactions.
	Commits   int64
	Aborts    int64
	Blocks    int64 // data blocks committed
	COWBlocks int64 // blocks that needed a COW copy

	// Group commit.
	GroupSeals     int64 // coalesced ring-buffer seals
	GroupedTxns    int64 // transactions absorbed into those seals
	AbsorbedBlocks int64 // duplicate blocks absorbed within seals

	// Multi-ring commit (CommitRings > 1; nil/zero otherwise).
	// RingSeals[r] counts seals ring r participated in (a cross-shard
	// seal counts once per participating ring); RingQueueDepth[r] is the
	// live per-ring commit-queue gauge. RingSealConflicts counts ring
	// locks a cross-shard committer found contended.
	RingSeals         []int64
	RingQueueDepth    []int64
	CrossShardTxns    int64
	RingSealConflicts int64

	// Destage.
	DestageDone    int64 // blocks written back by the destager
	DestageDropped int64 // opportunistic cleanings skipped (queue full)
	DestageQueue   int64 // current queue depth (gauge)

	// Checkpoint writer (0 when Options.Checkpoint is off).
	Checkpoints           int64 // frames persisted
	CheckpointEntries     int64 // valid entries snapshotted, cumulative
	CheckpointJournalRecs int64 // delta-journal records persisted

	// NVM traffic.
	NVMBytesWritten  int64
	NVMBytesRead     int64
	CacheLineFlushes int64
	StoreFences      int64

	// Disk traffic.
	DiskBlocksWritten int64
	DiskBlocksRead    int64

	// Commit latency (populated only when Options.Observe is on).
	// CommitLatency digests per-transaction Commit latency (enqueue to
	// acknowledgement, simulated ns); CommitPhases breaks the seal down
	// into the pipeline's phases plus the destager and recovery, in
	// pipeline order. Empty when observability is off.
	CommitLatency metrics.LatencySummary
	CommitPhases  []PhaseLatency
}

// RecoveryStats is the typed per-phase breakdown of one §4.5 recovery
// pass (the baseline measurement ROADMAP item 2 needs before parallel or
// incremental recovery can be claimed). Durations are simulated
// nanoseconds; counters are entries. It is populated by every recovery
// regardless of Options.Observe — the bookkeeping reads the clock but
// never advances it — while the matching histograms
// (metrics.HistRecoveryScan/Redo/Undo/Rebuild) exist only under Observe.
type RecoveryStats struct {
	// Ran distinguishes a real recovery from a fresh format.
	Ran bool
	// Redo reports which direction the interrupted seal was resolved:
	// true = completed (some role switch was durable), false = revoked.
	// Meaningful only when RingSpan > 0.
	Redo bool
	// RingSpan is Head - Tail at recovery entry: the interrupted seal's
	// block count (0 = clean shutdown or crash between seals).
	RingSpan int64

	// Phase durations, in pipeline order. TotalNS covers the whole pass.
	ScanNS    int64 // pointer loads + entry-table scan/index
	RedoNS    int64 // completing the interrupted seal's role switches
	UndoNS    int64 // revoking the interrupted seal + stray-log sweep
	RebuildNS int64 // rebuilding the DRAM index/LRU/allocator
	TotalNS   int64

	// Work counters.
	EntriesScanned int64 // valid entries found in the table scan
	EntriesRedone  int64 // log entries whose role switch was completed
	EntriesUndone  int64 // ring-named log entries rolled back/deleted
	StrayRevoked   int64 // stray log entries revoked by the sweep
	Resident       int64 // entries resident after rebuild

	// Failed marks a recovery that gave up with a structural error
	// (Head behind Tail, ring span beyond capacity, duplicate entry,
	// ring naming an unmapped block, unreadable checkpoint). Open
	// returned that error; the partial stats plus the terminal
	// EvRecoverFail flight record are the forensic trail.
	Failed bool

	// Checkpoint fast path (Options.Checkpoint images only).
	FromCheckpoint bool   // recovery loaded a frame instead of scanning
	CkptEpoch      uint64 // epoch of the frame recovery loaded
	DeltaSlots     int64  // journaled slots replayed on top of the frame
}

// AvgGroupSize reports the mean transactions per seal (0 when no seal has
// happened).
func (s CacheStats) AvgGroupSize() float64 {
	if s.GroupSeals == 0 {
		return 0
	}
	return float64(s.GroupedTxns) / float64(s.GroupSeals)
}

// Stats returns a typed snapshot of the cache counters. Safe for
// concurrent use; the snapshot is not atomic across counters (counters
// advance independently, as with metrics.Snapshot).
func (c *Cache) Stats() CacheStats {
	r := c.rec
	st := CacheStats{
		ReadHits:              r.Get(metrics.CacheReadHit),
		ReadMisses:            r.Get(metrics.CacheReadMiss),
		ReadHitFast:           r.Get(metrics.CacheReadHitFast),
		ReadHitSlow:           r.Get(metrics.CacheReadHitSlow),
		SeqlockRetries:        r.Get(metrics.CacheSeqlockRetry),
		TouchRingDrops:        r.Get(metrics.CacheTouchDrop),
		TouchBatchDrained:     r.Get(metrics.CacheTouchDrained),
		WriteHits:             r.Get(metrics.CacheWriteHit),
		WriteMisses:           r.Get(metrics.CacheWriteMiss),
		Evictions:             r.Get(metrics.CacheEvict),
		DirtyEvictions:        r.Get(metrics.CacheEvictDirty),
		BgEvictions:           r.Get(metrics.CacheEvictBg),
		DirectEvictions:       r.Get(metrics.CacheEvictDirect),
		FillRaces:             r.Get(metrics.CacheFillRace),
		AllocRefills:          r.Get(metrics.CacheAllocRefill),
		Commits:               r.Get(metrics.TxnCommit),
		Aborts:                r.Get(metrics.TxnAbort),
		Blocks:                r.Get(metrics.TxnBlocks),
		COWBlocks:             r.Get(metrics.TxnCOWBlocks),
		GroupSeals:            r.Get(metrics.TxnGroupSeals),
		GroupedTxns:           r.Get(metrics.TxnGroupSize),
		AbsorbedBlocks:        r.Get(metrics.TxnAbsorbed),
		DestageDone:           r.Get(metrics.DestageDone),
		DestageDropped:        r.Get(metrics.DestageDropped),
		DestageQueue:          r.Get(metrics.DestageQueueDepth),
		Checkpoints:           r.Get(metrics.CkptWrites),
		CheckpointEntries:     r.Get(metrics.CkptEntries),
		CheckpointJournalRecs: r.Get(metrics.CkptJournalRecs),
		NVMBytesWritten:       r.Get(metrics.NVMBytesWrite),
		NVMBytesRead:          r.Get(metrics.NVMBytesRead),
		CacheLineFlushes:      r.Get(metrics.NVMCLFlush),
		StoreFences:           r.Get(metrics.NVMSFence),
		DiskBlocksWritten:     r.Get(metrics.DiskBlocksWrite),
		DiskBlocksRead:        r.Get(metrics.DiskBlocksRead),
		ZeroCopyViews:         r.Get(metrics.CacheViewZeroCopy),
		CopiedViews:           r.Get(metrics.CacheViewCopied),
		ViewDeferredFrees:     r.Get(metrics.CacheViewDeferFree),
		OpenViews:             c.viewsOpen.Load(),
	}
	for s := range c.shards {
		if idx := c.shards[s].idx; idx != nil {
			st.IndexGrows += idx.Grows()
		}
	}
	if len(c.rings) > 0 {
		st.CrossShardTxns = r.Get(metrics.TxnCrossShard)
		st.RingSealConflicts = r.Get(metrics.TxnRingSealConflicts)
		st.RingSeals = make([]int64, len(c.rings))
		st.RingQueueDepth = make([]int64, len(c.rings))
		for i := range c.rings {
			st.RingSeals[i] = c.rings[i].seals.Load()
			st.RingQueueDepth[i] = c.rings[i].depth.Load()
		}
	}
	if c.obs != nil {
		st.CommitLatency = c.obs.total.Snapshot().Summary()
		st.CommitPhases = c.obs.phaseLatencies()
	}
	return st
}
