package core

import (
	"sync"
	"sync/atomic"

	"tinca/internal/metrics"
)

// allocator manages the free NVM data blocks and free entry-table slots
// (the paper's free block monitor, Section 4.6) without the global cache
// lock. The hot path pops from a small per-shard cache; only a refill —
// one in allocBatch pops — touches the global pool. Pushes go to the
// global pool directly: free resources produced by one shard's evictions
// are then visible to every consumer, so nothing strands in a cold
// shard's cache (reclaim sweeps the caches back as a last resort before
// declaring the pool empty).
//
// Lock order: a local cache's mutex may be held while taking the global
// mutex (refill, reclaim); never two local mutexes at once; both are leaf
// locks with respect to c.mu and the shard locks.
type allocator struct {
	local [shardCount]allocCache

	mu     sync.Mutex // global pool
	blocks []uint32
	slots  []int32

	// free counts free blocks across the global pool and every local
	// cache, excluding blocks popped but not yet installed. It is the
	// evictor's watermark signal; the partition invariant is checked
	// against a locked snapshot instead.
	free atomic.Int64

	// Double-free detector (tincadebug builds only): one atomic free bit
	// per block/slot, set while the resource sits in any pool. A second
	// push of the same resource panics at the culprit's own call site.
	dbgBlockFree []atomic.Int32
	dbgSlotFree  []atomic.Int32

	rec *metrics.Recorder
}

// dbgPushBlock/dbgPopBlock/dbgPushSlot/dbgPopSlot maintain the free bits.
// They compile to nothing without -tags tincadebug.

func (a *allocator) dbgPushBlock(b uint32) {
	if debugAlloc && a.dbgBlockFree != nil {
		if a.dbgBlockFree[b].Swap(1) == 1 {
			panic("core: double free of NVM data block")
		}
	}
}

func (a *allocator) dbgPopBlock(b uint32) {
	if debugAlloc && a.dbgBlockFree != nil {
		if a.dbgBlockFree[b].Swap(0) == 0 {
			panic("core: popped NVM data block that was not free")
		}
	}
}

func (a *allocator) dbgPushSlot(s int32) {
	if debugAlloc && a.dbgSlotFree != nil {
		if a.dbgSlotFree[s].Swap(1) == 1 {
			panic("core: double free of entry slot")
		}
	}
}

func (a *allocator) dbgPopSlot(s int32) {
	if debugAlloc && a.dbgSlotFree != nil {
		if a.dbgSlotFree[s].Swap(0) == 0 {
			panic("core: popped entry slot that was not free")
		}
	}
}

// allocCache is one shard's private stash of free resources. Padded
// structs are not worth it here: the caches are touched once per
// allocation and the mutexes keep them coherent.
type allocCache struct {
	mu     sync.Mutex
	blocks []uint32
	slots  []int32
}

// allocBatch is how many blocks/slots a refill moves from the global pool
// into a shard cache: large enough to amortize the global mutex, small
// enough that 16 shards hoard at most a small fraction of a real cache.
const allocBatch = 8

func (a *allocator) init(rec *metrics.Recorder, capacity int) {
	a.rec = rec
	if debugAlloc {
		a.dbgBlockFree = make([]atomic.Int32, capacity)
		a.dbgSlotFree = make([]atomic.Int32, capacity)
	}
}

// reset empties every pool (format/recovery rebuild the free state from
// the entry table afterwards).
func (a *allocator) reset() {
	for s := range a.local {
		l := &a.local[s]
		l.mu.Lock()
		l.blocks = l.blocks[:0]
		l.slots = l.slots[:0]
		l.mu.Unlock()
	}
	a.mu.Lock()
	a.blocks = a.blocks[:0]
	a.slots = a.slots[:0]
	a.mu.Unlock()
	a.free.Store(0)
	if debugAlloc {
		for i := range a.dbgBlockFree {
			a.dbgBlockFree[i].Store(0)
		}
		for i := range a.dbgSlotFree {
			a.dbgSlotFree[i].Store(0)
		}
	}
}

// freeBlocks reports the total free data blocks (watermark signal).
func (a *allocator) freeBlocks() int64 { return a.free.Load() }

// pushBlock returns block b to the global pool.
func (a *allocator) pushBlock(b uint32) {
	a.dbgPushBlock(b)
	a.mu.Lock()
	a.blocks = append(a.blocks, b)
	a.mu.Unlock()
	a.free.Add(1)
}

// pushSlot returns entry slot s to the global pool.
func (a *allocator) pushSlot(s int32) {
	a.dbgPushSlot(s)
	a.mu.Lock()
	a.slots = append(a.slots, s)
	a.mu.Unlock()
}

// popBlock takes one free data block, preferring shard h's cache and
// refilling it in a batch from the global pool. Reports false when every
// pool — local caches included — is empty.
func (a *allocator) popBlock(h int) (uint32, bool) {
	l := &a.local[h&(shardCount-1)]
	for {
		l.mu.Lock()
		if n := len(l.blocks); n > 0 {
			b := l.blocks[n-1]
			l.blocks = l.blocks[:n-1]
			l.mu.Unlock()
			a.free.Add(-1)
			a.dbgPopBlock(b)
			return b, true
		}
		// Refill under both locks (local then global, the fixed order)
		// so the moved elements are copied before anyone else can append
		// over the global slice's tail.
		a.mu.Lock()
		n := len(a.blocks)
		if n == 0 {
			a.mu.Unlock()
			l.mu.Unlock()
			if !a.reclaimBlocks() {
				return 0, false
			}
			continue
		}
		take := allocBatch
		if take > n {
			take = n
		}
		l.blocks = append(l.blocks, a.blocks[n-take:]...)
		a.blocks = a.blocks[:n-take]
		a.mu.Unlock()
		b := l.blocks[len(l.blocks)-1]
		l.blocks = l.blocks[:len(l.blocks)-1]
		l.mu.Unlock()
		a.free.Add(-1)
		a.rec.Inc(metrics.CacheAllocRefill)
		a.dbgPopBlock(b)
		return b, true
	}
}

// popSlot takes one free entry slot (same shape as popBlock). The entry
// table has one slot per data block, every cached block consumes at least
// one data block, and every paired free pushes the slot strictly before
// the block — so from the instant a popBlock succeeds, the slot pool
// holds at least one slot per thread between that popBlock and its
// popSlot, and a caller that pairs every popSlot with a prior successful
// popBlock cannot starve. The guaranteed slot may be in another shard's
// cache or may move between pools while we scan them one lock at a time
// (reclaim racing a refill), so a failed sweep falls back to a
// stop-the-world pop under every lock at once; only that failing is an
// invariant violation, hence the panic.
func (a *allocator) popSlot(h int) int32 {
	l := &a.local[h&(shardCount-1)]
	for {
		l.mu.Lock()
		if n := len(l.slots); n > 0 {
			s := l.slots[n-1]
			l.slots = l.slots[:n-1]
			l.mu.Unlock()
			a.dbgPopSlot(s)
			return s
		}
		a.mu.Lock()
		n := len(a.slots)
		if n == 0 {
			a.mu.Unlock()
			l.mu.Unlock()
			if !a.reclaimSlots() {
				s, ok := a.popSlotStopTheWorld()
				if !ok {
					panic("core: entry table exhausted before data area")
				}
				a.dbgPopSlot(s)
				return s
			}
			continue
		}
		take := allocBatch
		if take > n {
			take = n
		}
		l.slots = append(l.slots, a.slots[n-take:]...)
		a.slots = a.slots[:n-take]
		a.mu.Unlock()
		s := l.slots[len(l.slots)-1]
		l.slots = l.slots[:len(l.slots)-1]
		l.mu.Unlock()
		a.dbgPopSlot(s)
		return s
	}
}

// reclaimBlocks drains every shard cache back into the global pool,
// reporting whether anything moved. Called when the global pool runs dry:
// resources hoarded by idle shards must not fail an allocation.
func (a *allocator) reclaimBlocks() bool {
	moved := false
	for s := range a.local {
		l := &a.local[s]
		l.mu.Lock()
		if len(l.blocks) > 0 {
			a.mu.Lock()
			a.blocks = append(a.blocks, l.blocks...)
			a.mu.Unlock()
			l.blocks = l.blocks[:0]
			moved = true
		}
		l.mu.Unlock()
	}
	return moved
}

// popSlotStopTheWorld takes one free slot while holding every pool lock
// at once, so a slot bouncing between pools (reclaim vs refill) cannot
// dodge the scan. Deadlock-free: this is the only path that holds two
// local mutexes, it acquires them in ascending order, and the global
// mutex stays the innermost lock as everywhere else.
func (a *allocator) popSlotStopTheWorld() (int32, bool) {
	for s := range a.local {
		a.local[s].mu.Lock()
		defer a.local[s].mu.Unlock()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.slots); n > 0 {
		s := a.slots[n-1]
		a.slots = a.slots[:n-1]
		return s, true
	}
	for s := range a.local {
		l := &a.local[s]
		if n := len(l.slots); n > 0 {
			v := l.slots[n-1]
			l.slots = l.slots[:n-1]
			return v, true
		}
	}
	return 0, false
}

func (a *allocator) reclaimSlots() bool {
	moved := false
	for s := range a.local {
		l := &a.local[s]
		l.mu.Lock()
		if len(l.slots) > 0 {
			a.mu.Lock()
			a.slots = append(a.slots, l.slots...)
			a.mu.Unlock()
			l.slots = l.slots[:0]
			moved = true
		}
		l.mu.Unlock()
	}
	return moved
}

// snapshot collects every free block and slot across all pools, for the
// invariant checker. Only meaningful on a quiescent cache.
func (a *allocator) snapshot() (blocks []uint32, slots []int32) {
	a.mu.Lock()
	blocks = append(blocks, a.blocks...)
	slots = append(slots, a.slots...)
	a.mu.Unlock()
	for s := range a.local {
		l := &a.local[s]
		l.mu.Lock()
		blocks = append(blocks, l.blocks...)
		slots = append(slots, l.slots...)
		l.mu.Unlock()
	}
	return blocks, slots
}
