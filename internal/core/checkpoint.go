// Checkpoint subsystem (DESIGN.md §14).
//
// The checkpoint region turns O(capacity) restart work into O(resident +
// deltas): a periodic writer snapshots the valid entry table into one of
// two alternating frames, and a tiny delta journal names every entry slot
// mutated since the active frame was written. Recovery loads the newest
// valid frame, re-reads only the journaled slots from the live entry
// table, and skips the full-table NVM scan entirely.
//
// Write ordering (all with the existing persist primitives, so every
// boundary is a crash boundary the exhaustive sweep visits):
//
//  1. Journal-first: before an entry slot's first mutation after a
//     checkpoint, an 8B record {epoch, slot} is persisted into the
//     journal. A crash between the journal write and the entry write
//     leaves a spurious record — harmless, since replay re-reads the
//     CURRENT entry bytes rather than logged values. The reverse order
//     would lose deltas, which is fatal.
//  2. Frame payload before frame header: the inactive frame's records are
//     persisted first, then its 64B checksummed header. A crash in
//     between leaves the old frame (with its still-epoch-consistent
//     journal) as the newest valid checkpoint.
//  3. The header's epoch is the commit point: once it lands, journal
//     records tagged with the old epoch no longer match and replay
//     degenerates to zero deltas — correct, because the frame snapshots
//     every entry.
package core

import (
	"encoding/binary"
	"sync"

	"tinca/internal/flight"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
)

// ckptMagic marks a valid frame header ("tinchkpt").
const ckptMagic uint64 = 0x74706b68636e6974

// DefaultCheckpointIntervalNS is the simulated-time gap between
// checkpoint writes when Options.Checkpoint is on and no interval is
// given (1ms — a few thousand commits on the stock NVDIMM profile).
const DefaultCheckpointIntervalNS int64 = 1_000_000

// ckptState is the DRAM side of the checkpoint writer.
type ckptState struct {
	// mu guards everything below plus the journal region's append
	// position. Leaf-level below the shard locks: ckptJournal takes it
	// while holding one shard lock (different shards' mutators — the
	// destager and evictor run off c.mu — would otherwise race on the
	// append position); only the pmem device lock is taken inside.
	// writeCheckpointLocked additionally holds c.mu and all shard locks,
	// which quiesces every mutator across its whole frame write.
	mu        sync.Mutex
	epoch     uint64  // epoch of the active (last written) frame
	frame     int     // index of the INACTIVE frame, written next
	marks     []int32 // journaled slots this epoch, in journal order
	journaled []bool  // per-slot "already journaled this epoch" bitmap
	lastNS    int64   // simulated time of the last checkpoint write
	interval  int64   // minimum simulated ns between checkpoints
}

// ckptMix64/ckptSum mirror the flight recorder's checksum idiom
// (splitmix64 finalizer folded over 8-byte words).
func ckptMix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func ckptSum(p []byte) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for len(p) >= 8 {
		h = ckptMix64(h ^ binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	return h
}

// ckptJournal records slot i in the delta journal before its first
// mutation of the current epoch. Called at the top of writeEntry /
// storeEntry / clearEntry, i.e. strictly before the entry's own persist;
// see the ordering argument at the top of the file. No-op without the
// checkpoint region. The caller holds slot i's shard lock (or is the
// single-threaded recovery pass), so the journaled bitmap cannot race the
// checkpoint writer's reset, which holds all shard locks.
func (c *Cache) ckptJournal(i int) {
	k := c.ckpt
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.journaled[i] {
		return
	}
	j := len(k.marks)
	if j >= c.lay.CkptJournalSlots {
		// Sized as Capacity+8: every slot fits with room to spare, so
		// overflow means state corruption, not load.
		panic("core: checkpoint journal overflow")
	}
	rec := uint64(uint32(k.epoch))<<32 | uint64(uint32(i))
	c.mem.Persist8(c.lay.ckptJournalOff(j), rec)
	k.journaled[i] = true
	k.marks = append(k.marks, int32(i))
	c.rec.Inc(metrics.CkptJournalRecs)
}

// maybeCheckpoint writes a checkpoint if the interval elapsed. Called at
// commit points (end of commitSerialLocked / runBatch) where the caller
// holds c.mu and the ring is quiescent (head == tail), so the snapshot is
// transactionally consistent: no entry is mid-commit in RoleLog state.
func (c *Cache) maybeCheckpoint() {
	k := c.ckpt
	if k == nil {
		return
	}
	now := int64(c.mem.Clock().Now())
	if now-k.lastNS < k.interval {
		return
	}
	c.lockAllShards()
	defer c.unlockAllShards()
	c.writeCheckpointLocked(now)
}

// writeCheckpointLocked persists the inactive frame and retires the
// delta journal. Caller holds the commit exclusion — c.mu on the
// single-ring layout, every ring's seal lock on the multi-ring one — and
// all shard locks, so every mutator is quiesced and no entry is in the
// log role.
func (c *Cache) writeCheckpointLocked(now int64) {
	k := c.ckpt
	lay := c.lay
	t0 := int64(c.mem.Clock().Now())
	c.flEmit(flight.EvCkptBegin, 0, k.epoch+1, c.head, c.tail)

	// Snapshot the whole entry region in one bulk load (4 entries/line —
	// ~4x cheaper than per-entry Load16), then pack the valid entries.
	raw := make([]byte, lay.Capacity*EntrySize)
	c.mem.Load(lay.EntryOff, raw)
	payload := make([]byte, 0, lay.ckptVecBytes()+64*ckptRecSize)
	if len(c.rings) > 0 {
		// Multi-ring layout: the payload opens with the per-ring
		// {head, tail} vector (checksummed with the records). The caller
		// holds every ring's seal lock, so the cached values are the
		// persisted ones and every ring is quiescent (head == tail).
		vec := make([]byte, lay.ckptVecBytes())
		for r := range c.rings {
			binary.LittleEndian.PutUint64(vec[r*16:], c.rings[r].head)
			binary.LittleEndian.PutUint64(vec[r*16+8:], c.rings[r].tail)
		}
		payload = append(payload, vec...)
	}
	count := 0
	for i := 0; i < lay.Capacity; i++ {
		var eb [16]byte
		copy(eb[:], raw[i*EntrySize:])
		e := decodeEntry(eb)
		if !e.valid {
			continue
		}
		if e.role == RoleLog {
			// Commit points never expose log-role entries (head == tail).
			panic("core: checkpoint saw a log-role entry at a commit point")
		}
		var rec [ckptRecSize]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(i))
		copy(rec[8:], eb[:])
		payload = append(payload, rec[:]...)
		count++
	}

	epoch := k.epoch + 1
	frameOff := lay.ckptFrameOff(k.frame)
	if len(payload) > 0 {
		c.mem.PersistRange(frameOff+ckptFrameHdr, payload)
	}
	var hdr [ckptFrameHdr]byte
	binary.LittleEndian.PutUint64(hdr[0:], ckptMagic)
	binary.LittleEndian.PutUint64(hdr[8:], epoch)
	binary.LittleEndian.PutUint64(hdr[16:], c.head)
	binary.LittleEndian.PutUint64(hdr[24:], c.tail)
	// The seq field carries the generation counter on the multi-ring
	// layout (loadMirrorCheckpoint restores whichever the layout uses).
	seq := c.sealSeq
	if len(c.rings) > 0 {
		seq = c.gen.Load()
	}
	binary.LittleEndian.PutUint64(hdr[32:], seq)
	binary.LittleEndian.PutUint64(hdr[40:], uint64(count))
	binary.LittleEndian.PutUint64(hdr[48:], ckptSum(payload))
	binary.LittleEndian.PutUint64(hdr[56:], ckptSum(hdr[:56]))
	c.mem.PersistRange(frameOff, hdr[:])

	// Commit point passed: retire the journal epoch in DRAM. All shard
	// locks are held, so no mutator is mid-append; k.mu is still taken so
	// the unsynchronized reads in ckptJournal stay race-detector clean.
	k.mu.Lock()
	k.epoch = epoch
	for _, s := range k.marks {
		k.journaled[s] = false
	}
	k.marks = k.marks[:0]
	k.frame ^= 1
	k.lastNS = now
	k.mu.Unlock()

	c.rec.Inc(metrics.CkptWrites)
	c.rec.Add(metrics.CkptEntries, int64(count))
	c.flEmit(flight.EvCkptDone, 0, epoch, uint64(count), 0)
	if c.obs != nil {
		c.obs.phase(c.obs.ckpt, 0, spanCkpt, t0, c.obs.gid())
	}
}

// formatCheckpoint initializes the checkpoint region during format():
// zero the journal and BOTH frame headers (a reformat over a previously
// checkpointed same-geometry device must not leave a stale valid frame
// with a higher epoch), then persist an empty epoch-1 frame 0 so a crash
// before the first periodic checkpoint still recovers through the
// checkpoint path. format() itself is never a crash site (crashes are
// armed only after the stack is up).
func (c *Cache) formatCheckpoint() {
	k := c.ckpt
	lay := c.lay
	jBytes := alignUp(lay.CkptJournalSlots*RingSlotSize, pmem.LineSize)
	c.mem.Store(lay.CkptOff, make([]byte, jBytes))
	c.mem.CLFlush(lay.CkptOff, jBytes)
	zero := make([]byte, ckptFrameHdr)
	for f := 0; f < 2; f++ {
		c.mem.Store(lay.ckptFrameOff(f), zero)
		c.mem.CLFlush(lay.ckptFrameOff(f), ckptFrameHdr)
	}
	c.mem.SFence()

	// On the multi-ring layout even an empty frame carries the per-ring
	// {head, tail} vector (all zero at format time) — the reader always
	// expects it ahead of the records and checksums it with them.
	var payload []byte
	if len(c.rings) > 0 {
		payload = make([]byte, lay.ckptVecBytes())
		c.mem.PersistRange(lay.ckptFrameOff(0)+ckptFrameHdr, payload)
	}
	var hdr [ckptFrameHdr]byte
	binary.LittleEndian.PutUint64(hdr[0:], ckptMagic)
	binary.LittleEndian.PutUint64(hdr[8:], 1) // epoch
	binary.LittleEndian.PutUint64(hdr[48:], ckptSum(payload))
	binary.LittleEndian.PutUint64(hdr[56:], ckptSum(hdr[:56]))
	c.mem.PersistRange(lay.ckptFrameOff(0), hdr[:])
	k.epoch = 1
	k.frame = 1
}
