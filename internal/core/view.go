package core

import (
	"fmt"

	"tinca/internal/bufpool"
	"tinca/internal/metrics"
)

// This file implements the zero-copy half of the redesigned read API.
// Read(no, p) copies 4 KiB on every hit; ReadView(no) hands the caller a
// View whose Bytes() alias the pinned NVM block directly, so a hit costs
// the entry load plus the (simulated) NVM read charge and nothing else —
// no DRAM copy, no allocation.
//
// # Pin protocol (DESIGN.md §12)
//
// The only way cached bytes ever change under a reader is block *reuse*:
// commits COW into freshly allocated blocks and evictions only free, so a
// block's bytes are immutable from the moment its entry is published
// until the block re-enters the free pool. A view therefore pins the NVM
// block, not the slot: viewPins[b] holds (refcount << 1) | orphanBit.
//
//   - Readers pin with an atomic +2. The fast path then re-loads the
//     slot's seqlock: unchanged means no mutator entered the slot between
//     the entry load and the pin, so the pin landed on the block the
//     entry still references. If it changed, the reader unpins and
//     retries — the transient pin is harmless (see below).
//   - Mutators that would free a block (eviction, drop of a raced-in
//     fill, role switch freeing a previous version, live revoke) call
//     freeDataBlock instead of pushing to the allocator directly: if the
//     block is unpinned it is freed on the spot; otherwise the orphan bit
//     is set and the *last unpin* frees it. Eviction thus never blocks on
//     an open view, and an open view never observes recycled bytes.
//
// Why a reader and a freeing mutator cannot miss each other: the mutator
// bumps the slot seqlock (beginSlotMutate) strictly before it reads the
// pin word in freeDataBlock, and the reader writes the pin word strictly
// before it re-reads the seqlock. Both accesses are sequentially
// consistent (Go sync/atomic), so this is Dekker's handshake: either the
// mutator sees the pin (and defers the free), or the reader sees the
// seqlock bump (and unpins/retries) — or both, which also defers safely.
// A transient pin from a losing reader can at worst (a) briefly delay a
// free to its own unpin, or (b) land on a block already recycled by a new
// owner, where its paired unpin restores the count; the CAS discipline in
// unpinBlock guarantees exactly one push per orphaned block either way.
//
// Views over a mid-seal (log-role) block take the locked path and pin the
// previous sealed version; the role switch's free of that version goes
// through freeDataBlock too. Serial/ablation modes mutate cached bytes in
// place (UBJ), so there ReadView degrades to a private copy, as it does
// under Options.DisableZeroCopy.

// View is a read-only window onto one cached disk block, returned by
// ReadView. Bytes() stays valid — a stable snapshot of the block's
// committed contents at ReadView time — until Close, even if the block is
// concurrently rewritten (COW redirects writes elsewhere) or evicted (the
// free is deferred to Close). A View must not be copied after first use
// and must be Closed exactly once; the zero View is closed.
type View struct {
	c      *Cache
	no     uint64
	blk    uint32 // pinned NVM block, when pinned
	pinned bool
	owned  bool // data is a private bufpool copy owned by the view
	closed bool
	data   []byte
}

// Bytes returns the block contents (BlockSize long), or nil after Close.
// The slice must not be written to and must not outlive Close.
func (v *View) Bytes() []byte {
	if v.c == nil || v.closed {
		return nil
	}
	return v.data
}

// BlockNo returns the disk block number the view covers.
func (v *View) BlockNo() uint64 { return v.no }

// ZeroCopy reports whether the view aliases pinned NVM bytes (false for
// the private-copy fallbacks: serial mode, DisableZeroCopy, mid-seal
// fresh blocks).
func (v *View) ZeroCopy() bool { return v.pinned }

// Close releases the view: the pin is dropped (completing any free the
// evictor deferred to us) or the private copy is recycled. Returns
// ErrViewExpired if the view was already closed (or is the zero View).
func (v *View) Close() error {
	if v.c == nil || v.closed {
		return ErrViewExpired
	}
	v.closed = true
	c := v.c
	if v.pinned {
		c.unpinBlock(v.blk)
	} else if v.owned {
		bufpool.Put(v.data)
	}
	v.data = nil
	c.viewsOpen.Add(-1)
	return nil
}

// pinBlock takes one view reference on NVM block b.
func (c *Cache) pinBlock(b uint32) {
	c.viewPins[b].Add(2)
}

// unpinBlock drops one view reference. If this was the last pin of an
// orphaned block (value 1 = zero refs + orphan bit), the CAS 1→0 elects
// exactly one unpinner to complete the deferred free.
func (c *Cache) unpinBlock(b uint32) {
	if nv := c.viewPins[b].Add(-2); nv == 1 {
		if c.viewPins[b].CompareAndSwap(1, 0) {
			c.alloc.pushBlock(b)
		}
	}
}

// freeDataBlock returns data block b to the allocator, unless a view
// holds it pinned — then the orphan bit defers the free to the last
// unpin. Callers on the eviction/commit side must have bumped the slot's
// seqlock (beginSlotMutate) before calling, so the Dekker handshake with
// pinning readers holds (file comment above).
func (c *Cache) freeDataBlock(b uint32) {
	vp := &c.viewPins[b]
	for {
		v := vp.Load()
		if v == 0 {
			c.alloc.pushBlock(b)
			return
		}
		if vp.CompareAndSwap(v, v|1) {
			c.rec.Inc(metrics.CacheViewDeferFree)
			return
		}
	}
}

// OpenViews reports how many views are currently open (diagnostics).
func (c *Cache) OpenViews() int64 { return c.viewsOpen.Load() }

// ReadView returns a zero-copy View of the current committed contents of
// disk block no, populating the cache on a miss exactly like Read. In
// concurrent mode a hit pins the NVM block and aliases its bytes — the
// simulated NVM cost matches Read's, but the host-side 4 KiB copy and
// its allocation disappear; serial/ablation modes and DisableZeroCopy
// fall back to a private copy with identical semantics. The caller must
// Close the view; until then the bytes are a stable snapshot even across
// concurrent commits (COW) and evictions (deferred free).
func (c *Cache) ReadView(no uint64) (View, error) {
	c.checkPoison()
	if c.closed.Load() {
		return View{}, ErrClosed
	}
	if no >= c.disk.Blocks() {
		return View{}, fmt.Errorf("core: ReadView of block %d beyond disk (%d blocks): %w",
			no, c.disk.Blocks(), ErrOutOfRange)
	}
	if c.serial || c.opts.DisableZeroCopy {
		return c.readViewCopy(no)
	}
	for {
		if !c.opts.LockedReadHit {
			if v, ok := c.readViewFast(no); ok {
				return v, nil
			}
		}
		v, ok, err := c.readViewLocked(no)
		if err != nil {
			return View{}, err
		}
		if ok {
			return v, nil
		}
		// Miss: populate (no output copy needed) and retry the hit paths.
		c.rec.Inc(metrics.CacheReadMiss)
		if c.opts.SerialMiss {
			err = func() error {
				c.mu.Lock()
				defer c.mu.Unlock()
				if c.closed.Load() {
					return ErrClosed
				}
				if _, ok := c.shardOf(no).slot(no); ok {
					return nil // a racing fill beat us; retry the hit paths
				}
				return c.fillSerialLocked(no, nil)
			}()
		} else {
			err = c.fillConcurrent(no, nil)
		}
		if err != nil {
			return View{}, err
		}
	}
}

// readViewCopy serves ReadView as a private copy through the ordinary
// Read path: the serial/ablation modes (which mutate cached bytes in
// place, leaving no stable window to alias) and the DisableZeroCopy
// baseline. The copy lives in a bufpool buffer owned by the view.
func (c *Cache) readViewCopy(no uint64) (View, error) {
	buf := bufpool.Get()
	if err := c.Read(no, buf); err != nil {
		bufpool.Put(buf)
		return View{}, err
	}
	c.rec.Inc(metrics.CacheViewCopied)
	c.viewsOpen.Add(1)
	return View{c: c, no: no, owned: true, data: buf}, nil
}

// readViewFast is the lock-free hit path for views: readFast's seqlock
// protocol (readfast.go) with the block copy replaced by pin + re-check.
// The re-check proves the pin landed while the entry still referenced the
// block, so the bytes cannot be recycled until Close.
func (c *Cache) readViewFast(no uint64) (View, bool) {
	sh := c.shardOf(no)
	retries := 0
	for {
		i, ok := sh.slot(no)
		if !ok {
			return View{}, false // miss (or just evicted): locked path decides
		}
		s1 := c.slotSeq[i].Load()
		if s1&1 != 0 {
			c.rec.Inc(metrics.CacheSeqlockRetry)
			if retries++; retries > maxFastReadRetries {
				return View{}, false
			}
			continue
		}
		e := c.readEntry(i)
		if !e.valid || e.disk != no {
			if retries++; retries > maxFastReadRetries {
				return View{}, false
			}
			continue
		}
		if e.role == RoleLog {
			return View{}, false // mid-seal: locked path serves the sealed version
		}
		c.pinBlock(e.cur)
		if c.slotSeq[i].Load() != s1 {
			// A mutator entered the slot between the entry load and the
			// pin: the pin may sit on a freed or reused block. Undo (which
			// completes a deferred free if we were the last holder) and
			// retry.
			c.unpinBlock(e.cur)
			c.rec.Inc(metrics.CacheSeqlockRetry)
			if retries++; retries > maxFastReadRetries {
				return View{}, false
			}
			continue
		}
		// Pinned a stable version. Charge the NVM read and alias the bytes.
		data := c.mem.ViewBytes(c.lay.blockOff(e.cur), BlockSize)
		// LRU promotion, exactly as readFast: stamp the tick, queue the
		// splice.
		c.atime[i].Store(c.tick.Add(1))
		if !sh.touches.push(i) {
			if sh.mu.TryLock() {
				c.drainTouchesLocked(sh)
				if sh.lru.contains(i) {
					sh.lru.touch(i)
				}
				sh.mu.Unlock()
			} else {
				c.rec.Inc(metrics.CacheTouchDrop)
			}
		}
		c.rec.Inc(metrics.CacheReadHit)
		c.rec.Inc(metrics.CacheReadHitFast)
		c.rec.Inc(metrics.CacheViewZeroCopy)
		c.viewsOpen.Add(1)
		return View{c: c, no: no, blk: e.cur, pinned: true, data: data}, true
	}
}

// readViewLocked serves a view under the shard lock: the fallback for
// churn and the only entry point for mid-seal blocks. Pinning under the
// lock needs no seqlock dance — every freeing mutator of this shard's
// blocks either holds the lock or (role switch, seal phase D) published
// its entry update under it before freeing, so the pin is ordered with
// the free by the lock itself plus the atomic pin word.
func (c *Cache) readViewLocked(no uint64) (View, bool, error) {
	sh := c.shardOf(no)
	sh.mu.Lock()
	i, ok := sh.slot(no)
	if !ok {
		sh.mu.Unlock()
		return View{}, false, nil // miss: the caller fills and retries
	}
	e := c.readEntry(i)
	if e.role == RoleLog {
		if e.prev == Fresh {
			// Freshly written block mid-seal: the last sealed contents are
			// whatever the disk holds. Read around the cache into a
			// private copy; there is no stable NVM version to pin.
			sh.mu.Unlock()
			buf := bufpool.Get()
			c.disk.ReadBlock(no, buf)
			c.rec.Inc(metrics.CacheReadHit)
			c.rec.Inc(metrics.CacheReadHitSlow)
			c.rec.Inc(metrics.CacheViewCopied)
			c.viewsOpen.Add(1)
			return View{c: c, no: no, owned: true, data: buf}, true, nil
		}
		// Serve the previous sealed version zero-copy. The pin lands under
		// the same shard lock the seal's role switch will take before it
		// frees prev, so the deferral is guaranteed to be observed.
		c.pinBlock(e.prev)
		sh.mu.Unlock()
		data := c.mem.ViewBytes(c.lay.blockOff(e.prev), BlockSize)
		c.rec.Inc(metrics.CacheReadHit)
		c.rec.Inc(metrics.CacheReadHitSlow)
		c.rec.Inc(metrics.CacheViewZeroCopy)
		c.viewsOpen.Add(1)
		return View{c: c, no: no, blk: e.prev, pinned: true, data: data}, true, nil
	}
	c.pinBlock(e.cur)
	c.touchLocked(sh, i)
	sh.mu.Unlock()
	data := c.mem.ViewBytes(c.lay.blockOff(e.cur), BlockSize)
	c.rec.Inc(metrics.CacheReadHit)
	c.rec.Inc(metrics.CacheReadHitSlow)
	c.rec.Inc(metrics.CacheViewZeroCopy)
	c.viewsOpen.Add(1)
	return View{c: c, no: no, blk: e.cur, pinned: true, data: data}, true, nil
}
