package core

import (
	"testing"

	"tinca/internal/flight"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// TestFlightBlackboxSurvivesCrash drives commits with the recorder on,
// power-fails the device, and checks that the reopened cache decodes a
// coherent pre-crash timeline: the window invariant holds, the last
// sealed generation matches the commit count, and recovery both appended
// its own phase events and populated RecoveryStats.
func TestFlightBlackboxSurvivesCrash(t *testing.T) {
	r := newRig(t, 8<<20, Options{FlightRecorder: true})
	commitSome(t, r.cache, 1, 20)
	preSeq := r.cache.Blackbox().MaxSeq

	r.mem.Crash(sim.NewRand(42), 0.5)
	r.reopen(t, Options{FlightRecorder: true})

	rs := r.cache.RecoveryStats()
	if !rs.Ran {
		t.Fatal("reopen did not run recovery")
	}
	if rs.TotalNS < rs.ScanNS+rs.RedoNS+rs.UndoNS+rs.RebuildNS {
		t.Fatalf("phase durations exceed total: %+v", rs)
	}
	if rs.EntriesScanned == 0 || rs.Resident == 0 {
		t.Fatalf("no entries survived 20 commits: %+v", rs)
	}

	bb := r.cache.Blackbox()
	if bb == nil {
		t.Fatal("no blackbox after reopen")
	}
	if err := bb.CheckWindow(); err != nil {
		t.Fatalf("window invariant broken after crash: %v", err)
	}
	if bb.MaxSeq <= preSeq {
		t.Fatalf("recovery appended no events: pre-crash seq %d, post %d", preSeq, bb.MaxSeq)
	}
	if bb.LastSealedGen != 20 {
		t.Fatalf("last sealed generation = %d, want 20", bb.LastSealedGen)
	}
	var phases []flight.EventType
	sawRedo := false
	for _, rec := range bb.Records {
		switch rec.Type {
		case flight.EvRecoverRedo:
			sawRedo = true
		case flight.EvRecoverBegin, flight.EvRecoverScan,
			flight.EvRecoverUndo, flight.EvRecoverRebuild, flight.EvRecoverDone:
			phases = append(phases, rec.Type)
		}
	}
	if len(phases) != 5 || phases[0] != flight.EvRecoverBegin || phases[4] != flight.EvRecoverDone {
		t.Fatalf("recovery phase events out of order or missing: %v", phases)
	}
	// EvRecoverRedo is emitted exactly when the redo branch ran — a
	// zero-length record for a branch that never executed would pollute
	// the timeline (see the matching observe_test assertion).
	if sawRedo != rs.Redo {
		t.Fatalf("EvRecoverRedo presence %v does not match rs.Redo %v", sawRedo, rs.Redo)
	}
}

// TestFlightLayoutCompatibility pins down the layout contract: with the
// recorder off the layout is byte-identical to the paper's Figure 5 (no
// flight region, same entry/data offsets), and turning it on inserts
// exactly DefaultSlots records between the ring and the entry table.
func TestFlightLayoutCompatibility(t *testing.T) {
	off, err := ComputeLayout(8<<20, 0, DefaultPtrSlots)
	if err != nil {
		t.Fatal(err)
	}
	if off.FlightSlots != 0 || off.FlightOff != off.EntryOff {
		t.Fatalf("flight region present with recorder off: %+v", off)
	}
	on, err := ComputeLayoutFlight(8<<20, 0, DefaultPtrSlots, flight.DefaultSlots)
	if err != nil {
		t.Fatal(err)
	}
	if on.EntryOff != off.EntryOff+flight.DefaultSlots*pmem.LineSize {
		t.Fatalf("entry table not shifted by the flight region: off=%d on=%d", off.EntryOff, on.EntryOff)
	}
	if on.Capacity >= off.Capacity {
		t.Fatalf("flight region cost no capacity: %d vs %d", on.Capacity, off.Capacity)
	}
	if off.Capacity-on.Capacity > 8 {
		t.Fatalf("flight region too expensive: lost %d blocks", off.Capacity-on.Capacity)
	}

	// A recorder-off cache reports no blackbox and a recorder-on reopen of
	// a recorder-on image attaches to (not reformats) the existing ring.
	r := newRig(t, 8<<20, Options{})
	if r.cache.Blackbox() != nil {
		t.Fatal("blackbox without a flight recorder")
	}
	if err := r.cache.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := newRig(t, 8<<20, Options{FlightRecorder: true})
	commitSome(t, r2.cache, 1, 5)
	seq := r2.cache.Blackbox().MaxSeq
	if err := r2.cache.Close(); err != nil {
		t.Fatal(err)
	}
	r2.reopen(t, Options{FlightRecorder: true})
	if got := r2.cache.Blackbox().MaxSeq; got <= seq {
		t.Fatalf("reopen did not continue the flight sequence: %d then %d", seq, got)
	}
}
