package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// wordBlock returns a block whose every 8-byte word is the little-endian
// encoding of v. A lock-free reader that observes two different words in
// one block has performed a torn read — exactly what the seqlock protocol
// (readfast.go) must make impossible.
func wordBlock(v uint64) []byte {
	p := make([]byte, BlockSize)
	for off := 0; off < BlockSize; off += 8 {
		binary.LittleEndian.PutUint64(p[off:], v)
	}
	return p
}

// TestReadHitSeqlockStress is the -race exercise for the lock-free read
// hit path: 8 readers hammer a small hot set while (a) one committer keeps
// rewriting those same blocks through COW redirects and group seals,
// (b) a cold scanner streams through more blocks than the cache holds so
// the evictor constantly reclaims slots, and (c) write-through destaging
// flips the same hot slots from modified to banked-clean under the
// readers. Three oracles:
//
//  1. every block read is word-uniform (no torn read),
//  2. per reader, the value seen for a given block never decreases
//     (committed values are monotone and stay visible), and
//  3. no reader sees a value from a commit that has not started yet.
func TestReadHitSeqlockStress(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"write-back", Options{RingBytes: 4096}},
		{"write-through-destage", Options{RingBytes: 4096, WriteThrough: true, DestageDepth: 4}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			clock := sim.NewClock()
			rec := metrics.NewRecorder()
			mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
			disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
			c, err := Open(mem, disk, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}

			const (
				readers   = 8
				hotSpan   = 16
				readsEach = 3000
				coldBase  = 1000
			)
			coldSpan := c.Capacity() // cold stream alone overflows the cache
			var started atomic.Int64 // commits begun; upper bound for any visible value
			var stop atomic.Bool
			var readerWG, auxWG sync.WaitGroup

			for g := 0; g < readers; g++ {
				g := g
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					rng := sim.NewRand(int64(300 + g))
					last := make([]uint64, hotSpan)
					p := make([]byte, BlockSize)
					for i := 0; i < readsEach; i++ {
						b := rng.Intn(hotSpan)
						if err := c.Read(uint64(b), p); err != nil {
							panic(fmt.Sprintf("reader %d: %v", g, err))
						}
						v := binary.LittleEndian.Uint64(p)
						for off := 8; off < BlockSize; off += 8 {
							if w := binary.LittleEndian.Uint64(p[off:]); w != v {
								panic(fmt.Sprintf("reader %d: torn read of block %d: word[0]=%d word[%d]=%d",
									g, b, v, off/8, w))
							}
						}
						if s := started.Load(); v > uint64(s) {
							panic(fmt.Sprintf("reader %d: block %d = %d but only %d commits started",
								g, b, v, s))
						}
						if v < last[b] {
							panic(fmt.Sprintf("reader %d: block %d went backwards: %d after %d",
								g, b, v, last[b]))
						}
						last[b] = v
					}
				}()
			}

			// Committer: value n rewrites hot block n%hotSpan; each commit
			// COWs the block (log-role window + seal) under the readers.
			auxWG.Add(1)
			go func() {
				defer auxWG.Done()
				for n := 1; !stop.Load(); n++ {
					v := started.Add(1)
					tx := c.Begin()
					tx.Write(uint64(n%hotSpan), wordBlock(uint64(v)))
					if err := tx.Commit(); err != nil {
						panic(fmt.Sprintf("writer: %v", err))
					}
				}
			}()

			// Cold scanner: misses force fills and evictions, so readers
			// race slot teardown/reuse, not just in-place mutation.
			auxWG.Add(1)
			go func() {
				defer auxWG.Done()
				p := make([]byte, BlockSize)
				for n := 0; !stop.Load(); n++ {
					if err := c.Read(uint64(coldBase+n%coldSpan), p); err != nil {
						panic(fmt.Sprintf("scanner: %v", err))
					}
				}
			}()

			readerWG.Wait()
			stop.Store(true)
			auxWG.Wait()

			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := c.Stats()
			if st.ReadHitFast == 0 {
				t.Fatalf("fast path never taken: %+v", st)
			}
			if st.ReadHitFast+st.ReadHitSlow != st.ReadHits {
				t.Fatalf("fast %d + slow %d != hits %d", st.ReadHitFast, st.ReadHitSlow, st.ReadHits)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashSweepFastPathParity re-runs a per-boundary crash sweep twice at
// every boundary — once with the seqlock fast path (the default) and once
// with Options.LockedReadHit — and requires the recovered caches to be
// byte-identical. The fast path performs no persistence-relevant
// operations (loads only), so the crash boundary, the adversarial crash
// image, and the recovered state must all be independent of which hit
// path the pre-crash workload used.
func TestCrashSweepFastPathParity(t *testing.T) {
	const span = 6 // hot blocks the workload commits to and reads back

	// runVariant executes the workload with an armed crash at boundary k,
	// returns crashed=false once k is past the protocol's end, and
	// otherwise materializes the crash image (seeded per boundary, so both
	// variants draw identical eviction decisions), recovers, and returns
	// the recovered values of every block plus the persistent image.
	runVariant := func(k int64, locked bool) (crashed bool, state []byte, img []byte) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		opts := Options{RingBytes: 4096, LockedReadHit: locked}
		c, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatal(err)
		}
		setup := c.Begin()
		for i := uint64(0); i < span; i++ {
			setup.Write(i, blockOf('A'))
		}
		if err := setup.Commit(); err != nil {
			t.Fatal(err)
		}

		mem.ArmCrash(k)
		crashed, _ = pmem.CatchCrash(func() {
			p := make([]byte, BlockSize)
			for i := 0; i < span; i++ {
				tx := c.Begin()
				tx.Write(uint64(i), blockOf(byte('B'+i)))
				if err := tx.Commit(); err != nil {
					panic(fmt.Sprintf("commit %d: %v", i, err))
				}
				// Interleave hits so the crash can land with readers' state
				// (touch ring, atime stamps) differing between the paths.
				for j := 0; j <= i; j++ {
					if err := c.Read(uint64(j), p); err != nil {
						panic(fmt.Sprintf("read %d: %v", j, err))
					}
				}
			}
		})
		if !crashed {
			mem.DisarmCrash()
			return false, nil, nil
		}
		mem.Crash(sim.NewRand(5000+k), 0.5)
		rc, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatalf("k=%d locked=%v recovery: %v", k, locked, err)
		}
		if err := rc.CheckInvariants(); err != nil {
			t.Fatalf("k=%d locked=%v after recovery: %v", k, locked, err)
		}
		for i := uint64(0); i < span; i++ {
			state = append(state, mustRead(t, rc, i)...)
		}
		return true, state, mem.SnapshotPersist()
	}

	for k := int64(0); ; k++ {
		fastCrashed, fastState, fastImg := runVariant(k, false)
		lockCrashed, lockState, lockImg := runVariant(k, true)
		if fastCrashed != lockCrashed {
			t.Fatalf("k=%d: fast path crashed=%v but locked path crashed=%v — persist-op sequences diverged",
				k, fastCrashed, lockCrashed)
		}
		if !fastCrashed {
			t.Logf("parity sweep covered %d boundaries", k)
			return
		}
		if !bytes.Equal(fastImg, lockImg) {
			t.Fatalf("k=%d: post-recovery persistent images differ between hit paths", k)
		}
		if !bytes.Equal(fastState, lockState) {
			t.Fatalf("k=%d: recovered block contents differ between hit paths", k)
		}
		// Boundaries repeat the same per-commit pattern; cover the first
		// commits densely, then stride.
		if k > 600 {
			k += 23
		}
	}
}
