package core

import "fmt"

// lockAllShards acquires every shard lock in index order (the only place
// two shard locks are ever held at once; the fixed order makes it
// deadlock-free against single-shard holders).
func (c *Cache) lockAllShards() {
	for s := range c.shards {
		c.shards[s].mu.Lock()
	}
}

func (c *Cache) unlockAllShards() {
	for s := range c.shards {
		c.shards[s].mu.Unlock()
	}
}

// CheckInvariants verifies the structural invariants of DESIGN.md §5
// against both the persistent entry table and the DRAM structures. It is
// used by the crash-consistency test suite after every recovery; any
// violation is returned as an error naming the broken invariant.
func (c *Cache) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Ring seal locks nest after c.mu and before the shard locks, matching
	// the seal path's order.
	for r := range c.rings {
		c.rings[r].mu.Lock()
	}
	defer func() {
		for r := range c.rings {
			c.rings[r].mu.Unlock()
		}
	}()
	c.DrainDestage()
	c.lockAllShards()
	defer c.unlockAllShards()

	if len(c.rings) > 0 {
		for r := range c.rings {
			rst := &c.rings[r]
			if rst.head != rst.tail {
				return fmt.Errorf("invariant: ring %d Head (%d) != Tail (%d) while quiescent", r, rst.head, rst.tail)
			}
			if h := c.loadPointer(c.lay.ringHeadOff(r)); h != rst.head {
				return fmt.Errorf("invariant: ring %d persistent Head %d != cached %d", r, h, rst.head)
			}
			if t := c.loadPointer(c.lay.ringTailOff(r)); t != rst.tail {
				return fmt.Errorf("invariant: ring %d persistent Tail %d != cached %d", r, t, rst.tail)
			}
		}
	} else {
		if c.head != c.tail {
			return fmt.Errorf("invariant: Head (%d) != Tail (%d) while quiescent", c.head, c.tail)
		}
		if h := c.loadPointer(c.lay.HeadOff); h != c.head {
			return fmt.Errorf("invariant: persistent Head %d != cached %d", h, c.head)
		}
		if t := c.loadPointer(c.lay.TailOff); t != c.tail {
			return fmt.Errorf("invariant: persistent Tail %d != cached %d", t, c.tail)
		}
	}

	seenDisk := make(map[uint64]int32)
	usedBlock := make(map[uint32]int32)
	valid := 0
	for i := 0; i < c.lay.Capacity; i++ {
		e := c.readEntry(int32(i))
		if !e.valid {
			continue
		}
		valid++
		if e.role == RoleLog {
			return fmt.Errorf("invariant: entry %d still has log role while quiescent", i)
		}
		if e.prev != Fresh {
			return fmt.Errorf("invariant: entry %d keeps previous version %d while quiescent", i, e.prev)
		}
		if j, dup := seenDisk[e.disk]; dup {
			return fmt.Errorf("invariant: disk block %d mapped by entries %d and %d", e.disk, j, i)
		}
		seenDisk[e.disk] = int32(i)
		if int(e.cur) >= c.lay.Capacity {
			return fmt.Errorf("invariant: entry %d references NVM block %d beyond capacity %d", i, e.cur, c.lay.Capacity)
		}
		if j, dup := usedBlock[e.cur]; dup {
			return fmt.Errorf("invariant: NVM block %d referenced by entries %d and %d", e.cur, j, i)
		}
		usedBlock[e.cur] = int32(i)
		if got, ok := c.shardOf(e.disk).slot(e.disk); !ok || got != int32(i) {
			return fmt.Errorf("invariant: hash table out of sync for disk block %d (entry %d)", e.disk, i)
		}
	}
	mapped, linked := 0, 0
	for s := range c.shards {
		mapped += c.shards[s].mapLen()
		// Apply any pending fast-path promotions so the LRU count below
		// reflects every hit taken before quiescence.
		c.drainTouchesLocked(&c.shards[s])
		linked += c.shards[s].lru.len()
	}
	if mapped != valid {
		return fmt.Errorf("invariant: hash shards have %d mappings, entry table has %d valid entries", mapped, valid)
	}
	if linked != valid {
		return fmt.Errorf("invariant: LRU shards link %d slots, entry table has %d valid entries", linked, valid)
	}

	// No pins may survive a quiescent cache: every commit unpins in its
	// epilogue (or its unwind/abort path).
	for s := range c.shards {
		if n := len(c.shards[s].pinned); n != 0 {
			return fmt.Errorf("invariant: shard %d holds %d leftover pins while quiescent", s, n)
		}
	}

	// Every per-slot seqlock must be even (stable) while quiescent: an odd
	// counter means a mutator left a begin/end bracket unbalanced.
	for i := 0; i < c.lay.Capacity; i++ {
		if v := c.slotSeq[i].Load(); v&1 != 0 {
			return fmt.Errorf("invariant: slot %d seqlock odd (%d) while quiescent", i, v)
		}
	}

	// Pinned-view accounting (view.go). A pinned block must still be
	// referenced by an entry unless it carries the orphan bit, in which
	// case it must NOT be referenced: it is free-in-waiting, owned by the
	// open views until the last unpin pushes it. Every pin belongs to an
	// open zero-copy view, so the pin total is bounded by the open-view
	// gauge (copying views hold no pin).
	openViews := c.viewsOpen.Load()
	orphaned := make(map[uint32]bool)
	var pinTotal int64
	for b := range c.viewPins {
		v := c.viewPins[b].Load()
		if v == 0 {
			continue
		}
		count, orphan := v>>1, v&1 == 1
		if count <= 0 {
			return fmt.Errorf("invariant: NVM block %d orphaned with no pins (word %d)", b, v)
		}
		pinTotal += count
		_, used := usedBlock[uint32(b)]
		if orphan {
			if used {
				return fmt.Errorf("invariant: NVM block %d deferred-free but still referenced", b)
			}
			orphaned[uint32(b)] = true
		} else if !used {
			return fmt.Errorf("invariant: NVM block %d pinned by a view but referenced by no entry", b)
		}
	}
	if pinTotal > openViews {
		return fmt.Errorf("invariant: %d view pins exceed %d open views", pinTotal, openViews)
	}

	// Free monitor, referenced blocks and orphaned (view-held) blocks must
	// partition the data area. Every allocator push during an eviction
	// happens under the victim's shard lock, so holding all shard locks
	// (plus c.mu against commits and fills) makes the snapshot consistent;
	// pins are stable because the caller is quiescent (no views opening).
	freeB, freeS := c.alloc.snapshot()
	if len(freeB)+len(usedBlock)+len(orphaned) != c.lay.Capacity {
		return fmt.Errorf("invariant: free (%d) + used (%d) + view-held (%d) != capacity (%d)",
			len(freeB), len(usedBlock), len(orphaned), c.lay.Capacity)
	}
	for _, b := range freeB {
		if _, used := usedBlock[b]; used {
			return fmt.Errorf("invariant: NVM block %d both free and referenced", b)
		}
		if orphaned[b] {
			return fmt.Errorf("invariant: NVM block %d both free and deferred to a view", b)
		}
	}
	if len(freeS)+valid != c.lay.Capacity {
		return fmt.Errorf("invariant: free slots (%d) + valid entries (%d) != capacity (%d)",
			len(freeS), valid, c.lay.Capacity)
	}
	if got := c.alloc.freeBlocks(); got != int64(len(freeB)) {
		return fmt.Errorf("invariant: free-block counter %d drifted from pool contents %d", got, len(freeB))
	}
	return nil
}

// ResidentBlocks returns the set of cached disk block numbers with their
// dirtiness, for test oracles.
func (c *Cache) ResidentBlocks() map[uint64]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lockAllShards()
	defer c.unlockAllShards()
	out := make(map[uint64]bool)
	for s := range c.shards {
		c.shards[s].mapRange(func(no uint64, i int32) bool {
			out[no] = c.readEntry(i).modified
			return true
		})
	}
	return out
}
