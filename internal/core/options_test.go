package core

import (
	"strings"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string // substring of the error, "" for valid
	}{
		{"zero value", Options{}, ""},
		{"paper default ring", Options{RingBytes: 1 << 20}, ""},
		{"negative ring", Options{RingBytes: -64}, "negative"},
		{"misaligned ring", Options{RingBytes: pmem.LineSize + 1}, "cache line"},
		{"ablation double write", Options{Ablation: AblationDoubleWrite}, ""},
		{"ablation out of range", Options{Ablation: Ablation(99)}, "unknown ablation"},
		{"negative ablation", Options{Ablation: Ablation(-1)}, "unknown ablation"},
		{"write-through", Options{WriteThrough: true}, ""},
		{"write-through + UBJ", Options{WriteThrough: true, Ablation: AblationUBJ}, "WriteThrough"},
		{"group commit knobs", Options{GroupCommit: GroupCommit{MaxBatch: 16, MaxWaitNS: 1000}}, ""},
		{"negative max batch", Options{GroupCommit: GroupCommit{MaxBatch: -1}}, "MaxBatch"},
		{"negative max wait", Options{GroupCommit: GroupCommit{MaxWaitNS: -1}}, "MaxWaitNS"},
		{"destage depth", Options{DestageDepth: 8}, ""},
		{"negative destage depth", Options{DestageDepth: -1}, "DestageDepth"},
		{"destage + ablation", Options{DestageDepth: 4, Ablation: AblationUBJ}, "AblationNone"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// Open must reject invalid options before touching the device.
func TestOpenValidatesOptions(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(4<<20, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<20, blockdev.Null, clock, rec)
	if _, err := Open(mem, disk, Options{RingBytes: -64}); err == nil {
		t.Fatal("Open accepted a negative ring size")
	}
}
