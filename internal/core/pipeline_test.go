package core

import (
	"fmt"
	"sync"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// seedDisk writes a deterministic pattern to disk blocks [0, n): block no
// holds byte(no%251 + 1) so a fill's result is checkable without an
// oracle map.
func seedDisk(disk *blockdev.Device, n uint64) {
	for no := uint64(0); no < n; no++ {
		disk.WriteBlock(no, blockOf(diskPattern(no)))
	}
}

func diskPattern(no uint64) byte { return byte(no%251 + 1) }

// TestConcurrentMissFills drives 8 goroutines through read misses on
// disjoint block ranges whose union exceeds the cache capacity several
// times over, with the watermark evictor on. Every read must return the
// disk's value; under -race this exercises the lock-free fill install,
// the background eviction scan and the allocator refill path against
// each other.
func TestConcurrentMissFills(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(2<<20, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	c, err := Open(mem, disk, Options{RingBytes: 4096, EvictLowWater: 32, EvictBatch: 32})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		span    = 256 // blocks per worker; 8*256 ≈ 4x capacity
		passes  = 3
	)
	seedDisk(disk, workers*span)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := make([]byte, BlockSize)
			for pass := 0; pass < passes; pass++ {
				for b := 0; b < span; b++ {
					no := uint64(g*span + b)
					if err := c.Read(no, p); err != nil {
						panic(fmt.Sprintf("worker %d read %d: %v", g, no, err))
					}
					if p[0] != diskPattern(no) {
						panic(fmt.Sprintf("worker %d block %d = %d, want %d", g, no, p[0], diskPattern(no)))
					}
				}
			}
		}()
	}
	wg.Wait()

	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ReadMisses == 0 || st.Evictions == 0 {
		t.Fatalf("overcommitted read sweep recorded no misses/evictions: %+v", st)
	}
	if st.BgEvictions == 0 {
		t.Fatalf("watermark evictor never ran: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMissPipelineStress mixes concurrent miss fills, commits, aborts,
// background eviction, multi-worker destage and FlushAll on a cache
// several times smaller than the working set. Run under -race this is the
// primary data-race check for the concurrent miss pipeline; functionally
// it checks the same value oracles as the commit stress test plus the
// fill correctness of a read-only region, and that the structural
// invariants hold afterwards.
func TestMissPipelineStress(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(2<<20, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	c, err := Open(mem, disk, Options{
		RingBytes:      8192,
		DestageDepth:   8,
		DestageWorkers: 2,
		EvictLowWater:  48,
		EvictBatch:     32,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers  = 8
		rounds   = 80
		hotSpan  = 16   // contended write range
		privSpan = 32   // private write range per worker
		privBase = 100  // private ranges start here
		roBase   = 2000 // read-only region, seeded on disk, never written
		roSpan   = 1024
	)
	seedDisk(disk, 64) // hot range and low blocks hold the pattern initially
	for no := uint64(roBase); no < roBase+roSpan; no++ {
		disk.WriteBlock(no, blockOf(diskPattern(no)))
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := sim.NewRand(int64(2000 + g))
			p := make([]byte, BlockSize)
			for i := 0; i < rounds; i++ {
				// Miss-heavy read in the read-only region: value must match
				// the disk exactly, whether it came from a fill, a raced
				// fill, or a resident copy that survived eviction pressure.
				no := uint64(roBase + rng.Intn(roSpan))
				if err := c.Read(no, p); err != nil {
					panic(fmt.Sprintf("worker %d read %d: %v", g, no, err))
				}
				if p[0] != diskPattern(no) {
					panic(fmt.Sprintf("worker %d block %d = %d, want %d", g, no, p[0], diskPattern(no)))
				}

				txn := c.Begin()
				txn.Write(uint64(rng.Intn(hotSpan)), blockOf(byte(g+1)))
				txn.Write(uint64(privBase+g*privSpan+rng.Intn(privSpan)), blockOf(byte(g+1)))
				if i%9 == 4 {
					txn.Abort()
					continue
				}
				if err := txn.Commit(); err != nil {
					panic(fmt.Sprintf("worker %d commit %d: %v", g, i, err))
				}
				if i%17 == 11 {
					if err := c.FlushAll(); err != nil {
						panic(fmt.Sprintf("worker %d flush: %v", g, err))
					}
				}
			}
			// Final marker commit, checked after the barrier.
			txn := c.Begin()
			txn.Write(uint64(privBase+g*privSpan), blockOf(byte(g+1)))
			if err := txn.Commit(); err != nil {
				panic(fmt.Sprintf("worker %d final commit: %v", g, err))
			}
		}()
	}
	wg.Wait()

	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < workers; g++ {
		got := mustRead(t, c, uint64(privBase+g*privSpan))[0]
		if got != byte(g+1) {
			t.Fatalf("worker %d private block = %d, want %d", g, got, g+1)
		}
	}
	for no := uint64(0); no < hotSpan; no++ {
		got := mustRead(t, c, no)[0]
		ok := got == diskPattern(no) // never overwritten is fine too
		for g := 1; g <= workers; g++ {
			ok = ok || got == byte(g)
		}
		if !ok {
			t.Fatalf("hot block %d = %d, not a worker value", no, got)
		}
	}
	st := c.Stats()
	if st.BgEvictions == 0 {
		t.Fatalf("watermark evictor never ran under overcommit: %+v", st)
	}
	if st.ReadMisses == 0 || st.Commits == 0 {
		t.Fatalf("stress covered nothing: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictorCrashRecovers injects a crash at every simulated-NVM
// operation boundary while four goroutines commit into a working set
// larger than the cache, with the watermark evictor writing dirty victims
// back concurrently. The crash can therefore land inside the evictor's
// write-back sequence (including on the evictor goroutine itself); after
// materializing the crash image, recovery must still satisfy the
// commit-acknowledgement oracle and the structural invariants.
func TestEvictorCrashRecovers(t *testing.T) {
	const (
		workers  = 4
		span     = 16 // oracle-tracked blocks per worker
		rounds   = 48
		fillBase = 1000 // untracked filler range driving eviction pressure
		fillSpan = 600
	)
	rng := sim.NewRand(7)
	for k := int64(0); ; k++ {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		opts := Options{RingBytes: 4096, EvictLowWater: 64, EvictBatch: 32}
		c, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatal(err)
		}

		acked := make([][]byte, workers)
		written := make([][]byte, workers)
		for w := range acked {
			acked[w] = make([]byte, span)
			written[w] = make([]byte, span)
		}

		mem.ArmCrash(k)
		var wg sync.WaitGroup
		anyCrashed := false
		var crashMu sync.Mutex
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				wrng := sim.NewRand(int64(3000 + w))
				crashed, _ := pmem.CatchCrash(func() {
					for i := 0; i < rounds; i++ {
						txn := c.Begin()
						b := i % span
						v := byte(i/span + 1)
						written[w][b] = v
						txn.Write(uint64(w*span+b), blockOf(v))
						// Filler writes overcommit the cache so the evictor
						// stays busy writing dirty victims back.
						txn.Write(uint64(fillBase+wrng.Intn(fillSpan)), blockOf(v))
						if err := txn.Commit(); err != nil {
							panic(fmt.Sprintf("worker %d commit: %v", w, err))
						}
						acked[w][b] = v
					}
				})
				if crashed {
					crashMu.Lock()
					anyCrashed = true
					crashMu.Unlock()
				}
			}()
		}
		wg.Wait()
		// Quiesce the background evictor before materializing the crash
		// image or checking invariants: it must not keep touching the
		// devices underneath either.
		close(c.evictStop)
		c.evictWG.Wait()
		c.evictStop = nil

		// The crash may have fired on the evictor goroutine itself; its
		// recover poisons the cache rather than reaching any worker's
		// CatchCrash, so the poison flag — not just worker observations —
		// decides whether this image crashed.
		if c.poisoned.Load() != nil {
			anyCrashed = true
		}
		if !anyCrashed {
			mem.DisarmCrash()
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			t.Logf("evictor write-back protocol covered in %d operations", k)
			return
		}

		mem.Crash(rng, 0.5)
		rc, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatalf("k=%d recovery: %v", k, err)
		}
		if err := rc.CheckInvariants(); err != nil {
			t.Fatalf("k=%d after recovery: %v", k, err)
		}
		for w := 0; w < workers; w++ {
			for b := 0; b < span; b++ {
				if acked[w][b] == 0 {
					continue
				}
				got := mustRead(t, rc, uint64(w*span+b))[0]
				if got < acked[w][b] || got > written[w][b] {
					t.Fatalf("k=%d worker %d block %d = %d, want in [%d,%d]",
						k, w, b, got, acked[w][b], written[w][b])
				}
			}
		}
		post := rc.Begin()
		post.Write(500, blockOf('Z'))
		if err := post.Commit(); err != nil {
			t.Fatalf("k=%d post-recovery commit: %v", k, err)
		}
		if err := rc.Close(); err != nil {
			t.Fatalf("k=%d close: %v", k, err)
		}
		// Cover the early boundaries densely, then accelerate: the commit
		// and eviction protocols repeat the same per-block patterns.
		k += k / 16
	}
}

// TestSerialMissBaseline pins the SerialMiss option to the legacy
// behaviour: fills work, values match the disk, and the global-lock path
// still coexists with the sharded read-hit path.
func TestSerialMissBaseline(t *testing.T) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(2<<20, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	c, err := Open(mem, disk, Options{RingBytes: 4096, SerialMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	span := uint64(2 * c.Capacity())
	seedDisk(disk, span)
	p := make([]byte, BlockSize)
	for no := uint64(0); no < span; no++ {
		if err := c.Read(no, p); err != nil {
			t.Fatal(err)
		}
		if p[0] != diskPattern(no) {
			t.Fatalf("block %d = %d, want %d", no, p[0], diskPattern(no))
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.BgEvictions != 0 {
		t.Fatalf("SerialMiss baseline must not run the watermark evictor: %+v", st)
	}
	if st.DirectEvictions == 0 {
		t.Fatalf("overcommitted serial sweep never direct-evicted: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkReadMissSteadyState measures the steady-state concurrent miss
// path (fill + background eviction) on a span four times the cache
// capacity. The acceptance bar is at most one heap allocation per read:
// fills and evictions must run on pooled buffers and reused scratch.
func BenchmarkReadMissSteadyState(b *testing.B) {
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	mem := pmem.New(2<<20, pmem.NVDIMM, clock, rec)
	disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
	c, err := Open(mem, disk, Options{RingBytes: 4096, EvictLowWater: 16, EvictBatch: 16})
	if err != nil {
		b.Fatal(err)
	}
	span := uint64(4 * c.Capacity())
	p := make([]byte, BlockSize)
	for no := uint64(0); no < span; no++ { // reach steady state
		if err := c.Read(no, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Read(uint64(i)%span, p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := c.Close(); err != nil {
		b.Fatal(err)
	}
}
