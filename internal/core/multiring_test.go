package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"tinca/internal/blockdev"
	"tinca/internal/metrics"
	"tinca/internal/pmem"
	"tinca/internal/sim"
)

// mrOpts is the multi-ring option set the tests use: 4 commit rings over
// a ring region small enough (8 slots per ring) that every ring wraps
// several times within a short workload.
func mrOpts() Options {
	return Options{CommitRings: 4, RingBytes: 512}
}

// TestMultiRingStress hammers a CommitRings=16 cache with 16 disjoint-
// shard committers (one private ring each), a cross-shard committer, the
// watermark evictor, and the checkpoint writer firing at every commit
// point — the full concurrency matrix of DESIGN.md §15, run under -race
// in CI. Afterwards the per-ring counters must account for every seal,
// invariants must hold, and a clean reopen must serve the data back.
func TestMultiRingStress(t *testing.T) {
	opts := Options{CommitRings: 16, Checkpoint: true, CheckpointIntervalNS: 1}
	r := newRig(t, 8<<20, opts)
	const workers, per = 16, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				txn := r.cache.Begin()
				if i%8 == 7 {
					// Cross-shard: four consecutive blocks span four rings
					// and take the multi-ring seal in index order. The
					// 256+ range never collides with the disjoint writes.
					for b := uint64(0); b < 4; b++ {
						txn.Write(256+uint64(w)*4+b, blockOf(byte(w)))
					}
				} else {
					// Disjoint shards: worker w only touches blocks ≡ w
					// (mod 16), so these seals ride worker w's private ring.
					txn.Write(uint64(w+16*(i%8)), blockOf(byte(i)))
					txn.Write(uint64(w+16*(8+i%4)), blockOf(byte(i)))
				}
				if err := txn.Commit(); err != nil {
					panic(fmt.Sprintf("worker %d: %v", w, err))
				}
			}
		}()
	}
	wg.Wait()

	st := r.cache.Stats()
	if len(st.RingSeals) != 16 {
		t.Fatalf("RingSeals has %d rings, want 16", len(st.RingSeals))
	}
	var seals int64
	for _, n := range st.RingSeals {
		seals += n
	}
	if seals == 0 {
		t.Fatal("no per-ring seals recorded")
	}
	if st.CrossShardTxns == 0 {
		t.Fatal("no cross-shard transactions recorded despite multi-ring writes")
	}
	if st.Checkpoints == 0 {
		t.Fatal("checkpoint writer never ran under multi-ring commits")
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := r.cache.Close(); err != nil {
		t.Fatal(err)
	}
	r.reopen(t, opts)
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Spot-check the last cross-shard batch of every worker.
	for w := 0; w < workers; w++ {
		for b := uint64(0); b < 4; b++ {
			if got := mustRead(t, r.cache, 256+uint64(w)*4+b); !bytes.Equal(got, blockOf(byte(w))) {
				t.Fatalf("worker %d cross-shard block %d corrupted across reopen", w, b)
			}
		}
	}
}

// TestMultiRingWrappedBoundarySweep sweeps crash boundaries over a
// multi-ring workload whose per-shard commits wrap every one of the four
// 8-slot rings, interleaved with cross-ring commits that seal several
// rings under one generation. Recovery must resolve reused per-ring slot
// positions through each ring's monotonic Head/Tail pair and keep every
// commit atomic — including the cross-ring ones, whose torn phase-E
// window (some Tails flipped, some not) rolls forward.
func TestMultiRingWrappedBoundarySweep(t *testing.T) {
	workload := func(c *Cache, acked map[uint64]byte, inflight func([]uint64, byte)) {
		for i := 0; i < 20; i++ {
			fill := byte('a' + i)
			var blocks []uint64
			if i%5 == 4 {
				// Cross-ring: four consecutive shards, four rings, one gen.
				blocks = []uint64{uint64(i), uint64(i + 1), uint64(i + 2), uint64(i + 3)}
			} else {
				// Same ring (mod 4): three slots per seal on ring i%4, so
				// each ring's 8 slots wrap after three of these (i%5 != 4
				// gives every ring four such seals over the 20 commits).
				s := uint64(i % 4)
				blocks = []uint64{s, s + 16, s + 32 + uint64(16*(i/4))}
			}
			inflight(blocks, fill)
			bufs := make([][]byte, len(blocks))
			for j := range bufs {
				bufs[j] = blockOf(fill)
			}
			if err := c.CommitBlocks(blocks, bufs); err != nil {
				panic(fmt.Sprintf("commit %d: %v", i, err))
			}
			for _, no := range blocks {
				acked[no] = fill
			}
			inflight(nil, 0)
		}
	}

	// The workload must actually wrap each ring: verify on a crash-free run.
	probe := newRig(t, 1<<20, mrOpts())
	workload(probe.cache, map[uint64]byte{}, func([]uint64, byte) {})
	heads, _ := probe.cache.RingPointers()
	slots := uint64(probe.cache.Layout().RingSlots)
	for ring, h := range heads {
		if h <= slots {
			t.Fatalf("ring %d head %d never wrapped its %d slots; workload too small", ring, h, slots)
		}
	}
	if err := probe.cache.Close(); err != nil {
		t.Fatal(err)
	}

	covered := 0
	for k := int64(0); ; k++ {
		if !crashRecoverOracle(t, 1<<20, mrOpts(), k, workload) {
			if covered < 50 {
				t.Fatalf("sweep covered only %d boundaries; workload too small", covered)
			}
			t.Logf("covered %d boundaries", covered)
			return
		}
		covered++
		if k > 400 {
			k += 17
		}
	}
}

// TestMultiRingSerialParallelParity is the §15 determinism contract: for
// every crash boundary of a checkpointed multi-ring workload, recovering
// with SerialRecovery and with the default parallel fan-out must produce
// bit-identical persistent images, identical block contents, the same
// final simulated clock, and the same restored generation clock. The
// generation-merged replay (per-ring scan + ascending-gen apply) must be
// indistinguishable from any serial schedule.
func TestMultiRingSerialParallelParity(t *testing.T) {
	runVariant := func(k int64, serial bool) (crashed bool, state, img []byte, now, gen uint64) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(1<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		opts := Options{CommitRings: 4, RingBytes: 2048, Checkpoint: true,
			CheckpointIntervalNS: 1, SerialRecovery: serial}
		c, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatal(err)
		}
		mem.ArmCrash(k)
		crashed, _ = pmem.CatchCrash(func() {
			for i := 0; i < 8; i++ {
				fill := byte('B' + i)
				var blocks []uint64
				if i%2 == 1 {
					blocks = []uint64{uint64(i), uint64(i + 1), uint64(i + 2)} // cross-ring
				} else {
					s := uint64(i % 4)
					blocks = []uint64{s, s + 16, s + 32} // single ring
				}
				if err := c.CommitBlocks(blocks, [][]byte{blockOf(fill), blockOf(fill), blockOf(fill)}); err != nil {
					panic(fmt.Sprintf("commit %d: %v", i, err))
				}
			}
		})
		if !crashed {
			mem.DisarmCrash()
			return false, nil, nil, 0, 0
		}
		mem.Crash(sim.NewRand(5000+k), 0.5)
		rc, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatalf("k=%d serial=%v recovery: %v", k, serial, err)
		}
		if err := rc.CheckInvariants(); err != nil {
			t.Fatalf("k=%d serial=%v: %v", k, serial, err)
		}
		for i := uint64(0); i < 48; i++ {
			state = append(state, mustRead(t, rc, i)...)
		}
		return true, state, mem.SnapshotPersist(), uint64(clock.Now()), rc.gen.Load()
	}

	for k := int64(0); ; k++ {
		pc, pState, pImg, pNow, pGen := runVariant(k, false)
		sc, sState, sImg, sNow, sGen := runVariant(k, true)
		if pc != sc {
			t.Fatalf("k=%d: parallel crashed=%v but serial crashed=%v", k, pc, sc)
		}
		if !pc {
			t.Logf("parity sweep covered %d boundaries", k)
			return
		}
		if pNow != sNow {
			t.Fatalf("k=%d: recovery charged different simulated time: parallel %d, serial %d", k, pNow, sNow)
		}
		if pGen != sGen {
			t.Fatalf("k=%d: restored generation clock differs: parallel %d, serial %d", k, pGen, sGen)
		}
		if !bytes.Equal(pImg, sImg) {
			t.Fatalf("k=%d: post-recovery persistent images differ between serial and parallel recovery", k)
		}
		if !bytes.Equal(pState, sState) {
			t.Fatalf("k=%d: recovered block contents differ between serial and parallel recovery", k)
		}
		if k > 500 {
			k += 23
		}
	}
}

// TestMultiRingSingleRingIdentity pins the compatibility contract:
// CommitRings=1 must produce a layout and commit path byte-identical to
// leaving the option unset — same persistent image, same simulated clock
// — so existing deterministic figures and crash images are unaffected.
func TestMultiRingSingleRingIdentity(t *testing.T) {
	run := func(opts Options) ([]byte, uint64) {
		clock := sim.NewClock()
		rec := metrics.NewRecorder()
		mem := pmem.New(4<<20, pmem.NVDIMM, clock, rec)
		disk := blockdev.New(1<<16, blockdev.Null, clock, rec)
		c, err := Open(mem, disk, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			fill := byte('A' + i)
			blocks := []uint64{uint64(i), uint64(i + 7), uint64(i + 19)}
			if err := c.CommitBlocks(blocks, [][]byte{blockOf(fill), blockOf(fill), blockOf(fill)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return mem.SnapshotPersist(), uint64(clock.Now())
	}
	defImg, defNow := run(Options{RingBytes: 4096})
	oneImg, oneNow := run(Options{RingBytes: 4096, CommitRings: 1})
	if defNow != oneNow {
		t.Fatalf("CommitRings=1 charged different simulated time: %d vs %d", oneNow, defNow)
	}
	if !bytes.Equal(defImg, oneImg) {
		t.Fatal("CommitRings=1 persistent image differs from the default single-ring layout")
	}
}
