package core

import (
	"fmt"

	"tinca/internal/bufpool"
	"tinca/internal/flight"
	"tinca/internal/metrics"
)

// This file implements the eviction side of the concurrent miss pipeline:
// a cross-shard victim scan that re-validates everything it selected, and
// a background evictor goroutine that keeps the free block pool above a
// low watermark so foreground allocations are a local pop instead of a
// scan plus a synchronous disk write.
//
// Crash consistency is untouched by construction: the only persistent
// effects of an eviction are the disk write-back of a dirty victim and
// the 16B atomic entry invalidation, in that order — exactly the sequence
// the serial evictor always used (DESIGN.md §8's ordering argument never
// mentions who runs the sequence, only its order).

// defaultEvictBatch is the batch size when Options.EvictBatch is zero.
const defaultEvictBatch = 16

// directEvictBatch is how many victims a foreground allocation reclaims
// when it finds the pool empty: one, the paper's synchronous behaviour —
// the batching belongs to the background evictor.
const directEvictBatch = 1

// victim is one eviction candidate captured during the cross-shard scan.
// Everything in it is a snapshot: evictSlot re-validates under the shard
// lock before touching anything.
type victim struct {
	sh    *shard
	slot  int32
	no    uint64
	atime int64
}

// collectVictims scans every shard's LRU tail and returns up to want
// victims, coldest first (globally sorted by access tick). dst is the
// caller's scratch slice, reused across calls. Locks are taken one shard
// at a time and dropped before the next, so the snapshot is approximate —
// which is fine, because eviction re-validates per victim.
func (c *Cache) collectVictims(dst []victim, want int) []victim {
	dst = dst[:0]
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		// Apply pending fast-path promotions first so the list order the
		// scan walks reflects every stamp taken so far (exact-LRU
		// equivalence in deterministic runs).
		c.drainTouchesLocked(sh)
		for i := sh.lru.tail; i != lruNil; i = sh.lru.olderToNewer(i) {
			e := c.readEntry(i)
			if !e.valid {
				panic(fmt.Sprintf("core: invalid entry %d on LRU list", i))
			}
			if !c.opts.DisableTxnPin && (e.role == RoleLog || sh.pinned[i]) {
				// Rule 2 (Section 4.6): blocks of the committing
				// transaction (and their previous versions, which these
				// entries still reference) stay.
				continue
			}
			if sh.wb[i] {
				continue // a write-back owns the slot right now
			}
			at := c.atime[i].Load()
			if len(dst) == want && at >= dst[len(dst)-1].atime {
				break // the walk moves toward newer slots only
			}
			v := victim{sh: sh, slot: i, no: e.disk, atime: at}
			if len(dst) < want {
				dst = append(dst, v)
			} else {
				dst[len(dst)-1] = v
			}
			for j := len(dst) - 1; j > 0 && dst[j-1].atime > dst[j].atime; j-- {
				dst[j-1], dst[j] = dst[j], dst[j-1]
			}
		}
		sh.mu.Unlock()
	}
	return dst
}

// evictBatch selects and evicts up to want victims. Returns how many were
// actually evicted and whether any eligible candidate existed at all (the
// difference between "everything raced away, try again" and "the cache is
// genuinely full of pinned blocks"). scratch is reused across calls.
func (c *Cache) evictBatch(want int, direct bool, scratch *[]victim) (evicted int, saw bool) {
	for attempt := 0; attempt < 4; attempt++ {
		*scratch = c.collectVictims(*scratch, want)
		if len(*scratch) == 0 {
			break
		}
		saw = true
		for _, v := range *scratch {
			if c.evictSlot(v) {
				evicted++
			}
		}
		if evicted > 0 {
			break
		}
	}
	if evicted > 0 {
		if direct {
			c.rec.Add(metrics.CacheEvictDirect, int64(evicted))
		} else {
			c.rec.Add(metrics.CacheEvictBg, int64(evicted))
		}
	}
	return evicted, saw
}

// evictSlot evicts one selected victim. Selection dropped every lock, so
// the slot is re-validated under its shard lock first: a concurrent touch,
// commit or eviction invalidates the victim and the caller retries with a
// fresh scan instead of evicting a stale slot. Dirty victims are written
// back outside the shard lock under the slot's wb flag and validated
// again afterwards, so the write-back can never free or clobber a version
// it did not write. Never takes c.mu.
func (c *Cache) evictSlot(v victim) bool {
	sh := v.sh
	sh.mu.Lock()
	locked := true
	defer func() {
		if locked {
			sh.mu.Unlock()
		}
	}()
	if i, ok := sh.slot(v.no); !ok || i != v.slot {
		return false // evicted (and possibly reused) since selection
	}
	if c.atime[v.slot].Load() != v.atime {
		return false // touched since selection: no longer the coldest
	}
	e := c.readEntry(v.slot)
	if !e.valid || e.disk != v.no {
		return false
	}
	if !c.opts.DisableTxnPin && (e.role == RoleLog || sh.pinned[v.slot]) {
		return false
	}
	if sh.wb[v.slot] {
		return false
	}
	cleanVictim := !e.modified
	if e.modified {
		buf := bufpool.Get()
		c.mem.Load(c.lay.blockOff(e.cur), buf)
		sh.wb[v.slot] = true
		locked = false
		sh.mu.Unlock()
		c.disk.WriteBlock(v.no, buf)
		bufpool.Put(buf)
		sh.mu.Lock()
		locked = true
		delete(sh.wb, v.slot)
		sh.wbCond.Broadcast()
		// Re-validate: a commit may have COWed a newer version while the
		// old one was in flight to disk. The NVM stays authoritative.
		e2 := c.readEntry(v.slot)
		if i, ok := sh.slot(v.no); !ok || i != v.slot ||
			!e2.valid || e2.disk != v.no || e2.cur != e.cur {
			return false
		}
		if !c.opts.DisableTxnPin && (e2.role == RoleLog || sh.pinned[v.slot]) {
			return false
		}
		if c.atime[v.slot].Load() != v.atime {
			// Touched while the write-back was in flight: keep the block
			// cached, but bank the disk write as a cleaning.
			e2.modified = false
			c.beginSlotMutate(v.slot)
			c.writeEntry(v.slot, e2)
			c.endSlotMutate(v.slot)
			return false
		}
		e = e2
		c.rec.Inc(metrics.CacheEvictDirty)
	}
	if c.vcache != nil && cleanVictim {
		// Exclusive-tier downward path: offer the clean victim's bytes to
		// the tier (objstore.Tier L2) so a re-miss is a near-tier read.
		// This runs under the shard lock on purpose — the block cannot be
		// recommitted with newer content mid-offer, so the admitted copy
		// is necessarily current. Dirty victims skip it: the write-back
		// above already delivered the same bytes through WriteBlock. A
		// refused offer (tier full) is dropped; clean content is by
		// definition reproducible from the tier below.
		buf := bufpool.Get()
		c.mem.Load(c.lay.blockOff(e.cur), buf)
		c.vcache.AdmitClean(v.no, buf)
		bufpool.Put(buf)
	}
	// Crash ordering: the disk write above is durable before the entry is
	// invalidated, so a crash in between only leaves a redundant dirty
	// entry, never a lost block.
	//
	// Seqlock ordering: the bump below happens before the data block goes
	// back to the free pool, so a fast-path reader that could observe the
	// reused block's bytes necessarily sees the version change and discards
	// its copy (torn-read argument in readfast.go).
	c.beginSlotMutate(v.slot)
	c.clearEntry(v.slot)
	sh.lru.remove(v.slot)
	sh.mapDelete(v.no)
	if c.dirtied[v.slot] {
		// The disk copy of this block was rewritten at some point after
		// it was cached: an optimistic miss fill whose disk read started
		// before the write-back landed must not install its stale copy.
		sh.evictGen.Add(1)
		c.dirtied[v.slot] = false
	}
	c.alloc.pushSlot(v.slot)
	c.freeDataBlock(e.cur)
	if e.prev != Fresh {
		// Only possible when txn pinning is disabled (ablation mode).
		c.freeDataBlock(e.prev)
	}
	c.endSlotMutate(v.slot)
	c.rec.Inc(metrics.CacheEvict)
	return true
}

// maybeWakeEvictor nudges the background evictor when the free pool has
// dropped below the low watermark. Called after every successful block
// pop; the check is one atomic load.
func (c *Cache) maybeWakeEvictor() {
	if c.evictWake == nil {
		return
	}
	if int(c.alloc.freeBlocks()) >= c.evictLow {
		return
	}
	select {
	case c.evictWake <- struct{}{}:
	default:
	}
}

// evictor is the background watermark evictor: woken when the free pool
// dips under the low watermark, it batch-evicts the globally coldest
// victims until the pool is back above low + batch, writing dirty victims
// back outside any shard lock. It never takes c.mu, so commits, reads and
// seals proceed while it reclaims.
func (c *Cache) evictor() {
	defer c.evictWG.Done()
	var scratch []victim
	for {
		select {
		case <-c.evictStop:
			return
		case <-c.evictWake:
		}
		c.evictorRun(&scratch)
	}
}

// evictorRun tops the free pool back up to the high watermark. An
// injected crash on the evictor goroutine poisons the cache exactly as a
// crash on a committing goroutine would.
func (c *Cache) evictorRun(scratch *[]victim) {
	defer func() {
		if r := recover(); r != nil {
			c.poison(r)
		}
	}()
	for c.poisoned.Load() == nil && !c.closed.Load() {
		if int(c.alloc.freeBlocks()) >= c.evictHigh {
			return
		}
		var t0 int64
		if c.obs != nil {
			t0 = c.obs.now()
		}
		n, _ := c.evictBatch(c.evictBatchN, false, scratch)
		if n == 0 {
			return // nothing evictable now; the foreground falls back
		}
		c.flEmit(flight.EvEvictBatch, 0, 0, 0, uint64(n))
		if c.obs != nil {
			c.obs.phase(c.obs.evict, 0, spanEvictBatch, t0, c.obs.gid())
		}
	}
}
