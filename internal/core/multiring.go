// Multi-ring commit (DESIGN.md §15).
//
// With Options.CommitRings = R > 1 the single commit log ring is split
// into R independent per-shard rings: ring r serializes the blocks of
// shards congruent to r mod R, owns its own persistent Head/Tail pointer
// pair and runs its own group-commit leader/follower seal. Transactions
// touching a single ring seal under that ring's lock alone, so commits to
// disjoint shards proceed fully in parallel — one Head/Tail persist and
// one fence set per ring per batch instead of one global seal.
//
// A single global generation counter stamps every ring record: the seal
// draws gen = c.gen.Add(1) AFTER acquiring every participating ring's
// seal lock, so within each ring record generations are strictly
// increasing, and recovery can merge the rings back into one total commit
// order by generation. A cross-ring transaction takes a deterministic
// multi-ring seal: its rings are locked in index order (deadlock-free
// against every other seal), one generation is stamped in every
// participating ring, and the flight-recorder commit event fires after
// the LAST ring's Tail flip.
//
// The seal itself mirrors group.go's five phases, with the ring phases
// fanned out per ring:
//
//	A. data    — every block stored + flushed, ONE fence
//	B. entries — every entry 16B-stored + flushed (log role), ONE fence
//	C. ring    — every {block, gen} 16B record stored + flushed, ONE
//	             fence, then ONE Head persist per participating ring
//	D. switch  — every entry switched to buffer role, ONE fence
//	E. tail    — ONE Tail persist per participating ring, index order
//
// Unlike the single-ring seal the multi-ring seal never takes c.mu: the
// ring locks provide the seal-vs-seal exclusion (two seals sharing a
// block share its ring), the shard locks protect per-entry state exactly
// as in group.go, and the allocator and destage queue are lock-free /
// internally synchronized. Lock order: ring seal locks in index order,
// then shard locks, then the checkpoint writer's k.mu, then the device.
//
// Torn multi-ring seals: a crash between two rings' Tail persists (or
// anywhere at/after the first role switch) is resolved by ROLLING FORWARD
// — phase D freed the previous COW versions, so revocation is no longer
// possible, and redo is legal because the commit event (flight record,
// SealHook) fires only after the last Tail flip: a transaction whose
// seal was torn was never acknowledged, so either outcome is a correct
// serial history, and recovery's generation merge picks "committed"
// exactly when any role switch was durable. A crash before any role
// switch revokes the whole transaction across all its rings (the pending
// generations plus the stray-entry sweep cover rings whose records or
// Head persists never landed). See recovery.go and DESIGN.md §15 for the
// full ordering argument.
package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"tinca/internal/bufpool"
	"tinca/internal/flight"
	"tinca/internal/metrics"
)

// ringState is the DRAM side of one commit ring.
type ringState struct {
	// mu is the ring's seal lock: it guards the ring's persistent
	// Head/Tail pair, its record region and the cached head/tail below.
	// A seal holds the locks of every participating ring, acquired in
	// index order, for the whole five-phase protocol.
	mu         sync.Mutex
	head, tail uint64 // cached copies of the persistent pointers

	// Leader/follower queue for single-ring commits, mirroring the global
	// group-commit queue (group.go) per ring.
	qmu   sync.Mutex
	qcond *sync.Cond
	queue []*commitReq
	busy  bool

	// Resolved counter cells (per-ring names) so the hot path never pays
	// a registry lookup: seals counts this ring's seals, depth is the
	// queue-depth gauge (+1 enqueue, -1 when a seal claims the request).
	seals, depth *atomic.Int64
}

func (rs *ringState) init(rec *metrics.Recorder, r int) {
	rs.qcond = sync.NewCond(&rs.qmu)
	rs.seals = rec.Counter(metrics.RingSealName(r))
	rs.depth = rec.Counter(metrics.RingQueueDepthName(r))
}

// ringOf maps a disk block to its commit ring: shardIdx(no) mod R, which
// for the power-of-two R dividing shardCount is a mask.
func (c *Cache) ringOf(no uint64) int {
	return int(no & uint64(len(c.rings)-1))
}

// commitMultiRing is the Commit entry point when CommitRings > 1: route a
// single-ring transaction to its ring's leader/follower queue, a
// cross-ring transaction to a solo multi-ring seal.
func (c *Cache) commitMultiRing(t *Txn) error {
	// Per-ring block counts decide the route and the size check — the
	// capacity bound is per ring, not global.
	var counts [shardCount]int
	rings := 0
	first := -1
	for _, no := range t.order {
		r := c.ringOf(no)
		if counts[r] == 0 {
			rings++
			if first < 0 || r < first {
				first = r
			}
		}
		counts[r]++
	}
	for r := range c.rings {
		if counts[r] > c.lay.RingSlots {
			return ErrTxnTooLarge
		}
	}
	var err error
	if rings == 1 {
		err = c.ringGroupCommit(first, t)
	} else {
		err = c.commitCrossRing(t, counts[:len(c.rings)])
	}
	// Checkpoint trigger: must run with NO ring locks held (it acquires
	// all of them in index order), so it lives here rather than inside
	// the seal.
	c.maybeCheckpointRings()
	return err
}

// ringGroupCommit enqueues t on ring r and waits until some leader
// (possibly this goroutine) seals it — groupCommit's leader/follower
// protocol, per ring.
func (c *Cache) ringGroupCommit(r int, t *Txn) error {
	rs := &c.rings[r]
	req := &commitReq{t: t}
	var tEnq int64
	if c.obs != nil {
		tEnq = c.obs.now()
	}
	rs.qmu.Lock()
	rs.queue = append(rs.queue, req)
	rs.depth.Add(1)
	for !req.done {
		if rs.busy {
			rs.qcond.Wait()
			continue
		}
		rs.busy = true
		var tWait int64
		if c.obs != nil {
			tWait = c.obs.now()
		}
		if w := c.opts.GroupCommit.MaxWaitNS; w > 0 && len(rs.queue) < c.opts.groupBatch() {
			rs.qmu.Unlock()
			time.Sleep(time.Duration(w) * time.Nanosecond)
			rs.qmu.Lock()
		}
		batch := c.takeRingBatchLocked(rs)
		rs.depth.Add(-int64(len(batch)))
		rs.qmu.Unlock()

		var sealID uint64
		var g int64
		if c.obs != nil {
			sealID = c.obs.seals.Add(1)
			g = c.obs.gid()
			c.obs.phase(c.obs.wait, sealID, spanWait, tWait, g)
		}

		pv := c.runRingSeal([]int{r}, batch, sealID, g)

		rs.qmu.Lock()
		for _, q := range batch {
			if pv != nil {
				q.pv = pv
			}
			q.done = true
		}
		rs.busy = false
		rs.qcond.Broadcast()
	}
	rs.qmu.Unlock()
	if req.pv != nil {
		panic(req.pv)
	}
	t.done = true
	if c.obs != nil {
		c.obs.phase(c.obs.total, 0, spanCommit, tEnq, c.obs.gid())
	}
	return req.err
}

// takeRingBatchLocked pops ring rs's next batch: FIFO, capped by
// GroupCommit.MaxBatch and by the ring's (per-ring) slot capacity. Caller
// holds rs.qmu.
func (c *Cache) takeRingBatchLocked(rs *ringState) []*commitReq {
	maxBatch := c.opts.groupBatch()
	blocks := 0
	n := 0
	for n < len(rs.queue) && n < maxBatch {
		blocks += len(rs.queue[n].t.order)
		if n > 0 && blocks > c.lay.RingSlots {
			break
		}
		n++
	}
	batch := rs.queue[:n:n]
	rs.queue = rs.queue[n:]
	return batch
}

// commitCrossRing seals t across its participating rings: a solo seal
// that locks the rings in index order. counts[r] > 0 marks participation.
func (c *Cache) commitCrossRing(t *Txn, counts []int) error {
	var tEnq int64
	if c.obs != nil {
		tEnq = c.obs.now()
	}
	c.rec.Inc(metrics.TxnCrossShard)
	ringIDs := make([]int, 0, len(counts))
	for r, n := range counts {
		if n > 0 {
			ringIDs = append(ringIDs, r)
		}
	}
	// Index order makes the multi-lock acquisition deadlock-free against
	// every other seal; TryLock first only to count contention.
	for _, r := range ringIDs {
		rs := &c.rings[r]
		if !rs.mu.TryLock() {
			c.rec.Inc(metrics.TxnRingSealConflicts)
			rs.mu.Lock()
		}
	}
	req := &commitReq{t: t}
	var sealID uint64
	var g int64
	if c.obs != nil {
		sealID = c.obs.seals.Add(1)
		g = c.obs.gid()
	}
	pv := c.runRingSealLocked(ringIDs, []*commitReq{req}, sealID, g)
	for _, r := range ringIDs {
		c.rings[r].mu.Unlock()
	}
	if pv != nil {
		panic(pv)
	}
	t.done = true
	if c.obs != nil {
		c.obs.phase(c.obs.total, 0, spanCommit, tEnq, c.obs.gid())
	}
	return req.err
}

// runRingSeal acquires the participating ring locks (index order) and
// runs one seal; see runRingSealLocked for the panic contract.
func (c *Cache) runRingSeal(ringIDs []int, batch []*commitReq, sealID uint64, g int64) (pv any) {
	for _, r := range ringIDs {
		c.rings[r].mu.Lock()
	}
	defer func() {
		for _, r := range ringIDs {
			c.rings[r].mu.Unlock()
		}
	}()
	return c.runRingSealLocked(ringIDs, batch, sealID, g)
}

// runRingSealLocked seals one batch on the given rings (ascending; caller
// holds every ring's seal lock). It returns a recovered injected-crash
// panic value (nil normally); per-request errors are stored in the
// requests. When the merged batch cannot be allocated it degrades to
// one-seal-per-transaction, exactly as runBatch degrades to the serial
// path.
func (c *Cache) runRingSealLocked(ringIDs []int, batch []*commitReq, sealID uint64, g int64) (pv any) {
	defer func() {
		if r := recover(); r != nil {
			// A simulated power failure fired mid-seal: poison the cache so
			// every subsequent operation observes the crash, and hand the
			// panic value to every transaction in the batch.
			c.poison(r)
			pv = r
		}
	}()
	if c.closed.Load() {
		for _, q := range batch {
			q.err = ErrClosed
		}
		return nil
	}
	c.checkPoison()
	if err := c.sealRings(ringIDs, batch, sealID, g); err != nil {
		// Phase-0 allocation failed with nothing persisted: retry each
		// transaction as its own seal, failing only those that cannot
		// allocate alone.
		for _, q := range batch {
			var soloID uint64
			if c.obs != nil {
				soloID = c.obs.seals.Add(1)
			}
			if q.err = c.sealRings(ringIDs, []*commitReq{q}, soloID, g); q.err != nil {
				c.rec.Inc(metrics.TxnAbort)
			}
		}
	}
	return nil
}

// sealRings runs the five seal phases for one batch over the given rings
// (ascending; caller holds every ring's seal lock). A non-nil error means
// phase-0 allocation failed and NOTHING was persisted — the volatile plan
// was unwound and the batch may be retried or failed by the caller.
func (c *Cache) sealRings(ringIDs []int, batch []*commitReq, sealID uint64, g int64) error {
	var ts, tSeal int64
	if c.obs != nil {
		ts = c.obs.now()
		tSeal = ts
	}

	// Phase 0 — plan (volatile only): merge the batch write set in arrival
	// order (last writer wins), allocate blocks and slots, pin hit targets.
	// Identical to runBatch's plan; see group.go for the argument.
	plan := make([]*planBlock, 0, 16)
	byNo := make(map[uint64]*planBlock, 16)
	absorbed := 0
	for _, q := range batch {
		for _, no := range q.t.order {
			if pb, ok := byNo[no]; ok {
				pb.data = q.t.blocks[no]
				absorbed++
				continue
			}
			pb := &planBlock{no: no, data: q.t.blocks[no]}
			byNo[no] = pb
			plan = append(plan, pb)
		}
	}
	var planErr error
	for _, pb := range plan {
		sh := c.shardOf(pb.no)
		sh.mu.Lock()
		i, hit := sh.slot(pb.no)
		if hit {
			e := c.readEntry(i)
			if e.role == RoleLog {
				// Seal-vs-seal exclusion is the ring lock: a live log-role
				// entry here means a seal escaped it.
				sh.mu.Unlock()
				panic("core: live log-role entry outside a seal")
			}
			pb.hit, pb.slot, pb.prev = true, i, e.cur
			sh.pinned[i] = true
		} else {
			pb.prev = Fresh
		}
		sh.mu.Unlock()
		nb, err := c.allocBlock(shardIdx(pb.no))
		if err != nil {
			planErr = err
			break
		}
		pb.nb = nb
		if !hit {
			pb.slot = c.allocSlot(shardIdx(pb.no))
		}
		pb.allocated = true
	}
	if planErr != nil {
		c.unwindPlan(plan)
		return planErr
	}
	if c.obs != nil {
		ts = c.obs.phase(c.obs.absorb, sealID, spanAbsorb, ts, g)
	}

	// The commit-point generation is drawn while EVERY participating ring
	// lock is held, so each ring's record generations are strictly
	// increasing — the property recovery's generation merge rests on. It
	// doubles as the seal sequence for SealHook and the flight records.
	gen := c.gen.Add(1)
	for _, q := range batch {
		q.t.sealSeq = gen
	}
	c.flEmit(flight.EvSealBegin, uint16(ringIDs[0]), gen, uint64(len(plan)), uint64(len(batch)))

	// Phase A — data: freshly allocated targets, no reader can observe
	// them; store + flush each, one fence for all.
	for _, pb := range plan {
		off := c.lay.blockOff(pb.nb)
		c.mem.Store(off, pb.data)
		if c.opts.Fault != FaultSkipDataFlush {
			c.mem.CLFlush(off, BlockSize)
		}
	}
	c.mem.SFence()
	if c.obs != nil {
		ts = c.obs.phase(c.obs.data, sealID, spanData, ts, g)
	}

	// Phase B — entries, log role, under each block's shard lock; one
	// fence for all. Identical to runBatch phase B.
	for _, pb := range plan {
		func() {
			sh := c.shardOf(pb.no)
			sh.mu.Lock()
			defer sh.mu.Unlock()
			if !pb.hit {
				if j, ok := sh.slot(pb.no); ok {
					// A concurrent read fill raced in since the plan phase;
					// the commit's version supersedes the clean filled copy.
					c.dropFilledLocked(sh, pb.no, j)
				}
				c.pushFrontLocked(sh, pb.slot)
				sh.pinned[pb.slot] = true
			}
			c.beginSlotMutate(pb.slot)
			c.storeEntry(pb.slot, entry{valid: true, role: RoleLog, modified: true, disk: pb.no, prev: pb.prev, cur: pb.nb})
			c.endSlotMutate(pb.slot)
			if !pb.hit {
				sh.mapStore(pb.no, pb.slot)
			}
			c.dirtied[pb.slot] = true
		}()
	}
	c.mem.SFence()
	if c.obs != nil {
		ts = c.obs.phase(c.obs.entries, sealID, spanEntries, ts, g)
	}

	// Phase C — ring records: each participating ring's blocks into its
	// own consecutive slots as {block no, generation} 16B records (one
	// atomic Store16 + flush each), ONE fence for all rings, then ONE Head
	// persist per ring.
	var byRing [shardCount][]*planBlock
	for _, pb := range plan {
		r := c.ringOf(pb.no)
		byRing[r] = append(byRing[r], pb)
	}
	for _, r := range ringIDs {
		rs := &c.rings[r]
		for k, pb := range byRing[r] {
			off := c.lay.mrSlotOff(r, rs.head+uint64(k))
			var rec [16]byte
			binary.LittleEndian.PutUint64(rec[0:], pb.no)
			binary.LittleEndian.PutUint64(rec[8:], gen)
			c.mem.Store16(off, rec)
			c.mem.CLFlush(off, mrSlotSize)
		}
	}
	c.mem.SFence()
	for _, r := range ringIDs {
		rs := &c.rings[r]
		rs.head += uint64(len(byRing[r]))
		c.mem.Persist8(c.lay.ringHeadSlotOff(r, rs.head), rs.head)
	}
	if c.obs != nil {
		ts = c.obs.phase(c.obs.ring, sealID, spanRing, ts, g)
	}

	// Phase D — role switches, freeing the previous versions; one fence.
	for _, pb := range plan {
		func() {
			sh := c.shardOf(pb.no)
			sh.mu.Lock()
			defer sh.mu.Unlock()
			e := c.readEntry(pb.slot)
			e.role = RoleBuffer
			e.prev = Fresh
			c.beginSlotMutate(pb.slot)
			c.storeEntry(pb.slot, e)
			c.endSlotMutate(pb.slot)
		}()
		if pb.prev != Fresh {
			c.freeDataBlock(pb.prev)
		}
	}
	c.mem.SFence()

	// Write-through without a destager propagates synchronously, before
	// the commit point, exactly as runBatch does.
	if c.opts.WriteThrough && c.destageCh == nil {
		buf := bufpool.Get()
		for _, pb := range plan {
			c.writeBack(c.shardOf(pb.no), pb.no, pb.slot, buf)
		}
		bufpool.Put(buf)
		c.mem.SFence()
	}
	if c.obs != nil {
		ts = c.obs.phase(c.obs.roleSw, sealID, spanSwitch, ts, g)
	}

	// Phase E — the commit point: one Tail persist per participating
	// ring, in index order. The commit event (flight record + SealHook)
	// fires only after the LAST flip — a crash between flips leaves the
	// seal unacknowledged, and recovery rolls it forward (roll-forward is
	// the only legal resolution once phase D freed the previous
	// versions; see the file comment).
	last := ringIDs[len(ringIDs)-1]
	for _, r := range ringIDs {
		rs := &c.rings[r]
		rs.tail = rs.head
		c.mem.Persist8(c.lay.ringTailSlotOff(r, rs.tail), rs.tail)
	}
	c.flEmit(flight.EvSealPersist, uint16(last), gen, c.rings[last].head, uint64(len(plan)))
	if c.opts.SealHook != nil {
		c.opts.SealHook(gen)
	}
	if c.obs != nil {
		ts = c.obs.phase(c.obs.tail, sealID, spanTail, ts, g)
	}

	// Volatile epilogue: unpin, touch LRU, hand off to the destager, book
	// the counters — runBatch's epilogue plus the per-ring seal counters.
	for _, pb := range plan {
		sh := c.shardOf(pb.no)
		sh.mu.Lock()
		delete(sh.pinned, pb.slot)
		c.touchLocked(sh, pb.slot)
		sh.mu.Unlock()
	}
	if c.destageCh != nil {
		for _, pb := range plan {
			c.destageEnqueue(pb.no, pb.slot)
		}
	}
	for _, pb := range plan {
		if pb.hit {
			c.rec.Inc(metrics.CacheWriteHit)
			c.rec.Inc(metrics.TxnCOWBlocks)
		} else {
			c.rec.Inc(metrics.CacheWriteMiss)
		}
	}
	for _, q := range batch {
		q.err = nil
		c.rec.Inc(metrics.TxnCommit)
		c.rec.Add(metrics.TxnBlocks, int64(len(q.t.order)))
	}
	c.rec.Inc(metrics.TxnGroupSeals)
	c.rec.Add(metrics.TxnGroupSize, int64(len(batch)))
	c.rec.Add(metrics.TxnAbsorbed, int64(absorbed))
	for _, r := range ringIDs {
		c.rings[r].seals.Add(1)
	}
	c.flEmit(flight.EvSealComplete, uint16(last), gen, c.rings[last].head, uint64(len(batch)))
	if c.obs != nil {
		c.obs.phase(c.obs.seal, sealID, spanSeal, tSeal, g)
		c.obs.phase(c.obs.ringSeal, sealID, spanRingSeal, tSeal, g)
	}
	return nil
}

// maybeCheckpointRings is the multi-ring checkpoint trigger: like
// maybeCheckpoint, but the quiescence it needs is every ring's seal lock
// (no seal in flight ⇒ no log-role entry) instead of c.mu. Callers must
// hold NO ring lock — the trigger acquires all of them in index order.
func (c *Cache) maybeCheckpointRings() {
	k := c.ckpt
	if k == nil {
		return
	}
	now := int64(c.mem.Clock().Now())
	k.mu.Lock()
	due := now-k.lastNS >= k.interval
	k.mu.Unlock()
	if !due {
		return
	}
	for r := range c.rings {
		c.rings[r].mu.Lock()
	}
	defer func() {
		for r := range c.rings {
			c.rings[r].mu.Unlock()
		}
	}()
	// Re-check under the ring locks: a racing committer may have written
	// the checkpoint while this one waited.
	now = int64(c.mem.Clock().Now())
	k.mu.Lock()
	due = now-k.lastNS >= k.interval
	k.mu.Unlock()
	if !due {
		return
	}
	c.lockAllShards()
	defer c.unlockAllShards()
	c.writeCheckpointLocked(now)
}
