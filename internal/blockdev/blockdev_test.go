package blockdev

import (
	"bytes"
	"testing"

	"tinca/internal/metrics"
	"tinca/internal/sim"
)

func newDev(t *testing.T, n uint64, p Profile) (*Device, *metrics.Recorder, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	rec := metrics.NewRecorder()
	return New(n, p, clock, rec), rec, clock
}

func TestReadWriteRoundTrip(t *testing.T) {
	d, rec, _ := newDev(t, 100, Null)
	want := bytes.Repeat([]byte{0xEE}, BlockSize)
	d.WriteBlock(42, want)
	got := make([]byte, BlockSize)
	d.ReadBlock(42, got)
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
	if rec.Get(metrics.DiskBlocksWrite) != 1 || rec.Get(metrics.DiskBlocksRead) != 1 {
		t.Fatal("block counters wrong")
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	d, _, _ := newDev(t, 10, Null)
	p := bytes.Repeat([]byte{0xFF}, BlockSize)
	d.ReadBlock(3, p)
	for _, b := range p {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestWriteBlockCopiesBuffer(t *testing.T) {
	d, _, _ := newDev(t, 10, Null)
	p := make([]byte, BlockSize)
	p[0] = 1
	d.WriteBlock(0, p)
	p[0] = 99 // caller reuse must not alias device contents
	q := make([]byte, BlockSize)
	d.ReadBlock(0, q)
	if q[0] != 1 {
		t.Fatal("device aliased caller buffer")
	}
}

func TestServiceTimesOrdered(t *testing.T) {
	elapsed := func(p Profile) int64 {
		d, _, clock := newDev(t, 10, p)
		buf := make([]byte, BlockSize)
		d.WriteBlock(0, buf)
		d.ReadBlock(0, buf)
		return int64(clock.Now())
	}
	null, ssd, hdd := elapsed(Null), elapsed(SSD), elapsed(HDD)
	if !(null < ssd && ssd < hdd) {
		t.Fatalf("service times not ordered: null=%d ssd=%d hdd=%d", null, ssd, hdd)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d, _, _ := newDev(t, 10, Null)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.WriteBlock(10, make([]byte, BlockSize))
}

func TestShortBufferPanics(t *testing.T) {
	d, _, _ := newDev(t, 10, Null)
	for _, fn := range []func(){
		func() { d.WriteBlock(0, make([]byte, 100)) },
		func() { d.ReadBlock(0, make([]byte, 100)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("short buffer accepted")
				}
			}()
			fn()
		}()
	}
}

func TestIOStatsCounters(t *testing.T) {
	d, rec, _ := newDev(t, 100, SSD)
	buf := make([]byte, BlockSize)
	for i := uint64(0); i < 5; i++ {
		d.WriteBlock(i, buf)
	}
	for i := uint64(0); i < 3; i++ {
		d.ReadBlock(i, buf)
	}
	st := d.Stats()
	if st.Name != "SSD" {
		t.Fatalf("stats name = %q", st.Name)
	}
	if st.BlocksWritten != 5 || st.BlocksRead != 3 {
		t.Fatalf("block counters: %+v", st)
	}
	if st.BytesWritten != 5*BlockSize || st.BytesRead != 3*BlockSize {
		t.Fatalf("byte counters: %+v", st)
	}
	// The per-device counters and the shared recorder must agree.
	if rec.Get(metrics.DiskBytesWrite) != st.BytesWritten ||
		rec.Get(metrics.DiskBytesRead) != st.BytesRead {
		t.Fatalf("recorder disagrees with device stats: %+v", st)
	}
}

func TestQueueDepthGauge(t *testing.T) {
	d, rec, _ := newDev(t, 10, Null)
	// Idle device: gauge at zero both per-device and in the recorder.
	if q := d.Stats().QueueDepth; q != 0 {
		t.Fatalf("idle queue depth = %d", q)
	}
	buf := make([]byte, BlockSize)
	d.WriteBlock(0, buf)
	d.ReadBlock(0, buf)
	// Gauge returns to zero after requests complete (it is instantaneous,
	// not cumulative), and the shared recorder gauge tracks it.
	if q := d.Stats().QueueDepth; q != 0 {
		t.Fatalf("queue depth after quiesce = %d", q)
	}
	if q := rec.Get(metrics.DiskQueueDepth); q != 0 {
		t.Fatalf("recorder queue depth after quiesce = %d", q)
	}
}

func TestWrittenBlocksSparse(t *testing.T) {
	d, _, _ := newDev(t, 1<<30, Null) // huge device, sparse storage
	d.WriteBlock(1<<29, make([]byte, BlockSize))
	if d.WrittenBlocks() != 1 {
		t.Fatalf("written = %d", d.WrittenBlocks())
	}
}
