// Package blockdev simulates the disks that sit underneath the NVM cache:
// a SATA SSD and a ferromagnetic HDD, exactly the two media the paper
// evaluates (Section 5.4.1). Devices transfer fixed 4KB blocks, count every
// block read/written in a metrics.Recorder, and charge per-block service
// time to the shared simulated clock.
//
// Block contents are held sparsely (only blocks ever written occupy
// memory), so large address spaces are cheap; unwritten blocks read as
// zeroes, like a freshly trimmed device.
package blockdev

import (
	"fmt"
	"sync"

	"tinca/internal/metrics"
	"tinca/internal/sim"
)

// BlockSize is the transfer unit, matching the cache and file system block
// size (4KB, the paper's default).
const BlockSize = 4096

// Profile describes a disk medium's per-block service times.
type Profile struct {
	Name        string
	ReadNS      int64 // per 4KB block read
	WriteNS     int64 // per 4KB block write
	Description string
}

// Media profiles. The SSD figure is a SATA-class ~45K write IOPS device;
// the HDD figure is dominated by positioning time, giving the ~5x
// throughput drop the paper observes when swapping SSD for HDD.
var (
	SSD = Profile{Name: "SSD", ReadNS: 70_000, WriteNS: 90_000,
		Description: "SATA flash SSD (paper's default disk)"}
	HDD = Profile{Name: "HDD", ReadNS: 4_000_000, WriteNS: 4_500_000,
		Description: "7.2K RPM hard disk, positioning dominated"}
	// Null is an infinitely fast disk, useful for isolating NVM-layer
	// behaviour in unit tests.
	Null = Profile{Name: "null", ReadNS: 0, WriteNS: 0, Description: "no-cost disk"}
)

// Device is a simulated block device. All methods are safe for concurrent
// use.
type Device struct {
	mu     sync.Mutex
	blocks map[uint64][]byte
	nblk   uint64
	prof   Profile
	clock  *sim.Clock
	rec    *metrics.Recorder
}

// New creates a device with capacity nblocks blocks of BlockSize bytes.
func New(nblocks uint64, prof Profile, clock *sim.Clock, rec *metrics.Recorder) *Device {
	if nblocks == 0 {
		panic("blockdev: zero capacity")
	}
	if clock == nil || rec == nil {
		panic("blockdev: nil clock or recorder")
	}
	return &Device{
		blocks: make(map[uint64][]byte),
		nblk:   nblocks,
		prof:   prof,
		clock:  clock,
		rec:    rec,
	}
}

// Blocks returns the device capacity in blocks.
func (d *Device) Blocks() uint64 { return d.nblk }

// Profile returns the medium profile.
func (d *Device) Profile() Profile { return d.prof }

func (d *Device) check(no uint64) {
	if no >= d.nblk {
		panic(fmt.Sprintf("blockdev: block %d beyond device of %d blocks", no, d.nblk))
	}
}

// ReadBlock copies block no into p (which must be BlockSize long).
// Unwritten blocks read as zeroes.
func (d *Device) ReadBlock(no uint64, p []byte) {
	if len(p) != BlockSize {
		panic("blockdev: short read buffer")
	}
	d.check(no)
	d.mu.Lock()
	b, ok := d.blocks[no]
	if ok {
		copy(p, b)
	} else {
		for i := range p {
			p[i] = 0
		}
	}
	d.mu.Unlock()
	d.rec.Inc(metrics.DiskBlocksRead)
	d.clock.AdvanceNS(d.prof.ReadNS)
}

// WriteBlock stores p (BlockSize bytes) as block no. Disk writes are
// durable when WriteBlock returns (the simulated device has a non-volatile
// write cache, like an enterprise disk with power-loss protection; the
// consistency problems the paper studies all live above the disk).
func (d *Device) WriteBlock(no uint64, p []byte) {
	if len(p) != BlockSize {
		panic("blockdev: short write buffer")
	}
	d.check(no)
	b := make([]byte, BlockSize)
	copy(b, p)
	d.mu.Lock()
	d.blocks[no] = b
	d.mu.Unlock()
	d.rec.Inc(metrics.DiskBlocksWrite)
	d.clock.AdvanceNS(d.prof.WriteNS)
}

// WrittenBlocks reports how many distinct blocks hold data, for tests.
func (d *Device) WrittenBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}
